module amp

go 1.22
