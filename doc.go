// Package amp is a Go reproduction of Herlihy & Shavit, The Art of
// Multiprocessor Programming (PODC 2006 keynote; Morgan Kaufmann 2008):
// every algorithm family the book develops, built on the Go standard
// library, with the measurement harness that regenerates the book's
// figures.
//
// The implementation lives under internal/:
//
//	core       histories, linearizability checking, thread IDs (Ch. 3)
//	register   register constructions and atomic snapshots (Ch. 4)
//	consensus  consensus protocols and universal constructions (Ch. 5–6)
//	mutex      Peterson, Filter, Bakery, tournament locks (Ch. 2)
//	spin       TAS/TTAS/backoff/ALock/CLH/MCS/TOLock (Ch. 7)
//	rwlock     semaphores and readers–writers locks (Ch. 8)
//	list       coarse/fine/optimistic/lazy/lock-free list sets (Ch. 9)
//	queue      bounded, two-lock, Michael–Scott, synchronous queues (Ch. 10)
//	epoch      epoch-based memory reclamation for the lock-free backends
//	stack      Treiber and elimination-backoff stacks (Ch. 11)
//	counting   combining trees and counting networks (Ch. 12)
//	hashset    striped/refinable/split-ordered/cuckoo hash sets (Ch. 13)
//	strmap     the Ch. 13 lock disciplines as string→int64 maps: coarse,
//	           striped, refinable, chained phased cuckoo (FNV-1a hashing)
//	adaptive   contention-adaptive "adjusted" set/map wrappers that morph
//	           the live member along the Ch. 13 ladder (coarse → striped →
//	           refinable → lock-free, plus an epoch read member) from
//	           observed contention and read mix, flipping at shard batch
//	           boundaries with one atomic pointer store
//	skiplist   lazy and lock-free skiplists (Ch. 14)
//	pqueue     bounded pools, fine-grained heap, skip-queue (Ch. 15)
//	steal      work-stealing deques and executors (Ch. 16)
//	barrier    sense-reversing, tree, static-tree, dissemination (Ch. 17)
//	stm        TL2-style software transactional memory (Ch. 18)
//	bench      workload generators and the experiment harness
//	server     ampserved: a sharded TCP server over the structures above,
//	           with per-family backend selection (pipelined line protocol
//	           with per-shard batching and flat combining, graceful
//	           shutdown). Commands cover int-keyed sets (SET/GET/DEL),
//	           string-keyed maps (HSET/HGET/HDEL, routed by FNV-1a with
//	           per-shard chaining on the full key), queues, stacks,
//	           counters, and priority queues.
//	metrics    op counters and latency histograms built on the Ch. 12
//	           counting structures
//
// Binaries: cmd/ampserved serves the structures over TCP (see
// internal/server for the protocol); cmd/ampbench regenerates the
// evaluation tables (experiments E1–E16, see DESIGN.md and
// EXPERIMENTS.md) and, with -serve-addr, load-tests a running ampserved
// (including -mode phases, the shifting-workload schedule E20 uses to
// exercise the adaptive backends' live morphing);
// cmd/linearize checks recorded histories for linearizability. Runnable
// walkthroughs live in examples/.
//
// # Memory reclamation
//
// The book's CAS-based structures lean on the garbage collector for two
// distinct guarantees: ABA safety (a freed-and-reallocated node can
// never alias a pending CAS expectation) and safe memory reclamation (a
// node is never reused while a concurrent reader can still reach it).
// The repo offers all three reclamation strategies, selectable as
// server backends:
//
//   - GC-backed (queue.LockFreeQueue, list.LockFreeList,
//     skiplist.LockFreeSkipList): both guarantees come from the
//     collector; every insert allocates. Simplest, and the baseline the
//     others are measured against.
//   - Stamped pool (queue.RecyclingQueue, §10.6): a fixed node pool with
//     (index, stamp) packed references. Allocation-free and bounded, at
//     the price of a capacity limit and hand-built stamp discipline.
//   - Epoch-based (internal/epoch; queue.EpochQueue, list.EpochList,
//     skiplist.EpochSkipList): operations pin an epoch record, retired
//     nodes wait out a two-epoch grace period, then recycle through
//     per-slot pools. Unbounded and 0 allocs/op at steady state — the
//     property CI's bench job enforces (see EXPERIMENTS.md E16).
//
// The benchmarks in bench_test.go expose every experiment through
// `go test -bench`.
package amp
