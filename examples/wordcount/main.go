// Wordcount runs the data-parallel patterns (second-edition material) on
// the Chapter 16 executors: MapReduce word counting, a parallel prefix
// sum, and a fork/join matrix multiply checked against the serial answer.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"amp/internal/dataparallel"
	"amp/internal/steal"
)

func main() {
	ex := steal.NewStealingExecutor(4)
	wordCount(ex)
	prefixSum(ex)
	matrix(ex)
}

func wordCount(ex steal.Executor) {
	seed := []string{
		"the art of multiprocessor programming",
		"the free lunch is over",
		"multiprocessor programming is the art of sharing",
		"the queue the stack the list",
	}
	var docs []string
	for i := 0; i < 2000; i++ {
		docs = append(docs, seed[i%len(seed)])
	}
	start := time.Now()
	counts := dataparallel.MapReduce(ex, docs,
		func(doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		func(_ string, vs []int) int {
			total := 0
			for _, v := range vs {
				total += v
			}
			return total
		},
	)
	type kv struct {
		k string
		v int
	}
	var top []kv
	for k, v := range counts {
		top = append(top, kv{k, v})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].v > top[j].v })
	fmt.Printf("MapReduce counted %d distinct words over %d docs in %v; top 3:\n",
		len(counts), len(docs), time.Since(start).Round(time.Millisecond))
	for _, e := range top[:3] {
		fmt.Printf("  %-16s %d\n", e.k, e.v)
	}
}

func prefixSum(ex steal.Executor) {
	rng := rand.New(rand.NewSource(42))
	in := make([]int, 100_000)
	for i := range in {
		in[i] = rng.Intn(9)
	}
	start := time.Now()
	out := dataparallel.Scan(ex, in, 0, func(a, b int) int { return a + b })
	fmt.Printf("parallel prefix over %d ints in %v; total = %d\n",
		len(in), time.Since(start).Round(time.Millisecond), out[len(out)-1])
}

func matrix(ex steal.Executor) {
	const n = 256
	rng := rand.New(rand.NewSource(7))
	a := dataparallel.NewMatrix(n)
	b := dataparallel.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64(rng.Intn(5)))
			b.Set(i, j, float64(rng.Intn(5)))
		}
	}
	c := dataparallel.NewMatrix(n)
	start := time.Now()
	dataparallel.MulMatrix(ex, c, a, b)
	elapsed := time.Since(start)

	// Spot-check one entry against the serial dot product.
	i, j := n/3, n/2
	want := 0.0
	for k := 0; k < n; k++ {
		want += a.At(i, k) * b.At(k, j)
	}
	fmt.Printf("fork/join %dx%d matrix multiply in %v (spot check: c[%d][%d]=%v, serial=%v)\n",
		n, n, elapsed.Round(time.Millisecond), i, j, c.At(i, j), want)
}
