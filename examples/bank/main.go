// Bank is the canonical transactional-memory example (Ch. 18): concurrent
// transfers between accounts under the TL2-style STM, with a running
// auditor that must always see the invariant total, and a comparison
// against a global lock.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"amp/internal/stm"
)

const (
	accounts  = 32
	initial   = 1_000
	workers   = 8
	transfers = 5_000
)

func main() {
	s := stm.New()
	acct := make([]*stm.TVar[int], accounts)
	for i := range acct {
		acct[i] = stm.NewTVar(initial)
	}

	stop := make(chan struct{})
	var audits, auditFailures int
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			total := 0
			s.Atomic(func(tx *stm.Tx) {
				total = 0
				for _, a := range acct {
					total += a.Get(tx)
				}
			})
			audits++
			if total != accounts*initial {
				auditFailures++
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				amount := rng.Intn(20) + 1
				s.Atomic(func(tx *stm.Tx) {
					f := acct[from].Get(tx)
					acct[from].Set(tx, f-amount)
					acct[to].Set(tx, acct[to].Get(tx)+amount)
				})
			}
		}(int64(w + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	<-auditDone

	total := 0
	for _, a := range acct {
		total += a.Load()
	}
	fmt.Printf("STM bank: %d transfers by %d workers in %v\n",
		workers*transfers, workers, elapsed.Round(time.Millisecond))
	fmt.Printf("  final total %d (invariant %d)\n", total, accounts*initial)
	fmt.Printf("  %d audits ran concurrently, %d saw a broken invariant\n",
		audits, auditFailures)
	fmt.Printf("  commits=%d aborts=%d (abort rate %.1f%%)\n",
		s.Commits(), s.Aborts(),
		100*float64(s.Aborts())/float64(s.Commits()+s.Aborts()))

	// The coarse-lock version of the same workload, for contrast.
	balances := make([]int, accounts)
	for i := range balances {
		balances[i] = initial
	}
	var mu sync.Mutex
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amount := rng.Intn(20) + 1
				mu.Lock()
				balances[from] -= amount
				balances[to] += amount
				mu.Unlock()
			}
		}(int64(w + 1))
	}
	wg.Wait()
	fmt.Printf("coarse-lock bank: same workload in %v\n",
		time.Since(start).Round(time.Millisecond))
}
