// Counting dispenses tickets from the Chapter 12 shared counters — a CAS
// hot spot, a software combining tree, and a bitonic counting network —
// and verifies every scheme hands out exactly the tickets 0..n-1.
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"amp/internal/core"
	"amp/internal/counting"
)

const (
	threads = 8
	perT    = 20_000
)

func dispense(name string, c counting.Counter) {
	results := make([][]int64, threads)
	start := time.Now()
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			out := make([]int64, perT)
			for i := range out {
				out[i] = c.GetAndIncrement(me)
			}
			results[me] = out
		}(core.ThreadID(th))
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, r := range results {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	ok := true
	for i, v := range all {
		if v != int64(i) {
			ok = false
			break
		}
	}
	fmt.Printf("  %-12s %8d tickets in %-8v unique+gap-free=%v\n",
		name, len(all), elapsed.Round(time.Millisecond), ok)
}

func main() {
	fmt.Printf("dispensing %d tickets with %d threads:\n", threads*perT, threads)
	dispense("cas", &counting.CASCounter{})
	dispense("lock", &counting.LockCounter{})
	dispense("combining", counting.NewCombiningTree(threads))
	dispense("bitonic[8]", counting.NewNetworkCounter(counting.NewBitonic(8)))
	dispense("periodic[8]", counting.NewNetworkCounter(counting.NewPeriodic(8)))
}
