// Quickstart tours the library: a lock-free set, a Michael–Scott queue, a
// Treiber stack, a queue lock, and a recorded history checked for
// linearizability — one stop per part of the book.
package main

import (
	"fmt"
	"sync"

	"amp/internal/core"
	"amp/internal/list"
	"amp/internal/queue"
	"amp/internal/spin"
	"amp/internal/stack"
)

func main() {
	demoSet()
	demoQueue()
	demoStack()
	demoLock()
	demoChecker()
}

func demoSet() {
	fmt.Println("— lock-free list set (Ch. 9) —")
	s := list.NewLockFreeList()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Add(base + i)
			}
		}(w * 1000)
	}
	wg.Wait()
	fmt.Printf("  contains(1042) = %v, contains(9999) = %v\n",
		s.Contains(1042), s.Contains(9999))
}

func demoQueue() {
	fmt.Println("— Michael–Scott queue (Ch. 10) —")
	q := queue.NewLockFreeQueue[string]()
	q.Enq("first")
	q.Enq("second")
	for {
		v, ok := q.Deq()
		if !ok {
			break
		}
		fmt.Printf("  dequeued %q\n", v)
	}
}

func demoStack() {
	fmt.Println("— elimination-backoff stack (Ch. 11) —")
	s := stack.NewEliminationBackoffStack[int]()
	var wg sync.WaitGroup
	var popped sync.Map
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Push(w*100 + i)
				if v, ok := s.Pop(); ok {
					popped.Store(v, true)
				}
			}
		}(w)
	}
	wg.Wait()
	n := 0
	popped.Range(func(any, any) bool { n++; return true })
	fmt.Printf("  popped %d distinct values under contention\n", n)
}

func demoLock() {
	fmt.Println("— MCS queue lock (Ch. 7) —")
	const workers = 4
	l := spin.NewMCSLock(workers)
	reg := core.NewRegistry(workers)
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			me := reg.MustAcquire()
			defer reg.Release(me)
			for i := 0; i < 1000; i++ {
				l.Lock(me)
				counter++
				l.Unlock(me)
			}
		}()
	}
	wg.Wait()
	fmt.Printf("  counter = %d (want %d)\n", counter, workers*1000)
}

func demoChecker() {
	fmt.Println("— linearizability checking (Ch. 3) —")
	rec := core.NewRecorder()
	q := queue.NewLockFreeQueue[int]()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if i%2 == 0 {
					p := rec.Call(me, "enq", int(me)*10+i)
					q.Enq(int(me)*10 + i)
					p.Done(nil)
				} else {
					p := rec.Call(me, "deq", nil)
					if v, ok := q.Deq(); ok {
						p.Done(v)
					} else {
						p.Done(core.Empty)
					}
				}
			}
		}(core.ThreadID(w))
	}
	wg.Wait()
	res := core.Check(core.QueueModel(), rec.History())
	fmt.Printf("  recorded %d operations; linearizable = %v\n",
		rec.Len(), res.Linearizable)
}
