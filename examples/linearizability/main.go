// Linearizability catches a seeded concurrency bug with the Chapter 3
// checker: a "queue" whose dequeue reads the head and unlinks it in two
// unsynchronized steps loses FIFO order under contention. The checker
// rejects its histories while accepting the Michael–Scott queue's.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"amp/internal/core"
	"amp/internal/queue"
)

// racyQueue is deliberately wrong: Deq reads head.next and swings head in
// two separate atomic steps, so two dequeuers can return the same element
// or skip one.
type racyQueue struct {
	head atomic.Pointer[racyNode]
	tail atomic.Pointer[racyNode]
}

type racyNode struct {
	value int
	next  atomic.Pointer[racyNode]
}

func newRacyQueue() *racyQueue {
	q := &racyQueue{}
	sentinel := &racyNode{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

func (q *racyQueue) Enq(v int) {
	node := &racyNode{value: v}
	for {
		last := q.tail.Load()
		if last.next.CompareAndSwap(nil, node) {
			q.tail.CompareAndSwap(last, node)
			return
		}
		q.tail.CompareAndSwap(last, last.next.Load())
	}
}

func (q *racyQueue) Deq() (int, bool) {
	first := q.head.Load()
	next := first.next.Load()
	if next == nil {
		return 0, false
	}
	runtime.Gosched()  // widen the window so the race shows up quickly
	q.head.Store(next) // BUG: not a CAS — races with other dequeuers
	return next.value, true
}

type intQueue interface {
	Enq(int)
	Deq() (int, bool)
}

func record(q intQueue, attempts int) (core.History, int) {
	for attempt := 1; ; attempt++ {
		rec := core.NewRecorder()
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(me core.ThreadID) {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					if i%2 == 0 {
						v := int(me)*100 + i
						p := rec.Call(me, "enq", v)
						q.Enq(v)
						p.Done(nil)
					} else {
						p := rec.Call(me, "deq", nil)
						if v, ok := q.Deq(); ok {
							p.Done(v)
						} else {
							p.Done(core.Empty)
						}
					}
				}
			}(core.ThreadID(w))
		}
		wg.Wait()
		h := rec.History()
		if res := core.Check(core.QueueModel(), h); !res.Linearizable || attempt == attempts {
			return h, attempt
		}
	}
}

func main() {
	fmt.Println("checking the Michael-Scott queue:")
	h, attempts := record(queue.NewLockFreeQueue[int](), 50)
	res := core.Check(core.QueueModel(), h)
	fmt.Printf("  %d runs, last history (%d ops) linearizable = %v\n",
		attempts, len(h), res.Linearizable)

	fmt.Println("checking the deliberately racy queue:")
	found := false
	for trial := 0; trial < 200 && !found; trial++ {
		h, _ := record(newRacyQueue(), 1)
		if res := core.Check(core.QueueModel(), h); !res.Linearizable {
			fmt.Printf("  violation found: %d-op history admits no sequential order\n", len(h))
			for _, op := range h {
				fmt.Printf("    %v\n", op)
			}
			found = true
		}
	}
	if !found {
		fmt.Println("  no violation surfaced this run (the race is probabilistic); try again")
	}
}
