// Worksteal runs an irregular fork/join computation — counting primes by
// recursive range splitting — on the Chapter 16 executors and compares
// work stealing against a single shared queue.
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"amp/internal/steal"
)

const (
	limit      = 200_000
	grainSize  = 2_000
	workerSets = 4
)

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// countRange forks until ranges are grain-sized, then counts directly. The
// split is deliberately lopsided (1/3 vs 2/3) so queues imbalance and
// stealing has something to do.
func countRange(lo, hi int, primes *atomic.Int64) steal.Task {
	return func(s steal.Spawner) {
		for hi-lo > grainSize {
			mid := lo + (hi-lo)/3
			s.Spawn(countRange(mid, hi, primes))
			hi = mid
		}
		count := 0
		for n := lo; n < hi; n++ {
			if isPrime(n) {
				count++
			}
		}
		primes.Add(int64(count))
	}
}

func run(name string, ex steal.Executor) {
	var primes atomic.Int64
	start := time.Now()
	ex.Run(countRange(0, limit, &primes))
	fmt.Printf("  %-13s %6d primes below %d in %v\n",
		name, primes.Load(), limit, time.Since(start).Round(time.Millisecond))
}

func main() {
	fmt.Printf("counting primes below %d with %d workers:\n", limit, workerSets)
	run("stealing", steal.NewStealingExecutor(workerSets))
	run("sharing", steal.NewSharingExecutor(workerSets))
	run("single-queue", steal.NewSingleQueueExecutor(workerSets))
	run("sequential", steal.NewStealingExecutor(1))
}
