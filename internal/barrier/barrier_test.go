package barrier

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amp/internal/core"
)

func barriers(n int) map[string]Barrier {
	return map[string]Barrier{
		"sense":         NewSenseBarrier(n),
		"tree":          NewTreeBarrier(n, 2),
		"static":        NewStaticTreeBarrier(n, 2),
		"dissemination": NewDisseminationBarrier(n),
	}
}

// exercisePhases runs n threads through r barrier phases and checks the
// barrier property: when a thread leaves phase p, every other thread has
// entered phase p.
func exercisePhases(t *testing.T, b Barrier, rounds int) {
	t.Helper()
	n := b.Size()
	arrived := make([]atomic.Int64, n)
	var wg sync.WaitGroup
	for th := 0; th < n; th++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for round := 1; round <= rounds; round++ {
				arrived[me].Store(int64(round))
				b.Await(me)
				for j := 0; j < n; j++ {
					if got := arrived[j].Load(); got < int64(round) {
						t.Errorf("thread %d left round %d but thread %d only reached %d",
							me, round, j, got)
						return
					}
				}
			}
		}(core.ThreadID(th))
	}
	wg.Wait()
}

func TestBarrierPhases4(t *testing.T) {
	for name, b := range barriers(4) {
		t.Run(name, func(t *testing.T) {
			exercisePhases(t, b, 50)
		})
	}
}

func TestBarrierPhases8(t *testing.T) {
	for name, b := range barriers(8) {
		t.Run(name, func(t *testing.T) {
			exercisePhases(t, b, 25)
		})
	}
}

func TestBarrierOddSizes(t *testing.T) {
	// Sense and dissemination barriers take any n.
	for _, n := range []int{1, 3, 5, 7} {
		for name, b := range map[string]Barrier{
			"sense":         NewSenseBarrier(n),
			"dissemination": NewDisseminationBarrier(n),
		} {
			t.Run(name, func(t *testing.T) {
				exercisePhases(t, b, 20)
			})
		}
	}
}

func TestBarrierSizes(t *testing.T) {
	for name, b := range barriers(4) {
		if got := b.Size(); got != 4 {
			t.Errorf("%s: Size = %d, want 4", name, got)
		}
	}
}

func TestTreeBarrierRejectsNonPower(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n not a power of radix did not panic")
		}
	}()
	NewTreeBarrier(6, 2)
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSenseBarrier(0) },
		func() { NewTreeBarrier(0, 2) },
		func() { NewTreeBarrier(4, 1) },
		func() { NewStaticTreeBarrier(0, 2) },
		func() { NewDisseminationBarrier(0) },
		func() { NewTDBarrier(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestBarrierBlocksUntilLastArrives(t *testing.T) {
	for name, b := range barriers(2) {
		t.Run(name, func(t *testing.T) {
			released := make(chan struct{})
			go func() {
				b.Await(0)
				close(released)
			}()
			select {
			case <-released:
				t.Fatal("Await(0) returned before Await(1)")
			case <-time.After(50 * time.Millisecond):
			}
			b.Await(1)
			select {
			case <-released:
			case <-time.After(5 * time.Second):
				t.Fatal("Await(0) never released")
			}
		})
	}
}

// TestTDBarrier simulates a small work-stealing pool: threads go inactive
// when they find no work, reactivate when they steal some, and the barrier
// announces termination exactly when all work is gone.
func TestTDBarrier(t *testing.T) {
	const workers = 4
	td := NewTDBarrier(workers)
	var work atomic.Int64
	work.Store(1000)
	var executed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			active := true
			for {
				if work.Add(-1) >= 0 {
					executed.Add(1)
					continue
				}
				work.Add(1) // undo the failed claim
				if active {
					td.SetActive(false)
					active = false
				}
				if td.Terminated() {
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := executed.Load(); got != 1000 {
		t.Fatalf("executed %d work items, want 1000", got)
	}
	if !td.Terminated() {
		t.Fatal("barrier not terminated after all workers exited")
	}
}

func TestTDBarrierReactivation(t *testing.T) {
	td := NewTDBarrier(2)
	if td.Terminated() {
		t.Fatal("terminated while all active")
	}
	td.SetActive(false)
	td.SetActive(false)
	if !td.Terminated() {
		t.Fatal("not terminated with all inactive")
	}
	td.SetActive(true)
	if td.Terminated() {
		t.Fatal("terminated with one active thread")
	}
}
