// Package barrier implements the Chapter 17 reusable barriers: the
// sense-reversing barrier (Fig. 17.5), the combining tree barrier
// (Fig. 17.6), the static tree barrier (Fig. 17.10), the
// termination-detecting barrier for work stealing (§17.6), and — from the
// chapter notes' wider literature — the dissemination barrier of
// Hensgen, Finkel and Manber.
//
// All barriers are reusable: sense reversal distinguishes consecutive
// phases. Threads identify themselves with dense core.ThreadID handles.
package barrier

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"amp/internal/core"
)

// Barrier synchronizes a fixed set of threads: Await returns only after
// every thread of the phase has called it.
type Barrier interface {
	Await(me core.ThreadID)
	// Size reports the number of participating threads.
	Size() int
}

// SenseBarrier is the sense-reversing barrier (Fig. 17.5): a shared count
// and a phase flag ("sense") that the last arriver flips.
type SenseBarrier struct {
	count       atomic.Int64
	size        int
	sense       atomic.Bool
	threadSense []bool // per-thread; each slot touched only by its owner
}

var _ Barrier = (*SenseBarrier)(nil)

// NewSenseBarrier returns a barrier for n threads.
func NewSenseBarrier(n int) *SenseBarrier {
	if n <= 0 {
		panic(fmt.Sprintf("barrier: size must be positive, got %d", n))
	}
	b := &SenseBarrier{size: n, threadSense: make([]bool, n)}
	b.count.Store(int64(n))
	for i := range b.threadSense {
		b.threadSense[i] = true
	}
	return b
}

// Await blocks until all n threads arrive.
func (b *SenseBarrier) Await(me core.ThreadID) {
	mySense := b.threadSense[me]
	if b.count.Add(-1) == 0 {
		b.count.Store(int64(b.size))
		b.sense.Store(mySense) // release the phase
	} else {
		for b.sense.Load() != mySense {
			runtime.Gosched()
		}
	}
	b.threadSense[me] = !mySense
}

// Size reports the thread count.
func (b *SenseBarrier) Size() int { return b.size }

// treeNode is one node of the combining tree barrier.
type treeNode struct {
	count  atomic.Int64
	sense  atomic.Bool
	parent *treeNode
	radix  int
}

// TreeBarrier is the combining tree barrier (Fig. 17.6): threads are
// grouped radix-at-a-time onto leaves; the last arriver at each node climbs
// to the parent, and releases cascade back down.
type TreeBarrier struct {
	radix       int
	size        int
	leaves      []*treeNode
	threadSense []bool
}

var _ Barrier = (*TreeBarrier)(nil)

// NewTreeBarrier returns a barrier for n threads combining radix-wise;
// n must be a power of radix times radix (i.e. radix^k for some k ≥ 1).
func NewTreeBarrier(n, radix int) *TreeBarrier {
	if n <= 0 || radix < 2 {
		panic(fmt.Sprintf("barrier: invalid tree barrier (n=%d, radix=%d)", n, radix))
	}
	for v := n; v > 1; v /= radix {
		if v%radix != 0 {
			panic(fmt.Sprintf("barrier: n=%d is not a power of radix %d", n, radix))
		}
	}
	b := &TreeBarrier{radix: radix, size: n, threadSense: make([]bool, n)}
	for i := range b.threadSense {
		b.threadSense[i] = true
	}
	var build func(parent *treeNode, depth int)
	build = func(parent *treeNode, depth int) {
		node := &treeNode{parent: parent, radix: radix}
		node.count.Store(int64(radix))
		if depth == 0 {
			b.leaves = append(b.leaves, node)
			return
		}
		for i := 0; i < radix; i++ {
			build(node, depth-1)
		}
	}
	depth := 0
	for v := radix; v < n; v *= radix {
		depth++
	}
	build(nil, depth)
	return b
}

// Await blocks until all threads arrive. Thread me enters at leaf me/radix.
func (b *TreeBarrier) Await(me core.ThreadID) {
	mySense := b.threadSense[me]
	b.leaves[int(me)/b.radix].await(mySense)
	b.threadSense[me] = !mySense
}

func (n *treeNode) await(mySense bool) {
	if n.count.Add(-1) == 0 {
		// Last arriver here: combine upward, then release this node.
		if n.parent != nil {
			n.parent.await(mySense)
		}
		n.count.Store(int64(n.radix))
		n.sense.Store(mySense)
	} else {
		for n.sense.Load() != mySense {
			runtime.Gosched()
		}
	}
}

// Size reports the thread count.
func (b *TreeBarrier) Size() int { return b.size }

// staticNode is one thread's node in the static tree barrier.
type staticNode struct {
	children   int
	childCount atomic.Int64
	parent     *staticNode
}

// StaticTreeBarrier (Fig. 17.10) assigns every thread its own tree node:
// a thread waits for its children, notifies its parent, and spins on the
// global sense, which the root flips. Each thread spins on O(1) locations
// and the barrier needs only O(n) space.
type StaticTreeBarrier struct {
	size        int
	sense       atomic.Bool
	nodes       []*staticNode
	threadSense []bool
}

var _ Barrier = (*StaticTreeBarrier)(nil)

// NewStaticTreeBarrier returns a barrier for n threads on a radix-ary
// static tree.
func NewStaticTreeBarrier(n, radix int) *StaticTreeBarrier {
	if n <= 0 || radix < 2 {
		panic(fmt.Sprintf("barrier: invalid static tree barrier (n=%d, radix=%d)", n, radix))
	}
	b := &StaticTreeBarrier{size: n, nodes: make([]*staticNode, n), threadSense: make([]bool, n)}
	for i := range b.threadSense {
		b.threadSense[i] = true
	}
	for i := 0; i < n; i++ {
		b.nodes[i] = &staticNode{}
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			parent := b.nodes[(i-1)/radix]
			b.nodes[i].parent = parent
			parent.children++
		}
	}
	for i := 0; i < n; i++ {
		b.nodes[i].childCount.Store(int64(b.nodes[i].children))
	}
	return b
}

// Await blocks until all threads arrive; thread me owns node me.
func (b *StaticTreeBarrier) Await(me core.ThreadID) {
	mySense := b.threadSense[me]
	node := b.nodes[me]
	for node.childCount.Load() > 0 {
		runtime.Gosched() // wait for my children to arrive
	}
	node.childCount.Store(int64(node.children)) // reset for the next phase
	if node.parent != nil {
		node.parent.childCount.Add(-1)
		for b.sense.Load() != mySense {
			runtime.Gosched() // wait for the root's release
		}
	} else {
		b.sense.Store(mySense) // root: release everyone
	}
	b.threadSense[me] = !mySense
}

// Size reports the thread count.
func (b *StaticTreeBarrier) Size() int { return b.size }

// DisseminationBarrier runs ⌈log2 n⌉ rounds; in round r, thread i signals
// thread (i+2^r) mod n and waits to be signalled, so after the last round
// every thread transitively heard from every other. Parity double-buffers
// the flags so phases can overlap safely.
type DisseminationBarrier struct {
	size   int
	rounds int
	// flag[parity][thread][round], written by the partner, read by owner.
	flag   [2][][]atomic.Bool
	parity []int
	sense  []bool
}

var _ Barrier = (*DisseminationBarrier)(nil)

// NewDisseminationBarrier returns a barrier for n threads.
func NewDisseminationBarrier(n int) *DisseminationBarrier {
	if n <= 0 {
		panic(fmt.Sprintf("barrier: size must be positive, got %d", n))
	}
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &DisseminationBarrier{
		size:   n,
		rounds: rounds,
		parity: make([]int, n),
		sense:  make([]bool, n),
	}
	for p := 0; p < 2; p++ {
		b.flag[p] = make([][]atomic.Bool, n)
		for i := range b.flag[p] {
			b.flag[p][i] = make([]atomic.Bool, rounds)
		}
	}
	for i := range b.sense {
		b.sense[i] = true
	}
	return b
}

// Await blocks until all threads arrive.
func (b *DisseminationBarrier) Await(me core.ThreadID) {
	i := int(me)
	p := b.parity[i]
	s := b.sense[i]
	for r := 0; r < b.rounds; r++ {
		partner := (i + 1<<r) % b.size
		b.flag[p][partner][r].Store(s)
		for b.flag[p][i][r].Load() != s {
			runtime.Gosched()
		}
	}
	if p == 1 {
		b.sense[i] = !s
	}
	b.parity[i] = 1 - p
}

// Size reports the thread count.
func (b *DisseminationBarrier) Size() int { return b.size }

// TDBarrier is the termination-detecting barrier of §17.6: work-stealing
// threads toggle between active and inactive; the pool has terminated when
// no thread is active. A thread must declare itself active *before* making
// new work visible to others, or termination could be announced early.
type TDBarrier struct {
	count atomic.Int64
	size  int
}

// NewTDBarrier returns a detector for n threads, all initially active.
func NewTDBarrier(n int) *TDBarrier {
	if n <= 0 {
		panic(fmt.Sprintf("barrier: size must be positive, got %d", n))
	}
	b := &TDBarrier{size: n}
	b.count.Store(int64(n))
	return b
}

// SetActive announces a transition between looking-for-work (false) and
// working (true).
func (b *TDBarrier) SetActive(active bool) {
	if active {
		b.count.Add(1)
	} else {
		b.count.Add(-1)
	}
}

// Terminated reports whether every thread is inactive.
func (b *TDBarrier) Terminated() bool {
	return b.count.Load() == 0
}

// Size reports the thread count.
func (b *TDBarrier) Size() int { return b.size }
