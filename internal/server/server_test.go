package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"amp/internal/core"
	"amp/internal/mailbox"
)

// startServer boots a server on a loopback ephemeral port and registers a
// cleanup shutdown.
func startServer(t *testing.T, opts Options) *Server {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv
}

// client is a line-oriented test client.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, srv *Server) *client {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

// cmd sends one command and returns the reply line.
func (c *client) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatalf("write %q: %v", line, err)
	}
	return c.readLine(t)
}

func (c *client) readLine(t *testing.T) string {
	t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	return strings.TrimSuffix(reply, "\n")
}

// expect asserts one command/reply pair.
func (c *client) expect(t *testing.T, line, want string) {
	t.Helper()
	if got := c.cmd(t, line); got != want {
		t.Fatalf("%q → %q, want %q", line, got, want)
	}
}

func TestServeAllFamilies(t *testing.T) {
	srv := startServer(t, Options{Shards: 4})
	c := dial(t, srv)

	c.expect(t, "PING", "PONG")

	// Set family.
	c.expect(t, "SET 42", "1")
	c.expect(t, "SET 42", "0")
	c.expect(t, "GET 42", "1")
	c.expect(t, "GET 7", "0")
	c.expect(t, "DEL 42", "1")
	c.expect(t, "DEL 42", "0")
	c.expect(t, "GET 42", "0")

	// Stack family (LIFO).
	c.expect(t, "PUSH 1", "OK")
	c.expect(t, "PUSH 2", "OK")
	c.expect(t, "POP", "2")
	c.expect(t, "POP", "1")
	c.expect(t, "POP", "EMPTY")

	// Queue family (FIFO).
	c.expect(t, "ENQ 10", "OK")
	c.expect(t, "ENQ 20", "OK")
	c.expect(t, "DEQ", "10")
	c.expect(t, "DEQ", "20")
	c.expect(t, "DEQ", "EMPTY")

	// Counter family.
	c.expect(t, "INC", "0")
	c.expect(t, "INC", "1")
	c.expect(t, "READ", "2")

	// Priority-queue family.
	c.expect(t, "PQADD 5", "OK")
	c.expect(t, "PQADD 3", "OK")
	c.expect(t, "PQADD 9", "OK")
	c.expect(t, "PQMIN", "3")
	c.expect(t, "PQMIN", "5")
	c.expect(t, "PQMIN", "9")
	c.expect(t, "PQMIN", "EMPTY")

	// Errors keep the connection usable.
	c.expect(t, "FROB", `ERR unknown command "FROB"`)
	c.expect(t, "SET", "ERR SET needs exactly one integer argument")
	c.expect(t, "SET x", `ERR bad integer "x"`)
	c.expect(t, "SET -9223372036854775808", "ERR key -9223372036854775808 is reserved")
	c.expect(t, "GET 7", "0")

	c.expect(t, "QUIT", "OK")
}

// TestBackendMatrix boots one server per backend name of every family and
// exercises that family, so each flaggable implementation is covered.
func TestBackendMatrix(t *testing.T) {
	exercise := map[string]func(t *testing.T, c *client){
		"set": func(t *testing.T, c *client) {
			c.expect(t, "SET 11", "1")
			c.expect(t, "GET 11", "1")
			c.expect(t, "DEL 11", "1")
			c.expect(t, "GET 11", "0")
		},
		"map": func(t *testing.T, c *client) {
			c.expect(t, "HSET k 7", "1")
			c.expect(t, "HSET k 8", "0")
			c.expect(t, "HGET k", "8")
			c.expect(t, "HDEL k", "1")
			c.expect(t, "HGET k", "EMPTY")
		},
		"queue": func(t *testing.T, c *client) {
			c.expect(t, "ENQ 1", "OK")
			c.expect(t, "ENQ 2", "OK")
			c.expect(t, "DEQ", "1")
			c.expect(t, "DEQ", "2")
			c.expect(t, "DEQ", "EMPTY")
		},
		"stack": func(t *testing.T, c *client) {
			c.expect(t, "PUSH 1", "OK")
			c.expect(t, "PUSH 2", "OK")
			c.expect(t, "POP", "2")
			c.expect(t, "POP", "1")
		},
		"pqueue": func(t *testing.T, c *client) {
			c.expect(t, "PQADD 8", "OK")
			c.expect(t, "PQADD 2", "OK")
			c.expect(t, "PQMIN", "2")
			c.expect(t, "PQMIN", "8")
		},
		"counter": func(t *testing.T, c *client) {
			c.expect(t, "INC", "0")
			c.expect(t, "INC", "1")
			c.expect(t, "READ", "2")
		},
	}
	families := map[string][]string{
		"set":     SetBackends(),
		"map":     MapBackends(),
		"queue":   QueueBackends(),
		"stack":   StackBackends(),
		"pqueue":  PQueueBackends(),
		"counter": CounterBackends(),
	}
	for family, names := range families {
		for _, name := range names {
			t.Run(family+"/"+name, func(t *testing.T) {
				opts := Options{Shards: 2}
				// The txn keyspace would absorb the map and counter
				// families; turn it off so the named backend is the one
				// actually exercised.
				opts.Txn = "off"
				switch family {
				case "set":
					opts.Set = name
				case "map":
					opts.Map = name
				case "queue":
					opts.Queue = name
				case "stack":
					opts.Stack = name
				case "pqueue":
					opts.PQueue = name
				case "counter":
					opts.Counter = name
				}
				srv := startServer(t, opts)
				c := dial(t, srv)
				exercise[family](t, c)
			})
		}
	}
}

func TestMetricsCounterBackends(t *testing.T) {
	for _, name := range CounterBackends() {
		t.Run(name, func(t *testing.T) {
			srv := startServer(t, Options{Shards: 2, MetricsCounter: name})
			c := dial(t, srv)
			c.expect(t, "SET 5", "1")
			stats := c.cmd(t, "STATS")
			body := readStats(t, c, stats)
			if !strings.Contains(body, "op set.add count=1") {
				t.Fatalf("STATS missing set.add count:\n%s", body)
			}
		})
	}
}

// readStats consumes a STATS body whose first line is already read.
func readStats(t *testing.T, c *client, first string) string {
	t.Helper()
	var sb strings.Builder
	line := first
	for line != "END" {
		sb.WriteString(line)
		sb.WriteByte('\n')
		line = c.readLine(t)
	}
	return sb.String()
}

func TestUnknownBackend(t *testing.T) {
	for _, opts := range []Options{
		{Set: "nope"}, {Map: "nope"}, {Queue: "nope"}, {Stack: "nope"},
		{PQueue: "nope"}, {Counter: "nope"}, {MetricsCounter: "nope"},
		{Txn: "nope"}, {CM: "nope"},
	} {
		if _, err := New(opts); err == nil || !strings.Contains(err.Error(), `"nope"`) {
			t.Errorf("New(%+v) error = %v, want unknown-backend error", opts, err)
		}
	}
}

// TestPerKeyLinearizable runs concurrent clients on disjoint key ranges;
// on disjoint keys every client must observe strictly sequential set
// semantics regardless of interleaving with other clients.
func TestPerKeyLinearizable(t *testing.T) {
	srv := startServer(t, Options{Shards: 4})
	const clients, keysEach, rounds = 8, 16, 10

	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := dial(t, srv)
			base := 1_000_000 * (id + 1)
			for r := 0; r < rounds; r++ {
				for k := base; k < base+keysEach; k++ {
					key := strconv.Itoa(k)
					c.expect(t, "GET "+key, "0")
					c.expect(t, "SET "+key, "1")
					c.expect(t, "SET "+key, "0")
					c.expect(t, "GET "+key, "1")
					c.expect(t, "DEL "+key, "1")
					c.expect(t, "DEL "+key, "0")
				}
			}
		}(id)
	}
	wg.Wait()
}

// TestCounterTickets checks that concurrent INCs hand out unique tickets
// and READ converges on the total.
func TestCounterTickets(t *testing.T) {
	// Txn off: INC must be served by the combining tree under test, not
	// absorbed by the transactional keyspace.
	srv := startServer(t, Options{Shards: 4, Counter: "combining", Txn: "off"})
	const clients, each = 8, 200

	results := make(chan int64, clients*each)
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dial(t, srv)
			for i := 0; i < each; i++ {
				v, err := strconv.ParseInt(c.cmd(t, "INC"), 10, 64)
				if err != nil {
					t.Errorf("INC reply not an integer: %v", err)
					return
				}
				results <- v
			}
		}()
	}
	wg.Wait()
	close(results)

	seen := make(map[int64]bool)
	for v := range results {
		if seen[v] {
			t.Fatalf("duplicate ticket %d", v)
		}
		seen[v] = true
	}
	if len(seen) != clients*each {
		t.Fatalf("got %d unique tickets, want %d", len(seen), clients*each)
	}
	c := dial(t, srv)
	if got := c.cmd(t, "READ"); got != strconv.Itoa(clients*each) {
		t.Fatalf("READ = %s, want %d", got, clients*each)
	}
}

// TestQueueMultiset checks that concurrently enqueued values are dequeued
// exactly once each.
func TestQueueMultiset(t *testing.T) {
	srv := startServer(t, Options{Shards: 4, Queue: "lockfree"})
	const clients, each = 6, 100

	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := dial(t, srv)
			for i := 0; i < each; i++ {
				c.expect(t, fmt.Sprintf("ENQ %d", id*each+i), "OK")
			}
		}(id)
	}
	wg.Wait()

	c := dial(t, srv)
	seen := make(map[string]bool)
	for i := 0; i < clients*each; i++ {
		v := c.cmd(t, "DEQ")
		if v == "EMPTY" || seen[v] {
			t.Fatalf("dequeue %d: got %q (duplicate or premature empty)", i, v)
		}
		seen[v] = true
	}
	c.expect(t, "DEQ", "EMPTY")
}

func TestBoundedQueueFull(t *testing.T) {
	srv := startServer(t, Options{Shards: 2, Queue: "recycling", QueueCapacity: 4})
	c := dial(t, srv)
	for i := 0; i < 4; i++ {
		c.expect(t, fmt.Sprintf("ENQ %d", i), "OK")
	}
	c.expect(t, "ENQ 99", "FULL")
	c.expect(t, "DEQ", "0")
	c.expect(t, "ENQ 99", "OK")
}

func TestPQueueRange(t *testing.T) {
	srv := startServer(t, Options{Shards: 2, PQueue: "linear", PQCapacity: 8})
	c := dial(t, srv)
	c.expect(t, "PQADD 7", "OK")
	c.expect(t, "PQMIN", "7")
	if got := c.cmd(t, "PQADD 8"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("PQADD 8 = %q, want ERR (range is [0,8))", got)
	}
}

func TestStatsCounts(t *testing.T) {
	srv := startServer(t, Options{Shards: 2})
	c := dial(t, srv)
	c.expect(t, "SET 1", "1")
	c.expect(t, "SET 2", "1")
	c.expect(t, "GET 1", "1")
	c.expect(t, "HSET k 5", "1")
	c.expect(t, "HGET k", "5")
	c.expect(t, "HGET nope", "EMPTY")
	c.expect(t, "HDEL k", "1")
	c.expect(t, "PUSH 3", "OK")
	c.expect(t, "INC", "0")

	// Default options: striped set (no bypass — GET rides the mailbox,
	// counted under set.contains and read.mailbox) and txn=tl2 (HGET
	// bypasses via the keyspace, counted under read.bypass, not map.get).
	body := readStats(t, c, c.cmd(t, "STATS"))
	for _, want := range []string{
		"shards 2",
		"backend set=striped map=striped queue=unbounded stack=treiber pqueue=skip counter=combining",
		"read-bypass set=off map=on",
		"op set.add count=2",
		"op set.contains count=1",
		"op map.set count=1",
		"op map.get count=0",
		"op map.del count=1",
		"op stack.push count=1",
		"op counter.inc count=1",
		"op queue.enq count=0",
		"op read.bypass count=2",
		"op read.mailbox count=1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("STATS missing %q:\n%s", want, body)
		}
	}
}

// TestStatsCountsBypassOff proves the -read-bypass=off escape hatch: the
// same traffic with the bypass disabled routes every read through the
// shard mailboxes, restoring the per-op registry counts.
func TestStatsCountsBypassOff(t *testing.T) {
	srv := startServer(t, Options{Shards: 2, ReadBypass: "off"})
	c := dial(t, srv)
	c.expect(t, "SET 1", "1")
	c.expect(t, "GET 1", "1")
	c.expect(t, "HSET k 5", "1")
	c.expect(t, "HGET k", "5")
	c.expect(t, "HGET nope", "EMPTY")

	body := readStats(t, c, c.cmd(t, "STATS"))
	for _, want := range []string{
		"read-bypass set=off map=off",
		"op set.contains count=1",
		"op map.get count=2",
		"op read.bypass count=0",
		"op read.mailbox count=3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("STATS missing %q:\n%s", want, body)
		}
	}
}

// TestPipelinedConnection writes a whole script of commands in one
// burst and checks every reply, in order. On a single connection runs
// are submitted to the shards one at a time, so program order — and
// with it sequential semantics — is preserved even though the commands
// span every family, several shards, parse errors, and control ops.
func TestPipelinedConnection(t *testing.T) {
	srv := startServer(t, Options{Shards: 4})
	c := dial(t, srv)
	script := "SET 1\nGET 1\nENQ 7\nPUSH 3\nINC\nENQ 8\nDEQ\nDEQ\nDEQ\nPOP\n" +
		"FROB\nPING\nREAD\nSET -9223372036854775808\nGET 1\n"
	want := []string{
		"1", "1", "OK", "OK", "0", "OK", "7", "8", "EMPTY", "3",
		`ERR unknown command "FROB"`, "PONG", "1",
		"ERR key -9223372036854775808 is reserved", "1",
	}
	if _, err := c.conn.Write([]byte(script)); err != nil {
		t.Fatalf("write: %v", err)
	}
	for i, w := range want {
		if got := c.readLine(t); got != w {
			t.Fatalf("reply %d = %q, want %q", i, got, w)
		}
	}
}

// TestPipelinedBulk pushes a batch far larger than maxBatch through one
// connection and checks one reply per command, in order, plus the
// batch-size histogram having recorded combined runs.
func TestPipelinedBulk(t *testing.T) {
	srv := startServer(t, Options{Shards: 4})
	c := dial(t, srv)
	const n = 1000
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "SET %d\n", i)
	}
	if _, err := c.conn.Write([]byte(sb.String())); err != nil {
		t.Fatalf("write: %v", err)
	}
	for i := 0; i < n; i++ {
		if got := c.readLine(t); got != "1" {
			t.Fatalf("SET %d → %q, want 1", i, got)
		}
	}
	c.expect(t, "GET 500", "1")

	body := readStats(t, c, c.cmd(t, "STATS"))
	if !strings.Contains(body, "hist shard.batch count=") {
		t.Fatalf("STATS missing batch-size histogram:\n%s", body)
	}
}

// TestPipelinedSubmitAbortUnblocks is the regression test for the
// unbounded-wait footgun: a connection goroutine backing off against a
// full shard mailbox must give up once the engine aborts, instead of
// deadlocking a draining server.
func TestPipelinedSubmitAbortUnblocks(t *testing.T) {
	e := &engine{}
	s := &shard{mbox: mailbox.New[*batch](2, 0)}
	e.all = []*shard{s}
	for s.mbox.TryPut(&batch{}) {
		// saturate the ring; nothing drains it
	}

	res := make(chan bool, 1)
	go func() { res <- e.submit(s, &batch{}) }()
	select {
	case <-res:
		t.Fatal("submit returned while the shard queue was full")
	case <-time.After(50 * time.Millisecond):
	}

	e.abort()
	select {
	case ok := <-res:
		if ok {
			t.Fatal("submit reported success after abort")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("submit still blocked after abort: a draining server would deadlock")
	}
}

// historyClient replays add/take traffic over one pipelined connection,
// recording every operation in rec: Call when the command is sent, Done
// when its reply is read. Goroutine-safe (returns errors, no t.Fatal).
func historyClient(addr string, rec *core.Recorder, me core.ThreadID,
	addVerb, takeVerb, addAct, takeAct string, depth, ops, id int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	type sent struct {
		pend *core.PendingOp
		take bool
	}
	window := make([]sent, 0, depth)
	for next := 0; next < ops; {
		window = window[:0]
		for next < ops && len(window) < depth {
			if next%2 == 0 {
				v := id*100_000 + next
				window = append(window, sent{pend: rec.Call(me, addAct, v)})
				fmt.Fprintf(w, "%s %d\n", addVerb, v)
			} else {
				window = append(window, sent{pend: rec.Call(me, takeAct, nil), take: true})
				fmt.Fprintf(w, "%s\n", takeVerb)
			}
			next++
		}
		if err := w.Flush(); err != nil {
			return err
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		for _, s := range window {
			line, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			line = strings.TrimSuffix(line, "\n")
			switch {
			case !s.take:
				if line != "OK" {
					return fmt.Errorf("%s reply %q, want OK", addVerb, line)
				}
				s.pend.Done(nil)
			case line == "EMPTY":
				s.pend.Done(core.Empty)
			default:
				v, err := strconv.Atoi(line)
				if err != nil {
					return fmt.Errorf("%s reply %q, want integer or EMPTY", takeVerb, line)
				}
				s.pend.Done(v)
			}
		}
	}
	return nil
}

// testServerLinearizable records a concurrent history through a live
// pipelined server — many clients, mixed pipeline depths — and checks
// it against the sequential model with the cmd/linearize checker.
//
// The Wing & Gong search cost grows steeply with the number of
// operation windows that overlap at once, and an unlucky schedule
// (particularly under -race, which stretches windows) can push a
// perfectly legal history past any fixed budget. An exhausted search
// proves nothing either way, so the test bounds each check and
// re-records a fresh history instead of hanging; only a decided
// non-linearizable verdict fails immediately.
func testServerLinearizable(t *testing.T, opts Options, model core.Model, addVerb, takeVerb, addAct, takeAct string) {
	// Twelve clients in rounds of two concurrent connections with mixed
	// pipeline depths 1 and 3. Verifying queue linearizability is
	// exponential in the number of simultaneously open operations
	// (search cost ≈ history length × 2^overlap × overlap, and FIFO
	// order is only pinned retroactively by dequeues), so the harness
	// bounds the overlap by construction — at most 1+3 = 4 windows open
	// at once — rather than hoping the scheduler keeps the search
	// tractable. The joined rounds are quiescent cuts that decompose the
	// search; the history itself is still one 1000+-op concurrent
	// recording through live pipelined connections.
	const rounds, perRound, opsEach = 6, 2, 85 // 12 clients, 1020-op histories
	depths := []int{1, 3}
	const budget = 2_000_000
	const attempts = 6

	for attempt := 1; attempt <= attempts; attempt++ {
		srv := startServer(t, opts) // fresh structures: model starts empty
		rec := core.NewRecorder()

		for r := 0; r < rounds && !t.Failed(); r++ {
			var wg sync.WaitGroup
			for j := 0; j < perRound; j++ {
				id := r*perRound + j
				wg.Add(1)
				go func(id, depth int) {
					defer wg.Done()
					err := historyClient(srv.Addr().String(), rec, core.ThreadID(id),
						addVerb, takeVerb, addAct, takeAct, depth, opsEach, id)
					if err != nil {
						t.Errorf("client %d: %v", id, err)
					}
				}(id, depths[j])
			}
			wg.Wait()
		}
		if t.Failed() {
			return
		}

		h := rec.History()
		if len(h) < 1000 {
			t.Fatalf("history has %d ops, want >= 1000", len(h))
		}
		res := core.CheckBudget(model, h, budget)
		switch {
		case res.Exhausted:
			t.Logf("%s: attempt %d/%d exhausted the %d-step budget on %d ops; re-recording",
				model.Name, attempt, attempts, budget, len(h))
		case !res.Linearizable:
			t.Fatalf("%s: %d-op server history is not linearizable", model.Name, len(h))
		default:
			return // linearizable, witness found
		}
	}
	t.Fatalf("%s: checker budget exhausted on %d consecutive recordings", model.Name, attempts)
}

// TestServerLinearizableQueue checks ENQ/DEQ histories recorded through
// the pipelined server against the FIFO queue model.
func TestServerLinearizableQueue(t *testing.T) {
	testServerLinearizable(t, Options{Shards: 4}, core.QueueModel(), "ENQ", "DEQ", "enq", "deq")
}

// TestServerLinearizableQueueEpoch runs the same harness against the
// epoch-recycled Michael–Scott backend: node reuse must never produce a
// history the FIFO model rejects.
func TestServerLinearizableQueueEpoch(t *testing.T) {
	testServerLinearizable(t, Options{Shards: 4, Queue: "lockfree-epoch"},
		core.QueueModel(), "ENQ", "DEQ", "enq", "deq")
}

// TestServerLinearizableStack checks PUSH/POP histories recorded through
// the pipelined server against the LIFO stack model.
func TestServerLinearizableStack(t *testing.T) {
	testServerLinearizable(t, Options{Shards: 4}, core.StackModel(), "PUSH", "POP", "push", "pop")
}

// TestPartialReads feeds a pipelined pair of commands byte by byte; the
// framing layer must reassemble them.
func TestPartialReads(t *testing.T) {
	srv := startServer(t, Options{Shards: 2})
	c := dial(t, srv)
	for _, b := range []byte("SET 123\nGET 123\n") {
		if _, err := c.conn.Write([]byte{b}); err != nil {
			t.Fatalf("write: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.readLine(t); got != "1" {
		t.Fatalf("SET 123 → %q, want 1", got)
	}
	if got := c.readLine(t); got != "1" {
		t.Fatalf("GET 123 → %q, want 1", got)
	}
}

// TestOversizedLine checks that a line the framing layer cannot buffer
// gets an error reply and a closed connection.
func TestOversizedLine(t *testing.T) {
	srv := startServer(t, Options{Shards: 2})
	c := dial(t, srv)
	long := "SET " + strings.Repeat("1", 4*MaxLineLen) + "\n"
	if _, err := c.conn.Write([]byte(long)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := c.readLine(t); got != "ERR line too long" {
		t.Fatalf("reply = %q, want ERR line too long", got)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after oversized line")
	}
}

func TestIdleTimeout(t *testing.T) {
	srv := startServer(t, Options{Shards: 2, IdleTimeout: 50 * time.Millisecond})
	c := dial(t, srv)
	c.expect(t, "PING", "PONG")
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("idle connection not closed")
	}
}

// TestGracefulShutdown drives traffic from several clients, shuts the
// server down mid-stream, and checks that no goroutines leak.
func TestGracefulShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := New(Options{Shards: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	// Clients hammer until their connection dies.
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; ; i++ {
				if _, err := fmt.Fprintf(conn, "SET %d\n", id*1000+i); err != nil {
					return
				}
				conn.SetReadDeadline(time.Now().Add(2 * time.Second))
				if _, err := r.ReadString('\n'); err != nil {
					return
				}
			}
		}(id)
	}
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()

	// All server goroutines (acceptor, conns, shards) must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestShutdownForcePathSaturatedRing wedges the sole shard's combiner
// mid-command so that subsequent submitters fill the ring to capacity
// and overflow into the producer backoff, then drives Shutdown's force
// path (an already-short drain deadline). The force path must abort the
// mailbox — unblocking every producer parked on the full ring — and once
// the wedge releases, every batch already accepted must still be drained
// and answered: no conn goroutine may be left waiting on a reply, which
// the goroutine-leak check below would catch, and the shard goroutines
// must all exit.
func TestShutdownForcePathSaturatedRing(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := New(Options{Shards: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	// The wedge: the first SET 424242 parks its combining goroutine (the
	// submitting connection itself, holding the combiner lock) until the
	// test releases it. Installed before any traffic.
	entered := make(chan struct{})
	release := make(chan struct{})
	var wedged sync.Once
	srv.eng.applyHook = func(cmd Command) {
		if cmd.Op == OpSet && cmd.Arg == 424242 {
			wedged.Do(func() {
				entered <- struct{}{}
				<-release
			})
		}
	}

	wedgeConn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer wedgeConn.Close()
	if _, err := wedgeConn.Write([]byte("SET 424242\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	<-entered // combiner lock held, nothing will drain the ring

	// Saturate: more single-batch connections than the ring holds, so the
	// overflow parks inside the producer backoff. Every client must
	// eventually unblock — with a reply or a dead socket, never a hang.
	const clients = shardQueueDepth + 24
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			fmt.Fprintf(conn, "SET %d\n", i)
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			bufio.NewReader(conn).ReadString('\n')
		}(i)
	}
	time.Sleep(300 * time.Millisecond) // let the ring fill and producers park

	// Force path: the deadline is far shorter than the wedge, so the
	// drain expires, abort closes the mailboxes, and the parked producers
	// give up while the wedge is still in place.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	time.Sleep(400 * time.Millisecond) // deadline expired, abort fired
	close(release)

	if err := <-shutdownErr; err == nil || !strings.Contains(err.Error(), "drain expired") {
		t.Fatalf("Shutdown = %v, want drain-expired error", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()

	// Every accepted batch was answered (a dropped reply would leave its
	// connection goroutine parked on the reply channel forever) and the
	// shard goroutines are gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestShutdownUnserved: a server that never served must still stop its
// shard goroutines.
func TestShutdownUnserved(t *testing.T) {
	srv, err := New(Options{Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
