// Durability and elasticity: point-in-time snapshots (SAVE/BGSAVE),
// restart-with-restore (RESTORE, Server.Restore), and live N→2N
// resharding (RESHARD).
//
// A snapshot is collected under a full quiesce — every shard's combiner
// lock held at a batch boundary, in registration order, plus the EXEC
// gate — so the image is a consistent cut of the history: every command
// answered before SAVE returned is in it, no torn transactions, no
// half-applied batches. Commands still in flight (submitted, not yet
// answered) linearize after the cut, which linearizability permits.
//
// Resharding doubles the shard count without stopping traffic. Slot
// doubling has a convenient algebra: keyShard(k, 2N) is either
// keyShard(k, N) or keyShard(k, N)+N, so shard i's keys split only
// between slots i and i+N. The reshard first publishes a 2N router
// whose new slots alias the old shards (routing-correct immediately),
// then per source shard — under that shard's combiner lock, at a batch
// boundary — copies the movers into a fresh shard, flips slot i+N to
// it, and deletes the movers from the source. In-flight batches routed
// under a superseded router are detected by the combiner's staleness
// check and replayed through the current router (engine.redispatch),
// so no command is lost, duplicated, or executed against a stale home.
package server

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"amp/internal/core"
	"amp/internal/snapshot"
	"amp/internal/strmap"
)

// snapFile is the snapshot filename under Options.SnapshotDir: SAVE and
// BGSAVE write it, ampserved -restore typically reads it back.
const snapFile = "ampserved.snap"

func (e *engine) snapPath() string {
	return filepath.Join(e.opts.SnapshotDir, snapFile)
}

// setRanger / mapRanger are the iteration capabilities collect needs
// from the per-shard structures. Every registered backend implements
// them; the assertion failure path survives so a future backend without
// iteration degrades to an ERR reply instead of a panic.
type setRanger interface {
	Range(f func(x int) bool)
}

type mapRanger interface {
	Range(f func(key string, val int64) bool)
}

// quiesce freezes the data plane: every shard combiner acquired in
// registration order (the canonical order — reshard appends, never
// reorders), each mailbox drained to a batch boundary, then the EXEC
// gate. The returned slice is what release must be given. Callers hold
// reconfigMu, so the census cannot grow mid-acquisition.
//
// Lock order argument: quiesce is the only path that holds more than
// one combiner at a time, and it acquires in one global order. The
// ksGate write side is taken after every combiner; the only read-side
// holder (execTxn) never waits on a combiner while holding it. Rescue
// goroutines spawned by the drains park on mailboxes, not locks, and
// quiesce never waits for them — their batches simply linearize after
// the cut.
func (e *engine) quiesce() []*shard {
	shards := e.allShards()
	for _, s := range shards {
		s.comb.Lock()
		e.combine(s)
	}
	e.ksGate.Lock()
	return shards
}

// release undoes quiesce in reverse order.
func (e *engine) release(shards []*shard) {
	e.ksGate.Unlock()
	for i := len(shards) - 1; i >= 0; i-- {
		shards[i].comb.Unlock()
	}
}

// collect reads every family's logical state into a snapshot image.
// Callers hold the full quiesce, so plain Range calls observe a frozen
// structure and the unkeyed families can be drained and refilled
// without a concurrent producer interleaving.
func (e *engine) collect(shards []*shard) (*snapshot.State, error) {
	st := &snapshot.State{Shards: int64(e.router.Load().n())}

	for _, s := range shards {
		sr, ok := s.set.(setRanger)
		if !ok {
			return nil, fmt.Errorf("set backend %q does not support snapshot iteration", e.opts.Set)
		}
		sr.Range(func(x int) bool {
			st.Set = append(st.Set, int64(x))
			return true
		})
	}
	sort.Slice(st.Set, func(i, j int) bool { return st.Set[i] < st.Set[j] })

	if e.ks != nil {
		e.ks.Range(func(k string, v int64) bool {
			st.Map = append(st.Map, snapshot.Entry{Key: k, Val: v})
			return true
		})
		st.Counter = e.ks.Counter()
	} else {
		for _, s := range shards {
			mr, ok := s.dict.(mapRanger)
			if !ok {
				return nil, fmt.Errorf("map backend %q does not support snapshot iteration", e.opts.Map)
			}
			mr.Range(func(k string, v int64) bool {
				st.Map = append(st.Map, snapshot.Entry{Key: k, Val: v})
				return true
			})
		}
		st.Counter = e.ctrBase.Load() + e.incs.Load()
	}
	sort.Slice(st.Map, func(i, j int) bool { return st.Map[i].Key < st.Map[j].Key })

	// The unkeyed families have no iterators — their structures are
	// strictly queue-shaped — so collect drains and refills them. Safe
	// under the quiesce (no concurrent producer or consumer), and the
	// refill cannot overflow a bounded backend: it returns exactly what
	// was just removed.
	for {
		v, ok := e.queue.deq()
		if !ok {
			break
		}
		st.Queue = append(st.Queue, v)
	}
	for _, v := range st.Queue {
		if err := e.queue.enq(v); err != nil {
			return nil, fmt.Errorf("snapshot: queue refill: %v", err)
		}
	}

	var popped []int64 // top to bottom
	for {
		v, ok := e.stack.pop()
		if !ok {
			break
		}
		popped = append(popped, v)
	}
	for i := len(popped) - 1; i >= 0; i-- {
		st.Stack = append(st.Stack, popped[i]) // stored bottom to top
	}
	for _, v := range st.Stack {
		e.stack.push(v)
	}

	for {
		v, ok := e.pq.removeMin()
		if !ok {
			break
		}
		st.PQ = append(st.PQ, v) // ascending by construction
	}
	for _, v := range st.PQ {
		if err := e.pq.add(v); err != nil {
			return nil, fmt.Errorf("snapshot: pqueue refill: %v", err)
		}
	}

	return st, nil
}

// collectQuiesced is the shared SAVE/BGSAVE front half: quiesce, read
// the cut, release. Callers hold reconfigMu.
func (e *engine) collectQuiesced() (*snapshot.State, error) {
	shards := e.quiesce()
	defer e.release(shards)
	return e.collect(shards)
}

// noteSave records a completed save for STATS.
func (e *engine) noteSave(bytes int) {
	e.snapLast.Store(e.refreshCoarse())
	e.snapBytes.Store(int64(bytes))
	e.snapSaves.Inc()
}

// save serves SAVE: collect a consistent cut under the quiesce, release
// the data plane, then encode and write synchronously. The write happens
// outside the quiesce — only the collect needs the freeze — so the stall
// seen by concurrent clients is the cut, not the disk.
func (e *engine) save() reply {
	e.reconfigMu.Lock()
	st, err := e.collectQuiesced()
	e.reconfigMu.Unlock()
	if err != nil {
		return errReply("%v", err)
	}
	n, err := snapshot.Write(e.snapPath(), st)
	if err != nil {
		e.snapFails.Inc()
		return errReply("%v", err)
	}
	e.noteSave(n)
	return reply{status: stOK}
}

// bgsave serves BGSAVE: the same consistent cut as SAVE, but the encode
// and write run on a background goroutine (stop waits for it), so the
// client's reply returns as soon as the cut is taken. The OK therefore
// promises only the cut, not the disk: a failed background write counts
// into the snap.fail STATS row (the `snap ... fails=` column), which is
// what operators must watch; SAVE is the verb with synchronous error
// reporting.
func (e *engine) bgsave() reply {
	e.reconfigMu.Lock()
	st, err := e.collectQuiesced()
	e.reconfigMu.Unlock()
	if err != nil {
		return errReply("%v", err)
	}
	e.snapWG.Add(1)
	go func() {
		defer e.snapWG.Done()
		n, err := snapshot.Write(e.snapPath(), st)
		if err != nil {
			e.snapFails.Inc()
			return
		}
		e.noteSave(n)
	}()
	return reply{status: stOK}
}

// loadSnapshot replaces the engine's entire logical state with st: the
// RESTORE verb and Server.Restore both land here. The shard topology is
// kept as-is — st.Shards records the count at save time for inspection,
// but the image routes correctly onto any topology (restore hashes
// every key through the live router).
//
// The load is all-or-nothing. Everything that can reject an image —
// reserved sentinel values, bounded queue/pqueue capacities, priority
// ranges — is validated first by filling fresh scratch instances of the
// unkeyed backends, before any live state is touched; a refused
// snapshot returns an error with the store exactly as it was. Only then
// does the mutation phase run, under the full quiesce, with no failure
// paths left: clear the keyed families, insert the image, and swap the
// scratch unkeyed structures in.
//
// Mailbox and EXEC traffic cannot observe the half-restored keyspace
// (the quiesce holds every combiner lock and the ksGate), and neither
// can the wait-free read bypass: the mutation phase is bracketed by
// restoreGen increments, and readLocal re-checks the generation after
// every lock-free structure access, retrying through the mailbox on
// overlap.
func (e *engine) loadSnapshot(st *snapshot.State) error {
	for _, x := range st.Set {
		if x < sentinelGuardMin || x > sentinelGuardMax {
			return fmt.Errorf("snapshot: set member %d is reserved", x)
		}
	}

	// Build the unkeyed families off-line: the configured backends apply
	// their own capacity and range checks element by element, so an image
	// saved under a roomier configuration (or hand-forged) is rejected
	// here, before the live structures are cleared.
	queue := queueBackends[e.opts.Queue](e.opts)
	for _, v := range st.Queue {
		if err := queue.enq(v); err != nil {
			return fmt.Errorf("snapshot: queue restore: %v", err)
		}
	}
	stack := stackBackends[e.opts.Stack](e.opts)
	for _, v := range st.Stack {
		stack.push(v)
	}
	pq := pqBackends[e.opts.PQueue](e.opts)
	for _, p := range st.PQ {
		if err := pq.add(p); err != nil {
			return fmt.Errorf("snapshot: pqueue restore: %v", err)
		}
	}

	e.reconfigMu.Lock()
	defer e.reconfigMu.Unlock()
	shards := e.quiesce()
	defer e.release(shards)

	// Last refusal point: the keyed backends must be iterable to clear
	// (every shard runs the same backend, so shard 0 answers for all).
	if _, ok := shards[0].set.(setRanger); !ok {
		return fmt.Errorf("set backend %q does not support snapshot iteration", e.opts.Set)
	}
	if e.ks == nil {
		if _, ok := shards[0].dict.(mapRanger); !ok {
			return fmt.Errorf("map backend %q does not support snapshot iteration", e.opts.Map)
		}
	}

	// Mutation phase: no failure paths from here on. The odd generation
	// sends concurrent bypass reads to the mailbox (engine.restoreGen).
	e.restoreGen.Add(1)
	defer e.restoreGen.Add(1) // even again before the quiesce releases

	// Clear: collect keys first, then delete (no mutation mid-Range).
	for _, s := range shards {
		var keys []int
		s.set.(setRanger).Range(func(x int) bool { keys = append(keys, x); return true })
		for _, x := range keys {
			s.set.Remove(x)
		}
	}
	if e.ks != nil {
		var keys []string
		e.ks.Range(func(k string, v int64) bool { keys = append(keys, k); return true })
		for _, k := range keys {
			e.ks.Del(k)
		}
	} else {
		for _, s := range shards {
			var keys []string
			s.dict.(mapRanger).Range(func(k string, v int64) bool { keys = append(keys, k); return true })
			for _, k := range keys {
				s.dict.Del(k)
			}
		}
	}

	if e.restoreHook != nil {
		e.restoreHook() // tests: wedge between clear and insert
	}

	// Insert, routing keyed state through the live router.
	rt := e.router.Load()
	for _, x := range st.Set {
		rt.shard(keyShard(x, rt.n())).set.Add(int(x))
	}
	if e.ks != nil {
		for _, ent := range st.Map {
			e.ks.Set(ent.Key, ent.Val)
		}
		e.ks.SetCounter(st.Counter)
	} else {
		for _, ent := range st.Map {
			rt.shard(keyShard(int64(strmap.Hash(ent.Key)), rt.n())).dict.Set(ent.Key, ent.Val)
		}
		// Re-home the ticket space: READ answers ctrBase+incs, so after
		// this store it reads exactly st.Counter and future INCs continue
		// from there.
		e.ctrBase.Store(st.Counter - e.incs.Load())
	}

	// The unkeyed families swap wholesale to the pre-filled scratch
	// structures. Safe under the quiesce: these fields are only read by
	// combiners (all parked on their shard locks) and by collect (which
	// runs under the same quiesce).
	e.queue, e.stack, e.pq = queue, stack, pq
	return nil
}

// restoreFrom serves the RESTORE verb. The client names a snapshot
// file, not a path: the name is resolved under -snapshot-dir, and
// anything containing a path separator or dot-dot is rejected, so a TCP
// client can only reach snapshots the operator put next to the server's
// own (and cannot probe or slurp arbitrary server-side files). Booting
// with -restore (Server.Restore) still accepts a full operator-given
// path.
func (e *engine) restoreFrom(name string) reply {
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, `/\`) {
		return errReply("RESTORE takes a snapshot filename under -snapshot-dir, not a path")
	}
	st, err := snapshot.Read(filepath.Join(e.opts.SnapshotDir, name))
	if err != nil {
		return errReply("%v", err)
	}
	if err := e.loadSnapshot(st); err != nil {
		return errReply("%v", err)
	}
	return reply{status: stOK}
}

// reshard serves RESHARD n: split every shard in two, live. Only exact
// doubling is supported (the slot algebra above is what makes the
// migration per-shard local), and the target must fit under MaxShards —
// the bound the counting structures were sized to at boot.
func (e *engine) reshard(n int) error {
	e.reconfigMu.Lock()
	defer e.reconfigMu.Unlock()
	old := e.router.Load()
	if n != 2*old.n() {
		return fmt.Errorf("reshard target %d is not double the current %d shards", n, old.n())
	}
	if n > e.opts.MaxShards {
		return fmt.Errorf("reshard target %d exceeds -max-shards %d", n, e.opts.MaxShards)
	}

	// Phase A: publish the doubled router with every new slot aliasing
	// its source shard. Routing under it is correct immediately — slot
	// i and slot i+N resolve to the shard that owns both key ranges —
	// and batches routed under the old router start failing the
	// staleness check, which replays them here.
	nr := &router{slots: make([]atomic.Pointer[shard], n)}
	half := old.n()
	for i := 0; i < half; i++ {
		s := old.shard(i)
		nr.slots[i].Store(s)
		nr.slots[half+i].Store(s)
	}
	e.router.Store(nr)

	// Phase B: per source shard — under its combiner lock, at a batch
	// boundary — copy the movers out, start the split half, flip the
	// slot, delete the movers. Copy→flip→delete ordering means a key is
	// always reachable through at least one slot, and the flip happens
	// under the same lock the staleness check runs under, so no batch
	// executes against the source after its keys left.
	for i := 0; i < half; i++ {
		src := old.shard(i)
		ns := e.newShard(core.ThreadID(half + i))

		src.comb.Lock()
		e.combine(src)

		sr, ok := src.set.(setRanger)
		if !ok {
			src.comb.Unlock()
			return fmt.Errorf("set backend %q does not support resharding", e.opts.Set)
		}
		var movedSet []int
		sr.Range(func(x int) bool {
			if keyShard(int64(x), n) == half+i {
				movedSet = append(movedSet, x)
			}
			return true
		})
		for _, x := range movedSet {
			ns.set.Add(x)
		}

		var movedKeys []string
		var movedVals []int64
		if e.ks == nil { // with the keyspace on, shard dicts are unused
			mr, ok := src.dict.(mapRanger)
			if !ok {
				src.comb.Unlock()
				return fmt.Errorf("map backend %q does not support resharding", e.opts.Map)
			}
			mr.Range(func(k string, v int64) bool {
				if keyShard(int64(strmap.Hash(k)), n) == half+i {
					movedKeys = append(movedKeys, k)
					movedVals = append(movedVals, v)
				}
				return true
			})
			for j, k := range movedKeys {
				ns.dict.Set(k, movedVals[j])
			}
		}

		if !e.register(ns) {
			src.comb.Unlock()
			return fmt.Errorf("server shutting down")
		}
		go e.serve(ns)
		nr.slots[half+i].Store(ns)

		for _, x := range movedSet {
			src.set.Remove(x)
		}
		for _, k := range movedKeys {
			src.dict.Del(k)
		}
		src.comb.Unlock()
	}
	return nil
}

// doReshard wraps reshard for the protocol path.
func (e *engine) doReshard(n int) reply {
	if err := e.reshard(n); err != nil {
		return errReply("%v", err)
	}
	return reply{status: stOK}
}
