package server

import (
	"bufio"
	"bytes"
	"net"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestParseCommandValid(t *testing.T) {
	cases := []struct {
		line string
		want Command
	}{
		{"SET 42", Command{Op: OpSet, Arg: 42}},
		{"set 42", Command{Op: OpSet, Arg: 42}},
		{"Set\t42", Command{Op: OpSet, Arg: 42}},
		{"  GET   7  ", Command{Op: OpGet, Arg: 7}},
		{"DEL -3", Command{Op: OpDel, Arg: -3}},
		{"HSET user:1 42", Command{Op: OpHSet, Key: "user:1", Arg: 42}},
		{"hset k -7", Command{Op: OpHSet, Key: "k", Arg: -7}},
		{"HGET user:1", Command{Op: OpHGet, Key: "user:1"}},
		{"  hget\tUPPER.low  ", Command{Op: OpHGet, Key: "UPPER.low"}},
		{"HDEL k", Command{Op: OpHDel, Key: "k"}},
		{"PUSH 9223372036854775807", Command{Op: OpPush, Arg: 9223372036854775807}},
		{"POP", Command{Op: OpPop}},
		{"ENQ -9223372036854775808", Command{Op: OpEnq, Arg: -9223372036854775808}},
		{"DEQ", Command{Op: OpDeq}},
		{"INC", Command{Op: OpInc}},
		{"READ", Command{Op: OpRead}},
		{"PQADD 5", Command{Op: OpPQAdd, Arg: 5}},
		{"PQMIN", Command{Op: OpPQMin}},
		{"STATS", Command{Op: OpStats}},
		{"ping", Command{Op: OpPing}},
		{"QUIT", Command{Op: OpQuit}},
		{"QUIT\r", Command{Op: OpQuit}},
	}
	for _, c := range cases {
		got, err := ParseCommand([]byte(c.line))
		if err != nil {
			t.Errorf("ParseCommand(%q) error: %v", c.line, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseCommand(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func TestParseCommandInvalid(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"\r",
		"FROB 1",                          // unknown verb
		"SET",                             // missing argument
		"SET 1 2",                         // extra argument
		"SET x",                           // non-integer
		"SET 99999999999999999999999",     // overflow
		"SET 1.5",                         // float
		"HSET",                            // missing key and value
		"HSET k",                          // missing value
		"HSET k v",                        // non-integer value
		"HSET k 1 2",                      // extra argument
		"HGET",                            // missing key
		"HGET a b",                        // extra token
		"HDEL",                            // missing key
		"HDEL k\x7f",                      // control byte in key
		"POP 1",                           // unexpected argument
		"STATS now",                       // unexpected argument
		"SET\x001",                        // NUL byte
		"GET \x0142",                      // control byte
		"SET " + strings.Repeat("9", 200), // oversized line
	}
	for _, line := range cases {
		if cmd, err := ParseCommand([]byte(line)); err == nil {
			t.Errorf("ParseCommand(%q) = %+v, want error", line, cmd)
		}
	}
}

func TestParseCommandTooLong(t *testing.T) {
	line := "SET " + strings.Repeat("1", MaxLineLen)
	if _, err := ParseCommand([]byte(line)); err != ErrLineTooLong {
		t.Errorf("ParseCommand(len %d) error = %v, want ErrLineTooLong", len(line), err)
	}
}

// Reply expectations for FuzzPipeline, mirroring the framing rules of
// Server.handle and serveBatch.
const (
	expAny   = iota // exactly one non-empty reply line, any content
	expExact        // one reply line with this exact text
	expErr          // one reply line starting with "ERR "
	expStats        // a STATS block: lines up to and including "END"
)

type pipeExpect struct {
	kind int
	text string
}

// simulatePipeline is the oracle for FuzzPipeline: it walks data with the
// server's own framing rules and returns the reply sequence a correct
// server must produce, plus how many bytes the client should send —
// writing past a line that closes the connection (QUIT, or one that
// overflows the read buffer) races the close and risks a TCP reset
// destroying replies in flight, so the client stops there.
func simulatePipeline(data []byte, txnOff bool) (exps []pipeExpect, consume int) {
	ps := pipeSim{txnOff: txnOff}
	pos := 0
	for pos < len(data) {
		nl := bytes.IndexByte(data[pos:], '\n')
		content := data[pos:]
		if nl >= 0 {
			content = data[pos : pos+nl]
		}
		if len(content) > MaxLineLen+1 {
			// Overflows the connection's read buffer: bufio.ErrBufferFull,
			// one ERR reply, connection closed.
			exps = append(exps, pipeExpect{kind: expErr})
			if nl >= 0 {
				return exps, pos + nl + 1
			}
			return exps, len(data)
		}
		if nl < 0 {
			// Final line without a terminator: served at EOF when
			// non-empty, silent close when empty.
			if len(content) > 0 {
				e, _ := ps.step(content)
				exps = append(exps, e...)
			}
			return exps, len(data)
		}
		e, closed := ps.step(content)
		exps = append(exps, e...)
		pos += nl + 1
		if closed {
			return exps, pos // QUIT: server closes after the OK
		}
	}
	return exps, len(data)
}

// pipeSim mirrors the per-connection MULTI window state machine of
// Server.serveBatch and serveTxnLine, so the oracle stays line-accurate
// through transactions. With txnOff the four transaction verbs answer
// ERR and no window ever opens — the -txn off server config FuzzPipeline
// runs on even chunk bytes. Reply counts and order are identical whether
// a read rides the mailbox or the wait-free bypass, which is exactly the
// property the fuzzer pins: bypassed replies must interleave back into
// line order.
type pipeSim struct {
	txnOff bool // transactions disabled: MULTI family answers ERR
	active bool // inside a MULTI window
	dirty  bool // a staging error poisoned the window
	staged int  // commands queued so far
}

func (ps *pipeSim) reset() { ps.active, ps.dirty, ps.staged = false, false, 0 }

// step maps one line's content to its reply expectations (an EXEC yields
// the array header plus one line per staged command) and reports whether
// the server closes the connection afterwards.
func (ps *pipeSim) step(content []byte) (exps []pipeExpect, closed bool) {
	one := func(kind int, text string) ([]pipeExpect, bool) {
		return []pipeExpect{{kind: kind, text: text}}, false
	}
	cmd, err := ParseCommand(content)
	if ps.active {
		switch {
		case err != nil:
			ps.dirty = true
			return one(expErr, "")
		case cmd.Op == OpMulti:
			ps.dirty = true
			return one(expErr, "")
		case cmd.Op == OpExec:
			if ps.dirty {
				ps.reset()
				return one(expErr, "")
			}
			n := ps.staged
			ps.reset()
			exps = append(exps, pipeExpect{kind: expExact, text: "*" + strconv.Itoa(n)})
			for i := 0; i < n; i++ {
				exps = append(exps, pipeExpect{kind: expAny})
			}
			return exps, false
		case cmd.Op == OpDiscard:
			ps.reset()
			return one(expExact, "OK")
		case cmd.Op == OpQuit:
			ps.reset()
			exps, _ = one(expExact, "OK")
			return exps, true
		case cmd.Op == OpPing:
			return one(expExact, "PONG")
		case cmd.Op == OpStats:
			return one(expStats, "")
		case cmd.Op == OpTxStats:
			return one(expAny, "")
		case !cmd.Op.Stageable(), ps.staged >= MaxTxnOps:
			ps.dirty = true
			return one(expErr, "")
		default:
			ps.staged++
			return one(expExact, "+QUEUED")
		}
	}
	switch {
	case err != nil:
		return one(expErr, "")
	case cmd.Op == OpQuit:
		exps, _ = one(expExact, "OK")
		return exps, true
	case cmd.Op == OpPing:
		return one(expExact, "PONG")
	case cmd.Op == OpStats:
		return one(expStats, "")
	case ps.txnOff && (cmd.Op == OpMulti || cmd.Op == OpExec ||
		cmd.Op == OpDiscard || cmd.Op == OpTxStats):
		return one(expErr, "")
	case cmd.Op == OpMulti:
		ps.active = true
		return one(expExact, "OK")
	case cmd.Op == OpExec, cmd.Op == OpDiscard:
		return one(expErr, "")
	case cmd.Op == OpTxStats:
		return one(expAny, "")
	default:
		return one(expAny, "")
	}
}

// FuzzPipeline feeds arbitrary byte streams — multi-line pipelines,
// partial writes, oversized lines — to a live server connection and
// asserts the pipelined read path answers exactly one reply per
// well-formed line, in order, closes when the protocol says so, and
// leaks no goroutines.
func FuzzPipeline(f *testing.F) {
	seeds := []string{
		"SET 1\nGET 1\nDEL 1\n",
		"PING\nSTATS\nINC\nREAD\n",
		"ENQ 5\nDEQ\nPUSH 6\nPOP\nPQADD 2\nPQMIN\n",
		"QUIT\nSET 9\n",                                                             // data after QUIT is ignored
		"SET 1",                                                                     // final line without newline
		"\n\n \n\r\n",                                                               // empty and blank lines each get an ERR
		"FROB\nSET x\nSET 1 2\n",                                                    // parse errors keep the connection open
		"SET " + strings.Repeat("9", 200) + "\nGET 1\n",                             // oversized: ERR + close, GET unanswered
		strings.Repeat("A", 300),                                                    // oversized final line, no newline
		"SET 1\n" + strings.Repeat("B", MaxLineLen+1) + "\n",                        // max content that still frames: ERR, stays open
		"GET -9223372036854775808\n",                                                // reserved key error from the engine
		"HSET k 1\nHGET k\nHDEL k\nHGET k\n",                                        // map family round trip
		"hset CaSe 7\r\nHGET CaSe\r\nhget case\r\n",                                 // verbs fold, keys do not
		"HSET k\nHGET\nHDEL a b\nHSET  pad  3 \nHGET\tpad\n",                        // arity errors + embedded whitespace
		"HGET " + strings.Repeat("K", MaxLineLen-5) + "\n",                          // key at the MaxLineLen boundary
		"HSET " + strings.Repeat("K", MaxLineLen) + " 1\nHGET x\n",                  // oversized key: ERR + close
		"MULTI\nEXEC\n",                                                             // empty transaction commits *0
		"MULTI\nHSET k 1\nINC\nHGET k\nREAD\nEXEC\nHGET k\n",                        // mixed txn, then a fast read
		"MULTI\nMULTI\nHSET k 1\nEXEC\nEXEC\n",                                      // nested MULTI poisons the window
		"DISCARD\nEXEC\nTXSTATS\nMULTI\nTXSTATS\nEXEC\n",                            // txn control with and without a window
		"MULTI\nHSET k 1\nDISCARD\nHGET k\n",                                        // DISCARD drops the buffer
		"MULTI\nPUSH 1\nPING\nSTATS\nFROB\nEXEC\n",                                  // non-stageable + control verbs inside
		"MULTI\nHINCR k 2\nQUIT\nEXEC 1\n",                                          // QUIT mid-transaction closes
		"MULTI\n" + strings.Repeat("INC\n", MaxTxnOps+1) + "EXEC\n",                 // overflowing the staged buffer
		"SET 1\nGET 1\nSET 2\nGET 1\nGET 2\nDEL 1\nGET 1\nGET 2\n",                  // bypass reads interleave with writes
		"HSET k 1\nHGET k\nSET 3\nGET 3\nHGET k\nHDEL k\nHGET k\nQUIT\n",            // both read families, then QUIT
		"MULTI\nHSET k 9\nHGET k\nEXEC\nHGET k\nGET 5\nMULTI\nSET 5\nEXEC\nGET 5\n", // reads inside and after MULTI
		"GET 1\nGET 1\nGET 1\nHGET h\nHSET h 2\nHGET h\nMULTI\nHDEL h\nEXEC\nHGET h\nQUIT\n",
		// Mailbox pressure: deep pipelines of same-shard keyed runs (one
		// key → one shard → maximal contiguous batches through one ring),
		// with QUIT cutting the burst so accepted-but-unanswered lines
		// race the teardown drain.
		strings.Repeat("SET 7\n", 192) + "QUIT\n" + strings.Repeat("SET 7\n", 8), // deep run past maxBatch, QUIT mid-burst
		strings.Repeat("HSET deep 1\nHINCR deep 3\n", 80),                        // same string key: alternating-op spans, one shard
		strings.Repeat("SET 5\nDEL 5\n", 100) + "QUIT\nSET 5\n",                  // same-key churn, then QUIT with trailing data
		strings.Repeat("ENQ 1\n", 150) + "QUIT",                                  // unkeyed deep run, unterminated QUIT
		strings.Repeat("SET 3\nGET 3\n", 96) + "QUIT\n",                          // bypass reads interleaved into a deep run
	}
	for i, s := range seeds {
		f.Add([]byte(s), byte(i*7+1))
	}
	f.Fuzz(func(t *testing.T, data []byte, chunk byte) {
		if len(data) > 2048 {
			data = data[:2048]
		}
		// Even chunk bytes swap in the epoch-backed bypass config: every
		// GET/HGET is served on the connection goroutine under an epoch
		// pin instead of riding the shard mailbox, and with transactions
		// off the MULTI verbs answer ERR. Odd bytes keep the default
		// engine (striped set — GET on the mailbox — and HGET bypassing
		// via the tl2 keyspace), so both read paths face the same oracle.
		txnOff := chunk%2 == 0
		opts := Options{Shards: 2}
		if txnOff {
			opts = Options{Shards: 2, Set: "skip-epoch", Map: "epoch", Txn: "off"}
		}
		exps, consume := simulatePipeline(data, txnOff)

		srv := startServer(t, opts)
		base := runtime.NumGoroutine()
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()

		// Write in small chunks so the server sees partial lines, then
		// half-close: the server must still answer everything sent.
		size := int(chunk)%16 + 1
		for off := 0; off < consume; off += size {
			end := off + size
			if end > consume {
				end = consume
			}
			if _, err := conn.Write(data[off:end]); err != nil {
				t.Fatalf("write chunk at %d: %v", off, err)
			}
		}
		if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
			t.Fatalf("CloseWrite: %v", err)
		}

		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		r := bufio.NewReader(conn)
		for i, e := range exps {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("reply %d/%d: %v (input %q)", i+1, len(exps), err, data)
			}
			line = strings.TrimSuffix(line, "\n")
			switch e.kind {
			case expExact:
				if line != e.text {
					t.Fatalf("reply %d = %q, want %q (input %q)", i+1, line, e.text, data)
				}
			case expErr:
				if !strings.HasPrefix(line, "ERR ") {
					t.Fatalf("reply %d = %q, want ERR (input %q)", i+1, line, data)
				}
			case expAny:
				if line == "" {
					t.Fatalf("reply %d empty (input %q)", i+1, data)
				}
			case expStats:
				for n := 0; line != "END"; n++ {
					if n > 10_000 {
						t.Fatalf("STATS block for reply %d never reached END", i+1)
					}
					line, err = r.ReadString('\n')
					if err != nil {
						t.Fatalf("STATS block for reply %d: %v", i+1, err)
					}
					line = strings.TrimSuffix(line, "\n")
				}
			}
		}
		if extra, err := r.ReadString('\n'); err == nil || len(extra) > 0 {
			t.Fatalf("unexpected extra reply %q after %d expected (input %q)", extra, len(exps), data)
		}

		// The handler goroutine must exit once the connection is done.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				t.Fatalf("goroutine leak: %d live, %d at baseline\n%s",
					runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// FuzzParseCommand asserts the parser never panics and that accepted
// commands are well-formed.
func FuzzParseCommand(f *testing.F) {
	seeds := []string{
		"SET 42", "GET 1", "DEL -1", "PUSH 0", "POP", "ENQ 5", "DEQ",
		"INC", "READ", "PQADD 3", "PQMIN", "STATS", "PING", "QUIT",
		"", " ", "set\t1", "SET  1 ", "FOO", "SET \x00", "SET 1\r",
		"HSET k 1", "HGET k", "HDEL  k ", "HSET k", "HGET a b",
		"HINCR k 5", "HINCR k -5", "HINCR k", "HINCR k x",
		"MULTI", "EXEC", "DISCARD", "TXSTATS", "MULTI 1",
		"hset \x01k 2", "HDEL " + strings.Repeat("x", MaxLineLen),
		strings.Repeat("A", 200),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		cmd, err := ParseCommand(line)
		if err != nil {
			return
		}
		if cmd.Op == OpInvalid || cmd.Op >= numOps {
			t.Fatalf("accepted command with invalid op: %+v from %q", cmd, line)
		}
		if !cmd.Op.HasArg() && cmd.Arg != 0 {
			t.Fatalf("argless op carries arg: %+v from %q", cmd, line)
		}
		if cmd.Op.StringKeyed() != (cmd.Key != "") {
			t.Fatalf("key/op mismatch: %+v from %q", cmd, line)
		}
		for i := 0; i < len(cmd.Key); i++ {
			if b := cmd.Key[i]; b <= ' ' || b == 0x7f {
				t.Fatalf("accepted key with separator or control byte: %+v from %q", cmd, line)
			}
		}
	})
}
