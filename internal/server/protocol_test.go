package server

import (
	"strings"
	"testing"
)

func TestParseCommandValid(t *testing.T) {
	cases := []struct {
		line string
		want Command
	}{
		{"SET 42", Command{OpSet, 42}},
		{"set 42", Command{OpSet, 42}},
		{"Set\t42", Command{OpSet, 42}},
		{"  GET   7  ", Command{OpGet, 7}},
		{"DEL -3", Command{OpDel, -3}},
		{"PUSH 9223372036854775807", Command{OpPush, 9223372036854775807}},
		{"POP", Command{OpPop, 0}},
		{"ENQ -9223372036854775808", Command{OpEnq, -9223372036854775808}},
		{"DEQ", Command{OpDeq, 0}},
		{"INC", Command{OpInc, 0}},
		{"READ", Command{OpRead, 0}},
		{"PQADD 5", Command{OpPQAdd, 5}},
		{"PQMIN", Command{OpPQMin, 0}},
		{"STATS", Command{OpStats, 0}},
		{"ping", Command{OpPing, 0}},
		{"QUIT", Command{OpQuit, 0}},
		{"QUIT\r", Command{OpQuit, 0}},
	}
	for _, c := range cases {
		got, err := ParseCommand([]byte(c.line))
		if err != nil {
			t.Errorf("ParseCommand(%q) error: %v", c.line, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseCommand(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func TestParseCommandInvalid(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"\r",
		"FROB 1",                          // unknown verb
		"SET",                             // missing argument
		"SET 1 2",                         // extra argument
		"SET x",                           // non-integer
		"SET 99999999999999999999999",     // overflow
		"SET 1.5",                         // float
		"POP 1",                           // unexpected argument
		"STATS now",                       // unexpected argument
		"SET\x001",                        // NUL byte
		"GET \x0142",                      // control byte
		"SET " + strings.Repeat("9", 200), // oversized line
	}
	for _, line := range cases {
		if cmd, err := ParseCommand([]byte(line)); err == nil {
			t.Errorf("ParseCommand(%q) = %+v, want error", line, cmd)
		}
	}
}

func TestParseCommandTooLong(t *testing.T) {
	line := "SET " + strings.Repeat("1", MaxLineLen)
	if _, err := ParseCommand([]byte(line)); err != ErrLineTooLong {
		t.Errorf("ParseCommand(len %d) error = %v, want ErrLineTooLong", len(line), err)
	}
}

// FuzzParseCommand asserts the parser never panics and that accepted
// commands are well-formed.
func FuzzParseCommand(f *testing.F) {
	seeds := []string{
		"SET 42", "GET 1", "DEL -1", "PUSH 0", "POP", "ENQ 5", "DEQ",
		"INC", "READ", "PQADD 3", "PQMIN", "STATS", "PING", "QUIT",
		"", " ", "set\t1", "SET  1 ", "FOO", "SET \x00", "SET 1\r",
		strings.Repeat("A", 200),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		cmd, err := ParseCommand(line)
		if err != nil {
			return
		}
		if cmd.Op == OpInvalid || cmd.Op >= numOps {
			t.Fatalf("accepted command with invalid op: %+v from %q", cmd, line)
		}
		if !cmd.Op.HasArg() && cmd.Arg != 0 {
			t.Fatalf("argless op carries arg: %+v from %q", cmd, line)
		}
	})
}
