// The data plane: N single-goroutine shards in front of the shared
// concurrent structures. Keyed commands (the set and map families) hash
// to a shard that owns a private hash set and string dictionary, so
// per-key traffic is contention-local by construction — partitioning
// first, as McKenney puts it. Unkeyed
// commands (stack, queue, counter, priority queue) are spread round-robin
// over the shards but execute against shared structures; the shards then
// serve as a bounded thread set, which is exactly what the combining tree
// and the metrics counters need: shard i always calls with ThreadID i.
// Commands travel in batches — contiguous per-connection runs —
// published quietly into a lock-free MPSC ring (internal/mailbox) and
// flat-combined by whoever holds the shard's combiner lock: usually the
// submitting connection itself, which drains the ring and applies its
// own batch in place, with a dedicated shard goroutine (spin-then-park)
// as the fallback when combiners collide. One reply slice per batch.
package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"amp/internal/adaptive"
	"amp/internal/core"
	"amp/internal/counting"
	"amp/internal/list"
	"amp/internal/mailbox"
	"amp/internal/metrics"
	"amp/internal/strmap"
	"amp/internal/txn"
)

// status encodes the shape of a reply.
type status uint8

const (
	stOK status = iota
	stInt
	stEmpty
	stFull
	stErr
)

// reply is the result of executing one command.
type reply struct {
	status status
	val    int64
	msg    string // stErr only
}

func errReply(format string, args ...any) reply {
	return reply{status: stErr, msg: fmt.Sprintf(format, args...)}
}

// batch is a contiguous run of commands from one connection (or one
// direct do call), bound for a single shard and answered as a unit: the
// shard fills replies — one per command, in order — and sends the slice
// on resp. Batches, their slices, and their reply channels are recycled
// through batchPool, so the hot path stops allocating once the pool is
// warm (the reply-channel pooling the ROADMAP asked for).
type batch struct {
	cmds    []Command
	replies []reply
	start   int64 // submit stamp on the engine's coarse clock (see engine.coarse)
	resp    chan []reply

	// Routing provenance, for staleness detection under live resharding:
	// the router the submitter consulted and the slot it picked. pinned
	// marks runs containing keyed commands — only those can go stale (an
	// unkeyed run is correct on any shard). A combiner that finds a
	// pinned batch whose slot no longer resolves to its shard redispatches
	// the commands through the current router instead of executing them.
	rt     *router
	slot   int32
	pinned bool
}

var batchPool = sync.Pool{
	New: func() any { return &batch{resp: make(chan []reply, 1)} },
}

func getBatch() *batch { return batchPool.Get().(*batch) }

func putBatch(b *batch) {
	b.reset()
	batchPool.Put(b)
}

func (b *batch) reset() {
	b.cmds = b.cmds[:0]
	b.replies = b.replies[:0]
	b.rt = nil
	b.slot = 0
	b.pinned = false
}

// router maps key slots to shards. The slice is immutable once published
// (engine.router swaps whole routers); the slot pointers are atomic so a
// reshard can flip individual slots from an aliased source shard to its
// freshly split half while the router stays live. Slot i of an N-slot
// router always resolves keys with keyShard(k, N) == i, and doubling
// preserves homes: (k mod 2N) mod N == k mod N, so splitting N→2N only
// ever moves keys from slot i to slot N+i.
type router struct {
	slots []atomic.Pointer[shard]
}

func (r *router) n() int             { return len(r.slots) }
func (r *router) shard(i int) *shard { return r.slots[i].Load() }

// distinct returns the router's shards, deduplicated (during a reshard's
// alias phase two slots share one shard), in slot order.
func (r *router) distinct() []*shard {
	seen := make(map[*shard]bool, len(r.slots))
	out := make([]*shard, 0, len(r.slots))
	for i := range r.slots {
		if s := r.shard(i); !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// shard owns a private set instance, a private string-keyed dictionary,
// and a lock-free MPSC mailbox drained by a single goroutine. Map
// commands route by the FNV-1a hash of their key (Command.ShardKey),
// then resolve collisions inside the shard's dictionary by full-string
// chaining.
type shard struct {
	id   core.ThreadID
	set  list.Set
	dict strmap.Map
	mbox *mailbox.Mailbox[*batch]

	// adSet/adMap alias set/dict when the family runs the adaptive
	// meta-backend (nil otherwise): the engine consults them for the
	// per-shard dynamic bypass capability and ticks them at batch
	// boundaries, the morph point where the structure is quiesced by
	// construction.
	adSet *adaptive.Set
	adMap *adaptive.Map

	// comb is the combiner lock: whoever holds it is the shard's
	// single consumer, draining the mailbox and executing batches with
	// the shard's identity (holding comb is what makes id a valid dense
	// ThreadID for the width-bounded counters). A submitting connection
	// goroutine TryLocks it to combine on the spot — the uncontended
	// fast path costs zero scheduler round-trips — and the dedicated
	// shard goroutine Locks it as the fallback when producers collide.
	comb sync.Mutex
	// run is the combiner's drain scratch, guarded by comb.
	run []*batch
}

// shardQueueDepth bounds buffered batches per shard; senders back off
// when a shard is saturated, which is the natural backpressure (the
// mailbox's stop flag is the shutdown escape hatch, so a draining
// server cannot deadlock behind a wedged shard).
const shardQueueDepth = 128

// clockEvery bounds how stale the shard loop's amortized clock may get:
// the drain loop re-reads the wall clock after at most this many
// executed commands instead of once per command. On the pipelined hot
// path the clock read is a vDSO call that showed up at ~9% of the
// profile; one read per 32 commands makes it noise while keeping every
// latency observation within one refresh of the truth.
const clockEvery = 32

// engine is the assembled data plane.
type engine struct {
	opts Options

	// router is the live slot→shard map consulted by every submitter.
	// It is replaced wholesale on RESHARD (never mutated in place except
	// for the per-slot pointer flips the reshard itself performs under
	// the source shard's combiner lock).
	router atomic.Pointer[router]

	// all is every shard ever started, in registration order — the
	// canonical lock order for quiesce and the set abort must close.
	// aborted gates late registrations (a reshard racing shutdown).
	allMu   sync.Mutex
	all     []*shard
	aborted bool

	// reconfigMu serializes the whole-engine reconfigurations: SAVE,
	// BGSAVE's collect phase, RESTORE and RESHARD. Everything under it
	// sees a stable shard census.
	reconfigMu sync.Mutex

	// ksGate freezes EXEC commits during a quiesce: every other keyspace
	// writer runs under a shard combiner lock (which quiesce holds), but
	// EXEC commits on the connection goroutine. Quiesce takes the write
	// side after the combiner locks; EXEC holds the read side only around
	// the commit, never while waiting on a shard, so the order is safe.
	ksGate sync.RWMutex

	// ctrBase offsets the counter family after a restore (without the
	// transactional keyspace, the counting backends cannot be set): INC
	// answers ctrBase+ticket, READ answers ctrBase+incs.
	ctrBase atomic.Int64

	// Snapshot bookkeeping: background BGSAVE writers (stop waits for
	// them), completed and failed saves, and the last save's coarse stamp
	// and size.
	snapWG    sync.WaitGroup
	snapSaves metrics.FlatCounter
	snapFails metrics.FlatCounter // snapshot writes that errored (SAVE or BGSAVE)
	snapLast  atomic.Int64        // coarse-clock stamp of the last completed save
	snapBytes atomic.Int64        // size of the last completed save

	// restoreGen is a seqlock-style generation for RESTORE's mutation
	// phase: loadSnapshot increments it to odd before the first clear and
	// back to even after the last insert, both while holding the full
	// quiesce. Bypass readers (readLocal) take no lock, so they bracket
	// each structure access with restoreGen loads and retry through the
	// mailbox — which blocks behind the quiesce — whenever a restore
	// overlapped the access. A plain flag would not do: a reader could
	// observe torn mid-restore state, then find the flag already cleared;
	// the generation comparison catches that window.
	restoreGen atomic.Uint64

	// setEnt/mapEnt are the resolved registry rows, kept so a reshard can
	// construct new shards with the configured backends.
	setEnt setEntry
	mapEnt mapEntry

	queue      queueBackend
	stack      stackBackend
	pq         pqBackend
	counter    counting.Counter
	incs       atomic.Int64 // completed INCs: highest ticket + 1
	ks         txn.Keyspace // transactional keyspace; nil when Txn "off"
	rr         atomic.Uint32
	metrics    *metrics.Registry
	ext        metrics.Externals // closure-backed counters (bypass, txn)
	mops       [numOps]*metrics.Op
	batchSizes *metrics.SizeHistogram // commands combined per shard wakeup
	wg         sync.WaitGroup

	// The amortized clock. now is the engine's time source (time.Now
	// outside tests — see Options.clock); epoch is its reading at
	// construction; coarse is the latest published reading, as
	// nanoseconds since epoch. Latency stamps and observations both
	// read coarse — no clock call at all on those paths — and the
	// clock is refreshed (one real read, one atomic store) only once
	// per parse-ahead round and every clockEvery executed commands
	// inside a combining sweep. Races between refreshers can step the
	// published value backwards by one refresh; observers clamp
	// negative differences to zero.
	now    func() time.Time
	epoch  time.Time
	coarse atomic.Int64
	// spinBudget is the resolved per-shard mailbox spin budget, kept for
	// STATS.
	spinBudget int

	// Wait-free read bypass state. bypassSet/bypassMap record whether
	// GET/HGET may execute on the calling (connection) goroutine —
	// registry capability ANDed with Options.ReadBypass, plus the
	// keyspace override for HGET (tvar reads are safe from anywhere).
	// The counters split served reads by path for STATS.
	bypassSet   bool
	bypassMap   bool
	readBypass  metrics.FlatCounter // reads served on connection goroutines
	readMailbox metrics.FlatCounter // reads that rode a shard mailbox

	// Adaptive morphing state. bypassDynSet/bypassDynMap mark families
	// whose bypass capability is dynamic — the adaptive backends, where
	// safety is a property of the shard's live member, consulted per
	// command. morphOn gates the batch-boundary controller ticks;
	// morphFlips counts completed morphs across all shards for STATS.
	bypassDynSet bool
	bypassDynMap bool
	morphOn      bool
	morphFlips   metrics.FlatCounter

	// Combiner-path split for STATS: drains performed inline by a
	// submitting connection goroutine versus by the dedicated shard
	// goroutine after a lost combiner race (or a spin/park wakeup).
	combCaller metrics.FlatCounter
	combShard  metrics.FlatCounter

	// applyHook, when set (tests only), runs on the combining goroutine
	// (the shard goroutine, or a caller holding the combiner lock)
	// before each command applies — the seam whitebox interleaving tests
	// use to wedge a shard mid-drain.
	applyHook func(Command)

	// restoreHook, when set (tests only), runs inside loadSnapshot's
	// mutation phase, between the clear and the insert — the seam the
	// torn-restore bypass test uses to wedge a restore at its most
	// inconsistent point.
	restoreHook func()
}

// newEngine builds the structures and starts one goroutine per shard.
func newEngine(o Options) (*engine, error) {
	setEnt, err := lookup("set", o.Set, setBackends)
	if err != nil {
		return nil, err
	}
	mapEnt, err := lookup("map", o.Map, mapBackends)
	if err != nil {
		return nil, err
	}
	if o.ReadBypass != "on" && o.ReadBypass != "off" {
		return nil, fmt.Errorf("server: unknown read-bypass mode %q (have on, off)", o.ReadBypass)
	}
	if o.Morph != "on" && o.Morph != "off" {
		return nil, fmt.Errorf("server: unknown morph mode %q (have on, off)", o.Morph)
	}
	if o.MorphReadPct < 1 || o.MorphReadPct > 100 {
		return nil, fmt.Errorf("server: morph read percentage %d outside [1,100]", o.MorphReadPct)
	}
	newQueue, err := lookup("queue", o.Queue, queueBackends)
	if err != nil {
		return nil, err
	}
	newStack, err := lookup("stack", o.Stack, stackBackends)
	if err != nil {
		return nil, err
	}
	newPQ, err := lookup("pqueue", o.PQueue, pqBackends)
	if err != nil {
		return nil, err
	}
	newCounter, err := lookup("counter", o.Counter, counterBackends)
	if err != nil {
		return nil, err
	}
	newMetricsCounter, err := lookup("metrics-counter", o.MetricsCounter, counterBackends)
	if err != nil {
		return nil, err
	}
	ks, err := newKeyspace(o)
	if err != nil {
		return nil, err
	}

	spin := o.SpinBudget
	switch {
	case spin == 0:
		spin = mailbox.DefaultSpinBudget
	case spin < 0:
		spin = 0
	}
	factory := func() counting.Counter { return newMetricsCounter(o) }
	e := &engine{
		opts:       o,
		setEnt:     setEnt,
		mapEnt:     mapEnt,
		queue:      newQueue(o),
		stack:      newStack(o),
		pq:         newPQ(o),
		counter:    newCounter(o),
		ks:         ks,
		metrics:    metrics.NewRegistry(factory, allMetricNames()...),
		batchSizes: metrics.NewSizeHistogram(factory),
		now:        o.clock,
		epoch:      o.clock(),
		spinBudget: spin,
	}
	// HGET bypass: safe whenever the keyspace serves it (tvar reads are
	// goroutine-agnostic) or the map backend advertises the capability.
	// For the adaptive backends the capability is dynamic — it holds
	// exactly while a shard's live member is its read-optimized one — so
	// canBypass consults the shard instead of a static flag.
	e.bypassSet = o.ReadBypass == "on" && setEnt.readBypass
	e.bypassMap = o.ReadBypass == "on" && (ks != nil || mapEnt.readBypass)
	e.bypassDynSet = o.ReadBypass == "on" && setEnt.adaptive
	e.bypassDynMap = o.ReadBypass == "on" && mapEnt.adaptive && ks == nil
	e.morphOn = o.Morph == "on" && (setEnt.adaptive || mapEnt.adaptive)
	e.ext = metrics.Externals{
		e.readBypass.External("read.bypass"),
		e.readMailbox.External("read.mailbox"),
		e.combCaller.External("shard.combine.caller"),
		e.combShard.External("shard.combine.shard"),
		// The shard goroutines' drain behavior, summed over shards: how
		// often a Get resolved during the spin phase versus actually
		// parking. The closures take the shard census at snapshot time,
		// after the loop below has populated it.
		metrics.External{Name: "shard.spin", Read: func() int64 {
			var n int64
			for _, s := range e.allShards() {
				n += s.mbox.Spins()
			}
			return n
		}},
		metrics.External{Name: "shard.park", Read: func() int64 {
			var n int64
			for _, s := range e.allShards() {
				n += s.mbox.Parks()
			}
			return n
		}},
		e.snapSaves.External("snap.save"),
		e.snapFails.External("snap.fail"),
	}
	if ks != nil {
		e.ext = append(e.ext,
			metrics.External{Name: "txn.commit", Read: ks.Commits},
			metrics.External{Name: "txn.abort", Read: ks.Aborts},
		)
	}
	if setEnt.adaptive || mapEnt.adaptive {
		e.ext = append(e.ext, e.morphFlips.External("morph.flip"))
	}
	for op, name := range metricNames {
		if name != "" {
			e.mops[op] = e.metrics.Op(name)
		}
	}
	rt := &router{slots: make([]atomic.Pointer[shard], o.Shards)}
	for i := 0; i < o.Shards; i++ {
		s := e.newShard(core.ThreadID(i))
		rt.slots[i].Store(s)
		e.register(s)
		go e.serve(s)
	}
	e.router.Store(rt)
	return e, nil
}

// newShard builds one shard with the configured backends; the caller
// registers it and starts its serve goroutine.
func (e *engine) newShard(id core.ThreadID) *shard {
	s := &shard{
		id:   id,
		set:  e.setEnt.make(e.opts),
		dict: e.mapEnt.make(e.opts),
		mbox: mailbox.New[*batch](shardQueueDepth, e.opts.SpinBudget),
		run:  make([]*batch, 0, shardQueueDepth),
	}
	if e.setEnt.adaptive {
		s.adSet = s.set.(*adaptive.Set)
	}
	if e.mapEnt.adaptive {
		s.adMap = s.dict.(*adaptive.Map)
	}
	return s
}

// register adds a shard to the census and accounts its serve goroutine;
// false when the engine already aborted (the shard must not start).
func (e *engine) register(s *shard) bool {
	e.allMu.Lock()
	defer e.allMu.Unlock()
	if e.aborted {
		return false
	}
	e.all = append(e.all, s)
	e.wg.Add(1)
	return true
}

// allShards snapshots the census: every shard started so far, in
// registration order (slot order at boot, split halves appended by
// reshard).
func (e *engine) allShards() []*shard {
	e.allMu.Lock()
	defer e.allMu.Unlock()
	return append([]*shard(nil), e.all...)
}

// stop terminates the shard goroutines after they finish draining every
// batch already accepted, and waits out any background snapshot writer.
// Callers must guarantee no further do/doBatch calls (the server waits
// for all connections first).
func (e *engine) stop() {
	e.abort()
	e.snapWG.Wait()
	e.wg.Wait()
}

// abort closes every shard mailbox: submitters stuck backing off
// against a saturated shard give up instead of blocking forever, new
// submissions fail fast, and each shard goroutine exits once it has
// drained what was already published. The server fires it when the
// shutdown drain deadline expires, so pipelined clients parked in
// submit cannot deadlock the drain; stop fires it unconditionally.
// Idempotent (mailbox.Close is). The aborted flag keeps a racing reshard
// from starting shards whose mailboxes would never close: registration
// and abort serialize on allMu.
func (e *engine) abort() {
	e.allMu.Lock()
	e.aborted = true
	all := append([]*shard(nil), e.all...)
	e.allMu.Unlock()
	for _, s := range all {
		s.mbox.Close()
	}
}

// canBypass reports whether cmd may skip the shard mailbox and execute
// on the calling goroutine. Only read-pure keyed ops qualify, and only
// when the serving backend's reads are goroutine-agnostic (registry
// capability, or the transactional keyspace for HGET). Callers inside a
// MULTI window never ask: staged reads ride the tvar commit protocol.
//
// On the adaptive backends the answer is per-shard and per-moment: the
// bypass holds exactly while the key's shard is on its read-optimized
// member, so the engine asks the shard's live container. A morph racing
// between this check and the read is handled by readLocal's revalidation
// (TryGet/TryContains report served=false and the command falls through
// to the mailbox path). Crucially the check is false while a shard is on
// the write ladder, so reads keep riding batches there instead of
// cutting every pipelined run in two.
func (e *engine) canBypass(cmd Command) bool {
	switch cmd.Op {
	case OpGet:
		if e.bypassSet {
			return true
		}
		if e.bypassDynSet {
			rt := e.router.Load()
			return rt.shard(keyShard(cmd.ShardKey(), rt.n())).adSet.BypassOK()
		}
	case OpHGet:
		if e.bypassMap {
			return true
		}
		if e.bypassDynMap {
			rt := e.router.Load()
			return rt.shard(keyShard(cmd.ShardKey(), rt.n())).adMap.BypassOK()
		}
	}
	return false
}

// moved revalidates a bypass read's route after the structure access: it
// reports whether the slot the reader resolved no longer feeds the shard
// it read. A reshard deletes migrated keys from the source shard only
// after flipping the slot to the split half, and the deletion is what a
// too-late reader can observe — but observing it means the reader's
// structure access synchronized with the migrator (the backends publish
// with release stores), so this re-load is guaranteed to see the flip
// and the read retries through the mailbox instead of serving a miss.
func (e *engine) moved(rt *router, si int, s *shard) bool {
	cur := e.router.Load()
	return cur != rt || cur.shard(si) != s
}

// restoreTorn reports whether a RESTORE's mutation phase overlapped a
// bypass read: g is the restoreGen sample the reader took before its
// structure access. An odd sample means the access started mid-restore;
// a changed value means a restore began (and possibly finished) during
// the access. Either way the read may have observed the half-restored
// keyspace and must retry through the mailbox, where it parks behind
// the restore's quiesce.
func (e *engine) restoreTorn(g uint64) bool {
	return g&1 != 0 || e.restoreGen.Load() != g
}

// readLocal serves one bypass-eligible read on the calling goroutine:
// the wait-free read fast path. The shard's structure is located exactly
// as the mailbox path would (same hash, same shard), but Contains/Get is
// invoked directly — under the structure's own epoch pin where it needs
// one — racing whatever batch the shard goroutine is applying. That race
// is safe precisely because the registry capability asserted it: the
// backends publish nodes with atomic stores and retire them through
// epoch domains, so a concurrent reader observes each write either
// entirely or not at all, and the read linearizes at its table/chain
// load inside the call window.
//
// Program order is the caller's job: the server flushes (and awaits) any
// open mailbox run on the connection before calling readLocal, so a read
// never overtakes this connection's earlier writes.
//
// served=false means an adaptive shard morphed off its read-optimized
// member between canBypass and here, a reshard moved the key's slot off
// the shard mid-read (engine.moved), or a RESTORE's mutation phase
// overlapped the access (engine.restoreTorn); the command was not
// executed and must ride the mailbox instead.
func (e *engine) readLocal(cmd Command) (reply, bool) {
	// Sample the restore generation before touching any structure; the
	// post-access restoreTorn check rejects reads that raced a RESTORE.
	g := e.restoreGen.Load()
	switch cmd.Op {
	case OpGet:
		if cmd.Arg < sentinelGuardMin || cmd.Arg > sentinelGuardMax {
			e.readBypass.Inc()
			return errReply("key %d is reserved", cmd.Arg), true
		}
		rt := e.router.Load()
		si := keyShard(cmd.ShardKey(), rt.n())
		s := rt.shard(si)
		var member bool
		if s.adSet != nil {
			var served bool
			member, served = s.adSet.TryContains(int(cmd.Arg))
			if !served {
				return reply{}, false
			}
		} else {
			member = s.set.Contains(int(cmd.Arg))
		}
		if e.moved(rt, si, s) || e.restoreTorn(g) {
			return reply{}, false
		}
		e.readBypass.Inc()
		return reply{status: stInt, val: boolInt(member)}, true
	case OpHGet:
		if e.ks != nil {
			// With transactions on, the bypass reads the same committed
			// tvar state EXEC publishes — never the per-shard dictionary
			// (and the keyspace is global, so resharding cannot move it —
			// but a RESTORE clears and refills it, hence the torn check).
			v, ok := e.ks.Get(cmd.Key)
			if e.restoreTorn(g) {
				return reply{}, false
			}
			e.readBypass.Inc()
			return valueReply(v, ok), true
		}
		rt := e.router.Load()
		si := keyShard(cmd.ShardKey(), rt.n())
		s := rt.shard(si)
		var v int64
		var ok bool
		if s.adMap != nil {
			var served bool
			v, ok, served = s.adMap.TryGet(cmd.Key)
			if !served {
				return reply{}, false
			}
		} else {
			v, ok = s.dict.Get(cmd.Key)
		}
		if e.moved(rt, si, s) || e.restoreTorn(g) {
			return reply{}, false
		}
		e.readBypass.Inc()
		return valueReply(v, ok), true
	}
	return errReply("cannot bypass %s", cmd.Op), true
}

// do routes one command to its shard and waits for the reply.
func (e *engine) do(cmd Command) reply {
	if e.canBypass(cmd) {
		if r, served := e.readLocal(cmd); served {
			return r
		}
	}
	rt := e.router.Load()
	var si int
	pinned := cmd.Op.Keyed()
	if pinned {
		si = keyShard(cmd.ShardKey(), rt.n())
	} else {
		si = e.nextShard(rt)
	}
	b := getBatch()
	b.cmds = append(b.cmds, cmd)
	b.pinned = pinned
	b.start = e.refreshCoarse()
	replies, ok := e.doBatch(rt, si, b)
	if !ok {
		putBatch(b)
		return errReply("server shutting down")
	}
	r := replies[0]
	putBatch(b)
	return r
}

// nextShard spreads unkeyed runs round-robin over the router's slots.
func (e *engine) nextShard(rt *router) int { return int(e.rr.Add(1)-1) % rt.n() }

// doBatch executes a filled batch on slot si of router rt and returns
// its replies, one per command, in order. Callers stamp b.start and set
// b.pinned. ok is false when the engine aborted (or aborted while the
// shard mailbox was full); the batch was not executed and still belongs
// to the caller.
//
// The fast path never touches the mailbox at all: the caller bids for
// the shard's combiner lock first and, on success, drains whatever
// other producers already published (FIFO fairness), then applies its
// own batch right here on the connection goroutine — no enqueue, no
// reply-channel round-trip, no other goroutine involved. Only when
// another combiner already owns the shard does the caller publish the
// batch and wait, re-bidding for the lock once (the owner may have
// finished its final drain just before our publish) and otherwise
// kicking the dedicated shard goroutine.
//
// A concurrent RESHARD can strand the batch: its keys were routed under
// rt, but by execution time the current router may map them elsewhere.
// The staleness check runs under the shard's combiner lock, which is
// exactly what a reshard holds while it splits that shard, so a batch
// that passes the check executes against a slot assignment that cannot
// change until the lock is released (an alias-phase router swap can
// intervene, but aliasing maps the batch's keys to the same shard). A
// stale batch is redispatched per command through the current router;
// forward progress holds because redispatch always targets strictly
// newer routers.
func (e *engine) doBatch(rt *router, si int, b *batch) ([]reply, bool) {
	b.rt, b.slot = rt, int32(si)
	s := rt.shard(si)
	if s.comb.TryLock() {
		if s.mbox.Closed() {
			s.comb.Unlock()
			return nil, false
		}
		if e.staleBatch(b, s) {
			s.comb.Unlock()
			return e.redispatch(b), true
		}
		e.combine(s)
		rs := e.applyDirect(s, b)
		s.comb.Unlock()
		e.combCaller.Inc()
		return rs, true
	}
	if !e.submit(s, b) {
		return nil, false
	}
	if s.comb.TryLock() {
		e.combine(s)
		s.comb.Unlock()
		e.combCaller.Inc()
	} else {
		s.mbox.Kick()
	}
	return <-b.resp, true
}

// staleBatch reports whether a pinned batch's routing no longer holds:
// the router moved on and its slot no longer resolves to the shard the
// batch was queued for. Callers hold s.comb, so a false answer is
// stable for the duration of the critical section (the slot flip for
// keys homed on s happens under this same lock).
func (e *engine) staleBatch(b *batch, s *shard) bool {
	if !b.pinned {
		return false // unkeyed runs execute correctly on any shard
	}
	cur := e.router.Load()
	return cur != b.rt || cur.shard(int(b.slot)) != s
}

// redispatch replays a stale batch one command at a time through the
// current router, filling the batch's replies in order. Used directly
// by the caller-combining path (nothing held) and via a rescue
// goroutine from combine (which must not block while holding a
// combiner lock).
func (e *engine) redispatch(b *batch) []reply {
	for _, cmd := range b.cmds {
		b.replies = append(b.replies, e.do(cmd))
	}
	return b.replies
}

// submit enqueues b on its shard mailbox, quietly: the caller is about
// to bid for the combiner lock itself, so the parked shard goroutine is
// left alone. The fast path is one CAS plus one store; when the ring is
// full, the put backs off (yielding the processor to a combiner) but
// abandons the wait once abort closes the mailbox — the unbounded-wait
// footgun fix: a draining server must not leave connection goroutines
// parked on a saturated shard forever.
func (e *engine) submit(s *shard, b *batch) bool {
	return s.mbox.PutQuiet(b)
}

// refreshCoarse publishes a fresh coarse-clock reading and returns it:
// one real clock call, amortized over a parse-ahead round or clockEvery
// executed commands.
func (e *engine) refreshCoarse() int64 {
	v := e.now().Sub(e.epoch).Nanoseconds()
	e.coarse.Store(v)
	return v
}

// keyShard spreads keys over shards with a Fibonacci multiplicative hash
// (well-mixed high bits, any shard count).
func keyShard(key int64, n int) int {
	const fib64 = 0x9E3779B97F4A7C15
	return int((uint64(key) * fib64 >> 17) % uint64(n))
}

// serve is the dedicated shard goroutine: the fallback combiner. Under
// caller-combining it runs only when producers collide on the shard —
// a submitter that loses the combiner race kicks it — or on a genuine
// wakeup after idling. The blocking wait is the mailbox's
// spin-then-park WaitNonempty: a bounded number of empty polls rides
// out the gap between pipelined batches without a scheduler
// round-trip, only a genuinely idle shard parks, and a false return
// means closed-and-drained — the shutdown signal, replacing the
// closed-channel range.
func (e *engine) serve(s *shard) {
	defer e.wg.Done()
	for {
		if !s.mbox.WaitNonempty() {
			return // closed and fully drained
		}
		s.comb.Lock()
		e.combine(s)
		s.comb.Unlock()
		e.combShard.Inc()
	}
}

// combine drains and executes everything published to s's mailbox: the
// flat-combining pass (the book's Chs. 11–12 argument rendered at the
// shard mailbox). Each sweep takes every batch already published and
// applies the whole run against the backends before looking for more,
// amortizing one synchronization round-trip over the run; each batch is
// answered as soon as its own commands are done, so early submitters
// are not held hostage to the rest of the run.
//
// Callers must hold s.comb: the combiner lock serializes ring
// consumption (TryGet is single-consumer) and makes s.id a valid dense
// ThreadID for the width-bounded counters while combining.
//
// Two amortizations live in the loop. The clock: latencies are
// measured against a wall-clock reading refreshed every clockEvery
// executed commands, not one read per command. And the metrics:
// consecutive same-op commands within a batch fold into a single
// ObserveN — one ticket fetch and one bucket increment for the whole
// span — which is exactly the shape pipelined load has.
func (e *engine) combine(s *shard) {
	for {
		b, ok := s.mbox.TryGet()
		if !ok {
			return
		}
		run := append(s.run[:0], b)
		for len(run) < shardQueueDepth {
			more, ok := s.mbox.TryGet()
			if !ok {
				break
			}
			run = append(run, more)
		}
		// Record the run size before answering anyone: a caller that has
		// its replies is then guaranteed to see the observation too (the
		// resp send orders it), so STATS and tests read a consistent
		// histogram right after a round-trip.
		combined := 0
		for _, b := range run {
			combined += len(b.cmds)
		}
		e.batchSizes.Observe(int64(combined), s.id)
		now := e.coarse.Load() // no clock call: the round's refresh is recent
		stale := 0             // commands executed since the last refresh
		for _, b := range run {
			if e.staleBatch(b, s) {
				// A reshard moved this batch's keys off s while it sat in
				// the mailbox. Replay it through the current router on a
				// rescue goroutine — never synchronously: redispatch can
				// block on another shard's mailbox, and blocking while
				// holding s.comb could deadlock against a quiesce that
				// holds that shard and wants this one. The submitter is
				// still parked on b.resp; the rescue answers it.
				go func(b *batch) {
					e.redispatch(b)
					b.resp <- b.replies
				}(b)
				continue
			}
			e.applyBatch(s, b, &now, &stale)
			b.resp <- b.replies
		}
		// Drop the batch references: the batches are back in the pool
		// (or their owners' hands) the moment they are answered.
		for i := range run {
			run[i] = nil
		}
		s.run = run[:0]
	}
}

// applyDirect is the caller-combining fast path's tail: execute one
// batch that never entered the mailbox. Callers hold s.comb and have
// already drained the mailbox, so published batches from other
// producers are not overtaken.
func (e *engine) applyDirect(s *shard, b *batch) []reply {
	e.batchSizes.Observe(int64(len(b.cmds)), s.id)
	now := e.coarse.Load()
	stale := 0
	e.applyBatch(s, b, &now, &stale)
	return b.replies
}

// applyBatch executes one batch's commands under s.comb, filling
// b.replies in order. Consecutive same-op spans fold into one bulk
// latency observation, and now/stale thread the amortized clock
// through the caller's sweep: the wall clock is re-read only every
// clockEvery executed commands.
func (e *engine) applyBatch(s *shard, b *batch, now *int64, stale *int) {
	cmds := b.cmds
	for i := 0; i < len(cmds); {
		op := cmds[i].Op
		j := i
		for j < len(cmds) && cmds[j].Op == op {
			b.replies = append(b.replies, e.execute(s, cmds[j]))
			j++
		}
		if *stale += j - i; *stale >= clockEvery {
			*now = e.refreshCoarse()
			*stale = 0
		}
		if mop := e.mops[op]; mop != nil {
			d := time.Duration(*now - b.start)
			if d < 0 {
				d = 0 // a racing refresh stepped the clock back
			}
			mop.ObserveN(d, int64(j-i), s.id)
		}
		i = j
	}
	e.afterBatch(s)
}

// afterBatch is the adaptive backends' morph point: it runs on the
// combining goroutine right after a batch applies, while s.comb still
// serializes every writer, so a Tick that decides to morph migrates a
// structure with zero concurrent mutators. No-op unless morphing is on.
func (e *engine) afterBatch(s *shard) {
	if !e.morphOn {
		return
	}
	if s.adSet != nil {
		if _, _, flipped := s.adSet.Tick(); flipped {
			e.morphFlips.Inc()
		}
	}
	if s.adMap != nil {
		if _, _, flipped := s.adMap.Tick(); flipped {
			e.morphFlips.Inc()
		}
	}
}

// execute applies one command against the shard's set or the shared
// structures. It runs under the shard's combiner lock, so s.id is a
// valid dense ThreadID for the width-bounded counters.
func (e *engine) execute(s *shard, cmd Command) reply {
	if e.applyHook != nil {
		e.applyHook(cmd)
	}
	if cmd.Op.ReadPure() {
		e.readMailbox.Inc()
	}
	switch cmd.Op {
	case OpSet, OpGet, OpDel:
		if cmd.Arg < sentinelGuardMin || cmd.Arg > sentinelGuardMax {
			return errReply("key %d is reserved", cmd.Arg)
		}
		key := int(cmd.Arg)
		var changed bool
		switch cmd.Op {
		case OpSet:
			changed = s.set.Add(key)
		case OpGet:
			changed = s.set.Contains(key)
		default:
			changed = s.set.Remove(key)
		}
		return reply{status: stInt, val: boolInt(changed)}

	// The string-map family: through the transactional keyspace when the
	// txn engine is on — the same tvars EXEC commits against, which is
	// what keeps plain map traffic and transactions mutually
	// linearizable — and through the shard's dictionary otherwise.
	case OpHSet:
		if e.ks != nil {
			return reply{status: stInt, val: boolInt(e.ks.Set(cmd.Key, cmd.Arg))}
		}
		return reply{status: stInt, val: boolInt(s.dict.Set(cmd.Key, cmd.Arg))}
	case OpHGet:
		if e.ks != nil {
			return valueReply(e.ks.Get(cmd.Key))
		}
		return valueReply(s.dict.Get(cmd.Key))
	case OpHDel:
		if e.ks != nil {
			return reply{status: stInt, val: boolInt(e.ks.Del(cmd.Key))}
		}
		return reply{status: stInt, val: boolInt(s.dict.Del(cmd.Key))}
	case OpHIncr:
		if e.ks != nil {
			return reply{status: stInt, val: e.ks.Incr(cmd.Key, cmd.Arg)}
		}
		// Without the keyspace, read-modify-write is still atomic per
		// key: HINCR is keyed, so every command for this key executes on
		// this shard goroutine against the shard-private dictionary.
		v, _ := s.dict.Get(cmd.Key) // absent reads as 0
		v += cmd.Arg
		s.dict.Set(cmd.Key, v)
		return reply{status: stInt, val: v}

	case OpPush:
		e.stack.push(cmd.Arg)
		return reply{status: stOK}
	case OpPop:
		return valueReply(e.stack.pop())

	case OpEnq:
		if err := e.queue.enq(cmd.Arg); err == errFull {
			return reply{status: stFull}
		} else if err != nil {
			return errReply("%v", err)
		}
		return reply{status: stOK}
	case OpDeq:
		return valueReply(e.queue.deq())

	// The counter family joins the keyspace when the txn engine is on, so
	// INC/READ can be staged in a MULTI buffer and still agree with the
	// fast path; otherwise the configured counting backend serves it.
	case OpInc:
		if e.ks != nil {
			return reply{status: stInt, val: e.ks.Inc()}
		}
		ticket := e.counter.GetAndIncrement(s.id)
		for {
			cur := e.incs.Load()
			if ticket+1 <= cur || e.incs.CompareAndSwap(cur, ticket+1) {
				break
			}
		}
		// ctrBase re-homes the ticket space after a snapshot restore (the
		// counting backends cannot be set to an arbitrary value); zero
		// until a RESTORE lands.
		return reply{status: stInt, val: e.ctrBase.Load() + ticket}
	case OpRead:
		if e.ks != nil {
			return reply{status: stInt, val: e.ks.Counter()}
		}
		return reply{status: stInt, val: e.ctrBase.Load() + e.incs.Load()}

	case OpPQAdd:
		if err := e.pq.add(cmd.Arg); err == errFull {
			return reply{status: stFull}
		} else if err != nil {
			return errReply("%v", err)
		}
		return reply{status: stOK}
	case OpPQMin:
		return valueReply(e.pq.removeMin())

	default:
		return errReply("cannot execute %s", cmd.Op)
	}
}

func valueReply(v int64, ok bool) reply {
	if !ok {
		return reply{status: stEmpty}
	}
	return reply{status: stInt, val: v}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// execTxn commits one staged MULTI buffer atomically through the
// transactional keyspace, returning one reply per staged command in
// order. It runs on the connection goroutine, not on any shard: cross-
// shard atomicity comes from the STM commit protocol, so the buffer
// never travels through the shard mailboxes at all.
func (e *engine) execTxn(staged []Command) []reply {
	ops := make([]txn.Op, len(staged))
	for i, cmd := range staged {
		switch cmd.Op {
		case OpHGet:
			ops[i] = txn.Op{Kind: txn.Get, Key: cmd.Key}
		case OpHSet:
			ops[i] = txn.Op{Kind: txn.Set, Key: cmd.Key, Val: cmd.Arg}
		case OpHDel:
			ops[i] = txn.Op{Kind: txn.Del, Key: cmd.Key}
		case OpHIncr:
			ops[i] = txn.Op{Kind: txn.Incr, Key: cmd.Key, Val: cmd.Arg}
		case OpInc:
			ops[i] = txn.Op{Kind: txn.CtrInc}
		case OpRead:
			ops[i] = txn.Op{Kind: txn.CtrRead}
		}
	}
	// The read side of ksGate lets a quiescing snapshot (which already
	// holds every shard combiner, freezing all other keyspace writers)
	// freeze EXEC commits too — the one keyspace mutator that runs on a
	// connection goroutine. Held only around the commit; Exec never waits
	// on a shard, so this cannot deadlock against the quiesce lock order.
	e.ksGate.RLock()
	results := e.ks.Exec(ops)
	e.ksGate.RUnlock()
	replies := make([]reply, len(staged))
	for i, res := range results {
		switch staged[i].Op {
		case OpHGet:
			if !res.Flag {
				replies[i] = reply{status: stEmpty}
			} else {
				replies[i] = reply{status: stInt, val: res.Val}
			}
		case OpHSet, OpHDel:
			replies[i] = reply{status: stInt, val: boolInt(res.Flag)}
		default: // OpHIncr, OpInc, OpRead
			replies[i] = reply{status: stInt, val: res.Val}
		}
	}
	return replies
}

// txStatsLine renders the TXSTATS reply (callers guarantee e.ks != nil).
func (e *engine) txStatsLine() string {
	return fmt.Sprintf("engine=%s cm=%s commits=%d aborts=%d",
		e.opts.Txn, e.opts.CM, e.ks.Commits(), e.ks.Aborts())
}

// statsBody renders the STATS reply body: the configuration, then one
// line per measured op from the metrics registry and the external
// transaction counters.
func (e *engine) statsBody() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "shards %d\n", e.router.Load().n())
	fmt.Fprintf(&sb, "backend set=%s map=%s queue=%s stack=%s pqueue=%s counter=%s metrics-counter=%s\n",
		e.opts.Set, e.opts.Map, e.opts.Queue, e.opts.Stack, e.opts.PQueue, e.opts.Counter, e.opts.MetricsCounter)
	fmt.Fprintf(&sb, "snap %s\n", e.snapLine())
	if e.ks != nil {
		fmt.Fprintf(&sb, "txn engine=%s cm=%s\n", e.opts.Txn, e.opts.CM)
	} else {
		sb.WriteString("txn off\n")
	}
	fmt.Fprintf(&sb, "read-bypass set=%s map=%s\n", e.bypassState(e.bypassSet, e.bypassDynSet),
		e.bypassState(e.bypassMap, e.bypassDynMap))
	sb.WriteString(e.morphLines())
	fmt.Fprintf(&sb, "mailbox depth=%d spin-budget=%d\n", shardQueueDepth, e.spinBudget)
	sb.WriteString(e.batchSizes.Format("shard.batch"))
	sb.WriteString(e.metrics.Format())
	sb.WriteString(e.ext.Format())
	return sb.String()
}

// snapLine renders the snapshot STATS row: completed saves, failed
// writes (the only trace a failed BGSAVE leaves — its write runs after
// the OK reply), the age of the freshest save on the coarse clock, and
// its encoded size.
func (e *engine) snapLine() string {
	saves, fails := e.snapSaves.Value(), e.snapFails.Value()
	if saves == 0 {
		return fmt.Sprintf("saves=0 fails=%d last-age=never bytes=0", fails)
	}
	age := time.Duration(e.refreshCoarse() - e.snapLast.Load())
	if age < 0 {
		age = 0
	}
	return fmt.Sprintf("saves=%d fails=%d last-age=%s bytes=%d",
		saves, fails, age.Round(time.Millisecond), e.snapBytes.Load())
}

// bypassState renders one family's read-bypass column: the static
// capability is on/off; the adaptive backends report "adaptive" — the
// bypass follows each shard's live member.
func (e *engine) bypassState(static, dynamic bool) string {
	if dynamic {
		return "adaptive"
	}
	return onOff(static)
}

// morphLines renders the adaptive-morphing STATS block: one state line
// for the two keyed families, then one row per morph edge taken. Fixed
// backends report state "fixed"; an adaptive family reports its shards'
// live members as adaptive(name:shards ...), sorted by name.
func (e *engine) morphLines() string {
	var sb strings.Builder
	var flips int64
	for _, s := range e.allShards() {
		if s.adSet != nil {
			flips += s.adSet.Flips()
		}
		if s.adMap != nil {
			flips += s.adMap.Flips()
		}
	}
	fmt.Fprintf(&sb, "morph mode=%s every=%d set=%s map=%s flips=%d\n",
		e.opts.Morph, e.opts.MorphEvery, e.morphState(true), e.morphState(false), flips)
	sb.WriteString(e.morphEdges("set", true))
	sb.WriteString(e.morphEdges("map", false))
	return sb.String()
}

// morphState renders one family's live-member census.
func (e *engine) morphState(set bool) string {
	counts := make(map[string]int)
	for _, s := range e.allShards() {
		switch {
		case set && s.adSet != nil:
			counts[s.adSet.Current()]++
		case !set && s.adMap != nil:
			counts[s.adMap.Current()]++
		default:
			return "fixed"
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s:%d", n, counts[n])
	}
	return "adaptive(" + strings.Join(parts, " ") + ")"
}

// morphEdges renders one family's morph-transition rows, aggregated over
// shards and sorted by edge.
func (e *engine) morphEdges(family string, set bool) string {
	agg := make(map[[2]string]int64)
	for _, s := range e.allShards() {
		var trans []adaptive.Transition
		switch {
		case set && s.adSet != nil:
			trans = s.adSet.Transitions()
		case !set && s.adMap != nil:
			trans = s.adMap.Transitions()
		}
		for _, t := range trans {
			agg[[2]string{t.From, t.To}] += t.N
		}
	}
	edges := make([][2]string, 0, len(agg))
	for k := range agg {
		edges = append(edges, k)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	var sb strings.Builder
	for _, k := range edges {
		fmt.Fprintf(&sb, "morph %s=%s→%s n=%d\n", family, k[0], k[1], agg[k])
	}
	return sb.String()
}

// Stats exposes the metrics snapshot (for the expvar endpoint).
func (e *engine) snapshot() []metrics.OpStats {
	return append(e.metrics.Snapshot(), e.ext.Snapshot()...)
}
