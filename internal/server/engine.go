// The data plane: N single-goroutine shards in front of the shared
// concurrent structures. Keyed commands (the set family) hash to a shard
// that owns a private hash set, so set traffic is contention-local by
// construction — partitioning first, as McKenney puts it. Unkeyed
// commands (stack, queue, counter, priority queue) are spread round-robin
// over the shards but execute against shared structures; the shards then
// serve as a bounded thread set, which is exactly what the combining tree
// and the metrics counters need: shard i always calls with ThreadID i.
package server

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"amp/internal/core"
	"amp/internal/counting"
	"amp/internal/list"
	"amp/internal/metrics"
)

// status encodes the shape of a reply.
type status uint8

const (
	stOK status = iota
	stInt
	stEmpty
	stFull
	stErr
)

// reply is the result of executing one command.
type reply struct {
	status status
	val    int64
	msg    string // stErr only
}

func errReply(format string, args ...any) reply {
	return reply{status: stErr, msg: fmt.Sprintf(format, args...)}
}

// request is one command in flight to a shard.
type request struct {
	cmd   Command
	start time.Time
	resp  chan reply
}

// shard owns a private set instance and a request channel drained by a
// single goroutine.
type shard struct {
	id   core.ThreadID
	set  list.Set
	reqs chan request
}

// shardQueueDepth bounds buffered requests per shard; senders block when
// a shard is saturated, which is the natural backpressure.
const shardQueueDepth = 128

// engine is the assembled data plane.
type engine struct {
	opts    Options
	shards  []*shard
	queue   queueBackend
	stack   stackBackend
	pq      pqBackend
	counter counting.Counter
	incs    atomic.Int64 // completed INCs: highest ticket + 1
	rr      atomic.Uint32
	metrics *metrics.Registry
	mops    [numOps]*metrics.Op
	wg      sync.WaitGroup
}

// newEngine builds the structures and starts one goroutine per shard.
func newEngine(o Options) (*engine, error) {
	newSet, err := lookup("set", o.Set, setBackends)
	if err != nil {
		return nil, err
	}
	newQueue, err := lookup("queue", o.Queue, queueBackends)
	if err != nil {
		return nil, err
	}
	newStack, err := lookup("stack", o.Stack, stackBackends)
	if err != nil {
		return nil, err
	}
	newPQ, err := lookup("pqueue", o.PQueue, pqBackends)
	if err != nil {
		return nil, err
	}
	newCounter, err := lookup("counter", o.Counter, counterBackends)
	if err != nil {
		return nil, err
	}
	newMetricsCounter, err := lookup("metrics-counter", o.MetricsCounter, counterBackends)
	if err != nil {
		return nil, err
	}

	e := &engine{
		opts:    o,
		queue:   newQueue(o),
		stack:   newStack(o),
		pq:      newPQ(o),
		counter: newCounter(o),
		metrics: metrics.NewRegistry(func() counting.Counter { return newMetricsCounter(o) }, allMetricNames()...),
	}
	for op, name := range metricNames {
		if name != "" {
			e.mops[op] = e.metrics.Op(name)
		}
	}
	for i := 0; i < o.Shards; i++ {
		s := &shard{
			id:   core.ThreadID(i),
			set:  newSet(o),
			reqs: make(chan request, shardQueueDepth),
		}
		e.shards = append(e.shards, s)
		e.wg.Add(1)
		go e.serve(s)
	}
	return e, nil
}

// stop drains and terminates the shard goroutines. Callers must guarantee
// no further do() calls (the server waits for all connections first).
func (e *engine) stop() {
	for _, s := range e.shards {
		close(s.reqs)
	}
	e.wg.Wait()
}

// do routes one command to its shard and waits for the reply.
func (e *engine) do(cmd Command) reply {
	var s *shard
	switch cmd.Op {
	case OpSet, OpGet, OpDel:
		s = e.shards[keyShard(cmd.Arg, len(e.shards))]
	default:
		s = e.shards[int(e.rr.Add(1)-1)%len(e.shards)]
	}
	req := request{cmd: cmd, start: time.Now(), resp: make(chan reply, 1)}
	s.reqs <- req
	return <-req.resp
}

// keyShard spreads keys over shards with a Fibonacci multiplicative hash
// (well-mixed high bits, any shard count).
func keyShard(key int64, n int) int {
	const fib64 = 0x9E3779B97F4A7C15
	return int((uint64(key) * fib64 >> 17) % uint64(n))
}

// serve is the shard goroutine: read, execute, measure, reply.
func (e *engine) serve(s *shard) {
	defer e.wg.Done()
	for req := range s.reqs {
		r := e.execute(s, req.cmd)
		if op := e.mops[req.cmd.Op]; op != nil {
			op.Observe(time.Since(req.start), s.id)
		}
		req.resp <- r
	}
}

// execute applies one command against the shard's set or the shared
// structures. It runs on the shard goroutine, so s.id is a valid dense
// ThreadID for the width-bounded counters.
func (e *engine) execute(s *shard, cmd Command) reply {
	switch cmd.Op {
	case OpSet, OpGet, OpDel:
		if cmd.Arg < sentinelGuardMin || cmd.Arg > sentinelGuardMax {
			return errReply("key %d is reserved", cmd.Arg)
		}
		key := int(cmd.Arg)
		var changed bool
		switch cmd.Op {
		case OpSet:
			changed = s.set.Add(key)
		case OpGet:
			changed = s.set.Contains(key)
		default:
			changed = s.set.Remove(key)
		}
		return reply{status: stInt, val: boolInt(changed)}

	case OpPush:
		e.stack.push(cmd.Arg)
		return reply{status: stOK}
	case OpPop:
		return valueReply(e.stack.pop())

	case OpEnq:
		if err := e.queue.enq(cmd.Arg); err == errFull {
			return reply{status: stFull}
		} else if err != nil {
			return errReply("%v", err)
		}
		return reply{status: stOK}
	case OpDeq:
		return valueReply(e.queue.deq())

	case OpInc:
		ticket := e.counter.GetAndIncrement(s.id)
		for {
			cur := e.incs.Load()
			if ticket+1 <= cur || e.incs.CompareAndSwap(cur, ticket+1) {
				break
			}
		}
		return reply{status: stInt, val: ticket}
	case OpRead:
		return reply{status: stInt, val: e.incs.Load()}

	case OpPQAdd:
		if err := e.pq.add(cmd.Arg); err == errFull {
			return reply{status: stFull}
		} else if err != nil {
			return errReply("%v", err)
		}
		return reply{status: stOK}
	case OpPQMin:
		return valueReply(e.pq.removeMin())

	default:
		return errReply("cannot execute %s", cmd.Op)
	}
}

func valueReply(v int64, ok bool) reply {
	if !ok {
		return reply{status: stEmpty}
	}
	return reply{status: stInt, val: v}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// statsBody renders the STATS reply body: the configuration, then one
// line per measured op from the metrics registry.
func (e *engine) statsBody() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "shards %d\n", len(e.shards))
	fmt.Fprintf(&sb, "backend set=%s queue=%s stack=%s pqueue=%s counter=%s metrics-counter=%s\n",
		e.opts.Set, e.opts.Queue, e.opts.Stack, e.opts.PQueue, e.opts.Counter, e.opts.MetricsCounter)
	sb.WriteString(e.metrics.Format())
	return sb.String()
}

// Stats exposes the metrics snapshot (for the expvar endpoint).
func (e *engine) snapshot() []metrics.OpStats { return e.metrics.Snapshot() }
