package server

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"amp/internal/core"
)

// TestMorphStatsUnderPhaseShift is the whitebox morph test: a forced
// phase shift (writes → reads → writes) on a one-shard server with
// per-batch controller evaluation must walk both adaptive families
// through their ladders, and STATS must report every edge. The script is
// fully deterministic: one client, one command per batch, so each
// round-trip is exactly one controller tick whose window contents are
// known in advance.
func TestMorphStatsUnderPhaseShift(t *testing.T) {
	srv := startServer(t, Options{
		Shards: 1, Set: "adaptive", Map: "adaptive", Txn: "off",
		MorphEvery: 1, morphMinOps: 1,
	})
	c := dial(t, srv)

	// Write phase: the first quiet window descends each family's boot
	// rung (striped) to coarse.
	c.expect(t, "SET 5", "1")
	c.expect(t, "HSET k 1", "1")

	// Read phase: a pure-read window jumps each family to its
	// read-optimized member (set: lockfree, map: epoch). These reads ride
	// the mailbox — coarse has no bypass — and their tick morphs.
	c.expect(t, "GET 5", "1")
	c.expect(t, "HGET k", "1")

	// Now both shards are on bypass-capable members: these reads execute
	// on the connection goroutine (no batch, no tick) and land in the
	// next window's read count.
	c.expect(t, "GET 5", "1")
	c.expect(t, "HGET k", "1")

	// Write phase: the set descends the ladder one rung per window
	// (lockfree→refinable→striped→coarse); the map leaves its off-ladder
	// read member for the saved rung (epoch→coarse) once the window's
	// read fraction falls below ReadLo. The first window of each family
	// still holds the bypass read above (frac 1/2), which keeps the map
	// on epoch for exactly one extra window.
	c.expect(t, "DEL 9", "0")
	c.expect(t, "HDEL nope", "0")
	for i := 0; i < 3; i++ {
		c.expect(t, "DEL 9", "0")
		c.expect(t, "HDEL nope", "0")
	}

	body := readStats(t, c, c.cmd(t, "STATS"))
	for _, want := range []string{
		"read-bypass set=adaptive map=adaptive",
		"morph mode=on every=1 set=adaptive(coarse:1) map=adaptive(coarse:1) flips=8",
		"morph set=striped→coarse n=2",
		"morph set=coarse→lockfree n=1",
		"morph set=lockfree→refinable n=1",
		"morph set=refinable→striped n=1",
		"morph map=striped→coarse n=1",
		"morph map=coarse→epoch n=1",
		"morph map=epoch→coarse n=1",
		"op morph.flip count=8",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("STATS missing %q:\n%s", want, body)
		}
	}
}

// TestMorphOffFreezesBootMember pins the -morph off escape hatch: the
// adaptive backends boot on striped and never move, whatever the
// workload does.
func TestMorphOffFreezesBootMember(t *testing.T) {
	srv := startServer(t, Options{
		Shards: 1, Set: "adaptive", Map: "adaptive", Txn: "off",
		Morph: "off", MorphEvery: 1, morphMinOps: 1,
	})
	c := dial(t, srv)
	c.expect(t, "SET 5", "1")
	c.expect(t, "HSET k 1", "1")
	for i := 0; i < 10; i++ {
		c.expect(t, "GET 5", "1")
		c.expect(t, "HGET k", "1")
	}
	body := readStats(t, c, c.cmd(t, "STATS"))
	for _, want := range []string{
		"morph mode=off every=1 set=adaptive(striped:1) map=adaptive(striped:1) flips=0",
		"op morph.flip count=0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("STATS missing %q:\n%s", want, body)
		}
	}
}

// TestMorphOptionValidation rejects bad -morph configurations at boot.
func TestMorphOptionValidation(t *testing.T) {
	for _, opts := range []Options{
		{Morph: "sometimes"},
		{MorphReadPct: 101},
	} {
		if _, err := New(opts); err == nil {
			t.Errorf("New(%+v) succeeded, want morph validation error", opts)
		}
	}
}

// TestServerLinearizableAdaptiveMorphs records concurrent set and map
// histories through phase-shifted load (read-heavy → write-heavy →
// read-heavy → write-heavy) on adaptive backends that morph live, then
// checks both histories against the sequential models. The flip count is
// asserted, so a linearizable result genuinely covers reads and writes
// racing at least one migration + pointer flip — the PR's core safety
// claim. Run at GOMAXPROCS 2 and 8 for starved and parallel schedules.
func TestServerLinearizableAdaptiveMorphs(t *testing.T) {
	for _, procs := range []int{2, 8} {
		t.Run(fmt.Sprintf("procs-%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			testAdaptiveMorphHistory(t)
		})
	}
}

func testAdaptiveMorphHistory(t *testing.T) {
	const phases, perPhase, opsEach = 4, 2, 85
	depths := []int{1, 8}
	const budget = 4_000_000
	const attempts = 6
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}

	for attempt := 1; attempt <= attempts; attempt++ {
		srv := startServer(t, Options{
			Shards: 2, Set: "adaptive", Map: "adaptive", Txn: "off",
			MorphEvery: 1, morphMinOps: 16,
		})
		recSet, recMap := core.NewRecorder(), core.NewRecorder()

		for p := 0; p < phases && !t.Failed(); p++ {
			readPct := 98
			if p%2 == 1 {
				readPct = 5
			}
			var wg sync.WaitGroup
			for j := 0; j < perPhase; j++ {
				id := p*perPhase + j
				wg.Add(2)
				go func(id, depth int) {
					defer wg.Done()
					if err := setMixHistoryClient(srv.Addr().String(), recSet, core.ThreadID(id),
						6, readPct, depth, opsEach, id); err != nil {
						t.Errorf("set client %d: %v", id, err)
					}
				}(id, depths[j%len(depths)])
				go func(id, depth int) {
					defer wg.Done()
					if err := mapMixHistoryClient(srv.Addr().String(), recMap, core.ThreadID(id),
						keys, readPct, depth, opsEach, id); err != nil {
						t.Errorf("map client %d: %v", id, err)
					}
				}(id, depths[(j+1)%len(depths)])
			}
			wg.Wait()
		}
		if t.Failed() {
			return
		}

		var flips int64
		for _, sh := range srv.eng.allShards() {
			flips += sh.adSet.Flips() + sh.adMap.Flips()
		}
		if flips == 0 {
			t.Fatal("phase shifts produced no morphs; the history proves nothing")
		}

		resSet := core.CheckBudget(core.SetModel(), recSet.History(), budget)
		resMap := core.CheckBudget(core.MapModel(), recMap.History(), budget)
		if resSet.Exhausted || resMap.Exhausted {
			t.Logf("attempt %d/%d exhausted the %d-step budget (flips=%d); re-recording",
				attempt, attempts, budget, flips)
			continue
		}
		if !resSet.Linearizable {
			t.Fatalf("set history across %d morphs is not linearizable", flips)
		}
		if !resMap.Linearizable {
			t.Fatalf("map history across %d morphs is not linearizable", flips)
		}
		return
	}
	t.Fatalf("checker budget exhausted on %d consecutive recordings", attempts)
}
