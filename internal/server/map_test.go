package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"amp/internal/core"
	"amp/internal/strmap"
)

func TestServeMapFamily(t *testing.T) {
	srv := startServer(t, Options{Shards: 4})
	c := dial(t, srv)

	c.expect(t, "HSET user:1 42", "1")
	c.expect(t, "HSET user:1 43", "0") // overwrite
	c.expect(t, "HGET user:1", "43")
	c.expect(t, "HGET user:2", "EMPTY")
	c.expect(t, "HSET user:2 -7", "1")
	c.expect(t, "HGET user:2", "-7")
	c.expect(t, "HDEL user:1", "1")
	c.expect(t, "HDEL user:1", "0")
	c.expect(t, "HGET user:1", "EMPTY")
	c.expect(t, "HGET user:2", "-7")

	// Keys are case-sensitive even though verbs are not.
	c.expect(t, "hset Key 1", "1")
	c.expect(t, "HSET key 2", "1")
	c.expect(t, "HGET Key", "1")
	c.expect(t, "hget key", "2")

	// Errors keep the connection usable.
	c.expect(t, "HSET", "ERR HSET needs a key and an integer value")
	c.expect(t, "HSET k", "ERR HSET needs a key and an integer value")
	c.expect(t, "HSET k v", `ERR bad integer "v"`)
	c.expect(t, "HGET", "ERR HGET needs exactly one key")
	c.expect(t, "HGET a b", "ERR HGET needs exactly one key")
	c.expect(t, "HDEL", "ERR HDEL needs exactly one key")
	c.expect(t, "HGET key", "2")

	c.expect(t, "QUIT", "OK")
}

// shardOf routes a string key exactly as the data plane does.
func shardOf(key string, shards int) int {
	return keyShard(Command{Op: OpHGet, Key: key}.ShardKey(), shards)
}

// sameShardKeys returns n distinct keys that all route to one shard.
func sameShardKeys(t *testing.T, shards, n int) []string {
	t.Helper()
	target := -1
	var keys []string
	for i := 0; len(keys) < n && i < 100_000; i++ {
		k := fmt.Sprintf("k%03d", i)
		si := shardOf(k, shards)
		if target < 0 {
			target = si
		}
		if si == target {
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("found only %d/%d keys for shard %d of %d", len(keys), n, target, shards)
	}
	return keys
}

// TestShardKeyRouting pins the string-key routing contract: ShardKey is
// the FNV-1a 64 hash of the key (known-answer checked), identical for
// every map verb, and therefore stable — the same key lands on the same
// shard on every lookup, for any shard count.
func TestShardKeyRouting(t *testing.T) {
	// FNV-1a known answers, as seen through the routing path.
	for _, v := range []struct {
		key  string
		hash uint64
	}{
		{"a", 0xaf63dc4c8601ec8c},
		{"foobar", 0x85944171f73967e8},
	} {
		if got := (Command{Op: OpHGet, Key: v.key}).ShardKey(); got != int64(v.hash) {
			t.Errorf("ShardKey(%q) = %#x, want FNV-1a %#x", v.key, uint64(got), v.hash)
		}
	}

	keys := []string{"a", "user:1", "user:2", "K", "k", "0", "-1"}
	for _, key := range keys {
		hset := Command{Op: OpHSet, Key: key, Arg: 99}.ShardKey()
		hget := Command{Op: OpHGet, Key: key}.ShardKey()
		hdel := Command{Op: OpHDel, Key: key}.ShardKey()
		if hset != hget || hget != hdel {
			t.Errorf("ShardKey(%q) differs by verb: %d/%d/%d", key, hset, hget, hdel)
		}
		if hash := int64(strmap.Hash(key)); hget != hash {
			t.Errorf("ShardKey(%q) = %d, want hash %d", key, hget, hash)
		}
		for _, shards := range []int{1, 2, 3, 4, 8, 16} {
			first := shardOf(key, shards)
			if first < 0 || first >= shards {
				t.Fatalf("shardOf(%q, %d) = %d, out of range", key, shards, first)
			}
			for rep := 0; rep < 3; rep++ {
				if got := shardOf(key, shards); got != first {
					t.Fatalf("shardOf(%q, %d) unstable: %d then %d", key, shards, first, got)
				}
			}
		}
	}

	// Int-keyed commands still route by their integer argument.
	if got := (Command{Op: OpSet, Arg: 42}).ShardKey(); got != 42 {
		t.Errorf("ShardKey(SET 42) = %d, want 42", got)
	}
}

// TestShardCollisionPairIndependent forces two distinct keys onto one
// shard of a live server and checks they resolve independently inside
// that shard's dictionary.
func TestShardCollisionPairIndependent(t *testing.T) {
	const shards = 4
	keys := sameShardKeys(t, shards, 2)
	srv := startServer(t, Options{Shards: shards})
	c := dial(t, srv)

	c.expect(t, fmt.Sprintf("HSET %s 1", keys[0]), "1")
	c.expect(t, fmt.Sprintf("HSET %s 2", keys[1]), "1")
	c.expect(t, "HGET "+keys[0], "1")
	c.expect(t, "HGET "+keys[1], "2")
	c.expect(t, fmt.Sprintf("HSET %s 10", keys[0]), "0")
	c.expect(t, "HGET "+keys[1], "2")
	c.expect(t, "HDEL "+keys[0], "1")
	c.expect(t, "HGET "+keys[0], "EMPTY")
	c.expect(t, "HGET "+keys[1], "2")
}

// mapHistoryClient replays a random HSET/HGET/HDEL mix over the given key
// alphabet through one pipelined connection, recording every operation:
// Call when the command is sent, Done when its reply is read.
// Goroutine-safe (returns errors, no t.Fatal).
func mapHistoryClient(addr string, rec *core.Recorder, me core.ThreadID,
	keys []string, depth, ops, id int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	rng := rand.New(rand.NewSource(int64(id)*7919 + 1))

	type sent struct {
		pend *core.PendingOp
		act  string
	}
	window := make([]sent, 0, depth)
	for next := 0; next < ops; {
		window = window[:0]
		for next < ops && len(window) < depth {
			key := keys[rng.Intn(len(keys))]
			switch r := rng.Intn(10); {
			case r < 5: // HSET with a client-unique value
				v := int64(id*100_000 + next)
				window = append(window, sent{rec.Call(me, "set", core.MapSetInput{K: key, V: v}), "set"})
				fmt.Fprintf(w, "HSET %s %d\n", key, v)
			case r < 8:
				window = append(window, sent{rec.Call(me, "get", key), "get"})
				fmt.Fprintf(w, "HGET %s\n", key)
			default:
				window = append(window, sent{rec.Call(me, "del", key), "del"})
				fmt.Fprintf(w, "HDEL %s\n", key)
			}
			next++
		}
		if err := w.Flush(); err != nil {
			return err
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		for _, s := range window {
			line, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			line = strings.TrimSuffix(line, "\n")
			switch {
			case s.act == "get" && line == "EMPTY":
				s.pend.Done(core.Empty)
			case s.act == "get":
				v, err := strconv.ParseInt(line, 10, 64)
				if err != nil {
					return fmt.Errorf("HGET reply %q, want integer or EMPTY", line)
				}
				s.pend.Done(v)
			case line == "1":
				s.pend.Done(true)
			case line == "0":
				s.pend.Done(false)
			default:
				return fmt.Errorf("%s reply %q, want 1 or 0", s.act, line)
			}
		}
	}
	return nil
}

// testServerLinearizableMap records a concurrent HSET/HGET/HDEL history
// through a live pipelined server and checks it against the sequential
// map model, with the same budget-and-re-record discipline as
// testServerLinearizable (see there for why an exhausted search proves
// nothing and must re-record rather than hang).
func testServerLinearizableMap(t *testing.T, opts Options, keys []string) {
	const rounds, perRound, opsEach = 6, 2, 85 // 12 clients, 1020-op histories
	depths := []int{1, 3}
	const budget = 2_000_000
	const attempts = 6

	for attempt := 1; attempt <= attempts; attempt++ {
		srv := startServer(t, opts) // fresh structures: model starts empty
		rec := core.NewRecorder()

		for r := 0; r < rounds && !t.Failed(); r++ {
			var wg sync.WaitGroup
			for j := 0; j < perRound; j++ {
				id := r*perRound + j
				wg.Add(1)
				go func(id, depth int) {
					defer wg.Done()
					err := mapHistoryClient(srv.Addr().String(), rec, core.ThreadID(id),
						keys, depth, opsEach, id)
					if err != nil {
						t.Errorf("client %d: %v", id, err)
					}
				}(id, depths[j])
			}
			wg.Wait()
		}
		if t.Failed() {
			return
		}

		h := rec.History()
		if len(h) < 1000 {
			t.Fatalf("history has %d ops, want >= 1000", len(h))
		}
		res := core.CheckBudget(core.MapModel(), h, budget)
		switch {
		case res.Exhausted:
			t.Logf("map: attempt %d/%d exhausted the %d-step budget on %d ops; re-recording",
				attempt, attempts, budget, len(h))
		case !res.Linearizable:
			t.Fatalf("map: %d-op server history is not linearizable", len(h))
		default:
			return // linearizable, witness found
		}
	}
	t.Fatalf("map: checker budget exhausted on %d consecutive recordings", attempts)
}

// TestServerLinearizableMap checks HSET/HGET/HDEL histories against the
// sequential map model for every -map backend. The five-key alphabet over
// four shards guarantees (pigeonhole) that at least two keys contend on
// one shard's dictionary.
func TestServerLinearizableMap(t *testing.T) {
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, name := range MapBackends() {
		t.Run(name, func(t *testing.T) {
			// Txn off: the harness is checking the named dictionary
			// backend, not the transactional keyspace (txn_test.go
			// covers the keyspace-backed histories).
			testServerLinearizableMap(t, Options{Shards: 4, Map: name, Txn: "off"}, keys)
		})
	}
}

// TestServerLinearizableMapShardCollision repeats the harness with an
// alphabet computed to collide: every key routes to the same shard, so
// the whole history exercises one dictionary's chain resolution.
func TestServerLinearizableMapShardCollision(t *testing.T) {
	const shards = 4
	keys := sameShardKeys(t, shards, 3)
	for _, name := range MapBackends() {
		t.Run(name, func(t *testing.T) {
			testServerLinearizableMap(t, Options{Shards: shards, Map: name, Txn: "off"}, keys)
		})
	}
}

// TestPipelinedStringRunsBatch is the regression test for string-key run
// batching: a pipelined burst of map commands whose keys share a shard
// (plus an unkeyed command riding along) must travel to the shard as ONE
// combined run — visible as a single shard.batch observation — not be
// broken into per-command batches. Before key extraction was factored
// into Command.ShardKey, string ops pinned runs on the raw integer
// argument and every HSET cut the run.
func TestPipelinedStringRunsBatch(t *testing.T) {
	// Bypass off: with it on, the HGETs would (correctly) skip the
	// mailbox and the run under test would shrink to the writes.
	srv, err := New(Options{Shards: 4, ReadBypass: "off"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	keys := sameShardKeys(t, 4, 6)
	var items []lineItem
	for i, k := range keys {
		items = append(items, parseItem([]byte(fmt.Sprintf("HSET %s %d", k, i))))
	}
	items = append(items, parseItem([]byte("INC"))) // unkeyed: rides along
	for _, k := range keys {
		items = append(items, parseItem([]byte("HGET "+k)))
	}

	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if !srv.serveBatch(w, items, &txnState{}) {
		t.Fatal("serveBatch reported connection close")
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	if c := srv.eng.batchSizes.Count(); c != 1 {
		t.Errorf("shard.batch count = %d, want 1 (string run was split)", c)
	}
	if s := srv.eng.batchSizes.Sum(); s != int64(len(items)) {
		t.Errorf("shard.batch sum = %d, want %d", s, len(items))
	}

	var want []string
	for range keys {
		want = append(want, "1") // each HSET inserts
	}
	want = append(want, "0") // first INC ticket
	for i := range keys {
		want = append(want, strconv.Itoa(i))
	}
	got := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("got %d replies %q, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reply %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestPipelinedBypassReplyOrder is the bypass twin of
// TestPipelinedStringRunsBatch: the same burst with the read bypass on
// (default txn=tl2 makes every HGET bypass-capable) must still answer in
// exact line order — interleaving mailbox replies (HSET, INC) with
// bypass replies (HGET) — while only the mutations travel to the shard:
// one combined run of 7 (6 HSETs + INC), the reads served in place.
func TestPipelinedBypassReplyOrder(t *testing.T) {
	srv, err := New(Options{Shards: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	keys := sameShardKeys(t, 4, 6)
	var items []lineItem
	var want []string
	for i, k := range keys {
		// Alternate writes and reads so every read is preceded by an
		// open run it must flush, and followed by more writes it must
		// not reorder past.
		items = append(items, parseItem([]byte(fmt.Sprintf("HSET %s %d", k, i))))
		want = append(want, "1")
		items = append(items, parseItem([]byte("HGET "+k)))
		want = append(want, strconv.Itoa(i))
	}
	items = append(items, parseItem([]byte("INC")))
	want = append(want, "0")
	items = append(items, parseItem([]byte("HGET "+keys[0])))
	want = append(want, "0")

	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if !srv.serveBatch(w, items, &txnState{}) {
		t.Fatal("serveBatch reported connection close")
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	got := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("got %d replies %q, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reply %d = %q, want %q", i, got[i], want[i])
		}
	}
	if n := srv.eng.readBypass.Value(); n != int64(len(keys)+1) {
		t.Errorf("read.bypass = %d, want %d (every HGET should bypass)", n, len(keys)+1)
	}
	if s := srv.eng.batchSizes.Sum(); s != int64(len(keys)+1) {
		t.Errorf("shard.batch sum = %d, want %d (only mutations ride the mailbox)", s, len(keys)+1)
	}
}
