package server

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAmortizedClockObservations pins the amortized-clock contract with
// an injected fake clock: the drain loop reads the wall clock only every
// clockEvery executed commands, so an observation may be stale, but
// never by more than one refresh interval — every op lands in a bucket
// within one clock tick of the truth.
//
// The batch alternates SET and PUSH so every command is its own same-op
// span (64 spans of one command each). The fake clock ticks exactly once,
// by step, between the submit stamp and the drain. The first clockEvery
// observations therefore read the pre-tick clock (latency 0) and the
// rest read the refreshed clock (latency step) — nothing in between,
// nothing beyond, and the refresh provably fires mid-batch.
func TestAmortizedClockObservations(t *testing.T) {
	var nanos atomic.Int64
	base := time.Unix(1000, 0)
	o := Options{Shards: 1}
	o.clock = func() time.Time { return base.Add(time.Duration(nanos.Load())) }
	e, err := newEngine(o.withDefaults())
	if err != nil {
		t.Fatalf("newEngine: %v", err)
	}
	defer e.stop()

	const (
		n    = 2 * clockEvery // spans refreshing exactly once mid-batch
		step = 8 * time.Millisecond
	)
	b := getBatch()
	defer putBatch(b)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			b.cmds = append(b.cmds, Command{Op: OpSet, Arg: int64(1000 + i)})
		} else {
			b.cmds = append(b.cmds, Command{Op: OpPush, Arg: int64(i)})
		}
	}
	b.start = e.refreshCoarse()
	nanos.Add(int64(step)) // the one tick: all n commands truly take step

	replies, ok := e.doBatch(e.router.Load(), 0, b)
	if !ok {
		t.Fatal("doBatch aborted")
	}
	if len(replies) != n {
		t.Fatalf("got %d replies, want %d", len(replies), n)
	}

	// The refresh fires at the clockEvery-th command, before that span's
	// observation: spans 1..31 read the stale clock (latency 0), spans
	// 32..64 the fresh one (latency step). With SET on even spans that is
	// 16 stale SETs and 15 stale PUSHes; the sums are exact because the
	// fake clock moves only when the test says so.
	for name, zeros := range map[string]int64{"set.add": clockEvery / 2, "stack.push": clockEvery/2 - 1} {
		found := false
		for _, s := range e.metrics.Snapshot() {
			if s.Name != name {
				continue
			}
			found = true
			if s.Count != n/2 {
				t.Errorf("%s count = %d, want %d", name, s.Count, n/2)
			}
			if want := time.Duration(n/2-zeros) * step / (n / 2); s.Mean != want {
				t.Errorf("%s mean = %v, want %v (%d stale-zero, %d fresh)", name, s.Mean, want, zeros, n/2-zeros)
			}
			// Within one tick of truth: every sample is in the zero bucket
			// or in step's own bucket — p99 at step's bucket edge, never a
			// bucket above it.
			if want := 8192 * time.Microsecond; s.P99 != want {
				t.Errorf("%s p99 = %v, want %v (the bucket holding %v)", name, s.P99, want, step)
			}
		}
		if !found {
			t.Fatalf("op %s missing from snapshot", name)
		}
	}
}

// TestStatsShardMailboxRows asserts STATS exposes the mailbox tuning
// line and the spin/park/combine counters, and that the caller-combining
// fast path actually serves single-connection traffic (combine.caller
// advances, and the idle shard goroutines park).
func TestStatsShardMailboxRows(t *testing.T) {
	srv := startServer(t, Options{Shards: 2})
	c := dial(t, srv)
	for i := 0; i < 32; i++ {
		c.expect(t, fmt.Sprintf("SET %d", i), "1")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		body := readStats(t, c, c.cmd(t, "STATS"))
		if !strings.Contains(body, "mailbox depth=128 spin-budget=64") {
			t.Fatalf("STATS missing mailbox config line:\n%s", body)
		}
		counts := map[string]int64{}
		for _, name := range []string{"shard.combine.caller", "shard.combine.shard", "shard.spin", "shard.park"} {
			row := "op " + name + " count="
			at := strings.Index(body, row)
			if at < 0 {
				t.Fatalf("STATS missing %q row:\n%s", name, body)
			}
			var v int64
			if _, err := fmt.Sscanf(body[at+len(row):], "%d", &v); err != nil {
				t.Fatalf("parsing %q row: %v", name, err)
			}
			counts[name] = v
		}
		if counts["shard.combine.caller"] == 0 {
			t.Fatalf("combine.caller = 0 after 32 pipelined commands; the fast path never ran:\n%s", body)
		}
		// Idle shard goroutines exhaust their spin budget and park; give
		// the scheduler a moment before declaring the counter broken.
		if counts["shard.park"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard.park still 0 after %d combines", counts["shard.combine.caller"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsHistMonotoneUnderLoad polls STATS repeatedly while four
// connections hammer the shards and asserts every counter row and the
// batch-size histogram are monotone poll-over-poll: bulk ObserveN
// folding and the amortized clock must never make a published count
// step backwards.
func TestStatsHistMonotoneUnderLoad(t *testing.T) {
	srv := startServer(t, Options{Shards: 2})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := dial(t, srv)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.expect(t, fmt.Sprintf("SET %d", id*100000+i), "1")
				c.cmd(t, fmt.Sprintf("HSET k%d %d", id, i)) // 1 first, then 0 (overwrite)
			}
		}(id)
	}

	poller := dial(t, srv)
	last := map[string]int64{}
	for poll := 0; poll < 20; poll++ {
		body := readStats(t, poller, poller.cmd(t, "STATS"))
		for _, line := range strings.Split(body, "\n") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[0] != "op" && fields[0] != "hist") {
				continue
			}
			name := fields[0] + " " + fields[1]
			for _, f := range fields[2:] {
				if !strings.HasPrefix(f, "count=") && !strings.HasPrefix(f, "sum=") {
					continue
				}
				var v int64
				if _, err := fmt.Sscanf(f[strings.Index(f, "=")+1:], "%d", &v); err != nil {
					continue
				}
				key := name + " " + f[:strings.Index(f, "=")]
				if prev, ok := last[key]; ok && v < prev {
					t.Errorf("poll %d: %s went backwards: %d -> %d", poll, key, prev, v)
				}
				last[key] = v
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
