package server

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"amp/internal/core"
)

// txnMatrix is the engine/contention-manager matrix the acceptance
// criteria require: TL2 plus DSTM under at least two managers.
var txnMatrix = []struct{ engine, cm string }{
	{"tl2", "aggressive"},
	{"dstm", "aggressive"},
	{"dstm", "backoff"},
}

// multiShardKeys asserts the alphabet spans at least two shards, so a
// transaction over it genuinely commits across shard boundaries.
func multiShardKeys(t *testing.T, shards int, keys []string) []string {
	t.Helper()
	seen := make(map[int]bool)
	for _, k := range keys {
		seen[shardOf(k, shards)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("keys %v cover %d shard(s), want >= 2", keys, len(seen))
	}
	return keys
}

func TestServeTxnFamily(t *testing.T) {
	for _, m := range txnMatrix {
		t.Run(m.engine+"/"+m.cm, func(t *testing.T) {
			srv := startServer(t, Options{Shards: 4, Txn: m.engine, CM: m.cm})
			c := dial(t, srv)

			// HINCR outside any transaction.
			c.expect(t, "HINCR bal:a 10", "10")
			c.expect(t, "HINCR bal:a -3", "7")
			c.expect(t, "HINCR", "ERR HINCR needs a key and an integer value")

			// A committed cross-key transaction; one +QUEUED per staged
			// line, exactly one *N array.
			c.expect(t, "MULTI", "OK")
			c.expect(t, "HSET bal:b 5", "+QUEUED")
			c.expect(t, "HGET bal:a", "+QUEUED")
			c.expect(t, "HINCR bal:a -7", "+QUEUED")
			c.expect(t, "HDEL bal:missing", "+QUEUED")
			c.expect(t, "INC", "+QUEUED")
			c.expect(t, "READ", "+QUEUED")
			c.expect(t, "EXEC", "*6")
			for i, want := range []string{"1", "7", "0", "0", "0", "1"} {
				if got := c.readLine(t); got != want {
					t.Fatalf("EXEC reply %d = %q, want %q", i, got, want)
				}
			}
			c.expect(t, "HGET bal:a", "0")
			c.expect(t, "HGET bal:b", "5")
			c.expect(t, "READ", "1")

			// Empty buffer commits to an empty array.
			c.expect(t, "MULTI", "OK")
			c.expect(t, "EXEC", "*0")

			// DISCARD drops the buffer without executing it.
			c.expect(t, "MULTI", "OK")
			c.expect(t, "HSET bal:b 99", "+QUEUED")
			c.expect(t, "DISCARD", "OK")
			c.expect(t, "HGET bal:b", "5")

			// Staging errors poison the window: EXEC refuses and resets.
			c.expect(t, "MULTI", "OK")
			c.expect(t, "HSET bal:b 99", "+QUEUED")
			c.expect(t, "MULTI", "ERR MULTI calls cannot be nested")
			c.expect(t, "PUSH 1", "ERR PUSH cannot be staged in MULTI")
			c.expect(t, "FROB", `ERR unknown command "FROB"`)
			c.expect(t, "EXEC", "ERR EXEC aborted (errors while queueing)")
			c.expect(t, "HGET bal:b", "5")

			// Out-of-window EXEC/DISCARD are errors.
			c.expect(t, "EXEC", "ERR EXEC without MULTI")
			c.expect(t, "DISCARD", "ERR DISCARD without MULTI")

			// Control verbs run in place inside a window.
			c.expect(t, "MULTI", "OK")
			c.expect(t, "PING", "PONG")
			stats := readStats(t, c, c.cmd(t, "STATS"))
			if !strings.Contains(stats, "txn engine="+m.engine+" cm="+m.cm) {
				t.Fatalf("STATS missing txn line:\n%s", stats)
			}
			tx := c.cmd(t, "TXSTATS")
			if !strings.Contains(tx, "engine="+m.engine) ||
				!strings.Contains(tx, "commits=") || !strings.Contains(tx, "aborts=") {
				t.Fatalf("TXSTATS = %q", tx)
			}
			c.expect(t, "HINCR bal:a 1", "+QUEUED")
			c.expect(t, "EXEC", "*1")
			if got := c.readLine(t); got != "1" {
				t.Fatalf("EXEC array element = %q, want %q", got, "1")
			}
			c.expect(t, "QUIT", "OK")
		})
	}
}

func TestTxnStatsCounters(t *testing.T) {
	srv := startServer(t, Options{Shards: 2})
	c := dial(t, srv)
	c.expect(t, "MULTI", "OK")
	c.expect(t, "HINCR k 1", "+QUEUED")
	c.expect(t, "EXEC", "*1")
	if got := c.readLine(t); got != "1" {
		t.Fatalf("EXEC array element = %q, want %q", got, "1")
	}
	c.expect(t, "HSET j 2", "1") // fast path is transactional too

	body := readStats(t, c, c.cmd(t, "STATS"))
	if !strings.Contains(body, "op txn.commit count=") {
		t.Fatalf("STATS missing txn.commit:\n%s", body)
	}
	if !strings.Contains(body, "op txn.abort count=") {
		t.Fatalf("STATS missing txn.abort:\n%s", body)
	}
	var commit int64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "op txn.commit count=") {
			commit, _ = strconv.ParseInt(strings.TrimPrefix(line, "op txn.commit count="), 10, 64)
		}
	}
	if commit < 2 { // at least the EXEC and the fast HSET
		t.Fatalf("txn.commit count = %d, want >= 2", commit)
	}
	snap := srv.Stats()
	found := false
	for _, row := range snap {
		if row.Name == "txn.commit" && row.Count >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Stats() snapshot missing txn.commit row: %+v", snap)
	}
}

func TestTxnDisabled(t *testing.T) {
	srv := startServer(t, Options{Shards: 2, Txn: "off"})
	c := dial(t, srv)
	want := "ERR transactions disabled (-txn off)"
	c.expect(t, "MULTI", want)
	c.expect(t, "EXEC", want)
	c.expect(t, "DISCARD", want)
	c.expect(t, "TXSTATS", want)
	// HINCR still works, served by the shard dictionary.
	c.expect(t, "HINCR k 4", "4")
	c.expect(t, "HINCR k 4", "8")
	c.expect(t, "HGET k", "8")
	body := readStats(t, c, c.cmd(t, "STATS"))
	if !strings.Contains(body, "txn off") {
		t.Fatalf("STATS missing 'txn off':\n%s", body)
	}
	if strings.Contains(body, "op txn.commit") {
		t.Fatalf("STATS has txn counters while off:\n%s", body)
	}
}

// TestTxnStagedBufferCap checks the MaxTxnOps bound: the overflowing
// line answers ERR and poisons the window.
func TestTxnStagedBufferCap(t *testing.T) {
	srv := startServer(t, Options{Shards: 2})
	c := dial(t, srv)
	c.expect(t, "MULTI", "OK")
	for i := 0; i < MaxTxnOps; i++ {
		c.expect(t, "INC", "+QUEUED")
	}
	c.expect(t, "INC", fmt.Sprintf("ERR transaction exceeds %d staged commands", MaxTxnOps))
	c.expect(t, "EXEC", "ERR EXEC aborted (errors while queueing)")
	c.expect(t, "READ", "0") // nothing committed
}

// txnHistoryClient replays a mix of plain map/counter traffic and
// MULTI/EXEC transactions over one connection, recording every operation
// for the linearizability checker. Fast ops are pipelined up to depth;
// a transaction flushes the window and runs as its own round trip.
func txnHistoryClient(addr string, rec *core.Recorder, me core.ThreadID,
	keys []string, depth, ops, id int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	rng := rand.New(rand.NewSource(int64(id)*104729 + 7))

	type sent struct {
		pend *core.PendingOp
		act  string
	}
	window := make([]sent, 0, depth)

	readReply := func(act string) (any, error) {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimSuffix(line, "\n")
		switch act {
		case "get":
			if line == "EMPTY" {
				return core.Empty, nil
			}
			v, err := strconv.ParseInt(line, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("get reply %q", line)
			}
			return v, nil
		case "set", "del":
			switch line {
			case "1":
				return true, nil
			case "0":
				return false, nil
			}
			return nil, fmt.Errorf("%s reply %q", act, line)
		default: // incr, inc, read
			v, err := strconv.ParseInt(line, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s reply %q", act, line)
			}
			return v, nil
		}
	}
	drainWindow := func() error {
		if len(window) == 0 {
			return nil
		}
		if err := w.Flush(); err != nil {
			return err
		}
		conn.SetReadDeadline(time.Now().Add(20 * time.Second))
		for _, s := range window {
			out, err := readReply(s.act)
			if err != nil {
				return err
			}
			s.pend.Done(out)
		}
		window = window[:0]
		return nil
	}

	expectLine := func(want string) error {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		if got := strings.TrimSuffix(line, "\n"); got != want {
			return fmt.Errorf("got %q, want %q", got, want)
		}
		return nil
	}

	for next := 0; next < ops; next++ {
		if len(window) >= depth {
			if err := drainWindow(); err != nil {
				return err
			}
		}
		key := keys[rng.Intn(len(keys))]
		switch pick := rng.Intn(10); {
		case pick < 2: // HSET with a client-unique value
			v := int64(id*1_000_000 + next)
			window = append(window, sent{rec.Call(me, "set", core.MapSetInput{K: key, V: v}), "set"})
			fmt.Fprintf(w, "HSET %s %d\n", key, v)
		case pick < 4:
			window = append(window, sent{rec.Call(me, "get", key), "get"})
			fmt.Fprintf(w, "HGET %s\n", key)
		case pick < 5:
			window = append(window, sent{rec.Call(me, "del", key), "del"})
			fmt.Fprintf(w, "HDEL %s\n", key)
		case pick < 6:
			d := int64(1 + rng.Intn(5))
			window = append(window, sent{rec.Call(me, "incr", core.MapSetInput{K: key, V: d}), "incr"})
			fmt.Fprintf(w, "HINCR %s %d\n", key, d)
		case pick < 7:
			window = append(window, sent{rec.Call(me, "inc", nil), "inc"})
			fmt.Fprintf(w, "INC\n")
		case pick < 8:
			window = append(window, sent{rec.Call(me, "read", nil), "read"})
			fmt.Fprintf(w, "READ\n")
		default: // a MULTI/EXEC transfer-style transaction
			if err := drainWindow(); err != nil {
				return err
			}
			n := 2 + rng.Intn(3)
			txops := make([]core.TxnOp, n)
			delta := int64(1 + rng.Intn(4))
			for i := range txops {
				k := keys[rng.Intn(len(keys))]
				switch i {
				case 0:
					txops[i] = core.TxnOp{Act: "incr", K: k, V: -delta}
				case 1:
					txops[i] = core.TxnOp{Act: "incr", K: k, V: delta}
				default:
					switch rng.Intn(3) {
					case 0:
						txops[i] = core.TxnOp{Act: "get", K: k}
					case 1:
						txops[i] = core.TxnOp{Act: "read"}
					default:
						txops[i] = core.TxnOp{Act: "incr", K: k, V: int64(rng.Intn(3))}
					}
				}
			}
			pend := rec.Call(me, "exec", core.TxnExecInput{Ops: txops})
			fmt.Fprintf(w, "MULTI\n")
			for _, op := range txops {
				switch op.Act {
				case "incr":
					fmt.Fprintf(w, "HINCR %s %d\n", op.K, op.V)
				case "get":
					fmt.Fprintf(w, "HGET %s\n", op.K)
				case "read":
					fmt.Fprintf(w, "READ\n")
				}
			}
			fmt.Fprintf(w, "EXEC\n")
			if err := w.Flush(); err != nil {
				return err
			}
			conn.SetReadDeadline(time.Now().Add(20 * time.Second))
			if err := expectLine("OK"); err != nil {
				return fmt.Errorf("MULTI: %w", err)
			}
			for i := 0; i < n; i++ {
				if err := expectLine("+QUEUED"); err != nil {
					return fmt.Errorf("staged %d: %w", i, err)
				}
			}
			if err := expectLine("*" + strconv.Itoa(n)); err != nil {
				return fmt.Errorf("EXEC array: %w", err)
			}
			outs := make([]any, n)
			for i, op := range txops {
				out, err := readReply(op.Act)
				if err != nil {
					return fmt.Errorf("EXEC reply %d: %w", i, err)
				}
				outs[i] = out
			}
			pend.Done(outs)
		}
	}
	return drainWindow()
}

// testServerLinearizableTxn records concurrent transactional and plain
// histories through a live server and checks them against the atomic
// multi-key TxnModel, with the budget-and-re-record discipline of the
// other server harnesses.
func testServerLinearizableTxn(t *testing.T, opts Options, keys []string) {
	const rounds, perRound, opsEach = 6, 2, 85 // 12 clients, 1020-op histories
	depths := []int{1, 3}
	const budget = 2_000_000
	const attempts = 6

	for attempt := 1; attempt <= attempts; attempt++ {
		srv := startServer(t, opts) // fresh keyspace: model starts empty
		rec := core.NewRecorder()

		for r := 0; r < rounds && !t.Failed(); r++ {
			var wg sync.WaitGroup
			for j := 0; j < perRound; j++ {
				id := r*perRound + j
				wg.Add(1)
				go func(id, depth int) {
					defer wg.Done()
					err := txnHistoryClient(srv.Addr().String(), rec, core.ThreadID(id),
						keys, depth, opsEach, id)
					if err != nil {
						t.Errorf("client %d: %v", id, err)
					}
				}(id, depths[j])
			}
			wg.Wait()
		}
		if t.Failed() {
			return
		}

		h := rec.History()
		if len(h) < 1000 {
			t.Fatalf("txn: history has %d ops, want >= 1000", len(h))
		}
		res := core.CheckBudget(core.TxnModel(), h, budget)
		switch {
		case res.Exhausted:
			t.Logf("txn: attempt %d/%d exhausted the %d-step budget on %d ops; re-recording",
				attempt, attempts, budget, len(h))
		case !res.Linearizable:
			t.Fatalf("txn: %d-op server history is not linearizable", len(h))
		default:
			return // linearizable, witness found
		}
	}
	t.Fatalf("txn: checker budget exhausted on %d consecutive recordings", attempts)
}

// TestServerLinearizableTxn is the acceptance harness: concurrent
// MULTI/EXEC transfers interleaved with plain HGET/HSET/HDEL/HINCR and
// INC/READ on the same keys, across at least two shards, for TL2 and
// DSTM under two contention managers.
func TestServerLinearizableTxn(t *testing.T) {
	const shards = 4
	keys := multiShardKeys(t, shards, []string{"alpha", "beta", "gamma", "delta", "epsilon"})
	for _, m := range txnMatrix {
		t.Run(m.engine+"/"+m.cm, func(t *testing.T) {
			testServerLinearizableTxn(t, Options{Shards: shards, Txn: m.engine, CM: m.cm}, keys)
		})
	}
}

// TestTxnMidMultiDisconnect is the teardown regression test: dropping a
// connection mid-MULTI (and shutting the server down on the force path
// with windows still open) must not leak goroutines, staged buffers, or
// keyspace locks — later transactions on the same keys must commit.
func TestTxnMidMultiDisconnect(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := New(Options{Shards: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	addr := srv.Addr().String()

	// Several clients abandon open MULTI windows with staged commands.
	for i := 0; i < 5; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		r := bufio.NewReader(conn)
		fmt.Fprintf(conn, "MULTI\nHINCR shared:a 5\nHINCR shared:b -5\n")
		for _, want := range []string{"OK", "+QUEUED", "+QUEUED"} {
			line, err := r.ReadString('\n')
			if err != nil || strings.TrimSuffix(line, "\n") != want {
				t.Fatalf("reply = %q (%v), want %q", line, err, want)
			}
		}
		conn.Close() // mid-transaction: the staged buffer dies with the conn
	}

	// A fresh connection must find the keys untouched and lock-free:
	// a transaction over the same keys commits promptly.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, "HGET shared:a\nMULTI\nHINCR shared:a 1\nHINCR shared:b -1\nEXEC\n")
	for i, want := range []string{"EMPTY", "OK", "+QUEUED", "+QUEUED", "*2", "1", "-1"} {
		line, err := r.ReadString('\n')
		if err != nil || strings.TrimSuffix(line, "\n") != want {
			t.Fatalf("reply %d = %q (%v), want %q", i, line, err, want)
		}
	}

	// Leave this connection mid-MULTI and take the shutdown force path
	// (expired context): the drain must still complete.
	fmt.Fprintf(conn, "MULTI\nHINCR shared:a 1\n")
	for _, want := range []string{"OK", "+QUEUED"} {
		line, err := r.ReadString('\n')
		if err != nil || strings.TrimSuffix(line, "\n") != want {
			t.Fatalf("reply = %q (%v), want %q", line, err, want)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: Shutdown takes the force path unless the
	// conn goroutine wins the race and drains first — both must be clean.
	if err := srv.Shutdown(ctx); err != nil {
		t.Logf("Shutdown took the force path: %v", err)
	}
	conn.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	// All server goroutines (acceptor, conns, shards) must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
