package server

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"amp/internal/core"
	"amp/internal/epoch"
	"amp/internal/list"
	"amp/internal/skiplist"
	"amp/internal/strmap"
)

// setMixHistoryClient replays a read-heavy GET/SET/DEL mix over a small
// integer alphabet through one pipelined connection, recording every
// operation against the set model: Call when the command is sent, Done
// when its reply is read. readPct of the operations are GETs; the rest
// split 2:1 between SET and DEL so membership keeps flipping under the
// readers. Goroutine-safe (returns errors, no t.Fatal).
func setMixHistoryClient(addr string, rec *core.Recorder, me core.ThreadID,
	alphabet, readPct, depth, ops, id int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	rng := rand.New(rand.NewSource(int64(id)*6007 + 3))

	window := make([]*core.PendingOp, 0, depth)
	for next := 0; next < ops; {
		window = window[:0]
		for next < ops && len(window) < depth {
			k := rng.Intn(alphabet)
			switch {
			case rng.Intn(100) < readPct:
				window = append(window, rec.Call(me, "contains", k))
				fmt.Fprintf(w, "GET %d\n", k)
			case rng.Intn(3) < 2:
				window = append(window, rec.Call(me, "add", k))
				fmt.Fprintf(w, "SET %d\n", k)
			default:
				window = append(window, rec.Call(me, "remove", k))
				fmt.Fprintf(w, "DEL %d\n", k)
			}
			next++
		}
		if err := w.Flush(); err != nil {
			return err
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		for _, pend := range window {
			line, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			switch strings.TrimSuffix(line, "\n") {
			case "1":
				pend.Done(true)
			case "0":
				pend.Done(false)
			default:
				return fmt.Errorf("set reply %q, want 1 or 0", line)
			}
		}
	}
	return nil
}

// mapMixHistoryClient is setMixHistoryClient's string-keyed twin: a
// read-heavy HGET/HSET/HDEL mix over the given key alphabet, recorded
// against the map model with mapHistoryClient's conventions.
func mapMixHistoryClient(addr string, rec *core.Recorder, me core.ThreadID,
	keys []string, readPct, depth, ops, id int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	rng := rand.New(rand.NewSource(int64(id)*9001 + 5))

	type sent struct {
		pend *core.PendingOp
		get  bool
	}
	window := make([]sent, 0, depth)
	for next := 0; next < ops; {
		window = window[:0]
		for next < ops && len(window) < depth {
			key := keys[rng.Intn(len(keys))]
			switch {
			case rng.Intn(100) < readPct:
				window = append(window, sent{rec.Call(me, "get", key), true})
				fmt.Fprintf(w, "HGET %s\n", key)
			case rng.Intn(3) < 2:
				v := int64(id*100_000 + next)
				window = append(window, sent{rec.Call(me, "set", core.MapSetInput{K: key, V: v}), false})
				fmt.Fprintf(w, "HSET %s %d\n", key, v)
			default:
				window = append(window, sent{rec.Call(me, "del", key), false})
				fmt.Fprintf(w, "HDEL %s\n", key)
			}
			next++
		}
		if err := w.Flush(); err != nil {
			return err
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		for _, s := range window {
			line, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			line = strings.TrimSuffix(line, "\n")
			switch {
			case s.get && line == "EMPTY":
				s.pend.Done(core.Empty)
			case s.get:
				v, err := strconv.ParseInt(line, 10, 64)
				if err != nil {
					return fmt.Errorf("HGET reply %q, want integer or EMPTY", line)
				}
				s.pend.Done(v)
			case line == "1":
				s.pend.Done(true)
			case line == "0":
				s.pend.Done(false)
			default:
				return fmt.Errorf("map reply %q, want 1 or 0", line)
			}
		}
	}
	return nil
}

// testServerLinearizableReadMix records a read-heavy concurrent history
// through a live server whose reads take the wait-free bypass, and
// checks it against the sequential model. Bypassed reads execute on the
// connection goroutine while writes drain through the shard mailboxes,
// so this is exactly the schedule where a stale or torn read would show
// up as a non-linearizable history.
//
// The ISSUE contract wants depth-1 and depth-8 connections: depth 8
// widens the overlap to 1+8 = 9 simultaneously open windows, so the
// budget is doubled relative to the write-heavy harnesses and the same
// exhausted-search re-record discipline applies (see
// testServerLinearizable for why an exhausted search proves nothing).
func testServerLinearizableReadMix(t *testing.T, opts Options, family string, readPct int) {
	const rounds, perRound, opsEach = 6, 2, 85 // 12 clients, 1020-op histories
	depths := []int{1, 8}
	const budget = 4_000_000
	const attempts = 6
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	model := core.SetModel()
	if family == "map" {
		model = core.MapModel()
	}

	for attempt := 1; attempt <= attempts; attempt++ {
		srv := startServer(t, opts) // fresh structures: model starts empty
		rec := core.NewRecorder()

		for r := 0; r < rounds && !t.Failed(); r++ {
			var wg sync.WaitGroup
			for j := 0; j < perRound; j++ {
				id := r*perRound + j
				wg.Add(1)
				go func(id, depth int) {
					defer wg.Done()
					var err error
					if family == "map" {
						err = mapMixHistoryClient(srv.Addr().String(), rec, core.ThreadID(id),
							keys, readPct, depth, opsEach, id)
					} else {
						err = setMixHistoryClient(srv.Addr().String(), rec, core.ThreadID(id),
							6, readPct, depth, opsEach, id)
					}
					if err != nil {
						t.Errorf("client %d: %v", id, err)
					}
				}(id, depths[j])
			}
			wg.Wait()
		}
		if t.Failed() {
			return
		}

		h := rec.History()
		if len(h) < 1000 {
			t.Fatalf("history has %d ops, want >= 1000", len(h))
		}
		res := core.CheckBudget(model, h, budget)
		switch {
		case res.Exhausted:
			t.Logf("%s/%d%%: attempt %d/%d exhausted the %d-step budget on %d ops; re-recording",
				model.Name, readPct, attempt, attempts, budget, len(h))
		case !res.Linearizable:
			t.Fatalf("%s/%d%%: %d-op read-mix history is not linearizable", model.Name, readPct, len(h))
		default:
			return // linearizable, witness found
		}
	}
	t.Fatalf("%s/%d%%: checker budget exhausted on %d consecutive recordings", model.Name, readPct, attempts)
}

// TestServerLinearizableReadMixSet proves bypassed GETs linearize with
// batched SET/DEL traffic for every bypass-capable set backend, at 90%
// and 99% read ratios.
func TestServerLinearizableReadMixSet(t *testing.T) {
	for _, name := range BypassSetBackends() {
		for _, pct := range []int{90, 99} {
			t.Run(fmt.Sprintf("%s-%d", name, pct), func(t *testing.T) {
				testServerLinearizableReadMix(t, Options{Shards: 4, Set: name}, "set", pct)
			})
		}
	}
}

// TestServerLinearizableReadMixMap proves bypassed HGETs linearize with
// batched HSET/HDEL traffic on the epoch-published map backend (txn off,
// so the reads hit the shard dictionaries, not the keyspace).
func TestServerLinearizableReadMixMap(t *testing.T) {
	for _, name := range BypassMapBackends() {
		for _, pct := range []int{90, 99} {
			t.Run(fmt.Sprintf("%s-%d", name, pct), func(t *testing.T) {
				testServerLinearizableReadMix(t, Options{Shards: 4, Map: name, Txn: "off"}, "map", pct)
			})
		}
	}
}

// TestServerLinearizableReadMixKeyspace pins the transaction contract:
// with -txn on (the default), a bypassed HGET reads committed tvar
// state through the keyspace, and the mixed history must still
// linearize against the map model.
func TestServerLinearizableReadMixKeyspace(t *testing.T) {
	for _, pct := range []int{90, 99} {
		t.Run(fmt.Sprintf("tl2-%d", pct), func(t *testing.T) {
			testServerLinearizableReadMix(t, Options{Shards: 4}, "map", pct)
		})
	}
}

// TestBypassReadMidDrain is the whitebox interleaving test: applyHook
// wedges the shard's combiner between two commands of a same-key write
// batch, and a bypass read issued from another connection must (a)
// complete while the shard is stuck — it would hang on the mailbox
// otherwise — and (b) observe exactly the prefix of the batch that has
// applied: the pre-wedge value, never a torn intermediate. After the
// wedge releases, the same read sees the post-batch value. Run at
// GOMAXPROCS 2 and 8 so both starved and parallel schedules are
// exercised (under -race this is also the publication-order check).
func TestBypassReadMidDrain(t *testing.T) {
	for _, procs := range []int{2, 8} {
		t.Run(fmt.Sprintf("procs-%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			testBypassReadMidDrain(t)
		})
	}
}

func testBypassReadMidDrain(t *testing.T) {
	srv := startServer(t, Options{Shards: 1, Set: "list-epoch", Map: "epoch", Txn: "off"})

	// Wedge points: the hook runs on whichever goroutine holds the
	// shard's combiner lock before a command applies, so parking on
	// HSET k 2 freezes the combiner with the overwrite pending, and
	// parking on DEL 7 freezes a two-command batch with its first
	// command (SET 8) already applied. Installing the hook here is safe
	// because no command is in flight yet and acquiring the combiner
	// lock orders this write before the combiner's read.
	type wedge struct {
		op  Op
		arg int64
	}
	wedges := map[wedge]bool{
		{OpHSet, 2}: true,
		{OpDel, 7}:  true,
	}
	entered := make(chan Command)
	release := make(chan struct{})
	srv.eng.applyHook = func(cmd Command) {
		if wedges[wedge{cmd.Op, cmd.Arg}] {
			entered <- cmd
			<-release
		}
	}

	writer := dial(t, srv)
	reader := dial(t, srv)

	// read does one bypass read on the reader connection with a short
	// deadline: if the read ever rides the mailbox it parks behind the
	// wedged shard and the deadline converts the hang into a failure.
	read := func(line, want, while string) {
		t.Helper()
		if _, err := fmt.Fprintf(reader.conn, "%s\n", line); err != nil {
			t.Fatalf("write %q: %v", line, err)
		}
		reader.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		got, err := reader.r.ReadString('\n')
		if err != nil {
			t.Fatalf("%s: bypass read %q blocked behind the wedged shard: %v", while, line, err)
		}
		if got = strings.TrimSuffix(got, "\n"); got != want {
			t.Fatalf("%s: %q → %q, want %q", while, line, got, want)
		}
	}

	// Map family: prime k=1, then send the overwrite that wedges before
	// it applies — mid-drain the reader must still see 1, never 2 and
	// never a torn value.
	writer.expect(t, "HSET k 1", "1")
	if _, err := writer.conn.Write([]byte("HSET k 2\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	<-entered // shard parked before the overwrite applies
	read("HGET k", "1", "mid-drain")
	release <- struct{}{}
	if got := writer.readLine(t); got != "0" {
		t.Fatalf("HSET k 2 → %q, want 0 (overwrite)", got)
	}
	read("HGET k", "2", "post-batch")

	// Set family: one pipelined two-command batch [SET 8, DEL 7] wedged
	// before the DEL applies. Mid-drain the reader must see the applied
	// prefix — 8 present, 7 still present — and after release, 7 gone.
	writer.expect(t, "SET 7", "1")
	if _, err := writer.conn.Write([]byte("SET 8\nDEL 7\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	<-entered // SET 8 applied, DEL 7 pending
	read("GET 7", "1", "mid-drain")
	read("GET 8", "1", "mid-drain")
	release <- struct{}{}
	if got := writer.readLine(t); got != "1" {
		t.Fatalf("SET 8 → %q, want 1", got)
	}
	if got := writer.readLine(t); got != "1" {
		t.Fatalf("DEL 7 → %q, want 1", got)
	}
	read("GET 7", "0", "post-batch")
}

// TestBypassEpochPinsReleased is the pin-leak test: after thousands of
// bypass reads across several concurrent connections — including reads
// racing the server's shutdown — every epoch slot in every shard's
// set and map domains must be unpinned and each epoch must still be
// able to advance. A leaked pin would wedge reclamation forever.
func TestBypassEpochPinsReleased(t *testing.T) {
	srv, err := New(Options{Shards: 2, Set: "skip-epoch", Map: "epoch", Txn: "off"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	const conns, reads = 6, 200
	var wg sync.WaitGroup
	for id := 0; id < conns; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				t.Errorf("client %d dial: %v", id, err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			w := bufio.NewWriter(conn)
			// Seed some state so the reads chase real nodes.
			for i := 0; i < 8; i++ {
				fmt.Fprintf(w, "SET %d\nHSET key:%d %d\n", i, i, id)
			}
			for i := 0; i < reads; i++ {
				fmt.Fprintf(w, "GET %d\nHGET key:%d\n", i%16, i%16)
			}
			if err := w.Flush(); err != nil {
				t.Errorf("client %d flush: %v", id, err)
				return
			}
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			for i := 0; i < 8*2+reads*2; i++ {
				if _, err := r.ReadString('\n'); err != nil {
					t.Errorf("client %d reply %d: %v", id, i, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	var domains []*epoch.Domain
	for _, sh := range srv.eng.allShards() {
		switch s := sh.set.(type) {
		case *list.EpochList:
			domains = append(domains, s.Domain())
		case *skiplist.EpochSkipList:
			domains = append(domains, s.Domain())
		default:
			t.Fatalf("shard set backend %T has no epoch domain", sh.set)
		}
		m, ok := sh.dict.(*strmap.EpochMap)
		if !ok {
			t.Fatalf("shard map backend %T is not the epoch map", sh.dict)
		}
		domains = append(domains, m.Domain())
	}
	if len(domains) != 4 {
		t.Fatalf("found %d epoch domains, want 4 (2 shards × set+map)", len(domains))
	}
	for i, d := range domains {
		if pins := d.ActivePins(); pins != 0 {
			t.Errorf("domain %d: %d pins still active after shutdown", i, pins)
		}
		before := d.Epoch()
		if !d.TryAdvance() {
			t.Errorf("domain %d: TryAdvance failed after quiescence", i)
		} else if got := d.Epoch(); got != before+1 {
			t.Errorf("domain %d: epoch %d after advance, want %d", i, got, before+1)
		}
	}
}
