// Package server implements ampserved, a sharded TCP front-end over the
// book's concurrent objects. Clients speak a line-oriented text protocol;
// each command family is routed to a concurrent structure from internal/
// chosen at startup through the backend registry (see backend.go), so the
// same server can run its sets striped, refinable, split-ordered or
// cuckoo, its queues two-lock or Michael–Scott, its counters combined or
// routed through a counting network.
//
// Protocol (one command per line, LF or CRLF terminated, ≤ MaxLineLen
// bytes; integer arguments are signed 64-bit decimals; string keys are
// single printable tokens — no spaces, tabs or control bytes):
//
//	SET k      add k to the set          → 1 (added) | 0 (already present)
//	GET k      membership of k           → 1 | 0
//	DEL k      remove k from the set     → 1 (removed) | 0 (absent)
//	HSET k v   map string key k to v     → 1 (new key) | 0 (overwrote)
//	HGET k     value at string key k     → v | EMPTY
//	HDEL k     remove string key k       → 1 (removed) | 0 (absent)
//	HINCR k v  add v to key k (0 start)  → new value
//	PUSH v     push v on the stack       → OK
//	POP        pop the stack             → v | EMPTY
//	ENQ v      enqueue v                 → OK | FULL
//	DEQ        dequeue                   → v | EMPTY
//	INC        take a counter ticket     → ticket value
//	READ       read the counter          → number of INCs completed
//	PQADD p    add priority p            → OK | FULL
//	PQMIN      remove the min priority   → p | EMPTY
//	STATS      per-op counters/latency   → multi-line body, then END
//	PING       liveness                  → PONG
//	QUIT       close the connection      → OK
//	MULTI      open a transaction        → OK, then +QUEUED per staged line
//	EXEC       commit the staged buffer  → *N, then N reply lines
//	DISCARD    drop the staged buffer    → OK
//	TXSTATS    transaction engine stats  → one info line
//	SAVE       snapshot to disk          → OK (synchronous write)
//	BGSAVE     snapshot in background    → OK (cut taken, write async)
//	RESTORE f  load snapshot file f      → OK (f is a bare filename,
//	           resolved under -snapshot-dir; paths are rejected)
//	RESHARD n  double the shards to n    → OK (n must be exactly 2× current)
//
// Any failure is reported as "ERR <reason>"; malformed commands keep the
// connection open, an oversized line closes it (framing is lost).
//
// Clients may pipeline: send any number of commands without waiting for
// replies. The server parses ahead of the data plane, executes batches
// of buffered commands, and answers with exactly one reply per command
// (STATS: one multi-line body) in the order the commands were sent.
// Commands on one connection take effect in the order they were sent;
// commands on different connections may interleave arbitrarily, each
// atomically (the structures are linearizable).
//
// Between MULTI and EXEC the transactional families (HSET/HGET/HDEL/
// HINCR, INC/READ — at most MaxTxnOps lines) are staged, not executed;
// each staged line answers "+QUEUED". EXEC commits the whole buffer as
// one atomic transaction — across keys and across shards — and answers
// "*N" followed by the N per-command replies in staging order. Any
// staging error (unknown or non-stageable command, nested MULTI, a full
// buffer) poisons the window: EXEC then answers ERR and discards the
// buffer. PING, STATS and TXSTATS execute immediately inside a window;
// QUIT discards it and closes. With -txn off the four verbs answer ERR.
//
// SAVE and BGSAVE write a consistent point-in-time snapshot of every
// family to -snapshot-dir (format: internal/snapshot); the cut is taken
// with every shard quiesced at a batch boundary and EXEC commits gated,
// so it contains exactly the commands answered before it and no torn
// state. SAVE writes before answering; BGSAVE answers after the cut and
// writes in the background. RESTORE replaces the entire logical state
// with the named snapshot image; the name must be a bare filename — it
// is resolved under -snapshot-dir, and anything containing a path
// separator or dot-dot answers ERR, so clients cannot read arbitrary
// server-side files (booting with -restore takes a full path; that one
// is the operator's). RESHARD doubles the shard count
// live — traffic keeps flowing while each shard splits — up to the
// -max-shards bound; only exact doubling is accepted. None of the four
// may be staged in a MULTI window.
package server

import (
	"errors"
	"fmt"

	"amp/internal/strmap"
)

// Op enumerates the protocol commands.
type Op uint8

// The command set. OpInvalid is the zero value so an unset Command is
// never a valid operation.
const (
	OpInvalid Op = iota
	OpSet
	OpGet
	OpDel
	OpHSet
	OpHGet
	OpHDel
	OpHIncr
	OpPush
	OpPop
	OpEnq
	OpDeq
	OpInc
	OpRead
	OpPQAdd
	OpPQMin
	OpStats
	OpPing
	OpQuit
	OpMulti
	OpExec
	OpDiscard
	OpTxStats
	OpSave
	OpBGSave
	OpRestore
	OpReshard
	numOps
)

// MaxLineLen bounds a protocol line (command, argument, terminator). Long
// lines cannot be re-framed reliably, so the server drops the connection.
const MaxLineLen = 128

// ErrLineTooLong reports a line over MaxLineLen bytes.
var ErrLineTooLong = errors.New("line too long")

// argKind classifies a verb's argument shape.
type argKind uint8

const (
	argNone   argKind = iota // verb alone
	argInt                   // verb + signed 64-bit decimal
	argKey                   // verb + printable string token
	argKeyInt                // verb + string token + decimal
)

// opInfo describes one verb.
type opInfo struct {
	op  Op
	arg argKind
}

// verbs maps the canonical (upper-case) verb to its op. Lookup is done on
// an ASCII-uppercased copy, making verbs case-insensitive.
var verbs = map[string]opInfo{
	"SET":   {OpSet, argInt},
	"GET":   {OpGet, argInt},
	"DEL":   {OpDel, argInt},
	"HSET":  {OpHSet, argKeyInt},
	"HGET":  {OpHGet, argKey},
	"HDEL":  {OpHDel, argKey},
	"HINCR": {OpHIncr, argKeyInt},
	"PUSH":  {OpPush, argInt},
	"POP":   {OpPop, argNone},
	"ENQ":   {OpEnq, argInt},
	"DEQ":   {OpDeq, argNone},
	"INC":   {OpInc, argNone},
	"READ":  {OpRead, argNone},
	"PQADD": {OpPQAdd, argInt},
	"PQMIN": {OpPQMin, argNone},
	"STATS": {OpStats, argNone},
	"PING":  {OpPing, argNone},
	"QUIT":  {OpQuit, argNone},

	"MULTI":   {OpMulti, argNone},
	"EXEC":    {OpExec, argNone},
	"DISCARD": {OpDiscard, argNone},
	"TXSTATS": {OpTxStats, argNone},

	"SAVE":    {OpSave, argNone},
	"BGSAVE":  {OpBGSave, argNone},
	"RESTORE": {OpRestore, argKey}, // the key token is a filename under -snapshot-dir
	"RESHARD": {OpReshard, argInt},
}

// opNames is the inverse of verbs, for error messages.
var opNames = func() [numOps]string {
	var names [numOps]string
	names[OpInvalid] = "INVALID"
	for verb, info := range verbs {
		names[info.op] = verb
	}
	return names
}()

// String returns the canonical verb.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// HasArg reports whether the op carries an integer argument.
func (o Op) HasArg() bool {
	k := verbs[o.String()].arg
	return k == argInt || k == argKeyInt
}

// StringKeyed reports whether the op addresses the string-keyed map
// family: its routing key is a string token, hashed into the int key
// space for shard selection.
func (o Op) StringKeyed() bool {
	return o == OpHSet || o == OpHGet || o == OpHDel || o == OpHIncr
}

// Stageable reports whether the op may be queued inside a MULTI window:
// the transactional keyspace families (string map and counter). Staging
// anything else — structures without transactional backing, or control
// verbs — dirties the transaction so EXEC refuses it.
func (o Op) Stageable() bool {
	return o.StringKeyed() || o == OpInc || o == OpRead
}

// MaxTxnOps bounds the commands staged in one MULTI window, so a client
// cannot grow an unbounded buffer (or an unboundedly long commit) on the
// server's behalf.
const MaxTxnOps = 128

// Keyed reports whether the op addresses a sharded per-key family (the
// integer set or the string map). Keyed commands must execute on the
// shard owning their key; unkeyed commands run against shared structures
// and may execute on any shard, which is what lets a pipelined batch ride
// along with whatever run is already open.
func (o Op) Keyed() bool {
	return o == OpSet || o == OpGet || o == OpDel || o.StringKeyed()
}

// ReadPure reports whether the op observes state without mutating it and
// addresses a single key: the candidates for the wait-free read bypass.
// Only keyed point reads qualify — READ and TXSTATS are global, STATS has
// a multi-line reply, and every other verb mutates.
func (o Op) ReadPure() bool {
	return o == OpGet || o == OpHGet
}

// Command is one parsed protocol line.
type Command struct {
	Op  Op
	Arg int64  // meaningful only when Op.HasArg()
	Key string // meaningful only when Op.StringKeyed()
}

// ShardKey is the integer the shard router hashes to pick a home shard:
// the FNV-1a hash of the string key for map ops, the integer argument
// otherwise. Using one extraction point for both families keeps run
// detection uniform — a contiguous run of same-shard HSETs batches
// exactly like a run of SETs (see engine.do and Server.serveBatch).
func (c Command) ShardKey() int64 {
	if c.Op.StringKeyed() {
		return int64(strmap.Hash(c.Key))
	}
	return c.Arg
}

// maxVerbLen is the longest canonical verb ("DISCARD", "TXSTATS").
const maxVerbLen = 7

// errEmptyCommand reports a line with no fields (or poisoned by a
// control byte; see ParseCommand).
var errEmptyCommand = errors.New("empty command")

// ParseCommand parses one line (without the trailing LF; a trailing CR is
// tolerated). It never panics on hostile input.
//
// The happy path is allocation-free: fields are subslices of line, the
// verb is uppercased into a stack buffer whose map lookup the compiler
// keeps off the heap, integers parse without the string round-trip, and
// only a map key escapes (Command.Key must outlive the read buffer the
// line aliases). Error paths may allocate; they answer one reply and
// never sit on the pipelined hot path.
func ParseCommand(line []byte) (Command, error) {
	if len(line) > MaxLineLen {
		return Command{}, ErrLineTooLong
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	// Split on runs of spaces and tabs, in place: only the first three
	// fields can matter (a fourth is always an arity error), so at most
	// four subslices are recorded and the rest only counted. Any other
	// control byte poisons the line: no verb or decimal contains one,
	// and rejecting them here keeps garbage (including NULs from
	// half-open sockets) out of error messages.
	var tok [4][]byte
	ntok := 0
	start := -1
	for i := 0; i <= len(line); i++ {
		b := byte(' ')
		if i < len(line) {
			b = line[i]
		}
		switch {
		case b == ' ' || b == '\t':
			if start >= 0 {
				if ntok < len(tok) {
					tok[ntok] = line[start:i]
				}
				ntok++
				start = -1
			}
		case b < 0x20 || b == 0x7f:
			return Command{}, errEmptyCommand
		default:
			if start < 0 {
				start = i
			}
		}
	}
	if ntok == 0 {
		return Command{}, errEmptyCommand
	}
	v := tok[0]
	if len(v) > maxVerbLen {
		return Command{}, fmt.Errorf("unknown command %q", upperVerb(v))
	}
	var vb [maxVerbLen]byte
	for i := 0; i < len(v); i++ {
		b := v[i]
		if 'a' <= b && b <= 'z' {
			b -= 'a' - 'A'
		}
		vb[i] = b
	}
	info, ok := verbs[string(vb[:len(v)])]
	if !ok {
		return Command{}, fmt.Errorf("unknown command %q", string(vb[:len(v)]))
	}
	cmd := Command{Op: info.op}
	switch info.arg {
	case argNone:
		if ntok != 1 {
			return Command{}, fmt.Errorf("%s takes no argument", info.op)
		}
	case argInt:
		if ntok != 2 {
			return Command{}, fmt.Errorf("%s needs exactly one integer argument", info.op)
		}
		arg, ok := parseInt(tok[1])
		if !ok {
			return Command{}, fmt.Errorf("bad integer %q", tok[1])
		}
		cmd.Arg = arg
	case argKey:
		if ntok != 2 {
			return Command{}, fmt.Errorf("%s needs exactly one key", info.op)
		}
		cmd.Key = string(tok[1])
	case argKeyInt:
		if ntok != 3 {
			return Command{}, fmt.Errorf("%s needs a key and an integer value", info.op)
		}
		arg, ok := parseInt(tok[2])
		if !ok {
			return Command{}, fmt.Errorf("bad integer %q", tok[2])
		}
		cmd.Key = string(tok[1])
		cmd.Arg = arg
	}
	return cmd, nil
}

// parseInt parses a signed base-10 64-bit decimal, accepting exactly
// what strconv.ParseInt(string(b), 10, 64) accepts — an optional sign
// and digits, rejecting overflow — without the string conversion.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	const cutoff = uint64(1) << 63 // |MinInt64|
	var n uint64
	for _, c := range b {
		d := c - '0'
		if d > 9 {
			return 0, false
		}
		if n > (cutoff-uint64(d))/10 {
			return 0, false // past ±2^63 regardless of sign
		}
		n = n*10 + uint64(d)
	}
	if neg {
		return -int64(n), true // n ≤ 2^63, so the negation covers MinInt64
	}
	if n >= cutoff {
		return 0, false
	}
	return int64(n), true
}

// upperVerb uppercases ASCII letters of an unrecognized verb for its
// error message (error path only; allocates).
func upperVerb(v []byte) string {
	up := make([]byte, len(v))
	for i, b := range v {
		if 'a' <= b && b <= 'z' {
			b -= 'a' - 'A'
		}
		up[i] = b
	}
	return string(up)
}

// metricNames maps each data-plane op to its metrics registry key; control
// ops (STATS, PING, QUIT) are not measured.
var metricNames = [numOps]string{
	OpSet:   "set.add",
	OpGet:   "set.contains",
	OpDel:   "set.remove",
	OpHSet:  "map.set",
	OpHGet:  "map.get",
	OpHDel:  "map.del",
	OpHIncr: "map.incr",
	OpPush:  "stack.push",
	OpPop:   "stack.pop",
	OpEnq:   "queue.enq",
	OpDeq:   "queue.deq",
	OpInc:   "counter.inc",
	OpRead:  "counter.read",
	OpPQAdd: "pqueue.add",
	OpPQMin: "pqueue.min",
}

// allMetricNames lists the measured ops in protocol order.
func allMetricNames() []string {
	var names []string
	for _, n := range metricNames {
		if n != "" {
			names = append(names, n)
		}
	}
	return names
}
