package server

// Snapshot-consistency and reshard harnesses: SAVE taken by a concurrent
// client mid-history must decode to a consistent cut — a state the
// sequential model could have held at some instant inside the SAVE's
// [call, return] window — and a live RESHARD under recorded pipelined
// traffic must leave the history linearizable with zero dropped or
// duplicated replies. The snapshot check works by recording the SAVE as
// an ordinary history operation ("snapshot") whose output is the decoded
// file contents; the Wing & Gong checker then has to find a legal
// linearization point for it like any other op.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"amp/internal/core"
	"amp/internal/snapshot"
)

// recOp is one scripted command of a recorded client: the wire line, the
// model action/input it corresponds to, and a parser from the reply line
// to the model's output domain.
type recOp struct {
	line   string
	action string
	input  any
	parse  func(reply string) (any, error)
}

func parseBool(reply string) (any, error) {
	switch reply {
	case "1":
		return true, nil
	case "0":
		return false, nil
	}
	return nil, fmt.Errorf("reply %q, want 0 or 1", reply)
}

func parseOK(reply string) (any, error) {
	if reply != "OK" {
		return nil, fmt.Errorf("reply %q, want OK", reply)
	}
	return nil, nil
}

func parseIntOrEmpty(reply string) (any, error) {
	if reply == "EMPTY" {
		return core.Empty, nil
	}
	v, err := strconv.Atoi(reply)
	if err != nil {
		return nil, fmt.Errorf("reply %q, want integer or EMPTY", reply)
	}
	return v, nil
}

// runRecClient pipelines a script through one connection with the given
// window depth, recording every op. Each command is matched to exactly
// one reply line; any shortfall or surplus surfaces as a read error or a
// parse failure, so a nil return certifies the reply accounting.
func runRecClient(addr string, rec *core.Recorder, me core.ThreadID, depth int, ops []recOp) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	type sent struct {
		pend *core.PendingOp
		op   recOp
	}
	window := make([]sent, 0, depth)
	for next := 0; next < len(ops); {
		window = window[:0]
		for next < len(ops) && len(window) < depth {
			op := ops[next]
			window = append(window, sent{pend: rec.Call(me, op.action, op.input), op: op})
			fmt.Fprintf(w, "%s\n", op.line)
			next++
		}
		if err := w.Flush(); err != nil {
			return err
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		for _, s := range window {
			line, err := r.ReadString('\n')
			if err != nil {
				return err
			}
			out, err := s.op.parse(strings.TrimSuffix(line, "\n"))
			if err != nil {
				return fmt.Errorf("%s: %v", s.op.line, err)
			}
			s.pend.Done(out)
		}
	}
	return nil
}

// setOps mixes SET/DEL over a small shared key range so clients contend
// on membership and the snapshot lands on a state that is genuinely in
// flux.
func setOps(id, n int) []recOp {
	ops := make([]recOp, n)
	for i := range ops {
		k := (id*31 + i*7) % 16
		if i%2 == 0 {
			ops[i] = recOp{line: fmt.Sprintf("SET %d", k), action: "add", input: k, parse: parseBool}
		} else {
			ops[i] = recOp{line: fmt.Sprintf("DEL %d", k), action: "remove", input: k, parse: parseBool}
		}
	}
	return ops
}

func mapOps(id, n int) []recOp {
	ops := make([]recOp, n)
	for i := range ops {
		k := fmt.Sprintf("k%d", (id*5+i*3)%8)
		if i%2 == 0 {
			v := int64(id*100_000 + i)
			ops[i] = recOp{line: fmt.Sprintf("HSET %s %d", k, v), action: "set",
				input: core.MapSetInput{K: k, V: v}, parse: parseBool}
		} else {
			ops[i] = recOp{line: "HDEL " + k, action: "del", input: k, parse: parseBool}
		}
	}
	return ops
}

func queueOps(id, n int) []recOp {
	ops := make([]recOp, n)
	for i := range ops {
		if i%2 == 0 {
			v := id*100_000 + i
			ops[i] = recOp{line: fmt.Sprintf("ENQ %d", v), action: "enq", input: v, parse: parseOK}
		} else {
			ops[i] = recOp{line: "DEQ", action: "deq", input: nil, parse: parseIntOrEmpty}
		}
	}
	return ops
}

// Projections from a decoded snapshot to the model's state domain. Empty
// families normalize to nil so they compare DeepEqual with the models'
// nil-initial states.

func projectSetState(st *snapshot.State) any {
	if len(st.Set) == 0 {
		return []int(nil)
	}
	out := make([]int, len(st.Set))
	for i, v := range st.Set {
		out[i] = int(v)
	}
	sort.Ints(out)
	return out
}

func projectMapState(st *snapshot.State) any {
	if len(st.Map) == 0 {
		return []core.MapPair(nil)
	}
	out := make([]core.MapPair, len(st.Map))
	for i, e := range st.Map {
		out[i] = core.MapPair{K: e.Key, V: e.Val}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

func projectQueueState(st *snapshot.State) any {
	if len(st.Queue) == 0 {
		return []int(nil)
	}
	out := make([]int, len(st.Queue))
	for i, v := range st.Queue {
		out[i] = int(v)
	}
	return out
}

// recordSave round-trips one SAVE on its own connection, decodes the
// written file, and records the whole exchange as a "snapshot" operation
// whose output is the decoded family state. Decoding happens before
// Done, inside the operation's window — that only widens the window the
// checker must place the cut in, which is sound.
func recordSave(srv *Server, rec *core.Recorder, me core.ThreadID, project func(*snapshot.State) any) error {
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	pend := rec.Call(me, "snapshot", nil)
	if _, err := fmt.Fprint(conn, "SAVE\n"); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	if line != "OK\n" {
		return fmt.Errorf("SAVE reply %q, want OK", strings.TrimSuffix(line, "\n"))
	}
	st, err := snapshot.Read(srv.eng.snapPath())
	if err != nil {
		return fmt.Errorf("decode snapshot: %v", err)
	}
	pend.Done(project(st))
	return nil
}

// testSnapshotConsistency records concurrent family traffic with a SAVE
// landing mid-history, then checks the combined history — including the
// snapshot op, whose output is the decoded file — against the model. As
// in testServerLinearizable, an exhausted search budget proves nothing,
// so the harness re-records rather than hanging; only a decided
// non-linearizable verdict fails.
func testSnapshotConsistency(t *testing.T, opts Options, model core.Model,
	genOps func(id, n int) []recOp, project func(*snapshot.State) any) {
	for _, procs := range []int{2, 8} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			const clients, opsEach = 4, 150
			const budget = 2_000_000
			const attempts = 6
			for attempt := 1; attempt <= attempts; attempt++ {
				o := opts
				o.SnapshotDir = t.TempDir()
				srv := startServer(t, o)
				rec := core.NewRecorder()

				var wg sync.WaitGroup
				for id := 0; id < clients; id++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						depth := 1 + id%2
						err := runRecClient(srv.Addr().String(), rec, core.ThreadID(id),
							depth, genOps(id, opsEach))
						if err != nil {
							t.Errorf("client %d: %v", id, err)
						}
					}(id)
				}
				saveErr := make(chan error, 1)
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Land inside the clients' few-millisecond run.
					time.Sleep(2 * time.Millisecond)
					saveErr <- recordSave(srv, rec, core.ThreadID(clients), project)
				}()
				wg.Wait()
				if err := <-saveErr; err != nil {
					t.Fatalf("saver: %v", err)
				}
				if t.Failed() {
					return
				}

				h := rec.History()
				if got, want := len(h), clients*opsEach+1; got != want {
					t.Fatalf("history has %d ops, want %d", got, want)
				}
				res := core.CheckBudget(model, h, budget)
				switch {
				case res.Exhausted:
					t.Logf("%s: attempt %d/%d exhausted the %d-step budget on %d ops; re-recording",
						model.Name, attempt, attempts, budget, len(h))
				case !res.Linearizable:
					t.Fatalf("%s: history with mid-flight snapshot is not linearizable — SAVE did not capture a consistent cut", model.Name)
				default:
					return
				}
			}
			t.Fatalf("%s: checker budget exhausted on %d consecutive recordings", model.Name, attempts)
		})
	}
}

func TestSnapshotConsistencySet(t *testing.T) {
	testSnapshotConsistency(t, Options{Shards: 4}, core.SetModel(), setOps, projectSetState)
}

// TestSnapshotConsistencyMap runs the map family through the default
// transactional keyspace, so the snapshot's map section is collected via
// Keyspace.Range.
func TestSnapshotConsistencyMap(t *testing.T) {
	testSnapshotConsistency(t, Options{Shards: 4}, core.MapModel(), mapOps, projectMapState)
}

// TestSnapshotConsistencyMapSharded disables the keyspace so HSET/HGET
// run against the per-shard string maps and the snapshot's map section
// is collected by ranging the shards.
func TestSnapshotConsistencyMapSharded(t *testing.T) {
	testSnapshotConsistency(t, Options{Shards: 4, Txn: "off"}, core.MapModel(), mapOps, projectMapState)
}

func TestSnapshotConsistencyQueue(t *testing.T) {
	testSnapshotConsistency(t, Options{Shards: 4}, core.QueueModel(), queueOps, projectQueueState)
}

// TestReshardUnderLoadLinearizable doubles the shard count twice while
// recorded pipelined clients hammer the keyed set family. Every command
// must get exactly one reply (runRecClient errors otherwise, and the
// recorded-op count is checked), the combined history must stay
// linearizable, and STATS must report the final shard count.
func TestReshardUnderLoadLinearizable(t *testing.T) {
	const clients, opsEach = 4, 200
	const budget = 2_000_000
	const attempts = 6
	for attempt := 1; attempt <= attempts; attempt++ {
		srv := startServer(t, Options{Shards: 2, MaxShards: 8})
		rec := core.NewRecorder()

		var wg sync.WaitGroup
		for id := 0; id < clients; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				depth := 1 + id%2
				err := runRecClient(srv.Addr().String(), rec, core.ThreadID(id),
					depth, setOps(id, opsEach))
				if err != nil {
					t.Errorf("client %d: %v", id, err)
				}
			}(id)
		}
		reshardErr := make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			reshardErr <- func() error {
				conn, err := net.Dial("tcp", srv.Addr().String())
				if err != nil {
					return err
				}
				defer conn.Close()
				r := bufio.NewReader(conn)
				for _, n := range []int{4, 8} {
					time.Sleep(time.Millisecond)
					if _, err := fmt.Fprintf(conn, "RESHARD %d\n", n); err != nil {
						return err
					}
					conn.SetReadDeadline(time.Now().Add(10 * time.Second))
					line, err := r.ReadString('\n')
					if err != nil {
						return err
					}
					if line != "OK\n" {
						return fmt.Errorf("RESHARD %d reply %q, want OK", n, strings.TrimSuffix(line, "\n"))
					}
				}
				return nil
			}()
		}()
		wg.Wait()
		if err := <-reshardErr; err != nil {
			t.Fatalf("resharder: %v", err)
		}
		if t.Failed() {
			return
		}

		if got, want := rec.Len(), clients*opsEach; got != want {
			t.Fatalf("recorded %d ops, want %d: replies were dropped or duplicated", got, want)
		}
		res := core.CheckBudget(core.SetModel(), rec.History(), budget)
		switch {
		case res.Exhausted:
			t.Logf("attempt %d/%d exhausted the %d-step budget; re-recording", attempt, attempts, budget)
			continue
		case !res.Linearizable:
			t.Fatalf("set history across RESHARD 2→4→8 is not linearizable")
		}

		c := dial(t, srv)
		body := readStats(t, c, c.cmd(t, "STATS"))
		if !strings.Contains(body, "shards 8\n") {
			t.Fatalf("STATS after reshard missing %q:\n%s", "shards 8", body)
		}
		return
	}
	t.Fatalf("checker budget exhausted on %d consecutive recordings", attempts)
}

// TestReshardValidation pins the deterministic reshard contract: only
// exact doubling is accepted, the MaxShards ceiling is enforced, data
// survives a doubling, and STATS reflects the new count.
func TestReshardValidation(t *testing.T) {
	srv := startServer(t, Options{Shards: 4}) // MaxShards defaults to 8
	c := dial(t, srv)

	for _, k := range []int{1, 2, 3, 100, 1 << 40} {
		c.expect(t, fmt.Sprintf("SET %d", k), "1")
	}
	c.expect(t, "HSET alpha 7", "1")
	c.expect(t, "ENQ 10", "OK")
	c.expect(t, "ENQ 20", "OK")
	c.expect(t, "INC", "0")

	c.expect(t, "RESHARD 4", "ERR reshard target 4 is not double the current 4 shards")
	c.expect(t, "RESHARD 6", "ERR reshard target 6 is not double the current 4 shards")
	c.expect(t, "RESHARD 16", "ERR reshard target 16 is not double the current 4 shards")
	c.expect(t, "RESHARD 8", "OK")
	c.expect(t, "RESHARD 16", "ERR reshard target 16 exceeds -max-shards 8")

	// State is intact after the doubling.
	for _, k := range []int{1, 2, 3, 100, 1 << 40} {
		c.expect(t, fmt.Sprintf("GET %d", k), "1")
	}
	c.expect(t, "GET 4", "0")
	c.expect(t, "HGET alpha", "7")
	c.expect(t, "DEQ", "10")
	c.expect(t, "DEQ", "20")
	c.expect(t, "READ", "1")

	body := readStats(t, c, c.cmd(t, "STATS"))
	if !strings.Contains(body, "shards 8\n") {
		t.Fatalf("STATS missing %q after reshard:\n%s", "shards 8", body)
	}
}

// TestSaveRestoreServer saves one server's state and restores it into a
// second live server with a different shard count: the restored state
// must equal the snapshot point, not include post-save mutations, and
// the counter must continue from its saved value.
func TestSaveRestoreServer(t *testing.T) {
	dir := t.TempDir()
	src := startServer(t, Options{Shards: 4, SnapshotDir: dir})
	c := dial(t, src)

	c.expect(t, "SET 7", "1")
	c.expect(t, "SET 99", "1")
	c.expect(t, "HSET user:1 41", "1")
	c.expect(t, "ENQ 5", "OK")
	c.expect(t, "ENQ 6", "OK")
	c.expect(t, "PUSH 8", "OK")
	c.expect(t, "PQADD 3", "OK")
	c.expect(t, "INC", "0")
	c.expect(t, "INC", "1")
	c.expect(t, "SAVE", "OK")
	// Mutations after the save must not be in the snapshot.
	c.expect(t, "SET 1000", "1")
	c.expect(t, "DEL 7", "1")
	c.expect(t, "INC", "2")

	dst := startServer(t, Options{Shards: 2, SnapshotDir: t.TempDir()})
	if err := dst.Restore(src.eng.snapPath()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	d := dial(t, dst)
	d.expect(t, "GET 7", "1")
	d.expect(t, "GET 99", "1")
	d.expect(t, "GET 1000", "0")
	d.expect(t, "HGET user:1", "41")
	d.expect(t, "DEQ", "5")
	d.expect(t, "DEQ", "6")
	d.expect(t, "POP", "8")
	d.expect(t, "PQMIN", "3")
	d.expect(t, "READ", "2")
	d.expect(t, "INC", "2")
	d.expect(t, "READ", "3")
}

// TestRestoreVerb exercises the RESTORE wire verb end to end: the
// filename is resolved under the destination's -snapshot-dir, a missing
// file answers ERR, and path-shaped names are rejected outright.
func TestRestoreVerb(t *testing.T) {
	dir := t.TempDir()
	src := startServer(t, Options{Shards: 2, SnapshotDir: dir})
	c := dial(t, src)
	c.expect(t, "SET 12", "1")
	c.expect(t, "SAVE", "OK")

	// The verb names a file under the destination server's own
	// -snapshot-dir, so the destination points at the source's directory.
	dst := startServer(t, Options{Shards: 4, SnapshotDir: dir})
	d := dial(t, dst)
	d.expect(t, "RESTORE "+snapFile, "OK")
	d.expect(t, "GET 12", "1")
	if got := d.cmd(t, "RESTORE missing.snap"); !strings.HasPrefix(got, "ERR ") {
		t.Fatalf("RESTORE missing file → %q, want ERR", got)
	}
	// The failed restore left the previous state alone.
	d.expect(t, "GET 12", "1")

	// Path-shaped names never reach the filesystem: a TCP client must
	// not be able to point the server at arbitrary files (or use the
	// error replies as an existence oracle).
	for _, name := range []string{
		".", "..", "../" + snapFile, "a/b", `..\evil`, "/etc/passwd",
		src.eng.snapPath(), // full paths are for the -restore boot flag only
	} {
		want := "ERR RESTORE takes a snapshot filename under -snapshot-dir, not a path"
		if got := d.cmd(t, "RESTORE "+name); got != want {
			t.Fatalf("RESTORE %q → %q, want %q", name, got, want)
		}
	}
	d.expect(t, "GET 12", "1")
}

// TestRestoreAllOrNothing forges a snapshot the configured backends must
// refuse (a queue section over the bounded queue's capacity) and asserts
// the refusal happens before any live state is touched: a failed RESTORE
// answers ERR and leaves every family exactly as it was, never a cleared
// store with a half-loaded image.
func TestRestoreAllOrNothing(t *testing.T) {
	dir := t.TempDir()
	srv := startServer(t, Options{Shards: 2, SnapshotDir: dir, Queue: "bounded", QueueCapacity: 2})
	c := dial(t, srv)
	c.expect(t, "SET 5", "1")
	c.expect(t, "HSET k 9", "1")
	c.expect(t, "ENQ 1", "OK")
	c.expect(t, "PUSH 4", "OK")

	st := &snapshot.State{Set: []int64{77}, Queue: []int64{1, 2, 3}, Shards: 2}
	if _, err := snapshot.Write(filepath.Join(dir, "big.snap"), st); err != nil {
		t.Fatalf("write forged snapshot: %v", err)
	}
	got := c.cmd(t, "RESTORE big.snap")
	if !strings.HasPrefix(got, "ERR ") || !strings.Contains(got, "queue restore") {
		t.Fatalf("RESTORE over-capacity queue → %q, want ERR about the queue", got)
	}
	// The refused image changed nothing.
	c.expect(t, "GET 5", "1")
	c.expect(t, "GET 77", "0")
	c.expect(t, "HGET k", "9")
	c.expect(t, "DEQ", "1")
	c.expect(t, "DEQ", "EMPTY")
	c.expect(t, "POP", "4")
}

// TestSnapshotWriteFailureCounted points -snapshot-dir at a regular
// file, so every snapshot write fails, and asserts the failures surface
// in STATS: SAVE's synchronously (plus the fails counter), and BGSAVE's
// — whose OK only promises the cut — through the fails counter alone.
func TestSnapshotWriteFailureCounted(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "notadir")
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, Options{Shards: 2, SnapshotDir: dir})
	c := dial(t, srv)
	if got := c.cmd(t, "SAVE"); !strings.HasPrefix(got, "ERR ") {
		t.Fatalf("SAVE into a non-directory → %q, want ERR", got)
	}
	c.expect(t, "BGSAVE", "OK") // the cut succeeds; the background write cannot
	deadline := time.Now().Add(5 * time.Second)
	for {
		body := readStats(t, c, c.cmd(t, "STATS"))
		if strings.Contains(body, "snap saves=0 fails=2 ") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("STATS never showed the two failed writes:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBypassReadRefusedMidRestore pins the torn-restore fix
// deterministically: loadSnapshot is wedged (restoreHook) at its most
// inconsistent point — every family cleared, nothing inserted yet — and
// a wait-free bypass read must then refuse to serve (served=false, so
// the caller retries through the mailbox and parks behind the quiesce)
// rather than report the torn miss. Covers both bypass flavors: the
// lock-free set's per-shard read and the transactional keyspace's HGET.
func TestBypassReadRefusedMidRestore(t *testing.T) {
	run := func(t *testing.T, opts Options, seed string, cmd Command, want int64) {
		opts.Shards = 2
		opts.SnapshotDir = t.TempDir()
		srv := startServer(t, opts)
		c := dial(t, srv)
		c.expect(t, seed, "1")
		c.expect(t, "SAVE", "OK")
		st, err := snapshot.Read(srv.eng.snapPath())
		if err != nil {
			t.Fatalf("read snapshot back: %v", err)
		}

		e := srv.eng
		if r, served := e.readLocal(cmd); !served || r.val != want {
			t.Fatalf("bypass read before restore: served=%v reply=%+v", served, r)
		}
		midway, release := make(chan struct{}), make(chan struct{})
		e.restoreHook = func() { close(midway); <-release }
		done := make(chan error, 1)
		go func() { done <- e.loadSnapshot(st) }()
		<-midway
		if r, served := e.readLocal(cmd); served {
			t.Fatalf("bypass read served the torn mid-restore state: %+v", r)
		}
		close(release)
		if err := <-done; err != nil {
			t.Fatalf("loadSnapshot: %v", err)
		}
		e.restoreHook = nil
		if r, served := e.readLocal(cmd); !served || r.val != want {
			t.Fatalf("bypass read after restore: served=%v reply=%+v", served, r)
		}
	}

	t.Run("set-lockfree", func(t *testing.T) {
		run(t, Options{Set: "lockfree", Txn: "off"}, "SET 5", Command{Op: OpGet, Arg: 5}, 1)
	})
	t.Run("map-keyspace", func(t *testing.T) {
		run(t, Options{}, "HSET k 7", Command{Op: OpHGet, Key: "k"}, 7)
	})
}

// TestBypassReadsDuringRestore pins the torn-restore fix: wait-free
// bypass reads run on connection goroutines with no combiner lock, so
// without the restoreGen seqlock they could observe RESTORE's
// half-restored keyspace. Every key here is present — with the same
// value — both before and after each restore, so any miss is a
// linearizability violation. Two legs: the lock-free set (GET bypass
// against per-shard structures) and the transactional keyspace (HGET
// bypass against the tvar directory RESTORE clears and refills).
func TestBypassReadsDuringRestore(t *testing.T) {
	const keys = 512
	const depth = 32 // pipelined reads per burst: the bypass fires per line
	run := func(t *testing.T, opts Options, seed func(c *client, k int), read func(k int) (line, want string)) {
		opts.Shards = 2
		opts.SnapshotDir = t.TempDir()
		srv := startServer(t, opts)
		c := dial(t, srv)
		for k := 0; k < keys; k++ {
			seed(c, k)
		}
		c.expect(t, "SAVE", "OK")

		stop := make(chan struct{})
		errc := make(chan error, 4)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", srv.Addr().String())
				if err != nil {
					errc <- err
					return
				}
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				for base := g; ; base = (base + 41) % keys {
					select {
					case <-stop:
						return
					default:
					}
					for i := 0; i < depth; i++ {
						line, _ := read((base + i) % keys)
						fmt.Fprintf(w, "%s\n", line)
					}
					if err := w.Flush(); err != nil {
						errc <- err
						return
					}
					conn.SetReadDeadline(time.Now().Add(5 * time.Second))
					for i := 0; i < depth; i++ {
						line, want := read((base + i) % keys)
						reply, err := r.ReadString('\n')
						if err != nil {
							errc <- fmt.Errorf("%s: %v", line, err)
							return
						}
						if got := strings.TrimSuffix(reply, "\n"); got != want {
							errc <- fmt.Errorf("%s → %q, want %q (torn restore observed)", line, got, want)
							return
						}
					}
				}
			}(g)
		}
		for i := 0; i < 40; i++ {
			c.expect(t, "RESTORE "+snapFile, "OK")
		}
		close(stop)
		wg.Wait()
		select {
		case err := <-errc:
			t.Fatalf("reader: %v", err)
		default:
		}
	}

	t.Run("set-lockfree", func(t *testing.T) {
		run(t, Options{Set: "lockfree", Txn: "off"},
			func(c *client, k int) { c.expect(t, fmt.Sprintf("SET %d", k), "1") },
			func(k int) (string, string) { return fmt.Sprintf("GET %d", k), "1" })
	})
	t.Run("map-keyspace", func(t *testing.T) {
		run(t, Options{},
			func(c *client, k int) { c.expect(t, fmt.Sprintf("HSET k%d %d", k, k+1000), "1") },
			func(k int) (string, string) { return fmt.Sprintf("HGET k%d", k), strconv.Itoa(k+1000) })
	})
}
