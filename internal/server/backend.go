// Backend registry: every command family is served by a structure from
// internal/, chosen by name at startup. This is the server-side rendering
// of the book's central theme — many synchronization strategies for one
// abstract object — and of the Adjusted Objects idea of selecting the
// implementation per workload.
package server

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"amp/internal/adaptive"
	"amp/internal/counting"
	"amp/internal/hashset"
	"amp/internal/list"
	"amp/internal/pqueue"
	"amp/internal/queue"
	"amp/internal/skiplist"
	"amp/internal/stack"
	"amp/internal/strmap"
	"amp/internal/txn"
)

// Options selects the data-plane layout and its backends. The zero value
// is usable: every field has a default.
type Options struct {
	// Shards is the number of single-goroutine data-plane shards
	// (default GOMAXPROCS). Keyed commands hash to a shard; unkeyed
	// commands are spread round-robin.
	Shards int

	// MaxShards caps live resharding (default 2×Shards, never below
	// Shards): RESHARD may double the shard count until it would exceed
	// this bound. The width-bounded counting structures (combining
	// trees, counting networks, per-thread metrics) are sized to it at
	// boot, which is what makes post-reshard shard IDs valid ThreadIDs.
	MaxShards int

	// SnapshotDir is where SAVE/BGSAVE write the snapshot file
	// (default "."). See internal/snapshot for the format.
	SnapshotDir string

	// Backend names per family; see *Backends() for the valid names.
	Set            string // default "striped"
	Map            string // default "striped"
	Queue          string // default "unbounded"
	Stack          string // default "treiber"
	PQueue         string // default "skip"
	Counter        string // default "combining"
	MetricsCounter string // counting backend for metrics; default "cas"

	// ReadBypass controls the wait-free read fast path: "on" (default)
	// executes GET/HGET directly on the connection goroutine — under an
	// epoch pin where the backend needs one — whenever the serving
	// backend's reads are safe from any goroutine (see the readBypass
	// capability on the registry entries); "off" forces every read
	// through the shard mailbox. Reads on non-capable backends, and
	// reads staged inside MULTI windows, always take the mailbox/tvar
	// path regardless of this setting.
	ReadBypass string

	// Morph controls live morphing on the "adaptive" set/map backends:
	// "on" (default) lets each shard's controller migrate its structure
	// between ladder members as the observed workload shifts; "off"
	// freezes the adaptive backends on their boot member (striped).
	// Ignored unless an adaptive backend is selected.
	//
	// MorphEvery is the number of batch drains between controller
	// evaluations per shard (default 32); MorphReadPct is the window
	// read percentage at which a shard morphs to its read-optimized
	// member (default 90).
	Morph        string
	MorphEvery   int
	MorphReadPct int

	// Txn selects the transactional engine serving MULTI/EXEC and, when
	// enabled, the fast path of the string-map and counter families (so
	// plain traffic and transactions share one linearizable keyspace):
	// "tl2" (default), "dstm", or "off". CM selects the DSTM contention
	// manager (default "aggressive"); it is validated for every engine
	// but only dstm consults it.
	Txn string
	CM  string

	// SetCapacity is the initial per-shard hash-table size for both the
	// integer set and the string map (power of two, default 1024).
	// QueueCapacity bounds the "bounded" and
	// "recycling" queues (default 4096). PQCapacity is the "heap"
	// capacity and the priority range of "linear"/"tree" (default 1024).
	SetCapacity   int
	QueueCapacity int
	PQCapacity    int

	// IdleTimeout drops connections silent for this long (default 2m).
	IdleTimeout time.Duration

	// SpinBudget is the number of empty polls a shard goroutine makes on
	// its mailbox before parking: 0 (default) selects
	// mailbox.DefaultSpinBudget, a negative value disables spinning (the
	// shard parks on the first empty poll — the pre-mailbox channel
	// behavior, useful to isolate the spin phase in experiments).
	SpinBudget int

	// clock overrides the engine's time source (tests only: the
	// amortized-clock test injects a fake clock here). Nil means
	// time.Now.
	clock func() time.Time

	// morphMinOps overrides the adaptive controllers' minimum window
	// size (tests only: whitebox morph tests shrink it so short
	// histories still close windows). 0 means the adaptive default.
	morphMinOps int
}

func (o Options) withDefaults() Options {
	def := func(s *string, v string) {
		if *s == "" {
			*s = v
		}
	}
	defInt := func(n *int, v int) {
		if *n <= 0 {
			*n = v
		}
	}
	defInt(&o.Shards, runtime.GOMAXPROCS(0))
	defInt(&o.MaxShards, 2*o.Shards)
	if o.MaxShards < o.Shards {
		o.MaxShards = o.Shards
	}
	def(&o.SnapshotDir, ".")
	def(&o.Set, "striped")
	def(&o.Map, "striped")
	def(&o.Queue, "unbounded")
	def(&o.Stack, "treiber")
	def(&o.PQueue, "skip")
	def(&o.Counter, "combining")
	def(&o.MetricsCounter, "cas")
	def(&o.ReadBypass, "on")
	def(&o.Morph, "on")
	defInt(&o.MorphEvery, 32)
	defInt(&o.MorphReadPct, 90)
	def(&o.Txn, "tl2")
	def(&o.CM, "aggressive")
	defInt(&o.SetCapacity, 1024)
	defInt(&o.QueueCapacity, 4096)
	defInt(&o.PQCapacity, 1024)
	// The hash-table constructors require power-of-two capacities ≥ 2.
	o.SetCapacity = nextPow2(max(2, o.SetCapacity))
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.clock == nil {
		o.clock = time.Now
	}
	return o
}

// errFull reports a bounded structure at capacity.
var errFull = errors.New("full")

// queueBackend adapts the queue family. enq returns errFull when a
// bounded backend is at capacity.
type queueBackend interface {
	enq(v int64) error
	deq() (int64, bool)
}

// stackBackend adapts the stack family.
type stackBackend interface {
	push(v int64)
	pop() (int64, bool)
}

// pqBackend adapts the priority-queue family. add reports errFull or a
// range error for bounded backends.
type pqBackend interface {
	add(p int64) error
	removeMin() (int64, bool)
}

// genericQueue serves the queue.Queue implementations that never refuse an
// enqueue.
type genericQueue struct{ q queue.Queue[int64] }

func (g genericQueue) enq(v int64) error  { g.q.Enq(v); return nil }
func (g genericQueue) deq() (int64, bool) { return g.q.Deq() }

// boundedQueue guards the blocking two-lock bounded queue with a size
// check so a full queue answers FULL instead of stalling its shard. The
// check races with concurrent shards, so an enqueue squeezing past it may
// still block briefly until a dequeue; that is the book's Fig. 10.3
// semantics, bounded here to the race window.
type boundedQueue struct{ q *queue.BoundedQueue[int64] }

func (b boundedQueue) enq(v int64) error {
	if b.q.Size() >= b.q.Capacity() {
		return errFull
	}
	b.q.Enq(v)
	return nil
}

// deq uses TryDeq: the blocking Deq would park the shard goroutine on an
// empty queue, stalling every command routed to that shard.
func (b boundedQueue) deq() (int64, bool) { return b.q.TryDeq() }

// recyclingQueue adapts the node-recycling queue, whose Enq refuses when
// the node pool is exhausted.
type recyclingQueue struct{ q *queue.RecyclingQueue }

func (r recyclingQueue) enq(v int64) error {
	if !r.q.Enq(v) {
		return errFull
	}
	return nil
}
func (r recyclingQueue) deq() (int64, bool) { return r.q.Deq() }

// genericStack serves any stack.Stack.
type genericStack struct{ s stack.Stack[int64] }

func (g genericStack) push(v int64)       { g.s.Push(v) }
func (g genericStack) pop() (int64, bool) { return g.s.Pop() }

// rangedPQ serves the bounded pools (SimpleLinear, SimpleTree), which
// panic outside their priority range; the adapter turns that into an error
// reply.
type rangedPQ struct {
	q   pqueue.PQueue
	rng int64
}

func (r rangedPQ) add(p int64) error {
	if p < 0 || p >= r.rng {
		return fmt.Errorf("priority %d outside [0,%d)", p, r.rng)
	}
	r.q.Add(int(p))
	return nil
}
func (r rangedPQ) removeMin() (int64, bool) {
	v, ok := r.q.RemoveMin()
	return int64(v), ok
}

// cappedPQ serves the fine-grained heap, which panics past its capacity;
// a conservative item count turns overflow into FULL. The count may
// transiently overestimate (add reserves before inserting), never
// underestimate, so the heap cannot overflow.
type cappedPQ struct {
	q    *pqueue.FineGrainedHeap
	cap  int64
	size atomic.Int64
}

func (c *cappedPQ) add(p int64) error {
	if p < sentinelGuardMin || p > sentinelGuardMax {
		return fmt.Errorf("priority %d out of range", p)
	}
	if c.size.Add(1) > c.cap {
		c.size.Add(-1)
		return errFull
	}
	c.q.Add(int(p))
	return nil
}
func (c *cappedPQ) removeMin() (int64, bool) {
	v, ok := c.q.RemoveMin()
	if ok {
		c.size.Add(-1)
	}
	return int64(v), ok
}

// openPQ serves the unbounded linearizable/quiescent queues.
type openPQ struct{ q pqueue.PQueue }

func (o openPQ) add(p int64) error {
	if p < sentinelGuardMin || p > sentinelGuardMax {
		return fmt.Errorf("priority %d out of range", p)
	}
	o.q.Add(int(p))
	return nil
}
func (o openPQ) removeMin() (int64, bool) {
	v, ok := o.q.RemoveMin()
	return int64(v), ok
}

// The list- and skiplist-based structures reserve math.MinInt64 and
// math.MaxInt64 as ±∞ sentinels, so the protocol rejects the two extreme
// keys rather than panic.
const (
	sentinelGuardMin = list.KeyMin + 1
	sentinelGuardMax = list.KeyMax - 1
)

// setEntry is one -set registry row: a constructor plus the capability
// that gates the wait-free read fast path. readBypass asserts that
// Contains on the built structure is safe to call from any goroutine
// concurrently with the owning shard's writes — true for the lock-free
// sets, whose reads are CAS-free pointer chases (epoch-pinned where the
// structure recycles nodes), false for every lock-based table, where a
// foreign reader would race the resize/quiesce protocols.
// The adaptive capability marks the self-tuning meta-backends, whose
// bypass safety is per-shard and per-moment (the live member decides);
// the engine consults the shard's container instead of this table.
type setEntry struct {
	make       func(o Options) list.Set
	readBypass bool
	adaptive   bool
}

// mapEntry mirrors setEntry for the -map registry: readBypass asserts
// Get is safe from any goroutine.
type mapEntry struct {
	make       func(o Options) strmap.Map
	readBypass bool
	adaptive   bool
}

// morphConfig renders the -morph options as an adaptive controller
// configuration (zero fields select the adaptive defaults).
func (o Options) morphConfig() adaptive.Config {
	return adaptive.Config{
		Every:  o.MorphEvery,
		ReadHi: float64(o.MorphReadPct) / 100,
		MinOps: int64(o.morphMinOps),
	}
}

// Backend constructor tables. Each entry builds a fresh instance from the
// (defaulted) options.
var (
	setBackends = map[string]setEntry{
		"coarse":    {make: func(o Options) list.Set { return hashset.NewCoarseHashSet(o.SetCapacity) }},
		"striped":   {make: func(o Options) list.Set { return hashset.NewStripedHashSet(o.SetCapacity) }},
		"refinable": {make: func(o Options) list.Set { return hashset.NewRefinableHashSet(o.SetCapacity) }},
		"lockfree":  {make: func(o Options) list.Set { return hashset.NewLockFreeHashSet() }, readBypass: true},
		"cuckoo":    {make: func(o Options) list.Set { return hashset.NewStripedCuckooHashSet(o.SetCapacity) }},
		// Epoch-recycled ordered sets: allocation-free once warm (see
		// internal/epoch). Ordered-set semantics instead of hashing.
		"list-epoch": {make: func(o Options) list.Set { return list.NewEpochList() }, readBypass: true},
		"skip-epoch": {make: func(o Options) list.Set { return skiplist.NewEpochSkipList() }, readBypass: true},
		// Self-tuning meta-backend (internal/adaptive): starts striped and
		// morphs along coarse→striped→refinable→lockfree with observed
		// contention and read mix; reads take the wait-free bypass
		// whenever the live member is the lock-free set.
		"adaptive": {make: func(o Options) list.Set { return adaptive.NewSet(o.SetCapacity, o.morphConfig()) },
			adaptive: true},
	}
	// The map family serves HSET/HGET/HDEL: per-shard string-keyed
	// dictionaries with open chaining (internal/strmap), mirroring the
	// set registry's synchronization spectrum.
	mapBackends = map[string]mapEntry{
		"coarse":       {make: func(o Options) strmap.Map { return strmap.NewCoarseMap(o.SetCapacity) }},
		"striped":      {make: func(o Options) strmap.Map { return strmap.NewStripedMap(o.SetCapacity) }},
		"refinable":    {make: func(o Options) strmap.Map { return strmap.NewRefinableMap(o.SetCapacity) }},
		"cuckoo-chain": {make: func(o Options) strmap.Map { return strmap.NewCuckooChainMap(o.SetCapacity) }},
		// RCU-style epoch-published table: mutex writers, lock-free
		// epoch-pinned readers — the map family's bypass-capable member.
		"epoch": {make: func(o Options) strmap.Map { return strmap.NewEpochMap(o.SetCapacity) }, readBypass: true},
		// Self-tuning meta-backend: morphs along the write ladder
		// (coarse→striped→refinable→cuckoo-chain) with contention and
		// jumps to the epoch table when the mix turns read-heavy, turning
		// the wait-free HGET bypass on live.
		"adaptive": {make: func(o Options) strmap.Map { return adaptive.NewMap(o.SetCapacity, o.morphConfig()) },
			adaptive: true},
	}
	queueBackends = map[string]func(o Options) queueBackend{
		"bounded":   func(o Options) queueBackend { return boundedQueue{queue.NewBoundedQueue[int64](o.QueueCapacity)} },
		"unbounded": func(o Options) queueBackend { return genericQueue{queue.NewUnboundedQueue[int64]()} },
		"lockfree":  func(o Options) queueBackend { return genericQueue{queue.NewLockFreeQueue[int64]()} },
		"recycling": func(o Options) queueBackend { return recyclingQueue{queue.NewRecyclingQueue(o.QueueCapacity)} },
		// Michael–Scott with epoch-based node recycling: unbounded like
		// "lockfree" but allocation-free once warm.
		"lockfree-epoch": func(o Options) queueBackend { return genericQueue{queue.NewEpochQueue[int64]()} },
	}
	stackBackends = map[string]func(o Options) stackBackend{
		"locked":      func(o Options) stackBackend { return genericStack{stack.NewLockedStack[int64]()} },
		"treiber":     func(o Options) stackBackend { return genericStack{stack.NewLockFreeStack[int64]()} },
		"elimination": func(o Options) stackBackend { return genericStack{stack.NewEliminationBackoffStack[int64]()} },
	}
	pqBackends = map[string]func(o Options) pqBackend{
		"locked": func(o Options) pqBackend { return openPQ{pqueue.NewLockedHeap()} },
		"skip":   func(o Options) pqBackend { return openPQ{pqueue.NewSkipQueue()} },
		"heap": func(o Options) pqBackend {
			c := &cappedPQ{q: pqueue.NewFineGrainedHeap(o.PQCapacity)}
			c.cap = int64(o.PQCapacity)
			return c
		},
		"linear": func(o Options) pqBackend {
			return rangedPQ{pqueue.NewSimpleLinear(o.PQCapacity), int64(o.PQCapacity)}
		},
		"tree": func(o Options) pqBackend {
			return rangedPQ{pqueue.NewSimpleTree(nextPow2(o.PQCapacity)), int64(nextPow2(o.PQCapacity))}
		},
	}
	// Counter backends size their width to the shard count: the shards
	// are exactly the threads that touch them.
	counterBackends = map[string]func(o Options) counting.Counter{
		"cas":       func(o Options) counting.Counter { return &counting.CASCounter{} },
		"lock":      func(o Options) counting.Counter { return &counting.LockCounter{} },
		"combining": func(o Options) counting.Counter { return counting.NewCombiningTree(counterWidth(o)) },
		"diffracting": func(o Options) counting.Counter {
			return counting.NewNetworkCounter(counting.NewDiffractingTree(counterWidth(o)))
		},
		"network": func(o Options) counting.Counter {
			return counting.NewNetworkCounter(counting.NewBitonic(counterWidth(o)))
		},
	}
)

// counterWidth sizes combining trees and counting networks: a power of
// two covering every shard the engine may ever run (the structures
// require width ≥ 2). MaxShards, not Shards — a live reshard doubles
// the shard count up to that bound, and the new shards' IDs must be
// valid lanes in the width-bounded structures built at boot.
func counterWidth(o Options) int {
	w := o.MaxShards
	if w < o.Shards {
		w = o.Shards
	}
	if w < 2 {
		w = 2
	}
	return nextPow2(w)
}

// nextPow2 rounds n up to a power of two (n ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SetBackends lists the valid -set names.
func SetBackends() []string { return sortedKeys(setBackends) }

// MapBackends lists the valid -map names.
func MapBackends() []string { return sortedKeys(mapBackends) }

// BypassSetBackends lists the -set names whose reads may take the
// wait-free bypass (readBypass capability), for tests and docs.
func BypassSetBackends() []string {
	var names []string
	for name, e := range setBackends {
		if e.readBypass {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// BypassMapBackends lists the -map names whose reads may take the
// wait-free bypass.
func BypassMapBackends() []string {
	var names []string
	for name, e := range mapBackends {
		if e.readBypass {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// QueueBackends lists the valid -queue names.
func QueueBackends() []string { return sortedKeys(queueBackends) }

// StackBackends lists the valid -stack names.
func StackBackends() []string { return sortedKeys(stackBackends) }

// PQueueBackends lists the valid -pqueue names.
func PQueueBackends() []string { return sortedKeys(pqBackends) }

// CounterBackends lists the valid -counter and -metrics-counter names.
func CounterBackends() []string { return sortedKeys(counterBackends) }

// TxnBackends lists the valid -txn names: the internal/txn engines plus
// "off" (map and counter families served by the -map/-counter backends,
// transaction verbs answer ERR).
func TxnBackends() []string {
	return append([]string{"off"}, txn.Engines()...)
}

// CMBackends lists the valid -cm names.
func CMBackends() []string { return txn.Managers() }

// newKeyspace resolves the -txn/-cm selection: a nil keyspace means
// transactions are off. The contention-manager name is validated even
// when transactions are off, so a bad -cm never boots.
func newKeyspace(o Options) (txn.Keyspace, error) {
	if err := txn.CheckManager(o.CM); err != nil {
		return nil, fmt.Errorf("server: unknown cm backend %q (have %s)",
			o.CM, strings.Join(CMBackends(), ", "))
	}
	if o.Txn == "off" {
		return nil, nil
	}
	ks, err := txn.New(o.Txn, o.CM)
	if err != nil {
		return nil, fmt.Errorf("server: unknown txn backend %q (have %s)",
			o.Txn, strings.Join(TxnBackends(), ", "))
	}
	return ks, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lookup resolves one backend name against its table.
func lookup[V any](family, name string, table map[string]V) (V, error) {
	v, ok := table[name]
	if !ok {
		var zero V
		return zero, fmt.Errorf("server: unknown %s backend %q (have %s)",
			family, name, strings.Join(sortedKeys(table), ", "))
	}
	return v, nil
}
