// The network front-end: accept loop, per-connection pipelined
// read/parse/execute/write loop (parse ahead, batch per shard, flush per
// batch), and graceful shutdown (stop accepting, wake idle readers,
// finish in-flight commands, then force-close stragglers and stop the
// shards).
//
// Reads have a second path. When the selected backend is epoch-safe
// (lock-free set backends, the epoch map, or the transactional keyspace),
// GET and HGET skip the shard mailbox entirely and execute on the
// connection goroutine under an epoch pin — the wait-free read bypass.
// serveBatch keeps program order by flushing (and awaiting) the open
// mailbox run before serving such a read in place, so a read never
// overtakes the connection's own earlier writes, and reply order stays
// line order by construction. Reads staged inside a MULTI window, reads
// on non-epoch-safe backends, and everything under -read-bypass=off ride
// the mailbox as before. STATS splits the traffic in the
// `op read.bypass` / `op read.mailbox` rows.
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"amp/internal/metrics"
	"amp/internal/snapshot"
)

// Server is the ampserved TCP server. Construct with New, then Listen and
// Serve (or ListenAndServe); always Shutdown, even if Serve was never
// called, to stop the shard goroutines.
type Server struct {
	opts Options
	eng  *engine

	ln       net.Listener
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	connWG   sync.WaitGroup
	done     chan struct{}
	shutdown sync.Once
}

// New builds the data plane (validating backend names) and starts the
// shard goroutines.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	eng, err := newEngine(opts)
	if err != nil {
		return nil, err
	}
	return &Server{
		opts:  opts,
		eng:   eng,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}, nil
}

// Options reports the defaulted configuration in effect.
func (s *Server) Options() Options { return s.opts }

// Stats returns the current per-op metrics snapshot.
func (s *Server) Stats() []metrics.OpStats { return s.eng.snapshot() }

// Restore replaces the server's entire logical state with the snapshot
// at path (see internal/snapshot for the format): the restart-with-
// restore entry point, typically called between New and Serve, but safe
// on a live server too — the load runs under the same full quiesce the
// RESTORE verb uses.
func (s *Server) Restore(path string) error {
	st, err := snapshot.Read(path)
	if err != nil {
		return err
	}
	return s.eng.loadSnapshot(st)
}

// Listen binds the TCP address (e.g. "127.0.0.1:0").
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr reports the bound address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Serve accepts connections until the listener closes. It returns nil
// after Shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		if !s.track(conn) {
			conn.Close() // lost the race with Shutdown
			continue
		}
		s.connWG.Add(1)
		go s.handle(conn)
	}
}

// track registers a live connection; false once shutdown began.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

// maxBatch caps the commands a connection collects per parse-ahead
// round. It bounds per-connection memory and keeps one chatty pipeliner
// from monopolizing its shards for too long per wakeup.
const maxBatch = 128

// lineItem is one parsed line of a pipelined batch: a command, or the
// parse error to report in its place.
type lineItem struct {
	cmd Command
	err error
}

func parseItem(line []byte) lineItem {
	cmd, err := ParseCommand(line)
	return lineItem{cmd: cmd, err: err}
}

// txnState is one connection's MULTI window: the staged commands and
// whether a staging error has poisoned the window (EXEC then refuses).
// It lives on the connection goroutine and is reset on DISCARD, EXEC,
// QUIT and connection teardown — staged commands hold no engine
// resources (no tvar locks, no shard slots) until the EXEC commit runs,
// so dropping a connection mid-MULTI leaks nothing.
type txnState struct {
	active bool
	dirty  bool
	staged []Command
}

func (ts *txnState) reset() {
	ts.active = false
	ts.dirty = false
	ts.staged = ts.staged[:0]
}

// handle runs one connection's pipelined read/parse/execute/write loop:
// block for one line, parse ahead through everything the kernel already
// delivered, execute the whole batch as contiguous per-shard runs, and
// flush the replies once per batch instead of once per line. A client
// that never pipelines degenerates to the old per-line behavior; a
// pipelined client amortizes both syscalls and shard hops over the
// batch.
func (s *Server) handle(conn net.Conn) {
	defer s.connWG.Done()
	defer s.untrack(conn)
	defer conn.Close()

	// The reader holds one maximal line: MaxLineLen+1 bytes of content
	// (the old scanner's tolerance — ParseCommand still rejects anything
	// over MaxLineLen) plus the LF. A line that cannot fit surfaces as
	// bufio.ErrBufferFull and drops the connection.
	r := bufio.NewReaderSize(conn, MaxLineLen+2)
	w := bufio.NewWriter(conn)
	items := make([]lineItem, 0, maxBatch)
	ts := &txnState{}
	defer ts.reset() // drop a mid-MULTI buffer on any teardown path

	// The read deadline is rearmed lazily: every SetReadDeadline is a
	// runtime timer modification, which at pipelined round-trip rates
	// costs more than the reads it guards. Rearming only after a quarter
	// of the idle budget has elapsed keeps at least 3/4 of IdleTimeout
	// armed ahead of any blocking read while making the rearm cost
	// amortize to nothing on a busy connection. Shutdown still interrupts
	// instantly: its SetReadDeadline(now) on every tracked conn overrides
	// whatever was armed here.
	var armed time.Time
	for {
		select {
		case <-s.done:
			return
		default:
		}
		if now := time.Now(); now.Sub(armed) > s.opts.IdleTimeout/4 {
			conn.SetReadDeadline(now.Add(s.opts.IdleTimeout))
			armed = now
		}
		line, err := readLine(r)
		switch {
		case err == nil:
		case errors.Is(err, bufio.ErrBufferFull):
			// Framing is lost; report and drop the connection. Drain
			// the rest of the line first: closing with unread data
			// risks a TCP reset that could destroy the error reply in
			// flight.
			s.reply(w, reply{status: stErr, msg: ErrLineTooLong.Error()})
			w.Flush()
			drainLine(conn)
			return
		case errors.Is(err, io.EOF) && len(line) > 0:
			// Final line without a terminator: serve it, then close.
			s.serveBatch(w, append(items[:0], parseItem(line)), ts)
			w.Flush()
			return
		default:
			// Clean EOF, idle timeout (or the Shutdown wake), or a
			// transport error: drop silently.
			return
		}

		items = append(items[:0], parseItem(line))
		// Parse ahead: collect every complete line the kernel already
		// delivered, without blocking on the socket again. Peek only
		// inspects buffered bytes, so a partial trailing line stays for
		// the next round.
		for len(items) < maxBatch {
			n := r.Buffered()
			if n == 0 {
				break
			}
			buffered, _ := r.Peek(n)
			if bytes.IndexByte(buffered, '\n') < 0 {
				break
			}
			line, _ := readLine(r)
			items = append(items, parseItem(line))
		}

		ok := s.serveBatch(w, items, ts)
		if w.Flush() != nil || !ok {
			return
		}
	}
}

// readLine returns the next line without its LF. On bufio.ErrBufferFull
// (a line longer than the reader can hold) or io.EOF with partial
// content (a final unterminated line) the bytes read so far come back
// with the error. The returned slice aliases the reader's buffer and is
// valid only until the next read.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err != nil {
		return line, err
	}
	return line[:len(line)-1], nil
}

// serveBatch answers one parse-ahead batch in protocol order. Commands
// are grouped into contiguous runs that share a shard: a keyed command
// pins the open run to its key's shard, unkeyed commands ride along with
// whatever run is open (any shard may execute them), and a keyed command
// for a different shard — or a control command or parse error, which
// must reply in position — cuts the run. Each run travels to its shard
// as one batch, where the flat-combining loop in engine.serve answers it
// as a unit; runs are submitted strictly in order, one at a time, which
// is what preserves per-connection program order across shards.
//
// A MULTI window (ts.active) suspends that machinery: staged lines
// answer "+QUEUED" in place and never join a run, so nothing travels to
// the shards until EXEC commits the buffer through the STM keyspace.
//
// Bypass-eligible reads (engine.canBypass) never join a run either: the
// open run is flushed — submitting it and writing its replies, which is
// exactly what keeps this connection's earlier writes ahead of the read
// in program order — and the read executes right here on the connection
// goroutine via engine.readLocal, its reply written in place. Reply
// order is therefore position order by construction, interleaving
// bypass and mailbox replies exactly as the lines arrived, even though
// the reads never visited a mailbox.
//
// The caller flushes the writer; the return is false when the connection
// must close (write error, QUIT, or engine shutdown).
func (s *Server) serveBatch(w *bufio.Writer, items []lineItem, ts *txnState) bool {
	b := getBatch()
	defer putBatch(b)
	shard := -1 // no keyed command has pinned the open run yet

	// One router resolution per parse-ahead batch: routing decisions and
	// submissions agree on the topology. A RESHARD landing mid-batch is
	// caught by the engine's staleness check, which replays affected runs
	// through the new router.
	rt := s.eng.router.Load()

	// One latency origin per parse-ahead batch: every run submitted from
	// this batch measures from here, trading one clock read per run for
	// one per batch (runs are answered serially, so a later run's
	// latency legitimately includes its wait behind the earlier ones).
	start := s.eng.refreshCoarse()

	flushRun := func() bool {
		if len(b.cmds) == 0 {
			return true
		}
		si := shard
		b.pinned = si >= 0
		if si < 0 {
			si = s.eng.nextShard(rt)
		}
		b.start = start
		replies, ok := s.eng.doBatch(rt, si, b)
		if !ok {
			// Aborted shutdown: still answer each accepted command.
			for range b.cmds {
				if !s.reply(w, errReply("server shutting down")) {
					return false
				}
			}
			return false
		}
		for _, r := range replies {
			if !s.reply(w, r) {
				return false
			}
		}
		b.reset()
		shard = -1
		return true
	}

	for _, it := range items {
		if ts.active {
			// Inside a MULTI window the run is always empty (MULTI cut
			// it), so staged lines reply in place with no flushRun.
			if !s.serveTxnLine(w, it, ts) {
				return false
			}
			continue
		}
		if it.err != nil {
			if !flushRun() {
				return false
			}
			if !s.reply(w, errReply("%v", it.err)) {
				return false
			}
			continue
		}
		switch it.cmd.Op {
		case OpQuit:
			if flushRun() {
				s.reply(w, reply{status: stOK})
			}
			return false
		case OpPing:
			if !flushRun() || !s.replyRaw(w, "PONG") {
				return false
			}
		case OpStats:
			if !flushRun() || !s.replyRaw(w, s.eng.statsBody()+"END") {
				return false
			}
		case OpMulti:
			if !flushRun() {
				return false
			}
			if s.eng.ks == nil {
				if !s.reply(w, errReply("transactions disabled (-txn off)")) {
					return false
				}
				continue
			}
			ts.active = true
			if !s.reply(w, reply{status: stOK}) {
				return false
			}
		case OpExec, OpDiscard:
			if !flushRun() {
				return false
			}
			msg := fmt.Sprintf("%s without MULTI", it.cmd.Op)
			if s.eng.ks == nil {
				msg = "transactions disabled (-txn off)"
			}
			if !s.reply(w, errReply("%s", msg)) {
				return false
			}
		case OpTxStats:
			if !flushRun() {
				return false
			}
			if s.eng.ks == nil {
				if !s.reply(w, errReply("transactions disabled (-txn off)")) {
					return false
				}
				continue
			}
			if !s.replyRaw(w, s.eng.txStatsLine()) {
				return false
			}
		// The durability/elasticity verbs execute inline on the connection
		// goroutine, after the open run flushes (they must observe this
		// connection's earlier commands, and a reshard invalidates the
		// batch's pinned routing anyway). They also refresh the cached
		// router: a successful RESHARD changes the topology mid-batch.
		case OpSave:
			if !flushRun() || !s.reply(w, s.eng.save()) {
				return false
			}
		case OpBGSave:
			if !flushRun() || !s.reply(w, s.eng.bgsave()) {
				return false
			}
		case OpRestore:
			if !flushRun() || !s.reply(w, s.eng.restoreFrom(it.cmd.Key)) {
				return false
			}
		case OpReshard:
			if !flushRun() || !s.reply(w, s.eng.doReshard(int(it.cmd.Arg))) {
				return false
			}
			rt = s.eng.router.Load()
		default:
			if s.eng.canBypass(it.cmd) {
				if !flushRun() {
					return false
				}
				// served=false means an adaptive shard morphed off its
				// read-optimized member under us: fall through and let the
				// read join a run like any mailbox read.
				if r, served := s.eng.readLocal(it.cmd); served {
					if !s.reply(w, r) {
						return false
					}
					continue
				}
			}
			if it.cmd.Op.Keyed() {
				si := keyShard(it.cmd.ShardKey(), rt.n())
				if shard >= 0 && si != shard && !flushRun() {
					return false
				}
				shard = si
			}
			b.cmds = append(b.cmds, it.cmd)
		}
	}
	return flushRun()
}

// serveTxnLine answers one line inside an open MULTI window: stageable
// commands queue, control commands execute in place, everything else
// poisons the window. false closes the connection (QUIT or write error).
func (s *Server) serveTxnLine(w *bufio.Writer, it lineItem, ts *txnState) bool {
	if it.err != nil {
		ts.dirty = true
		return s.reply(w, errReply("%v", it.err))
	}
	switch op := it.cmd.Op; op {
	case OpMulti:
		ts.dirty = true
		return s.reply(w, errReply("MULTI calls cannot be nested"))
	case OpExec:
		if ts.dirty {
			ts.reset()
			return s.reply(w, errReply("EXEC aborted (errors while queueing)"))
		}
		replies := s.eng.execTxn(ts.staged)
		ts.reset()
		if !s.replyRaw(w, "*"+strconv.Itoa(len(replies))) {
			return false
		}
		for _, r := range replies {
			if !s.reply(w, r) {
				return false
			}
		}
		return true
	case OpDiscard:
		ts.reset()
		return s.reply(w, reply{status: stOK})
	case OpQuit:
		ts.reset()
		s.reply(w, reply{status: stOK})
		return false
	case OpPing:
		return s.replyRaw(w, "PONG")
	case OpStats:
		return s.replyRaw(w, s.eng.statsBody()+"END")
	case OpTxStats:
		return s.replyRaw(w, s.eng.txStatsLine())
	default:
		if !op.Stageable() {
			ts.dirty = true
			return s.reply(w, errReply("%s cannot be staged in MULTI", op))
		}
		if len(ts.staged) >= MaxTxnOps {
			ts.dirty = true
			return s.reply(w, errReply("transaction exceeds %d staged commands", MaxTxnOps))
		}
		ts.staged = append(ts.staged, it.cmd)
		return s.replyRaw(w, "+QUEUED")
	}
}

// reply appends one reply line to the write buffer (the batch loop
// flushes once per batch); false on a write error.
func (s *Server) reply(w *bufio.Writer, r reply) bool {
	var line string
	switch r.status {
	case stOK:
		line = "OK"
	case stInt:
		line = strconv.FormatInt(r.val, 10)
	case stEmpty:
		line = "EMPTY"
	case stFull:
		line = "FULL"
	case stErr:
		line = "ERR " + r.msg
	}
	return s.replyRaw(w, line)
}

func (s *Server) replyRaw(w *bufio.Writer, line string) bool {
	if _, err := w.WriteString(line); err != nil {
		return false
	}
	return w.WriteByte('\n') == nil
}

// Shutdown stops accepting, wakes idle readers so in-flight commands can
// finish, and waits for connections to drain. When ctx expires first, the
// remaining connections are force-closed. The shard goroutines stop after
// the last connection, so every accepted command gets a reply. Safe to
// call more than once; only the first call does the work.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutdown.Do(func() {
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
		// Wake connections blocked in Read; they observe done and exit
		// after finishing (and answering) any command already parsed.
		s.eachConn(func(c net.Conn) { c.SetReadDeadline(time.Now()) })

		drained := make(chan struct{})
		go func() { s.connWG.Wait(); close(drained) }()
		select {
		case <-drained:
		case <-ctx.Done():
			// Unstick connection goroutines parked on saturated shard
			// queues, then force-close the sockets.
			s.eng.abort()
			s.eachConn(func(c net.Conn) { c.Close() })
			<-drained
			err = fmt.Errorf("server: drain expired: %w", ctx.Err())
		}
		s.eng.stop()
	})
	return err
}

// drainLine discards input up to the next newline, bounded in bytes and
// time, so the peer's oversized line is consumed before the close.
func drainLine(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 4096)
	for budget := 1 << 20; budget > 0; {
		n, err := conn.Read(buf)
		for i := 0; i < n; i++ {
			if buf[i] == '\n' {
				return
			}
		}
		if err != nil {
			return
		}
		budget -= n
	}
}

func (s *Server) eachConn(f func(net.Conn)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		f(c)
	}
}
