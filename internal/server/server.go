// The network front-end: accept loop, per-connection read/parse/execute/
// write loop, and graceful shutdown (stop accepting, wake idle readers,
// finish in-flight commands, then force-close stragglers and stop the
// shards).
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"amp/internal/metrics"
)

// Server is the ampserved TCP server. Construct with New, then Listen and
// Serve (or ListenAndServe); always Shutdown, even if Serve was never
// called, to stop the shard goroutines.
type Server struct {
	opts Options
	eng  *engine

	ln       net.Listener
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	connWG   sync.WaitGroup
	done     chan struct{}
	shutdown sync.Once
}

// New builds the data plane (validating backend names) and starts the
// shard goroutines.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	eng, err := newEngine(opts)
	if err != nil {
		return nil, err
	}
	return &Server{
		opts:  opts,
		eng:   eng,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}, nil
}

// Options reports the defaulted configuration in effect.
func (s *Server) Options() Options { return s.opts }

// Stats returns the current per-op metrics snapshot.
func (s *Server) Stats() []metrics.OpStats { return s.eng.snapshot() }

// Listen binds the TCP address (e.g. "127.0.0.1:0").
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr reports the bound address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Serve accepts connections until the listener closes. It returns nil
// after Shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		if !s.track(conn) {
			conn.Close() // lost the race with Shutdown
			continue
		}
		s.connWG.Add(1)
		go s.handle(conn)
	}
}

// track registers a live connection; false once shutdown began.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

// handle runs one connection's read/parse/execute/write loop.
func (s *Server) handle(conn net.Conn) {
	defer s.connWG.Done()
	defer s.untrack(conn)
	defer conn.Close()

	// A scanner line is at most MaxLineLen+1 bytes (the LF is consumed);
	// anything longer surfaces as bufio.ErrTooLong.
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, MaxLineLen+1), MaxLineLen+1)
	w := bufio.NewWriter(conn)

	for {
		select {
		case <-s.done:
			return
		default:
		}
		conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		if !sc.Scan() {
			err := sc.Err()
			switch {
			case err == nil: // EOF: client closed
			case errors.Is(err, bufio.ErrTooLong):
				// Framing is lost; report and drop the connection.
				// Drain the rest of the line first: closing with
				// unread data risks a TCP reset that could destroy
				// the error reply in flight.
				s.reply(w, reply{status: stErr, msg: ErrLineTooLong.Error()})
				drainLine(conn)
			case errors.Is(err, os.ErrDeadlineExceeded):
				// Idle (or woken by Shutdown): drop silently.
			}
			return
		}

		cmd, err := ParseCommand(sc.Bytes())
		if err != nil {
			if !s.reply(w, errReply("%v", err)) {
				return
			}
			continue
		}

		switch cmd.Op {
		case OpQuit:
			s.reply(w, reply{status: stOK})
			return
		case OpPing:
			if !s.replyRaw(w, "PONG") {
				return
			}
		case OpStats:
			if !s.replyRaw(w, s.eng.statsBody()+"END") {
				return
			}
		default:
			if !s.reply(w, s.eng.do(cmd)) {
				return
			}
		}
	}
}

// reply writes one reply line and flushes; false on a dead connection.
func (s *Server) reply(w *bufio.Writer, r reply) bool {
	var line string
	switch r.status {
	case stOK:
		line = "OK"
	case stInt:
		line = strconv.FormatInt(r.val, 10)
	case stEmpty:
		line = "EMPTY"
	case stFull:
		line = "FULL"
	case stErr:
		line = "ERR " + r.msg
	}
	return s.replyRaw(w, line)
}

func (s *Server) replyRaw(w *bufio.Writer, line string) bool {
	if _, err := w.WriteString(line); err != nil {
		return false
	}
	if err := w.WriteByte('\n'); err != nil {
		return false
	}
	return w.Flush() == nil
}

// Shutdown stops accepting, wakes idle readers so in-flight commands can
// finish, and waits for connections to drain. When ctx expires first, the
// remaining connections are force-closed. The shard goroutines stop after
// the last connection, so every accepted command gets a reply. Safe to
// call more than once; only the first call does the work.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutdown.Do(func() {
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
		// Wake connections blocked in Read; they observe done and exit
		// after finishing (and answering) any command already parsed.
		s.eachConn(func(c net.Conn) { c.SetReadDeadline(time.Now()) })

		drained := make(chan struct{})
		go func() { s.connWG.Wait(); close(drained) }()
		select {
		case <-drained:
		case <-ctx.Done():
			s.eachConn(func(c net.Conn) { c.Close() })
			<-drained
			err = fmt.Errorf("server: drain expired: %w", ctx.Err())
		}
		s.eng.stop()
	})
	return err
}

// drainLine discards input up to the next newline, bounded in bytes and
// time, so the peer's oversized line is consumed before the close.
func drainLine(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 4096)
	for budget := 1 << 20; budget > 0; {
		n, err := conn.Read(buf)
		for i := 0; i < n; i++ {
			if buf[i] == '\n' {
				return
			}
		}
		if err != nil {
			return
		}
		budget -= n
	}
}

func (s *Server) eachConn(f func(net.Conn)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		f(c)
	}
}
