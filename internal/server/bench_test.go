package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"testing"
	"time"
)

// BenchmarkEngineSet measures the data plane alone (shard hop included,
// no network): mixed SET/GET/DEL on the default striped backend.
func BenchmarkEngineSet(b *testing.B) {
	srv, err := New(Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	e := srv.eng

	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			switch i % 3 {
			case 0:
				e.do(Command{Op: OpSet, Arg: i})
			case 1:
				e.do(Command{Op: OpGet, Arg: i})
			default:
				e.do(Command{Op: OpDel, Arg: i})
			}
		}
	})
}

// BenchmarkServerTCPPipelined measures loopback TCP throughput with each
// client keeping a window of commands in flight, exercising the
// parse-ahead batching and flat-combining path end to end. Compare with
// BenchmarkServerTCP for the pipelining speedup.
func BenchmarkServerTCPPipelined(b *testing.B) {
	const depth = 16
	srv, err := New(Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		w := bufio.NewWriter(conn)
		i := int64(0)
		window := 0
		for pb.Next() {
			i++
			fmt.Fprintf(w, "SET %d\n", i)
			if window++; window < depth {
				continue
			}
			if err := w.Flush(); err != nil {
				b.Error(err)
				return
			}
			for ; window > 0; window-- {
				if _, err := r.ReadString('\n'); err != nil {
					b.Error(err)
					return
				}
			}
		}
		if window > 0 {
			if err := w.Flush(); err != nil {
				b.Error(err)
				return
			}
			for ; window > 0; window-- {
				if _, err := r.ReadString('\n'); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}

// BenchmarkServerTCPStringMap measures the string-keyed map family over
// loopback TCP with pipelining: alternating HSET/HGET over a 1024-key
// working set, exercising string-token parsing, hash routing, and the
// per-shard dictionaries end to end.
func BenchmarkServerTCPStringMap(b *testing.B) {
	const depth = 16
	srv, err := New(Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		w := bufio.NewWriter(conn)
		i := int64(0)
		window := 0
		for pb.Next() {
			i++
			if i%2 == 0 {
				fmt.Fprintf(w, "HSET user:%d %d\n", i%1024, i)
			} else {
				fmt.Fprintf(w, "HGET user:%d\n", i%1024)
			}
			if window++; window < depth {
				continue
			}
			if err := w.Flush(); err != nil {
				b.Error(err)
				return
			}
			for ; window > 0; window-- {
				if _, err := r.ReadString('\n'); err != nil {
					b.Error(err)
					return
				}
			}
		}
		if window > 0 {
			if err := w.Flush(); err != nil {
				b.Error(err)
				return
			}
			for ; window > 0; window-- {
				if _, err := r.ReadString('\n'); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}

// BenchmarkServerTCPTxn measures MULTI/EXEC transactions over loopback
// TCP with pipelining: each benchmark op is one whole two-key transfer
// (MULTI, HINCR +1, HINCR -1, EXEC — six reply lines) over a 64-account
// working set on the default TL2 keyspace, so the measured path includes
// staging, cross-shard commit, and array framing. Reports STM commits
// per transaction; benchgate requires that metric to be live and nonzero.
func BenchmarkServerTCPTxn(b *testing.B) {
	const depth = 4 // transactions in flight per client
	srv, err := New(Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		w := bufio.NewWriter(conn)
		readTxn := func() bool {
			for j := 0; j < 6; j++ { // OK, +QUEUED, +QUEUED, *2, two values
				if _, err := r.ReadString('\n'); err != nil {
					b.Error(err)
					return false
				}
			}
			return true
		}
		i := 0
		window := 0
		for pb.Next() {
			i++
			src, dst := i%64, (i*31+7)%64
			fmt.Fprintf(w, "MULTI\nHINCR acct:%d 1\nHINCR acct:%d -1\nEXEC\n", src, dst)
			if window++; window < depth {
				continue
			}
			if err := w.Flush(); err != nil {
				b.Error(err)
				return
			}
			for ; window > 0; window-- {
				if !readTxn() {
					return
				}
			}
		}
		if window > 0 {
			if err := w.Flush(); err != nil {
				b.Error(err)
				return
			}
			for ; window > 0; window-- {
				if !readTxn() {
					return
				}
			}
		}
	})
	b.StopTimer()
	commits := srv.eng.ks.Commits()
	if commits == 0 {
		b.Fatal("transactional bench recorded zero commits")
	}
	b.ReportMetric(float64(commits)/float64(b.N), "commits/op")
}

// BenchmarkServerTCPReadMostly measures the read-mostly regime the wait
// -free bypass targets: pipelined GET-heavy traffic (90% and 99% reads)
// over a 1024-key space on the epoch-safe skiplist backend, with the
// bypass on and off. Compare the pairs for the tail-latency and
// throughput effect of serving reads on the connection goroutine
// instead of the shard mailbox.
func BenchmarkServerTCPReadMostly(b *testing.B) {
	for _, pct := range []int{90, 99} {
		for _, bypass := range []string{"on", "off"} {
			b.Run(fmt.Sprintf("mix%d-bypass-%s", pct, bypass), func(b *testing.B) {
				benchReadMostly(b, pct, bypass)
			})
		}
	}
}

func benchReadMostly(b *testing.B, readPct int, bypass string) {
	const depth = 16
	srv, err := New(Options{Shards: 4, Set: "skip-epoch", Map: "epoch", Txn: "off", ReadBypass: bypass})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		w := bufio.NewWriter(conn)
		i := int64(0)
		window := 0
		flush := func() bool {
			if err := w.Flush(); err != nil {
				b.Error(err)
				return false
			}
			for ; window > 0; window-- {
				if _, err := r.ReadString('\n'); err != nil {
					b.Error(err)
					return false
				}
			}
			return true
		}
		for pb.Next() {
			i++
			// i*37 disperses the writes through each 100-op stretch
			// instead of clustering them, so runs and bypass reads
			// interleave the way a real mixed stream would.
			switch k := i % 1024; {
			case (i*37)%100 < int64(readPct):
				fmt.Fprintf(w, "GET %d\n", k)
			case i%3 == 0:
				fmt.Fprintf(w, "DEL %d\n", k)
			default:
				fmt.Fprintf(w, "SET %d\n", k)
			}
			if window++; window >= depth && !flush() {
				return
			}
		}
		if window > 0 {
			flush()
		}
	})
}

// BenchmarkServerTCPAdaptive measures the self-tuning backends under the
// workload they exist for: pipelined traffic whose read fraction swings
// between write-heavy and read-heavy every few thousand operations, so
// the per-shard controllers step the ladder and flip members while the
// benchmark is running. The reported morphs metric proves the morphing
// actually happened in-measurement; CI's ratio gate holds the ns/op
// within range of the recorded baseline so the adaptive wrapper's
// steady-state overhead cannot regress silently.
func BenchmarkServerTCPAdaptive(b *testing.B) {
	const depth = 16
	srv, err := New(Options{Shards: 4, Set: "adaptive", Map: "adaptive", Txn: "off"})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		w := bufio.NewWriter(conn)
		i := int64(0)
		window := 0
		flush := func() bool {
			if err := w.Flush(); err != nil {
				b.Error(err)
				return false
			}
			for ; window > 0; window-- {
				if _, err := r.ReadString('\n'); err != nil {
					b.Error(err)
					return false
				}
			}
			return true
		}
		for pb.Next() {
			i++
			// Alternate regimes every 4096 ops per client: a 95%-read
			// stretch (pushes shards onto the read-optimized member)
			// then a 10%-read stretch (pulls them back down-ladder).
			readPct := int64(95)
			if (i>>12)&1 == 1 {
				readPct = 10
			}
			switch k := i % 1024; {
			case (i*37)%100 < readPct:
				fmt.Fprintf(w, "GET %d\n", k)
			case i%3 == 0:
				fmt.Fprintf(w, "DEL %d\n", k)
			default:
				fmt.Fprintf(w, "SET %d\n", k)
			}
			if window++; window >= depth && !flush() {
				return
			}
		}
		if window > 0 {
			flush()
		}
	})
	b.StopTimer()
	var flips int64
	for _, s := range srv.eng.allShards() {
		if s.adSet != nil {
			flips += s.adSet.Flips()
		}
		if s.adMap != nil {
			flips += s.adMap.Flips()
		}
	}
	b.ReportMetric(float64(flips), "morphs")
}

// BenchmarkReadBypassSteady isolates the wait-free read path itself —
// engine.do on bypass-eligible GET/HGET against warmed epoch-safe
// structures, no network — and is the allocation gate for the bypass:
// benchgate fails CI if a read ever allocates, because pin, table load,
// chain walk, and reply construction are all designed to be free of
// them (that is what makes the path safe to run on every connection
// goroutine at once).
func BenchmarkReadBypassSteady(b *testing.B) {
	srv, err := New(Options{Shards: 4, Set: "skip-epoch", Map: "epoch", Txn: "off"})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	e := srv.eng
	if !e.bypassSet || !e.bypassMap {
		b.Fatalf("bypass not enabled: set=%v map=%v", e.bypassSet, e.bypassMap)
	}

	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("user:%d", i)
		e.do(Command{Op: OpHSet, Key: keys[i], Arg: int64(i)})
		e.do(Command{Op: OpSet, Arg: int64(i)})
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if i%2 == 0 {
				e.do(Command{Op: OpGet, Arg: int64(i % 1024)})
			} else {
				e.do(Command{Op: OpHGet, Key: keys[i%1024]})
			}
		}
	})
}

// BenchmarkServerTCP measures full round-trips over loopback TCP, one
// pipelining-free client per benchmark goroutine.
func BenchmarkServerTCP(b *testing.B) {
	srv, err := New(Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		i := int64(0)
		for pb.Next() {
			i++
			if _, err := fmt.Fprintf(conn, "SET %d\n", i); err != nil {
				b.Error(err)
				return
			}
			if _, err := r.ReadString('\n'); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServerTCPSnapshot measures pipelined set-family throughput
// while a background client cuts a SAVE every few milliseconds: the
// steady-state cost of riding the quiesce cut and snapshot encode on a
// live data plane. The key space is bounded so the snapshot — and with
// it the per-save encode cost — stays a fixed size. Compare with
// BenchmarkServerTCPPipelined for the no-snapshot ceiling.
func BenchmarkServerTCPSnapshot(b *testing.B) {
	const depth = 16
	srv, err := New(Options{Shards: 4, SnapshotDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	stop := make(chan struct{})
	saverDone := make(chan struct{})
	go func() {
		defer close(saverDone)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if _, err := fmt.Fprintf(conn, "SAVE\n"); err != nil {
				b.Error(err)
				return
			}
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			if line, err := r.ReadString('\n'); err != nil || line != "OK\n" {
				b.Errorf("SAVE → %q, %v", line, err)
				return
			}
		}
	}()

	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		w := bufio.NewWriter(conn)
		i := int64(0)
		window := 0
		for pb.Next() {
			i++
			fmt.Fprintf(w, "SET %d\n", i%8192)
			if window++; window < depth {
				continue
			}
			if err := w.Flush(); err != nil {
				b.Error(err)
				return
			}
			for ; window > 0; window-- {
				if _, err := r.ReadString('\n'); err != nil {
					b.Error(err)
					return
				}
			}
		}
		if window > 0 {
			if err := w.Flush(); err != nil {
				b.Error(err)
				return
			}
			for ; window > 0; window-- {
				if _, err := r.ReadString('\n'); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
	close(stop)
	<-saverDone
}
