package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"testing"
	"time"
)

// BenchmarkEngineSet measures the data plane alone (shard hop included,
// no network): mixed SET/GET/DEL on the default striped backend.
func BenchmarkEngineSet(b *testing.B) {
	srv, err := New(Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	e := srv.eng

	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			switch i % 3 {
			case 0:
				e.do(Command{OpSet, i})
			case 1:
				e.do(Command{OpGet, i})
			default:
				e.do(Command{OpDel, i})
			}
		}
	})
}

// BenchmarkServerTCP measures full round-trips over loopback TCP, one
// pipelining-free client per benchmark goroutine.
func BenchmarkServerTCP(b *testing.B) {
	srv, err := New(Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		i := int64(0)
		for pb.Next() {
			i++
			if _, err := fmt.Fprintf(conn, "SET %d\n", i); err != nil {
				b.Error(err)
				return
			}
			if _, err := r.ReadString('\n'); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
