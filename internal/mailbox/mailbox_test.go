package mailbox

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// atGOMAXPROCS runs f at the given GOMAXPROCS setting and restores the
// old value. The park/wake and producer races behave differently
// oversubscribed (2) and spread out (8), so the concurrency tests pin
// both instead of inheriting whatever the CI leg happens to set.
func atGOMAXPROCS(t *testing.T, n int, f func(t *testing.T)) {
	t.Run(fmt.Sprintf("procs-%d", n), func(t *testing.T) {
		old := runtime.GOMAXPROCS(n)
		defer runtime.GOMAXPROCS(old)
		f(t)
	})
}

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](8)
	for lap := 0; lap < 5; lap++ {
		for i := 0; i < 8; i++ {
			if !r.TryPut(lap*8 + i) {
				t.Fatalf("lap %d: TryPut(%d) refused below capacity", lap, i)
			}
		}
		for i := 0; i < 8; i++ {
			v, ok := r.TryGet()
			if !ok || v != lap*8+i {
				t.Fatalf("lap %d: TryGet = %d,%v, want %d,true", lap, v, ok, lap*8+i)
			}
		}
		if _, ok := r.TryGet(); ok {
			t.Fatal("TryGet succeeded on an empty ring")
		}
	}
}

// TestRingExactCapacity fills the ring to exactly its capacity, proves
// the next put refuses, and drains everything back in order.
func TestRingExactCapacity(t *testing.T) {
	const capacity = 64
	r := NewRing[int](capacity)
	if r.Cap() != capacity {
		t.Fatalf("Cap = %d, want %d", r.Cap(), capacity)
	}
	for i := 0; i < capacity; i++ {
		if !r.TryPut(i) {
			t.Fatalf("TryPut(%d) refused with %d slots free", i, capacity-i)
		}
	}
	if r.TryPut(99) {
		t.Fatal("TryPut succeeded past capacity")
	}
	for i := 0; i < capacity; i++ {
		v, ok := r.TryGet()
		if !ok || v != i {
			t.Fatalf("TryGet = %d,%v, want %d,true", v, ok, i)
		}
	}
	if !r.Empty() {
		t.Fatal("ring not empty after full drain")
	}
}

// TestRingStampWraparound drives the ring across the 2^32 stamp
// boundary and across the 2^64 wrap: the signed-difference comparisons
// must keep free/full/claimed decisions correct on both sides. A ring
// that truncated stamps to 32 bits, or compared them unsigned, wedges
// or reorders here.
func TestRingStampWraparound(t *testing.T) {
	for _, start := range []uint64{
		1<<32 - 3,      // crosses 2^32
		^uint64(0) - 3, // crosses 2^64 (full modular wrap)
	} {
		r := NewRing[uint64](8)
		r.jump(start)
		// Push 64 values through the boundary, interleaving fills and
		// drains so head and tail both cross it at different offsets.
		next, expect := uint64(0), uint64(0)
		for round := 0; round < 16; round++ {
			for i := 0; i < 4; i++ {
				if !r.TryPut(next) {
					t.Fatalf("start %#x: TryPut(%d) refused", start, next)
				}
				next++
			}
			for i := 0; i < 4; i++ {
				v, ok := r.TryGet()
				if !ok || v != expect {
					t.Fatalf("start %#x: TryGet = %d,%v, want %d,true", start, v, ok, expect)
				}
				expect++
			}
		}
		// Exactly-capacity fill still holds on the far side of the wrap.
		for i := 0; i < 8; i++ {
			if !r.TryPut(uint64(i)) {
				t.Fatalf("start %#x: post-wrap fill refused at %d", start, i)
			}
		}
		if r.TryPut(999) {
			t.Fatalf("start %#x: post-wrap TryPut succeeded past capacity", start)
		}
	}
}

// TestRingConcurrentProducersWedgedConsumer runs 8 producers against a
// consumer that stays wedged until every producer has finished: no
// value may be lost or duplicated, and each producer's values must
// come out in that producer's order (per-producer FIFO — the only
// order MPSC promises).
func TestRingConcurrentProducersWedgedConsumer(t *testing.T) {
	run := func(t *testing.T) {
		const producers = 8
		const perProducer = 16 // 8×16 = 128 = capacity: an exact concurrent fill
		r := NewRing[int](producers * perProducer)

		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					for !r.TryPut(p*1000 + i) {
						runtime.Gosched() // capacity guarantees eventual success
					}
				}
			}(p)
		}
		wg.Wait() // the consumer is wedged: nothing drained while producing

		if r.TryPut(9999) {
			t.Fatal("TryPut succeeded on a ring filled to exactly capacity")
		}

		lastSeen := [producers]int{}
		for p := range lastSeen {
			lastSeen[p] = -1
		}
		seen := make(map[int]bool, producers*perProducer)
		for n := 0; n < producers*perProducer; n++ {
			v, ok := r.TryGet()
			if !ok {
				t.Fatalf("ring empty after %d of %d values", n, producers*perProducer)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d", v)
			}
			seen[v] = true
			p, i := v/1000, v%1000
			if i <= lastSeen[p] {
				t.Fatalf("producer %d out of order: %d after %d", p, i, lastSeen[p])
			}
			lastSeen[p] = i
		}
		if _, ok := r.TryGet(); ok {
			t.Fatal("extra value after full drain")
		}
	}
	atGOMAXPROCS(t, 2, run)
	atGOMAXPROCS(t, 8, run)
}

// TestMailboxParkWakeRace hammers the exact window the parked-flag
// handshake exists for: a producer publishing while the consumer is
// deciding to park. The spin budget is 1, so the consumer reaches the
// park decision on nearly every value; a lost wakeup deadlocks the
// test (bounded by the timeout).
func TestMailboxParkWakeRace(t *testing.T) {
	run := func(t *testing.T) {
		const values = 20000
		m := New[int](4, 1) // spin budget 1: park on almost every empty poll

		done := make(chan int, 1)
		go func() {
			sum := 0
			for {
				v, ok := m.Get()
				if !ok {
					done <- sum
					return
				}
				sum += v
			}
		}()

		want := 0
		for i := 1; i <= values; i++ {
			if !m.Put(i) {
				t.Errorf("Put(%d) failed before Close", i)
				break
			}
			want += i
		}
		m.Close()

		select {
		case got := <-done:
			if got != want {
				t.Fatalf("consumer sum = %d, want %d (values lost or duplicated)", got, want)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("consumer never finished: lost wakeup")
		}
	}
	atGOMAXPROCS(t, 2, run)
	atGOMAXPROCS(t, 8, run)
}

// TestMailboxConcurrentProducersParkingConsumer combines both races:
// 8 producers with a small ring (constant full/empty transitions) and
// a consumer with a tiny spin budget (constant park/wake churn).
func TestMailboxConcurrentProducersParkingConsumer(t *testing.T) {
	run := func(t *testing.T) {
		const producers, perProducer = 8, 2000
		m := New[int](8, 2)

		done := make(chan map[int]int, 1)
		go func() {
			counts := make(map[int]int)
			for {
				v, ok := m.Get()
				if !ok {
					done <- counts
					return
				}
				counts[v]++
			}
		}()

		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					if !m.Put(p*perProducer + i) {
						t.Errorf("producer %d: Put failed before Close", p)
						return
					}
				}
			}(p)
		}
		wg.Wait()
		m.Close()

		select {
		case counts := <-done:
			if len(counts) != producers*perProducer {
				t.Fatalf("consumer saw %d distinct values, want %d", len(counts), producers*perProducer)
			}
			for v, n := range counts {
				if n != 1 {
					t.Fatalf("value %d delivered %d times", v, n)
				}
			}
		case <-time.After(60 * time.Second):
			t.Fatal("consumer never finished: lost wakeup or stuck producer")
		}
	}
	atGOMAXPROCS(t, 2, run)
	atGOMAXPROCS(t, 8, run)
}

// TestMailboxCloseRejectsAndDrains: values published before Close are
// all delivered; Puts after Close fail; Get then reports done.
func TestMailboxCloseRejectsAndDrains(t *testing.T) {
	m := New[int](16, 4)
	for i := 0; i < 5; i++ {
		if !m.Put(i) {
			t.Fatalf("Put(%d) failed on an open mailbox", i)
		}
	}
	m.Close()
	if m.Put(99) {
		t.Fatal("Put succeeded after Close")
	}
	if m.TryPut(99) {
		t.Fatal("TryPut succeeded after Close")
	}
	for i := 0; i < 5; i++ {
		v, ok := m.Get()
		if !ok || v != i {
			t.Fatalf("Get = %d,%v, want %d,true (published values must survive Close)", v, ok, i)
		}
	}
	if _, ok := m.Get(); ok {
		t.Fatal("Get returned a value after the drain")
	}
	if !m.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

// TestMailboxCloseUnblocksFullProducer: a producer backing off against
// a full ring (wedged consumer) must give up promptly when the mailbox
// closes, never publishing its value.
func TestMailboxCloseUnblocksFullProducer(t *testing.T) {
	m := New[int](2, 4)
	m.Put(1)
	m.Put(2) // full; no consumer

	res := make(chan bool, 1)
	go func() { res <- m.Put(3) }()
	select {
	case <-res:
		t.Fatal("Put returned while the ring was full and open")
	case <-time.After(50 * time.Millisecond):
	}

	m.Close()
	select {
	case ok := <-res:
		if ok {
			t.Fatal("Put reported success after Close on a full ring")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Put still blocked after Close")
	}

	// The two published values are still there.
	for want := 1; want <= 2; want++ {
		v, ok := m.Get()
		if !ok || v != want {
			t.Fatalf("Get = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := m.Get(); ok {
		t.Fatal("the aborted Put's value leaked into the ring")
	}
}

// TestMailboxSpinParkCounters: a pre-published value resolves without
// any waiting; a delayed producer first burns the spin budget (spin
// stat) or parks (park stat).
func TestMailboxSpinParkCounters(t *testing.T) {
	m := New[int](8, DefaultSpinBudget)
	m.Put(1)
	if v, ok := m.Get(); !ok || v != 1 {
		t.Fatalf("Get = %d,%v, want 1,true", v, ok)
	}
	if s, p := m.Spins(), m.Parks(); s != 0 || p != 0 {
		t.Fatalf("immediate Get counted spins=%d parks=%d, want 0,0", s, p)
	}

	go func() {
		time.Sleep(100 * time.Millisecond) // long past any spin budget
		m.Put(2)
	}()
	if v, ok := m.Get(); !ok || v != 2 {
		t.Fatalf("Get = %d,%v, want 2,true", v, ok)
	}
	if m.Parks() < 1 {
		t.Fatalf("delayed producer: parks=%d, want >= 1", m.Parks())
	}
}
