// Package mailbox provides the lock-free MPSC handoff between the
// server's connection goroutines (many producers) and a shard goroutine
// (one consumer): a bounded Vyukov-style ring of sequence-stamped slots
// with cache-line-padded head and tail, wrapped in a spin-then-park
// consumer protocol.
//
// The ring replaces a buffered Go channel on the hot path. A channel
// send/receive takes the hchan mutex and, on an empty queue, parks the
// consumer through the scheduler on every wakeup; under a pipelined
// producer that costs one park/unpark round per batch. Here a producer
// claims a slot with one CAS on the tail, publishes with one atomic
// store of the slot's sequence stamp, and the consumer takes with plain
// loads plus one store — no locks anywhere. The consumer only touches
// the scheduler when the ring stays empty past its spin budget, and the
// producer only wakes it through a single parked-flag handshake (a
// futex-style wake: flag CAS, then one signal), so a saturated mailbox
// runs entirely on atomics.
//
// Shutdown is an atomic stop flag, not a closed channel: Close makes
// every subsequent Put fail fast while the consumer keeps draining what
// was already published, so no accepted value is ever lost — the
// close/publish race is resolved by an in-flight producer count (see
// Put and Get).
package mailbox

import (
	"runtime"
	"sync/atomic"
)

// slot is one ring cell. seq carries the Vyukov sequence stamp: it
// equals the claim position when the slot is free for a producer, the
// claim position + 1 once the value is published, and advances by the
// capacity when the consumer frees it for the next lap. val is written
// by exactly one producer (between its tail CAS and its seq publish)
// and read by the single consumer after it observes the published
// stamp, so the seq store/load pair is the only synchronization the
// payload needs.
//
// Slots are deliberately not padded: the consumer walks every slot in
// order anyway, and padding would multiply the footprint for a false-
// sharing pattern the MPSC shape mostly avoids (producers touch
// distinct slots, the consumer trails them by a lap).
type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// pad keeps the hot atomics on private cache lines: producers hammer
// tail, the consumer owns head, and neither should invalidate the
// other's line (or the read-mostly mask/slots header) on every
// operation.
type pad [64]byte

// Ring is the bounded lock-free MPSC ring buffer. Many goroutines may
// TryPut concurrently; exactly one goroutine may TryGet.
type Ring[T any] struct {
	_     pad
	tail  atomic.Uint64 // next position a producer claims
	_     pad
	head  atomic.Uint64 // next position the consumer takes
	_     pad
	mask  uint64
	slots []slot[T]
}

// NewRing builds a ring with the given capacity (rounded up to a power
// of two, minimum 2).
func NewRing[T any](capacity int) *Ring[T] {
	c := 2
	for c < capacity {
		c <<= 1
	}
	r := &Ring[T]{mask: uint64(c - 1), slots: make([]slot[T], c)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap reports the slot count.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// TryPut claims a slot, stores v, and publishes it. It returns false
// when the ring is full. Safe for any number of concurrent callers.
//
// All position comparisons go through signed differences of unsigned
// stamps, so the ring stays correct when positions wrap the integer
// range — the whitebox wraparound tests drive positions across 2^32
// and the 2^64 boundary to pin this down.
func (r *Ring[T]) TryPut(v T) bool {
	for {
		pos := r.tail.Load()
		s := &r.slots[pos&r.mask]
		switch dif := int64(s.seq.Load() - pos); {
		case dif == 0: // free for this lap: race other producers for it
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1) // publish
				return true
			}
		case dif < 0: // still holds last lap's value: full
			return false
		default: // another producer already claimed pos: reload tail
		}
	}
}

// TryGet takes the next published value, if any. Single consumer only.
func (r *Ring[T]) TryGet() (T, bool) {
	var zero T
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	if int64(s.seq.Load()-(pos+1)) < 0 {
		return zero, false // claimed but unpublished, or empty
	}
	v := s.val
	s.val = zero // drop the reference for GC
	s.seq.Store(pos + uint64(len(r.slots)))
	r.head.Store(pos + 1)
	return v, true
}

// Empty reports whether every claimed slot has been consumed. Racy by
// nature; the park protocol pairs it with the parked-flag handshake.
func (r *Ring[T]) Empty() bool { return r.head.Load() == r.tail.Load() }

// CanGet reports whether TryGet would succeed right now: the head slot
// holds a published, unconsumed value. Unlike Empty it ignores slots
// that are claimed but not yet published, so a waiter keying off CanGet
// never busy-loops against a producer mid-publish. Racy by nature, but
// one-sided: when consumers are serialized (see Mailbox.WaitNonempty),
// a false result proves every value published before the call has been
// consumed — a concurrent consume or publish can only flip the answer
// toward true.
func (r *Ring[T]) CanGet() bool {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	return int64(s.seq.Load()-(pos+1)) >= 0
}

// jump repositions an idle ring at position pos (whitebox tests only:
// it lets the wraparound tests start next to a stamp boundary instead
// of producing 2^32 values). Callers must guarantee the ring is empty
// and quiescent.
func (r *Ring[T]) jump(pos uint64) {
	r.head.Store(pos)
	r.tail.Store(pos)
	for i := range r.slots {
		base := pos &^ r.mask // start of the current lap
		idx := uint64(i)
		if idx < pos&r.mask {
			idx += uint64(len(r.slots)) // already consumed this lap
		}
		r.slots[i].seq.Store(base + idx)
	}
}

// Mailbox couples a Ring with the consumer's spin-then-park protocol
// and the producer-side wake handshake. One consumer, many producers.
type Mailbox[T any] struct {
	ring *Ring[T]

	// closed is the atomic stop flag: once set, Put fails fast and Get
	// returns ok=false as soon as the ring is drained. inflight counts
	// producers between their closed-flag check and their publish (or
	// abort), which is what lets the consumer decide "drained" without
	// racing a publish-in-progress.
	closed   atomic.Bool
	inflight atomic.Int64

	// parked is the futex-style handshake word: the consumer sets it
	// before blocking, and whoever CASes it back down owns the single
	// wake send. wake never holds more than one signal (only CAS
	// winners send, and the consumer consumes the signal before it can
	// park again).
	parked atomic.Uint32
	wake   chan struct{}

	spinBudget int

	// Drain statistics for STATS: spins counts Gets resolved during the
	// spin phase (the consumer found work after at least one empty poll
	// without touching the scheduler), parks counts the times the spin
	// budget ran out and the consumer actually blocked.
	spins atomic.Int64
	parks atomic.Int64
}

// DefaultSpinBudget is the empty-poll budget used when New is given a
// non-positive budget: enough polling to ride out a producer that is
// mid-publish or one scheduler quantum away, small enough that an idle
// shard parks quickly. Each spin yields the processor, so the budget
// costs scheduler passes, not busy-watts.
const DefaultSpinBudget = 64

// New builds a mailbox with the given ring capacity. spinBudget is the
// number of empty polls the consumer makes before parking; 0 selects
// DefaultSpinBudget, and a negative budget disables spinning entirely
// (the consumer parks on the first empty poll).
func New[T any](capacity, spinBudget int) *Mailbox[T] {
	if spinBudget == 0 {
		spinBudget = DefaultSpinBudget
	} else if spinBudget < 0 {
		spinBudget = 0
	}
	return &Mailbox[T]{
		ring:       NewRing[T](capacity),
		wake:       make(chan struct{}, 1),
		spinBudget: spinBudget,
	}
}

// Cap reports the ring capacity.
func (m *Mailbox[T]) Cap() int { return m.ring.Cap() }

// Spins reports Gets resolved in the spin phase (≥ 1 empty poll, no
// park).
func (m *Mailbox[T]) Spins() int64 { return m.spins.Load() }

// Parks reports how often the consumer exhausted its spin budget and
// blocked.
func (m *Mailbox[T]) Parks() int64 { return m.parks.Load() }

// Put publishes v, backing off (yielding) while the ring is full. It
// returns false — and v was not published — once the mailbox closes.
func (m *Mailbox[T]) Put(v T) bool {
	if m.closed.Load() {
		return false
	}
	// Announce the publish-in-progress, then re-check the stop flag:
	// either this producer sees the close and aborts, or the closer's
	// drain check sees inflight > 0 and waits the publish out. Without
	// the recheck a Put could slip between the consumer's last drain
	// and its exit, stranding the value.
	m.inflight.Add(1)
	if m.closed.Load() {
		m.abortPut()
		return false
	}
	for !m.ring.TryPut(v) {
		if m.closed.Load() {
			m.abortPut()
			return false
		}
		runtime.Gosched() // bounded backoff: the consumer needs the CPU to drain
	}
	m.inflight.Add(-1)
	m.wakeConsumer()
	return true
}

// PutQuiet publishes v like Put but never wakes the consumer on
// success (abort paths still wake: a parked consumer deciding
// "drained" must observe the in-flight count drop). It is the producer
// half of the caller-combining protocol: a producer that will try to
// drain the mailbox itself leaves the dedicated consumer parked, and
// only Kicks it when it loses the combiner race.
func (m *Mailbox[T]) PutQuiet(v T) bool {
	if m.closed.Load() {
		return false
	}
	m.inflight.Add(1)
	if m.closed.Load() {
		m.abortPut()
		return false
	}
	for !m.ring.TryPut(v) {
		if m.closed.Load() {
			m.abortPut()
			return false
		}
		runtime.Gosched() // bounded backoff: a consumer needs the CPU to drain
	}
	m.inflight.Add(-1)
	return true
}

// Kick wakes the parked consumer, if any, without publishing anything:
// the caller-combining fallback. A producer that published quietly and
// then failed to become the combiner cannot know whether the active
// combiner's final drain saw its value, so it kicks the dedicated
// consumer to re-check (WaitNonempty's post-wake CanGet is decisive).
func (m *Mailbox[T]) Kick() { m.wakeConsumer() }

// TryPut publishes v without blocking; false when full or closed.
func (m *Mailbox[T]) TryPut(v T) bool {
	if m.closed.Load() {
		return false
	}
	m.inflight.Add(1)
	if m.closed.Load() || !m.ring.TryPut(v) {
		m.abortPut()
		return false
	}
	m.inflight.Add(-1)
	m.wakeConsumer()
	return true
}

// abortPut retires an announced-but-unpublished producer. The wake
// matters: a consumer that parked while this producer was in flight is
// waiting for either a publish or the in-flight count to hit zero, and
// only a wake makes it re-check the latter.
func (m *Mailbox[T]) abortPut() {
	m.inflight.Add(-1)
	m.wakeConsumer()
}

// wakeConsumer delivers the single pending wake if the consumer is
// parked. Only the CAS winner sends, and the consumer drains the
// channel before it can park again, so the buffered send cannot block;
// the select is defensive.
func (m *Mailbox[T]) wakeConsumer() {
	if m.parked.Load() == 1 && m.parked.CompareAndSwap(1, 0) {
		select {
		case m.wake <- struct{}{}:
		default:
		}
	}
}

// Get returns the next value for the single consumer, spinning through
// its budget of empty polls (each poll yields the processor) and then
// parking until a producer's wake. ok=false means the mailbox is
// closed and fully drained — the consumer's signal to exit.
func (m *Mailbox[T]) Get() (T, bool) {
	spins := 0
	for {
		if v, ok := m.ring.TryGet(); ok {
			if spins > 0 {
				m.spins.Add(1)
			}
			return v, true
		}
		if m.drained() {
			// inflight was zero after closed: every surviving publish
			// is visible, so one final poll decides.
			if v, ok := m.ring.TryGet(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
		if spins < m.spinBudget {
			spins++
			runtime.Gosched()
			continue
		}
		// Budget exhausted: announce the park, then re-check for work.
		// A producer that publishes after our announcement sees
		// parked==1 and wakes; one that published before it is caught
		// by the re-check. Both cannot miss.
		m.parked.Store(1)
		if !m.ring.Empty() || m.drained() {
			if !m.parked.CompareAndSwap(1, 0) {
				<-m.wake // a producer won the flag: consume its wake
			}
			spins = 0
			continue
		}
		m.parks.Add(1)
		<-m.wake
		spins = 0
	}
}

// TryGet takes the next published value without spinning or parking.
func (m *Mailbox[T]) TryGet() (T, bool) { return m.ring.TryGet() }

// WaitNonempty blocks — spin phase, then park — until the ring has a
// published value (true) or the mailbox is closed and drained (false).
// It consumes nothing: the caller takes with TryGet under whatever
// discipline serializes its consumers (the server's per-shard combiner
// lock). A true result is a hint, not a reservation — a competing
// combiner may take the value first; the caller just waits again.
//
// After a park the spin budget is not re-entered before re-parking:
// wakes are posted only after a publish, a close, or an abort, so a
// woken waiter that finds no work and no shutdown knows the value was
// already consumed by a competing combiner and can park right back.
func (m *Mailbox[T]) WaitNonempty() bool {
	spins := 0
	for {
		if m.ring.CanGet() {
			if spins > 0 {
				m.spins.Add(1)
			}
			return true
		}
		if m.drained() {
			// inflight was zero after closed: every surviving publish
			// is visible, so one final check decides.
			return m.ring.CanGet()
		}
		if spins < m.spinBudget {
			spins++
			runtime.Gosched()
			continue
		}
		// Announce the park, then re-check for work; see Get.
		m.parked.Store(1)
		if m.ring.CanGet() || m.drained() {
			if !m.parked.CompareAndSwap(1, 0) {
				<-m.wake // a producer won the flag: consume its wake
			}
			continue
		}
		m.parks.Add(1)
		<-m.wake
		spins = m.spinBudget // woken: re-check once, no fresh spin phase
	}
}

// drained reports closed-and-quiet: the stop flag is set and no
// producer is mid-publish. Checking inflight after closed is what
// makes the final TryGet in Get decisive (see Put).
func (m *Mailbox[T]) drained() bool {
	return m.closed.Load() && m.inflight.Load() == 0
}

// Close sets the stop flag and wakes the consumer. Producers fail fast
// from here on; values already published remain for the consumer to
// drain. Idempotent.
func (m *Mailbox[T]) Close() {
	m.closed.Store(true)
	m.wakeConsumer()
}

// Closed reports whether Close has been called.
func (m *Mailbox[T]) Closed() bool { return m.closed.Load() }
