package mailbox

import (
	"sync"
	"testing"
)

// BenchmarkMailboxRingVsChan compares the MPSC handoff shapes the shard
// mailbox chooses between: the lock-free ring with the spin-then-park
// protocol versus a buffered Go channel, driven by the same pattern the
// server produces (each producer publishes a value and a consumer
// drains them all). Pinned into the CI bench subset so the ratio gate
// sees the primitive alongside the end-to-end server number.
func BenchmarkMailboxRingVsChan(b *testing.B) {
	const capacity = 128

	b.Run("ring", func(b *testing.B) {
		m := New[int](capacity, DefaultSpinBudget)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := m.Get(); !ok {
					return
				}
			}
		}()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				m.Put(i)
			}
		})
		m.Close()
		wg.Wait()
	})

	b.Run("chan", func(b *testing.B) {
		ch := make(chan int, capacity)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range ch {
			}
		}()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				ch <- i
			}
		})
		close(ch)
		wg.Wait()
	})
}
