package skiplist

import "testing"

// BenchmarkEpochSkipSteadyAddRemove is the allocation gate for the epoch
// skiplist. Tower heights are geometric, so the warm-up must see enough
// churn that every height's pool (and the ref pool) holds spares; the
// occasional tall tower early in the timed loop amortizes to 0 allocs/op
// over b.N.
func BenchmarkEpochSkipSteadyAddRemove(b *testing.B) {
	s := NewEpochSkipList()
	for i := 0; i < 1; i++ {
		for k := 0; k < 512; k++ {
			s.Add(k)
		}
		for k := 0; k < 512; k++ {
			s.Remove(k)
		}
	}
	for i := 0; i < 4096; i++ {
		s.Add(i % 64)
		s.Remove(i % 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(i % 64)
		s.Remove(i % 64)
	}
}

// BenchmarkLockFreeSkipAddRemove is the GC-backed baseline.
func BenchmarkLockFreeSkipAddRemove(b *testing.B) {
	s := NewLockFreeSkipList()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(i % 64)
		s.Remove(i % 64)
	}
}
