package skiplist

import (
	"sync/atomic"

	"amp/internal/epoch"
)

// Pool layout of EpochSkipList's reclamation domain: pool 0 recycles the
// (successor, marked) pairs; pool 1+h recycles nodes whose tower top
// level is h, so a recycled node always has the right height.
const esRefPool = 0

func esNodePool(topLevel int) int { return 1 + topLevel }

// esNode state word: a node may be retired only when the adder has
// finished linking (doneBit) and every level it was linked at has been
// snipped back out — linked count (bits 0..7) equals unlinked count
// (bits 8..15). retiredBit is claimed by exactly one CAS winner.
const (
	esLinkedInc   = 1
	esUnlinkedInc = 1 << 8
	esCountMask   = 0xff
	esDoneBit     = 1 << 16
	esRetiredBit  = 1 << 17
)

type esRef struct {
	node   *esNode
	marked bool
}

type esNode struct {
	key      int
	topLevel int
	state    atomic.Uint32
	next     []atomic.Pointer[esRef]
}

// EpochSkipList is the nonblocking skiplist of §14.4 with epoch-based
// reclamation (compare LockFreeSkipList, which leans on the GC). Nodes
// and (successor, marked) pairs are recycled through an epoch.Domain:
// every published pair is installed by one successful CAS and retired by
// the one successful CAS that displaces it, except a node's final
// marked pairs, which are frozen forever (no CAS ever succeeds on a
// marked ref) and are retired together with the node itself.
//
// The retirement condition needs care that the flat list does not:
// a lagging Add may link a node into a shortcut level after a
// concurrent Remove has already marked and unlinked everything linked
// so far. The node's state word therefore counts successful link and
// snip CASes per node, and retirement waits for doneBit (adder finished
// or abandoned linking) plus linked == unlinked. Because marking is
// strictly top-down and level 0 is marked last, every level's ref is
// frozen by the time the condition holds, making the winner's sweep of
// next[0..topLevel] race-free.
type EpochSkipList struct {
	dom  *epoch.Domain
	head *esNode
	tail *esNode
}

var _ Set = (*EpochSkipList)(nil)

// NewEpochSkipList returns an empty set with its own reclamation domain.
func NewEpochSkipList() *EpochSkipList {
	head := &esNode{key: KeyMin, topLevel: maxHeight - 1, next: make([]atomic.Pointer[esRef], maxHeight)}
	tail := &esNode{key: KeyMax, topLevel: maxHeight - 1, next: make([]atomic.Pointer[esRef], maxHeight)}
	emptyTail := &esRef{}
	for i := range tail.next {
		tail.next[i].Store(emptyTail)
	}
	for i := range head.next {
		head.next[i].Store(&esRef{node: tail})
	}
	return &EpochSkipList{dom: epoch.NewDomain(1 + maxHeight), head: head, tail: tail}
}

// Domain exposes the reclamation domain for diagnostics and the server's
// epoch-pin leak tests.
func (s *EpochSkipList) Domain() *epoch.Domain { return s.dom }

// ref returns a recycled (or fresh) pair set to (n, marked); it is
// exclusively owned until published by a successful CAS.
func (s *EpochSkipList) ref(slot *epoch.Slot, n *esNode, marked bool) *esRef {
	if r := slot.Alloc(esRefPool); r != nil {
		ref := r.(*esRef)
		ref.node, ref.marked = n, marked
		return ref
	}
	return &esRef{node: n, marked: marked}
}

// node returns a recycled (or fresh) node of exactly the given height
// with a zeroed state word; next pointers are stored by the caller.
func (s *EpochSkipList) node(slot *epoch.Slot, x, topLevel int) *esNode {
	if r := slot.Alloc(esNodePool(topLevel)); r != nil {
		n := r.(*esNode)
		n.key = x
		n.state.Store(0)
		return n
	}
	return &esNode{key: x, topLevel: topLevel, next: make([]atomic.Pointer[esRef], topLevel+1)}
}

// freeNode returns a never-published node and its staged refs.
func (s *EpochSkipList) freeNode(slot *epoch.Slot, n *esNode) {
	for i := 0; i <= n.topLevel; i++ {
		slot.Free(esRefPool, n.next[i].Load())
	}
	slot.Free(esNodePool(n.topLevel), n)
}

// unlinked records one level snipped out and retires if that was the
// last obligation.
func (s *EpochSkipList) unlinked(slot *epoch.Slot, n *esNode) {
	n.state.Add(esUnlinkedInc)
	s.maybeRetire(slot, n)
}

// maybeRetire claims and performs the node's retirement when the state
// condition holds. All of the node's refs are frozen (marked) at that
// point, so sweeping them is safe.
func (s *EpochSkipList) maybeRetire(slot *epoch.Slot, n *esNode) {
	for {
		st := n.state.Load()
		if st&esDoneBit == 0 || st&esRetiredBit != 0 || st&esCountMask != (st>>8)&esCountMask {
			return
		}
		if n.state.CompareAndSwap(st, st|esRetiredBit) {
			for i := 0; i <= n.topLevel; i++ {
				slot.Retire(esRefPool, n.next[i].Load())
			}
			slot.Retire(esNodePool(n.topLevel), n)
			return
		}
	}
}

// find locates the per-level windows around key, snipping marked nodes
// it passes (each successful snip retires the displaced pair and credits
// the victim's unlink count), and reports bottom-level presence.
func (s *EpochSkipList) find(slot *epoch.Slot, key int, preds, succs *[maxHeight]*esNode) bool {
retry:
	for {
		pred := s.head
		var curr *esNode
		for level := maxHeight - 1; level >= 0; level-- {
			curr = pred.next[level].Load().node
			for {
				succRef := curr.next[level].Load()
				for succRef.marked {
					expected := pred.next[level].Load()
					if expected.node != curr || expected.marked {
						continue retry
					}
					snip := s.ref(slot, succRef.node, false)
					if !pred.next[level].CompareAndSwap(expected, snip) {
						slot.Free(esRefPool, snip)
						continue retry
					}
					slot.Retire(esRefPool, expected)
					s.unlinked(slot, curr)
					curr = succRef.node
					succRef = curr.next[level].Load()
				}
				if curr.key < key {
					pred = curr
					curr = succRef.node
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = curr
		}
		return curr.key == key
	}
}

// Add inserts x, reporting whether it was absent. The level-0 link CAS
// is the linearization point; shortcut levels are linked afterwards,
// each success crediting the node's link count, and doneBit marks the
// end of linking whether it completed or was cut short by a remover.
func (s *EpochSkipList) Add(x int) bool {
	checkKey(x)
	slot := s.dom.Pin()
	defer s.dom.Unpin(slot)
	topLevel := randomLevel()
	var preds, succs [maxHeight]*esNode
	for {
		if s.find(slot, x, &preds, &succs) {
			return false
		}
		node := s.node(slot, x, topLevel)
		for level := 0; level <= topLevel; level++ {
			node.next[level].Store(s.ref(slot, succs[level], false))
		}
		pred, succ := preds[0], succs[0]
		expected := pred.next[0].Load()
		if expected.node != succ || expected.marked {
			s.freeNode(slot, node)
			continue
		}
		install := s.ref(slot, node, false)
		if !pred.next[0].CompareAndSwap(expected, install) {
			slot.Free(esRefPool, install)
			s.freeNode(slot, node)
			continue
		}
		slot.Retire(esRefPool, expected)
		node.state.Add(esLinkedInc)

		// Link the shortcut levels.
	linking:
		for level := 1; level <= topLevel; level++ {
			for {
				cur := node.next[level].Load()
				if cur.marked {
					break linking // node is being removed; stop linking
				}
				pred, succ = preds[level], succs[level]
				if cur.node != succ {
					nref := s.ref(slot, succ, false)
					if !node.next[level].CompareAndSwap(cur, nref) {
						slot.Free(esRefPool, nref)
						continue // re-read our own pointer
					}
					slot.Retire(esRefPool, cur)
				}
				expected := pred.next[level].Load()
				if expected.node == succ && !expected.marked {
					install := s.ref(slot, node, false)
					if pred.next[level].CompareAndSwap(expected, install) {
						slot.Retire(esRefPool, expected)
						node.state.Add(esLinkedInc)
						break
					}
					slot.Free(esRefPool, install)
				}
				s.find(slot, x, &preds, &succs) // refresh the windows and retry
			}
		}
		node.state.Add(esDoneBit)
		s.maybeRetire(slot, node)
		return true
	}
}

// Remove deletes x, reporting whether it was present. Marking the
// level-0 next pointer is the linearization point; marking runs
// strictly top-down so that a level-0 mark implies every ref is frozen.
func (s *EpochSkipList) Remove(x int) bool {
	checkKey(x)
	slot := s.dom.Pin()
	defer s.dom.Unpin(slot)
	var preds, succs [maxHeight]*esNode
	for {
		if !s.find(slot, x, &preds, &succs) {
			return false
		}
		victim := succs[0]
		// Mark the shortcut levels top-down.
		for level := victim.topLevel; level >= 1; level-- {
			for {
				ref := victim.next[level].Load()
				if ref.marked {
					break
				}
				m := s.ref(slot, ref.node, true)
				if victim.next[level].CompareAndSwap(ref, m) {
					slot.Retire(esRefPool, ref)
					break
				}
				slot.Free(esRefPool, m)
			}
		}
		// Mark level 0: whoever wins this CAS owns the removal.
		for {
			ref := victim.next[0].Load()
			if ref.marked {
				return false // someone else removed it first
			}
			m := s.ref(slot, ref.node, true)
			if victim.next[0].CompareAndSwap(ref, m) {
				slot.Retire(esRefPool, ref)
				s.find(slot, x, &preds, &succs) // physically snip, best effort
				return true
			}
			slot.Free(esRefPool, m)
		}
	}
}

// Contains descends without snipping, skipping marked nodes
// (Fig. 14.16). It pins for the whole traversal: the frozen refs it
// follows through marked nodes may already be retired.
func (s *EpochSkipList) Contains(x int) bool {
	checkKey(x)
	slot := s.dom.Pin()
	defer s.dom.Unpin(slot)
	pred := s.head
	var curr *esNode
	for level := maxHeight - 1; level >= 0; level-- {
		curr = pred.next[level].Load().node
		for {
			succRef := curr.next[level].Load()
			for succRef.marked {
				curr = succRef.node
				succRef = curr.next[level].Load()
			}
			if curr.key < x {
				pred = curr
				curr = succRef.node
			} else {
				break
			}
		}
	}
	return curr.key == x && !curr.next[0].Load().marked
}

// Min returns the smallest key, walking the bottom level under a pin.
func (s *EpochSkipList) Min() (int, bool) {
	slot := s.dom.Pin()
	defer s.dom.Unpin(slot)
	curr := s.head.next[0].Load().node
	for curr != s.tail {
		if !curr.next[0].Load().marked {
			return curr.key, true
		}
		curr = curr.next[0].Load().node
	}
	return 0, false
}

// Range is Ascend under the migration-capability name the adaptive and
// snapshot layers look for.
func (s *EpochSkipList) Range(f func(x int) bool) { s.Ascend(f) }

// Ascend calls f on each key in ascending order, skipping logically
// deleted nodes, until f returns false. The whole traversal runs under
// one pin, so a slow f delays reclamation (but never correctness).
func (s *EpochSkipList) Ascend(f func(key int) bool) {
	slot := s.dom.Pin()
	defer s.dom.Unpin(slot)
	curr := s.head.next[0].Load().node
	for curr != s.tail {
		ref := curr.next[0].Load()
		if !ref.marked {
			if !f(curr.key) {
				return
			}
		}
		curr = ref.node
	}
}
