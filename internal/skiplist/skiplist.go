// Package skiplist implements the Chapter 14 concurrent skiplists: the
// lock-based LazySkipList (Fig. 14.7–14.11), whose Contains is wait-free,
// and the LockFreeSkipList (Fig. 14.12–14.16), where the bottom-level list
// defines membership and upper levels are best-effort shortcuts.
package skiplist

import (
	"math"
	"sync/atomic"

	"amp/internal/list"
)

// Set is the concurrent integer-set abstraction (same shape as list.Set).
type Set = list.Set

// Key bounds: usable keys lie strictly inside (KeyMin, KeyMax); the bounds
// are the head and tail sentinel keys.
const (
	KeyMin = math.MinInt64
	KeyMax = math.MaxInt64
)

// maxHeight is the number of levels (0..maxHeight-1). 2^16 expected items
// per full-height tower is plenty for tests and benchmarks.
const maxHeight = 16

// levelSeed drives the shared lock-free level generator.
var levelSeed atomic.Uint64

// randomLevel returns a tower top level in [0, maxHeight), geometrically
// distributed with p = 1/2, using a splitmix64 step over a shared atomic
// seed (allocation-free and safe for concurrent use).
func randomLevel() int {
	z := levelSeed.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	lvl := 0
	for z&1 == 1 && lvl < maxHeight-1 {
		lvl++
		z >>= 1
	}
	return lvl
}

func checkKey(x int) {
	if x == KeyMin || x == KeyMax {
		panic("skiplist: key collides with a sentinel")
	}
}
