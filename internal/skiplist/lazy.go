package skiplist

import (
	"sync"
	"sync/atomic"
)

// lazyNode is a LazySkipList tower. next pointers are atomic because the
// wait-free Contains reads them without locks; marked and fullyLinked are
// the logical-deletion and linearization flags of Fig. 14.7.
type lazyNode struct {
	mu          sync.Mutex
	key         int
	next        []atomic.Pointer[lazyNode]
	marked      atomic.Bool
	fullyLinked atomic.Bool
	topLevel    int
}

func newLazyNode(key, topLevel int) *lazyNode {
	return &lazyNode{
		key:      key,
		next:     make([]atomic.Pointer[lazyNode], topLevel+1),
		topLevel: topLevel,
	}
}

// LazySkipList is the lock-based skiplist of §14.3: optimistic find, lock
// and validate the per-level predecessors, logically delete with a marked
// bit. An unmarked, fully linked node is in the set; Add linearizes when
// fullyLinked is set, Remove when marked is set.
type LazySkipList struct {
	head *lazyNode
	tail *lazyNode
}

var _ Set = (*LazySkipList)(nil)

// NewLazySkipList returns an empty set.
func NewLazySkipList() *LazySkipList {
	head := newLazyNode(KeyMin, maxHeight-1)
	tail := newLazyNode(KeyMax, maxHeight-1)
	for i := range head.next {
		head.next[i].Store(tail)
	}
	head.fullyLinked.Store(true)
	tail.fullyLinked.Store(true)
	return &LazySkipList{head: head, tail: tail}
}

// find fills preds/succs per level and returns the highest level at which
// a node with the key was found, or -1.
func (s *LazySkipList) find(key int, preds, succs *[maxHeight]*lazyNode) int {
	lFound := -1
	pred := s.head
	for level := maxHeight - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for curr.key < key {
			pred = curr
			curr = pred.next[level].Load()
		}
		if lFound == -1 && curr.key == key {
			lFound = level
		}
		preds[level] = pred
		succs[level] = curr
	}
	return lFound
}

// Add inserts x, reporting whether it was absent.
func (s *LazySkipList) Add(x int) bool {
	checkKey(x)
	topLevel := randomLevel()
	var preds, succs [maxHeight]*lazyNode
	for {
		lFound := s.find(x, &preds, &succs)
		if lFound != -1 {
			found := succs[lFound]
			if !found.marked.Load() {
				// Someone added it; wait until their linking completes so
				// our false return is linearizable.
				for !found.fullyLinked.Load() {
				}
				return false
			}
			continue // marked victim still in the way: retry
		}
		// Lock the predecessors bottom-up and validate each window.
		highestLocked := -1
		valid := true
		var prevPred *lazyNode
		for level := 0; valid && level <= topLevel; level++ {
			pred := preds[level]
			succ := succs[level]
			if pred != prevPred { // towers repeat preds; lock once
				pred.mu.Lock()
				highestLocked = level
				prevPred = pred
			}
			valid = !pred.marked.Load() && !succ.marked.Load() && pred.next[level].Load() == succ
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}
		node := newLazyNode(x, topLevel)
		for level := 0; level <= topLevel; level++ {
			node.next[level].Store(succs[level])
		}
		for level := 0; level <= topLevel; level++ {
			preds[level].next[level].Store(node)
		}
		node.fullyLinked.Store(true) // linearization point
		unlockPreds(&preds, highestLocked)
		return true
	}
}

// unlockPreds unlocks the distinct predecessors locked up to maxLevel.
func unlockPreds(preds *[maxHeight]*lazyNode, highestLocked int) {
	var prev *lazyNode
	for level := 0; level <= highestLocked; level++ {
		if preds[level] != prev {
			preds[level].mu.Unlock()
			prev = preds[level]
		}
	}
}

// Remove deletes x, reporting whether it was present.
func (s *LazySkipList) Remove(x int) bool {
	checkKey(x)
	var preds, succs [maxHeight]*lazyNode
	var victim *lazyNode
	isMarked := false
	topLevel := -1
	for {
		lFound := s.find(x, &preds, &succs)
		if lFound != -1 {
			victim = succs[lFound]
		}
		if !isMarked {
			// First iteration: decide whether there is a removable victim.
			if lFound == -1 {
				return false
			}
			if !victim.fullyLinked.Load() || victim.topLevel != lFound || victim.marked.Load() {
				return false
			}
			topLevel = victim.topLevel
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return false
			}
			victim.marked.Store(true) // linearization point
			isMarked = true
		}
		// Lock predecessors and validate, then physically unlink.
		highestLocked := -1
		valid := true
		var prevPred *lazyNode
		for level := 0; valid && level <= topLevel; level++ {
			pred := preds[level]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = level
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[level].Load() == victim
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue // re-find and retry the unlink
		}
		for level := topLevel; level >= 0; level-- {
			preds[level].next[level].Store(victim.next[level].Load())
		}
		victim.mu.Unlock()
		unlockPreds(&preds, highestLocked)
		return true
	}
}

// Contains is wait-free: one traversal, no locks (Fig. 14.11).
func (s *LazySkipList) Contains(x int) bool {
	checkKey(x)
	pred := s.head
	var curr *lazyNode
	for level := maxHeight - 1; level >= 0; level-- {
		curr = pred.next[level].Load()
		for curr.key < x {
			pred = curr
			curr = pred.next[level].Load()
		}
	}
	return curr.key == x && curr.fullyLinked.Load() && !curr.marked.Load()
}

// Ascend calls f on each key in ascending order, skipping marked and
// not-yet-linked nodes, until f returns false. Wait-free and weakly
// consistent, like Contains.
func (s *LazySkipList) Ascend(f func(key int) bool) {
	curr := s.head.next[0].Load()
	for curr != s.tail {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			if !f(curr.key) {
				return
			}
		}
		curr = curr.next[0].Load()
	}
}
