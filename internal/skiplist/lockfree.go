package skiplist

import "sync/atomic"

// lfRef is an immutable (successor, marked) pair, as in packages list and
// hashset.
type lfRef struct {
	node   *lfNode
	marked bool
}

type lfNode struct {
	key      int
	next     []atomic.Pointer[lfRef]
	topLevel int
}

func newLFNode(key, topLevel int) *lfNode {
	n := &lfNode{
		key:      key,
		next:     make([]atomic.Pointer[lfRef], topLevel+1),
		topLevel: topLevel,
	}
	empty := &lfRef{}
	for i := range n.next {
		n.next[i].Store(empty)
	}
	return n
}

// LockFreeSkipList is the nonblocking skiplist of §14.4. The bottom-level
// list is the set: a node is present iff it is reachable at level 0 and its
// level-0 next pointer is unmarked. Upper levels are shortcuts that find()
// repairs as it descends.
type LockFreeSkipList struct {
	head *lfNode
	tail *lfNode
}

var _ Set = (*LockFreeSkipList)(nil)

// NewLockFreeSkipList returns an empty set.
func NewLockFreeSkipList() *LockFreeSkipList {
	head := newLFNode(KeyMin, maxHeight-1)
	tail := newLFNode(KeyMax, maxHeight-1)
	for i := range head.next {
		head.next[i].Store(&lfRef{node: tail})
	}
	return &LockFreeSkipList{head: head, tail: tail}
}

// find locates the per-level windows around key, snipping marked nodes it
// passes; it reports whether a node with the key is present at bottom
// level. preds/succs are filled for levels 0..maxHeight-1.
func (s *LockFreeSkipList) find(key int, preds, succs *[maxHeight]*lfNode) bool {
retry:
	for {
		pred := s.head
		var curr *lfNode
		for level := maxHeight - 1; level >= 0; level-- {
			curr = pred.next[level].Load().node
			for {
				succRef := curr.next[level].Load()
				for succRef.marked {
					expected := pred.next[level].Load()
					if expected.node != curr || expected.marked {
						continue retry
					}
					if !pred.next[level].CompareAndSwap(expected, &lfRef{node: succRef.node}) {
						continue retry
					}
					curr = succRef.node
					succRef = curr.next[level].Load()
				}
				if curr.key < key {
					pred = curr
					curr = succRef.node
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = curr
		}
		return curr.key == key
	}
}

// Add inserts x, reporting whether it was absent. The level-0 link CAS is
// the linearization point; higher-level links are installed afterwards,
// re-finding when they race.
func (s *LockFreeSkipList) Add(x int) bool {
	checkKey(x)
	topLevel := randomLevel()
	var preds, succs [maxHeight]*lfNode
	for {
		if s.find(x, &preds, &succs) {
			return false
		}
		node := newLFNode(x, topLevel)
		for level := 0; level <= topLevel; level++ {
			node.next[level].Store(&lfRef{node: succs[level]})
		}
		pred, succ := preds[0], succs[0]
		expected := pred.next[0].Load()
		if expected.node != succ || expected.marked {
			continue
		}
		if !pred.next[0].CompareAndSwap(expected, &lfRef{node: node}) {
			continue
		}
		// Link the shortcut levels.
		for level := 1; level <= topLevel; level++ {
			for {
				cur := node.next[level].Load()
				if cur.marked {
					return true // node is being removed; stop linking
				}
				pred, succ = preds[level], succs[level]
				if cur.node != succ {
					if !node.next[level].CompareAndSwap(cur, &lfRef{node: succ}) {
						continue // re-read our own pointer
					}
				}
				expected := pred.next[level].Load()
				if expected.node == succ && !expected.marked &&
					pred.next[level].CompareAndSwap(expected, &lfRef{node: node}) {
					break
				}
				s.find(x, &preds, &succs) // refresh the windows and retry
				if succs[level] == node {
					// Someone linked us here while we retried.
					break
				}
			}
		}
		return true
	}
}

// Remove deletes x, reporting whether it was present. Marking the
// level-0 next pointer is the linearization point.
func (s *LockFreeSkipList) Remove(x int) bool {
	checkKey(x)
	var preds, succs [maxHeight]*lfNode
	for {
		if !s.find(x, &preds, &succs) {
			return false
		}
		victim := succs[0]
		// Mark the shortcut levels top-down.
		for level := victim.topLevel; level >= 1; level-- {
			for {
				ref := victim.next[level].Load()
				if ref.marked {
					break
				}
				victim.next[level].CompareAndSwap(ref, &lfRef{node: ref.node, marked: true})
			}
		}
		// Mark level 0: whoever wins this CAS owns the removal.
		for {
			ref := victim.next[0].Load()
			if ref.marked {
				return false // someone else removed it first
			}
			if victim.next[0].CompareAndSwap(ref, &lfRef{node: ref.node, marked: true}) {
				s.find(x, &preds, &succs) // physically snip, best effort
				return true
			}
		}
	}
}

// Min returns the smallest key in the set, walking the bottom-level list
// and skipping logically deleted nodes. It reports false when the set is
// observed empty. Chapter 15's SkipQueue uses this as its findMin step.
func (s *LockFreeSkipList) Min() (int, bool) {
	curr := s.head.next[0].Load().node
	for curr != s.tail {
		if !curr.next[0].Load().marked {
			return curr.key, true
		}
		curr = curr.next[0].Load().node
	}
	return 0, false
}

// Contains is wait-free: it descends without snipping, skipping marked
// nodes (Fig. 14.16).
func (s *LockFreeSkipList) Contains(x int) bool {
	checkKey(x)
	pred := s.head
	var curr *lfNode
	for level := maxHeight - 1; level >= 0; level-- {
		curr = pred.next[level].Load().node
		for {
			succRef := curr.next[level].Load()
			for succRef.marked {
				curr = succRef.node
				succRef = curr.next[level].Load()
			}
			if curr.key < x {
				pred = curr
				curr = succRef.node
			} else {
				break
			}
		}
	}
	return curr.key == x && !curr.next[0].Load().marked
}

// Ascend calls f on each key in ascending order, skipping logically
// deleted nodes, until f returns false. The traversal is wait-free and
// weakly consistent: concurrent updates may or may not be observed.
func (s *LockFreeSkipList) Ascend(f func(key int) bool) {
	curr := s.head.next[0].Load().node
	for curr != s.tail {
		ref := curr.next[0].Load()
		if !ref.marked {
			if !f(curr.key) {
				return
			}
		}
		curr = ref.node
	}
}
