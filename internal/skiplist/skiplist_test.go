package skiplist

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"amp/internal/core"
)

func implementations() map[string]func() Set {
	return map[string]func() Set{
		"lazy":     func() Set { return NewLazySkipList() },
		"lockfree": func() Set { return NewLockFreeSkipList() },
		"epoch":    func() Set { return NewEpochSkipList() },
	}
}

func TestRandomLevelDistribution(t *testing.T) {
	const n = 100_000
	var counts [maxHeight]int
	for i := 0; i < n; i++ {
		lvl := randomLevel()
		if lvl < 0 || lvl >= maxHeight {
			t.Fatalf("randomLevel out of range: %d", lvl)
		}
		counts[lvl]++
	}
	// Roughly half the towers are height 1 (level 0).
	if counts[0] < n/3 || counts[0] > 2*n/3 {
		t.Fatalf("level-0 frequency %d/%d far from 1/2", counts[0], n)
	}
	// Higher levels are rarer than lower ones, within noise.
	if counts[3] >= counts[0] {
		t.Fatalf("level 3 (%d) not rarer than level 0 (%d)", counts[3], counts[0])
	}
}

func TestSequentialBasics(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if s.Contains(5) {
				t.Fatal("empty set contains 5")
			}
			if !s.Add(5) || s.Add(5) {
				t.Fatal("Add semantics broken")
			}
			if !s.Contains(5) {
				t.Fatal("Contains after Add = false")
			}
			if !s.Remove(5) || s.Remove(5) {
				t.Fatal("Remove semantics broken")
			}
			if s.Contains(5) {
				t.Fatal("Contains after Remove = true")
			}
		})
	}
}

func TestLargeOrderedScan(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			const n = 3000
			perm := rand.New(rand.NewSource(5)).Perm(n)
			for _, k := range perm {
				if !s.Add(k) {
					t.Fatalf("Add(%d) = false", k)
				}
			}
			for k := 0; k < n; k++ {
				if !s.Contains(k) {
					t.Fatalf("Contains(%d) = false", k)
				}
			}
			if s.Contains(n + 7) {
				t.Fatal("phantom key")
			}
		})
	}
}

func TestDifferentialAgainstMap(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			ref := make(map[int]bool)
			rng := rand.New(rand.NewSource(17))
			for i := 0; i < 6000; i++ {
				k := rng.Intn(128)
				switch rng.Intn(3) {
				case 0:
					if got, want := s.Add(k), !ref[k]; got != want {
						t.Fatalf("op %d: Add(%d) = %v, want %v", i, k, got, want)
					}
					ref[k] = true
				case 1:
					if got, want := s.Remove(k), ref[k]; got != want {
						t.Fatalf("op %d: Remove(%d) = %v, want %v", i, k, got, want)
					}
					delete(ref, k)
				default:
					if got := s.Contains(k); got != ref[k] {
						t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, ref[k])
					}
				}
			}
		})
	}
}

func TestConcurrentSetSemantics(t *testing.T) {
	const (
		workers = 6
		iters   = 700
		keys    = 48
	)
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var adds, removes [keys]atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						k := rng.Intn(keys)
						switch rng.Intn(3) {
						case 0:
							if s.Add(k) {
								adds[k].Add(1)
							}
						case 1:
							if s.Remove(k) {
								removes[k].Add(1)
							}
						default:
							s.Contains(k)
						}
					}
				}(int64(w + 71))
			}
			wg.Wait()
			for k := 0; k < keys; k++ {
				diff := adds[k].Load() - removes[k].Load()
				if diff != 0 && diff != 1 {
					t.Fatalf("key %d: %d adds vs %d removes", k, adds[k].Load(), removes[k].Load())
				}
				if got, want := s.Contains(k), diff == 1; got != want {
					t.Fatalf("key %d: Contains = %v, want %v", k, got, want)
				}
			}
		})
	}
}

func TestLinearizable(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			rec := core.NewRecorder()
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(me core.ThreadID) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(me) + 5))
					for i := 0; i < 6; i++ {
						k := rng.Intn(3)
						switch rng.Intn(3) {
						case 0:
							p := rec.Call(me, "add", k)
							p.Done(s.Add(k))
						case 1:
							p := rec.Call(me, "remove", k)
							p.Done(s.Remove(k))
						default:
							p := rec.Call(me, "contains", k)
							p.Done(s.Contains(k))
						}
					}
				}(core.ThreadID(w))
			}
			wg.Wait()
			res := core.Check(core.SetModel(), rec.History())
			if res.Exhausted {
				t.Skip("checker budget exhausted")
			}
			if !res.Linearizable {
				t.Fatalf("%s produced a non-linearizable history:\n%v", name, rec.History())
			}
		})
	}
}

func TestSentinelKeyPanics(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer func() {
				if recover() == nil {
					t.Fatal("sentinel key did not panic")
				}
			}()
			s.Add(KeyMax)
		})
	}
}

func TestQuickSetEquivalence(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []uint16) bool {
				s := mk()
				ref := make(map[int]bool)
				for _, code := range ops {
					k := int(code % 24)
					switch (code / 24) % 3 {
					case 0:
						if s.Add(k) != !ref[k] {
							return false
						}
						ref[k] = true
					case 1:
						if s.Remove(k) != ref[k] {
							return false
						}
						delete(ref, k)
					default:
						if s.Contains(k) != ref[k] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

type ascender interface {
	Set
	Ascend(f func(key int) bool)
}

func TestAscendOrdered(t *testing.T) {
	for name, mk := range map[string]func() ascender{
		"lazy":     func() ascender { return NewLazySkipList() },
		"lockfree": func() ascender { return NewLockFreeSkipList() },
		"epoch":    func() ascender { return NewEpochSkipList() },
	} {
		t.Run(name, func(t *testing.T) {
			s := mk()
			perm := rand.New(rand.NewSource(31)).Perm(200)
			for _, k := range perm {
				s.Add(k)
			}
			for k := 0; k < 200; k += 3 {
				s.Remove(k)
			}
			var got []int
			s.Ascend(func(k int) bool {
				got = append(got, k)
				return true
			})
			var want []int
			for k := 0; k < 200; k++ {
				if k%3 != 0 {
					want = append(want, k)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("Ascend yielded %d keys, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Ascend[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestAscendEarlyStop(t *testing.T) {
	s := NewLockFreeSkipList()
	for k := 0; k < 50; k++ {
		s.Add(k)
	}
	n := 0
	s.Ascend(func(int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Ascend visited %d keys after early stop, want 10", n)
	}
}

func TestAscendDuringConcurrentUpdates(t *testing.T) {
	s := NewLockFreeSkipList()
	for k := 0; k < 100; k += 2 {
		s.Add(k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		for {
			select {
			case <-stop:
				return
			default:
				k := rng.Intn(100)
				if rng.Intn(2) == 0 {
					s.Add(k)
				} else {
					s.Remove(k)
				}
			}
		}
	}()
	for i := 0; i < 200; i++ {
		last := KeyMin
		s.Ascend(func(k int) bool {
			if k <= last {
				t.Errorf("Ascend out of order: %d after %d", k, last)
				return false
			}
			last = k
			return true
		})
	}
	close(stop)
	wg.Wait()
}
