package queue

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amp/internal/core"
)

// totalQueues returns the implementations with non-blocking (total) Deq.
func totalQueues() map[string]func() Queue[int] {
	return map[string]func() Queue[int]{
		"unbounded": func() Queue[int] { return NewUnboundedQueue[int]() },
		"lockfree":  func() Queue[int] { return NewLockFreeQueue[int]() },
		"chan":      func() Queue[int] { return NewChanQueue[int](1 << 16) },
		"hw":        func() Queue[int] { return NewHWQueue[int](1 << 16) },
		"epoch":     func() Queue[int] { return NewEpochQueue[int]() },
	}
}

func TestSequentialFIFO(t *testing.T) {
	for name, mk := range totalQueues() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			if _, ok := q.Deq(); ok {
				t.Fatal("Deq on empty queue reported ok")
			}
			for i := 0; i < 100; i++ {
				q.Enq(i)
			}
			for i := 0; i < 100; i++ {
				v, ok := q.Deq()
				if !ok || v != i {
					t.Fatalf("Deq = (%d, %v), want (%d, true)", v, ok, i)
				}
			}
			if _, ok := q.Deq(); ok {
				t.Fatal("Deq on drained queue reported ok")
			}
		})
	}
}

func TestDifferentialAgainstSlice(t *testing.T) {
	for name, mk := range totalQueues() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var ref []int
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 3000; i++ {
				if rng.Intn(2) == 0 {
					v := rng.Intn(1000)
					q.Enq(v)
					ref = append(ref, v)
				} else {
					v, ok := q.Deq()
					if len(ref) == 0 {
						if ok {
							t.Fatalf("op %d: Deq ok on empty queue", i)
						}
						continue
					}
					if !ok || v != ref[0] {
						t.Fatalf("op %d: Deq = (%d,%v), want (%d,true)", i, v, ok, ref[0])
					}
					ref = ref[1:]
				}
			}
		})
	}
}

// TestConcurrentProducersConsumers checks exactly-once delivery and
// per-producer FIFO order under concurrency.
func TestConcurrentProducersConsumers(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		perProd   = 500
	)
	for name, mk := range totalQueues() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProd; i++ {
						q.Enq(p*1_000_000 + i)
					}
				}(p)
			}
			var (
				mu       sync.Mutex
				received = make(map[int]int)
				lastSeen [consumers][producers]int
			)
			for slot := range lastSeen {
				for p := range lastSeen[slot] {
					lastSeen[slot][p] = -1
				}
			}
			var got atomic.Int64
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func(slot int) {
					defer wg.Done()
					for got.Load() < producers*perProd {
						v, ok := q.Deq()
						if !ok {
							continue
						}
						got.Add(1)
						p, i := v/1_000_000, v%1_000_000
						if prev := lastSeen[slot][p]; i < prev {
							t.Errorf("consumer %d saw producer %d's item %d after %d", slot, p, i, prev)
						}
						lastSeen[slot][p] = i
						mu.Lock()
						received[v]++
						mu.Unlock()
					}
				}(c)
			}
			wg.Wait()
			if len(received) != producers*perProd {
				t.Fatalf("received %d distinct values, want %d", len(received), producers*perProd)
			}
			for v, n := range received {
				if n != 1 {
					t.Fatalf("value %d received %d times", v, n)
				}
			}
		})
	}
}

func TestLinearizableQueues(t *testing.T) {
	for name, mk := range totalQueues() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			rec := core.NewRecorder()
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(me core.ThreadID) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(me) + 9))
					for i := 0; i < 6; i++ {
						if rng.Intn(2) == 0 {
							v := int(me)*100 + i
							p := rec.Call(me, "enq", v)
							q.Enq(v)
							p.Done(nil)
						} else {
							p := rec.Call(me, "deq", nil)
							v, ok := q.Deq()
							if ok {
								p.Done(v)
							} else {
								p.Done(core.Empty)
							}
						}
					}
				}(core.ThreadID(w))
			}
			wg.Wait()
			res := core.Check(core.QueueModel(), rec.History())
			if res.Exhausted {
				t.Skip("checker budget exhausted")
			}
			if !res.Linearizable {
				t.Fatalf("%s produced a non-linearizable history:\n%v", name, rec.History())
			}
		})
	}
}

func TestBoundedQueueBasics(t *testing.T) {
	q := NewBoundedQueue[int](4)
	if got := q.Capacity(); got != 4 {
		t.Fatalf("Capacity = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		q.Enq(i)
	}
	if got := q.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		v, _ := q.Deq()
		if v != i {
			t.Fatalf("Deq = %d, want %d", v, i)
		}
	}
	if _, ok := q.TryDeq(); ok {
		t.Fatal("TryDeq ok on empty queue")
	}
}

func TestBoundedQueueBlocksWhenFull(t *testing.T) {
	q := NewBoundedQueue[int](2)
	q.Enq(1)
	q.Enq(2)
	enqDone := make(chan struct{})
	go func() {
		q.Enq(3) // must block until a Deq frees a slot
		close(enqDone)
	}()
	select {
	case <-enqDone:
		t.Fatal("Enq did not block on a full queue")
	case <-time.After(50 * time.Millisecond):
	}
	if v, _ := q.Deq(); v != 1 {
		t.Fatalf("Deq = %d, want 1", v)
	}
	select {
	case <-enqDone:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Enq never resumed")
	}
}

func TestBoundedQueueBlocksWhenEmpty(t *testing.T) {
	q := NewBoundedQueue[int](2)
	deqDone := make(chan int, 1)
	go func() {
		v, _ := q.Deq()
		deqDone <- v
	}()
	select {
	case <-deqDone:
		t.Fatal("Deq did not block on an empty queue")
	case <-time.After(50 * time.Millisecond):
	}
	q.Enq(42)
	select {
	case v := <-deqDone:
		if v != 42 {
			t.Fatalf("Deq = %d, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Deq never resumed")
	}
}

func TestBoundedQueueNeverExceedsCapacity(t *testing.T) {
	const capacity = 3
	q := NewBoundedQueue[int](capacity)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var maxSize atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if s := int64(q.Size()); s > maxSize.Load() {
					maxSize.Store(s)
				}
			}
		}
	}()
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q.Enq(base + i)
			}
		}(p * 1000)
	}
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q.Deq()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if m := maxSize.Load(); m > capacity {
		t.Fatalf("observed size %d above capacity %d", m, capacity)
	}
}

func TestSynchronousHandoff(t *testing.T) {
	for name, mk := range map[string]func() Queue[int]{
		"monitor": func() Queue[int] { return NewSynchronousQueue[int]() },
		"dual":    func() Queue[int] { return NewSynchronousDualQueue[int]() },
	} {
		t.Run(name, func(t *testing.T) {
			q := mk()
			done := make(chan struct{})
			go func() {
				q.Enq(7)
				close(done)
			}()
			select {
			case <-done:
				t.Fatal("Enq returned before any dequeuer arrived")
			case <-time.After(50 * time.Millisecond):
			}
			v, ok := q.Deq()
			if !ok || v != 7 {
				t.Fatalf("Deq = (%d,%v), want (7,true)", v, ok)
			}
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("Enq never returned after handoff")
			}
		})
	}
}

func TestSynchronousStress(t *testing.T) {
	for name, mk := range map[string]func() Queue[int]{
		"monitor": func() Queue[int] { return NewSynchronousQueue[int]() },
		"dual":    func() Queue[int] { return NewSynchronousDualQueue[int]() },
	} {
		t.Run(name, func(t *testing.T) {
			const (
				pairs   = 4
				perPair = 200
			)
			q := mk()
			var wg sync.WaitGroup
			var sumIn, sumOut atomic.Int64
			for p := 0; p < pairs; p++ {
				wg.Add(2)
				go func(base int) {
					defer wg.Done()
					for i := 0; i < perPair; i++ {
						v := base + i
						sumIn.Add(int64(v))
						q.Enq(v)
					}
				}(p * 10_000)
				go func() {
					defer wg.Done()
					for i := 0; i < perPair; i++ {
						v, ok := q.Deq()
						if !ok {
							t.Error("synchronous Deq returned !ok")
							return
						}
						sumOut.Add(int64(v))
					}
				}()
			}
			wg.Wait()
			if sumIn.Load() != sumOut.Load() {
				t.Fatalf("values not conserved: in %d, out %d", sumIn.Load(), sumOut.Load())
			}
		})
	}
}

func TestChanQueueCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChanQueue(0) did not panic")
		}
	}()
	NewChanQueue[int](0)
}

func TestHWQueueExhaustionPanics(t *testing.T) {
	q := NewHWQueue[int](2)
	q.Enq(1)
	q.Enq(2)
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted HW queue did not panic")
		}
	}()
	q.Enq(3)
}

func TestHWQueueSize(t *testing.T) {
	q := NewHWQueue[int](8)
	if q.Size() != 0 {
		t.Fatalf("fresh Size = %d", q.Size())
	}
	q.Enq(1)
	q.Enq(2)
	if q.Size() != 2 {
		t.Fatalf("Size = %d, want 2", q.Size())
	}
	q.Deq()
	if q.Size() != 1 {
		t.Fatalf("Size = %d, want 1", q.Size())
	}
}

func TestHWQueueCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHWQueue(0) did not panic")
		}
	}()
	NewHWQueue[int](0)
}

func TestBoundedQueueCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBoundedQueue(0) did not panic")
		}
	}()
	NewBoundedQueue[int](0)
}
