package queue

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRecyclingQueueStampWraparound drives every stamp field past the
// 2^32 boundary. The stamps only ever need to distinguish a reference
// from its earlier lives — equality, not ordering — so uint32 overflow
// must be harmless. The whitebox setup plants stamps two shy of the
// maximum in head, tail, the free list, and every node link, then runs
// enough traffic that each CAS-incremented stamp wraps.
func TestRecyclingQueueStampWraparound(t *testing.T) {
	const capacity = 4
	q := NewRecyclingQueue(capacity)
	const high = uint32(math.MaxUint32 - 1)
	reStamp := func(ref *atomic.Uint64) {
		idx, _ := unpackRef(ref.Load())
		ref.Store(packRef(idx, high))
	}
	reStamp(&q.head)
	reStamp(&q.tail)
	reStamp(&q.free)
	for i := range q.nodes {
		reStamp(&q.nodes[i].next)
	}

	// Each Enq+Deq pair bumps every touched stamp at least once; 64
	// pairs push all of them across MaxUint32 and far beyond.
	for i := int64(0); i < 64; i++ {
		if !q.Enq(i) {
			t.Fatalf("Enq(%d) refused with empty queue", i)
		}
		got, ok := q.Deq()
		if !ok || got != i {
			t.Fatalf("Deq = (%d, %v), want (%d, true)", got, ok, i)
		}
	}
	// FIFO across the wrap with the queue partly full.
	for i := int64(100); i < 100+capacity; i++ {
		if !q.Enq(i) {
			t.Fatalf("Enq(%d) refused below capacity", i)
		}
	}
	for i := int64(100); i < 100+capacity; i++ {
		if got, ok := q.Deq(); !ok || got != i {
			t.Fatalf("Deq = (%d, %v), want (%d, true)", got, ok, i)
		}
	}
	if _, stamp := unpackRef(q.head.Load()); stamp >= high {
		t.Fatalf("head stamp %d never wrapped past MaxUint32", stamp)
	}
}

// TestRecyclingQueueExhaustionConcurrentEnq fills the pool from many
// goroutines at once: exactly capacity enqueues may succeed, the rest
// must refuse (never block, never panic), and after a full drain the
// pool is whole again — every refused slot is reusable.
func TestRecyclingQueueExhaustionConcurrentEnq(t *testing.T) {
	const (
		capacity   = 64
		goroutines = 8
		attempts   = 64 // per goroutine: 8×64 = 512 attempts on 64 slots
	)
	q := NewRecyclingQueue(capacity)
	var succeeded atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				if q.Enq(int64(g)<<32 | int64(i)) {
					succeeded.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := succeeded.Load(); got != capacity {
		t.Fatalf("%d concurrent enqueues succeeded, want exactly %d", got, capacity)
	}

	// Drain: every successful enqueue comes back exactly once.
	seen := make(map[int64]bool, capacity)
	for i := 0; i < capacity; i++ {
		v, ok := q.Deq()
		if !ok {
			t.Fatalf("Deq %d/%d reported empty", i+1, capacity)
		}
		if seen[v] {
			t.Fatalf("value %d dequeued twice", v)
		}
		seen[v] = true
	}
	if _, ok := q.Deq(); ok {
		t.Fatal("Deq on drained queue reported ok")
	}

	// The full pool must be reusable after the churn.
	for i := int64(0); i < capacity; i++ {
		if !q.Enq(i) {
			t.Fatalf("Enq(%d) refused after drain: free list lost nodes", i)
		}
	}
	if q.Enq(999) {
		t.Fatal("Enq above capacity succeeded")
	}
}
