package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SynchronousQueue is the monitor-based rendezvous of Fig. 10.15: an
// enqueuer parks until a dequeuer takes its item, and vice versa. At most
// one enqueuer offers at a time; the rest queue on the condition.
type SynchronousQueue[T any] struct {
	mu        sync.Mutex
	cond      *sync.Cond
	item      T
	hasItem   bool
	enqueuing bool
}

// NewSynchronousQueue returns an empty rendezvous queue.
func NewSynchronousQueue[T any]() *SynchronousQueue[T] {
	q := &SynchronousQueue[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Enq offers x and blocks until a dequeuer accepts it.
func (q *SynchronousQueue[T]) Enq(x T) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.enqueuing {
		q.cond.Wait()
	}
	q.enqueuing = true
	q.item = x
	q.hasItem = true
	q.cond.Broadcast()
	for q.hasItem {
		q.cond.Wait()
	}
	q.enqueuing = false
	q.cond.Broadcast()
}

// Deq blocks until an enqueuer offers an item, then takes it.
func (q *SynchronousQueue[T]) Deq() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.hasItem {
		q.cond.Wait()
	}
	t := q.item
	var zero T
	q.item = zero
	q.hasItem = false
	q.cond.Broadcast()
	return t, true
}

// dualKind distinguishes the two node flavors of the dual queue.
type dualKind int32

const (
	kindItem dualKind = iota + 1
	kindReservation
)

// dualNode is a node of the synchronous dual queue: an ITEM node carries a
// value waiting for a dequeuer; a RESERVATION node is a dequeuer waiting
// for a value. item flips exactly once (non-nil→nil for items, nil→non-nil
// for reservations), which is the rendezvous.
type dualNode[T any] struct {
	kind dualKind
	item atomic.Pointer[T]
	next atomic.Pointer[dualNode[T]]
}

// SynchronousDualQueue is the lock-free synchronous queue of Fig. 10.16:
// when enqueuers and dequeuers wait, they wait in FIFO order as nodes of a
// single Michael–Scott-style list, so the rendezvous itself is fair.
type SynchronousDualQueue[T any] struct {
	head atomic.Pointer[dualNode[T]]
	tail atomic.Pointer[dualNode[T]]
}

// NewSynchronousDualQueue returns an empty rendezvous queue.
func NewSynchronousDualQueue[T any]() *SynchronousDualQueue[T] {
	q := &SynchronousDualQueue[T]{}
	sentinel := &dualNode[T]{kind: kindItem}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enq offers x and spins until a dequeuer accepts it.
func (q *SynchronousDualQueue[T]) Enq(x T) {
	offer := &dualNode[T]{kind: kindItem}
	offer.item.Store(&x)
	for {
		tail := q.tail.Load()
		head := q.head.Load()
		if head == tail || tail.kind == kindItem {
			// Queue empty or holds waiting items: join the line of offers.
			next := tail.next.Load()
			if tail != q.tail.Load() {
				continue
			}
			if next != nil {
				q.tail.CompareAndSwap(tail, next)
				continue
			}
			if !tail.next.CompareAndSwap(nil, offer) {
				continue
			}
			q.tail.CompareAndSwap(tail, offer)
			for offer.item.Load() != nil {
				runtime.Gosched() // wait for a dequeuer to take the item
			}
			// Clean up: unlink our fulfilled node if it is head's next.
			head := q.head.Load()
			if head.next.Load() == offer {
				q.head.CompareAndSwap(head, offer)
			}
			return
		}
		// Reservations are waiting: fulfill the oldest.
		next := head.next.Load()
		if tail != q.tail.Load() || head != q.head.Load() || next == nil {
			continue
		}
		success := next.item.CompareAndSwap(nil, &x)
		q.head.CompareAndSwap(head, next)
		if success {
			return
		}
	}
}

// Deq blocks (spinning) until an enqueuer offers an item.
func (q *SynchronousDualQueue[T]) Deq() (T, bool) {
	reservation := &dualNode[T]{kind: kindReservation}
	for {
		tail := q.tail.Load()
		head := q.head.Load()
		if head == tail || tail.kind == kindReservation {
			// Queue empty or holds waiting dequeuers: get in line.
			next := tail.next.Load()
			if tail != q.tail.Load() {
				continue
			}
			if next != nil {
				q.tail.CompareAndSwap(tail, next)
				continue
			}
			if !tail.next.CompareAndSwap(nil, reservation) {
				continue
			}
			q.tail.CompareAndSwap(tail, reservation)
			for reservation.item.Load() == nil {
				runtime.Gosched() // wait for an enqueuer to fulfill us
			}
			head := q.head.Load()
			if head.next.Load() == reservation {
				q.head.CompareAndSwap(head, reservation)
			}
			return *reservation.item.Load(), true
		}
		// Items are waiting: take the oldest.
		next := head.next.Load()
		if tail != q.tail.Load() || head != q.head.Load() || next == nil {
			continue
		}
		item := next.item.Load()
		if item == nil {
			// Already taken; help advance head past the spent node.
			q.head.CompareAndSwap(head, next)
			continue
		}
		success := next.item.CompareAndSwap(item, nil)
		q.head.CompareAndSwap(head, next)
		if success {
			return *item, true
		}
	}
}
