package queue

import (
	"fmt"
	"sync/atomic"
)

// RecyclingQueue is the Michael–Scott queue with an explicit node pool and
// stamped references (§10.6): instead of letting the garbage collector
// prevent the ABA problem, every node reference is a (index, stamp) pair
// packed in one word, and dequeued sentinels go back on a Treiber-style
// free list. This is how the algorithm survives in environments without
// GC — and it demonstrates the ABA hazard the rest of this package gets to
// ignore. Values are int64 (and read/written atomically, because a node
// being recycled can legitimately be observed by a stale reader).
//
// The queue holds at most capacity items; Enq reports false when the node
// pool is exhausted.
type RecyclingQueue struct {
	nodes []recycledNode
	head  atomic.Uint64 // stamped reference: stamp<<32 | index+1
	tail  atomic.Uint64
	free  atomic.Uint64 // stamped top of the free list
}

type recycledNode struct {
	value atomic.Int64
	next  atomic.Uint64 // stamped reference; index -1 means nil
}

// Stamped-reference packing: the low 32 bits hold index+1 (0 = nil), the
// high 32 a version stamp incremented on every CAS, so a recycled node
// never compares equal to its previous life.
func packRef(index int, stamp uint32) uint64 {
	return uint64(stamp)<<32 | uint64(uint32(index+1))
}

func unpackRef(ref uint64) (index int, stamp uint32) {
	return int(uint32(ref)) - 1, uint32(ref >> 32)
}

// NewRecyclingQueue returns an empty queue backed by a pool of capacity+1
// nodes (one is the sentinel).
func NewRecyclingQueue(capacity int) *RecyclingQueue {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: recycling capacity must be positive, got %d", capacity))
	}
	q := &RecyclingQueue{nodes: make([]recycledNode, capacity+1)}
	// Node 0 is the initial sentinel; 1..capacity go on the free list.
	q.head.Store(packRef(0, 0))
	q.tail.Store(packRef(0, 0))
	q.nodes[0].next.Store(packRef(-1, 0))
	for i := 1; i <= capacity; i++ {
		next := packRef(-1, 0)
		if i < capacity {
			next = packRef(i+1, 0)
		}
		q.nodes[i].next.Store(next)
	}
	q.free.Store(packRef(1, 0))
	return q
}

// allocNode pops a node off the free list, returning -1 when exhausted.
func (q *RecyclingQueue) allocNode() int {
	for {
		top := q.free.Load()
		idx, stamp := unpackRef(top)
		if idx < 0 {
			return -1
		}
		next := q.nodes[idx].next.Load()
		nextIdx, _ := unpackRef(next)
		if q.free.CompareAndSwap(top, packRef(nextIdx, stamp+1)) {
			return idx
		}
	}
}

// freeNode pushes a node back on the free list.
func (q *RecyclingQueue) freeNode(idx int) {
	for {
		top := q.free.Load()
		topIdx, stamp := unpackRef(top)
		// Bump the node's own stamp as it is reborn.
		_, nodeStamp := unpackRef(q.nodes[idx].next.Load())
		q.nodes[idx].next.Store(packRef(topIdx, nodeStamp+1))
		if q.free.CompareAndSwap(top, packRef(idx, stamp+1)) {
			return
		}
	}
}

// Enq appends x, reporting false when the node pool is exhausted.
func (q *RecyclingQueue) Enq(x int64) bool {
	idx := q.allocNode()
	if idx < 0 {
		return false
	}
	node := &q.nodes[idx]
	node.value.Store(x)
	// Terminate the node: keep bumping its stamp, clear the index.
	_, nodeStamp := unpackRef(node.next.Load())
	node.next.Store(packRef(-1, nodeStamp+1))

	for {
		tailRef := q.tail.Load()
		tailIdx, tailStamp := unpackRef(tailRef)
		nextRef := q.nodes[tailIdx].next.Load()
		nextIdx, nextStamp := unpackRef(nextRef)
		if tailRef != q.tail.Load() {
			continue
		}
		if nextIdx < 0 {
			if q.nodes[tailIdx].next.CompareAndSwap(nextRef, packRef(idx, nextStamp+1)) {
				q.tail.CompareAndSwap(tailRef, packRef(idx, tailStamp+1))
				return true
			}
		} else {
			q.tail.CompareAndSwap(tailRef, packRef(nextIdx, tailStamp+1))
		}
	}
}

// Deq removes the head, reporting false when the queue is empty. The
// outgoing sentinel goes back to the free pool — the step that would be an
// ABA time bomb without the stamps.
func (q *RecyclingQueue) Deq() (int64, bool) {
	for {
		headRef := q.head.Load()
		headIdx, headStamp := unpackRef(headRef)
		tailRef := q.tail.Load()
		tailIdx, tailStamp := unpackRef(tailRef)
		nextRef := q.nodes[headIdx].next.Load()
		nextIdx, _ := unpackRef(nextRef)
		if headRef != q.head.Load() {
			continue
		}
		if headIdx == tailIdx {
			if nextIdx < 0 {
				return 0, false
			}
			q.tail.CompareAndSwap(tailRef, packRef(nextIdx, tailStamp+1))
			continue
		}
		value := q.nodes[nextIdx].value.Load()
		if q.head.CompareAndSwap(headRef, packRef(nextIdx, headStamp+1)) {
			q.freeNode(headIdx)
			return value, true
		}
	}
}

// Capacity reports the maximum number of queued items.
func (q *RecyclingQueue) Capacity() int { return len(q.nodes) - 1 }
