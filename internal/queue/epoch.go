package queue

import (
	"sync/atomic"

	"amp/internal/epoch"
)

// EpochQueue is the Michael & Scott queue of Fig. 10.9–10.11 with
// epoch-based node recycling instead of GC-fed allocation: the shape the
// algorithm takes between the GC-reliant LockFreeQueue and the
// fixed-pool RecyclingQueue. Every operation runs pinned to an
// epoch.Domain slot, which rules out both use-after-reuse and the ABA
// problem — a node read while pinned cannot be recycled until the pin is
// released — so the queue needs neither counted pointers nor the
// garbage collector, keeps unbounded capacity, and stops allocating once
// the node pool is warm.
//
// A retired node's value is only overwritten when the node is reused
// (stale pinned readers may still load it), so a dequeued value of a
// pointerful T stays reachable until its node cycles back around.
type EpochQueue[T any] struct {
	dom  *epoch.Domain
	head atomic.Pointer[eqNode[T]]
	tail atomic.Pointer[eqNode[T]]
}

type eqNode[T any] struct {
	value T
	next  atomic.Pointer[eqNode[T]]
}

var _ Queue[int] = (*EpochQueue[int])(nil)

// NewEpochQueue returns an empty queue with its own reclamation domain.
func NewEpochQueue[T any]() *EpochQueue[T] {
	q := &EpochQueue[T]{dom: epoch.NewDomain(1)}
	sentinel := &eqNode[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// node returns a recycled node reset for reuse, or a fresh one while the
// pool is cold.
func (q *EpochQueue[T]) node(s *epoch.Slot, x T) *eqNode[T] {
	if r := s.Alloc(0); r != nil {
		n := r.(*eqNode[T])
		n.value = x
		n.next.Store(nil)
		return n
	}
	return &eqNode[T]{value: x}
}

// Enq appends x. The CAS structure is exactly Fig. 10.10 — the pin is
// what makes the uncounted pointers safe against recycling.
func (q *EpochQueue[T]) Enq(x T) {
	s := q.dom.Pin()
	n := q.node(s, x)
	for {
		last := q.tail.Load()
		next := last.next.Load()
		if last != q.tail.Load() {
			continue
		}
		if next == nil {
			if last.next.CompareAndSwap(nil, n) {
				q.tail.CompareAndSwap(last, n)
				q.dom.Unpin(s)
				return
			}
		} else {
			q.tail.CompareAndSwap(last, next) // help the lagging tail
		}
	}
}

// Deq removes the head, reporting false when the queue is empty. The
// outgoing sentinel is retired to the domain, not dropped for the GC.
func (q *EpochQueue[T]) Deq() (T, bool) {
	s := q.dom.Pin()
	for {
		first := q.head.Load()
		last := q.tail.Load()
		next := first.next.Load()
		if first != q.head.Load() {
			continue
		}
		if first == last {
			if next == nil {
				q.dom.Unpin(s)
				var zero T
				return zero, false
			}
			q.tail.CompareAndSwap(last, next) // help the lagging tail
			continue
		}
		value := next.value
		if q.head.CompareAndSwap(first, next) {
			s.Retire(0, first)
			q.dom.Unpin(s)
			return value, true
		}
	}
}
