package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// White-box tests: drive the Michael–Scott queue through the awkward
// intermediate states a stalled thread can leave behind, and check that
// other threads help it forward — the essence of lock-freedom.

// lagTail simulates a thread that linked its node after the tail but
// stalled before swinging the tail pointer.
func lagTail(q *LockFreeQueue[int], value int) {
	node := &unboundedNode[int]{value: value}
	last := q.tail.Load()
	for !last.next.CompareAndSwap(nil, node) {
		last = last.next.Load()
	}
	// Deliberately do NOT update q.tail: the enqueuer "stalled" here.
}

func TestLockFreeQueueEnqHelpsLaggingTail(t *testing.T) {
	q := NewLockFreeQueue[int]()
	q.Enq(1)
	lagTail(q, 2)
	// Another enqueuer must help the tail forward and still succeed.
	q.Enq(3)
	for want := 1; want <= 3; want++ {
		v, ok := q.Deq()
		if !ok || v != want {
			t.Fatalf("Deq = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := q.Deq(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestLockFreeQueueDeqHelpsLaggingTail(t *testing.T) {
	q := NewLockFreeQueue[int]()
	lagTail(q, 7) // head == tail but tail lags behind a real node
	v, ok := q.Deq()
	if !ok || v != 7 {
		t.Fatalf("Deq = (%d,%v), want (7,true)", v, ok)
	}
	if _, ok := q.Deq(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestLockFreeQueueManyStalledEnqueuers(t *testing.T) {
	// A stalled enqueuer must never block other threads for long: progress
	// with a permanently lagging tail, repeatedly.
	q := NewLockFreeQueue[int]()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if i%50 == 25 {
					lagTail(q, base+i)
				} else {
					q.Enq(base + i)
				}
			}
		}(w * 1000)
	}
	wg.Wait()
	seen := make(map[int]bool)
	for {
		v, ok := q.Deq()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d dequeued twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 4*200 {
		t.Fatalf("drained %d values, want %d", len(seen), 4*200)
	}
}

func TestRecyclingQueueSequentialFIFO(t *testing.T) {
	q := NewRecyclingQueue(8)
	if q.Capacity() != 8 {
		t.Fatalf("Capacity = %d, want 8", q.Capacity())
	}
	if _, ok := q.Deq(); ok {
		t.Fatal("Deq on empty queue reported ok")
	}
	// Several fill/drain rounds force every node through the free list.
	for round := 0; round < 5; round++ {
		for i := int64(0); i < 8; i++ {
			if !q.Enq(int64(round)*100 + i) {
				t.Fatalf("round %d: Enq(%d) refused below capacity", round, i)
			}
		}
		if q.Enq(999) {
			t.Fatal("Enq succeeded beyond capacity")
		}
		for i := int64(0); i < 8; i++ {
			v, ok := q.Deq()
			if !ok || v != int64(round)*100+i {
				t.Fatalf("round %d: Deq = (%d,%v), want (%d,true)", round, v, ok, int64(round)*100+i)
			}
		}
	}
}

func TestRecyclingQueueConcurrent(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		perProd   = 2000
	)
	q := NewRecyclingQueue(64)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		received = make(map[int64]bool)
		got      atomic.Int64
	)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := int64(p)*1_000_000 + int64(i)
				for !q.Enq(v) {
					runtime.Gosched() // pool exhausted; wait for consumers
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for got.Load() < producers*perProd {
				v, ok := q.Deq()
				if !ok {
					runtime.Gosched()
					continue
				}
				got.Add(1)
				mu.Lock()
				if received[v] {
					t.Errorf("value %d received twice (ABA?)", v)
				}
				received[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(received) != producers*perProd {
		t.Fatalf("received %d distinct values, want %d", len(received), producers*perProd)
	}
}

func TestRecyclingQueueStampsAdvance(t *testing.T) {
	// After a node cycles through the free list, references to it must
	// carry a different stamp — the ABA defense itself.
	q := NewRecyclingQueue(2)
	q.Enq(1)
	before := q.head.Load()
	q.Deq()
	q.Enq(2)
	q.Deq()
	after := q.head.Load()
	_, s1 := unpackRef(before)
	_, s2 := unpackRef(after)
	if s1 == s2 {
		t.Fatalf("head stamp did not advance across recycles: %d", s1)
	}
}

func TestRecyclingQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRecyclingQueue(0) did not panic")
		}
	}()
	NewRecyclingQueue(0)
}
