package queue

import (
	"sync"
	"sync/atomic"
)

// UnboundedQueue is the two-lock unbounded total queue of Fig. 10.8: an
// enqueue holds only the enqueue lock, a dequeue only the dequeue lock.
// Because the queue never fills, the locks never interact through a
// condition; an empty dequeue simply reports false.
type UnboundedQueue[T any] struct {
	enqLock sync.Mutex
	deqLock sync.Mutex
	// head/tail point into a list whose boundary node's next field crosses
	// between the two lock domains, so next is atomic.
	head *unboundedNode[T]
	tail *unboundedNode[T]
}

type unboundedNode[T any] struct {
	value T
	next  atomic.Pointer[unboundedNode[T]]
}

var _ Queue[int] = (*UnboundedQueue[int])(nil)

// NewUnboundedQueue returns an empty queue.
func NewUnboundedQueue[T any]() *UnboundedQueue[T] {
	q := &UnboundedQueue[T]{}
	sentinel := &unboundedNode[T]{}
	q.head = sentinel
	q.tail = sentinel
	return q
}

// Enq appends x under the enqueue lock.
func (q *UnboundedQueue[T]) Enq(x T) {
	e := &unboundedNode[T]{value: x}
	q.enqLock.Lock()
	q.tail.next.Store(e)
	q.tail = e
	q.enqLock.Unlock()
}

// Deq removes the head under the dequeue lock, reporting false when empty.
func (q *UnboundedQueue[T]) Deq() (T, bool) {
	var zero T
	q.deqLock.Lock()
	next := q.head.next.Load()
	if next == nil {
		q.deqLock.Unlock()
		return zero, false
	}
	result := next.value
	q.head = next
	q.deqLock.Unlock()
	return result, true
}

// LockFreeQueue is the Michael & Scott queue (Fig. 10.9–10.11). Enq links a
// node after the tail and then swings the tail; because the two steps are
// distinct CASes, every operation is prepared to find the tail lagging and
// help it forward. The Go GC rules out the ABA problem that makes the
// original C version need counted pointers.
type LockFreeQueue[T any] struct {
	head atomic.Pointer[unboundedNode[T]]
	tail atomic.Pointer[unboundedNode[T]]
}

var _ Queue[int] = (*LockFreeQueue[int])(nil)

// NewLockFreeQueue returns an empty queue.
func NewLockFreeQueue[T any]() *LockFreeQueue[T] {
	q := &LockFreeQueue[T]{}
	sentinel := &unboundedNode[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enq appends x.
func (q *LockFreeQueue[T]) Enq(x T) {
	node := &unboundedNode[T]{value: x}
	for {
		last := q.tail.Load()
		next := last.next.Load()
		if last != q.tail.Load() {
			continue
		}
		if next == nil {
			if last.next.CompareAndSwap(nil, node) {
				q.tail.CompareAndSwap(last, node)
				return
			}
		} else {
			q.tail.CompareAndSwap(last, next) // help the lagging tail
		}
	}
}

// Deq removes the head, reporting false when the queue is empty.
func (q *LockFreeQueue[T]) Deq() (T, bool) {
	for {
		first := q.head.Load()
		last := q.tail.Load()
		next := first.next.Load()
		if first != q.head.Load() {
			continue
		}
		if first == last {
			if next == nil {
				var zero T
				return zero, false
			}
			q.tail.CompareAndSwap(last, next) // help the lagging tail
			continue
		}
		value := next.value
		if q.head.CompareAndSwap(first, next) {
			return value, true
		}
	}
}
