package queue

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// boundedNode is a singly linked node; next is written by enqueuers (under
// enqLock) and read by dequeuers after an atomic size edge.
type boundedNode[T any] struct {
	value T
	next  *boundedNode[T]
}

// BoundedQueue is the blocking bounded queue of Fig. 10.3–10.5: one lock
// for each end so an enqueuer and a dequeuer never contend, an atomic size
// shared between them, and a condition per lock for full/empty waits.
type BoundedQueue[T any] struct {
	capacity int
	size     atomic.Int64

	enqLock sync.Mutex
	notFull *sync.Cond
	tail    *boundedNode[T]

	deqLock  sync.Mutex
	notEmpty *sync.Cond
	head     *boundedNode[T]
}

var _ Queue[int] = (*BoundedQueue[int])(nil)

// NewBoundedQueue returns an empty queue holding at most capacity items.
func NewBoundedQueue[T any](capacity int) *BoundedQueue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: bounded capacity must be positive, got %d", capacity))
	}
	q := &BoundedQueue[T]{capacity: capacity}
	sentinel := &boundedNode[T]{}
	q.head = sentinel
	q.tail = sentinel
	q.notFull = sync.NewCond(&q.enqLock)
	q.notEmpty = sync.NewCond(&q.deqLock)
	return q
}

// Enq appends x, blocking while the queue is full. If the queue was empty,
// it wakes sleeping dequeuers after releasing the enqueue lock.
func (q *BoundedQueue[T]) Enq(x T) {
	mustWakeDequeuers := false
	q.enqLock.Lock()
	for q.size.Load() == int64(q.capacity) {
		q.notFull.Wait()
	}
	e := &boundedNode[T]{value: x}
	q.tail.next = e
	q.tail = e
	if q.size.Add(1) == 1 {
		mustWakeDequeuers = true
	}
	q.enqLock.Unlock()

	if mustWakeDequeuers {
		q.deqLock.Lock()
		q.notEmpty.Broadcast()
		q.deqLock.Unlock()
	}
}

// Deq removes and returns the head, blocking while the queue is empty. The
// boolean is always true; it exists to satisfy the Queue interface.
func (q *BoundedQueue[T]) Deq() (T, bool) {
	var result T
	mustWakeEnqueuers := false
	q.deqLock.Lock()
	for q.size.Load() == 0 {
		q.notEmpty.Wait()
	}
	result = q.head.next.value
	q.head = q.head.next
	if q.size.Add(-1) == int64(q.capacity)-1 {
		mustWakeEnqueuers = true
	}
	q.deqLock.Unlock()

	if mustWakeEnqueuers {
		q.enqLock.Lock()
		q.notFull.Broadcast()
		q.enqLock.Unlock()
	}
	return result, true
}

// TryDeq removes the head only if the queue is nonempty, without blocking.
func (q *BoundedQueue[T]) TryDeq() (T, bool) {
	var zero T
	mustWakeEnqueuers := false
	q.deqLock.Lock()
	if q.size.Load() == 0 {
		q.deqLock.Unlock()
		return zero, false
	}
	result := q.head.next.value
	q.head = q.head.next
	if q.size.Add(-1) == int64(q.capacity)-1 {
		mustWakeEnqueuers = true
	}
	q.deqLock.Unlock()

	if mustWakeEnqueuers {
		q.enqLock.Lock()
		q.notFull.Broadcast()
		q.enqLock.Unlock()
	}
	return result, true
}

// Size reports the current number of queued items.
func (q *BoundedQueue[T]) Size() int { return int(q.size.Load()) }

// Capacity reports the maximum number of queued items.
func (q *BoundedQueue[T]) Capacity() int { return q.capacity }
