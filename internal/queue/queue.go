// Package queue implements the Chapter 10 concurrent queues:
//
//   - BoundedQueue: the two-lock blocking bounded queue (Fig. 10.3–10.5)
//   - UnboundedQueue: the two-lock unbounded "total" queue (Fig. 10.8)
//   - LockFreeQueue: the Michael & Scott nonblocking queue (Fig. 10.9–10.11)
//   - SynchronousQueue: monitor-based rendezvous (Fig. 10.15)
//   - SynchronousDualQueue: the lock-free dual queue (Fig. 10.16–10.17)
//   - ChanQueue: a Go-channel baseline for the benchmarks
//
// Deq is "total" everywhere the book's deq throws EmptyException: it
// returns ok=false instead. The blocking queues block, as in the book.
package queue

// Queue is a FIFO pool. Deq reports ok=false when the queue is observed
// empty (total semantics); blocking implementations never return false.
type Queue[T any] interface {
	Enq(x T)
	Deq() (T, bool)
}

// ChanQueue adapts a buffered Go channel to the Queue interface; it is the
// "what the runtime gives you" baseline in experiment E4.
type ChanQueue[T any] struct {
	ch chan T
}

var _ Queue[int] = (*ChanQueue[int])(nil)

// NewChanQueue returns a channel-backed queue with the given buffer.
func NewChanQueue[T any](capacity int) *ChanQueue[T] {
	if capacity <= 0 {
		panic("queue: ChanQueue capacity must be positive")
	}
	return &ChanQueue[T]{ch: make(chan T, capacity)}
}

// Enq blocks while the buffer is full.
func (q *ChanQueue[T]) Enq(x T) { q.ch <- x }

// Deq returns the head, or ok=false when the buffer is empty.
func (q *ChanQueue[T]) Deq() (T, bool) {
	select {
	case v := <-q.ch:
		return v, true
	default:
		var zero T
		return zero, false
	}
}
