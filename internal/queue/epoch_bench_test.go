package queue

import "testing"

// BenchmarkEpochQueueSteadyEnqDeq is the allocation gate for the epoch
// queue: after a warm-up that fills the node pools, a steady
// Enq/Deq pair must recycle instead of allocate — CI fails the build if
// allocs/op is nonzero.
func BenchmarkEpochQueueSteadyEnqDeq(b *testing.B) {
	q := NewEpochQueue[int]()
	for i := 0; i < 2048; i++ {
		q.Enq(i)
		q.Deq()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enq(i)
		q.Deq()
	}
}

// BenchmarkEpochQueueSteadyParallel exercises the same steady state with
// contended slots: every goroutine keeps one element in flight.
func BenchmarkEpochQueueSteadyParallel(b *testing.B) {
	q := NewEpochQueue[int]()
	for i := 0; i < 4096; i++ {
		q.Enq(i)
		q.Deq()
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Enq(1)
			q.Deq()
		}
	})
}

// BenchmarkLockFreeQueueEnqDeq is the GC-backed baseline the epoch
// variant is measured against (one node allocation per Enq).
func BenchmarkLockFreeQueueEnqDeq(b *testing.B) {
	q := NewLockFreeQueue[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enq(i)
		q.Deq()
	}
}
