package queue

import (
	"fmt"
	"sync/atomic"
)

// HWQueue is the Herlihy–Wing queue used in Chapter 3 to show that a
// linearization point need not be a fixed line of code: enq takes a ticket
// with getAndIncrement and stores into its slot; deq sweeps the slots,
// swapping each with nil until it captures an item. The queue is
// linearizable, but where an enq "takes effect" depends on the dequeuers
// racing with it — the checker in internal/core, not a code comment,
// certifies it.
//
// Enq is wait-free (one ticket, one store). The book's deq retries
// forever on empty; Deq here makes one full sweep and reports false, which
// keeps the Queue interface's total semantics (a failed sweep linearizes
// at its start, when every completed enqueue's slot had been emptied by
// competing dequeuers).
type HWQueue[T any] struct {
	items []atomic.Pointer[T]
	tail  atomic.Int64
}

var _ Queue[int] = (*HWQueue[int])(nil)

// NewHWQueue returns an empty queue with capacity slots. The slot array is
// consumed monotonically: capacity bounds the *total* number of enqueues
// over the queue's lifetime, as in the book's array-based presentation.
func NewHWQueue[T any](capacity int) *HWQueue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: HW queue capacity must be positive, got %d", capacity))
	}
	return &HWQueue[T]{items: make([]atomic.Pointer[T], capacity)}
}

// Enq appends x: take a slot ticket, store the item. Panics when the slot
// array is exhausted.
func (q *HWQueue[T]) Enq(x T) {
	i := q.tail.Add(1) - 1
	if int(i) >= len(q.items) {
		panic("queue: HW queue slot array exhausted")
	}
	q.items[i].Store(&x)
}

// Deq sweeps the slots oldest-first, swapping each with nil; the first
// captured item is the result. One empty sweep reports false.
func (q *HWQueue[T]) Deq() (T, bool) {
	var zero T
	rng := q.tail.Load()
	for i := int64(0); i < rng; i++ {
		if p := q.items[i].Swap(nil); p != nil {
			return *p, true
		}
	}
	return zero, false
}

// Size reports a snapshot count of occupied slots (approximate under
// concurrency).
func (q *HWQueue[T]) Size() int {
	n := 0
	for i := int64(0); i < q.tail.Load(); i++ {
		if q.items[i].Load() != nil {
			n++
		}
	}
	return n
}
