package snapshot

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzSnapshot feeds arbitrary bytes to Decode: it must never panic, and
// any image it accepts must be canonical — re-encoding the decoded state
// reproduces the input exactly, and decoding that reproduction agrees.
// The checked-in corpus (testdata/fuzz/FuzzSnapshot) seeds valid images
// of every shape plus truncated, bit-flipped and version-bumped mutants.
func FuzzSnapshot(f *testing.F) {
	states := []*State{
		{},
		sample(),
		{Set: []int64{1, 2, 3}},
		{Map: []Entry{{Key: "", Val: 0}, {Key: "k", Val: -1}}},
		{Queue: []int64{9}, Stack: []int64{8}, PQ: []int64{7}, Counter: -2, Shards: 16},
	}
	for _, st := range states {
		f.Add(Encode(st))
	}
	good := Encode(sample())
	f.Add(good[:len(good)-7])            // truncated
	f.Add(append([]byte("AMPSNAP9"), 0)) // version bump
	flip := append([]byte(nil), good...)
	flip[11] ^= 0x80
	f.Add(flip) // bit flip under the checksum

	f.Fuzz(func(t *testing.T, b []byte) {
		st, err := Decode(b)
		if err != nil {
			return // rejected, without panicking: fine
		}
		enc := Encode(st)
		if !bytes.Equal(enc, b) {
			t.Fatalf("accepted image is not canonical:\n in  %x\n out %x", b, enc)
		}
		st2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted image failed: %v", err)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatalf("decode/encode/decode drift:\n %+v\n %+v", st, st2)
		}
	})
}
