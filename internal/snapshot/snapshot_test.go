package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func appendChecksum(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func sample() *State {
	return &State{
		Set:     []int64{-3, 0, 7, 1 << 40},
		Map:     []Entry{{Key: "alpha", Val: 1}, {Key: "k:42", Val: -9}, {Key: "π", Val: 1 << 50}},
		Queue:   []int64{10, 20, 30},
		Stack:   []int64{5, 6},
		PQ:      []int64{1, 1, 2},
		Counter: 17,
		Shards:  4,
	}
}

func TestRoundTrip(t *testing.T) {
	for name, st := range map[string]*State{
		"empty":  {},
		"sample": sample(),
		"single": {Set: []int64{1}, Counter: 1, Shards: 1},
	} {
		b := Encode(st)
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, st) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, st)
		}
		// Canonical: re-encoding the decoded state reproduces the bytes.
		if b2 := Encode(got); !reflect.DeepEqual(b, b2) {
			t.Errorf("%s: encode(decode(b)) != b", name)
		}
	}
}

func TestWriteRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.amps")
	st := sample()
	n, err := Write(path, st)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(n) {
		t.Fatalf("Stat after Write: %v (size %d want %d)", err, fi.Size(), n)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Errorf("Write/Read mismatch:\n got %+v\nwant %+v", got, st)
	}
	// No temp files left behind.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("directory has %d entries after Write, want 1", len(ents))
	}
}

func TestDecodeRejects(t *testing.T) {
	good := Encode(sample())
	cases := map[string]struct {
		mutate func([]byte) []byte
		want   error
	}{
		"empty":     {func(b []byte) []byte { return nil }, ErrTruncated},
		"magic":     {func(b []byte) []byte { b[0] = 'X'; return b }, ErrMagic},
		"version":   {func(b []byte) []byte { b[7] = '9'; return b }, ErrVersion},
		"truncated": {func(b []byte) []byte { return b[:len(b)/2] }, nil},
		"bitflip":   {func(b []byte) []byte { b[20] ^= 0x40; return b }, ErrChecksum},
		"trailing":  {func(b []byte) []byte { return append(b, 0) }, ErrChecksum},
	}
	for name, tc := range cases {
		b := tc.mutate(append([]byte(nil), good...))
		_, err := Decode(b)
		if err == nil {
			t.Errorf("%s: Decode accepted a corrupt image", name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.want)
		}
	}
}

// A version bump must error even when the checksum is recomputed to
// match (a pure version check, not a checksum side effect).
func TestDecodeRejectsRechecksummedVersion(t *testing.T) {
	st := sample()
	b := Encode(st)
	b[7] = '0' + Version + 1
	b = b[:len(b)-4]
	b = appendChecksum(b)
	if _, err := Decode(b); !errors.Is(err, ErrVersion) {
		t.Errorf("Decode = %v, want ErrVersion", err)
	}
}

// A hostile count that exceeds the remaining bytes must be rejected
// before allocation, not panic or OOM.
func TestDecodeRejectsHostileCount(t *testing.T) {
	b := []byte(magic)
	b = append(b, '0'+Version)
	b = append(b, secSet)
	for i := 0; i < 8; i++ {
		b = append(b, 0xff) // count ~2^64
	}
	b = appendChecksum(b)
	if _, err := Decode(b); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode = %v, want ErrTruncated", err)
	}
}
