// Package snapshot defines ampserved's point-in-time snapshot format: a
// versioned, checksummed binary image of every command family's logical
// state — set members, string-map entries, queue/stack/pqueue contents,
// and the shared counter. The server collects a State under a full
// quiesce (every shard combiner held at a batch boundary, EXEC commits
// gated), so an encoded snapshot is a consistent cut of the history; see
// internal/server's SAVE/BGSAVE/RESTORE verbs.
//
// The layout is deliberately boring: a 8-byte header (magic "AMPSNAP1"
// where the trailing digit is the format version), one tagged section
// per family — tag byte, little-endian uint64 element count, elements —
// and a trailing CRC32 (IEEE) of everything before it. Integers are
// little-endian int64; strings are uint32-length-prefixed UTF-8 bytes.
// Decode never panics on hostile input: every count is validated against
// the remaining bytes before allocation, and truncation, corruption and
// version skew all surface as errors (ErrTruncated, ErrChecksum,
// ErrVersion, ErrMagic).
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Magic opens every snapshot file; its last byte is the format version.
const (
	magic   = "AMPSNAP"
	Version = 1
)

// Section tags, one per family. Sections appear in tag order, each
// exactly once, so encode(decode(b)) == b for every valid b.
const (
	secSet     byte = 1 // int64 members
	secMap     byte = 2 // (string key, int64 value) entries
	secQueue   byte = 3 // int64 items, front to back
	secStack   byte = 4 // int64 items, bottom to top
	secPQ      byte = 5 // int64 priorities, ascending
	secCounter byte = 6 // exactly one int64: the counter reading
	secShards  byte = 7 // exactly one int64: shard count at save time
)

// Decode errors. Decode wraps them with positional context; test with
// errors.Is.
var (
	ErrMagic     = errors.New("snapshot: bad magic")
	ErrVersion   = errors.New("snapshot: unsupported version")
	ErrTruncated = errors.New("snapshot: truncated")
	ErrChecksum  = errors.New("snapshot: checksum mismatch")
	ErrFormat    = errors.New("snapshot: malformed")
)

// Entry is one string-map key/value pair.
type Entry struct {
	Key string
	Val int64
}

// State is the logical state of every family: what SAVE collects and
// RESTORE reloads. Orders are semantic for Queue (front to back), Stack
// (bottom to top) and PQ (ascending); Set and Map are sorted by the
// encoder's caller for determinism but any order round-trips.
type State struct {
	Set     []int64
	Map     []Entry
	Queue   []int64
	Stack   []int64
	PQ      []int64
	Counter int64
	Shards  int64
}

// maxStr bounds one map key; protocol lines are ≤ 128 bytes so real keys
// are far smaller, and the bound keeps a hostile length prefix from
// driving a huge allocation before the remaining-bytes check.
const maxStr = 1 << 16

// Encode renders the state in the on-disk format (header, sections,
// trailing CRC32).
func Encode(st *State) []byte {
	n := 8 + 4 // header + checksum
	n += 9 + 8*len(st.Set)
	n += 9
	for _, e := range st.Map {
		n += 4 + len(e.Key) + 8
	}
	n += 9 + 8*len(st.Queue)
	n += 9 + 8*len(st.Stack)
	n += 9 + 8*len(st.PQ)
	n += 9 + 8 // counter
	n += 9 + 8 // shards
	buf := make([]byte, 0, n)
	buf = append(buf, magic...)
	buf = append(buf, '0'+Version)
	buf = appendInts(buf, secSet, st.Set)
	buf = appendSection(buf, secMap, len(st.Map))
	for _, e := range st.Map {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Key)))
		buf = append(buf, e.Key...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Val))
	}
	buf = appendInts(buf, secQueue, st.Queue)
	buf = appendInts(buf, secStack, st.Stack)
	buf = appendInts(buf, secPQ, st.PQ)
	buf = appendInts(buf, secCounter, []int64{st.Counter})
	buf = appendInts(buf, secShards, []int64{st.Shards})
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func appendSection(buf []byte, tag byte, count int) []byte {
	buf = append(buf, tag)
	return binary.LittleEndian.AppendUint64(buf, uint64(count))
}

func appendInts(buf []byte, tag byte, vs []int64) []byte {
	buf = appendSection(buf, tag, len(vs))
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

// reader walks the byte image with bounds checks; every primitive read
// reports ErrTruncated instead of slicing past the end.
type reader struct {
	b   []byte
	off int
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, ErrTruncated
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// section checks the tag and returns the validated element count: counts
// larger than the bytes that could possibly remain are rejected before
// any allocation.
func (r *reader) section(tag byte, elemSize int) (int, error) {
	if r.off >= len(r.b) {
		return 0, ErrTruncated
	}
	if r.b[r.off] != tag {
		return 0, fmt.Errorf("%w: expected section %d, found %d at offset %d",
			ErrFormat, tag, r.b[r.off], r.off)
	}
	r.off++
	n, err := r.u64()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(r.b)-r.off)/uint64(elemSize) {
		return 0, fmt.Errorf("%w: section %d count %d exceeds remaining bytes", ErrTruncated, tag, n)
	}
	return int(n), nil
}

func (r *reader) ints(tag byte) ([]int64, error) {
	n, err := r.section(tag, 8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int64, n)
	for i := range out {
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		out[i] = int64(v)
	}
	return out, nil
}

func (r *reader) one(tag byte) (int64, error) {
	vs, err := r.ints(tag)
	if err != nil {
		return 0, err
	}
	if len(vs) != 1 {
		return 0, fmt.Errorf("%w: section %d wants exactly one element, has %d", ErrFormat, tag, len(vs))
	}
	return vs[0], nil
}

// Decode parses and validates one snapshot image. It never panics; any
// deviation from the format — bad magic, unknown version, truncation,
// checksum mismatch, trailing garbage — is an error.
func Decode(b []byte) (*State, error) {
	if len(b) < 8+4 {
		return nil, ErrTruncated
	}
	if string(b[:7]) != magic {
		return nil, ErrMagic
	}
	if b[7] != '0'+Version {
		return nil, fmt.Errorf("%w: %q (want %d)", ErrVersion, b[7], Version)
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrChecksum
	}
	r := &reader{b: body, off: 8}
	st := &State{}
	var err error
	if st.Set, err = r.ints(secSet); err != nil {
		return nil, err
	}
	nmap, err := r.section(secMap, 4+8)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nmap; i++ {
		kl, err := r.u32()
		if err != nil {
			return nil, err
		}
		if kl > maxStr {
			return nil, fmt.Errorf("%w: key length %d", ErrFormat, kl)
		}
		kb, err := r.bytes(int(kl))
		if err != nil {
			return nil, err
		}
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		st.Map = append(st.Map, Entry{Key: string(kb), Val: int64(v)})
	}
	if st.Queue, err = r.ints(secQueue); err != nil {
		return nil, err
	}
	if st.Stack, err = r.ints(secStack); err != nil {
		return nil, err
	}
	if st.PQ, err = r.ints(secPQ); err != nil {
		return nil, err
	}
	if st.Counter, err = r.one(secCounter); err != nil {
		return nil, err
	}
	if st.Shards, err = r.one(secShards); err != nil {
		return nil, err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(body)-r.off)
	}
	return st, nil
}

// Write encodes st to path atomically and durably: temp file in the
// same directory, fsync, rename, then fsync the directory. A reader (or
// a restart) never observes a partial file, and once Write returns nil
// the rename itself survives a power failure — without the directory
// sync the new name could be lost (or the old image resurrected) even
// though the file's own data was synced.
func Write(path string, st *State) (int, error) {
	b := Encode(st)
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return len(b), nil
}

// syncDir fsyncs a directory, making a rename within it crash-durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Read loads and decodes the snapshot at path.
func Read(path string) (*State, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}
