package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amp/internal/core"
)

func TestSemaphoreBounds(t *testing.T) {
	s := NewSemaphore(3)
	if got := s.Available(); got != 3 {
		t.Fatalf("Available = %d, want 3", got)
	}
	var active, maxActive atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Acquire()
				cur := active.Add(1)
				for {
					m := maxActive.Load()
					if cur <= m || maxActive.CompareAndSwap(m, cur) {
						break
					}
				}
				active.Add(-1)
				s.Release()
			}
		}()
	}
	wg.Wait()
	if m := maxActive.Load(); m > 3 {
		t.Fatalf("semaphore admitted %d concurrent holders, capacity 3", m)
	}
	if got := s.Available(); got != 3 {
		t.Fatalf("Available after drain = %d, want 3", got)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	s := NewSemaphore(1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed on full semaphore")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded on empty semaphore")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
	s.Release()
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	s := NewSemaphore(1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	s.Release()
}

func TestSemaphoreZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSemaphore(0) did not panic")
		}
	}()
	NewSemaphore(0)
}

// exerciseRW stress-tests reader/writer exclusion invariants.
func exerciseRW(t *testing.T, l RWLock) {
	t.Helper()
	var (
		readers atomic.Int32
		writers atomic.Int32
		wg      sync.WaitGroup
	)
	check := func() {
		w := writers.Load()
		r := readers.Load()
		if w > 1 {
			t.Errorf("%d concurrent writers", w)
		}
		if w == 1 && r > 0 {
			t.Errorf("writer concurrent with %d readers", r)
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				l.RLock()
				readers.Add(1)
				check()
				readers.Add(-1)
				l.RUnlock()
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 150; j++ {
				l.Lock()
				writers.Add(1)
				check()
				writers.Add(-1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestSimpleRWLockExclusion(t *testing.T) { exerciseRW(t, NewSimpleRWLock()) }
func TestFIFORWLockExclusion(t *testing.T)   { exerciseRW(t, NewFIFORWLock()) }

func TestRWLockConcurrentReaders(t *testing.T) {
	for _, tt := range []struct {
		name string
		l    RWLock
	}{
		{"simple", NewSimpleRWLock()},
		{"fifo", NewFIFORWLock()},
	} {
		t.Run(tt.name, func(t *testing.T) {
			tt.l.RLock()
			done := make(chan struct{})
			go func() {
				tt.l.RLock() // must not block behind another reader
				tt.l.RUnlock()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("second reader blocked behind first")
			}
			tt.l.RUnlock()
		})
	}
}

func TestFIFORWLockWriterBlocksLaterReaders(t *testing.T) {
	l := NewFIFORWLock()
	l.RLock() // an in-flight reader

	writerIn := make(chan struct{})
	go func() {
		l.Lock() // announces writer, then waits for the reader
		close(writerIn)
		l.Unlock()
	}()
	// Wait until the writer has announced itself.
	waitUntil(t, func() bool {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.writer
	})

	readerIn := make(chan struct{})
	go func() {
		l.RLock() // must queue behind the announced writer
		close(readerIn)
		l.RUnlock()
	}()
	select {
	case <-readerIn:
		t.Fatal("later reader overtook an announced writer")
	case <-time.After(50 * time.Millisecond):
	}

	l.RUnlock() // writer may now proceed, then the reader
	select {
	case <-writerIn:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never acquired")
	}
	select {
	case <-readerIn:
	case <-time.After(5 * time.Second):
		t.Fatal("reader never acquired after writer")
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRWLockUnderflowPanics(t *testing.T) {
	for _, tt := range []struct {
		name string
		f    func()
	}{
		{"simple runlock", func() { NewSimpleRWLock().RUnlock() }},
		{"simple unlock", func() { NewSimpleRWLock().Unlock() }},
		{"fifo runlock", func() { NewFIFORWLock().RUnlock() }},
		{"fifo unlock", func() { NewFIFORWLock().Unlock() }},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("underflow did not panic")
				}
			}()
			tt.f()
		})
	}
}

func TestReentrantLockReentry(t *testing.T) {
	l := NewReentrantLock()
	l.Lock(3)
	l.Lock(3) // re-entry must not deadlock
	if got := l.HoldCount(); got != 2 {
		t.Fatalf("HoldCount = %d, want 2", got)
	}
	l.Unlock(3)
	if got := l.HoldCount(); got != 1 {
		t.Fatalf("HoldCount after one unlock = %d, want 1", got)
	}

	// Another thread must wait until holds drain to zero.
	acquired := make(chan struct{})
	go func() {
		l.Lock(4)
		close(acquired)
		l.Unlock(4)
	}()
	select {
	case <-acquired:
		t.Fatal("second thread acquired while first still holds")
	case <-time.After(50 * time.Millisecond):
	}
	l.Unlock(3)
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("second thread never acquired")
	}
}

func TestReentrantLockExclusion(t *testing.T) {
	l := NewReentrantLock()
	var inCS atomic.Int32
	var wg sync.WaitGroup
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Lock(me)
				l.Lock(me)
				if got := inCS.Add(1); got != 1 {
					t.Errorf("reentrant exclusion violated: %d in CS", got)
				}
				inCS.Add(-1)
				l.Unlock(me)
				l.Unlock(me)
			}
		}(core.ThreadID(th))
	}
	wg.Wait()
}

func TestReentrantLockWrongOwnerPanics(t *testing.T) {
	l := NewReentrantLock()
	l.Lock(1)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign unlock did not panic")
		}
		l.Unlock(1)
	}()
	l.Unlock(2)
}
