// Package rwlock implements the Chapter 8 monitor-based synchronization
// objects: a counting semaphore, the simple and FIFO readers–writers locks,
// and a reentrant lock.
//
// The book builds these from Java monitors (a lock plus condition
// variables); the Go rendering uses sync.Mutex + sync.Cond, the direct
// equivalents. Reentrancy needs a notion of thread identity, which Go
// lacks, so ReentrantLock takes explicit core.ThreadID handles.
package rwlock

import (
	"fmt"
	"sync"

	"amp/internal/core"
)

// Semaphore is the counting semaphore of §8.5: Acquire blocks while the
// count is zero, Release wakes a waiter.
type Semaphore struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	state    int
}

// NewSemaphore returns a semaphore with the given initial (and maximum)
// capacity.
func NewSemaphore(capacity int) *Semaphore {
	if capacity <= 0 {
		panic(fmt.Sprintf("rwlock: semaphore capacity must be positive, got %d", capacity))
	}
	s := &Semaphore{capacity: capacity, state: capacity}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire takes one permit, blocking until one is available.
func (s *Semaphore) Acquire() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.state == 0 {
		s.cond.Wait()
	}
	s.state--
}

// TryAcquire takes a permit only if one is immediately available.
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == 0 {
		return false
	}
	s.state--
	return true
}

// Release returns one permit. Releasing beyond capacity panics: it always
// indicates an acquire/release pairing bug.
func (s *Semaphore) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == s.capacity {
		panic("rwlock: semaphore released above capacity")
	}
	s.state++
	s.cond.Signal()
}

// Available reports the current number of free permits.
func (s *Semaphore) Available() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// RWLock is a readers–writers lock: many concurrent readers or one writer.
type RWLock interface {
	RLock()
	RUnlock()
	Lock()
	Unlock()
}

// SimpleRWLock is the simple readers–writers lock of Fig. 8.7. Readers can
// starve the writer: a continuous stream of readers keeps the count
// positive forever. TestWriterPriority contrasts this with FIFORWLock.
type SimpleRWLock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	readers int
	writer  bool
}

var _ RWLock = (*SimpleRWLock)(nil)

// NewSimpleRWLock returns an unlocked readers–writers lock.
func NewSimpleRWLock() *SimpleRWLock {
	l := &SimpleRWLock{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// RLock acquires the lock for reading.
func (l *SimpleRWLock) RLock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.writer {
		l.cond.Wait()
	}
	l.readers++
}

// RUnlock releases a read acquisition.
func (l *SimpleRWLock) RUnlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.readers == 0 {
		panic("rwlock: RUnlock without RLock")
	}
	l.readers--
	if l.readers == 0 {
		l.cond.Broadcast()
	}
}

// Lock acquires the lock for writing.
func (l *SimpleRWLock) Lock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.writer {
		l.cond.Wait()
	}
	l.writer = true
	for l.readers > 0 {
		l.cond.Wait()
	}
}

// Unlock releases a write acquisition.
func (l *SimpleRWLock) Unlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.writer {
		panic("rwlock: Unlock without Lock")
	}
	l.writer = false
	l.cond.Broadcast()
}

// FIFORWLock is the fair readers–writers lock of Fig. 8.8: a writer that
// has announced itself blocks later readers, so writers cannot starve
// behind a reader stream.
type FIFORWLock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	readers int // readers currently holding the lock
	writer  bool
}

var _ RWLock = (*FIFORWLock)(nil)

// NewFIFORWLock returns an unlocked fair readers–writers lock.
func NewFIFORWLock() *FIFORWLock {
	l := &FIFORWLock{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// RLock acquires for reading, waiting out any announced writer.
func (l *FIFORWLock) RLock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.writer {
		l.cond.Wait()
	}
	l.readers++
}

// RUnlock releases a read acquisition.
func (l *FIFORWLock) RUnlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.readers == 0 {
		panic("rwlock: RUnlock without RLock")
	}
	l.readers--
	if l.readers == 0 {
		l.cond.Broadcast()
	}
}

// Lock announces the writer immediately (blocking later readers), then
// waits for in-flight readers to drain.
func (l *FIFORWLock) Lock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.writer {
		l.cond.Wait()
	}
	l.writer = true // announce: later RLock calls now queue behind us
	for l.readers > 0 {
		l.cond.Wait()
	}
}

// Unlock releases a write acquisition.
func (l *FIFORWLock) Unlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.writer {
		panic("rwlock: Unlock without Lock")
	}
	l.writer = false
	l.cond.Broadcast()
}

// ReentrantLock is the lock of Fig. 8.12: a thread that holds the lock may
// re-acquire it; the lock is freed when holds return to zero. Thread
// identity is an explicit core.ThreadID.
type ReentrantLock struct {
	mu    sync.Mutex
	cond  *sync.Cond
	owner core.ThreadID
	holds int
}

// NewReentrantLock returns an unlocked reentrant lock.
func NewReentrantLock() *ReentrantLock {
	l := &ReentrantLock{owner: -1}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Lock acquires the lock for me, immediately if me already owns it.
func (l *ReentrantLock) Lock(me core.ThreadID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.owner == me && l.holds > 0 {
		l.holds++
		return
	}
	for l.holds > 0 {
		l.cond.Wait()
	}
	l.owner = me
	l.holds = 1
}

// Unlock releases one hold; the last release frees the lock.
func (l *ReentrantLock) Unlock(me core.ThreadID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.holds == 0 || l.owner != me {
		panic(fmt.Sprintf("rwlock: thread %d unlocking a lock it does not hold", me))
	}
	l.holds--
	if l.holds == 0 {
		l.cond.Signal()
	}
}

// HoldCount reports how many times the current owner holds the lock.
func (l *ReentrantLock) HoldCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.holds
}
