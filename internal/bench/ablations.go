package bench

import (
	"fmt"
	"math/rand"
	"time"

	"amp/internal/core"
	"amp/internal/hashset"
	"amp/internal/spin"
	"amp/internal/stack"
	"amp/internal/stm"
)

// Ablations are design-choice sweeps: each varies one tuning knob the book
// (or this implementation) had to pick, holding the workload fixed.
// Run them with `ampbench -run A1` etc.
var Ablations = []Experiment{
	{
		ID:          "A1",
		Title:       "elimination stack: array width",
		Description: "push/pop throughput vs elimination-array width (Ch. 11 tuning)",
		Run:         runA1,
	},
	{
		ID:          "A2",
		Title:       "backoff lock: delay window",
		Description: "critical-section throughput vs max backoff delay (Ch. 7 tuning)",
		Run:         runA2,
	},
	{
		ID:          "A3",
		Title:       "STM engine and contention manager",
		Description: "TL2 locks vs obstruction-free DSTM (aggressive/backoff CM) (Ch. 18)",
		Run:         runA3,
	},
	{
		ID:          "A4",
		Title:       "hash set stripe count",
		Description: "90/9/1 mix vs number of lock stripes (Ch. 13 tuning)",
		Run:         runA4,
	},
}

// AllAndAblations returns the primary experiments followed by ablations.
func AllAndAblations() []Experiment {
	out := make([]Experiment, 0, len(All)+len(Ablations))
	out = append(out, All...)
	out = append(out, Ablations...)
	return out
}

func runA1(cfg Config) *SeriesTable {
	t := NewSeriesTable("A1", "elimination stack: array width", "threads", "ops/ms", cfg.Threads)
	for _, n := range cfg.Threads {
		for _, width := range []int{1, 2, 4, 8} {
			s := stack.NewEliminationBackoffStackSized[int](width, 50*time.Microsecond)
			r := StackPairs(s, n, cfg.Ops)
			t.Add(fmt.Sprintf("width=%d", width), r.Throughput())
		}
	}
	t.Note("wider arrays spread colliders; too wide and partners miss each other")
	return t
}

func runA2(cfg Config) *SeriesTable {
	t := NewSeriesTable("A2", "backoff lock: delay window", "threads", "ops/ms", cfg.Threads)
	for _, n := range cfg.Threads {
		for _, maxDelay := range []time.Duration{
			8 * time.Microsecond,
			64 * time.Microsecond,
			512 * time.Microsecond,
			4096 * time.Microsecond,
		} {
			l := spin.NewBackoffLockWindow(n, time.Microsecond, maxDelay)
			r := CriticalSections(l, n, cfg.Ops, 8)
			t.Add(fmt.Sprintf("max=%v", maxDelay), r.Throughput())
		}
	}
	t.Note("too small a cap keeps the hot spot hot; too large strands the lock idle")
	return t
}

func runA3(cfg Config) *SeriesTable {
	t := NewSeriesTable("A3", "STM engine comparison", "threads", "tx/ms", cfg.Threads)
	const accounts = 64
	ops := cfg.Ops / 2
	for _, n := range cfg.Threads {
		// TL2-style lock-based engine.
		tl2 := stm.New()
		tl2Acct := make([]*stm.TVar[int], accounts)
		for i := range tl2Acct {
			tl2Acct[i] = stm.NewTVar(1000)
		}
		r := Measure(n, ops, func(_ core.ThreadID, rng *rand.Rand, _ int) {
			from, to := rng.Intn(accounts), rng.Intn(accounts)
			if from == to {
				to = (to + 1) % accounts
			}
			tl2.Atomic(func(tx *stm.Tx) {
				f := tl2Acct[from].Get(tx)
				tl2Acct[from].Set(tx, f-1)
				tl2Acct[to].Set(tx, tl2Acct[to].Get(tx)+1)
			})
		})
		t.Add("tl2-locks", r.Throughput())

		for _, engine := range []struct {
			name string
			s    *stm.OFSTM
		}{
			{"of-aggressive", stm.NewOF()},
			{"of-backoff", stm.NewOF(stm.WithContentionManager(func() stm.ContentionManager {
				return &stm.BackoffManager{}
			}))},
		} {
			acct := make([]*stm.OFTVar[int], accounts)
			for i := range acct {
				acct[i] = stm.NewOFTVar(1000)
			}
			r := Measure(n, ops, func(_ core.ThreadID, rng *rand.Rand, _ int) {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				engine.s.Atomic(func(tx *stm.OFTx) {
					f := acct[from].Get(tx)
					acct[from].Set(tx, f-1)
					acct[to].Set(tx, acct[to].Get(tx)+1)
				})
			})
			t.Add(engine.name, r.Throughput())
			if n == cfg.Threads[len(cfg.Threads)-1] {
				total := engine.s.Commits() + engine.s.Aborts()
				if total > 0 {
					t.Note("%s abort rate at %d threads: %.1f%%", engine.name, n,
						100*float64(engine.s.Aborts())/float64(total))
				}
			}
		}
	}
	return t
}

func runA4(cfg Config) *SeriesTable {
	t := NewSeriesTable("A4", "hash set stripe count", "threads", "ops/ms", cfg.Threads)
	mix := SetMix{ContainsPct: 90, AddPct: 9, KeyRange: 4096}
	for _, n := range cfg.Threads {
		for _, stripes := range []int{2, 16, 128, 1024} {
			s := hashset.NewStripedHashSet(stripes)
			mix.Prefill(s)
			r := mix.Run(s, n, cfg.Ops)
			t.Add(fmt.Sprintf("stripes=%d", stripes), r.Throughput())
		}
	}
	t.Note("stripes trade memory for independence; past the thread count they buy nothing")
	return t
}
