package bench

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"amp/internal/core"
)

func TestMeasureCountsOps(t *testing.T) {
	r := Measure(3, 100, func(_ core.ThreadID, _ *rand.Rand, _ int) {})
	if r.Ops != 300 {
		t.Fatalf("Ops = %d, want 300", r.Ops)
	}
	if r.Throughput() <= 0 {
		t.Fatalf("Throughput = %f, want positive", r.Throughput())
	}
}

func TestSeriesTableFormat(t *testing.T) {
	tb := NewSeriesTable("EX", "demo", "threads", "ops/ms", []int{1, 2})
	tb.Add("a", 1.5)
	tb.Add("b", 2.5)
	tb.Add("a", 3.5)
	tb.Add("b", math.NaN())
	tb.Note("footnote %d", 7)
	out := tb.Format()
	for _, want := range []string{"EX — demo", "threads", "a", "b", "1.5", "3.5", "-", "footnote 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesTableWinner(t *testing.T) {
	tb := NewSeriesTable("EX", "demo", "threads", "ops/ms", []int{1})
	tb.Add("slow", 1)
	tb.Add("fast", 10)
	if got := tb.Winner(); got != "fast" {
		t.Fatalf("Winner = %q, want fast", got)
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Fatal("E1 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 unexpectedly found")
	}
	seen := make(map[string]bool)
	for _, e := range All {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" || e.Description == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if len(All) != 15 {
		t.Fatalf("expected 15 experiments, have %d", len(All))
	}
}

// TestExperimentsRunTiny smoke-tests every experiment end to end at a tiny
// scale: tables come back fully populated.
func TestExperimentsRunTiny(t *testing.T) {
	tiny := Config{Threads: []int{1, 2}, Ops: 60}
	for _, e := range AllAndAblations() {
		t.Run(e.ID, func(t *testing.T) {
			tb := e.Run(tiny)
			if tb.ID != e.ID {
				t.Fatalf("table ID %q != experiment ID %q", tb.ID, e.ID)
			}
			if len(tb.Names) == 0 {
				t.Fatal("no series produced")
			}
			for _, name := range tb.Names {
				if len(tb.Data[name]) != len(tb.X) {
					t.Fatalf("series %q has %d samples for %d x values",
						name, len(tb.Data[name]), len(tb.X))
				}
			}
			if out := tb.Format(); !strings.Contains(out, e.ID) {
				t.Fatalf("formatted table missing ID:\n%s", out)
			}
		})
	}
}

func TestSetMixPrefill(t *testing.T) {
	mix := SetMix{ContainsPct: 90, AddPct: 9, KeyRange: 16}
	s := newCountingSet()
	mix.Prefill(s)
	if s.adds != 8 {
		t.Fatalf("prefill inserted %d keys, want 8", s.adds)
	}
}

// countingSet is a trivial Set recording call counts.
type countingSet struct {
	adds, removes, contains int
	m                       map[int]bool
}

func newCountingSet() *countingSet { return &countingSet{m: make(map[int]bool)} }

func (s *countingSet) Add(x int) bool {
	s.adds++
	if s.m[x] {
		return false
	}
	s.m[x] = true
	return true
}

func (s *countingSet) Remove(x int) bool {
	s.removes++
	if !s.m[x] {
		return false
	}
	delete(s.m, x)
	return true
}

func (s *countingSet) Contains(x int) bool {
	s.contains++
	return s.m[x]
}
