// Package bench is the measurement harness behind EXPERIMENTS.md: workload
// generators, thread sweeps, and table formatting for every figure and
// table the library reproduces (experiments E1–E14 in DESIGN.md).
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"amp/internal/core"
)

// Result is one measured cell: total operations over elapsed wall time,
// plus the heap allocations the run cost.
type Result struct {
	Ops     int64
	Elapsed time.Duration
	// Allocs is the process-wide heap-object allocation delta across the
	// run (runtime.MemStats.Mallocs). The counter is global, so
	// concurrent background work inflates it; within the harness the
	// measured workload dominates.
	Allocs uint64
}

// Throughput reports operations per millisecond.
func (r Result) Throughput() float64 {
	return PerMilli(r.Ops, r.Elapsed)
}

// AllocsPerOp reports heap allocations per operation.
func (r Result) AllocsPerOp() float64 {
	if r.Ops <= 0 {
		return 0
	}
	return float64(r.Allocs) / float64(r.Ops)
}

// PerMilli reports count per millisecond of elapsed time, resolving well
// below one millisecond.
func PerMilli(count int64, elapsed time.Duration) float64 {
	ms := elapsed.Seconds() * 1000
	if ms <= 0 {
		ms = 1e-6
	}
	return float64(count) / ms
}

// Measure runs fn concurrently on `threads` goroutines, each performing
// `opsPerThread` operations, and reports the aggregate throughput. fn
// receives a dense thread ID and a private RNG.
func Measure(threads, opsPerThread int, fn func(me core.ThreadID, rng *rand.Rand, op int)) Result {
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
	)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(me)*2654435761 + 1))
			<-start
			for op := 0; op < opsPerThread; op++ {
				fn(me, rng, op)
			}
		}(core.ThreadID(th))
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	began := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(began)
	runtime.ReadMemStats(&after)
	return Result{
		Ops:     int64(threads) * int64(opsPerThread),
		Elapsed: elapsed,
		Allocs:  after.Mallocs - before.Mallocs,
	}
}

// SeriesTable is one experiment's output: a family of named series sampled
// over a shared x axis (usually thread counts), in the shape of the paper's
// figures.
type SeriesTable struct {
	ID     string
	Title  string
	XLabel string
	Unit   string
	X      []int
	Names  []string // series display order
	Data   map[string][]float64
	// AllocData holds an optional allocs/op series per name; when any
	// series is present, Format renders a second block.
	AllocData map[string][]float64
	Notes     []string
}

// NewSeriesTable returns an empty table over the given x axis.
func NewSeriesTable(id, title, xlabel, unit string, x []int) *SeriesTable {
	return &SeriesTable{
		ID:        id,
		Title:     title,
		XLabel:    xlabel,
		Unit:      unit,
		X:         x,
		Data:      make(map[string][]float64),
		AllocData: make(map[string][]float64),
	}
}

// Add appends a sample to the named series, registering the series on first
// use.
func (t *SeriesTable) Add(name string, value float64) {
	if _, ok := t.Data[name]; !ok {
		t.Names = append(t.Names, name)
	}
	t.Data[name] = append(t.Data[name], value)
}

// AddAlloc appends an allocs/op sample to the named series. The series
// shares the x axis with the throughput series of the same name.
func (t *SeriesTable) AddAlloc(name string, allocsPerOp float64) {
	if t.AllocData == nil {
		t.AllocData = make(map[string][]float64)
	}
	t.AllocData[name] = append(t.AllocData[name], allocsPerOp)
}

// Note attaches a footnote printed under the table.
func (t *SeriesTable) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table with aligned columns.
func (t *SeriesTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", t.ID, t.Title, t.Unit)
	width := 14
	for _, n := range t.Names {
		if len(n)+2 > width {
			width = len(n) + 2
		}
	}
	fmt.Fprintf(&b, "%-10s", t.XLabel)
	for _, n := range t.Names {
		fmt.Fprintf(&b, "%*s", width, n)
	}
	b.WriteByte('\n')
	for i, x := range t.X {
		fmt.Fprintf(&b, "%-10d", x)
		for _, n := range t.Names {
			series := t.Data[n]
			if i < len(series) && !math.IsNaN(series[i]) {
				fmt.Fprintf(&b, "%*.1f", width, series[i])
			} else {
				fmt.Fprintf(&b, "%*s", width, "-")
			}
		}
		b.WriteByte('\n')
	}
	if len(t.AllocData) > 0 {
		fmt.Fprintf(&b, "%s — %s (allocs/op)\n", t.ID, t.Title)
		fmt.Fprintf(&b, "%-10s", t.XLabel)
		for _, n := range t.Names {
			fmt.Fprintf(&b, "%*s", width, n)
		}
		b.WriteByte('\n')
		for i, x := range t.X {
			fmt.Fprintf(&b, "%-10d", x)
			for _, n := range t.Names {
				series := t.AllocData[n]
				if i < len(series) && !math.IsNaN(series[i]) {
					fmt.Fprintf(&b, "%*.2f", width, series[i])
				} else {
					fmt.Fprintf(&b, "%*s", width, "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", note)
	}
	return b.String()
}

// Winner reports the series with the highest value at the largest x.
func (t *SeriesTable) Winner() string {
	best, bestV := "", -1.0
	names := append([]string(nil), t.Names...)
	sort.Strings(names)
	for _, n := range names {
		s := t.Data[n]
		if len(s) == 0 {
			continue
		}
		if v := s[len(s)-1]; v > bestV {
			best, bestV = n, v
		}
	}
	return best
}
