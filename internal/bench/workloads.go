package bench

import (
	"math/rand"
	"sync/atomic"

	"amp/internal/core"
	"amp/internal/counting"
	"amp/internal/list"
	"amp/internal/pqueue"
	"amp/internal/queue"
	"amp/internal/stack"
)

// SetMix is the canonical set workload of Chapters 9/13/14: a percentage
// mix of contains/add/remove over a bounded key range, with the set
// prefilled to half the range so adds and removes both succeed often.
type SetMix struct {
	ContainsPct int // e.g. 90
	AddPct      int // e.g. 9; RemovePct is the remainder
	KeyRange    int
}

// DefaultSetMix is the 90/9/1 read-dominated mix the book's figures use.
var DefaultSetMix = SetMix{ContainsPct: 90, AddPct: 9, KeyRange: 256}

// Prefill inserts every other key so the set starts half full.
func (m SetMix) Prefill(s list.Set) {
	for k := 0; k < m.KeyRange; k += 2 {
		s.Add(k)
	}
}

// Run measures the mix over the set.
func (m SetMix) Run(s list.Set, threads, opsPerThread int) Result {
	return Measure(threads, opsPerThread, func(_ core.ThreadID, rng *rand.Rand, _ int) {
		k := rng.Intn(m.KeyRange)
		switch p := rng.Intn(100); {
		case p < m.ContainsPct:
			s.Contains(k)
		case p < m.ContainsPct+m.AddPct:
			s.Add(k)
		default:
			s.Remove(k)
		}
	})
}

// QueuePairs measures alternating enqueue/dequeue pairs, the Chapter 10
// workload: every thread enqueues then dequeues, keeping the queue short
// and the ends contended.
func QueuePairs(q queue.Queue[int], threads, opsPerThread int) Result {
	return Measure(threads, opsPerThread, func(me core.ThreadID, _ *rand.Rand, op int) {
		if op%2 == 0 {
			q.Enq(int(me)<<20 | op)
		} else {
			q.Deq()
		}
	})
}

// StackPairs measures alternating push/pop pairs (Chapter 11).
func StackPairs(s stack.Stack[int], threads, opsPerThread int) Result {
	return Measure(threads, opsPerThread, func(me core.ThreadID, _ *rand.Rand, op int) {
		if op%2 == 0 {
			s.Push(int(me)<<20 | op)
		} else {
			s.Pop()
		}
	})
}

// CounterIncrements measures getAndIncrement throughput (Chapter 12).
func CounterIncrements(c counting.Counter, threads, opsPerThread int) Result {
	return Measure(threads, opsPerThread, func(me core.ThreadID, _ *rand.Rand, _ int) {
		c.GetAndIncrement(me)
	})
}

// lockLike is the shape shared by spin.Lock and mutex.Lock.
type lockLike interface {
	Lock(me core.ThreadID)
	Unlock(me core.ThreadID)
}

// CriticalSections measures a tiny critical section guarded by the lock
// (Chapters 2 and 7): shared counter increment plus a little local work to
// mimic the book's "critical section + think time" loop. The think-time
// result is published to a shared atomic so the loop cannot be optimized
// away.
func CriticalSections(l lockLike, threads, opsPerThread, localWork int) Result {
	var shared int64
	var sink atomic.Int64
	return Measure(threads, opsPerThread, func(me core.ThreadID, _ *rand.Rand, _ int) {
		l.Lock(me)
		shared++
		l.Unlock(me)
		local := int64(0)
		for i := 0; i < localWork; i++ {
			local += int64(i)
		}
		sink.Store(local)
	})
}

// PQueueMix measures a add/removeMin mix over priorities [0, keyRange)
// (Chapter 15).
func PQueueMix(q pqueue.PQueue, threads, opsPerThread, keyRange int) Result {
	return Measure(threads, opsPerThread, func(_ core.ThreadID, rng *rand.Rand, op int) {
		if op%2 == 0 {
			q.Add(rng.Intn(keyRange))
		} else {
			q.RemoveMin()
		}
	})
}
