package bench

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"amp/internal/barrier"
	"amp/internal/consensus"
	"amp/internal/core"
	"amp/internal/counting"
	"amp/internal/hashset"
	"amp/internal/list"
	"amp/internal/mutex"
	"amp/internal/pqueue"
	"amp/internal/queue"
	"amp/internal/register"
	"amp/internal/skiplist"
	"amp/internal/spin"
	"amp/internal/stack"
	"amp/internal/steal"
	"amp/internal/stm"
)

// Config scales an experiment run.
type Config struct {
	// Threads is the x axis of every sweep.
	Threads []int
	// Ops is the per-thread operation count at each cell; individual
	// experiments scale it down where an operation is inherently heavy.
	Ops int
}

// Quick is the configuration used by `go test -bench` and `ampbench -quick`.
var Quick = Config{Threads: []int{1, 2, 4, 8}, Ops: 2000}

// Full is the configuration for `ampbench -full`.
var Full = Config{Threads: []int{1, 2, 4, 8, 16, 32}, Ops: 20000}

// Experiment reproduces one of the book's figures (see DESIGN.md).
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(cfg Config) *SeriesTable
}

// All lists every experiment in DESIGN.md order.
var All = []Experiment{
	{
		ID:          "E1",
		Title:       "spin-lock scalability",
		Description: "critical-section throughput per lock as threads grow (Ch. 7 figures)",
		Run:         runE1,
	},
	{
		ID:          "E2",
		Title:       "classical mutual exclusion",
		Description: "Peterson/Filter/Bakery/tournament cost (Ch. 2, implemented)",
		Run:         runE2,
	},
	{
		ID:          "E3",
		Title:       "list-based sets",
		Description: "90/9/1 contains/add/remove over list sets (Ch. 9 figures)",
		Run:         runE3,
	},
	{
		ID:          "E4",
		Title:       "queues",
		Description: "enq/deq pairs: two-lock vs Michael–Scott vs channel (Ch. 10 figures)",
		Run:         runE4,
	},
	{
		ID:          "E5",
		Title:       "stacks",
		Description: "push/pop pairs: lock vs Treiber vs elimination (Ch. 11 figures)",
		Run:         runE5,
	},
	{
		ID:          "E6",
		Title:       "shared counting",
		Description: "getAndIncrement: CAS vs lock vs combining vs networks (Ch. 12 figures)",
		Run:         runE6,
	},
	{
		ID:          "E7",
		Title:       "hash sets",
		Description: "90/9/1 mix with resizing across hash sets (Ch. 13 figures)",
		Run:         runE7,
	},
	{
		ID:          "E8",
		Title:       "skiplist sets",
		Description: "90/9/1 mix: lazy vs lock-free skiplist vs lazy list (Ch. 14 figures)",
		Run:         runE8,
	},
	{
		ID:          "E9",
		Title:       "priority queues",
		Description: "add/removeMin mix across priority queues (Ch. 15 figures)",
		Run:         runE9,
	},
	{
		ID:          "E10",
		Title:       "work distribution",
		Description: "fork/join task tree: stealing vs sharing vs single queue (Ch. 16 figures)",
		Run:         runE10,
	},
	{
		ID:          "E11",
		Title:       "barriers",
		Description: "barrier phases per ms across barrier designs (Ch. 17 figures)",
		Run:         runE11,
	},
	{
		ID:          "E12",
		Title:       "software transactional memory",
		Description: "bank transfers: STM vs coarse vs fine locks, plus abort rate (Ch. 18 figures)",
		Run:         runE12,
	},
	{
		ID:          "E13",
		Title:       "universal construction overhead",
		Description: "queue via consensus universality vs direct Michael–Scott (Ch. 6, implemented)",
		Run:         runE13,
	},
	{
		ID:          "E14",
		Title:       "atomic snapshots",
		Description: "wait-free vs collect-twice vs mutex snapshot (Ch. 4, implemented)",
		Run:         runE14,
	},
	{
		ID:          "E16",
		Title:       "epoch-based node recycling",
		Description: "GC-backed vs epoch-recycled queue/list/skiplist: throughput and allocs/op (internal/epoch)",
		Run:         runE16,
	},
}

// ByID returns the experiment (primary or ablation) with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range AllAndAblations() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func runE1(cfg Config) *SeriesTable {
	t := NewSeriesTable("E1", "spin-lock scalability", "threads", "ops/ms", cfg.Threads)
	locks := []struct {
		name string
		mk   func(capacity int) lockLike
	}{
		{"TAS", func(int) lockLike { return &spin.TASLock{} }},
		{"TTAS", func(int) lockLike { return &spin.TTASLock{} }},
		{"Backoff", func(c int) lockLike { return spin.NewBackoffLock(c) }},
		{"ALock", func(c int) lockLike { return spin.NewALock(c) }},
		{"CLH", func(c int) lockLike { return spin.NewCLHLock(c) }},
		{"MCS", func(c int) lockLike { return spin.NewMCSLock(c) }},
		{"sync.Mutex", func(int) lockLike { return &spin.StdMutex{} }},
	}
	for _, n := range cfg.Threads {
		for _, l := range locks {
			r := CriticalSections(l.mk(n), n, cfg.Ops, 8)
			t.Add(l.name, r.Throughput())
		}
	}
	return t
}

func runE2(cfg Config) *SeriesTable {
	t := NewSeriesTable("E2", "classical mutual exclusion", "threads", "ops/ms", cfg.Threads)
	for _, n := range cfg.Threads {
		if n <= 2 {
			r := CriticalSections(&mutex.Peterson{}, n, cfg.Ops, 8)
			t.Add("Peterson", r.Throughput())
		} else {
			t.Add("Peterson", math.NaN()) // two-thread algorithm
		}
		pow2 := n
		if pow2&(pow2-1) != 0 || pow2 < 2 {
			pow2 = nextPow2(n)
		}
		for _, l := range []struct {
			name string
			lk   lockLike
		}{
			{"Filter", mutex.NewFilter(max(2, n))},
			{"Bakery", mutex.NewBakery(max(1, n))},
			{"Tournament", mutex.NewTournament(pow2)},
			{"sync.Mutex", &spin.StdMutex{}},
		} {
			r := CriticalSections(l.lk, n, cfg.Ops, 8)
			t.Add(l.name, r.Throughput())
		}
	}
	t.Note("Peterson is defined for two threads only")
	return t
}

func runE3(cfg Config) *SeriesTable {
	t := NewSeriesTable("E3", "list-based sets, 90/9/1 mix", "threads", "ops/ms", cfg.Threads)
	mix := SetMix{ContainsPct: 90, AddPct: 9, KeyRange: 128}
	sets := []struct {
		name string
		mk   func() list.Set
	}{
		{"coarse", func() list.Set { return list.NewCoarseList() }},
		{"fine", func() list.Set { return list.NewFineList() }},
		{"optimistic", func() list.Set { return list.NewOptimisticList() }},
		{"lazy", func() list.Set { return list.NewLazyList() }},
		{"lockfree", func() list.Set { return list.NewLockFreeList() }},
	}
	ops := cfg.Ops / 2
	for _, n := range cfg.Threads {
		for _, s := range sets {
			set := s.mk()
			mix.Prefill(set)
			r := mix.Run(set, n, ops)
			t.Add(s.name, r.Throughput())
		}
	}
	return t
}

func runE4(cfg Config) *SeriesTable {
	t := NewSeriesTable("E4", "queue throughput, enq/deq pairs", "threads", "ops/ms", cfg.Threads)
	for _, n := range cfg.Threads {
		queues := []struct {
			name string
			q    queue.Queue[int]
		}{
			{"two-lock", queue.NewUnboundedQueue[int]()},
			{"michael-scott", queue.NewLockFreeQueue[int]()},
			{"channel", queue.NewChanQueue[int](1 << 16)},
		}
		for _, qq := range queues {
			r := QueuePairs(qq.q, n, cfg.Ops)
			t.Add(qq.name, r.Throughput())
		}
	}
	return t
}

func runE5(cfg Config) *SeriesTable {
	t := NewSeriesTable("E5", "stack throughput, push/pop pairs", "threads", "ops/ms", cfg.Threads)
	for _, n := range cfg.Threads {
		stacks := []struct {
			name string
			s    stack.Stack[int]
		}{
			{"locked", stack.NewLockedStack[int]()},
			{"treiber", stack.NewLockFreeStack[int]()},
			{"elimination", stack.NewEliminationBackoffStack[int]()},
		}
		for _, ss := range stacks {
			r := StackPairs(ss.s, n, cfg.Ops)
			t.Add(ss.name, r.Throughput())
		}
	}
	return t
}

func runE6(cfg Config) *SeriesTable {
	t := NewSeriesTable("E6", "shared counting", "threads", "ops/ms", cfg.Threads)
	for _, n := range cfg.Threads {
		counters := []struct {
			name string
			c    counting.Counter
		}{
			{"cas", &counting.CASCounter{}},
			{"lock", &counting.LockCounter{}},
			{"combining", counting.NewCombiningTree(max(2, n))},
			{"bitonic[8]", counting.NewNetworkCounter(counting.NewBitonic(8))},
			{"periodic[8]", counting.NewNetworkCounter(counting.NewPeriodic(8))},
		}
		for _, cc := range counters {
			r := CounterIncrements(cc.c, n, cfg.Ops)
			t.Add(cc.name, r.Throughput())
		}
	}
	return t
}

func runE7(cfg Config) *SeriesTable {
	t := NewSeriesTable("E7", "hash sets, 90/9/1 mix", "threads", "ops/ms", cfg.Threads)
	mix := SetMix{ContainsPct: 90, AddPct: 9, KeyRange: 4096}
	sets := []struct {
		name string
		mk   func() hashset.Set
	}{
		{"coarse", func() hashset.Set { return hashset.NewCoarseHashSet(16) }},
		{"striped", func() hashset.Set { return hashset.NewStripedHashSet(64) }},
		{"refinable", func() hashset.Set { return hashset.NewRefinableHashSet(16) }},
		{"lockfree", func() hashset.Set { return hashset.NewLockFreeHashSet() }},
		{"cuckoo-striped", func() hashset.Set { return hashset.NewStripedCuckooHashSet(64) }},
	}
	for _, n := range cfg.Threads {
		for _, s := range sets {
			set := s.mk()
			mix.Prefill(set)
			r := mix.Run(set, n, cfg.Ops)
			t.Add(s.name, r.Throughput())
		}
	}
	return t
}

func runE8(cfg Config) *SeriesTable {
	t := NewSeriesTable("E8", "skiplist sets, 90/9/1 mix", "threads", "ops/ms", cfg.Threads)
	mix := SetMix{ContainsPct: 90, AddPct: 9, KeyRange: 1024}
	ops := cfg.Ops / 4
	sets := []struct {
		name string
		mk   func() list.Set
	}{
		{"lazy-skip", func() list.Set { return skiplist.NewLazySkipList() }},
		{"lockfree-skip", func() list.Set { return skiplist.NewLockFreeSkipList() }},
		{"lazy-list", func() list.Set { return list.NewLazyList() }},
	}
	for _, n := range cfg.Threads {
		for _, s := range sets {
			set := s.mk()
			mix.Prefill(set)
			r := mix.Run(set, n, ops)
			t.Add(s.name, r.Throughput())
		}
	}
	t.Note("lazy-list is the O(n) Chapter 9 baseline the skiplists improve on")
	return t
}

func runE9(cfg Config) *SeriesTable {
	t := NewSeriesTable("E9", "priority queues, add/removeMin", "threads", "ops/ms", cfg.Threads)
	const keyRange = 64
	for _, n := range cfg.Threads {
		qs := []struct {
			name string
			q    pqueue.PQueue
		}{
			{"locked-heap", pqueue.NewLockedHeap()},
			{"fine-heap", pqueue.NewFineGrainedHeap(1 << 18)},
			{"skip-queue", pqueue.NewSkipQueue()},
			{"linear", pqueue.NewSimpleLinear(keyRange)},
			{"tree", pqueue.NewSimpleTree(keyRange)},
		}
		for _, qq := range qs {
			r := PQueueMix(qq.q, n, cfg.Ops/2, keyRange)
			t.Add(qq.name, r.Throughput())
		}
	}
	return t
}

func runE10(cfg Config) *SeriesTable {
	t := NewSeriesTable("E10", "work distribution, fork/join tree", "workers", "tasks/ms", cfg.Threads)
	depth := 12 // 2^13-1 tasks
	if cfg.Ops < 5000 {
		depth = 10
	}
	totalTasks := float64(int64(2)<<depth - 1)
	for _, n := range cfg.Threads {
		for _, ex := range []struct {
			name string
			e    steal.Executor
		}{
			{"stealing", steal.NewStealingExecutor(n)},
			{"sharing", steal.NewSharingExecutor(n)},
			{"single-queue", steal.NewSingleQueueExecutor(n)},
		} {
			var leaves atomic.Int64
			var tree func(d int) steal.Task
			tree = func(d int) steal.Task {
				return func(s steal.Spawner) {
					if d == 0 {
						leaves.Add(1)
						return
					}
					s.Spawn(tree(d - 1))
					s.Spawn(tree(d - 1))
				}
			}
			start := time.Now()
			ex.e.Run(tree(depth))
			elapsed := time.Since(start)
			t.Add(ex.name, PerMilli(int64(totalTasks), elapsed))
		}
	}
	return t
}

func runE11(cfg Config) *SeriesTable {
	threads := make([]int, 0, len(cfg.Threads))
	for _, n := range cfg.Threads {
		if n >= 2 && n&(n-1) == 0 {
			threads = append(threads, n) // tree barriers want powers of two
		}
	}
	t := NewSeriesTable("E11", "barrier phases", "threads", "phases/ms", threads)
	rounds := cfg.Ops / 10
	for _, n := range threads {
		for _, bb := range []struct {
			name string
			b    barrier.Barrier
		}{
			{"sense", barrier.NewSenseBarrier(n)},
			{"tree[2]", barrier.NewTreeBarrier(n, 2)},
			{"static[2]", barrier.NewStaticTreeBarrier(n, 2)},
			{"dissemination", barrier.NewDisseminationBarrier(n)},
		} {
			r := Measure(n, rounds, func(me core.ThreadID, _ *rand.Rand, _ int) {
				bb.b.Await(me)
			})
			t.Add(bb.name, PerMilli(int64(rounds), r.Elapsed))
		}
	}
	return t
}

func runE12(cfg Config) *SeriesTable {
	t := NewSeriesTable("E12", "STM bank transfers", "threads", "transfers/ms", cfg.Threads)
	const accounts = 64
	ops := cfg.Ops / 2
	for _, n := range cfg.Threads {
		// STM.
		s := stm.New()
		acct := make([]*stm.TVar[int], accounts)
		for i := range acct {
			acct[i] = stm.NewTVar(1000)
		}
		r := Measure(n, ops, func(_ core.ThreadID, rng *rand.Rand, _ int) {
			from, to := rng.Intn(accounts), rng.Intn(accounts)
			if from == to {
				to = (to + 1) % accounts
			}
			s.Atomic(func(tx *stm.Tx) {
				f := acct[from].Get(tx)
				acct[from].Set(tx, f-1)
				acct[to].Set(tx, acct[to].Get(tx)+1)
			})
		})
		t.Add("stm", r.Throughput())
		if n == cfg.Threads[len(cfg.Threads)-1] {
			total := s.Commits() + s.Aborts()
			if total > 0 {
				t.Note("stm abort rate at %d threads: %.1f%%", n, 100*float64(s.Aborts())/float64(total))
			}
		}

		// Coarse lock.
		var mu spin.StdMutex
		balances := make([]int, accounts)
		r = Measure(n, ops, func(me core.ThreadID, rng *rand.Rand, _ int) {
			from, to := rng.Intn(accounts), rng.Intn(accounts)
			if from == to {
				to = (to + 1) % accounts
			}
			mu.Lock(me)
			balances[from]--
			balances[to]++
			mu.Unlock(me)
		})
		t.Add("coarse-lock", r.Throughput())

		// Fine per-account locks, ordered to avoid deadlock.
		fine := newFineBank(accounts)
		r = Measure(n, ops, func(_ core.ThreadID, rng *rand.Rand, _ int) {
			from, to := rng.Intn(accounts), rng.Intn(accounts)
			if from == to {
				to = (to + 1) % accounts
			}
			fine.transfer(from, to)
		})
		t.Add("fine-locks", r.Throughput())
	}
	return t
}

func runE13(cfg Config) *SeriesTable {
	t := NewSeriesTable("E13", "universal construction overhead", "threads", "ops/ms", cfg.Threads)
	ops := max(1, cfg.Ops/20) // the log replay is quadratic in total ops
	for _, n := range cfg.Threads {
		lf := consensus.NewLFUniversal(core.QueueModel(), n)
		r := Measure(n, ops, func(me core.ThreadID, _ *rand.Rand, op int) {
			if op%2 == 0 {
				lf.Apply(me, "enq", op)
			} else {
				lf.Apply(me, "deq", nil)
			}
		})
		t.Add("lf-universal", r.Throughput())

		wf := consensus.NewWFUniversal(core.QueueModel(), n)
		r = Measure(n, ops, func(me core.ThreadID, _ *rand.Rand, op int) {
			if op%2 == 0 {
				wf.Apply(me, "enq", op)
			} else {
				wf.Apply(me, "deq", nil)
			}
		})
		t.Add("wf-universal", r.Throughput())

		q := queue.NewLockFreeQueue[int]()
		r = QueuePairs(q, n, ops)
		t.Add("direct-msqueue", r.Throughput())
	}
	t.Note("universal constructions replay the whole log per operation; the gap IS the result")
	return t
}

func runE14(cfg Config) *SeriesTable {
	t := NewSeriesTable("E14", "atomic snapshots", "threads", "ops/ms", cfg.Threads)
	ops := cfg.Ops / 2
	for _, n := range cfg.Threads {
		for _, ss := range []struct {
			name string
			s    register.Snapshot
		}{
			{"wait-free", register.NewWFSnapshot(max(1, n))},
			{"collect-twice", register.NewSimpleSnapshot(max(1, n))},
			{"mutex", register.NewMutexSnapshot(max(1, n))},
		} {
			r := Measure(n, ops, func(me core.ThreadID, _ *rand.Rand, op int) {
				if op%4 == 0 {
					ss.s.Scan(me)
				} else {
					ss.s.Update(me, int64(op))
				}
			})
			t.Add(ss.name, r.Throughput())
		}
	}
	return t
}

// fineBank is the per-account-lock baseline for E12.
type fineBank struct {
	locks    []spin.StdMutex
	balances []int
}

func newFineBank(n int) *fineBank {
	return &fineBank{locks: make([]spin.StdMutex, n), balances: make([]int, n)}
}

func (b *fineBank) transfer(from, to int) {
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	b.locks[lo].Lock(0)
	b.locks[hi].Lock(0)
	b.balances[from]--
	b.balances[to]++
	b.locks[hi].Unlock(0)
	b.locks[lo].Unlock(0)
}

func nextPow2(n int) int {
	p := 2
	for p < n {
		p *= 2
	}
	return p
}

// runE16 compares the GC-backed lock-free structures with their
// epoch-recycled twins on an update-heavy workload, reporting throughput
// and allocs/op side by side. Each structure is warmed with one
// single-threaded pre-pass so the epoch pools are populated before
// measurement — the steady state the server reaches after its first
// seconds of traffic.
func runE16(cfg Config) *SeriesTable {
	t := NewSeriesTable("E16", "epoch-based node recycling, update-heavy", "threads", "ops/ms", cfg.Threads)
	mix := SetMix{ContainsPct: 0, AddPct: 50, KeyRange: 128}
	warmSet := func(s list.Set) {
		for i := 0; i < 4096; i++ {
			s.Add(i % mix.KeyRange)
			s.Remove(i % mix.KeyRange)
		}
	}
	for _, n := range cfg.Threads {
		q := queue.NewLockFreeQueue[int]()
		r := QueuePairs(q, n, cfg.Ops)
		t.Add("queue-gc", r.Throughput())
		t.AddAlloc("queue-gc", r.AllocsPerOp())

		eq := queue.NewEpochQueue[int]()
		for i := 0; i < 4096; i++ {
			eq.Enq(i)
			eq.Deq()
		}
		r = QueuePairs(eq, n, cfg.Ops)
		t.Add("queue-epoch", r.Throughput())
		t.AddAlloc("queue-epoch", r.AllocsPerOp())

		ll := list.NewLockFreeList()
		mix.Prefill(ll)
		r = mix.Run(ll, n, cfg.Ops/2)
		t.Add("list-gc", r.Throughput())
		t.AddAlloc("list-gc", r.AllocsPerOp())

		el := list.NewEpochList()
		mix.Prefill(el)
		warmSet(el)
		r = mix.Run(el, n, cfg.Ops/2)
		t.Add("list-epoch", r.Throughput())
		t.AddAlloc("list-epoch", r.AllocsPerOp())

		ls := skiplist.NewLockFreeSkipList()
		mix.Prefill(ls)
		r = mix.Run(ls, n, cfg.Ops/2)
		t.Add("skip-gc", r.Throughput())
		t.AddAlloc("skip-gc", r.AllocsPerOp())

		es := skiplist.NewEpochSkipList()
		mix.Prefill(es)
		warmSet(es)
		r = mix.Run(es, n, cfg.Ops/2)
		t.Add("skip-epoch", r.Throughput())
		t.AddAlloc("skip-epoch", r.AllocsPerOp())
	}
	t.Note("allocs/op is a process-wide runtime.MemStats delta: harness noise adds a small constant to every cell")
	t.Note("epoch structures are warmed before measurement; go test -bench gates the exact 0 allocs/op claim")
	return t
}
