package strmap

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// CuckooChainMap is the phased concurrent cuckoo map (Fig. 13.21–13.27):
// two tables, two derived hashes, and — the "chain" in the name — each
// nest holds a short probe chain of full-key entries rather than one
// item, so equal-hash keys coexist in a nest and resolve by string
// comparison. Additions past the preferred threshold trigger a relocation
// phase; a fixed stripe of lock pairs guards the two tables, with resizes
// serialized behind every stripe.
//
// Both nests are derived from one base FNV-1a hash (the second by an
// odd-multiplier remix), so two keys with *identical* base hashes share
// both nests and still behave as independent entries — the collision
// guarantee the server-side chaining relies on.
type CuckooChainMap struct {
	hash     func(string) uint64
	locks    [2][]sync.Mutex // fixed stripes, one array per table
	mu       sync.Mutex      // serializes resizes
	cont     atomic.Int64    // contended stripe-pair acquisitions
	capacity int             // guarded by any stripe (readers) / all stripes (resizer)
	table    [2][][]*node    // probe chains
}

var _ Map = (*CuckooChainMap)(nil)

// Probe-set tuning from the book, and the second-nest remix multiplier
// (odd, so the remix is a bijection on uint64).
const (
	cuckooProbeSize      = 4 // entries per probe chain before resize pressure
	cuckooProbeThreshold = 2 // preferred fill before spilling
	cuckooRelocateLimit  = 512

	remix64 = 0xC2B2AE3D27D4EB4F
)

// altHash derives the second nest from the base hash; equal base hashes
// yield equal alternates, keeping colliding keys fully co-resident.
func altHash(h uint64) uint64 { return bits.RotateLeft64(h*remix64, 32) }

// NewCuckooChainMap returns an empty map; the stripe count is fixed at
// the power-of-two initial capacity per table.
func NewCuckooChainMap(capacity int) *CuckooChainMap {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("strmap: cuckoo capacity must be a power of two >= 2, got %d", capacity))
	}
	m := &CuckooChainMap{hash: Hash, capacity: capacity}
	for i := 0; i < 2; i++ {
		m.locks[i] = make([]sync.Mutex, capacity)
		m.table[i] = make([][]*node, capacity)
	}
	return m
}

// nestHash is the hash used by table i for base hash h.
func nestHash(i int, h uint64) uint64 {
	if i == 0 {
		return h
	}
	return altHash(h)
}

func (m *CuckooChainMap) stripe(i int, h uint64) *sync.Mutex {
	return &m.locks[i][nestHash(i, h)&uint64(len(m.locks[i])-1)]
}

// acquire locks the two stripes for base hash h in table order
// (deadlock-free by the fixed order), counting the pair as contended
// when either TryLock probe misses.
func (m *CuckooChainMap) acquire(h uint64) {
	contended := false
	if l := m.stripe(0, h); !l.TryLock() {
		contended = true
		l.Lock()
	}
	if l := m.stripe(1, h); !l.TryLock() {
		contended = true
		l.Lock()
	}
	if contended {
		m.cont.Add(1)
	}
}

// Contention reports stripe-pair acquisitions that found a stripe held.
func (m *CuckooChainMap) Contention() int64 { return m.cont.Load() }

// Range enumerates entries with the resize lock and every stripe held
// until f returns false.
func (m *CuckooChainMap) Range(f func(key string, val int64) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < 2; i++ {
		for k := range m.locks[i] {
			m.locks[i][k].Lock()
		}
	}
	defer func() {
		for i := 0; i < 2; i++ {
			for k := range m.locks[i] {
				m.locks[i][k].Unlock()
			}
		}
	}()
	for i := 0; i < 2; i++ {
		for _, chain := range m.table[i] {
			for _, n := range chain {
				if !f(n.key, n.val) {
					return
				}
			}
		}
	}
}

func (m *CuckooChainMap) release(h uint64) {
	m.stripe(0, h).Unlock()
	m.stripe(1, h).Unlock()
}

func (m *CuckooChainMap) slotIndex(i int, h uint64) int {
	return int(nestHash(i, h) & uint64(m.capacity-1))
}

// findKey scans a probe chain for the full key.
func findKey(chain []*node, h uint64, key string) int {
	for i, n := range chain {
		if n.hash == h && n.key == key {
			return i
		}
	}
	return -1
}

// Get returns the value at key: at most two probe chains.
func (m *CuckooChainMap) Get(key string) (int64, bool) {
	h := m.hash(key)
	m.acquire(h)
	defer m.release(h)
	for i := 0; i < 2; i++ {
		chain := m.table[i][m.slotIndex(i, h)]
		if j := findKey(chain, h, key); j >= 0 {
			return chain[j].val, true
		}
	}
	return 0, false
}

// Del removes key, reporting whether it was present.
func (m *CuckooChainMap) Del(key string) bool {
	h := m.hash(key)
	m.acquire(h)
	defer m.release(h)
	for i := 0; i < 2; i++ {
		idx := m.slotIndex(i, h)
		if j := findKey(m.table[i][idx], h, key); j >= 0 {
			chain := m.table[i][idx]
			m.table[i][idx] = append(chain[:j], chain[j+1:]...)
			return true
		}
	}
	return false
}

// Set maps key to val, reporting whether the key was absent. Following
// Fig. 13.23, an insert that overflows the preferred threshold still
// lands in a probe chain, then a relocation phase rebalances; if
// relocation fails, resize and retry.
func (m *CuckooChainMap) Set(key string, val int64) bool {
	h := m.hash(key)
	m.acquire(h)
	i0, i1 := m.slotIndex(0, h), m.slotIndex(1, h)
	chain0, chain1 := m.table[0][i0], m.table[1][i1]
	if j := findKey(chain0, h, key); j >= 0 {
		chain0[j].val = val
		m.release(h)
		return false
	}
	if j := findKey(chain1, h, key); j >= 0 {
		chain1[j].val = val
		m.release(h)
		return false
	}
	entry := &node{hash: h, key: key, val: val}
	mustRelocate, relTable, relIndex := false, 0, 0
	mustResize := false
	switch {
	case len(chain0) < cuckooProbeThreshold:
		m.table[0][i0] = append(chain0, entry)
	case len(chain1) < cuckooProbeThreshold:
		m.table[1][i1] = append(chain1, entry)
	case len(chain0) < cuckooProbeSize:
		m.table[0][i0] = append(chain0, entry)
		mustRelocate, relTable, relIndex = true, 0, i0
	case len(chain1) < cuckooProbeSize:
		m.table[1][i1] = append(chain1, entry)
		mustRelocate, relTable, relIndex = true, 1, i1
	default:
		mustResize = true
	}
	m.release(h)
	if mustResize {
		m.resize()
		return m.Set(key, val)
	}
	if mustRelocate && !m.relocate(relTable, relIndex) {
		m.resize()
	}
	return true
}

// stripeForSlot returns the stripe covering slot hi of table i. Stripe
// count divides every table capacity, so slot index mod stripe count is
// the covering stripe.
func (m *CuckooChainMap) stripeForSlot(i, hi int) *sync.Mutex {
	return &m.locks[i][hi&(len(m.locks[i])-1)]
}

// peekVictim reads the oldest entry of slot (i, hi) under its stripe.
func (m *CuckooChainMap) peekVictim(i, hi int) (*node, bool) {
	l := m.stripeForSlot(i, hi)
	l.Lock()
	defer l.Unlock()
	chain := m.table[i][hi]
	if len(chain) == 0 {
		return nil, false
	}
	return chain[0], true
}

// relocate drains an over-threshold probe chain by moving its oldest
// entry to the entry's other nest (Fig. 13.27). It reports false when it
// gives up.
func (m *CuckooChainMap) relocate(i, hi int) bool {
	j := 1 - i
	for round := 0; round < cuckooRelocateLimit; round++ {
		y, ok := m.peekVictim(i, hi)
		if !ok {
			return true // chain drained by someone else
		}
		m.acquire(y.hash)
		if hi != m.slotIndex(i, y.hash) {
			// The table was resized between peek and acquire: the slot we
			// were draining no longer exists in this geometry.
			m.release(y.hash)
			return true
		}
		hj := m.slotIndex(j, y.hash)
		iChain := m.table[i][hi]
		jChain := m.table[j][hj]
		yi := findKey(iChain, y.hash, y.key)
		switch {
		case yi >= 0 && len(jChain) < cuckooProbeThreshold:
			m.table[i][hi] = append(iChain[:yi], iChain[yi+1:]...)
			m.table[j][hj] = append(jChain, y)
			done := len(m.table[i][hi]) <= cuckooProbeThreshold
			m.release(y.hash)
			if done {
				return true
			}
		case yi >= 0 && len(jChain) < cuckooProbeSize:
			m.table[i][hi] = append(iChain[:yi], iChain[yi+1:]...)
			m.table[j][hj] = append(jChain, y)
			// The other nest is itself over threshold now: chase it.
			m.release(y.hash)
			i, j = j, i
			hi = hj
		case yi >= 0:
			m.release(y.hash)
			return false // both nests saturated: resize
		default:
			// y moved under us; if our chain is now within threshold, done.
			done := len(iChain) <= cuckooProbeThreshold
			m.release(y.hash)
			if done {
				return true
			}
		}
	}
	return false
}

// resize doubles both tables under the global resize lock, then re-adds
// every entry with all stripes held.
func (m *CuckooChainMap) resize() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < 2; i++ {
		for k := range m.locks[i] {
			m.locks[i][k].Lock()
		}
	}
	defer func() {
		for i := 0; i < 2; i++ {
			for k := range m.locks[i] {
				m.locks[i][k].Unlock()
			}
		}
	}()

	var entries []*node
	for i := 0; i < 2; i++ {
		for _, chain := range m.table[i] {
			entries = append(entries, chain...)
		}
	}
	m.capacity *= 2
	for i := 0; i < 2; i++ {
		m.table[i] = make([][]*node, m.capacity)
	}
	// Sequential re-insertion: all stripes are held, so place each entry
	// in the emptier of its two nests. Probe chains are unbounded slices,
	// so a nest past its preferred size just invites a later relocation.
	for _, n := range entries {
		i0, i1 := m.slotIndex(0, n.hash), m.slotIndex(1, n.hash)
		if len(m.table[0][i0]) <= len(m.table[1][i1]) {
			m.table[0][i0] = append(m.table[0][i0], n)
		} else {
			m.table[1][i1] = append(m.table[1][i1], n)
		}
	}
}
