// Package strmap implements string-keyed concurrent maps: the Chapter 13
// hash-table designs re-run with variable-length keys. Where package
// hashset stores int members, these maps store key→value entries whose
// bucket chains are linked nodes keyed on the *full* string — two keys
// that collide in the hash (or in a bucket) still resolve independently,
// which is what lets ampserved route strings by a 64-bit hash and leave
// collision resolution to the owning shard.
//
//   - CoarseMap: one lock over a chained bucket table (the Fig. 13.2
//     layout with open chaining)
//   - StripedMap: a fixed stripe of locks over a growing table (Fig. 13.6)
//   - RefinableMap: lock stripes that grow with the table (Fig. 13.10)
//   - CuckooChainMap: phased cuckoo hashing with probe-set chains
//     (Fig. 13.21–13.27); each nest holds a short chain of full-key
//     entries instead of one item
//
// Keys are hashed with FNV-1a 64 (exported as Hash so the server can use
// the same function for shard routing); every map keeps the hash function
// in a field so tests can inject colliding hashes.
package strmap

import (
	"fmt"
	"sync/atomic"
)

// Map is the concurrent string→int64 map abstraction served by the
// ampserved HSET/HGET/HDEL family.
type Map interface {
	// Set maps key to val, reporting whether the key was absent (an
	// insert, as opposed to an overwrite).
	Set(key string, val int64) bool
	// Get returns the value at key.
	Get(key string) (int64, bool)
	// Del removes key, reporting whether it was present.
	Del(key string) bool
}

// Every map in the package additionally implements two capabilities the
// adaptive meta-backend discovers by assertion:
//
//	Contention() int64                       // lock-wait / CAS-retry events so far
//	Range(f func(key string, val int64) bool) // enumerate entries; stop on false
//
// Contention counts are cheap monotone signals (a TryLock miss or an
// acquire retry costs one atomic add), not precise wait times. Range
// quiesces the whole structure (all stripes / the writer lock), so it is
// a migration primitive, not a fast iterator.

// FNV-1a 64-bit parameters (the classic offset basis and prime).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash is FNV-1a 64 over the key's bytes. The server folds it into the
// int64 shard-routing key space; the maps use it for bucket selection,
// so routing and chaining agree on one hash.
func Hash(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// node is one chained entry: the full key (collision resolution), its
// cached hash (cheap rehash on growth), and the value. Chains are the
// book's list machinery in miniature — singly linked, searched linearly,
// unlinked by pointer surgery under the covering lock.
type node struct {
	hash uint64
	key  string
	val  int64
	next *node
}

// chainTable is the sequential core shared by the lock-based maps: a
// power-of-two slice of node chains. All methods take the precomputed
// hash so each operation hashes its key exactly once.
type chainTable struct {
	buckets []*node
	size    atomic.Int64 // updated under per-stripe locks, so it must be atomic
}

func newChainTable(capacity int) *chainTable {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("strmap: capacity must be a power of two >= 2, got %d", capacity))
	}
	return &chainTable{buckets: make([]*node, capacity)}
}

// bucketOf masks the hash down to a bucket index. Masking the same low
// bits for every power-of-two size keeps the striped-lock invariant:
// equal bucket index implies equal stripe index for any stripe count
// that divides the table size.
func (t *chainTable) bucketOf(h uint64) int { return int(h & uint64(len(t.buckets)-1)) }

func (t *chainTable) get(h uint64, key string) (int64, bool) {
	for n := t.buckets[t.bucketOf(h)]; n != nil; n = n.next {
		if n.hash == h && n.key == key {
			return n.val, true
		}
	}
	return 0, false
}

// set inserts or overwrites, reporting whether the key was absent.
func (t *chainTable) set(h uint64, key string, val int64) bool {
	b := t.bucketOf(h)
	for n := t.buckets[b]; n != nil; n = n.next {
		if n.hash == h && n.key == key {
			n.val = val
			return false
		}
	}
	t.buckets[b] = &node{hash: h, key: key, val: val, next: t.buckets[b]}
	t.size.Add(1)
	return true
}

func (t *chainTable) del(h uint64, key string) bool {
	b := t.bucketOf(h)
	for p := &t.buckets[b]; *p != nil; p = &(*p).next {
		if n := *p; n.hash == h && n.key == key {
			*p = n.next
			t.size.Add(-1)
			return true
		}
	}
	return false
}

// grow relinks every node into a table twice the size (no reallocation of
// entries: the cached hashes make rehashing pointer surgery).
func (t *chainTable) grow() {
	next := make([]*node, 2*len(t.buckets))
	mask := uint64(len(next) - 1)
	for _, n := range t.buckets {
		for n != nil {
			after := n.next
			b := int(n.hash & mask)
			n.next = next[b]
			next[b] = n
			n = after
		}
	}
	t.buckets = next
}

// policy is the book's resize trigger: average chain length exceeds 4.
func (t *chainTable) policy() bool {
	return t.size.Load()/int64(len(t.buckets)) > 4
}

// rangeEntries calls f for every entry until f returns false. Callers
// must hold whatever locks cover the whole table (the per-map Range
// methods do).
func (t *chainTable) rangeEntries(f func(key string, val int64) bool) {
	for _, n := range t.buckets {
		for ; n != nil; n = n.next {
			if !f(n.key, n.val) {
				return
			}
		}
	}
}
