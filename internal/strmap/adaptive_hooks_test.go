package strmap

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// ranger is the migration capability the adaptive meta-backend asserts.
type ranger interface {
	Range(f func(key string, val int64) bool)
}

// contender is the contention-signal capability.
type contender interface {
	Contention() int64
}

// hookedMaps builds one instance of every map backend; each must expose
// both adaptive capabilities.
func hookedMaps() map[string]Map {
	return map[string]Map{
		"coarse":       NewCoarseMap(16),
		"striped":      NewStripedMap(16),
		"refinable":    NewRefinableMap(16),
		"cuckoo-chain": NewCuckooChainMap(16),
		"epoch":        NewEpochMap(16),
	}
}

// TestRangeEnumeratesAll loads each backend past its resize trigger and
// checks Range yields exactly the live entries — the invariant the
// adaptive migration depends on.
func TestRangeEnumeratesAll(t *testing.T) {
	for name, m := range hookedMaps() {
		t.Run(name, func(t *testing.T) {
			r, ok := m.(ranger)
			if !ok {
				t.Fatalf("%s does not implement Range", name)
			}
			if _, ok := m.(contender); !ok {
				t.Fatalf("%s does not implement Contention", name)
			}
			want := map[string]int64{}
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%03d", i)
				m.Set(k, int64(i))
				want[k] = int64(i)
			}
			for i := 0; i < 500; i += 3 { // deletions must not reappear
				k := fmt.Sprintf("k%03d", i)
				m.Del(k)
				delete(want, k)
			}
			m.Set("k001", -1) // overwrite must show the latest value
			want["k001"] = -1

			got := map[string]int64{}
			r.Range(func(key string, val int64) bool {
				if _, dup := got[key]; dup {
					t.Errorf("Range yielded %q twice", key)
				}
				got[key] = val
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("Range yielded %d entries, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Errorf("Range[%q] = %d, want %d", k, got[k], v)
				}
			}

			// Early stop: the callback's false return ends the walk.
			n := 0
			r.Range(func(string, int64) bool { n++; return n < 3 })
			if n != 3 {
				t.Errorf("early-stop Range made %d calls, want 3", n)
			}

			// The structure stays writable after Range released its locks.
			if !m.Set("after-range", 7) {
				t.Errorf("Set after Range reported overwrite of a fresh key")
			}
		})
	}
}

// TestContentionCounts pins the counter protocol on the backends whose
// blocked waiter increments *before* parking (TryLock miss → Add → Lock):
// a Range callback holds the covering locks, a writer provably blocks
// (its count appears while it waits), then the callback returns and the
// writer completes.
func TestContentionCounts(t *testing.T) {
	cases := map[string]Map{
		"coarse":  NewCoarseMap(16),
		"striped": NewStripedMap(16),
	}
	for name, m := range cases {
		t.Run(name, func(t *testing.T) {
			m.Set("a", 1)
			c := m.(contender)
			if c.Contention() != 0 {
				t.Fatalf("fresh map reports contention %d", c.Contention())
			}
			inRange := make(chan struct{})
			release := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				m.(ranger).Range(func(string, int64) bool {
					close(inRange)
					<-release
					return true
				})
			}()
			<-inRange
			go func() {
				defer wg.Done()
				m.Set("a", 2) // blocks on the lock Range holds
			}()
			deadline := time.Now().Add(5 * time.Second)
			for c.Contention() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("blocked writer never counted as contended")
				}
				time.Sleep(time.Millisecond)
			}
			close(release)
			wg.Wait()
			if v, ok := m.Get("a"); !ok || v != 2 {
				t.Fatalf("Get(a) = %d,%v after contended Set, want 2,true", v, ok)
			}
		})
	}
}
