package strmap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEpochMapLockFreeReaders races continuous Gets against a writer
// that overwrites, deletes and re-inserts hot keys while also pushing
// the table through several growths. Every observed value must be one
// the writer actually published for that key — a torn read (a value
// from another key, or a half-written node) fails immediately. Run
// under -race this is also the memory-model check for the RCU
// publication discipline.
func TestEpochMapLockFreeReaders(t *testing.T) {
	m := NewEpochMap(2)
	const hot = 4
	// Hot-key values encode their key index in the low bits so a reader
	// can prove the value it saw belongs to the key it asked for.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := i % hot
				if v, ok := m.Get(fmt.Sprintf("hot-%d", k)); ok {
					if int(v%hot) != k {
						t.Errorf("torn read: hot-%d returned %d", k, v)
						return
					}
				}
			}
		}()
	}

	for round := 0; round < 200; round++ {
		for k := 0; k < hot; k++ {
			m.Set(fmt.Sprintf("hot-%d", k), int64(round*hot+k))
		}
		// Cold churn drives growth (and, after deletes, node recycling)
		// while the readers are mid-chain.
		for i := 0; i < 10; i++ {
			m.Set(fmt.Sprintf("cold-%d-%d", round, i), int64(i))
		}
		if round%2 == 1 {
			for i := 0; i < 10; i++ {
				m.Del(fmt.Sprintf("cold-%d-%d", round-1, i))
			}
			m.Del(fmt.Sprintf("hot-%d", round%hot))
		}
	}
	stop.Store(true)
	wg.Wait()

	if pins := m.Domain().ActivePins(); pins != 0 {
		t.Errorf("quiesced map still holds %d pins", pins)
	}
}

// TestEpochMapRecycles proves steady-state churn stops allocating once
// the retire rings have warmed: a Set/Del cycle reuses retired nodes
// instead of minting fresh ones.
func TestEpochMapRecycles(t *testing.T) {
	m := NewEpochMap(64)
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("k-%02d", i)
	}
	// Warm: populate, churn through several epochs so retired nodes
	// clear their grace period and land in the free lists.
	for round := 0; round < 50; round++ {
		for _, k := range keys {
			m.Set(k, int64(round))
		}
		for _, k := range keys {
			m.Del(k)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		for _, k := range keys {
			m.Set(k, 7)
		}
		for _, k := range keys {
			m.Del(k)
		}
	})
	// 64 ops per run; a warmed map should recycle every node. Allow a
	// stray allocation for epoch-boundary slop.
	if avg > 2 {
		t.Errorf("warm Set/Del churn allocates %.1f per 64-op run, want ~0", avg)
	}
}

// TestEpochMapEpochAdvances proves the domain is never wedged by map
// operations: after a busy mixed workload the epoch can still advance,
// i.e. no code path leaks a pin.
func TestEpochMapEpochAdvances(t *testing.T) {
	m := NewEpochMap(2)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k-%d", i%20)
		m.Set(k, int64(i))
		m.Get(k)
		if i%3 == 2 {
			m.Del(k)
		}
	}
	if pins := m.Domain().ActivePins(); pins != 0 {
		t.Fatalf("ActivePins = %d after quiescence, want 0", pins)
	}
	before := m.Domain().Epoch()
	if !m.Domain().TryAdvance() {
		t.Fatal("TryAdvance failed on a quiesced domain")
	}
	if got := m.Domain().Epoch(); got != before+1 {
		t.Fatalf("epoch %d after advance, want %d", got, before+1)
	}
}
