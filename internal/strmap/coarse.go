package strmap

import (
	"sync"
	"sync/atomic"
)

// CoarseMap is the baseline: a single lock serializes everything,
// including growth — the map rendering of Fig. 13.2.
type CoarseMap struct {
	hash  func(string) uint64
	mu    sync.Mutex
	cont  atomic.Int64
	table *chainTable
}

var _ Map = (*CoarseMap)(nil)

// NewCoarseMap returns an empty map with the given power-of-two initial
// capacity.
func NewCoarseMap(capacity int) *CoarseMap {
	return &CoarseMap{hash: Hash, table: newChainTable(capacity)}
}

// lock takes the map lock, counting the acquisition as contended when a
// TryLock probe misses first.
func (m *CoarseMap) lock() {
	if !m.mu.TryLock() {
		m.cont.Add(1)
		m.mu.Lock()
	}
}

// Contention reports lock acquisitions that found the lock held.
func (m *CoarseMap) Contention() int64 { return m.cont.Load() }

// Set maps key to val, reporting whether the key was absent.
func (m *CoarseMap) Set(key string, val int64) bool {
	h := m.hash(key)
	m.lock()
	defer m.mu.Unlock()
	ok := m.table.set(h, key, val)
	if ok && m.table.policy() {
		m.table.grow()
	}
	return ok
}

// Get returns the value at key.
func (m *CoarseMap) Get(key string) (int64, bool) {
	h := m.hash(key)
	m.lock()
	defer m.mu.Unlock()
	return m.table.get(h, key)
}

// Del removes key, reporting whether it was present.
func (m *CoarseMap) Del(key string) bool {
	h := m.hash(key)
	m.lock()
	defer m.mu.Unlock()
	return m.table.del(h, key)
}

// Range enumerates entries under the map lock until f returns false.
func (m *CoarseMap) Range(f func(key string, val int64) bool) {
	m.lock()
	defer m.mu.Unlock()
	m.table.rangeEntries(f)
}
