package strmap

import "sync"

// CoarseMap is the baseline: a single lock serializes everything,
// including growth — the map rendering of Fig. 13.2.
type CoarseMap struct {
	hash  func(string) uint64
	mu    sync.Mutex
	table *chainTable
}

var _ Map = (*CoarseMap)(nil)

// NewCoarseMap returns an empty map with the given power-of-two initial
// capacity.
func NewCoarseMap(capacity int) *CoarseMap {
	return &CoarseMap{hash: Hash, table: newChainTable(capacity)}
}

// Set maps key to val, reporting whether the key was absent.
func (m *CoarseMap) Set(key string, val int64) bool {
	h := m.hash(key)
	m.mu.Lock()
	defer m.mu.Unlock()
	ok := m.table.set(h, key, val)
	if ok && m.table.policy() {
		m.table.grow()
	}
	return ok
}

// Get returns the value at key.
func (m *CoarseMap) Get(key string) (int64, bool) {
	h := m.hash(key)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.table.get(h, key)
}

// Del removes key, reporting whether it was present.
func (m *CoarseMap) Del(key string) bool {
	h := m.hash(key)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.table.del(h, key)
}
