package strmap

import (
	"sync"
	"sync/atomic"
)

// StripedMap keeps a fixed array of L locks (L = the initial capacity);
// the stripe covering a key is chosen by the same masked hash bits as its
// bucket, so a stripe always covers whole buckets and the cover stays
// stable as the table grows — Fig. 13.6 with chains.
type StripedMap struct {
	hash  func(string) uint64
	locks []sync.Mutex
	cont  atomic.Int64
	table *chainTable
}

var _ Map = (*StripedMap)(nil)

// NewStripedMap returns an empty map; the stripe count is fixed at the
// power-of-two initial capacity, as in the book.
func NewStripedMap(capacity int) *StripedMap {
	return &StripedMap{
		hash:  Hash,
		locks: make([]sync.Mutex, capacity),
		table: newChainTable(capacity),
	}
}

// lockFor locks the stripe covering hash h and returns it for unlocking,
// counting the acquisition as contended when a TryLock probe misses.
func (m *StripedMap) lockFor(h uint64) *sync.Mutex {
	l := &m.locks[int(h&uint64(len(m.locks)-1))]
	if !l.TryLock() {
		m.cont.Add(1)
		l.Lock()
	}
	return l
}

// Contention reports stripe acquisitions that found the stripe held.
func (m *StripedMap) Contention() int64 { return m.cont.Load() }

// Set maps key to val, reporting whether the key was absent.
func (m *StripedMap) Set(key string, val int64) bool {
	h := m.hash(key)
	l := m.lockFor(h)
	ok := m.table.set(h, key, val)
	grow := ok && m.table.policy()
	l.Unlock()
	if grow {
		m.resize()
	}
	return ok
}

// Get returns the value at key.
func (m *StripedMap) Get(key string) (int64, bool) {
	h := m.hash(key)
	l := m.lockFor(h)
	defer l.Unlock()
	return m.table.get(h, key)
}

// Del removes key, reporting whether it was present.
func (m *StripedMap) Del(key string) bool {
	h := m.hash(key)
	l := m.lockFor(h)
	defer l.Unlock()
	return m.table.del(h, key)
}

// Range enumerates entries with every stripe held (the resize quiesce)
// until f returns false.
func (m *StripedMap) Range(f func(key string, val int64) bool) {
	for i := range m.locks {
		m.locks[i].Lock()
	}
	defer func() {
		for i := range m.locks {
			m.locks[i].Unlock()
		}
	}()
	m.table.rangeEntries(f)
}

// resize acquires every stripe in order (deadlock-free by total order),
// re-checks the policy, and grows.
func (m *StripedMap) resize() {
	for i := range m.locks {
		m.locks[i].Lock()
	}
	if m.table.policy() { // someone may have resized before us
		m.table.grow()
	}
	for i := range m.locks {
		m.locks[i].Unlock()
	}
}
