package strmap

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"testing"
)

// backends enumerates every map implementation with a constructor and a
// way to inject a hash function (the collision tests depend on it).
var backends = []struct {
	name    string
	make    func(capacity int) Map
	setHash func(m Map, h func(string) uint64)
}{
	{"coarse", func(c int) Map { return NewCoarseMap(c) },
		func(m Map, h func(string) uint64) { m.(*CoarseMap).hash = h }},
	{"striped", func(c int) Map { return NewStripedMap(c) },
		func(m Map, h func(string) uint64) { m.(*StripedMap).hash = h }},
	{"refinable", func(c int) Map { return NewRefinableMap(c) },
		func(m Map, h func(string) uint64) { m.(*RefinableMap).hash = h }},
	{"cuckoo-chain", func(c int) Map { return NewCuckooChainMap(c) },
		func(m Map, h func(string) uint64) { m.(*CuckooChainMap).hash = h }},
	{"epoch", func(c int) Map { return NewEpochMap(c) },
		func(m Map, h func(string) uint64) { m.(*EpochMap).hash = h }},
}

func TestMapBasics(t *testing.T) {
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			m := b.make(4)
			if v, ok := m.Get("missing"); ok {
				t.Fatalf("Get on empty map = %d, true", v)
			}
			if !m.Set("a", 1) {
				t.Fatal("first Set(a) should report an insert")
			}
			if m.Set("a", 2) {
				t.Fatal("second Set(a) should report an overwrite")
			}
			if v, ok := m.Get("a"); !ok || v != 2 {
				t.Fatalf("Get(a) = %d,%v, want 2,true", v, ok)
			}
			if m.Del("b") {
				t.Fatal("Del of an absent key reported present")
			}
			if !m.Del("a") {
				t.Fatal("Del(a) reported absent")
			}
			if _, ok := m.Get("a"); ok {
				t.Fatal("a still present after Del")
			}
			if !m.Set("a", 7) {
				t.Fatal("re-Set after Del should be an insert")
			}
		})
	}
}

// TestMapGrowth inserts far past the initial capacity and verifies every
// entry survives the resizes, then deletes half and re-verifies.
func TestMapGrowth(t *testing.T) {
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			m := b.make(2)
			const n = 500
			for i := 0; i < n; i++ {
				if !m.Set(fmt.Sprintf("key-%04d", i), int64(i)) {
					t.Fatalf("Set key-%04d: duplicate insert", i)
				}
			}
			for i := 0; i < n; i++ {
				if v, ok := m.Get(fmt.Sprintf("key-%04d", i)); !ok || v != int64(i) {
					t.Fatalf("Get key-%04d = %d,%v, want %d,true", i, v, ok, i)
				}
			}
			for i := 0; i < n; i += 2 {
				if !m.Del(fmt.Sprintf("key-%04d", i)) {
					t.Fatalf("Del key-%04d: absent", i)
				}
			}
			for i := 0; i < n; i++ {
				_, ok := m.Get(fmt.Sprintf("key-%04d", i))
				if want := i%2 == 1; ok != want {
					t.Fatalf("after deletes, Get key-%04d = %v, want %v", i, ok, want)
				}
			}
		})
	}
}

// TestMapConcurrent hammers each backend from several goroutines: disjoint
// per-goroutine key ranges (checked exactly) plus a shared hot key set
// (checked for crash/race only — run under -race).
func TestMapConcurrent(t *testing.T) {
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			m := b.make(4)
			const workers, each = 8, 300
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < each; i++ {
						own := fmt.Sprintf("w%d-%d", w, i%40)
						hot := fmt.Sprintf("hot-%d", r.Intn(4))
						m.Set(own, int64(i))
						m.Set(hot, int64(w*1000+i))
						if v, ok := m.Get(own); !ok || v != int64(i) {
							t.Errorf("worker %d: Get(%s) = %d,%v, want %d,true", w, own, v, ok, i)
							return
						}
						m.Get(hot)
						if i%3 == 2 {
							m.Del(own)
							m.Del(hot)
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestHashKnownAnswers pins Hash to the published FNV-1a 64 test vectors
// and cross-checks arbitrary strings against the standard library's
// implementation, so shard routing and bucket chaining provably use
// canonical FNV-1a.
func TestHashKnownAnswers(t *testing.T) {
	vectors := []struct {
		in   string
		want uint64
	}{
		{"", 0xcbf29ce484222325},
		{"a", 0xaf63dc4c8601ec8c},
		{"b", 0xaf63df4c8601f1a5},
		{"foobar", 0x85944171f73967e8},
	}
	for _, v := range vectors {
		if got := Hash(v.in); got != v.want {
			t.Errorf("Hash(%q) = %#x, want %#x", v.in, got, v.want)
		}
	}
	for _, s := range []string{"user:42", "ampserved", "\x00\xff", "日本語", "k"} {
		std := fnv.New64a()
		std.Write([]byte(s))
		if got, want := Hash(s), std.Sum64(); got != want {
			t.Errorf("Hash(%q) = %#x, stdlib fnv-1a = %#x", s, got, want)
		}
	}
}

// TestCollisionPairResolvesIndependently injects a degenerate hash so two
// distinct keys collide with *equal* 64-bit hashes, and proves each
// backend still treats them as independent entries: the chains resolve on
// the full string, not the hash.
func TestCollisionPairResolvesIndependently(t *testing.T) {
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			m := b.make(4)
			b.setHash(m, func(string) uint64 { return 0x1234 })

			if !m.Set("alice", 1) || !m.Set("bob", 2) {
				t.Fatal("colliding keys should both insert as new")
			}
			if v, ok := m.Get("alice"); !ok || v != 1 {
				t.Fatalf("Get(alice) = %d,%v, want 1,true", v, ok)
			}
			if v, ok := m.Get("bob"); !ok || v != 2 {
				t.Fatalf("Get(bob) = %d,%v, want 2,true", v, ok)
			}
			if m.Set("alice", 10) {
				t.Fatal("overwrite of alice reported an insert")
			}
			if v, _ := m.Get("bob"); v != 2 {
				t.Fatalf("overwriting alice disturbed bob: %d", v)
			}
			if !m.Del("alice") {
				t.Fatal("Del(alice) reported absent")
			}
			if _, ok := m.Get("alice"); ok {
				t.Fatal("alice survived her deletion")
			}
			if v, ok := m.Get("bob"); !ok || v != 2 {
				t.Fatalf("deleting alice disturbed bob: %d,%v", v, ok)
			}
			if _, ok := m.Get("carol"); ok {
				t.Fatal("absent colliding key reported present")
			}
		})
	}
}

// TestCollisionOverflow pushes many equal-hash keys through one backend
// to exercise chain growth (and, for cuckoo-chain, the saturated-nest
// resize path) under full collision.
func TestCollisionOverflow(t *testing.T) {
	for _, b := range backends {
		if b.name == "cuckoo-chain" {
			// A constant hash saturates both nests at probeSize and can
			// never relocate or resize its way out — that is cuckoo
			// hashing's documented failure mode for adversarial hashes,
			// not a chaining bug; the pair test above covers collisions.
			continue
		}
		t.Run(b.name, func(t *testing.T) {
			m := b.make(4)
			b.setHash(m, func(string) uint64 { return 99 })
			const n = 40
			for i := 0; i < n; i++ {
				if !m.Set(fmt.Sprintf("c%d", i), int64(i)) {
					t.Fatalf("Set c%d: duplicate", i)
				}
			}
			for i := 0; i < n; i++ {
				if v, ok := m.Get(fmt.Sprintf("c%d", i)); !ok || v != int64(i) {
					t.Fatalf("Get c%d = %d,%v, want %d,true", i, v, ok, i)
				}
			}
			for i := 0; i < n; i++ {
				if !m.Del(fmt.Sprintf("c%d", i)) {
					t.Fatalf("Del c%d: absent", i)
				}
			}
		})
	}
}

func TestBadCapacityPanics(t *testing.T) {
	for _, capacity := range []int{0, 1, 3, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d did not panic", capacity)
				}
			}()
			NewStripedMap(capacity)
		}()
	}
}
