package strmap

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// lockArray is an immutable-header stripe array; resizing installs a new,
// larger one so stripe granularity keeps pace with the table (Fig. 13.10).
type lockArray struct {
	locks []sync.Mutex
}

// RefinableMap refines its stripes on resize: the lock array grows with
// the table, so a stripe covers a constant number of buckets. A resizer
// announces itself, waits for in-flight operations to drain, then swaps
// both arrays — the same protocol as hashset.RefinableHashSet.
type RefinableMap struct {
	hash     func(string) uint64
	resizing atomic.Bool                // the "owner mark": a resize is announced
	cont     atomic.Int64               // contended acquire rounds
	locks    atomic.Pointer[lockArray]  // current stripe array
	table    atomic.Pointer[chainTable] // current bucket table
}

var _ Map = (*RefinableMap)(nil)

// NewRefinableMap returns an empty map with the given power-of-two
// initial capacity.
func NewRefinableMap(capacity int) *RefinableMap {
	m := &RefinableMap{hash: Hash}
	m.table.Store(newChainTable(capacity))
	m.locks.Store(&lockArray{locks: make([]sync.Mutex, capacity)})
	return m
}

// acquire locks the stripe for hash h against the *current* arrays,
// retrying if a resize was announced or swapped the arrays underneath us.
// Each round that missed (TryLock failure, resize wait, or a failed
// validation) counts once toward Contention.
func (m *RefinableMap) acquire(h uint64) *sync.Mutex {
	for {
		contended := false
		for m.resizing.Load() {
			contended = true
			runtime.Gosched() // a resize is announced; stand back
		}
		oldLocks := m.locks.Load()
		l := &oldLocks.locks[int(h&uint64(len(oldLocks.locks)-1))]
		if !l.TryLock() {
			contended = true
			l.Lock()
		}
		if !m.resizing.Load() && m.locks.Load() == oldLocks {
			if contended {
				m.cont.Add(1)
			}
			return l
		}
		l.Unlock()
		m.cont.Add(1)
	}
}

// Contention reports acquire rounds that waited or retried.
func (m *RefinableMap) Contention() int64 { return m.cont.Load() }

// Set maps key to val, reporting whether the key was absent.
func (m *RefinableMap) Set(key string, val int64) bool {
	h := m.hash(key)
	l := m.acquire(h)
	t := m.table.Load()
	ok := t.set(h, key, val)
	grow := ok && t.policy()
	l.Unlock()
	if grow {
		m.resize()
	}
	return ok
}

// Get returns the value at key.
func (m *RefinableMap) Get(key string) (int64, bool) {
	h := m.hash(key)
	l := m.acquire(h)
	defer l.Unlock()
	return m.table.Load().get(h, key)
}

// Del removes key, reporting whether it was present.
func (m *RefinableMap) Del(key string) bool {
	h := m.hash(key)
	l := m.acquire(h)
	defer l.Unlock()
	return m.table.Load().del(h, key)
}

// Range enumerates entries until f returns false, using the resize
// protocol to quiesce: announce ownership, then lock every current
// stripe. No table or stripe swap happens, so in-flight operations just
// see an unusually long resize that changed nothing.
func (m *RefinableMap) Range(f func(key string, val int64) bool) {
	for !m.resizing.CompareAndSwap(false, true) {
		runtime.Gosched() // wait out a real resize
	}
	defer m.resizing.Store(false)
	old := m.locks.Load()
	for i := range old.locks {
		old.locks[i].Lock()
	}
	defer func() {
		for i := range old.locks {
			old.locks[i].Unlock()
		}
	}()
	m.table.Load().rangeEntries(f)
}

// resize announces itself, quiesces every stripe, then installs a doubled
// table and a matching doubled stripe array.
func (m *RefinableMap) resize() {
	// Only one resizer at a time: the announcement CAS is the election.
	if !m.resizing.CompareAndSwap(false, true) {
		return // someone else is on it
	}
	defer m.resizing.Store(false)

	t := m.table.Load()
	if !t.policy() {
		return // a prior resize already fixed it
	}
	// Quiesce: once resizing is set, no new acquire succeeds; wait for the
	// holders of each current stripe to drain by locking through them.
	old := m.locks.Load()
	for i := range old.locks {
		old.locks[i].Lock()
	}

	next := newChainTable(2 * len(t.buckets))
	for _, n := range t.buckets {
		for n != nil {
			after := n.next
			b := next.bucketOf(n.hash)
			n.next = next.buckets[b]
			next.buckets[b] = n
			n = after
		}
	}
	next.size.Store(t.size.Load())
	m.table.Store(next)
	m.locks.Store(&lockArray{locks: make([]sync.Mutex, 2*len(old.locks))})

	for i := range old.locks {
		old.locks[i].Unlock()
	}
}
