package strmap

import (
	"sync"
	"sync/atomic"

	"amp/internal/epoch"
)

// emNodePool is the single recycling pool of an EpochMap's domain: chain
// nodes. Tables are not pooled — growth is rare and the retired slice is
// cheap to leave to the GC; it is the per-operation node churn that must
// stay allocation-free.
const emNodePool = 0

// emNode is one published entry. hash, key and val are immutable from
// publication (the atomic store that links the node into a chain) until
// the node's grace period expires after retirement; only next changes,
// and only through its atomic.Pointer. Overwrites therefore publish a
// *replacement* node instead of mutating val in place — the RCU
// copy-on-update discipline that makes lock-free readers torn-read-proof.
type emNode struct {
	hash uint64
	key  string
	val  int64
	next atomic.Pointer[emNode]
}

// emTable is one published bucket array. Readers load the table pointer
// once and traverse it even if a concurrent grow publishes a successor:
// the superseded table's chains stay intact (grow copies nodes, it never
// re-links them), so such a read linearizes at its table load.
type emTable struct {
	mask    uint64
	buckets []atomic.Pointer[emNode]
}

// EpochMap is the read-optimized member of the family: a chained hash
// table whose writers serialize on a mutex while readers run lock-free
// under an epoch.Domain pin — McKenney's RCU reader/writer split rendered
// with the book's Chapter 9 publication discipline. Get never blocks,
// never writes shared memory beyond its pin slot, and completes in a
// bounded number of steps once the chain is loaded, which is what lets
// ampserved execute HGET directly on connection goroutines (the wait-free
// read bypass) while HSET/HDEL keep flowing through the shard mailboxes.
//
// Unlinked and displaced nodes are retired to the domain and recycled
// after two epoch advancements, so steady-state churn allocates nothing
// and a pinned reader can chase a just-replaced chain without ever
// touching reused memory.
type EpochMap struct {
	dom  *epoch.Domain
	hash func(string) uint64

	mu    sync.Mutex // writers and growth
	cont  atomic.Int64
	table atomic.Pointer[emTable]
	size  int // entries, writer-owned (read under mu)
}

var _ Map = (*EpochMap)(nil)

// NewEpochMap returns an empty map with the given initial bucket count
// (power of two ≥ 2) and its own reclamation domain.
func NewEpochMap(capacity int) *EpochMap {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		panic("strmap: capacity must be a power of two >= 2")
	}
	m := &EpochMap{dom: epoch.NewDomain(1), hash: Hash}
	m.table.Store(&emTable{
		mask:    uint64(capacity - 1),
		buckets: make([]atomic.Pointer[emNode], capacity),
	})
	return m
}

// Domain exposes the reclamation domain for diagnostics and the server's
// epoch-pin leak tests.
func (m *EpochMap) Domain() *epoch.Domain { return m.dom }

// lock takes the writer lock, counting the acquisition as contended when
// a TryLock probe misses first. Readers never touch it, so contention
// here measures writer/writer collisions only.
func (m *EpochMap) lock() {
	if !m.mu.TryLock() {
		m.cont.Add(1)
		m.mu.Lock()
	}
}

// Contention reports writer-lock acquisitions that found the lock held.
func (m *EpochMap) Contention() int64 { return m.cont.Load() }

// Range enumerates entries under the writer lock until f returns false.
// With writers excluded the published chains are frozen, and retired
// nodes are unreachable from the live table, so the walk needs no pin.
func (m *EpochMap) Range(f func(key string, val int64) bool) {
	m.lock()
	defer m.mu.Unlock()
	t := m.table.Load()
	for i := range t.buckets {
		for n := t.buckets[i].Load(); n != nil; n = n.next.Load() {
			if !f(n.key, n.val) {
				return
			}
		}
	}
}

// node returns a recycled (or fresh) node. The caller owns it until the
// atomic store that publishes it.
func (m *EpochMap) node(s *epoch.Slot, h uint64, key string, val int64) *emNode {
	if r := s.Alloc(emNodePool); r != nil {
		n := r.(*emNode)
		n.hash, n.key, n.val = h, key, val
		return n
	}
	return &emNode{hash: h, key: key, val: val}
}

// Set maps key to val, reporting whether the key was absent.
func (m *EpochMap) Set(key string, val int64) bool {
	h := m.hash(key)
	m.lock()
	defer m.mu.Unlock()
	s := m.dom.Pin()
	defer m.dom.Unpin(s)

	t := m.table.Load()
	link := &t.buckets[h&t.mask]
	for n := link.Load(); n != nil; n = link.Load() {
		if n.hash == h && n.key == key {
			// Overwrite: publish a replacement, retire the old node. A
			// reader that already holds n returns the old value and
			// linearizes before this store.
			repl := m.node(s, h, key, val)
			repl.next.Store(n.next.Load())
			link.Store(repl)
			s.Retire(emNodePool, n)
			return false
		}
		link = &n.next
	}
	n := m.node(s, h, key, val)
	n.next.Store(t.buckets[h&t.mask].Load())
	t.buckets[h&t.mask].Store(n)
	m.size++
	if m.size > 4*len(t.buckets) {
		m.grow(s, t)
	}
	return true
}

// Get returns the value at key. It takes no lock: pin, load the table,
// chase the chain through atomic pointers, unpin — safe from any
// goroutine, concurrent with writers and growth.
func (m *EpochMap) Get(key string) (int64, bool) {
	h := m.hash(key)
	s := m.dom.Pin()
	t := m.table.Load()
	for n := t.buckets[h&t.mask].Load(); n != nil; n = n.next.Load() {
		if n.hash == h && n.key == key {
			v := n.val
			m.dom.Unpin(s)
			return v, true
		}
	}
	m.dom.Unpin(s)
	return 0, false
}

// Del removes key, reporting whether it was present.
func (m *EpochMap) Del(key string) bool {
	h := m.hash(key)
	m.lock()
	defer m.mu.Unlock()
	s := m.dom.Pin()
	defer m.dom.Unpin(s)

	t := m.table.Load()
	link := &t.buckets[h&t.mask]
	for n := link.Load(); n != nil; n = link.Load() {
		if n.hash == h && n.key == key {
			link.Store(n.next.Load())
			s.Retire(emNodePool, n)
			m.size--
			return true
		}
		link = &n.next
	}
	return false
}

// grow publishes a doubled table. Entries are copied into fresh nodes
// (never re-linked: readers may be mid-chain in the old table), the new
// table is published with one atomic store, and every old node is
// retired. Called with mu held and s pinned.
func (m *EpochMap) grow(s *epoch.Slot, old *emTable) {
	nt := &emTable{
		mask:    uint64(2*len(old.buckets) - 1),
		buckets: make([]atomic.Pointer[emNode], 2*len(old.buckets)),
	}
	for i := range old.buckets {
		for n := old.buckets[i].Load(); n != nil; n = n.next.Load() {
			c := m.node(s, n.hash, n.key, n.val)
			b := &nt.buckets[n.hash&nt.mask]
			c.next.Store(b.Load())
			b.Store(c)
		}
	}
	m.table.Store(nt)
	for i := range old.buckets {
		for n := old.buckets[i].Load(); n != nil; n = n.next.Load() {
			s.Retire(emNodePool, n)
		}
	}
}
