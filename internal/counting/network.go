package counting

import (
	"sync/atomic"

	"amp/internal/core"
)

// Balancer is a two-wire toggle (Fig. 12.11): tokens alternate between
// output 0 and output 1, so the outputs satisfy the step property.
type Balancer struct {
	toggle atomic.Bool // false: next token exits on wire 0
}

// Traverse routes one token, returning its output wire (0 or 1).
func (b *Balancer) Traverse() int {
	for {
		old := b.toggle.Load()
		if b.toggle.CompareAndSwap(old, !old) {
			if old {
				return 1
			}
			return 0
		}
	}
}

// Network is a balancing network: a token enters on a wire and exits on a
// wire; counting networks guarantee the step property on outputs.
type Network interface {
	// Traverse routes one token from the given input wire to its output.
	Traverse(input int) int
	// Width reports the number of wires.
	Width() int
}

// Merger merges two width/2 sequences with the step property into one
// (Fig. 12.12): even-indexed tokens of the top half meet odd-indexed tokens
// of the bottom half in a final layer of balancers.
type Merger struct {
	width int
	half  [2]*Merger
	layer []*Balancer
}

// NewMerger returns a merger of the given power-of-two width.
func NewMerger(width int) *Merger {
	checkPow2(width)
	m := &Merger{width: width, layer: make([]*Balancer, width/2)}
	for i := range m.layer {
		m.layer[i] = &Balancer{}
	}
	if width > 2 {
		m.half[0] = NewMerger(width / 2)
		m.half[1] = NewMerger(width / 2)
	}
	return m
}

// Traverse routes one token through the merger.
func (m *Merger) Traverse(input int) int {
	if m.width == 2 {
		return m.layer[0].Traverse()
	}
	var output int
	if input < m.width/2 {
		output = m.half[input%2].Traverse(input / 2)
	} else {
		output = m.half[1-(input%2)].Traverse(input / 2)
	}
	return 2*output + m.layer[output].Traverse()
}

// Width reports the wire count.
func (m *Merger) Width() int { return m.width }

// Bitonic is the bitonic counting network (Fig. 12.14): two half-width
// bitonic networks feeding a merger; depth O(log² w).
type Bitonic struct {
	width  int
	half   [2]*Bitonic
	merger *Merger
}

var _ Network = (*Bitonic)(nil)

// NewBitonic returns a bitonic network of the given power-of-two width.
func NewBitonic(width int) *Bitonic {
	checkPow2(width)
	b := &Bitonic{width: width, merger: NewMerger(width)}
	if width > 2 {
		b.half[0] = NewBitonic(width / 2)
		b.half[1] = NewBitonic(width / 2)
	}
	return b
}

// Traverse routes one token through the network.
func (b *Bitonic) Traverse(input int) int {
	if b.width == 2 {
		return b.merger.Traverse(input)
	}
	subnet := input / (b.width / 2)
	output := b.half[subnet].Traverse(input % (b.width / 2))
	return b.merger.Traverse(subnet*(b.width/2) + output)
}

// Width reports the wire count.
func (b *Bitonic) Width() int { return b.width }

// periodicLayer is one column of the block network (Fig. 12.16): wire i is
// balanced against wire width-i-1.
type periodicLayer struct {
	width int
	layer []*Balancer
}

func newPeriodicLayer(width int) *periodicLayer {
	l := &periodicLayer{width: width, layer: make([]*Balancer, width)}
	for i := 0; i < width/2; i++ {
		b := &Balancer{}
		l.layer[i] = b
		l.layer[width-i-1] = b
	}
	return l
}

func (l *periodicLayer) traverse(input int) int {
	toggle := l.layer[input].Traverse()
	var lo, hi int
	if input < l.width/2 {
		lo, hi = input, l.width-input-1
	} else {
		lo, hi = l.width-input-1, input
	}
	if toggle == 0 {
		return lo
	}
	return hi
}

// block is the recursive block of the periodic network.
type block struct {
	width        int
	north, south *block
	layer        *periodicLayer
}

func newBlock(width int) *block {
	b := &block{width: width, layer: newPeriodicLayer(width)}
	if width > 2 {
		b.north = newBlock(width / 2)
		b.south = newBlock(width / 2)
	}
	return b
}

func (b *block) traverse(input int) int {
	wire := b.layer.traverse(input)
	if b.width == 2 {
		return wire
	}
	if wire < b.width/2 {
		return b.north.traverse(wire)
	}
	return b.width/2 + b.south.traverse(wire-b.width/2)
}

// Periodic is the periodic counting network (Fig. 12.17): log w identical
// blocks in sequence.
type Periodic struct {
	width  int
	blocks []*block
}

var _ Network = (*Periodic)(nil)

// NewPeriodic returns a periodic network of the given power-of-two width.
func NewPeriodic(width int) *Periodic {
	checkPow2(width)
	logW := 0
	for 1<<logW < width {
		logW++
	}
	p := &Periodic{width: width, blocks: make([]*block, logW)}
	for i := range p.blocks {
		p.blocks[i] = newBlock(width)
	}
	return p
}

// Traverse routes one token through every block in turn.
func (p *Periodic) Traverse(input int) int {
	wire := input
	for _, b := range p.blocks {
		wire = b.traverse(wire)
	}
	return wire
}

// Width reports the wire count.
func (p *Periodic) Width() int { return p.width }

// NetworkCounter turns a counting network into a Counter (§12.3): output
// wire i carries a local counter dispensing i, i+w, i+2w, …; the step
// property makes the union of those streams gap-free.
type NetworkCounter struct {
	net   Network
	cells []paddedCounter
	enter atomic.Int64 // distributes threads over input wires
}

type paddedCounter struct {
	v atomic.Int64
	_ [56]byte
}

var _ Counter = (*NetworkCounter)(nil)

// NewNetworkCounter wraps a counting network as a ticket dispenser.
func NewNetworkCounter(net Network) *NetworkCounter {
	c := &NetworkCounter{net: net, cells: make([]paddedCounter, net.Width())}
	for i := range c.cells {
		c.cells[i].v.Store(int64(i))
	}
	return c
}

// GetAndIncrement sends a token through the network and takes a ticket
// from the output wire's local counter.
func (c *NetworkCounter) GetAndIncrement(core.ThreadID) int64 {
	input := int(c.enter.Add(1)-1) % c.net.Width()
	output := c.net.Traverse(input)
	return c.cells[output].v.Add(int64(c.net.Width())) - int64(c.net.Width())
}

// Capacity reports that any number of threads may use the counter.
func (c *NetworkCounter) Capacity() int { return unbounded }
