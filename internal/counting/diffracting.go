package counting

import (
	"fmt"
	"sync/atomic"
	"time"

	"amp/internal/stack"
)

// Diffracting trees (§12.6): a balancer's toggle bit is a hot spot, so a
// *prism* is placed in front of it — an array of exchangers where two
// concurrent tokens can pair off and "diffract" to complementary outputs
// without touching the toggle at all. Only lonely tokens fall through to
// the toggle.

// prism pairs concurrent tokens. Each visitor offers a unique token id;
// if two meet, the comparison of ids sends them to complementary wires.
type prism struct {
	exchangers []*stack.Exchanger[uint64]
	patience   time.Duration
	tokens     atomic.Uint64
	slot       atomic.Uint64 // cheap slot rotation instead of per-call RNG
}

// prismPatience is how long a token waits for a partner; on a
// scheduler-backed testbed a few microseconds suffices to pair bursts
// without stalling lone tokens.
const prismPatience = 5 * time.Microsecond

func newPrism(capacity int) *prism {
	p := &prism{
		exchangers: make([]*stack.Exchanger[uint64], capacity),
		patience:   prismPatience,
	}
	for i := range p.exchangers {
		p.exchangers[i] = stack.NewExchanger[uint64]()
	}
	return p
}

// visit tries to pair with another token, reporting (wire, true) when the
// diffraction happened and false when the token must use the toggle.
func (p *prism) visit() (int, bool) {
	me := p.tokens.Add(1)
	slot := int(p.slot.Add(1)) % len(p.exchangers)
	other, err := p.exchangers[slot].Exchange(&me, p.patience)
	if err != nil || other == nil {
		return 0, false
	}
	if me < *other {
		return 0, true
	}
	return 1, true
}

// DiffractingBalancer is a balancer with a prism in front of its toggle
// (Fig. 12.18).
type DiffractingBalancer struct {
	prism  *prism
	toggle Balancer
}

// NewDiffractingBalancer returns a balancer whose prism has the given
// width.
func NewDiffractingBalancer(prismWidth int) *DiffractingBalancer {
	if prismWidth <= 0 {
		panic(fmt.Sprintf("counting: prism width must be positive, got %d", prismWidth))
	}
	return &DiffractingBalancer{prism: newPrism(prismWidth)}
}

// Traverse routes one token: diffract if a partner shows up, toggle
// otherwise.
func (b *DiffractingBalancer) Traverse() int {
	if wire, ok := b.prism.visit(); ok {
		return wire
	}
	return b.toggle.Traverse()
}

// DiffractingTree is the counting tree of Fig. 12.19: a diffracting
// balancer at every node; tokens enter at the root and leave on one of
// width output wires satisfying the step property.
type DiffractingTree struct {
	width int
	root  *DiffractingBalancer
	child [2]*DiffractingTree
}

var _ Network = (*DiffractingTree)(nil)

// NewDiffractingTree returns a tree with the given power-of-two width.
// Prisms shrink with depth (half the subtree width, minimum 1), as in the
// book.
func NewDiffractingTree(width int) *DiffractingTree {
	checkPow2(width)
	t := &DiffractingTree{
		width: width,
		root:  NewDiffractingBalancer(max(1, width/2)),
	}
	if width > 2 {
		t.child[0] = NewDiffractingTree(width / 2)
		t.child[1] = NewDiffractingTree(width / 2)
	}
	return t
}

// Traverse routes one token from the root; the input wire is ignored
// (trees have a single entry), keeping the Network interface.
func (t *DiffractingTree) Traverse(int) int {
	half := t.root.Traverse()
	if t.width == 2 {
		return half
	}
	return 2*t.child[half].Traverse(0) + half
}

// Width reports the number of output wires.
func (t *DiffractingTree) Width() int { return t.width }
