// Package counting implements the Chapter 12 shared-counting structures:
// the software combining tree (Fig. 12.3–12.8), balancers and the bitonic
// and periodic counting networks (Fig. 12.11–12.17), plus the
// single-location baselines they are measured against.
//
// All counters produce unique, gap-free tickets; they differ in how they
// spread memory traffic. The combining tree merges concurrent increments on
// the way to the root; counting networks route tokens through a mesh of
// two-input balancers so that no single location is hit by every thread.
package counting

import (
	"fmt"
	"sync"
	"sync/atomic"

	"amp/internal/core"
)

// Counter hands out unique consecutive tickets starting at 0. The thread ID
// matters only to the combining tree (which assigns threads to leaves);
// other implementations ignore it.
type Counter interface {
	// GetAndIncrement returns the ticket and advances the counter.
	GetAndIncrement(me core.ThreadID) int64
	// Capacity reports how many distinct thread IDs are supported.
	Capacity() int
}

const unbounded = 1 << 30

// CASCounter is the single fetch-and-add cell every thread hammers — the
// baseline whose hot spot Chapter 12 sets out to remove.
type CASCounter struct {
	v atomic.Int64
}

var _ Counter = (*CASCounter)(nil)

// GetAndIncrement returns the next ticket.
func (c *CASCounter) GetAndIncrement(core.ThreadID) int64 {
	return c.v.Add(1) - 1
}

// GetAndAdd takes n consecutive tickets in one fetch-and-add and
// returns the first — the bulk fast path the metrics layer uses to
// amortize per-event ticket traffic over a batch (see metrics.Counter
// IncN). Only the single-cell counters can promise consecutive bulk
// tickets cheaply; the width-bounded structures fall back to n single
// tickets.
func (c *CASCounter) GetAndAdd(_ core.ThreadID, n int64) int64 {
	return c.v.Add(n) - n
}

// Capacity reports that any number of threads may use the counter.
func (c *CASCounter) Capacity() int { return unbounded }

// LockCounter guards a plain integer with a mutex; the pessimistic
// baseline.
type LockCounter struct {
	mu sync.Mutex
	v  int64
}

var _ Counter = (*LockCounter)(nil)

// GetAndIncrement returns the next ticket.
func (c *LockCounter) GetAndIncrement(core.ThreadID) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.v
	c.v++
	return v
}

// Capacity reports that any number of threads may use the counter.
func (c *LockCounter) Capacity() int { return unbounded }

// checkPow2 validates counting-network widths.
func checkPow2(width int) {
	if width < 2 || width&(width-1) != 0 {
		panic(fmt.Sprintf("counting: width must be a power of two >= 2, got %d", width))
	}
}
