package counting

import (
	"sort"
	"sync"
	"testing"

	"amp/internal/core"
)

func counters(width int) map[string]Counter {
	return map[string]Counter{
		"cas":       &CASCounter{},
		"lock":      &LockCounter{},
		"combining": NewCombiningTree(width),
		"bitonic":   NewNetworkCounter(NewBitonic(8)),
		"periodic":  NewNetworkCounter(NewPeriodic(8)),
	}
}

func TestSequentialTickets(t *testing.T) {
	for name, c := range counters(4) {
		t.Run(name, func(t *testing.T) {
			for want := int64(0); want < 50; want++ {
				if got := c.GetAndIncrement(0); got != want {
					t.Fatalf("ticket %d: got %d", want, got)
				}
			}
		})
	}
}

// TestConcurrentTicketsUniqueAndGapFree: n threads × m increments must
// dispense exactly the tickets 0..n*m-1.
func TestConcurrentTicketsUniqueAndGapFree(t *testing.T) {
	const (
		threads = 8
		perT    = 200
	)
	for name, c := range counters(threads) {
		t.Run(name, func(t *testing.T) {
			results := make([][]int64, threads)
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(me core.ThreadID) {
					defer wg.Done()
					out := make([]int64, perT)
					for i := range out {
						out[i] = c.GetAndIncrement(me)
					}
					results[me] = out
				}(core.ThreadID(th))
			}
			wg.Wait()
			var all []int64
			for _, r := range results {
				all = append(all, r...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			for i, v := range all {
				if v != int64(i) {
					t.Fatalf("ticket stream has gap or duplicate at %d: got %d", i, v)
				}
			}
		})
	}
}

// TestPerThreadTicketsIncrease: each thread's own ticket sequence must be
// strictly increasing (program order within a thread). Only the
// linearizable counters promise this under concurrency; the network
// counters are quiescently consistent (Ch. 12) — a thread's later token
// may legally exit with a smaller value while other tokens are in
// flight, so they are covered by the sequential and step-property tests
// instead.
func TestPerThreadTicketsIncrease(t *testing.T) {
	const threads = 4
	linearizable := map[string]Counter{
		"cas":       &CASCounter{},
		"lock":      &LockCounter{},
		"combining": NewCombiningTree(threads),
	}
	for name, c := range linearizable {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(me core.ThreadID) {
					defer wg.Done()
					last := int64(-1)
					for i := 0; i < 200; i++ {
						v := c.GetAndIncrement(me)
						if v <= last {
							t.Errorf("thread %d: ticket %d after %d", me, v, last)
							return
						}
						last = v
					}
				}(core.ThreadID(th))
			}
			wg.Wait()
		})
	}
}

func TestBalancerAlternates(t *testing.T) {
	var b Balancer
	for i := 0; i < 10; i++ {
		if got := b.Traverse(); got != i%2 {
			t.Fatalf("token %d exited on wire %d, want %d", i, got, i%2)
		}
	}
}

// TestNetworkSequentialCounting: tokens traversing one at a time must exit
// on wires 0,1,2,…,w-1,0,1,… — the defining property of a counting network
// in a quiescent execution.
func TestNetworkSequentialCounting(t *testing.T) {
	for _, width := range []int{2, 4, 8, 16} {
		nets := map[string]Network{
			"bitonic":  NewBitonic(width),
			"periodic": NewPeriodic(width),
		}
		for name, net := range nets {
			t.Run(name, func(t *testing.T) {
				for i := 0; i < 6*width; i++ {
					input := i % width
					want := i % width
					if got := net.Traverse(input); got != want {
						t.Fatalf("width %d: token %d exited wire %d, want %d", width, i, got, want)
					}
				}
			})
		}
	}
}

// TestNetworkStepProperty: after a concurrent burst completes, per-wire
// token counts must satisfy the step property:
// count[i] ∈ {⌈n/w⌉, ⌊n/w⌋} and non-increasing in i.
func TestNetworkStepProperty(t *testing.T) {
	const (
		threads = 6
		perT    = 300
	)
	for _, mk := range []struct {
		name string
		net  Network
	}{
		{"bitonic", NewBitonic(8)},
		{"periodic", NewPeriodic(8)},
	} {
		t.Run(mk.name, func(t *testing.T) {
			width := mk.net.Width()
			counts := make([]int64, width)
			var mu sync.Mutex
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(in int) {
					defer wg.Done()
					local := make([]int64, width)
					for i := 0; i < perT; i++ {
						local[mk.net.Traverse((in+i)%width)]++
					}
					mu.Lock()
					for i, v := range local {
						counts[i] += v
					}
					mu.Unlock()
				}(th % width)
			}
			wg.Wait()
			total := int64(threads * perT)
			base := total / int64(width)
			rem := total % int64(width)
			for i, got := range counts {
				want := base
				if int64(i) < rem {
					want = base + 1
				}
				if got != want {
					t.Fatalf("wire %d carried %d tokens, want %d (counts %v)", i, got, want, counts)
				}
			}
		})
	}
}

func TestCombiningTreeWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCombiningTree(1) did not panic")
		}
	}()
	NewCombiningTree(1)
}

func TestNetworkWidthPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBitonic(3) },
		func() { NewBitonic(0) },
		func() { NewPeriodic(6) },
		func() { NewMerger(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad width did not panic")
				}
			}()
			f()
		}()
	}
}

func TestCombiningTreeOddWidth(t *testing.T) {
	// Odd widths must work: thread pairs share leaves, the last leaf may be
	// a singleton.
	c := NewCombiningTree(3)
	var wg sync.WaitGroup
	seen := make([]int64, 3*100)
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				seen[c.GetAndIncrement(me)]++
			}
		}(core.ThreadID(th))
	}
	wg.Wait()
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("ticket %d dispensed %d times", v, n)
		}
	}
}

func TestDiffractingTreeSequentialCounting(t *testing.T) {
	// Lone tokens always time out of the prism and use the toggles, so the
	// sequential behavior is a plain counting tree: 0,1,2,...,w-1,0,1,...
	for _, width := range []int{2, 4, 8} {
		tree := NewDiffractingTree(width)
		for i := 0; i < 3*width; i++ {
			if got, want := tree.Traverse(0), i%width; got != want {
				t.Fatalf("width %d: token %d exited wire %d, want %d", width, i, got, want)
			}
		}
	}
}

func TestDiffractingTreeStepProperty(t *testing.T) {
	const (
		threads = 6
		perT    = 200
	)
	tree := NewDiffractingTree(4)
	width := tree.Width()
	counts := make([]int64, width)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, width)
			for i := 0; i < perT; i++ {
				local[tree.Traverse(0)]++
			}
			mu.Lock()
			for i, v := range local {
				counts[i] += v
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	total := int64(threads * perT)
	base := total / int64(width)
	rem := total % int64(width)
	for i, got := range counts {
		want := base
		if int64(i) < rem {
			want = base + 1
		}
		if got != want {
			t.Fatalf("wire %d carried %d tokens, want %d (counts %v)", i, got, want, counts)
		}
	}
}

func TestDiffractingTreeAsCounter(t *testing.T) {
	c := NewNetworkCounter(NewDiffractingTree(4))
	seen := make(map[int64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				v := c.GetAndIncrement(me)
				mu.Lock()
				if seen[v] {
					t.Errorf("ticket %d dispensed twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}(core.ThreadID(th))
	}
	wg.Wait()
	for v := int64(0); v < 4*150; v++ {
		if !seen[v] {
			t.Fatalf("ticket %d never dispensed", v)
		}
	}
}

func TestDiffractingBalancerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero prism width did not panic")
		}
	}()
	NewDiffractingBalancer(0)
}
