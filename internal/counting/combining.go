package counting

import (
	"fmt"
	"sync"

	"amp/internal/core"
)

// cStatus is a combining-tree node's phase (Fig. 12.4).
type cStatus int

const (
	cIdle cStatus = iota
	cFirst
	cSecond
	cResult
	cRoot
)

// combiningNode is one node of the combining tree. The book synchronizes
// each node with a Java monitor; mu+cond is the direct Go equivalent.
type combiningNode struct {
	mu     sync.Mutex
	cond   *sync.Cond
	locked bool
	status cStatus

	firstValue  int64
	secondValue int64
	result      int64
	parent      *combiningNode
}

func newCombiningNode(parent *combiningNode) *combiningNode {
	n := &combiningNode{parent: parent}
	if parent == nil {
		n.status = cRoot
	}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// precombine reports whether the caller should continue to the parent: it
// is the first to arrive (FIRST) — or stop here: a first thread already
// passed (it becomes that thread's passive SECOND partner), or this is the
// root.
func (n *combiningNode) precombine() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.locked {
		n.cond.Wait()
	}
	switch n.status {
	case cIdle:
		n.status = cFirst
		return true
	case cFirst:
		n.locked = true
		n.status = cSecond
		return false
	case cRoot:
		return false
	default:
		panic(fmt.Sprintf("counting: unexpected combining state %d in precombine", n.status))
	}
}

// combine folds the caller's accumulated value with any second value parked
// at this node.
func (n *combiningNode) combine(combined int64) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.locked {
		n.cond.Wait()
	}
	n.locked = true
	n.firstValue = combined
	switch n.status {
	case cFirst:
		return n.firstValue
	case cSecond:
		return n.firstValue + n.secondValue
	default:
		panic(fmt.Sprintf("counting: unexpected combining state %d in combine", n.status))
	}
}

// op applies the combined increment at the stop node: at the root it
// performs the actual addition; at a SECOND node it deposits the value for
// the active partner and waits for the result.
func (n *combiningNode) op(combined int64) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.status {
	case cRoot:
		prior := n.result
		n.result += combined
		return prior
	case cSecond:
		n.secondValue = combined
		n.locked = false
		n.cond.Broadcast() // release the active partner in combine()
		for n.status != cResult {
			n.cond.Wait()
		}
		n.locked = false
		n.cond.Broadcast()
		n.status = cIdle
		return n.result
	default:
		panic(fmt.Sprintf("counting: unexpected combining state %d in op", n.status))
	}
}

// distribute propagates the prior value back down the caller's path.
func (n *combiningNode) distribute(prior int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.status {
	case cFirst:
		// No second thread showed up: just reset.
		n.status = cIdle
		n.locked = false
	case cSecond:
		// Hand the passive partner its result.
		n.result = prior + n.firstValue
		n.status = cResult
	default:
		panic(fmt.Sprintf("counting: unexpected combining state %d in distribute", n.status))
	}
	n.cond.Broadcast()
}

// CombiningTree is the software combining tree (Fig. 12.3): threads climb
// from per-pair leaves toward the root, and when two concurrent increments
// meet at a node, one thread carries both upward while the other waits for
// its ticket to come back down.
type CombiningTree struct {
	leaf  []*combiningNode
	width int
}

var _ Counter = (*CombiningTree)(nil)

// NewCombiningTree returns a tree serving `width` threads (width ≥ 2;
// threads t and t+1 share leaf t/2).
func NewCombiningTree(width int) *CombiningTree {
	if width < 2 {
		panic(fmt.Sprintf("counting: combining tree width must be >= 2, got %d", width))
	}
	nodes := make([]*combiningNode, width-1)
	nodes[0] = newCombiningNode(nil)
	for i := 1; i < len(nodes); i++ {
		nodes[i] = newCombiningNode(nodes[(i-1)/2])
	}
	leaves := make([]*combiningNode, (width+1)/2)
	for i := range leaves {
		leaves[i] = nodes[len(nodes)-i-1]
	}
	return &CombiningTree{leaf: leaves, width: width}
}

// GetAndIncrement climbs the tree in four phases: precombine (reserve the
// path), combine (fold values upward), op (apply at the stop node), and
// distribute (carry priors back down).
func (t *CombiningTree) GetAndIncrement(me core.ThreadID) int64 {
	myLeaf := t.leaf[int(me)/2]

	// Phase 1: precombine up to the first node we do not own.
	node := myLeaf
	for node.precombine() {
		node = node.parent
	}
	stop := node

	// Phase 2: combine values along the owned path.
	var path []*combiningNode
	node = myLeaf
	combined := int64(1)
	for node != stop {
		combined = node.combine(combined)
		path = append(path, node)
		node = node.parent
	}

	// Phase 3: apply the combined increment at the stop node.
	prior := stop.op(combined)

	// Phase 4: distribute priors back down the path.
	for i := len(path) - 1; i >= 0; i-- {
		path[i].distribute(prior)
	}
	return prior
}

// Capacity reports the thread bound.
func (t *CombiningTree) Capacity() int { return t.width }
