package consensus

import (
	"fmt"
	"sync/atomic"

	"amp/internal/core"
)

// uNode is a log entry of the universal constructions (Fig. 6.2): an
// invocation plus the consensus object that decides its successor. seq is 0
// until the node is threaded into the log.
type uNode struct {
	action string
	input  any

	decideNext CASConsensus[*uNode]
	next       atomic.Pointer[uNode]
	seq        atomic.Int64
}

// maxNode returns the node with the highest sequence number among the
// heads.
func maxNode(head []atomic.Pointer[uNode]) *uNode {
	max := head[0].Load()
	for i := 1; i < len(head); i++ {
		if n := head[i].Load(); n.seq.Load() > max.seq.Load() {
			max = n
		}
	}
	return max
}

// LFUniversal is the lock-free universal construction (Fig. 6.3): threads
// agree, one log slot at a time, on the order of invocations; each thread
// replays the log through its own private copy of the sequential object to
// compute responses. Starvation is possible (a thread can lose every
// consensus), but some thread always makes progress.
type LFUniversal struct {
	model core.Model
	head  []atomic.Pointer[uNode]
	tail  *uNode
}

// NewLFUniversal wraps the sequential specification for n threads.
func NewLFUniversal(model core.Model, n int) *LFUniversal {
	if n <= 0 {
		panic(fmt.Sprintf("consensus: thread count must be positive, got %d", n))
	}
	tail := &uNode{}
	tail.seq.Store(1)
	u := &LFUniversal{model: model, head: make([]atomic.Pointer[uNode], n), tail: tail}
	for i := range u.head {
		u.head[i].Store(tail)
	}
	return u
}

// Apply linearizes action(input) and returns the sequential object's
// response.
func (u *LFUniversal) Apply(me core.ThreadID, action string, input any) any {
	prefer := &uNode{action: action, input: input}
	for prefer.seq.Load() == 0 {
		before := maxNode(u.head)
		after := before.decideNext.Decide(me, prefer)
		before.next.Store(after)
		after.seq.Store(before.seq.Load() + 1)
		u.head[me].Store(after)
	}
	return u.replay(prefer)
}

// replay runs the log from the beginning through a fresh copy of the
// sequential object, returning the response at the target node.
func (u *LFUniversal) replay(target *uNode) any {
	state := u.model.Init()
	current := u.tail.next.Load()
	for {
		var out any
		state, out = u.model.Apply(state, current.action, current.input)
		if current == target {
			return out
		}
		current = current.next.Load()
	}
}

// WFUniversal is the wait-free universal construction (Fig. 6.4): before
// threading its own node, a thread helps the announced node whose turn it
// is (thread (seq+1) mod n), so every announced invocation is threaded
// within n log steps — no thread starves.
type WFUniversal struct {
	model    core.Model
	announce []atomic.Pointer[uNode]
	head     []atomic.Pointer[uNode]
	tail     *uNode
}

// NewWFUniversal wraps the sequential specification for n threads.
func NewWFUniversal(model core.Model, n int) *WFUniversal {
	if n <= 0 {
		panic(fmt.Sprintf("consensus: thread count must be positive, got %d", n))
	}
	tail := &uNode{}
	tail.seq.Store(1)
	u := &WFUniversal{
		model:    model,
		announce: make([]atomic.Pointer[uNode], n),
		head:     make([]atomic.Pointer[uNode], n),
		tail:     tail,
	}
	for i := range u.head {
		u.head[i].Store(tail)
		u.announce[i].Store(tail) // already-threaded placeholder
	}
	return u
}

// Apply linearizes action(input) and returns the sequential object's
// response.
func (u *WFUniversal) Apply(me core.ThreadID, action string, input any) any {
	n := len(u.head)
	mine := &uNode{action: action, input: input}
	u.announce[me].Store(mine)
	u.head[me].Store(maxNode(u.head))
	for mine.seq.Load() == 0 {
		before := u.head[me].Load()
		help := u.announce[int(before.seq.Load()+1)%n].Load()
		prefer := mine
		if help.seq.Load() == 0 {
			prefer = help // it is the helped thread's turn
		}
		after := before.decideNext.Decide(me, prefer)
		before.next.Store(after)
		after.seq.Store(before.seq.Load() + 1)
		u.head[me].Store(after)
	}
	u.head[me].Store(mine)
	return u.replay(mine)
}

// replay runs the log from the beginning through a fresh copy of the
// sequential object, returning the response at the target node.
func (u *WFUniversal) replay(target *uNode) any {
	state := u.model.Init()
	current := u.tail.next.Load()
	for {
		var out any
		state, out = u.model.Apply(state, current.action, current.input)
		if current == target {
			return out
		}
		current = current.next.Load()
	}
}
