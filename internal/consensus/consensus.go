// Package consensus implements the Chapter 5 consensus protocols and the
// Chapter 6 universal constructions.
//
// Chapter 5 ranks synchronization primitives by their consensus number:
// read/write registers cannot solve even 2-thread consensus; a FIFO queue
// solves exactly 2-thread consensus; compareAndSet solves consensus for
// any number of threads. Chapter 6 then shows the payoff: with n-thread
// consensus, *any* sequential object has a lock-free — and with helping, a
// wait-free — linearizable implementation.
package consensus

import (
	"fmt"
	"sync/atomic"

	"amp/internal/core"
	"amp/internal/queue"
)

// Protocol is a single-shot agreement object: every Decide call returns the
// same value, and that value was some caller's input (consistency and
// validity, §5.1).
type Protocol[T any] interface {
	Decide(me core.ThreadID, value T) T
}

// CASConsensus solves consensus for any number of threads with one
// compareAndSet register (§5.8): the first successful CAS decides.
type CASConsensus[T any] struct {
	decided atomic.Pointer[T]
}

var _ Protocol[int] = (*CASConsensus[int])(nil)

// NewCASConsensus returns an undecided consensus object.
func NewCASConsensus[T any]() *CASConsensus[T] {
	return &CASConsensus[T]{}
}

// Decide proposes value and returns the agreed value.
func (c *CASConsensus[T]) Decide(_ core.ThreadID, value T) T {
	c.decided.CompareAndSwap(nil, &value)
	return *c.decided.Load()
}

// QueueConsensus solves 2-thread consensus with a FIFO queue (Fig. 5.5):
// the queue is seeded with a WIN ball followed by a LOSE ball; whoever
// dequeues WIN imposes its own proposal.
type QueueConsensus[T any] struct {
	q        *queue.LockFreeQueue[bool] // true = WIN
	proposed [2]atomic.Pointer[T]
}

var _ Protocol[int] = (*QueueConsensus[int])(nil)

// NewQueueConsensus returns an undecided 2-thread consensus object.
func NewQueueConsensus[T any]() *QueueConsensus[T] {
	c := &QueueConsensus[T]{q: queue.NewLockFreeQueue[bool]()}
	c.q.Enq(true)  // WIN
	c.q.Enq(false) // LOSE
	return c
}

// Decide proposes value on behalf of thread me (0 or 1) and returns the
// agreed value.
func (c *QueueConsensus[T]) Decide(me core.ThreadID, value T) T {
	if me != 0 && me != 1 {
		panic(fmt.Sprintf("consensus: queue consensus is 2-thread only, got thread %d", me))
	}
	c.proposed[me].Store(&value)
	status, ok := c.q.Deq()
	if !ok {
		panic("consensus: queue consensus used by more than two threads")
	}
	if status {
		return value // dequeued WIN: my proposal decides
	}
	return *c.proposed[1-me].Load() // dequeued LOSE: the other thread won
}
