package consensus

import (
	"sync"
	"testing"

	"amp/internal/core"
)

func TestCASConsensusAgreementAndValidity(t *testing.T) {
	const threads = 8
	for trial := 0; trial < 50; trial++ {
		c := NewCASConsensus[int]()
		results := make([]int, threads)
		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(me core.ThreadID) {
				defer wg.Done()
				results[me] = c.Decide(me, int(me)*10)
			}(core.ThreadID(th))
		}
		wg.Wait()
		first := results[0]
		valid := false
		for th, r := range results {
			if r != first {
				t.Fatalf("trial %d: disagreement: thread %d decided %d, thread 0 decided %d",
					trial, th, r, first)
			}
			if first == th*10 {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("trial %d: decided value %d was never proposed", trial, first)
		}
	}
}

func TestQueueConsensusTwoThreads(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		c := NewQueueConsensus[string]()
		var a, b string
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); a = c.Decide(0, "alpha") }()
		go func() { defer wg.Done(); b = c.Decide(1, "beta") }()
		wg.Wait()
		if a != b {
			t.Fatalf("trial %d: disagreement %q vs %q", trial, a, b)
		}
		if a != "alpha" && a != "beta" {
			t.Fatalf("trial %d: invalid decision %q", trial, a)
		}
	}
}

func TestQueueConsensusSolo(t *testing.T) {
	c := NewQueueConsensus[int]()
	if got := c.Decide(0, 42); got != 42 {
		t.Fatalf("solo Decide = %d, want 42", got)
	}
}

func TestQueueConsensusRejectsThirdThread(t *testing.T) {
	c := NewQueueConsensus[int]()
	defer func() {
		if recover() == nil {
			t.Fatal("thread 2 did not panic")
		}
	}()
	c.Decide(2, 1)
}

func TestCASConsensusIdempotentDecide(t *testing.T) {
	c := NewCASConsensus[int]()
	first := c.Decide(0, 5)
	second := c.Decide(0, 9) // re-deciding must return the original value
	if first != 5 || second != 5 {
		t.Fatalf("Decide results %d, %d; want 5, 5", first, second)
	}
}

// universals builds both constructions over the counter model.
func universals(n int) map[string]interface {
	Apply(core.ThreadID, string, any) any
} {
	return map[string]interface {
		Apply(core.ThreadID, string, any) any
	}{
		"lockfree": NewLFUniversal(core.CounterModel(), n),
		"waitfree": NewWFUniversal(core.CounterModel(), n),
	}
}

func TestUniversalSequential(t *testing.T) {
	for name, u := range universals(2) {
		t.Run(name, func(t *testing.T) {
			for want := int64(0); want < 20; want++ {
				got := u.Apply(0, "getAndIncrement", nil)
				if got != want {
					t.Fatalf("ticket = %v, want %d", got, want)
				}
			}
			if got := u.Apply(1, "read", nil); got != int64(20) {
				t.Fatalf("read = %v, want 20", got)
			}
		})
	}
}

// TestUniversalCounterTickets: a counter implemented through either
// universal construction must hand out each ticket exactly once.
func TestUniversalCounterTickets(t *testing.T) {
	const (
		threads = 4
		perT    = 60
	)
	for name, u := range universals(threads) {
		t.Run(name, func(t *testing.T) {
			seen := make([][]int64, threads)
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(me core.ThreadID) {
					defer wg.Done()
					for i := 0; i < perT; i++ {
						v := u.Apply(me, "getAndIncrement", nil).(int64)
						seen[me] = append(seen[me], v)
					}
				}(core.ThreadID(th))
			}
			wg.Wait()
			all := make(map[int64]bool)
			for th := range seen {
				last := int64(-1)
				for _, v := range seen[th] {
					if v <= last {
						t.Fatalf("thread %d tickets not increasing: %d after %d", th, v, last)
					}
					last = v
					if all[v] {
						t.Fatalf("ticket %d issued twice", v)
					}
					all[v] = true
				}
			}
			for v := int64(0); v < threads*perT; v++ {
				if !all[v] {
					t.Fatalf("ticket %d never issued", v)
				}
			}
		})
	}
}

// TestUniversalQueueLinearizable drives the universal construction wrapping
// a queue model and checks the recorded history with the Chapter 3 checker.
func TestUniversalQueueLinearizable(t *testing.T) {
	const threads = 3
	for _, name := range []string{"lockfree", "waitfree"} {
		t.Run(name, func(t *testing.T) {
			var u interface {
				Apply(core.ThreadID, string, any) any
			}
			if name == "lockfree" {
				u = NewLFUniversal(core.QueueModel(), threads)
			} else {
				u = NewWFUniversal(core.QueueModel(), threads)
			}
			rec := core.NewRecorder()
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(me core.ThreadID) {
					defer wg.Done()
					for i := 0; i < 5; i++ {
						if (int(me)+i)%2 == 0 {
							v := int(me)*100 + i
							p := rec.Call(me, "enq", v)
							u.Apply(me, "enq", v)
							p.Done(nil)
						} else {
							p := rec.Call(me, "deq", nil)
							p.Done(u.Apply(me, "deq", nil))
						}
					}
				}(core.ThreadID(th))
			}
			wg.Wait()
			res := core.Check(core.QueueModel(), rec.History())
			if res.Exhausted {
				t.Skip("checker budget exhausted")
			}
			if !res.Linearizable {
				t.Fatalf("universal queue produced a non-linearizable history:\n%v", rec.History())
			}
		})
	}
}

func TestUniversalConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLFUniversal(core.CounterModel(), 0) },
		func() { NewWFUniversal(core.CounterModel(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad constructor did not panic")
				}
			}()
			f()
		}()
	}
}
