// Package mutex implements the Chapter 2 classical mutual-exclusion
// algorithms: the two-thread LockOne, LockTwo and Peterson locks, and the
// n-thread Filter, Bakery and Peterson-tournament-tree locks.
//
// The book writes these with plain reads and writes of "multi-reader
// multi-writer registers" and assumes sequential consistency. Go's memory
// model makes no such promise for plain accesses, so every shared field
// here is a sync/atomic value — the Go rendering of the book's registers
// (the book's own appendix makes the same point about real hardware and
// volatile). All locks in this package are starvation-free or deadlock-free
// exactly as proved in the chapter.
package mutex

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"amp/internal/core"
)

// Lock is a mutual-exclusion lock whose operations identify the calling
// thread, mirroring the book's use of ThreadID.get(). IDs must be dense in
// [0, capacity) and at most one goroutine may use a given ID at a time.
type Lock interface {
	Lock(me core.ThreadID)
	Unlock(me core.ThreadID)
	// Capacity reports the number of distinct thread IDs supported.
	Capacity() int
}

// LockOne is the first two-thread attempt (Fig. 2.4): each thread raises a
// flag and waits for the other's to drop. It satisfies mutual exclusion but
// deadlocks when the lock attempts interleave, which TestLockOneDeadlocks
// demonstrates — it is included for completeness, as in the book.
type LockOne struct {
	flag [2]atomic.Bool
}

var _ Lock = (*LockOne)(nil)

// Lock acquires the lock for thread me (0 or 1). May deadlock under
// concurrent acquisition; see the type comment.
func (l *LockOne) Lock(me core.ThreadID) {
	other := 1 - me
	l.flag[me].Store(true)
	for l.flag[other].Load() {
		runtime.Gosched()
	}
}

// Unlock releases the lock.
func (l *LockOne) Unlock(me core.ThreadID) {
	l.flag[me].Store(false)
}

// Capacity reports 2.
func (l *LockOne) Capacity() int { return 2 }

// TryLock attempts the LockOne protocol but gives up after spins failed
// polls, returning false. This makes the deadlock demonstrable in tests
// without hanging them.
func (l *LockOne) TryLock(me core.ThreadID, spins int) bool {
	other := 1 - me
	l.flag[me].Store(true)
	for i := 0; i < spins; i++ {
		if !l.flag[other].Load() {
			return true
		}
		runtime.Gosched()
	}
	l.flag[me].Store(false)
	return false
}

// LockTwo is the second two-thread attempt (Fig. 2.5): pure deference via a
// victim field. It excludes, but deadlocks when one thread runs alone —
// the complementary failure to LockOne.
type LockTwo struct {
	victim atomic.Int32
}

var _ Lock = (*LockTwo)(nil)

// Lock acquires for thread me (0 or 1). Blocks forever if the other thread
// never calls Lock; see the type comment.
func (l *LockTwo) Lock(me core.ThreadID) {
	l.victim.Store(int32(me))
	for l.victim.Load() == int32(me) {
		runtime.Gosched()
	}
}

// Unlock is a no-op: LockTwo releases by the next Lock call.
func (l *LockTwo) Unlock(core.ThreadID) {}

// Capacity reports 2.
func (l *LockTwo) Capacity() int { return 2 }

// TryLock attempts the LockTwo protocol with a bounded number of polls.
func (l *LockTwo) TryLock(me core.ThreadID, spins int) bool {
	l.victim.Store(int32(me))
	for i := 0; i < spins; i++ {
		if l.victim.Load() != int32(me) {
			return true
		}
		runtime.Gosched()
	}
	return false
}

// Peterson combines LockOne and LockTwo into the classic starvation-free
// two-thread lock (Fig. 2.6): raise your flag, defer as victim, wait while
// the other is interested and you are the victim.
type Peterson struct {
	flag   [2]atomic.Bool
	victim atomic.Int32
}

var _ Lock = (*Peterson)(nil)

// Lock acquires the lock for thread me (0 or 1).
func (l *Peterson) Lock(me core.ThreadID) {
	other := 1 - me
	l.flag[me].Store(true)
	l.victim.Store(int32(me))
	for l.flag[other].Load() && l.victim.Load() == int32(me) {
		runtime.Gosched()
	}
}

// Unlock releases the lock.
func (l *Peterson) Unlock(me core.ThreadID) {
	l.flag[me].Store(false)
}

// Capacity reports 2.
func (l *Peterson) Capacity() int { return 2 }

// Filter generalizes Peterson to n threads (Fig. 2.7): n-1 waiting levels,
// each of which filters out one thread. level[t] is the level thread t is
// trying to enter; victim[L] is the last thread to enter level L.
type Filter struct {
	n      int
	level  []atomic.Int32
	victim []atomic.Int32
}

var _ Lock = (*Filter)(nil)

// NewFilter returns a Filter lock for n threads.
func NewFilter(n int) *Filter {
	if n < 2 {
		panic(fmt.Sprintf("mutex: filter lock needs at least 2 threads, got %d", n))
	}
	return &Filter{
		n:      n,
		level:  make([]atomic.Int32, n),
		victim: make([]atomic.Int32, n),
	}
}

// Lock acquires the lock for thread me.
func (l *Filter) Lock(me core.ThreadID) {
	for lvl := 1; lvl < l.n; lvl++ {
		l.level[me].Store(int32(lvl))
		l.victim[lvl].Store(int32(me))
		// Spin while some other thread is at my level or higher and I am
		// this level's victim.
		for l.victim[lvl].Load() == int32(me) && l.someoneAtOrAbove(lvl, me) {
			runtime.Gosched()
		}
	}
}

func (l *Filter) someoneAtOrAbove(lvl int, me core.ThreadID) bool {
	for t := 0; t < l.n; t++ {
		if t != int(me) && l.level[t].Load() >= int32(lvl) {
			return true
		}
	}
	return false
}

// Unlock releases the lock.
func (l *Filter) Unlock(me core.ThreadID) {
	l.level[me].Store(0)
}

// Capacity reports the thread bound n.
func (l *Filter) Capacity() int { return l.n }

// Bakery is Lamport's bakery lock (Fig. 2.9): first-come-first-served by
// (label, id) lexicographic order. Labels grow without bound; int64 labels
// make overflow a non-issue in practice.
type Bakery struct {
	n     int
	flag  []atomic.Bool
	label []atomic.Int64
}

var _ Lock = (*Bakery)(nil)

// NewBakery returns a Bakery lock for n threads.
func NewBakery(n int) *Bakery {
	if n < 1 {
		panic(fmt.Sprintf("mutex: bakery lock needs at least 1 thread, got %d", n))
	}
	return &Bakery{
		n:     n,
		flag:  make([]atomic.Bool, n),
		label: make([]atomic.Int64, n),
	}
}

// Lock takes a ticket one larger than any visible label, then waits for
// every thread with a lexicographically smaller (label, id).
func (l *Bakery) Lock(me core.ThreadID) {
	l.flag[me].Store(true)
	max := int64(0)
	for t := 0; t < l.n; t++ {
		if lab := l.label[t].Load(); lab > max {
			max = lab
		}
	}
	myLabel := max + 1
	l.label[me].Store(myLabel)
	for t := 0; t < l.n; t++ {
		if t == int(me) {
			continue
		}
		for l.flag[t].Load() && lexLess(l.label[t].Load(), int64(t), myLabel, int64(me)) {
			runtime.Gosched()
		}
	}
}

// lexLess reports (la, ta) < (lb, tb) lexicographically, ignoring la == 0
// handled by the flag check in Lock. A label of 0 means "never interested",
// but such threads also have flag false, so the caller never waits on them.
func lexLess(la, ta, lb, tb int64) bool {
	if la != lb {
		return la < lb
	}
	return ta < tb
}

// Unlock releases the lock.
func (l *Bakery) Unlock(me core.ThreadID) {
	l.flag[me].Store(false)
}

// Capacity reports the thread bound n.
func (l *Bakery) Capacity() int { return l.n }

// Tournament is the Peterson tournament tree sketched in the Chapter 2
// exercises: n threads (n a power of two) compete pairwise up a binary tree
// of Peterson locks; the root winner holds the global lock. Unlock releases
// the path from the root back down to the leaf.
type Tournament struct {
	n     int
	depth int
	nodes []Peterson // heap layout: node 1 is the root
}

var _ Lock = (*Tournament)(nil)

// NewTournament returns a tournament lock for n threads; n must be a power
// of two and at least 2.
func NewTournament(n int) *Tournament {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("mutex: tournament lock needs a power-of-two thread count >= 2, got %d", n))
	}
	depth := 0
	for 1<<depth < n {
		depth++
	}
	return &Tournament{n: n, depth: depth, nodes: make([]Peterson, n)}
}

// Lock climbs from the thread's leaf to the root, winning a Peterson lock
// at each internal node.
func (l *Tournament) Lock(me core.ThreadID) {
	node := l.n + int(me) // virtual leaf index
	for node > 1 {
		role := core.ThreadID(node & 1) // left child plays 0, right plays 1
		node /= 2
		l.nodes[node].Lock(role)
	}
}

// Unlock walks from the root back to the leaf, releasing each node with the
// role the thread played there.
func (l *Tournament) Unlock(me core.ThreadID) {
	// Recompute the path root→leaf: the node at height h on the path is
	// (n + me) >> h, and the role played there is bit h-1 of (n + me).
	leaf := l.n + int(me)
	for h := l.depth; h >= 1; h-- {
		node := leaf >> h
		role := core.ThreadID((leaf >> (h - 1)) & 1)
		l.nodes[node].Unlock(role)
	}
}

// Capacity reports the thread bound n.
func (l *Tournament) Capacity() int { return l.n }
