package mutex

import (
	"sync"
	"sync/atomic"
	"testing"

	"amp/internal/core"
)

// exercise runs `threads` goroutines, each performing `iters` critical
// sections guarded by l, and fails the test on any mutual-exclusion
// violation. It returns the total number of completed critical sections.
func exercise(t *testing.T, l Lock, threads, iters int) int64 {
	t.Helper()
	if threads > l.Capacity() {
		t.Fatalf("test bug: %d threads exceeds lock capacity %d", threads, l.Capacity())
	}
	var (
		inCS    atomic.Int32
		total   atomic.Int64
		counter int64 // plain variable: the race detector cross-checks exclusion
		wg      sync.WaitGroup
	)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock(me)
				if got := inCS.Add(1); got != 1 {
					t.Errorf("mutual exclusion violated: %d threads in CS", got)
				}
				counter++
				inCS.Add(-1)
				l.Unlock(me)
				total.Add(1)
			}
		}(core.ThreadID(th))
	}
	wg.Wait()
	if counter != int64(threads*iters) {
		t.Fatalf("lost updates: counter = %d, want %d", counter, threads*iters)
	}
	return total.Load()
}

func TestPetersonMutualExclusion(t *testing.T) {
	exercise(t, &Peterson{}, 2, 2000)
}

func TestFilterMutualExclusion(t *testing.T) {
	exercise(t, NewFilter(4), 4, 500)
}

func TestBakeryMutualExclusion(t *testing.T) {
	exercise(t, NewBakery(4), 4, 500)
}

func TestTournamentMutualExclusion(t *testing.T) {
	exercise(t, NewTournament(4), 4, 500)
}

func TestTournamentEightThreads(t *testing.T) {
	exercise(t, NewTournament(8), 8, 200)
}

func TestLockOneSolo(t *testing.T) {
	var l LockOne
	// A single thread can always get through LockOne.
	for i := 0; i < 10; i++ {
		l.Lock(0)
		l.Unlock(0)
	}
}

func TestLockOneDeadlockScenario(t *testing.T) {
	// The book's deadlock: both threads set their flags before either
	// checks the other's. Simulate thread 1 having just set its flag;
	// thread 0 then cannot acquire.
	var l LockOne
	l.flag[1].Store(true)
	if l.TryLock(0, 100) {
		t.Fatal("LockOne acquired while the other thread's flag was up")
	}
	// Once thread 1 clears its flag, thread 0 proceeds.
	l.flag[1].Store(false)
	if !l.TryLock(0, 100) {
		t.Fatal("LockOne failed to acquire with the other flag down")
	}
}

func TestLockOneMutualExclusionUnderAlternation(t *testing.T) {
	// LockOne does exclude; it only lacks deadlock-freedom. With TryLock
	// retries standing in for a fair scheduler, exclusion must still hold.
	var (
		l    LockOne
		inCS atomic.Int32
		wg   sync.WaitGroup
	)
	for th := 0; th < 2; th++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for done := 0; done < 300; {
				if !l.TryLock(me, 50) {
					continue
				}
				if got := inCS.Add(1); got != 1 {
					t.Errorf("LockOne exclusion violated: %d in CS", got)
				}
				inCS.Add(-1)
				l.Unlock(me)
				done++
			}
		}(core.ThreadID(th))
	}
	wg.Wait()
}

func TestLockTwoSoloDeadlocks(t *testing.T) {
	// The book's complementary failure: running alone, LockTwo waits
	// forever because no one else overwrites victim.
	var l LockTwo
	if l.TryLock(0, 100) {
		t.Fatal("LockTwo acquired running solo; it must deadlock")
	}
}

func TestLockTwoAlternation(t *testing.T) {
	// With both threads active, each Lock call releases the other. LockTwo
	// makes progress only while its partner keeps arriving, so the threads
	// share a *combined* quota: when it is reached, both stop, and neither
	// is left waiting on a partner that already exited.
	var (
		l     LockTwo
		inCS  atomic.Int32
		total atomic.Int32
		wg    sync.WaitGroup
	)
	const quota = 200
	for th := 0; th < 2; th++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for total.Load() < quota {
				if !l.TryLock(me, 200) {
					continue
				}
				if got := inCS.Add(1); got != 1 {
					t.Errorf("LockTwo exclusion violated: %d in CS", got)
				}
				inCS.Add(-1)
				total.Add(1)
			}
		}(core.ThreadID(th))
	}
	wg.Wait()
	if total.Load() < quota {
		t.Fatalf("completed %d critical sections, want at least %d", total.Load(), quota)
	}
}

func TestFilterFewerThreadsThanCapacity(t *testing.T) {
	// A Filter lock sized for 8 must work when only 3 threads show up.
	exercise(t, NewFilter(8), 3, 300)
}

func TestBakerySingleThread(t *testing.T) {
	l := NewBakery(1)
	for i := 0; i < 100; i++ {
		l.Lock(0)
		l.Unlock(0)
	}
}

func TestBakeryLabelsIncrease(t *testing.T) {
	l := NewBakery(2)
	l.Lock(0)
	first := l.label[0].Load()
	l.Unlock(0)
	l.Lock(0)
	second := l.label[0].Load()
	l.Unlock(0)
	if second <= first {
		t.Fatalf("bakery labels not increasing: %d then %d", first, second)
	}
}

func TestConstructorPanics(t *testing.T) {
	tests := []struct {
		name string
		f    func()
	}{
		{"filter n=1", func() { NewFilter(1) }},
		{"bakery n=0", func() { NewBakery(0) }},
		{"tournament n=3", func() { NewTournament(3) }},
		{"tournament n=1", func() { NewTournament(1) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("constructor did not panic")
				}
			}()
			tt.f()
		})
	}
}

func TestCapacities(t *testing.T) {
	tests := []struct {
		name string
		l    Lock
		want int
	}{
		{"lockone", &LockOne{}, 2},
		{"locktwo", &LockTwo{}, 2},
		{"peterson", &Peterson{}, 2},
		{"filter", NewFilter(6), 6},
		{"bakery", NewBakery(5), 5},
		{"tournament", NewTournament(8), 8},
	}
	for _, tt := range tests {
		if got := tt.l.Capacity(); got != tt.want {
			t.Errorf("%s: Capacity() = %d, want %d", tt.name, got, tt.want)
		}
	}
}
