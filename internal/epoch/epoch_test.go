package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdvanceRequiresObservation: the epoch cannot move past a slot
// pinned at an older epoch, and moves freely once it unpins.
func TestAdvanceRequiresObservation(t *testing.T) {
	d := NewDomain(1)
	r := d.Pin() // observes epoch e
	e := d.Epoch()

	// One advancement is legal: r has observed e, so e -> e+1 only
	// needs r's observation of e.
	if !d.TryAdvance() {
		t.Fatalf("advance %d -> %d should succeed with reader at %d", e, e+1, e)
	}
	// The second is not: r still shows e, the current epoch is e+1.
	for i := 0; i < 10; i++ {
		if d.TryAdvance() {
			t.Fatalf("advance past %d succeeded with reader pinned at %d", e+1, e)
		}
	}
	d.Unpin(r)
	if !d.TryAdvance() {
		t.Fatal("advance should succeed after the stalled reader unpinned")
	}
	if got := d.Epoch(); got != e+2 {
		t.Fatalf("epoch = %d, want %d", got, e+2)
	}
}

// TestStalledReaderPinsRetiredNode is the whitebox grace-period check:
// a node retired while a stalled reader's slot still pins its epoch is
// never handed out by Alloc, no matter how often other slots cycle and
// advance; it is handed out promptly once the reader unpins.
func TestStalledReaderPinsRetiredNode(t *testing.T) {
	d := NewDomain(1)
	node := new(int)

	r := d.Pin() // the stalled reader: pins the current epoch

	w := d.Pin()
	w.Retire(0, node)
	d.Unpin(w)

	// Hammer the domain from another slot: pin/unpin cycles, forced
	// advancement attempts, allocation pressure. The retired node must
	// stay quarantined for as long as r is pinned.
	for i := 0; i < 100; i++ {
		w := d.Pin()
		d.TryAdvance()
		if x := w.Alloc(0); x != nil {
			t.Fatalf("iteration %d: Alloc returned %p while reader pins epoch (retired %p)", i, x, node)
		}
		d.Unpin(w)
	}

	d.Unpin(r)

	// Two advancements after the retire epoch make it safe. The node's
	// retire list belongs to the second slot in LIFO order (the reader
	// held the first), so pin twice and allocate on the second.
	var got any
	for i := 0; i < 100 && got == nil; i++ {
		p1 := d.Pin()
		p2 := d.Pin() // the slot that retired the node
		got = p2.Alloc(0)
		d.Unpin(p2)
		d.Unpin(p1)
		d.TryAdvance()
	}
	if got != node {
		t.Fatalf("after unpin, Alloc = %v, want the retired node %p", got, node)
	}
}

// TestFreeBypassesGrace: never-published items return immediately.
func TestFreeBypassesGrace(t *testing.T) {
	d := NewDomain(2)
	s := d.Pin()
	defer d.Unpin(s)
	x := new(int)
	s.Free(1, x)
	if got := s.Alloc(1); got != x {
		t.Fatalf("Alloc = %v, want freed item back", got)
	}
	if got := s.Alloc(0); got != nil {
		t.Fatalf("Alloc(0) = %v, want nil (pools are separate)", got)
	}
}

// TestOverflowTransfer: items retired on a producer-heavy slot reach a
// consumer-only slot through the shared overflow.
func TestOverflowTransfer(t *testing.T) {
	d := NewDomain(1)
	// Produce enough retired items on one slot to overflow its private
	// free list into the shared pool.
	s := d.Pin()
	const n = localFreeMax + 4*xferBatch
	for i := 0; i < n; i++ {
		s.Retire(0, new(int))
	}
	d.Unpin(s)
	for i := 0; i < 4; i++ {
		d.TryAdvance()
	}
	// Reclaim on the producer slot (Alloc triggers it), draining its
	// bucket into private + shared lists.
	s = d.Pin()
	if s.Alloc(0) == nil {
		t.Fatal("producer slot should reclaim its own retires")
	}

	// A different, never-used slot must be able to pull from the shared
	// overflow. Hold the producer slot so the consumer gets a fresh one.
	c := d.Pin()
	got := 0
	for i := 0; i < 2*xferBatch; i++ {
		if c.Alloc(0) != nil {
			got++
		}
	}
	d.Unpin(c)
	d.Unpin(s)
	if got == 0 {
		t.Fatal("consumer slot never received items through the shared overflow")
	}
}

// token is the stress-test payload: gen is written (plain, non-atomic)
// every time the writer recycles the token. If reclamation ever reuses
// a token while a pinned reader can still reach it, the reader observes
// a torn generation — and the race detector observes an unsynchronized
// read/write pair.
type token struct {
	gen  int64
	self *token // integrity: must always point back at itself
}

// TestConcurrentPublishRetireStress: writers publish tokens to shared
// cells, retire the displaced ones, and recycle; readers chase the
// cells while pinned and verify the token under them never mutates.
func TestConcurrentPublishRetireStress(t *testing.T) {
	const (
		cells   = 8
		writers = 4
		readers = 4
		ops     = 20000
	)
	d := NewDomain(1)
	var cur [cells]atomic.Pointer[token]
	for i := range cur {
		tk := &token{gen: 1}
		tk.self = tk
		cur[i].Store(tk)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := seed
			for i := 0; i < ops; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				ci := int(uint64(rng) % cells)
				s := d.Pin()
				var tk *token
				if x := s.Alloc(0); x != nil {
					tk = x.(*token)
				} else {
					tk = new(token)
				}
				tk.gen++ // plain write: races iff reclamation is broken
				tk.self = tk
				old := cur[ci].Swap(tk)
				s.Retire(0, old)
				d.Unpin(s)
			}
		}(int64(w + 1))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				s := d.Pin()
				tk := cur[i%cells].Load()
				g1 := tk.gen
				if tk.self != tk {
					t.Errorf("token %p self-pointer broken: recycled under a pinned reader", tk)
				}
				if g2 := tk.gen; g1 != g2 {
					t.Errorf("token %p generation moved %d -> %d under a pinned reader", tk, g1, g2)
				}
				d.Unpin(s)
				if t.Failed() {
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPinSlotExclusivity: concurrent pins never share a slot.
func TestPinSlotExclusivity(t *testing.T) {
	d := NewDomain(1)
	inUse := make([]atomic.Bool, len(d.slots))
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				s := d.Pin()
				if !inUse[s.idx].CompareAndSwap(false, true) {
					t.Errorf("slot %d handed to two goroutines at once", s.idx)
					d.Unpin(s)
					return
				}
				inUse[s.idx].Store(false)
				d.Unpin(s)
			}
		}()
	}
	wg.Wait()
}

// TestEpochMakesProgressUnderChurn: with every pin short-lived, the
// global epoch keeps advancing (reclamation cannot wedge).
func TestEpochMakesProgressUnderChurn(t *testing.T) {
	d := NewDomain(1)
	start := d.Epoch()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := d.Pin()
				s.Retire(0, new(int))
				s.Alloc(0)
				d.Unpin(s)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Epoch() < start+10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := d.Epoch(); got < start+10 {
		t.Fatalf("epoch advanced only %d -> %d under churn", start, got)
	}
}
