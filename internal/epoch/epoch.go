// Package epoch implements epoch-based memory reclamation (EBR) for the
// lock-free structures, generalizing the stamped node pool of
// queue.RecyclingQueue (§10.6). The book's CAS-based algorithms lean on
// the garbage collector for two things at once: ABA safety and safe
// memory reclamation. That is correct but costs an allocation per
// operation on every served hot path. EBR recovers both guarantees with
// explicit recycling, the scheme McKenney develops for RCU:
//
//   - A Domain keeps a global epoch counter and a fixed set of Slots.
//   - An operation Pins a slot, recording the epoch it runs under, and
//     Unpins on exit. While any slot is pinned at epoch e, no memory
//     retired at e or later is ever reused, so a pinned operation can
//     chase stale pointers — including the ABA-prone CAS windows of the
//     Michael–Scott queue and the Harris–Michael list — without ever
//     touching recycled memory.
//   - Unlinked nodes are Retired, not freed: they join the pinning
//     slot's retire list tagged with the current global epoch.
//   - The global epoch advances when every pinned slot has observed it.
//     Memory retired at epoch r is safe to reuse once the global epoch
//     reaches r+2: both advancements past r prove that every operation
//     that could still hold a reference has unpinned.
//   - Safe memory is not returned to the GC but recycled: Alloc hands
//     retired nodes back to the structure, type-erased, so steady-state
//     operation allocates nothing.
//
// A Domain partitions its recycled memory into numbered pools (node
// types, tower heights); items never migrate between pools. Slots keep
// private free lists and spill to a shared, mutex-guarded overflow so
// producer-heavy slots feed consumer-heavy ones; the mutex is off the
// hot path (touched only when a private list empties or overflows).
//
// Contract: Retire and Alloc may only be called between Pin and Unpin,
// on the Slot that Pin returned. A goroutine must not nest Pins of the
// same Domain. A stalled pinned slot blocks reclamation (memory grows,
// correctness is unaffected) — exactly RCU's reader-side contract.
package epoch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	// activeBit marks a pinned slot; the low bits hold the observed epoch.
	activeBit = 1 << 63
	epochMask = activeBit - 1

	// nBuckets is the per-slot retire ring. Retires tag the current
	// global epoch g and land in bucket g%nBuckets; a bucket reclaimed
	// for a new epoch held epoch g-nBuckets ≤ g-2, which is always past
	// its grace period.
	nBuckets = 4

	// advanceEvery amortizes the O(slots) advance scan over pins.
	advanceEvery = 64

	// localFreeMax bounds a slot's private free list per pool before it
	// spills to the shared overflow; xferBatch items move per spill or
	// refill, amortizing the mutex.
	localFreeMax = 256
	xferBatch    = 64
)

// retiredItem is one retired node awaiting its grace period.
type retiredItem struct {
	pool int32
	x    any
}

// bucket collects items retired under one epoch.
type bucket struct {
	epoch uint64
	items []retiredItem
}

// Slot is one epoch record plus its private retire ring and free lists.
// A Slot is exclusively owned between Pin and Unpin; ownership passes
// between goroutines through the domain's slot free stack, whose CASes
// order every plain-field access.
type Slot struct {
	d   *Domain
	idx uint32

	// state is read by every TryAdvance scan; keep the shared words away
	// from the owner-only fields.
	state    atomic.Uint64 // activeBit|epoch while pinned, 0 while idle
	nextFree atomic.Uint32 // slot free-stack link: index+1, 0 ends
	_        [48]byte

	pins    uint64
	retired [nBuckets]bucket
	free    [][]any // per-pool recycled items, owner-only
}

// Domain is one reclamation scope, typically owned by one structure
// instance. The zero value is not usable; call NewDomain.
type Domain struct {
	global  atomic.Uint64
	freeTop atomic.Uint64 // stamped slot stack top: stamp<<32 | index+1
	slots   []Slot
	npools  int

	// Shared overflow between slots, per pool. Cold path only.
	xmu  sync.Mutex
	xfer [][]any
}

// NewDomain returns a Domain with the given number of recycling pools.
// Structures number their node types (and skiplist tower heights) as
// pools; Alloc and Retire take the pool index.
func NewDomain(pools int) *Domain {
	if pools <= 0 {
		panic(fmt.Sprintf("epoch: pools must be positive, got %d", pools))
	}
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 128 {
		n = 128
	}
	d := &Domain{slots: make([]Slot, n), npools: pools, xfer: make([][]any, pools)}
	for i := range d.slots {
		s := &d.slots[i]
		s.d = d
		s.idx = uint32(i)
		s.free = make([][]any, pools)
		if i+1 < n {
			s.nextFree.Store(uint32(i + 2)) // link to slot i+1
		}
	}
	d.freeTop.Store(1) // stamp 0, index 0
	return d
}

// Epoch reports the current global epoch (diagnostics and tests).
func (d *Domain) Epoch() uint64 { return d.global.Load() }

// ActivePins counts the slots currently pinned — a leak probe: a domain
// quiesced between operations must report zero, or some reader exited
// without Unpin and reclamation is wedged forever.
func (d *Domain) ActivePins() int {
	n := 0
	for i := range d.slots {
		if d.slots[i].state.Load()&activeBit != 0 {
			n++
		}
	}
	return n
}

// acquire pops a slot off the stamped free stack, yielding the scheduler
// while every slot is pinned (possible only when pinned goroutines
// outnumber slots, i.e. under heavy oversubscription).
func (d *Domain) acquire() *Slot {
	for {
		top := d.freeTop.Load()
		idx := uint32(top)
		if idx == 0 {
			runtime.Gosched()
			continue
		}
		s := &d.slots[idx-1]
		next := s.nextFree.Load()
		// The stamp makes the pop immune to the ABA recycling of slots
		// (same trick as RecyclingQueue's free list).
		if d.freeTop.CompareAndSwap(top, (top>>32+1)<<32|uint64(next)) {
			return s
		}
	}
}

// release pushes a slot back on the free stack.
func (d *Domain) release(s *Slot) {
	for {
		top := d.freeTop.Load()
		s.nextFree.Store(uint32(top))
		if d.freeTop.CompareAndSwap(top, (top>>32+1)<<32|uint64(s.idx+1)) {
			return
		}
	}
}

// Pin enters a read-side critical section: it claims a slot and records
// the current global epoch in it. The store-then-recheck loop guarantees
// that once Pin returns, every later epoch advancement scans this slot —
// an advancement concurrent with the pin may miss it, but then the
// re-read observes the advanced epoch and the loop re-pins under it.
func (d *Domain) Pin() *Slot {
	s := d.acquire()
	for {
		e := d.global.Load()
		s.state.Store(activeBit | e)
		if d.global.Load() == e {
			break
		}
	}
	s.pins++
	if s.pins%advanceEvery == 0 {
		d.TryAdvance()
	}
	return s
}

// Unpin leaves the critical section and returns the slot.
func (d *Domain) Unpin(s *Slot) {
	s.state.Store(0)
	d.release(s)
}

// TryAdvance bumps the global epoch if every pinned slot has observed
// the current one, reporting whether it advanced. Pins call it every
// advanceEvery operations; it is exported for tests and for structures
// that want to force reclamation forward.
func (d *Domain) TryAdvance() bool {
	e := d.global.Load()
	for i := range d.slots {
		st := d.slots[i].state.Load()
		if st&activeBit != 0 && st&epochMask != e {
			return false
		}
	}
	return d.global.CompareAndSwap(e, e+1)
}

// Retire hands a no-longer-reachable item to the collector. The caller
// must have unlinked x from the structure (no path from the roots
// reaches it) and must still hold s pinned. x becomes available to
// Alloc once two epoch advancements prove all possible readers gone.
func (s *Slot) Retire(pool int, x any) {
	g := s.d.global.Load()
	b := &s.retired[g%nBuckets]
	if b.epoch != g {
		if len(b.items) > 0 {
			s.reclaim(b) // ring leftovers are ≥ nBuckets epochs old
		}
		b.epoch = g
	}
	b.items = append(b.items, retiredItem{pool: int32(pool), x: x})
}

// Alloc returns a recycled item from the pool, or nil when none has
// cleared its grace period yet (the caller then allocates fresh). The
// caller must hold s pinned.
func (s *Slot) Alloc(pool int) any {
	if x := s.take(pool); x != nil {
		return x
	}
	g := s.d.global.Load()
	for i := range s.retired {
		if b := &s.retired[i]; len(b.items) > 0 && b.epoch+2 <= g {
			s.reclaim(b)
		}
	}
	if x := s.take(pool); x != nil {
		return x
	}
	s.refill(pool)
	if x := s.take(pool); x != nil {
		return x
	}
	s.d.TryAdvance() // make headway for the next Alloc
	return nil
}

// Free returns an item that was never published to the structure (e.g.
// prepared for a CAS that failed) straight to the free list, skipping
// the grace period no reader needs.
func (s *Slot) Free(pool int, x any) { s.put(pool, x) }

// reclaim moves a ripe bucket's items to the free lists.
func (s *Slot) reclaim(b *bucket) {
	for i := range b.items {
		it := b.items[i]
		b.items[i].x = nil
		s.put(int(it.pool), it.x)
	}
	b.items = b.items[:0]
}

// put appends to the private free list, spilling a batch to the shared
// overflow when it overflows.
func (s *Slot) put(pool int, x any) {
	f := s.free[pool]
	if len(f) >= localFreeMax {
		d := s.d
		spill := f[len(f)-xferBatch:]
		d.xmu.Lock()
		d.xfer[pool] = append(d.xfer[pool], spill...)
		d.xmu.Unlock()
		for i := range spill {
			spill[i] = nil
		}
		f = f[:len(f)-xferBatch]
	}
	s.free[pool] = append(f, x)
}

// take pops from the private free list.
func (s *Slot) take(pool int) any {
	f := s.free[pool]
	n := len(f)
	if n == 0 {
		return nil
	}
	x := f[n-1]
	f[n-1] = nil
	s.free[pool] = f[:n-1]
	return x
}

// refill pulls a batch from the shared overflow into the private list.
func (s *Slot) refill(pool int) {
	d := s.d
	d.xmu.Lock()
	xf := d.xfer[pool]
	k := xferBatch
	if k > len(xf) {
		k = len(xf)
	}
	if k > 0 {
		moved := xf[len(xf)-k:]
		s.free[pool] = append(s.free[pool], moved...)
		for i := range moved {
			moved[i] = nil
		}
		d.xfer[pool] = xf[:len(xf)-k]
	}
	d.xmu.Unlock()
}
