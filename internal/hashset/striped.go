package hashset

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// bucketTable is the sequential core shared by the lock-based sets: a
// power-of-two slice of unsorted buckets.
type bucketTable struct {
	buckets [][]int
	size    atomic.Int64 // updated under per-stripe locks, so it must be atomic
}

func newBucketTable(capacity int) *bucketTable {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("hashset: capacity must be a power of two >= 2, got %d", capacity))
	}
	return &bucketTable{buckets: make([][]int, capacity)}
}

func (t *bucketTable) bucketOf(x int) int { return hashIndex(x, len(t.buckets)) }

func (t *bucketTable) contains(x int) bool {
	for _, v := range t.buckets[t.bucketOf(x)] {
		if v == x {
			return true
		}
	}
	return false
}

func (t *bucketTable) add(x int) bool {
	b := t.bucketOf(x)
	for _, v := range t.buckets[b] {
		if v == x {
			return false
		}
	}
	t.buckets[b] = append(t.buckets[b], x)
	t.size.Add(1)
	return true
}

func (t *bucketTable) remove(x int) bool {
	b := t.bucketOf(x)
	for i, v := range t.buckets[b] {
		if v == x {
			last := len(t.buckets[b]) - 1
			t.buckets[b][i] = t.buckets[b][last]
			t.buckets[b] = t.buckets[b][:last]
			t.size.Add(-1)
			return true
		}
	}
	return false
}

// grow rehashes into a table twice the size.
func (t *bucketTable) grow() {
	next := newBucketTable(2 * len(t.buckets))
	for _, bucket := range t.buckets {
		for _, v := range bucket {
			next.buckets[next.bucketOf(v)] = append(next.buckets[next.bucketOf(v)], v)
		}
	}
	t.buckets = next.buckets
}

// policy is the book's resize trigger: average bucket length exceeds 4.
func (t *bucketTable) policy() bool {
	return t.size.Load()/int64(len(t.buckets)) > 4
}

// rangeItems calls f for every item until f returns false. Callers must
// hold whatever locks cover the whole table.
func (t *bucketTable) rangeItems(f func(x int) bool) {
	for _, bucket := range t.buckets {
		for _, v := range bucket {
			if !f(v) {
				return
			}
		}
	}
}

// CoarseHashSet is the Fig. 13.2 baseline: a single lock serializes
// everything, including resizing.
type CoarseHashSet struct {
	mu    sync.Mutex
	cont  atomic.Int64
	table *bucketTable
}

var _ Set = (*CoarseHashSet)(nil)

// NewCoarseHashSet returns an empty set with the given initial capacity
// (a power of two).
func NewCoarseHashSet(capacity int) *CoarseHashSet {
	return &CoarseHashSet{table: newBucketTable(capacity)}
}

// lock takes the set lock, counting the acquisition as contended when a
// TryLock probe misses first.
func (s *CoarseHashSet) lock() {
	if !s.mu.TryLock() {
		s.cont.Add(1)
		s.mu.Lock()
	}
}

// Contention reports lock acquisitions that found the lock held.
func (s *CoarseHashSet) Contention() int64 { return s.cont.Load() }

// Add inserts x, reporting whether it was absent.
func (s *CoarseHashSet) Add(x int) bool {
	s.lock()
	defer s.mu.Unlock()
	ok := s.table.add(x)
	if ok && s.table.policy() {
		s.table.grow()
	}
	return ok
}

// Remove deletes x, reporting whether it was present.
func (s *CoarseHashSet) Remove(x int) bool {
	s.lock()
	defer s.mu.Unlock()
	return s.table.remove(x)
}

// Contains reports membership of x.
func (s *CoarseHashSet) Contains(x int) bool {
	s.lock()
	defer s.mu.Unlock()
	return s.table.contains(x)
}

// Range enumerates items under the set lock until f returns false.
func (s *CoarseHashSet) Range(f func(x int) bool) {
	s.lock()
	defer s.mu.Unlock()
	s.table.rangeItems(f)
}

// StripedHashSet (Fig. 13.6) keeps a fixed array of L locks; bucket i is
// protected by lock i mod L. The table grows, the lock array does not, so
// each lock covers more buckets as the set fills.
type StripedHashSet struct {
	locks []sync.Mutex
	cont  atomic.Int64
	table *bucketTable
}

var _ Set = (*StripedHashSet)(nil)

// NewStripedHashSet returns an empty set; the stripe count is fixed at the
// initial capacity, as in the book.
func NewStripedHashSet(capacity int) *StripedHashSet {
	return &StripedHashSet{
		locks: make([]sync.Mutex, capacity),
		table: newBucketTable(capacity),
	}
}

// lockFor locks the stripe covering x and returns it for unlocking. The
// stripe index uses the same masked hash bits as the bucket index, so a
// stripe always covers whole buckets, and the cover is stable as the table
// grows (the stripe count divides every table size).
func (s *StripedHashSet) lockFor(x int) *sync.Mutex {
	l := &s.locks[hashIndex(x, len(s.locks))]
	if !l.TryLock() {
		s.cont.Add(1)
		l.Lock()
	}
	return l
}

// Contention reports stripe acquisitions that found the stripe held.
func (s *StripedHashSet) Contention() int64 { return s.cont.Load() }

// Range enumerates items with every stripe held until f returns false.
func (s *StripedHashSet) Range(f func(x int) bool) {
	for i := range s.locks {
		s.locks[i].Lock()
	}
	defer func() {
		for i := range s.locks {
			s.locks[i].Unlock()
		}
	}()
	s.table.rangeItems(f)
}

// Add inserts x, reporting whether it was absent.
func (s *StripedHashSet) Add(x int) bool {
	l := s.lockFor(x)
	ok := s.table.add(x)
	grow := ok && s.table.policy()
	l.Unlock()
	if grow {
		s.resize()
	}
	return ok
}

// Remove deletes x, reporting whether it was present.
func (s *StripedHashSet) Remove(x int) bool {
	l := s.lockFor(x)
	defer l.Unlock()
	return s.table.remove(x)
}

// Contains reports membership of x.
func (s *StripedHashSet) Contains(x int) bool {
	l := s.lockFor(x)
	defer l.Unlock()
	return s.table.contains(x)
}

// resize acquires every stripe in order (deadlock-free by total order),
// re-checks the policy, and grows.
func (s *StripedHashSet) resize() {
	for i := range s.locks {
		s.locks[i].Lock()
	}
	if s.table.policy() { // someone may have resized before us
		s.table.grow()
	}
	for i := range s.locks {
		s.locks[i].Unlock()
	}
}
