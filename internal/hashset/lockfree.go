package hashset

import (
	"math/bits"
	"sync/atomic"
)

// Split-ordered ("recursive split-ordering") lock-free hash set,
// Fig. 13.15–13.18. One lock-free linked list holds every item in
// *split order* — the bit-reversal of its hash — so that when the bucket
// count doubles, a bucket splits into two adjacent runs of the list and no
// item ever moves. The bucket array is a lazily initialized table of
// shortcut pointers to sentinel nodes inside the list.
//
// Keys: an item's list key is reverse(hash)|1 (LSB set → "ordinary");
// bucket b's sentinel key is reverse(b) (LSB clear). Ties between distinct
// items that share a (reversed) hash are broken by the item value itself,
// the fix the book describes in its errata for equal hash codes.

// soNode is a node of the split-ordered list; next is an immutable
// (successor, marked) pair as in package list.
type soNode struct {
	key  uint64 // split-order key
	item int    // meaningful only for ordinary nodes
	next atomic.Pointer[soRef]
}

type soRef struct {
	node   *soNode
	marked bool
}

func newSONode(key uint64, item int, succ *soNode) *soNode {
	n := &soNode{key: key, item: item}
	n.next.Store(&soRef{node: succ})
	return n
}

// soLess orders nodes by (key, item); sentinels (even keys) never tie with
// ordinary nodes (odd keys).
func soLess(aKey uint64, aItem int, bKey uint64, bItem int) bool {
	if aKey != bKey {
		return aKey < bKey
	}
	return aItem < bItem
}

// ordinaryKey computes an item's split-order key: bit-reversed hash with
// the low bit forced to 1.
func ordinaryKey(x int) uint64 {
	return bits.Reverse64(hash64(x)) | 1
}

// sentinelKey computes bucket b's split-order key: bit-reversed index,
// low bit 0.
func sentinelKey(bucket uint64) uint64 {
	return bits.Reverse64(bucket)
}

// parentBucket clears the most significant set bit: the bucket whose list
// segment bucket b split from (Fig. 13.17).
func parentBucket(bucket uint64) uint64 {
	if bucket == 0 {
		return 0
	}
	return bucket &^ (1 << (63 - uint(bits.LeadingZeros64(bucket))))
}

// LockFreeHashSet is the resizable lock-free hash set. The bucket
// directory is a two-level table so it can cover 2^20 buckets without
// allocating them up front.
type LockFreeHashSet struct {
	head       *soNode // sentinel for bucket 0, key 0
	segments   []atomic.Pointer[soSegment]
	bucketSize atomic.Uint64 // current bucket count, a power of two
	setSize    atomic.Int64
	cont       atomic.Int64 // failed CAS rounds in Add/Remove
}

const (
	soSegmentBits = 10
	soSegmentSize = 1 << soSegmentBits
	soMaxBuckets  = 1 << 20
	// soThreshold is the average bucket load that triggers doubling.
	soThreshold = 4
)

type soSegment [soSegmentSize]atomic.Pointer[soNode]

var _ Set = (*LockFreeHashSet)(nil)

// NewLockFreeHashSet returns an empty set with two initial buckets.
func NewLockFreeHashSet() *LockFreeHashSet {
	s := &LockFreeHashSet{
		head:     newSONode(sentinelKey(0), 0, nil),
		segments: make([]atomic.Pointer[soSegment], soMaxBuckets/soSegmentSize),
	}
	seg := &soSegment{}
	seg[0].Store(s.head)
	s.segments[0].Store(seg)
	s.bucketSize.Store(2)
	return s
}

// bucketSentinel returns the stored sentinel for the bucket, or nil.
func (s *LockFreeHashSet) bucketSentinel(b uint64) *soNode {
	seg := s.segments[b>>soSegmentBits].Load()
	if seg == nil {
		return nil
	}
	return seg[b&(soSegmentSize-1)].Load()
}

// storeBucketSentinel publishes the sentinel for bucket b.
func (s *LockFreeHashSet) storeBucketSentinel(b uint64, n *soNode) {
	idx := b >> soSegmentBits
	seg := s.segments[idx].Load()
	if seg == nil {
		fresh := &soSegment{}
		if !s.segments[idx].CompareAndSwap(nil, fresh) {
			seg = s.segments[idx].Load()
		} else {
			seg = fresh
		}
	}
	seg[b&(soSegmentSize-1)].Store(n)
}

// getBucket returns bucket b's sentinel, initializing it (and recursively
// its parent) on first touch.
func (s *LockFreeHashSet) getBucket(b uint64) *soNode {
	sentinel := s.bucketSentinel(b)
	if sentinel != nil {
		return sentinel
	}
	parent := s.getBucket(parentBucket(b))
	sentinel = s.insertSentinel(parent, sentinelKey(b))
	s.storeBucketSentinel(b, sentinel)
	return sentinel
}

// insertSentinel adds a sentinel node with the given key starting the
// search at `start`, returning the (possibly pre-existing) node.
func (s *LockFreeHashSet) insertSentinel(start *soNode, key uint64) *soNode {
	for {
		pred, curr := s.find(start, key, 0)
		if curr != nil && curr.key == key {
			return curr // someone else already spliced it in
		}
		node := newSONode(key, 0, curr)
		expected := pred.next.Load()
		if expected.node != curr || expected.marked {
			continue
		}
		if pred.next.CompareAndSwap(expected, &soRef{node: node}) {
			return node
		}
	}
}

// find returns the window (pred, curr) within the list starting at start
// such that curr is the first node with (key,item) >= (key,item) sought;
// curr may be nil (end of list). Marked nodes along the way are snipped.
func (s *LockFreeHashSet) find(start *soNode, key uint64, item int) (pred, curr *soNode) {
retry:
	for {
		pred = start
		curr = pred.next.Load().node
		for curr != nil {
			succRef := curr.next.Load()
			for succRef.marked {
				expected := pred.next.Load()
				if expected.node != curr || expected.marked {
					continue retry
				}
				if !pred.next.CompareAndSwap(expected, &soRef{node: succRef.node}) {
					continue retry
				}
				curr = succRef.node
				if curr == nil {
					return pred, nil
				}
				succRef = curr.next.Load()
			}
			if !soLess(curr.key, curr.item, key, item) {
				return pred, curr
			}
			pred = curr
			curr = succRef.node
		}
		return pred, nil
	}
}

// bucketOf maps an item to its current bucket.
func (s *LockFreeHashSet) bucketOf(x int) uint64 {
	return hash64(x) & (s.bucketSize.Load() - 1)
}

// Add inserts x, reporting whether it was absent.
func (s *LockFreeHashSet) Add(x int) bool {
	key := ordinaryKey(x)
	sentinel := s.getBucket(s.bucketOf(x))
	for {
		pred, curr := s.find(sentinel, key, x)
		if curr != nil && curr.key == key && curr.item == x {
			return false
		}
		node := newSONode(key, x, curr)
		expected := pred.next.Load()
		if expected.node != curr || expected.marked {
			s.cont.Add(1)
			continue
		}
		if pred.next.CompareAndSwap(expected, &soRef{node: node}) {
			break
		}
		s.cont.Add(1)
	}
	size := s.setSize.Add(1)
	if bs := s.bucketSize.Load(); bs < soMaxBuckets && size/int64(bs) > soThreshold {
		s.bucketSize.CompareAndSwap(bs, 2*bs)
	}
	return true
}

// Remove deletes x, reporting whether it was present.
func (s *LockFreeHashSet) Remove(x int) bool {
	key := ordinaryKey(x)
	sentinel := s.getBucket(s.bucketOf(x))
	for {
		_, curr := s.find(sentinel, key, x)
		if curr == nil || curr.key != key || curr.item != x {
			return false
		}
		succRef := curr.next.Load()
		if succRef.marked {
			s.cont.Add(1)
			continue
		}
		if !curr.next.CompareAndSwap(succRef, &soRef{node: succRef.node, marked: true}) {
			s.cont.Add(1)
			continue
		}
		s.setSize.Add(-1)
		s.find(sentinel, key, x) // physically unlink, best effort
		return true
	}
}

// Contains reports membership of x without writing to the list.
func (s *LockFreeHashSet) Contains(x int) bool {
	key := ordinaryKey(x)
	sentinel := s.getBucket(s.bucketOf(x))
	curr := sentinel
	for curr != nil && soLess(curr.key, curr.item, key, x) {
		curr = curr.next.Load().node
	}
	return curr != nil && curr.key == key && curr.item == x && !curr.next.Load().marked
}

// Contention reports Add/Remove rounds lost to a concurrent CAS — the
// direct "practical wait-freedom" signal: retries happen exactly when
// another thread won the same window.
func (s *LockFreeHashSet) Contention() int64 { return s.cont.Load() }

// Range enumerates items until f returns false by walking the whole
// split-ordered list from the head sentinel, skipping sentinels (even
// keys) and logically deleted nodes. Concurrent with writers it is a
// weakly consistent snapshot; with writers quiesced (how the adaptive
// migration calls it) it is exact.
func (s *LockFreeHashSet) Range(f func(x int) bool) {
	for n := s.head; n != nil; {
		ref := n.next.Load()
		if n.key&1 == 1 && !ref.marked {
			if !f(n.item) {
				return
			}
		}
		n = ref.node
	}
}

// Size reports the number of items (approximate under concurrency).
func (s *LockFreeHashSet) Size() int { return int(s.setSize.Load()) }

// Buckets reports the current bucket count, for tests and diagnostics.
func (s *LockFreeHashSet) Buckets() int { return int(s.bucketSize.Load()) }
