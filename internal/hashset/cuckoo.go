package hashset

import (
	"fmt"
	"sync"
)

// Cuckoo hashing (§13.4): two tables, two hash functions; an item lives in
// exactly one of its two nests, and inserting into a full nest kicks the
// resident to its other nest, possibly cascading.

// Second, independent hash for the cuckoo variants.
const fib64b = 0xC2B2AE3D27D4EB4F

func cuckooHash(i int, x int) uint64 {
	if i == 0 {
		return hash64(x)
	}
	return (uint64(x) * fib64b) >> 16
}

// CuckooHashSet is the sequential cuckoo hash set (Fig. 13.19): one item
// per slot, relocation chains bounded by a limit that triggers resize.
type CuckooHashSet struct {
	mu       sync.Mutex
	table    [2][]slot
	capacity int
	size     int
}

type slot struct {
	used bool
	item int
}

var _ Set = (*CuckooHashSet)(nil)

// cuckooLimit bounds a relocation chain before giving up and resizing.
const cuckooLimit = 32

// NewCuckooHashSet returns an empty set with the given power-of-two
// capacity per table.
func NewCuckooHashSet(capacity int) *CuckooHashSet {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("hashset: cuckoo capacity must be a power of two >= 2, got %d", capacity))
	}
	s := &CuckooHashSet{capacity: capacity}
	s.table[0] = make([]slot, capacity)
	s.table[1] = make([]slot, capacity)
	return s
}

func (s *CuckooHashSet) slotIndex(i, x int) int {
	return int(cuckooHash(i, x) & uint64(s.capacity-1))
}

// Contains reports membership of x: at most two probes.
func (s *CuckooHashSet) Contains(x int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.containsLocked(x)
}

func (s *CuckooHashSet) containsLocked(x int) bool {
	for i := 0; i < 2; i++ {
		if sl := s.table[i][s.slotIndex(i, x)]; sl.used && sl.item == x {
			return true
		}
	}
	return false
}

// Add inserts x, reporting whether it was absent.
func (s *CuckooHashSet) Add(x int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.containsLocked(x) {
		return false
	}
	s.addLocked(x)
	s.size++
	return true
}

func (s *CuckooHashSet) addLocked(x int) {
	for {
		item := x
		for round := 0; round < cuckooLimit; round++ {
			i := round % 2
			idx := s.slotIndex(i, item)
			if !s.table[i][idx].used {
				s.table[i][idx] = slot{used: true, item: item}
				return
			}
			// Kick the resident out and place ours.
			item, s.table[i][idx].item = s.table[i][idx].item, item
		}
		s.growLocked()
		// retry with the displaced item
		x = item
	}
}

// growLocked doubles both tables and rehashes.
func (s *CuckooHashSet) growLocked() {
	old := s.table
	s.capacity *= 2
	s.table[0] = make([]slot, s.capacity)
	s.table[1] = make([]slot, s.capacity)
	for i := 0; i < 2; i++ {
		for _, sl := range old[i] {
			if sl.used {
				s.addLocked(sl.item)
			}
		}
	}
}

// Remove deletes x, reporting whether it was present.
func (s *CuckooHashSet) Remove(x int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < 2; i++ {
		idx := s.slotIndex(i, x)
		if sl := s.table[i][idx]; sl.used && sl.item == x {
			s.table[i][idx] = slot{}
			s.size--
			return true
		}
	}
	return false
}

// StripedCuckooHashSet is the phased concurrent cuckoo set
// (Fig. 13.21–13.27): each slot holds a small *probe set* instead of one
// item, additions beyond a threshold trigger a relocation phase, and a
// fixed stripe of lock pairs guards the two tables.
type StripedCuckooHashSet struct {
	locks    [2][]sync.Mutex // fixed stripes, one array per table
	mu       sync.Mutex      // serializes resizes
	capacity int
	table    [2][][]int // probe sets
}

var _ Set = (*StripedCuckooHashSet)(nil)

// Probe-set tuning from the book.
const (
	probeSize      = 4 // slots per probe set
	probeThreshold = 2 // preferred fill before spilling
	relocateLimit  = 512
)

// NewStripedCuckooHashSet returns an empty set; the stripe count is fixed
// at the initial capacity.
func NewStripedCuckooHashSet(capacity int) *StripedCuckooHashSet {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("hashset: cuckoo capacity must be a power of two >= 2, got %d", capacity))
	}
	s := &StripedCuckooHashSet{capacity: capacity}
	for i := 0; i < 2; i++ {
		s.locks[i] = make([]sync.Mutex, capacity)
		s.table[i] = make([][]int, capacity)
	}
	return s
}

func (s *StripedCuckooHashSet) stripe(i, x int) *sync.Mutex {
	return &s.locks[i][cuckooHash(i, x)&uint64(len(s.locks[i])-1)]
}

// acquire locks x's two stripes in table order (deadlock-free).
func (s *StripedCuckooHashSet) acquire(x int) {
	s.stripe(0, x).Lock()
	s.stripe(1, x).Lock()
}

func (s *StripedCuckooHashSet) release(x int) {
	s.stripe(0, x).Unlock()
	s.stripe(1, x).Unlock()
}

func (s *StripedCuckooHashSet) slotIndex(i, x int) int {
	return int(cuckooHash(i, x) & uint64(s.capacity-1))
}

func indexOf(set []int, x int) int {
	for i, v := range set {
		if v == x {
			return i
		}
	}
	return -1
}

// Contains reports membership of x.
func (s *StripedCuckooHashSet) Contains(x int) bool {
	s.acquire(x)
	defer s.release(x)
	return indexOf(s.table[0][s.slotIndex(0, x)], x) >= 0 ||
		indexOf(s.table[1][s.slotIndex(1, x)], x) >= 0
}

// Remove deletes x, reporting whether it was present.
func (s *StripedCuckooHashSet) Remove(x int) bool {
	s.acquire(x)
	defer s.release(x)
	for i := 0; i < 2; i++ {
		idx := s.slotIndex(i, x)
		if j := indexOf(s.table[i][idx], x); j >= 0 {
			set := s.table[i][idx]
			s.table[i][idx] = append(set[:j], set[j+1:]...)
			return true
		}
	}
	return false
}

// Add inserts x, reporting whether it was absent. Following Fig. 13.23, an
// addition that overflows the preferred threshold still lands in a probe
// set, then a relocation phase rebalances; if relocation fails, resize.
func (s *StripedCuckooHashSet) Add(x int) bool {
	s.acquire(x)
	i0, i1 := s.slotIndex(0, x), s.slotIndex(1, x)
	set0, set1 := s.table[0][i0], s.table[1][i1]
	if indexOf(set0, x) >= 0 || indexOf(set1, x) >= 0 {
		s.release(x)
		return false
	}
	mustRelocate, relTable, relIndex := false, 0, 0
	mustResize := false
	switch {
	case len(set0) < probeThreshold:
		s.table[0][i0] = append(set0, x)
	case len(set1) < probeThreshold:
		s.table[1][i1] = append(set1, x)
	case len(set0) < probeSize:
		s.table[0][i0] = append(set0, x)
		mustRelocate, relTable, relIndex = true, 0, i0
	case len(set1) < probeSize:
		s.table[1][i1] = append(set1, x)
		mustRelocate, relTable, relIndex = true, 1, i1
	default:
		mustResize = true
	}
	s.release(x)
	if mustResize {
		s.resize()
		return s.Add(x)
	}
	if mustRelocate && !s.relocate(relTable, relIndex) {
		s.resize()
	}
	return true
}

// Range calls f for each member until f returns false. It runs as a
// full-table read phase — resize lock plus every stripe held, the same
// quiesce resize uses — so the enumeration is a consistent cut even
// against concurrent adders and removers.
func (s *StripedCuckooHashSet) Range(f func(x int) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.locks[0] {
		s.locks[0][i].Lock()
	}
	for i := range s.locks[1] {
		s.locks[1][i].Lock()
	}
	defer func() {
		for i := range s.locks[0] {
			s.locks[0][i].Unlock()
		}
		for i := range s.locks[1] {
			s.locks[1][i].Unlock()
		}
	}()
	for i := 0; i < 2; i++ {
		for _, set := range s.table[i] {
			for _, x := range set {
				if !f(x) {
					return
				}
			}
		}
	}
}

// stripeForSlot returns the stripe covering slot hi of table i. Stripe
// count divides every table capacity, so slot index mod stripe count is the
// covering stripe.
func (s *StripedCuckooHashSet) stripeForSlot(i, hi int) *sync.Mutex {
	return &s.locks[i][hi&(len(s.locks[i])-1)]
}

// peekVictim reads the oldest item of slot (i, hi) under its stripe.
func (s *StripedCuckooHashSet) peekVictim(i, hi int) (int, bool) {
	l := s.stripeForSlot(i, hi)
	l.Lock()
	defer l.Unlock()
	set := s.table[i][hi]
	if len(set) == 0 {
		return 0, false
	}
	return set[0], true
}

// relocate drains an over-threshold probe set by moving its oldest item to
// the item's other nest (Fig. 13.27). It reports false when it gives up.
func (s *StripedCuckooHashSet) relocate(i, hi int) bool {
	j := 1 - i
	for round := 0; round < relocateLimit; round++ {
		y, ok := s.peekVictim(i, hi)
		if !ok {
			return true // set drained by someone else
		}
		s.acquire(y)
		if hi != s.slotIndex(i, y) {
			// The table was resized between peek and acquire: the slot we
			// were draining no longer exists in this geometry.
			s.release(y)
			return true
		}
		hj := s.slotIndex(j, y)
		iSet := s.table[i][hi]
		jSet := s.table[j][hj]
		yi := indexOf(iSet, y)
		switch {
		case yi >= 0 && len(jSet) < probeThreshold:
			s.table[i][hi] = append(iSet[:yi], iSet[yi+1:]...)
			s.table[j][hj] = append(jSet, y)
			done := len(s.table[i][hi]) <= probeThreshold
			s.release(y)
			if done {
				return true
			}
		case yi >= 0 && len(jSet) < probeSize:
			s.table[i][hi] = append(iSet[:yi], iSet[yi+1:]...)
			s.table[j][hj] = append(jSet, y)
			// The other nest is itself over threshold now: chase it.
			s.release(y)
			i, j = j, i
			hi = hj
		case yi >= 0:
			s.release(y)
			return false // both nests saturated: resize
		default:
			// y moved under us; if our set is now within threshold, done.
			done := len(iSet) <= probeThreshold
			s.release(y)
			if done {
				return true
			}
		}
	}
	return false
}

// resize doubles both tables under the global resize lock, then re-adds
// every item with all stripes held.
func (s *StripedCuckooHashSet) resize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.locks[0] {
		s.locks[0][i].Lock()
	}
	for i := range s.locks[1] {
		s.locks[1][i].Lock()
	}
	defer func() {
		for i := range s.locks[0] {
			s.locks[0][i].Unlock()
		}
		for i := range s.locks[1] {
			s.locks[1][i].Unlock()
		}
	}()

	var items []int
	for i := 0; i < 2; i++ {
		for _, set := range s.table[i] {
			items = append(items, set...)
		}
	}
	s.capacity *= 2
	for i := 0; i < 2; i++ {
		s.table[i] = make([][]int, s.capacity)
	}
	// Sequential re-insertion: all stripes are held, so the plain path is
	// safe; spills beyond probeSize cascade via direct relocation.
	for _, x := range items {
		s.addAllLocked(x)
	}
}

// addAllLocked inserts during resize, when every stripe is held: place x
// in the emptier of its two nests. Probe sets are unbounded slices, so a
// nest past its preferred size just invites a later relocation.
func (s *StripedCuckooHashSet) addAllLocked(x int) {
	i0, i1 := s.slotIndex(0, x), s.slotIndex(1, x)
	if len(s.table[0][i0]) <= len(s.table[1][i1]) {
		s.table[0][i0] = append(s.table[0][i0], x)
	} else {
		s.table[1][i1] = append(s.table[1][i1], x)
	}
}
