package hashset

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// lockArray is an immutable-header stripe array; resizing installs a new,
// larger one so stripe granularity keeps pace with the table (Fig. 13.10).
type lockArray struct {
	locks []sync.Mutex
}

// RefinableHashSet (Fig. 13.10–13.12) refines its stripes on resize: unlike
// StripedHashSet, the lock array grows with the table, so a stripe covers a
// constant number of buckets. A resizer first announces itself (the book's
// AtomicMarkableReference owner), waits for in-flight operations to drain,
// then swaps both arrays.
type RefinableHashSet struct {
	resizing atomic.Bool                 // the "owner mark": a resize is announced
	cont     atomic.Int64                // contended acquire rounds
	locks    atomic.Pointer[lockArray]   // current stripe array
	table    atomic.Pointer[bucketTable] // current bucket table
}

var _ Set = (*RefinableHashSet)(nil)

// NewRefinableHashSet returns an empty set with the given power-of-two
// initial capacity.
func NewRefinableHashSet(capacity int) *RefinableHashSet {
	s := &RefinableHashSet{}
	s.table.Store(newBucketTable(capacity))
	s.locks.Store(&lockArray{locks: make([]sync.Mutex, capacity)})
	return s
}

// acquire locks the stripe for x against the *current* arrays, retrying if
// a resize was announced or swapped the arrays underneath us (the book's
// acquire loop).
func (s *RefinableHashSet) acquire(x int) (*lockArray, *sync.Mutex) {
	for {
		contended := false
		for s.resizing.Load() {
			contended = true
			runtime.Gosched() // a resize is announced; stand back
		}
		oldLocks := s.locks.Load()
		l := &oldLocks.locks[hashIndex(x, len(oldLocks.locks))]
		if !l.TryLock() {
			contended = true
			l.Lock()
		}
		if !s.resizing.Load() && s.locks.Load() == oldLocks {
			if contended {
				s.cont.Add(1)
			}
			return oldLocks, l
		}
		l.Unlock()
		s.cont.Add(1)
	}
}

// Contention reports acquire rounds that waited or retried.
func (s *RefinableHashSet) Contention() int64 { return s.cont.Load() }

// Range enumerates items until f returns false, using the resize
// protocol to quiesce: announce ownership, lock every current stripe,
// walk, release. Nothing is swapped.
func (s *RefinableHashSet) Range(f func(x int) bool) {
	for !s.resizing.CompareAndSwap(false, true) {
		runtime.Gosched() // wait out a real resize
	}
	defer s.resizing.Store(false)
	old := s.locks.Load()
	for i := range old.locks {
		old.locks[i].Lock()
	}
	defer func() {
		for i := range old.locks {
			old.locks[i].Unlock()
		}
	}()
	s.table.Load().rangeItems(f)
}

// Add inserts x, reporting whether it was absent.
func (s *RefinableHashSet) Add(x int) bool {
	_, l := s.acquire(x)
	t := s.table.Load()
	ok := t.add(x)
	grow := ok && t.policy()
	l.Unlock()
	if grow {
		s.resize()
	}
	return ok
}

// Remove deletes x, reporting whether it was present.
func (s *RefinableHashSet) Remove(x int) bool {
	_, l := s.acquire(x)
	defer l.Unlock()
	return s.table.Load().remove(x)
}

// Contains reports membership of x.
func (s *RefinableHashSet) Contains(x int) bool {
	_, l := s.acquire(x)
	defer l.Unlock()
	return s.table.Load().contains(x)
}

// resize announces itself, quiesces every stripe, then installs a doubled
// table and a matching doubled stripe array.
func (s *RefinableHashSet) resize() {
	// Only one resizer at a time: the announcement CAS is the election.
	if !s.resizing.CompareAndSwap(false, true) {
		return // someone else is on it
	}
	defer s.resizing.Store(false)

	t := s.table.Load()
	if !t.policy() {
		return // a prior resize already fixed it
	}
	// Quiesce: once resizing is set, no new acquire succeeds; wait for the
	// holders of each current stripe to drain by locking through them.
	old := s.locks.Load()
	for i := range old.locks {
		old.locks[i].Lock()
	}

	next := newBucketTable(2 * len(t.buckets))
	for _, bucket := range t.buckets {
		for _, v := range bucket {
			b := next.bucketOf(v)
			next.buckets[b] = append(next.buckets[b], v)
		}
	}
	next.size.Store(t.size.Load())
	s.table.Store(next)
	s.locks.Store(&lockArray{locks: make([]sync.Mutex, 2*len(old.locks))})

	for i := range old.locks {
		old.locks[i].Unlock()
	}
}
