package hashset

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RefinableCuckooHashSet (Fig. 13.24–13.26) is the phased cuckoo set whose
// lock arrays grow with the tables, using the same announce-and-quiesce
// resize protocol as RefinableHashSet: a resizer sets the resizing flag,
// drains the current stripes, then installs doubled tables *and* doubled
// lock arrays, so stripe granularity keeps pace with capacity.
type RefinableCuckooHashSet struct {
	resizing atomic.Bool
	locks    atomic.Pointer[cuckooLockPair]
	mu       sync.Mutex // serializes resizes
	capacity int        // guarded by holding any stripe (readers) / all stripes (resizer)
	table    [2][][]int
}

type cuckooLockPair struct {
	locks [2][]sync.Mutex
}

var _ Set = (*RefinableCuckooHashSet)(nil)

// NewRefinableCuckooHashSet returns an empty set with the given
// power-of-two capacity per table.
func NewRefinableCuckooHashSet(capacity int) *RefinableCuckooHashSet {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("hashset: cuckoo capacity must be a power of two >= 2, got %d", capacity))
	}
	s := &RefinableCuckooHashSet{capacity: capacity}
	pair := &cuckooLockPair{}
	for i := 0; i < 2; i++ {
		pair.locks[i] = make([]sync.Mutex, capacity)
		s.table[i] = make([][]int, capacity)
	}
	s.locks.Store(pair)
	return s
}

// acquire locks x's stripes in both tables against the current lock
// arrays, retrying when a resize intervenes.
func (s *RefinableCuckooHashSet) acquire(x int) *cuckooLockPair {
	for {
		for s.resizing.Load() {
			runtime.Gosched()
		}
		pair := s.locks.Load()
		l0 := &pair.locks[0][cuckooHash(0, x)&uint64(len(pair.locks[0])-1)]
		l1 := &pair.locks[1][cuckooHash(1, x)&uint64(len(pair.locks[1])-1)]
		l0.Lock()
		l1.Lock()
		if !s.resizing.Load() && s.locks.Load() == pair {
			return pair
		}
		l0.Unlock()
		l1.Unlock()
	}
}

func (s *RefinableCuckooHashSet) release(pair *cuckooLockPair, x int) {
	pair.locks[0][cuckooHash(0, x)&uint64(len(pair.locks[0])-1)].Unlock()
	pair.locks[1][cuckooHash(1, x)&uint64(len(pair.locks[1])-1)].Unlock()
}

func (s *RefinableCuckooHashSet) slotIndex(i, x int) int {
	return int(cuckooHash(i, x) & uint64(s.capacity-1))
}

// Contains reports membership of x.
func (s *RefinableCuckooHashSet) Contains(x int) bool {
	pair := s.acquire(x)
	defer s.release(pair, x)
	return indexOf(s.table[0][s.slotIndex(0, x)], x) >= 0 ||
		indexOf(s.table[1][s.slotIndex(1, x)], x) >= 0
}

// Remove deletes x, reporting whether it was present.
func (s *RefinableCuckooHashSet) Remove(x int) bool {
	pair := s.acquire(x)
	defer s.release(pair, x)
	for i := 0; i < 2; i++ {
		idx := s.slotIndex(i, x)
		if j := indexOf(s.table[i][idx], x); j >= 0 {
			set := s.table[i][idx]
			s.table[i][idx] = append(set[:j], set[j+1:]...)
			return true
		}
	}
	return false
}

// Add inserts x, reporting whether it was absent; over-threshold probe
// sets trigger relocation, saturation triggers resize.
func (s *RefinableCuckooHashSet) Add(x int) bool {
	pair := s.acquire(x)
	i0, i1 := s.slotIndex(0, x), s.slotIndex(1, x)
	set0, set1 := s.table[0][i0], s.table[1][i1]
	if indexOf(set0, x) >= 0 || indexOf(set1, x) >= 0 {
		s.release(pair, x)
		return false
	}
	mustRelocate, relTable, relIndex := false, 0, 0
	mustResize := false
	switch {
	case len(set0) < probeThreshold:
		s.table[0][i0] = append(set0, x)
	case len(set1) < probeThreshold:
		s.table[1][i1] = append(set1, x)
	case len(set0) < probeSize:
		s.table[0][i0] = append(set0, x)
		mustRelocate, relTable, relIndex = true, 0, i0
	case len(set1) < probeSize:
		s.table[1][i1] = append(set1, x)
		mustRelocate, relTable, relIndex = true, 1, i1
	default:
		mustResize = true
	}
	s.release(pair, x)
	if mustResize {
		s.resize()
		return s.Add(x)
	}
	if mustRelocate && !s.relocate(relTable, relIndex) {
		s.resize()
	}
	return true
}

// peekVictim reads the oldest item of slot (i, hi) under its stripe.
func (s *RefinableCuckooHashSet) peekVictim(i, hi int) (int, bool) {
	for {
		for s.resizing.Load() {
			runtime.Gosched()
		}
		pair := s.locks.Load()
		l := &pair.locks[i][hi&(len(pair.locks[i])-1)]
		l.Lock()
		if s.resizing.Load() || s.locks.Load() != pair {
			l.Unlock()
			continue
		}
		set := s.table[i][hi]
		var victim int
		ok := len(set) > 0
		if ok {
			victim = set[0]
		}
		l.Unlock()
		return victim, ok
	}
}

// relocate drains an over-threshold probe set, as in the striped variant.
func (s *RefinableCuckooHashSet) relocate(i, hi int) bool {
	j := 1 - i
	for round := 0; round < relocateLimit; round++ {
		y, ok := s.peekVictim(i, hi)
		if !ok {
			return true
		}
		pair := s.acquire(y)
		if hi != s.slotIndex(i, y) {
			s.release(pair, y)
			return true // resized between peek and acquire
		}
		hj := s.slotIndex(j, y)
		iSet := s.table[i][hi]
		jSet := s.table[j][hj]
		yi := indexOf(iSet, y)
		switch {
		case yi >= 0 && len(jSet) < probeThreshold:
			s.table[i][hi] = append(iSet[:yi], iSet[yi+1:]...)
			s.table[j][hj] = append(jSet, y)
			done := len(s.table[i][hi]) <= probeThreshold
			s.release(pair, y)
			if done {
				return true
			}
		case yi >= 0 && len(jSet) < probeSize:
			s.table[i][hi] = append(iSet[:yi], iSet[yi+1:]...)
			s.table[j][hj] = append(jSet, y)
			s.release(pair, y)
			i, j = j, i
			hi = hj
		case yi >= 0:
			s.release(pair, y)
			return false
		default:
			done := len(iSet) <= probeThreshold
			s.release(pair, y)
			if done {
				return true
			}
		}
	}
	return false
}

// resize announces itself, quiesces every stripe, then installs doubled
// tables and doubled lock arrays (the refinement step).
func (s *RefinableCuckooHashSet) resize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.resizing.CompareAndSwap(false, true) {
		return
	}
	defer s.resizing.Store(false)

	old := s.locks.Load()
	for i := 0; i < 2; i++ {
		for k := range old.locks[i] {
			old.locks[i][k].Lock()
		}
	}
	defer func() {
		for i := 0; i < 2; i++ {
			for k := range old.locks[i] {
				old.locks[i][k].Unlock()
			}
		}
	}()

	var items []int
	for i := 0; i < 2; i++ {
		for _, set := range s.table[i] {
			items = append(items, set...)
		}
	}
	s.capacity *= 2
	fresh := &cuckooLockPair{}
	for i := 0; i < 2; i++ {
		s.table[i] = make([][]int, s.capacity)
		fresh.locks[i] = make([]sync.Mutex, s.capacity)
	}
	for _, x := range items {
		i0, i1 := s.slotIndex(0, x), s.slotIndex(1, x)
		if len(s.table[0][i0]) <= len(s.table[1][i1]) {
			s.table[0][i0] = append(s.table[0][i0], x)
		} else {
			s.table[1][i1] = append(s.table[1][i1], x)
		}
	}
	s.locks.Store(fresh)
}
