// Package hashset implements the Chapter 13 closed-address and open-address
// concurrent hash sets:
//
//   - CoarseHashSet: one lock over a bucket table (Fig. 13.2)
//   - StripedHashSet: a fixed stripe of locks (Fig. 13.6)
//   - RefinableHashSet: lock stripes that grow with the table (Fig. 13.10)
//   - LockFreeHashSet: split-ordered recursive hashing (Fig. 13.15–13.18)
//   - CuckooHashSet / StripedCuckooHashSet: sequential and phased
//     concurrent cuckoo hashing (Fig. 13.19–13.27)
//
// All sets implement the same Set interface as package list (membership of
// int keys). Hashing uses a Fibonacci multiplicative hash: cheap, and
// bijective on 64-bit ints, which gives well-spread buckets without a
// quality test suite of its own.
package hashset

import "amp/internal/list"

// Set is the concurrent integer-set abstraction (same shape as list.Set).
type Set = list.Set

// fib64 is the golden-ratio multiplier; multiplication by an odd constant
// is a bijection on uint64.
const fib64 = 0x9E3779B97F4A7C15

// hash64 spreads an int key over uint64, then discards the weakly mixed
// low bits so that masking with a power of two uses well-mixed bits.
func hash64(x int) uint64 {
	return (uint64(x) * fib64) >> 16
}

// hashIndex maps a key into [0, n) for a power-of-two n by masking. Because
// it masks the *same* bits for every power of two, a stripe array of size
// L ≤ n always covers whole buckets: equal bucket index implies equal
// stripe index — the invariant striped locking depends on.
func hashIndex(x int, n int) int {
	return int(hash64(x) & uint64(n-1))
}
