package hashset

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"amp/internal/core"
)

func implementations() map[string]func() Set {
	return map[string]func() Set{
		"coarse":        func() Set { return NewCoarseHashSet(2) },
		"striped":       func() Set { return NewStripedHashSet(4) },
		"refinable":     func() Set { return NewRefinableHashSet(4) },
		"lockfree":      func() Set { return NewLockFreeHashSet() },
		"cuckoo":        func() Set { return NewCuckooHashSet(2) },
		"stripedcuckoo": func() Set { return NewStripedCuckooHashSet(4) },
		"refinecuckoo":  func() Set { return NewRefinableCuckooHashSet(4) },
	}
}

func TestSequentialBasics(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if s.Contains(5) {
				t.Fatal("empty set contains 5")
			}
			if !s.Add(5) || s.Add(5) {
				t.Fatal("Add semantics broken")
			}
			if !s.Contains(5) {
				t.Fatal("Contains(5) = false after Add")
			}
			if !s.Remove(5) || s.Remove(5) {
				t.Fatal("Remove semantics broken")
			}
			if s.Contains(5) {
				t.Fatal("Contains(5) = true after Remove")
			}
		})
	}
}

// TestManyKeysForcesResize loads enough keys to trigger several resizes.
func TestManyKeysForcesResize(t *testing.T) {
	const n = 3000
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			for k := 0; k < n; k++ {
				if !s.Add(k * 31) {
					t.Fatalf("Add(%d) = false", k*31)
				}
			}
			for k := 0; k < n; k++ {
				if !s.Contains(k * 31) {
					t.Fatalf("Contains(%d) = false after load", k*31)
				}
			}
			if s.Contains(7) {
				t.Fatal("phantom key present")
			}
			for k := 0; k < n; k += 2 {
				if !s.Remove(k * 31) {
					t.Fatalf("Remove(%d) = false", k*31)
				}
			}
			for k := 0; k < n; k++ {
				want := k%2 == 1
				if got := s.Contains(k * 31); got != want {
					t.Fatalf("Contains(%d) = %v, want %v", k*31, got, want)
				}
			}
		})
	}
}

func TestDifferentialAgainstMap(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			ref := make(map[int]bool)
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 6000; i++ {
				k := rng.Intn(200)
				switch rng.Intn(3) {
				case 0:
					if got, want := s.Add(k), !ref[k]; got != want {
						t.Fatalf("op %d: Add(%d) = %v, want %v", i, k, got, want)
					}
					ref[k] = true
				case 1:
					if got, want := s.Remove(k), ref[k]; got != want {
						t.Fatalf("op %d: Remove(%d) = %v, want %v", i, k, got, want)
					}
					delete(ref, k)
				default:
					if got := s.Contains(k); got != ref[k] {
						t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, ref[k])
					}
				}
			}
		})
	}
}

func TestConcurrentSetSemantics(t *testing.T) {
	const (
		workers = 6
		iters   = 600
		keys    = 64
	)
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var adds, removes [keys]atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						k := rng.Intn(keys)
						switch rng.Intn(3) {
						case 0:
							if s.Add(k) {
								adds[k].Add(1)
							}
						case 1:
							if s.Remove(k) {
								removes[k].Add(1)
							}
						default:
							s.Contains(k)
						}
					}
				}(int64(w + 41))
			}
			wg.Wait()
			for k := 0; k < keys; k++ {
				diff := adds[k].Load() - removes[k].Load()
				if diff != 0 && diff != 1 {
					t.Fatalf("key %d: %d adds vs %d removes", k, adds[k].Load(), removes[k].Load())
				}
				if got, want := s.Contains(k), diff == 1; got != want {
					t.Fatalf("key %d: Contains = %v, want %v", k, got, want)
				}
			}
		})
	}
}

// TestConcurrentGrowth drives enough concurrent insertions to force
// resizing while other threads read.
func TestConcurrentGrowth(t *testing.T) {
	const (
		workers = 4
		perW    = 1500
	)
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(base int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						k := base + i
						if !s.Add(k) {
							t.Errorf("Add(%d) = false for fresh key", k)
							return
						}
						if !s.Contains(k) {
							t.Errorf("Contains(%d) = false right after Add", k)
							return
						}
					}
				}(w * 1_000_000)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				for i := 0; i < perW; i++ {
					if !s.Contains(w*1_000_000 + i) {
						t.Fatalf("key %d lost during growth", w*1_000_000+i)
					}
				}
			}
		})
	}
}

func TestLinearizable(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			rec := core.NewRecorder()
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(me core.ThreadID) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(me) + 61))
					for i := 0; i < 6; i++ {
						k := rng.Intn(3)
						switch rng.Intn(3) {
						case 0:
							p := rec.Call(me, "add", k)
							p.Done(s.Add(k))
						case 1:
							p := rec.Call(me, "remove", k)
							p.Done(s.Remove(k))
						default:
							p := rec.Call(me, "contains", k)
							p.Done(s.Contains(k))
						}
					}
				}(core.ThreadID(w))
			}
			wg.Wait()
			res := core.Check(core.SetModel(), rec.History())
			if res.Exhausted {
				t.Skip("checker budget exhausted")
			}
			if !res.Linearizable {
				t.Fatalf("%s produced a non-linearizable history:\n%v", name, rec.History())
			}
		})
	}
}

func TestLockFreeBucketCountGrows(t *testing.T) {
	s := NewLockFreeHashSet()
	before := s.Buckets()
	for k := 0; k < 500; k++ {
		s.Add(k)
	}
	if after := s.Buckets(); after <= before {
		t.Fatalf("bucket count did not grow: %d -> %d", before, after)
	}
	if got := s.Size(); got != 500 {
		t.Fatalf("Size = %d, want 500", got)
	}
}

func TestSplitOrderKeys(t *testing.T) {
	// Ordinary keys are odd; sentinel keys are even.
	for _, x := range []int{0, 1, 7, -5, 123456789} {
		if ordinaryKey(x)&1 != 1 {
			t.Fatalf("ordinaryKey(%d) is even", x)
		}
	}
	for _, b := range []uint64{0, 1, 2, 3, 512, 1 << 19} {
		if sentinelKey(b)&1 != 0 {
			t.Fatalf("sentinelKey(%d) is odd", b)
		}
	}
	// A bucket's sentinel key is the smallest split-order key among keys of
	// items hashing to that bucket (with the current mask).
	if parentBucket(0b1101) != 0b0101 {
		t.Fatalf("parentBucket(13) = %d, want 5", parentBucket(0b1101))
	}
	if parentBucket(1) != 0 {
		t.Fatalf("parentBucket(1) = %d, want 0", parentBucket(1))
	}
}

func TestSplitOrderSentinelBounds(t *testing.T) {
	// The defining property of split ordering: an item's bucket sentinel is
	// the *largest* sentinel (at the current size) that precedes the item's
	// key, so a bucket's items form a contiguous run after its sentinel.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		x := rng.Int()
		size := uint64(1) << (1 + rng.Intn(8))
		b := hash64(x) & (size - 1)
		key := ordinaryKey(x)
		if sentinelKey(b) >= key {
			t.Fatalf("sentinel %d >= key of item %d (bucket %d, size %d)",
				sentinelKey(b), x, b, size)
		}
		best := uint64(0)
		bestBucket := uint64(0)
		for c := uint64(0); c < size; c++ {
			if sk := sentinelKey(c); sk < key && sk >= best {
				best = sk
				bestBucket = c
			}
		}
		if bestBucket != b {
			t.Fatalf("item %d (key %x) belongs to bucket %d but nearest sentinel is bucket %d (size %d)",
				x, key, b, bestBucket, size)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCoarseHashSet(3) },
		func() { NewStripedHashSet(0) },
		func() { NewCuckooHashSet(5) },
		func() { NewStripedCuckooHashSet(1) },
		func() { NewRefinableCuckooHashSet(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad capacity did not panic")
				}
			}()
			f()
		}()
	}
}

func TestQuickSetEquivalence(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []uint16) bool {
				s := mk()
				ref := make(map[int]bool)
				for _, code := range ops {
					k := int(code % 32)
					switch (code / 32) % 3 {
					case 0:
						if s.Add(k) != !ref[k] {
							return false
						}
						ref[k] = true
					case 1:
						if s.Remove(k) != ref[k] {
							return false
						}
						delete(ref, k)
					default:
						if s.Contains(k) != ref[k] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
