package hashset

import (
	"sync"
	"testing"
	"time"
)

type setRanger interface {
	Range(f func(x int) bool)
}

type setContender interface {
	Contention() int64
}

// hookedSets builds one instance of every adaptive-ladder backend; each
// must expose Range and Contention.
func hookedSets() map[string]Set {
	return map[string]Set{
		"coarse":    NewCoarseHashSet(16),
		"striped":   NewStripedHashSet(16),
		"refinable": NewRefinableHashSet(16),
		"lockfree":  NewLockFreeHashSet(),
	}
}

// TestSetRangeEnumeratesAll loads each backend past its resize trigger
// and checks Range yields exactly the live membership.
func TestSetRangeEnumeratesAll(t *testing.T) {
	for name, s := range hookedSets() {
		t.Run(name, func(t *testing.T) {
			r, ok := s.(setRanger)
			if !ok {
				t.Fatalf("%s does not implement Range", name)
			}
			if _, ok := s.(setContender); !ok {
				t.Fatalf("%s does not implement Contention", name)
			}
			want := map[int]bool{}
			for i := 0; i < 500; i++ {
				s.Add(i)
				want[i] = true
			}
			for i := 0; i < 500; i += 3 {
				s.Remove(i)
				delete(want, i)
			}
			got := map[int]bool{}
			r.Range(func(x int) bool {
				if got[x] {
					t.Errorf("Range yielded %d twice", x)
				}
				got[x] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("Range yielded %d items, want %d", len(got), len(want))
			}
			for x := range want {
				if !got[x] {
					t.Errorf("Range missed %d", x)
				}
			}

			n := 0
			r.Range(func(int) bool { n++; return n < 3 })
			if n != 3 {
				t.Errorf("early-stop Range made %d calls, want 3", n)
			}
			if !s.Add(99999) {
				t.Errorf("Add after Range reported duplicate for a fresh item")
			}
		})
	}
}

// TestSetContentionCounts pins the TryLock-miss-counts-before-parking
// protocol on the coarse and striped sets (see the strmap twin for the
// scheme: a Range callback holds the locks, a blocked writer's count
// appears while it waits).
func TestSetContentionCounts(t *testing.T) {
	cases := map[string]Set{
		"coarse":  NewCoarseHashSet(16),
		"striped": NewStripedHashSet(16),
	}
	for name, s := range cases {
		t.Run(name, func(t *testing.T) {
			s.Add(1)
			c := s.(setContender)
			if c.Contention() != 0 {
				t.Fatalf("fresh set reports contention %d", c.Contention())
			}
			inRange := make(chan struct{})
			release := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				s.(setRanger).Range(func(int) bool {
					close(inRange)
					<-release
					return true
				})
			}()
			<-inRange
			go func() {
				defer wg.Done()
				s.Add(2)
			}()
			deadline := time.Now().Add(5 * time.Second)
			for c.Contention() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("blocked writer never counted as contended")
				}
				time.Sleep(time.Millisecond)
			}
			close(release)
			wg.Wait()
			if !s.Contains(2) {
				t.Fatal("contended Add lost")
			}
		})
	}
}
