package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Operation is one completed method call in a concurrent history: an
// invocation (Action, Input) by a thread and its matching response (Output),
// with the real-time window [Call, Return] in which it was pending.
//
// Call/Return timestamps come from a single atomic counter, so for any two
// operations a, b: a.Return < b.Call means a really did complete before b
// began, which is exactly the precedence order linearizability must respect
// (Herlihy & Shavit §3.6).
type Operation struct {
	Thread ThreadID
	Action string
	Input  any
	Output any
	Call   int64
	Return int64
}

func (op Operation) String() string {
	return fmt.Sprintf("t%d %s(%v) -> %v [%d,%d]", op.Thread, op.Action, op.Input, op.Output, op.Call, op.Return)
}

// History is a set of completed operations observed on one object.
type History []Operation

// SortByCall orders the history by invocation time; checkers rely on it.
func (h History) SortByCall() {
	sort.Slice(h, func(i, j int) bool { return h[i].Call < h[j].Call })
}

// Recorder collects a concurrent history while goroutines exercise an
// object. Call returns a token; complete the operation with Done. The
// recorder is safe for concurrent use and is the bridge between live
// executions and the linearizability checker.
type Recorder struct {
	clock atomic.Int64

	mu  sync.Mutex
	ops []Operation
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// PendingOp is an invoked-but-not-yet-responded operation.
type PendingOp struct {
	rec *Recorder
	op  Operation
}

// Call records the invocation of action(input) by thread and returns the
// pending operation. The caller must invoke Done exactly once.
func (r *Recorder) Call(thread ThreadID, action string, input any) *PendingOp {
	return &PendingOp{
		rec: r,
		op: Operation{
			Thread: thread,
			Action: action,
			Input:  input,
			Call:   r.clock.Add(1),
		},
	}
}

// Done records the response of the pending operation.
func (p *PendingOp) Done(output any) {
	p.op.Return = p.rec.clock.Add(1)
	p.op.Output = output
	p.rec.mu.Lock()
	p.rec.ops = append(p.rec.ops, p.op)
	p.rec.mu.Unlock()
}

// History returns a copy of the operations recorded so far, ordered by
// invocation time.
func (r *Recorder) History() History {
	r.mu.Lock()
	h := make(History, len(r.ops))
	copy(h, r.ops)
	r.mu.Unlock()
	h.SortByCall()
	return h
}

// Len reports the number of completed operations recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}
