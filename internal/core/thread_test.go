package core

import (
	"sync"
	"testing"
)

func TestRegistryAcquireRelease(t *testing.T) {
	r := NewRegistry(4)
	if got := r.Capacity(); got != 4 {
		t.Fatalf("Capacity() = %d, want 4", got)
	}
	seen := make(map[ThreadID]bool)
	for i := 0; i < 4; i++ {
		id, err := r.Acquire()
		if err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		if id < 0 || id >= 4 {
			t.Fatalf("Acquire returned out-of-range id %d", id)
		}
		if seen[id] {
			t.Fatalf("Acquire returned duplicate id %d", id)
		}
		seen[id] = true
	}
	if _, err := r.Acquire(); err != ErrNoFreeIDs {
		t.Fatalf("Acquire on exhausted registry: err = %v, want ErrNoFreeIDs", err)
	}
	r.Release(2)
	id, err := r.Acquire()
	if err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	if id != 2 {
		t.Fatalf("Acquire after Release = %d, want 2", id)
	}
}

func TestRegistryLowIDsFirst(t *testing.T) {
	r := NewRegistry(3)
	for want := ThreadID(0); want < 3; want++ {
		if got := r.MustAcquire(); got != want {
			t.Fatalf("MustAcquire = %d, want %d", got, want)
		}
	}
}

func TestRegistryInUse(t *testing.T) {
	r := NewRegistry(8)
	if r.InUse() != 0 {
		t.Fatalf("InUse on fresh registry = %d, want 0", r.InUse())
	}
	a := r.MustAcquire()
	b := r.MustAcquire()
	if r.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", r.InUse())
	}
	r.Release(a)
	r.Release(b)
	if r.InUse() != 0 {
		t.Fatalf("InUse after releases = %d, want 0", r.InUse())
	}
}

func TestRegistryDoubleReleasePanics(t *testing.T) {
	r := NewRegistry(2)
	id := r.MustAcquire()
	r.Release(id)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	r.Release(id)
}

func TestRegistryOutOfRangeReleasePanics(t *testing.T) {
	r := NewRegistry(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range release did not panic")
		}
	}()
	r.Release(99)
}

func TestRegistryZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRegistry(0) did not panic")
		}
	}()
	NewRegistry(0)
}

func TestRegistryConcurrentAcquire(t *testing.T) {
	const n = 32
	r := NewRegistry(n)
	var wg sync.WaitGroup
	ids := make([]ThreadID, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			ids[slot] = r.MustAcquire()
		}(i)
	}
	wg.Wait()
	seen := make(map[ThreadID]bool, n)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d handed out concurrently", id)
		}
		seen[id] = true
	}
}
