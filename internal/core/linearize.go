package core

import (
	"reflect"
)

// Model is a sequential specification of an object, in the sense of
// Chapter 3: legal histories are those obtainable by applying operations one
// at a time to the sequential object.
type Model struct {
	// Name identifies the model in diagnostics.
	Name string
	// Init returns the initial sequential state. States must be treated as
	// immutable: Apply must return a fresh state rather than mutating.
	Init func() any
	// Apply applies action(input) to the state, returning the successor
	// state and the output the sequential object would produce.
	Apply func(state any, action string, input any) (newState any, output any)
	// Equal compares two states; nil means reflect.DeepEqual.
	Equal func(a, b any) bool
	// OutputEqual compares a sequential output with a recorded output; nil
	// means reflect.DeepEqual.
	OutputEqual func(want, got any) bool
}

func (m Model) stateEqual(a, b any) bool {
	if m.Equal != nil {
		return m.Equal(a, b)
	}
	return reflect.DeepEqual(a, b)
}

func (m Model) outputEqual(want, got any) bool {
	if m.OutputEqual != nil {
		return m.OutputEqual(want, got)
	}
	return reflect.DeepEqual(want, got)
}

// Result reports the outcome of a linearizability check.
type Result struct {
	// Linearizable is true when some legal sequential witness exists.
	Linearizable bool
	// Exhausted is true when the search hit its step budget before deciding;
	// when set, Linearizable is necessarily false but means "unknown".
	Exhausted bool
	// Witness is a legal linearization order when Linearizable.
	Witness History
}

// DefaultMaxSteps bounds the checker's search. Histories used in tests are
// small; the budget exists so adversarial histories fail loudly instead of
// hanging.
const DefaultMaxSteps = 50_000_000

// Check decides whether the history is linearizable with respect to the
// model, using the Wing & Gong tree search with Lowe's (configuration)
// caching — the algorithm sketched in the chapter notes of Chapter 3.
// The history must contain only completed operations.
func Check(model Model, h History) Result {
	return CheckBudget(model, h, DefaultMaxSteps)
}

// CheckBudget is Check with an explicit step budget.
func CheckBudget(model Model, h History, maxSteps int) Result {
	n := len(h)
	if n == 0 {
		return Result{Linearizable: true}
	}
	ops := make(History, n)
	copy(ops, h)
	ops.SortByCall()

	head := buildEventList(ops)
	state := model.Init()
	linearized := newBitset(n)
	cache := make(map[uint64][]cacheEntry)
	type frame struct {
		node  *eventNode
		state any
	}
	var stack []frame
	steps := 0

	entry := head.next
	for head.next != nil {
		steps++
		if steps > maxSteps {
			return Result{Exhausted: true}
		}
		if entry.match != nil {
			// A call event: try to linearize this operation next.
			op := ops[entry.index]
			newState, out := model.Apply(state, op.Action, op.Input)
			if model.outputEqual(out, op.Output) {
				linearized.set(entry.index)
				if cacheInsert(model, cache, linearized, newState) {
					stack = append(stack, frame{node: entry, state: state})
					state = newState
					lift(entry)
					entry = head.next
					continue
				}
				linearized.clear(entry.index)
			}
			entry = entry.next
			continue
		}
		// A return event: every candidate at this level failed; backtrack.
		if len(stack) == 0 {
			return Result{}
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		state = top.state
		linearized.clear(top.node.index)
		unlift(top.node)
		entry = top.node.next
	}

	witness := make(History, 0, n)
	for _, f := range stack {
		witness = append(witness, ops[f.node.index])
	}
	return Result{Linearizable: true, Witness: witness}
}

// eventNode is one call or return event in the doubly linked event list.
// Call nodes carry match = the corresponding return node; return nodes have
// match == nil.
type eventNode struct {
	index      int
	match      *eventNode
	prev, next *eventNode
}

// buildEventList interleaves call and return events by timestamp and links
// them behind a sentinel head node, which is returned.
func buildEventList(ops History) *eventNode {
	type ev struct {
		time int64
		node *eventNode
	}
	events := make([]ev, 0, 2*len(ops))
	for i, op := range ops {
		ret := &eventNode{index: i}
		call := &eventNode{index: i, match: ret}
		events = append(events,
			ev{time: op.Call, node: call},
			ev{time: op.Return, node: ret},
		)
	}
	// Binary-insertion sort: histories are small and, with ops sorted by
	// call time, events arrive nearly ordered.
	for i := 1; i < len(events); i++ {
		j := i
		for j > 0 && events[j-1].time > events[j].time {
			events[j-1], events[j] = events[j], events[j-1]
			j--
		}
	}

	head := &eventNode{index: -1}
	prev := head
	for _, e := range events {
		prev.next = e.node
		e.node.prev = prev
		prev = e.node
	}
	return head
}

// lift removes a call node and its matching return node from the list.
func lift(call *eventNode) {
	call.prev.next = call.next
	if call.next != nil {
		call.next.prev = call.prev
	}
	ret := call.match
	ret.prev.next = ret.next
	if ret.next != nil {
		ret.next.prev = ret.prev
	}
}

// unlift reverses lift, splicing the call and return nodes back in. The
// nodes retain their prev/next pointers from before removal, so re-linking
// must happen in reverse order of removal.
func unlift(call *eventNode) {
	ret := call.match
	ret.prev.next = ret
	if ret.next != nil {
		ret.next.prev = ret
	}
	call.prev.next = call
	if call.next != nil {
		call.next.prev = call
	}
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

func (b bitset) hash() uint64 {
	// FNV-1a over the words.
	h := uint64(14695981039346656037)
	for _, w := range b {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> uint(s)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

type cacheEntry struct {
	linearized bitset
	state      any
}

// cacheInsert records the configuration (linearized, state) and reports
// whether it was new. Revisiting a known configuration cannot lead to a new
// outcome, so the search prunes it (Lowe's optimization).
func cacheInsert(model Model, cache map[uint64][]cacheEntry, linearized bitset, state any) bool {
	key := linearized.hash()
	for _, e := range cache[key] {
		if e.linearized.equal(linearized) && model.stateEqual(e.state, state) {
			return false
		}
	}
	cache[key] = append(cache[key], cacheEntry{linearized: linearized.clone(), state: state})
	return true
}
