package core

import (
	"sync"
	"testing"
)

func TestSCEmptyHistory(t *testing.T) {
	if !CheckSC(QueueModel(), nil).Linearizable {
		t.Fatal("empty history must be sequentially consistent")
	}
}

func TestSCButNotLinearizable(t *testing.T) {
	// The book's flagship example (§3.4): enq(1) completes before enq(2)
	// begins, yet the dequeues see 2 first. Not linearizable — but SC,
	// because SC may reorder operations of different threads.
	h := History{
		{Thread: 0, Action: "enq", Input: 1, Call: 1, Return: 2},
		{Thread: 1, Action: "enq", Input: 2, Call: 3, Return: 4},
		{Thread: 0, Action: "deq", Output: 2, Call: 5, Return: 6},
		{Thread: 1, Action: "deq", Output: 1, Call: 7, Return: 8},
	}
	if Check(QueueModel(), h).Linearizable {
		t.Fatal("history should NOT be linearizable")
	}
	res := CheckSC(QueueModel(), h)
	if !res.Linearizable {
		t.Fatal("history should be sequentially consistent")
	}
	if len(res.Witness) != len(h) {
		t.Fatalf("witness has %d ops, want %d", len(res.Witness), len(h))
	}
}

func TestSCRespectsProgramOrder(t *testing.T) {
	// A single thread dequeues before enqueuing: no interleaving fixes
	// program order, so even SC rejects it.
	h := History{
		{Thread: 0, Action: "deq", Output: 1, Call: 1, Return: 2},
		{Thread: 0, Action: "enq", Input: 1, Call: 3, Return: 4},
	}
	if CheckSC(QueueModel(), h).Linearizable {
		t.Fatal("program-order violation accepted by SC checker")
	}
}

func TestSCRejectsImpossibleOutputs(t *testing.T) {
	h := History{
		{Thread: 0, Action: "enq", Input: 1, Call: 1, Return: 2},
		{Thread: 1, Action: "deq", Output: 9, Call: 3, Return: 4},
	}
	if CheckSC(QueueModel(), h).Linearizable {
		t.Fatal("phantom dequeue accepted")
	}
}

func TestSCAcceptsEveryLinearizableHistory(t *testing.T) {
	// Record a real concurrent run on a locked queue: linearizable, hence
	// necessarily SC.
	rec := NewRecorder()
	var (
		mu sync.Mutex
		q  []int
	)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(me ThreadID) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if i%2 == 0 {
					p := rec.Call(me, "enq", int(me)*10+i)
					mu.Lock()
					q = append(q, int(me)*10+i)
					mu.Unlock()
					p.Done(nil)
				} else {
					p := rec.Call(me, "deq", nil)
					mu.Lock()
					var out any = Empty
					if len(q) > 0 {
						out = q[0]
						q = q[1:]
					}
					mu.Unlock()
					p.Done(out)
				}
			}
		}(ThreadID(w))
	}
	wg.Wait()
	h := rec.History()
	lin := Check(QueueModel(), h)
	sc := CheckSC(QueueModel(), h)
	if lin.Exhausted || sc.Exhausted {
		t.Skip("checker budget exhausted")
	}
	if !lin.Linearizable {
		t.Fatal("locked queue history not linearizable")
	}
	if !sc.Linearizable {
		t.Fatal("linearizable history rejected by SC checker")
	}
}

func TestSCWitnessReplaysLegally(t *testing.T) {
	h := History{
		{Thread: 0, Action: "enq", Input: 1, Call: 1, Return: 2},
		{Thread: 1, Action: "enq", Input: 2, Call: 3, Return: 4},
		{Thread: 0, Action: "deq", Output: 2, Call: 5, Return: 6},
		{Thread: 1, Action: "deq", Output: 1, Call: 7, Return: 8},
	}
	res := CheckSC(QueueModel(), h)
	if !res.Linearizable {
		t.Fatal("expected SC")
	}
	m := QueueModel()
	state := m.Init()
	for _, w := range res.Witness {
		var out any
		state, out = m.Apply(state, w.Action, w.Input)
		if !m.outputEqual(out, w.Output) {
			t.Fatalf("witness replay mismatch at %v: got %v", w, out)
		}
	}
}

func TestSCBudgetExhaustion(t *testing.T) {
	var h History
	for th := 0; th < 6; th++ {
		for i := 0; i < 4; i++ {
			h = append(h, Operation{
				Thread: ThreadID(th), Action: "enq", Input: th*10 + i,
				Call: int64(i*2 + 1), Return: int64(i*2 + 2),
			})
		}
	}
	res := CheckSCBudget(QueueModel(), h, 2)
	if !res.Exhausted {
		t.Fatal("tiny budget should exhaust")
	}
}

func TestSCRegisterCoherence(t *testing.T) {
	// SC still requires a single total order: a register history where two
	// threads each read their own write first then the other's *older*
	// value in a contradictory way must fail even under SC.
	h := History{
		// t0: write(1); read -> 2 ; t1: write(2); read -> 1.
		// SC order exists: w1, w2? then t0 reads 2 ok; t1 reads... 1? no.
		// w2, w1: t0 read->2? no. Interleavings with reads between:
		// w1, w2, r0(2), r1(?)=2 != 1. w2, w1, r1(1)?? r1 after w1 gives 1 ok,
		// r0 must be 2 but after w1 the value is 1 -> place r0 before w1:
		// w2, r0(2), w1, r1(1): t0 program order w1 before r0 violated.
		{Thread: 0, Action: "write", Input: 1, Call: 1, Return: 2},
		{Thread: 0, Action: "read", Output: 2, Call: 3, Return: 4},
		{Thread: 1, Action: "write", Input: 2, Call: 1, Return: 2},
		{Thread: 1, Action: "read", Output: 1, Call: 3, Return: 4},
	}
	if CheckSC(RegisterModel(0), h).Linearizable {
		t.Fatal("IRIW-style contradiction accepted by SC checker")
	}
}
