package core

import "sort"

// EmptyOutput is the output recorded when an operation observed an empty
// container (a dequeue or pop on an empty queue or stack, a removeMin on an
// empty priority queue).
type EmptyOutput struct{}

// Empty is the canonical EmptyOutput value.
var Empty = EmptyOutput{}

// CounterModel specifies a shared counter supporting:
//
//	getAndIncrement() -> old value
//	add(delta)        -> nil
//	read()            -> value
func CounterModel() Model {
	return Model{
		Name: "counter",
		Init: func() any { return int64(0) },
		Apply: func(state any, action string, input any) (any, any) {
			v := state.(int64)
			switch action {
			case "getAndIncrement":
				return v + 1, v
			case "add":
				return v + toInt64(input), nil
			case "read":
				return v, v
			default:
				panic("core: counter model: unknown action " + action)
			}
		},
	}
}

// RegisterModel specifies an atomic read/write/CAS register holding any
// value. cas takes input [2]any{expected, new} and outputs bool.
func RegisterModel(initial any) Model {
	return Model{
		Name: "register",
		Init: func() any { return initial },
		Apply: func(state any, action string, input any) (any, any) {
			switch action {
			case "read":
				return state, state
			case "write":
				return input, nil
			case "cas":
				pair := input.([2]any)
				if state == pair[0] {
					return pair[1], true
				}
				return state, false
			default:
				panic("core: register model: unknown action " + action)
			}
		},
	}
}

// QueueModel specifies a FIFO queue of int values:
//
//	enq(v)     -> nil
//	deq()      -> v, or Empty when the queue is empty
//	snapshot() -> the whole state, front to back
func QueueModel() Model {
	return Model{
		Name: "queue",
		Init: func() any { return []int(nil) },
		Apply: func(state any, action string, input any) (any, any) {
			q := state.([]int)
			switch action {
			case "snapshot":
				return q, snapshotInts(q)
			case "enq":
				next := make([]int, len(q)+1)
				copy(next, q)
				next[len(q)] = input.(int)
				return next, nil
			case "deq":
				if len(q) == 0 {
					return q, Empty
				}
				next := make([]int, len(q)-1)
				copy(next, q[1:])
				return next, q[0]
			default:
				panic("core: queue model: unknown action " + action)
			}
		},
	}
}

// StackModel specifies a LIFO stack of int values:
//
//	push(v) -> nil
//	pop()   -> v, or Empty when the stack is empty
func StackModel() Model {
	return Model{
		Name: "stack",
		Init: func() any { return []int(nil) },
		Apply: func(state any, action string, input any) (any, any) {
			s := state.([]int)
			switch action {
			case "push":
				next := make([]int, len(s)+1)
				copy(next, s)
				next[len(s)] = input.(int)
				return next, nil
			case "pop":
				if len(s) == 0 {
					return s, Empty
				}
				next := make([]int, len(s)-1)
				copy(next, s[:len(s)-1])
				return next, s[len(s)-1]
			default:
				panic("core: stack model: unknown action " + action)
			}
		},
	}
}

// SetModel specifies an integer set:
//
//	add(k)      -> true if k was absent
//	remove(k)   -> true if k was present
//	contains(k) -> membership
//	snapshot()  -> the whole state, sorted ascending
func SetModel() Model {
	return Model{
		Name: "set",
		Init: func() any { return []int(nil) },
		Apply: func(state any, action string, input any) (any, any) {
			s := state.([]int)
			if action == "snapshot" {
				return s, snapshotInts(s)
			}
			k := input.(int)
			i := sort.SearchInts(s, k)
			present := i < len(s) && s[i] == k
			switch action {
			case "contains":
				return s, present
			case "add":
				if present {
					return s, false
				}
				next := make([]int, len(s)+1)
				copy(next, s[:i])
				next[i] = k
				copy(next[i+1:], s[i:])
				return next, true
			case "remove":
				if !present {
					return s, false
				}
				next := make([]int, len(s)-1)
				copy(next, s[:i])
				copy(next[i:], s[i+1:])
				return next, true
			default:
				panic("core: set model: unknown action " + action)
			}
		},
	}
}

// MapPair is one key/value entry in a MapModel state. States are kept as
// slices sorted by key so reflect.DeepEqual works for the checker's state
// cache.
type MapPair struct {
	K string
	V int64
}

// MapSetInput is the input of a MapModel "set" action.
type MapSetInput struct {
	K string
	V int64
}

// MapModel specifies a string-keyed map of int64 values, matching the
// server's HSET/HGET/HDEL semantics:
//
//	set(MapSetInput{k,v}) -> true if k was absent (insert vs overwrite)
//	get(k)                -> v, or Empty when k is absent
//	del(k)                -> true if k was present
//	snapshot()            -> the whole state, sorted by key
func MapModel() Model {
	return Model{
		Name: "map",
		Init: func() any { return []MapPair(nil) },
		Apply: func(state any, action string, input any) (any, any) {
			s := state.([]MapPair)
			find := func(k string) (int, bool) {
				i := sort.Search(len(s), func(i int) bool { return s[i].K >= k })
				return i, i < len(s) && s[i].K == k
			}
			switch action {
			case "snapshot":
				if len(s) == 0 {
					return s, []MapPair(nil)
				}
				return s, s
			case "set":
				in := input.(MapSetInput)
				i, present := find(in.K)
				if present {
					next := make([]MapPair, len(s))
					copy(next, s)
					next[i].V = in.V
					return next, false
				}
				next := make([]MapPair, len(s)+1)
				copy(next, s[:i])
				next[i] = MapPair{K: in.K, V: in.V}
				copy(next[i+1:], s[i:])
				return next, true
			case "get":
				i, present := find(input.(string))
				if !present {
					return s, Empty
				}
				return s, s[i].V
			case "del":
				i, present := find(input.(string))
				if !present {
					return s, false
				}
				next := make([]MapPair, len(s)-1)
				copy(next, s[:i])
				copy(next[i:], s[i+1:])
				return next, true
			default:
				panic("core: map model: unknown action " + action)
			}
		},
	}
}

// PQueueModel specifies a min-priority queue of int priorities:
//
//	add(k)      -> nil
//	removeMin() -> k, or Empty when the queue is empty
func PQueueModel() Model {
	return Model{
		Name: "pqueue",
		Init: func() any { return []int(nil) },
		Apply: func(state any, action string, input any) (any, any) {
			s := state.([]int)
			switch action {
			case "add":
				k := input.(int)
				i := sort.SearchInts(s, k)
				next := make([]int, len(s)+1)
				copy(next, s[:i])
				next[i] = k
				copy(next[i+1:], s[i:])
				return next, nil
			case "removeMin":
				if len(s) == 0 {
					return s, Empty
				}
				next := make([]int, len(s)-1)
				copy(next, s[1:])
				return next, s[0]
			default:
				panic("core: pqueue model: unknown action " + action)
			}
		},
	}
}

// TxnState is a TxnModel state: the string map plus the transactional
// counter, one atomic universe. Pairs are kept sorted by key so
// reflect.DeepEqual works for the checker's state comparisons.
type TxnState struct {
	Pairs []MapPair
	Ctr   int64
}

// TxnOp is one operation inside a TxnModel "exec" input: Act is a
// single-op action name ("set", "get", "del", "incr", "inc", "read");
// K and V are meaningful per action.
type TxnOp struct {
	Act string
	K   string
	V   int64
}

// TxnExecInput is the input of a TxnModel "exec" action.
type TxnExecInput struct {
	Ops []TxnOp
}

// TxnModel specifies the transactional keyspace behind MULTI/EXEC: the
// string-map family and the counter share one state, and "exec" applies
// a whole operation list in a single atomic step — the model of a
// committed transaction. Single-op actions model the fast path:
//
//	set(MapSetInput{k,v})  -> true if k was absent
//	get(k)                 -> v, or Empty when absent
//	del(k)                 -> true if k was present
//	incr(MapSetInput{k,d}) -> new value (absent keys start at 0)
//	inc()                  -> old counter value
//	read()                 -> counter value
//	exec(TxnExecInput)     -> []any of per-op outputs, in order
func TxnModel() Model {
	return Model{
		Name: "txn",
		Init: func() any { return TxnState{} },
		Apply: func(state any, action string, input any) (any, any) {
			st := state.(TxnState)
			if action == "exec" {
				in := input.(TxnExecInput)
				outs := make([]any, len(in.Ops))
				for i, op := range in.Ops {
					st, outs[i] = applyTxnOp(st, op.Act, op.K, op.V)
				}
				return st, outs
			}
			var k string
			var v int64
			switch in := input.(type) {
			case MapSetInput:
				k, v = in.K, in.V
			case string:
				k = in
			case nil:
			default:
				panic("core: txn model: unexpected input type")
			}
			return applyTxnOp(st, action, k, v)
		},
	}
}

// applyTxnOp applies one single-op action to a TxnState, copy-on-write.
func applyTxnOp(st TxnState, act string, k string, v int64) (TxnState, any) {
	pairs := st.Pairs
	i := sort.Search(len(pairs), func(i int) bool { return pairs[i].K >= k })
	present := i < len(pairs) && pairs[i].K == k
	setVal := func(nv int64) []MapPair {
		if present {
			next := make([]MapPair, len(pairs))
			copy(next, pairs)
			next[i].V = nv
			return next
		}
		next := make([]MapPair, len(pairs)+1)
		copy(next, pairs[:i])
		next[i] = MapPair{K: k, V: nv}
		copy(next[i+1:], pairs[i:])
		return next
	}
	switch act {
	case "set":
		st.Pairs = setVal(v)
		return st, !present
	case "get":
		if !present {
			return st, Empty
		}
		return st, pairs[i].V
	case "del":
		if !present {
			return st, false
		}
		next := make([]MapPair, len(pairs)-1)
		copy(next, pairs[:i])
		copy(next[i:], pairs[i+1:])
		st.Pairs = next
		return st, true
	case "incr":
		var cur int64
		if present {
			cur = pairs[i].V
		}
		st.Pairs = setVal(cur + v)
		return st, cur + v
	case "inc":
		old := st.Ctr
		st.Ctr++
		return st, old
	case "read":
		return st, st.Ctr
	default:
		panic("core: txn model: unknown action " + act)
	}
}

// snapshotInts is the output of a "snapshot" action on an []int-state
// model: the state itself, normalized so an empty snapshot compares
// DeepEqual to a nil decode (reflect.DeepEqual separates nil from empty).
func snapshotInts(s []int) any {
	if len(s) == 0 {
		return []int(nil)
	}
	return s
}

func toInt64(v any) int64 {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case int64:
		return x
	default:
		panic("core: expected integer input")
	}
}
