package core

import "sort"

// Sequential consistency (§3.4): a history is sequentially consistent when
// some interleaving that preserves each thread's *program order* — but not
// necessarily real time across threads — is legal for the sequential
// model. Every linearizable history is sequentially consistent; the
// converse famously fails (two enqueues ordered in real time may be
// reordered by an SC execution).

// CheckSC decides sequential consistency of the history with respect to
// the model, by depth-first search over per-thread frontiers with
// configuration caching (the SC analogue of the Wing & Gong search).
func CheckSC(model Model, h History) Result {
	return CheckSCBudget(model, h, DefaultMaxSteps)
}

// CheckSCBudget is CheckSC with an explicit step budget.
func CheckSCBudget(model Model, h History, maxSteps int) Result {
	if len(h) == 0 {
		return Result{Linearizable: true}
	}
	// Group operations by thread, in program (call) order.
	byThread := make(map[ThreadID]History)
	for _, op := range h {
		byThread[op.Thread] = append(byThread[op.Thread], op)
	}
	threads := make([]ThreadID, 0, len(byThread))
	for t := range byThread {
		byThread[t].SortByCall()
		threads = append(threads, t)
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i] < threads[j] })
	lanes := make([]History, len(threads))
	for i, t := range threads {
		lanes[i] = byThread[t]
	}

	type frame struct {
		lane  int
		state any
	}
	var (
		stack    []frame
		frontier = make([]int, len(lanes))
		state    = model.Init()
		cache    = make(map[uint64][]scCacheEntry)
		steps    = 0
		total    = len(h)
		done     = 0
	)
	// tryLane attempts to schedule lanes[lane]'s next op; reports success.
	tryLane := func(lane int) bool {
		ops := lanes[lane]
		if frontier[lane] >= len(ops) {
			return false
		}
		op := ops[frontier[lane]]
		newState, out := model.Apply(state, op.Action, op.Input)
		if !model.outputEqual(out, op.Output) {
			return false
		}
		frontier[lane]++
		if !scCacheInsert(model, cache, frontier, newState) {
			frontier[lane]--
			return false
		}
		stack = append(stack, frame{lane: lane, state: state})
		state = newState
		done++
		return true
	}

	lane := 0
	for done < total {
		steps++
		if steps > maxSteps {
			return Result{Exhausted: true}
		}
		if lane < len(lanes) {
			if tryLane(lane) {
				lane = 0
			} else {
				lane++
			}
			continue
		}
		// Every lane failed at this configuration: backtrack.
		if len(stack) == 0 {
			return Result{}
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		frontier[top.lane]--
		state = top.state
		done--
		lane = top.lane + 1
	}
	witness := make(History, 0, total)
	replay := make([]int, len(lanes))
	for _, f := range stack {
		witness = append(witness, lanes[f.lane][replay[f.lane]])
		replay[f.lane]++
	}
	return Result{Linearizable: true, Witness: witness}
}

type scCacheEntry struct {
	frontier []int
	state    any
}

// scCacheInsert records the configuration (frontier, state), reporting
// whether it is new.
func scCacheInsert(model Model, cache map[uint64][]scCacheEntry, frontier []int, state any) bool {
	h := uint64(14695981039346656037)
	for _, f := range frontier {
		h ^= uint64(f)
		h *= 1099511628211
	}
	for _, e := range cache[h] {
		if equalInts(e.frontier, frontier) && model.stateEqual(e.state, state) {
			return false
		}
	}
	snapshot := make([]int, len(frontier))
	copy(snapshot, frontier)
	cache[h] = append(cache[h], scCacheEntry{frontier: snapshot, state: state})
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
