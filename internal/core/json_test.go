package core

import (
	"strings"
	"testing"
)

func TestWriteJSONRoundtrips(t *testing.T) {
	h := History{
		{Thread: 0, Action: "enq", Input: 1, Call: 1, Return: 4},
		{Thread: 1, Action: "deq", Output: 1, Call: 2, Return: 6},
		{Thread: 2, Action: "deq", Output: Empty, Call: 7, Return: 8},
	}
	var sb strings.Builder
	if err := h.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"action": "enq"`, `"input": 1`, `"output": "empty"`, `"call": 7`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRejectsExoticValues(t *testing.T) {
	h := History{{Thread: 0, Action: "write", Input: "not an int", Call: 1, Return: 2}}
	if err := h.WriteJSON(&strings.Builder{}); err == nil {
		t.Fatal("non-int input serialized without error")
	}
	h = History{{Thread: 0, Action: "read", Output: 1.5, Call: 1, Return: 2}}
	if err := h.WriteJSON(&strings.Builder{}); err == nil {
		t.Fatal("non-int output serialized without error")
	}
}
