package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonOperation is the interchange form used by cmd/linearize: integer
// inputs/outputs, with "empty" marking an empty-container response.
type jsonOperation struct {
	Thread int    `json:"thread"`
	Action string `json:"action"`
	Input  *int   `json:"input,omitempty"`
	Output any    `json:"output,omitempty"`
	Call   int64  `json:"call"`
	Return int64  `json:"return"`
}

// WriteJSON serializes the history in the format cmd/linearize reads.
// Inputs and outputs must be ints, nil, or EmptyOutput.
func (h History) WriteJSON(w io.Writer) error {
	out := make([]jsonOperation, 0, len(h))
	for i, op := range h {
		rec := jsonOperation{
			Thread: int(op.Thread),
			Action: op.Action,
			Call:   op.Call,
			Return: op.Return,
		}
		switch in := op.Input.(type) {
		case nil:
		case int:
			v := in
			rec.Input = &v
		default:
			return fmt.Errorf("core: op %d: input %T not representable in JSON interchange", i, op.Input)
		}
		switch outv := op.Output.(type) {
		case nil:
		case int:
			rec.Output = outv
		case EmptyOutput:
			rec.Output = "empty"
		default:
			return fmt.Errorf("core: op %d: output %T not representable in JSON interchange", i, op.Output)
		}
		out = append(out, rec)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
