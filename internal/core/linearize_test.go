package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// seq builds a history of strictly sequential operations: each operation's
// window follows the previous one.
func seq(ops ...Operation) History {
	t := int64(0)
	h := make(History, len(ops))
	for i, op := range ops {
		t++
		op.Call = t
		t++
		op.Return = t
		h[i] = op
	}
	return h
}

func op(thread ThreadID, action string, input, output any) Operation {
	return Operation{Thread: thread, Action: action, Input: input, Output: output}
}

func TestCheckEmptyHistory(t *testing.T) {
	res := Check(QueueModel(), nil)
	if !res.Linearizable {
		t.Fatal("empty history must be linearizable")
	}
}

func TestCheckSequentialQueue(t *testing.T) {
	h := seq(
		op(0, "enq", 1, nil),
		op(0, "enq", 2, nil),
		op(0, "deq", nil, 1),
		op(0, "deq", nil, 2),
		op(0, "deq", nil, Empty),
	)
	if res := Check(QueueModel(), h); !res.Linearizable {
		t.Fatal("legal sequential queue history rejected")
	}
}

func TestCheckSequentialQueueViolation(t *testing.T) {
	h := seq(
		op(0, "enq", 1, nil),
		op(0, "enq", 2, nil),
		op(0, "deq", nil, 2), // FIFO violation: 1 must come out first
	)
	if res := Check(QueueModel(), h); res.Linearizable {
		t.Fatal("FIFO violation accepted")
	}
}

func TestCheckOverlappingQueueReordering(t *testing.T) {
	// Two concurrent enqueues may linearize in either order, so a dequeue
	// seeing either value is legal.
	h := History{
		{Thread: 0, Action: "enq", Input: 1, Call: 1, Return: 4},
		{Thread: 1, Action: "enq", Input: 2, Call: 2, Return: 3},
		{Thread: 0, Action: "deq", Output: 2, Call: 5, Return: 6},
		{Thread: 0, Action: "deq", Output: 1, Call: 7, Return: 8},
	}
	if res := Check(QueueModel(), h); !res.Linearizable {
		t.Fatal("legal overlapping-enqueue history rejected")
	}
}

func TestCheckRealTimeOrderRespected(t *testing.T) {
	// enq(1) completes strictly before enq(2) begins, so deq must yield 1
	// before 2. This is the history that is sequentially consistent but NOT
	// linearizable (Ch. 3 discussion).
	h := History{
		{Thread: 0, Action: "enq", Input: 1, Call: 1, Return: 2},
		{Thread: 1, Action: "enq", Input: 2, Call: 3, Return: 4},
		{Thread: 0, Action: "deq", Output: 2, Call: 5, Return: 6},
		{Thread: 1, Action: "deq", Output: 1, Call: 7, Return: 8},
	}
	if res := Check(QueueModel(), h); res.Linearizable {
		t.Fatal("real-time order violation accepted")
	}
}

func TestCheckWitnessIsLegal(t *testing.T) {
	h := History{
		{Thread: 0, Action: "enq", Input: 10, Call: 1, Return: 6},
		{Thread: 1, Action: "enq", Input: 20, Call: 2, Return: 3},
		{Thread: 2, Action: "deq", Output: 20, Call: 4, Return: 5},
	}
	res := Check(QueueModel(), h)
	if !res.Linearizable {
		t.Fatal("history should be linearizable")
	}
	if len(res.Witness) != len(h) {
		t.Fatalf("witness has %d ops, want %d", len(res.Witness), len(h))
	}
	// Replaying the witness sequentially must produce the recorded outputs.
	m := QueueModel()
	state := m.Init()
	for _, w := range res.Witness {
		var out any
		state, out = m.Apply(state, w.Action, w.Input)
		if !m.outputEqual(out, w.Output) {
			t.Fatalf("witness replay mismatch at %v: got %v", w, out)
		}
	}
}

func TestCheckRegisterNewOldInversion(t *testing.T) {
	// Reader sees the new value, then a later (non-overlapping) reader sees
	// the old value: not linearizable.
	h := History{
		{Thread: 0, Action: "write", Input: 1, Call: 1, Return: 10},
		{Thread: 1, Action: "read", Output: 1, Call: 2, Return: 3},
		{Thread: 1, Action: "read", Output: 0, Call: 4, Return: 5},
	}
	if res := Check(RegisterModel(0), h); res.Linearizable {
		t.Fatal("new/old read inversion accepted")
	}
}

func TestCheckRegisterConcurrentReadsEitherValue(t *testing.T) {
	h := History{
		{Thread: 0, Action: "write", Input: 1, Call: 1, Return: 10},
		{Thread: 1, Action: "read", Output: 0, Call: 2, Return: 3},
		{Thread: 2, Action: "read", Output: 1, Call: 4, Return: 5},
	}
	if res := Check(RegisterModel(0), h); !res.Linearizable {
		t.Fatal("reads concurrent with a write may return old then new")
	}
}

func TestCheckCAS(t *testing.T) {
	h := seq(
		op(0, "cas", [2]any{0, 5}, true),
		op(1, "cas", [2]any{0, 6}, false),
		op(1, "read", nil, 5),
	)
	if res := Check(RegisterModel(0), h); !res.Linearizable {
		t.Fatal("legal CAS history rejected")
	}
	bad := seq(
		op(0, "cas", [2]any{0, 5}, true),
		op(1, "cas", [2]any{0, 6}, true), // second CAS must fail
	)
	if res := Check(RegisterModel(0), bad); res.Linearizable {
		t.Fatal("double-winning CAS accepted")
	}
}

func TestCheckStack(t *testing.T) {
	good := seq(
		op(0, "push", 1, nil),
		op(0, "push", 2, nil),
		op(0, "pop", nil, 2),
		op(0, "pop", nil, 1),
		op(0, "pop", nil, Empty),
	)
	if res := Check(StackModel(), good); !res.Linearizable {
		t.Fatal("legal stack history rejected")
	}
	bad := seq(
		op(0, "push", 1, nil),
		op(0, "push", 2, nil),
		op(0, "pop", nil, 1), // LIFO violation
	)
	if res := Check(StackModel(), bad); res.Linearizable {
		t.Fatal("LIFO violation accepted")
	}
}

func TestCheckSet(t *testing.T) {
	good := seq(
		op(0, "add", 7, true),
		op(0, "add", 7, false),
		op(0, "contains", 7, true),
		op(0, "remove", 7, true),
		op(0, "remove", 7, false),
		op(0, "contains", 7, false),
	)
	if res := Check(SetModel(), good); !res.Linearizable {
		t.Fatal("legal set history rejected")
	}
	bad := seq(
		op(0, "add", 7, true),
		op(1, "add", 7, true), // second add of same key must return false
	)
	if res := Check(SetModel(), bad); res.Linearizable {
		t.Fatal("double successful add accepted")
	}
}

func TestCheckPQueue(t *testing.T) {
	good := seq(
		op(0, "add", 5, nil),
		op(0, "add", 3, nil),
		op(0, "removeMin", nil, 3),
		op(0, "removeMin", nil, 5),
		op(0, "removeMin", nil, Empty),
	)
	if res := Check(PQueueModel(), good); !res.Linearizable {
		t.Fatal("legal pqueue history rejected")
	}
	bad := seq(
		op(0, "add", 5, nil),
		op(0, "add", 3, nil),
		op(0, "removeMin", nil, 5), // must be 3
	)
	if res := Check(PQueueModel(), bad); res.Linearizable {
		t.Fatal("priority violation accepted")
	}
}

func TestCheckMap(t *testing.T) {
	good := seq(
		op(0, "set", MapSetInput{K: "a", V: 1}, true),
		op(0, "set", MapSetInput{K: "a", V: 2}, false),
		op(0, "get", "a", int64(2)),
		op(0, "get", "b", Empty),
		op(0, "del", "a", true),
		op(0, "del", "a", false),
		op(0, "get", "a", Empty),
	)
	if res := Check(MapModel(), good); !res.Linearizable {
		t.Fatal("legal map history rejected")
	}
	bad := seq(
		op(0, "set", MapSetInput{K: "a", V: 1}, true),
		op(1, "set", MapSetInput{K: "a", V: 2}, true), // must report overwrite
	)
	if res := Check(MapModel(), bad); res.Linearizable {
		t.Fatal("double insert of same key accepted")
	}
	stale := seq(
		op(0, "set", MapSetInput{K: "a", V: 1}, true),
		op(0, "set", MapSetInput{K: "a", V: 2}, false),
		op(1, "get", "a", int64(1)), // stale read after overwrite returned
	)
	if res := Check(MapModel(), stale); res.Linearizable {
		t.Fatal("stale map read accepted")
	}
}

func TestCheckMapConcurrentOverwrite(t *testing.T) {
	// Two overlapping sets may linearize in either order, so a later get may
	// see either value — but a non-overlapping get pair must not invert.
	h := History{
		{Thread: 0, Action: "set", Input: MapSetInput{K: "k", V: 0}, Output: true, Call: 1, Return: 2},
		{Thread: 0, Action: "set", Input: MapSetInput{K: "k", V: 1}, Output: false, Call: 3, Return: 6},
		{Thread: 1, Action: "set", Input: MapSetInput{K: "k", V: 2}, Output: false, Call: 4, Return: 5},
		{Thread: 0, Action: "get", Input: "k", Output: int64(1), Call: 7, Return: 8},
	}
	if res := Check(MapModel(), h); !res.Linearizable {
		t.Fatal("legal overlapping-set history rejected")
	}
	inverted := History{
		{Thread: 0, Action: "set", Input: MapSetInput{K: "k", V: 0}, Output: true, Call: 1, Return: 2},
		{Thread: 0, Action: "set", Input: MapSetInput{K: "k", V: 1}, Output: false, Call: 3, Return: 4},
		{Thread: 1, Action: "set", Input: MapSetInput{K: "k", V: 2}, Output: false, Call: 5, Return: 6},
		{Thread: 0, Action: "get", Input: "k", Output: int64(1), Call: 7, Return: 8},
	}
	if res := Check(MapModel(), inverted); res.Linearizable {
		t.Fatal("map new/old inversion accepted")
	}
}

func TestCheckCounter(t *testing.T) {
	good := seq(
		op(0, "getAndIncrement", nil, int64(0)),
		op(1, "getAndIncrement", nil, int64(1)),
		op(0, "read", nil, int64(2)),
	)
	if res := Check(CounterModel(), good); !res.Linearizable {
		t.Fatal("legal counter history rejected")
	}
	bad := seq(
		op(0, "getAndIncrement", nil, int64(0)),
		op(1, "getAndIncrement", nil, int64(0)), // duplicate ticket
	)
	if res := Check(CounterModel(), bad); res.Linearizable {
		t.Fatal("duplicate getAndIncrement ticket accepted")
	}
}

func TestCheckBudgetExhaustion(t *testing.T) {
	// A large all-concurrent history with a tiny budget must report
	// Exhausted rather than deciding.
	var h History
	for i := 0; i < 12; i++ {
		h = append(h, Operation{
			Thread: ThreadID(i), Action: "enq", Input: i,
			Call: 1, Return: 100,
		})
	}
	res := CheckBudget(QueueModel(), h, 3)
	if !res.Exhausted {
		t.Fatal("tiny budget should exhaust")
	}
	if res.Linearizable {
		t.Fatal("exhausted result must not claim linearizability")
	}
}

// TestQuickSequentialHistoriesLinearizable: any history generated by
// actually running ops one at a time against the sequential model is
// linearizable — the checker must accept all of them.
func TestQuickSequentialHistoriesLinearizable(t *testing.T) {
	m := QueueModel()
	f := func(seed int64, opsCode []byte) bool {
		if len(opsCode) > 14 {
			opsCode = opsCode[:14]
		}
		rng := rand.New(rand.NewSource(seed))
		state := m.Init()
		var h History
		clock := int64(0)
		for _, c := range opsCode {
			var action string
			var input any
			if c%2 == 0 {
				action, input = "enq", int(c/2)
			} else {
				action = "deq"
			}
			var out any
			state, out = m.Apply(state, action, input)
			clock++
			call := clock
			clock++
			h = append(h, Operation{
				Thread: ThreadID(rng.Intn(4)), Action: action, Input: input,
				Output: out, Call: call, Return: clock,
			})
		}
		return Check(m, h).Linearizable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderConcurrent drives a real concurrent execution against a
// mutex-protected queue and verifies the recorded history linearizes.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	var (
		mu sync.Mutex
		q  []int
	)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id ThreadID) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				v := int(id)*100 + i
				p := rec.Call(id, "enq", v)
				mu.Lock()
				q = append(q, v)
				mu.Unlock()
				p.Done(nil)

				p = rec.Call(id, "deq", nil)
				mu.Lock()
				var out any = Empty
				if len(q) > 0 {
					out = q[0]
					q = q[1:]
				}
				mu.Unlock()
				p.Done(out)
			}
		}(ThreadID(w))
	}
	wg.Wait()
	if rec.Len() != workers*20 {
		t.Fatalf("recorded %d ops, want %d", rec.Len(), workers*20)
	}
	res := Check(QueueModel(), rec.History())
	if res.Exhausted {
		t.Fatal("checker exhausted on modest history")
	}
	if !res.Linearizable {
		t.Fatal("mutex-protected queue produced a non-linearizable history")
	}
}
