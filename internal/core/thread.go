// Package core provides the theoretical backbone of the library: dense
// per-goroutine thread identifiers, recorded operation histories, and a
// linearizability checker in the style of Wing & Gong, as developed in
// Chapter 3 of Herlihy & Shavit.
//
// Many classical algorithms in this library (Filter and Bakery locks,
// array-based queue locks, combining trees, …) are written for a fixed set
// of threads 0..n-1. Go deliberately hides goroutine identities, so the
// library makes the thread set explicit: a Registry hands out dense IDs,
// and each participating goroutine acquires one for its lifetime.
package core

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoFreeIDs is returned by Registry.Acquire when every slot is taken.
var ErrNoFreeIDs = errors.New("core: thread registry exhausted")

// ThreadID is a dense identifier in [0, capacity) handed out by a Registry.
type ThreadID int

// Registry allocates dense thread identifiers for a bounded set of
// goroutines. The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	capacity int
	free     []ThreadID
}

// NewRegistry returns a registry that can hand out up to capacity IDs,
// numbered 0 through capacity-1.
func NewRegistry(capacity int) *Registry {
	if capacity <= 0 {
		panic(fmt.Sprintf("core: registry capacity must be positive, got %d", capacity))
	}
	free := make([]ThreadID, capacity)
	for i := range free {
		// Hand out low IDs first: free is used as a stack, so push the
		// highest IDs at the bottom.
		free[i] = ThreadID(capacity - 1 - i)
	}
	return &Registry{capacity: capacity, free: free}
}

// Capacity reports the total number of IDs the registry can hand out.
func (r *Registry) Capacity() int { return r.capacity }

// Acquire reserves a free thread ID. It fails with ErrNoFreeIDs when all
// capacity IDs are in use.
func (r *Registry) Acquire() (ThreadID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.free) == 0 {
		return 0, ErrNoFreeIDs
	}
	id := r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	return id, nil
}

// MustAcquire is Acquire for callers that sized the registry to their
// goroutine count; it panics on exhaustion.
func (r *Registry) MustAcquire() ThreadID {
	id, err := r.Acquire()
	if err != nil {
		panic(err)
	}
	return id
}

// Release returns an ID to the registry. Releasing an ID that is not
// currently held corrupts the registry and panics where detectable.
func (r *Registry) Release(id ThreadID) {
	if id < 0 || int(id) >= r.capacity {
		panic(fmt.Sprintf("core: release of out-of-range thread ID %d (capacity %d)", id, r.capacity))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.free {
		if f == id {
			panic(fmt.Sprintf("core: double release of thread ID %d", id))
		}
	}
	r.free = append(r.free, id)
}

// InUse reports how many IDs are currently held.
func (r *Registry) InUse() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.capacity - len(r.free)
}
