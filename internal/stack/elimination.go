package stack

import (
	"math/rand"
	"sync"
	"time"
)

// EliminationBackoffStack (Fig. 11.11) is a Treiber stack whose backoff is
// productive: a thread that loses the top-of-stack CAS visits the
// elimination array, where a concurrent push–pop pair can cancel out
// without touching the stack at all. A push offers its value; a pop offers
// nil; if they meet, both complete.
type EliminationBackoffStack[T any] struct {
	stack LockFreeStack[T]
	array *EliminationArray[T]

	mu     sync.Mutex
	pool   []*rand.Rand // borrowed per elimination episode
	seeded int64
}

var _ Stack[int] = (*EliminationBackoffStack[int])(nil)

// Default elimination parameters: a small array with a short patience keeps
// the fast path fast while still pairing colliders under load.
const (
	defaultEliminationWidth   = 4
	defaultEliminationTimeout = 50 * time.Microsecond
)

// NewEliminationBackoffStack returns an empty stack with default
// elimination parameters.
func NewEliminationBackoffStack[T any]() *EliminationBackoffStack[T] {
	return NewEliminationBackoffStackSized[T](defaultEliminationWidth, defaultEliminationTimeout)
}

// NewEliminationBackoffStackSized configures the elimination array's width
// and patience explicitly.
func NewEliminationBackoffStackSized[T any](width int, timeout time.Duration) *EliminationBackoffStack[T] {
	return &EliminationBackoffStack[T]{array: NewEliminationArray[T](width, timeout)}
}

// getRNG hands out a private RNG; contention here is off the hot path
// (first visit only per borrow).
func (s *EliminationBackoffStack[T]) getRNG() *rand.Rand {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.pool); n > 0 {
		r := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return r
	}
	s.seeded++
	return rand.New(rand.NewSource(time.Now().UnixNano() ^ s.seeded))
}

func (s *EliminationBackoffStack[T]) putRNG(r *rand.Rand) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool = append(s.pool, r)
}

// Push adds x on top, eliminating against a concurrent Pop when the CAS
// path is contended.
func (s *EliminationBackoffStack[T]) Push(x T) {
	node := &treiberNode[T]{value: x}
	if s.stack.tryPush(node) {
		return
	}
	rng := s.getRNG()
	defer s.putRNG(rng)
	for {
		if s.stack.tryPush(node) {
			return
		}
		if other, err := s.array.Visit(&x, rng, 0); err == nil && other == nil {
			return // exchanged with a pop: our value was taken
		}
	}
}

// Pop removes the top, eliminating against a concurrent Push when the CAS
// path is contended. It reports false when the stack is empty.
func (s *EliminationBackoffStack[T]) Pop() (T, bool) {
	if v, ok, popped := s.stack.tryPop(); popped {
		return v, ok
	}
	rng := s.getRNG()
	defer s.putRNG(rng)
	for {
		if v, ok, popped := s.stack.tryPop(); popped {
			return v, ok
		}
		if other, err := s.array.Visit(nil, rng, 0); err == nil && other != nil {
			return *other, true // exchanged with a push: took its value
		}
	}
}
