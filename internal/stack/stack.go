// Package stack implements the Chapter 11 concurrent stacks: a lock-based
// baseline, the Treiber lock-free stack with exponential backoff
// (Fig. 11.2), and the elimination-backoff stack (Fig. 11.11) built from a
// lock-free exchanger (Fig. 11.8) and an elimination array (Fig. 11.9).
//
// The elimination idea: a concurrent push–pop pair cancels out, so instead
// of fighting over the top-of-stack CAS, colliding threads meet in an
// exchanger and trade directly — turning the stack's sequential bottleneck
// into parallel throughput.
package stack

import "sync"

// Stack is a LIFO pool. Pop reports ok=false when the stack is observed
// empty (total semantics).
type Stack[T any] interface {
	Push(x T)
	Pop() (T, bool)
}

// LockedStack is the mutex-guarded baseline for experiment E5.
type LockedStack[T any] struct {
	mu    sync.Mutex
	items []T
}

var _ Stack[int] = (*LockedStack[int])(nil)

// NewLockedStack returns an empty stack.
func NewLockedStack[T any]() *LockedStack[T] {
	return &LockedStack[T]{}
}

// Push adds x on top.
func (s *LockedStack[T]) Push(x T) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, x)
}

// Pop removes the top, reporting false when empty.
func (s *LockedStack[T]) Pop() (T, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		var zero T
		return zero, false
	}
	top := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return top, true
}
