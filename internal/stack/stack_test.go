package stack

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"amp/internal/core"
)

func implementations() map[string]func() Stack[int] {
	return map[string]func() Stack[int]{
		"locked":      func() Stack[int] { return NewLockedStack[int]() },
		"treiber":     func() Stack[int] { return NewLockFreeStack[int]() },
		"elimination": func() Stack[int] { return NewEliminationBackoffStack[int]() },
	}
}

func TestSequentialLIFO(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if _, ok := s.Pop(); ok {
				t.Fatal("Pop on empty stack reported ok")
			}
			for i := 0; i < 100; i++ {
				s.Push(i)
			}
			for i := 99; i >= 0; i-- {
				v, ok := s.Pop()
				if !ok || v != i {
					t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if _, ok := s.Pop(); ok {
				t.Fatal("Pop on drained stack reported ok")
			}
		})
	}
}

func TestDifferentialAgainstSlice(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var ref []int
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 3000; i++ {
				if rng.Intn(2) == 0 {
					v := rng.Intn(1000)
					s.Push(v)
					ref = append(ref, v)
				} else {
					v, ok := s.Pop()
					if len(ref) == 0 {
						if ok {
							t.Fatalf("op %d: Pop ok on empty stack", i)
						}
						continue
					}
					want := ref[len(ref)-1]
					if !ok || v != want {
						t.Fatalf("op %d: Pop = (%d,%v), want (%d,true)", i, v, ok, want)
					}
					ref = ref[:len(ref)-1]
				}
			}
		})
	}
}

// TestConcurrentConservation: under concurrent pushes and pops, every value
// pushed is popped exactly once (after a final drain), and nothing is
// invented.
func TestConcurrentConservation(t *testing.T) {
	const (
		workers = 4
		perW    = 400
	)
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var (
				wg       sync.WaitGroup
				mu       sync.Mutex
				popped   = make(map[int]int)
				popCount atomic.Int64
			)
			record := func(v int) {
				mu.Lock()
				popped[v]++
				mu.Unlock()
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(base int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						s.Push(base + i)
						if i%2 == 1 {
							if v, ok := s.Pop(); ok {
								popCount.Add(1)
								record(v)
							}
						}
					}
				}(w * 1_000_000)
			}
			wg.Wait()
			for {
				v, ok := s.Pop()
				if !ok {
					break
				}
				popCount.Add(1)
				record(v)
			}
			if got := popCount.Load(); got != workers*perW {
				t.Fatalf("popped %d values, want %d", got, workers*perW)
			}
			for v, n := range popped {
				if n != 1 {
					t.Fatalf("value %d popped %d times", v, n)
				}
			}
		})
	}
}

func TestLinearizableStacks(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			rec := core.NewRecorder()
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(me core.ThreadID) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(me) + 21))
					for i := 0; i < 6; i++ {
						if rng.Intn(2) == 0 {
							v := int(me)*100 + i
							p := rec.Call(me, "push", v)
							s.Push(v)
							p.Done(nil)
						} else {
							p := rec.Call(me, "pop", nil)
							v, ok := s.Pop()
							if ok {
								p.Done(v)
							} else {
								p.Done(core.Empty)
							}
						}
					}
				}(core.ThreadID(w))
			}
			wg.Wait()
			res := core.Check(core.StackModel(), rec.History())
			if res.Exhausted {
				t.Skip("checker budget exhausted")
			}
			if !res.Linearizable {
				t.Fatalf("%s produced a non-linearizable history:\n%v", name, rec.History())
			}
		})
	}
}

func TestExchangerPairsUp(t *testing.T) {
	e := NewExchanger[int]()
	a, b := 1, 2
	var gotA, gotB *int
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		gotA, errA = e.Exchange(&a, time.Second)
	}()
	go func() {
		defer wg.Done()
		gotB, errB = e.Exchange(&b, time.Second)
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("exchange errors: %v, %v", errA, errB)
	}
	if gotA == nil || gotB == nil || *gotA != 2 || *gotB != 1 {
		t.Fatalf("exchange mismatch: A got %v, B got %v", gotA, gotB)
	}
}

func TestExchangerTimesOutAlone(t *testing.T) {
	e := NewExchanger[int]()
	v := 5
	start := time.Now()
	if _, err := e.Exchange(&v, 20*time.Millisecond); err != ErrTimeout {
		t.Fatalf("solo Exchange err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("Exchange returned before its patience elapsed")
	}
	// The slot must be clean again: a later pair succeeds.
	done := make(chan *int, 1)
	go func() {
		w := 9
		r, _ := e.Exchange(&w, time.Second)
		done <- r
	}()
	u := 8
	r, err := e.Exchange(&u, time.Second)
	if err != nil {
		t.Fatalf("post-timeout Exchange failed: %v", err)
	}
	if *r != 9 || *<-done != 8 {
		t.Fatal("post-timeout exchange returned wrong items")
	}
}

func TestExchangerNilOffers(t *testing.T) {
	// A push/pop style pairing: one side offers nil.
	e := NewExchanger[int]()
	v := 3
	var wg sync.WaitGroup
	var got *int
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, _ = e.Exchange(nil, time.Second)
	}()
	r, err := e.Exchange(&v, time.Second)
	wg.Wait()
	if err != nil {
		t.Fatalf("Exchange error: %v", err)
	}
	if r != nil {
		t.Fatalf("push side got %v, want nil", r)
	}
	if got == nil || *got != 3 {
		t.Fatalf("pop side got %v, want 3", got)
	}
}

func TestEliminationManyExchanges(t *testing.T) {
	// Force heavy contention so elimination actually triggers; correctness
	// is covered by conservation, this checks it completes briskly.
	s := NewEliminationBackoffStackSized[int](2, 100*time.Microsecond)
	var wg sync.WaitGroup
	var pops atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if w%2 == 0 {
					s.Push(i)
				} else if _, ok := s.Pop(); ok {
					pops.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain and count: pushes - pops must remain.
	remaining := 0
	for {
		if _, ok := s.Pop(); !ok {
			break
		}
		remaining++
	}
	if int64(remaining)+pops.Load() != 4*200 {
		t.Fatalf("conservation violated: %d popped + %d drained != %d pushed",
			pops.Load(), remaining, 4*200)
	}
}

func TestEliminationArrayWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-width elimination array did not panic")
		}
	}()
	NewEliminationArray[int](0, time.Millisecond)
}

func TestQuickStackEquivalence(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []int8) bool {
				s := mk()
				var ref []int
				for _, code := range ops {
					if code >= 0 {
						s.Push(int(code))
						ref = append(ref, int(code))
					} else {
						v, ok := s.Pop()
						if len(ref) == 0 {
							if ok {
								return false
							}
							continue
						}
						if !ok || v != ref[len(ref)-1] {
							return false
						}
						ref = ref[:len(ref)-1]
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEliminationUnderRealContention(t *testing.T) {
	// Force CAS failures (and thus the elimination path) by running with
	// extra scheduler parallelism and a single-slot elimination array.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	s := NewEliminationBackoffStackSized[int](1, 200*time.Microsecond)
	const (
		workers = 8
		perW    = 500
	)
	var (
		wg     sync.WaitGroup
		pushed atomic.Int64
		popped atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if w%2 == 0 {
					s.Push(w*perW + i)
					pushed.Add(1)
				} else if _, ok := s.Pop(); ok {
					popped.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	drained := int64(0)
	for {
		if _, ok := s.Pop(); !ok {
			break
		}
		drained++
	}
	if popped.Load()+drained != pushed.Load() {
		t.Fatalf("conservation violated: pushed %d, popped %d + drained %d",
			pushed.Load(), popped.Load(), drained)
	}
}

func TestTreiberUnderRealContention(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	s := NewLockFreeStack[int]()
	const (
		workers = 8
		perW    = 1000
	)
	var wg sync.WaitGroup
	var popped atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				s.Push(i)
				if _, ok := s.Pop(); ok {
					popped.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	remaining := int64(0)
	for {
		if _, ok := s.Pop(); !ok {
			break
		}
		remaining++
	}
	if popped.Load()+remaining != workers*perW {
		t.Fatalf("conservation violated: %d popped + %d remaining != %d",
			popped.Load(), remaining, workers*perW)
	}
}

func TestEliminationArrayVisitPairs(t *testing.T) {
	a := NewEliminationArray[int](1, 100*time.Millisecond)
	rngA := rand.New(rand.NewSource(1))
	rngB := rand.New(rand.NewSource(2))
	v := 42
	var got *int
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, err = a.Visit(nil, rngA, 1)
	}()
	other, err2 := a.Visit(&v, rngB, 0) // width 0 clamps to full array
	<-done
	if err != nil || err2 != nil {
		t.Fatalf("Visit errors: %v, %v", err, err2)
	}
	if got == nil || *got != 42 || other != nil {
		t.Fatalf("Visit pairing wrong: got=%v other=%v", got, other)
	}
}

func TestEliminationArrayVisitTimesOut(t *testing.T) {
	a := NewEliminationArray[int](2, 5*time.Millisecond)
	rng := rand.New(rand.NewSource(3))
	v := 1
	if _, err := a.Visit(&v, rng, 2); err != ErrTimeout {
		t.Fatalf("solo Visit err = %v, want ErrTimeout", err)
	}
}
