package stack

import (
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"
)

// ErrTimeout reports that an exchange or elimination attempt found no
// partner within its patience window.
var ErrTimeout = errors.New("stack: exchange timed out")

// Exchanger slot states (the book's stamp values).
const (
	slotEmpty int32 = iota
	slotWaiting
	slotBusy
)

// exchSlot is an immutable (item, state) pair standing in for the book's
// AtomicStampedReference: a CAS replaces the whole pair.
type exchSlot[T any] struct {
	item  *T
	state int32
}

// Exchanger is the lock-free exchanger of Fig. 11.8: two threads meet; the
// first to arrive parks its item in the slot (EMPTY→WAITING), the second
// swaps in its own (WAITING→BUSY), and the first collects it and resets.
type Exchanger[T any] struct {
	slot atomic.Pointer[exchSlot[T]]
}

// NewExchanger returns an empty exchanger.
func NewExchanger[T any]() *Exchanger[T] {
	e := &Exchanger[T]{}
	e.slot.Store(&exchSlot[T]{state: slotEmpty})
	return e
}

// Exchange offers myItem (nil means "offering nothing", as a pop does) and
// waits up to timeout for a partner's item. It returns the partner's offer,
// or ErrTimeout.
func (e *Exchanger[T]) Exchange(myItem *T, timeout time.Duration) (*T, error) {
	deadline := time.Now().Add(timeout)
	for {
		if time.Now().After(deadline) {
			return nil, ErrTimeout
		}
		cur := e.slot.Load()
		switch cur.state {
		case slotEmpty:
			// Try to be the first arriver.
			inserted := &exchSlot[T]{item: myItem, state: slotWaiting}
			if !e.slot.CompareAndSwap(cur, inserted) {
				continue
			}
			for !time.Now().After(deadline) {
				if s := e.slot.Load(); s.state == slotBusy {
					e.slot.Store(&exchSlot[T]{state: slotEmpty})
					return s.item, nil
				}
				runtime.Gosched()
			}
			// Timed out: withdraw our WAITING pair. If the CAS fails, the
			// only possible transition is a partner's WAITING→BUSY, so the
			// exchange actually succeeded — collect it.
			if e.slot.CompareAndSwap(inserted, &exchSlot[T]{state: slotEmpty}) {
				return nil, ErrTimeout
			}
			s := e.slot.Load()
			e.slot.Store(&exchSlot[T]{state: slotEmpty})
			return s.item, nil
		case slotWaiting:
			// Someone is parked: try to be its partner.
			if e.slot.CompareAndSwap(cur, &exchSlot[T]{item: myItem, state: slotBusy}) {
				return cur.item, nil
			}
		default: // slotBusy: a pair is mid-exchange; retry
			runtime.Gosched()
		}
	}
}

// EliminationArray (Fig. 11.9) spreads colliding threads over a bank of
// exchangers: Visit picks a random slot and tries to exchange there.
type EliminationArray[T any] struct {
	exchangers []*Exchanger[T]
	timeout    time.Duration
}

// NewEliminationArray returns an array of `capacity` exchangers whose
// visits wait up to timeout for a partner.
func NewEliminationArray[T any](capacity int, timeout time.Duration) *EliminationArray[T] {
	if capacity <= 0 {
		panic("stack: elimination array capacity must be positive")
	}
	a := &EliminationArray[T]{
		exchangers: make([]*Exchanger[T], capacity),
		timeout:    timeout,
	}
	for i := range a.exchangers {
		a.exchangers[i] = NewExchanger[T]()
	}
	return a
}

// Visit offers value at a random slot within the given range width,
// waiting out the array's timeout.
func (a *EliminationArray[T]) Visit(value *T, rng *rand.Rand, width int) (*T, error) {
	if width <= 0 || width > len(a.exchangers) {
		width = len(a.exchangers)
	}
	slot := rng.Intn(width)
	return a.exchangers[slot].Exchange(value, a.timeout)
}
