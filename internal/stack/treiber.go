package stack

import (
	"sync/atomic"
	"time"

	"amp/internal/spin"
)

type treiberNode[T any] struct {
	value T
	next  *treiberNode[T]
}

// LockFreeStack is Treiber's stack (Fig. 11.2): a single CAS on the top
// pointer per operation, with randomized exponential backoff after a failed
// CAS. The Go GC makes the pop CAS ABA-safe without counted pointers.
type LockFreeStack[T any] struct {
	top      atomic.Pointer[treiberNode[T]]
	minDelay time.Duration
	maxDelay time.Duration
}

var _ Stack[int] = (*LockFreeStack[int])(nil)

// Backoff window defaults, matching the spin package's tuning for a
// scheduler-backed testbed.
const (
	defaultMinDelay = time.Microsecond
	defaultMaxDelay = 128 * time.Microsecond
)

// NewLockFreeStack returns an empty stack with the default backoff window.
func NewLockFreeStack[T any]() *LockFreeStack[T] {
	return &LockFreeStack[T]{minDelay: defaultMinDelay, maxDelay: defaultMaxDelay}
}

// tryPush attempts one CAS of the top pointer.
func (s *LockFreeStack[T]) tryPush(node *treiberNode[T]) bool {
	oldTop := s.top.Load()
	node.next = oldTop
	return s.top.CompareAndSwap(oldTop, node)
}

// Push adds x on top, backing off after each failed CAS.
func (s *LockFreeStack[T]) Push(x T) {
	node := &treiberNode[T]{value: x}
	if s.tryPush(node) {
		return
	}
	backoff := spin.NewBackoff(s.minDelay, s.maxDelay)
	for {
		backoff.Pause()
		if s.tryPush(node) {
			return
		}
	}
}

// tryPop attempts one CAS of the top pointer; popped reports whether the
// CAS was applied (as opposed to losing a race), ok whether the stack was
// nonempty.
func (s *LockFreeStack[T]) tryPop() (value T, ok, popped bool) {
	oldTop := s.top.Load()
	if oldTop == nil {
		return value, false, true
	}
	if s.top.CompareAndSwap(oldTop, oldTop.next) {
		return oldTop.value, true, true
	}
	return value, false, false
}

// Pop removes the top, reporting false when the stack is empty.
func (s *LockFreeStack[T]) Pop() (T, bool) {
	if v, ok, popped := s.tryPop(); popped {
		return v, ok
	}
	backoff := spin.NewBackoff(s.minDelay, s.maxDelay)
	for {
		backoff.Pause()
		if v, ok, popped := s.tryPop(); popped {
			return v, ok
		}
	}
}
