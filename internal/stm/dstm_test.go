package stm

import (
	"sync"
	"testing"
)

// ofUniverses returns one OFSTM per contention-management policy.
func ofUniverses() map[string]*OFSTM {
	return map[string]*OFSTM{
		"aggressive": NewOF(),
		"backoff": NewOF(WithContentionManager(func() ContentionManager {
			return &BackoffManager{}
		})),
	}
}

func TestOFSequential(t *testing.T) {
	for name, s := range ofUniverses() {
		t.Run(name, func(t *testing.T) {
			x := NewOFTVar(10)
			s.Atomic(func(tx *OFTx) {
				x.Set(tx, x.Get(tx)+5)
			})
			if got := x.Load(); got != 15 {
				t.Fatalf("Load = %d, want 15", got)
			}
		})
	}
}

func TestOFReadYourOwnWrites(t *testing.T) {
	s := NewOF()
	x := NewOFTVar(0)
	s.Atomic(func(tx *OFTx) {
		x.Set(tx, 7)
		if got := x.Get(tx); got != 7 {
			t.Errorf("Get after Set = %d, want 7", got)
		}
		x.Set(tx, x.Get(tx)+1)
	})
	if got := x.Load(); got != 8 {
		t.Fatalf("Load = %d, want 8", got)
	}
}

func TestOFAbortRollsBack(t *testing.T) {
	s := NewOF()
	x := NewOFTVar(1)
	// An attempt that writes and is then aborted by a rival must leave the
	// committed value untouched: simulate by aborting the tx mid-flight.
	first := true
	s.Atomic(func(tx *OFTx) {
		x.Set(tx, 99)
		if first {
			first = false
			tx.abortRemote() // a rival kills us
			// The next Get or Set must notice and unwind.
			x.Get(tx)
			t.Error("aborted transaction kept running")
		}
	})
	if got := x.Load(); got != 99 {
		t.Fatalf("Load = %d, want 99 (from the successful retry)", got)
	}
	if s.Aborts() == 0 {
		t.Fatal("the killed attempt was not counted as an abort")
	}
}

func TestOFConcurrentCounter(t *testing.T) {
	const (
		workers = 6
		perW    = 300
	)
	for name, s := range ofUniverses() {
		t.Run(name, func(t *testing.T) {
			counter := NewOFTVar(0)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						s.Atomic(func(tx *OFTx) {
							counter.Set(tx, counter.Get(tx)+1)
						})
					}
				}()
			}
			wg.Wait()
			if got := counter.Load(); got != workers*perW {
				t.Fatalf("counter = %d, want %d (lost updates)", got, workers*perW)
			}
		})
	}
}

func TestOFBankInvariant(t *testing.T) {
	const (
		accounts = 8
		initial  = 500
		workers  = 4
		perW     = 200
	)
	s := NewOF()
	acct := make([]*OFTVar[int], accounts)
	for i := range acct {
		acct[i] = NewOFTVar(initial)
	}
	auditErr := make(chan int, 1)
	stop := make(chan struct{})
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			total := 0
			s.Atomic(func(tx *OFTx) {
				total = 0
				for _, a := range acct {
					total += a.Get(tx)
				}
			})
			if total != accounts*initial {
				select {
				case auditErr <- total:
				default:
				}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			from, to := seed%accounts, (seed+3)%accounts
			for i := 0; i < perW; i++ {
				s.Atomic(func(tx *OFTx) {
					f := acct[from].Get(tx)
					acct[from].Set(tx, f-1)
					acct[to].Set(tx, acct[to].Get(tx)+1)
				})
				from, to = (from+1)%accounts, (to+5)%accounts
				if from == to {
					to = (to + 1) % accounts
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-auditDone
	select {
	case total := <-auditErr:
		t.Fatalf("audit saw inconsistent total %d, want %d", total, accounts*initial)
	default:
	}
	total := 0
	for _, a := range acct {
		total += a.Load()
	}
	if total != accounts*initial {
		t.Fatalf("final total = %d, want %d", total, accounts*initial)
	}
}

func TestOFConsistentPairs(t *testing.T) {
	s := NewOF()
	a := NewOFTVar(0)
	b := NewOFTVar(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 1500; i++ {
			s.Atomic(func(tx *OFTx) {
				a.Set(tx, i)
				b.Set(tx, i)
			})
		}
		close(stop)
	}()
	for {
		select {
		case <-stop:
			wg.Wait()
			return
		default:
		}
		var av, bv int
		s.Atomic(func(tx *OFTx) {
			av = a.Get(tx)
			bv = b.Get(tx)
		})
		if av != bv {
			t.Fatalf("torn read: a=%d b=%d", av, bv)
		}
	}
}

func TestOFUserPanicPropagates(t *testing.T) {
	s := NewOF()
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	s.Atomic(func(tx *OFTx) {
		panic("kaboom")
	})
}

func TestOFLoadSpinsOutWriters(t *testing.T) {
	s := NewOF()
	x := NewOFTVar(3)
	// Load on a variable mid-write must return a committed value.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s.Atomic(func(tx *OFTx) {
				x.Set(tx, x.Get(tx)+1)
			})
		}
	}()
	last := 0
	for i := 0; i < 2000; i++ {
		v := x.Load()
		if v < last {
			t.Fatalf("Load went backward: %d after %d", v, last)
		}
		last = v
	}
	wg.Wait()
	if got := x.Load(); got != 503 {
		t.Fatalf("final Load = %d, want 503", got)
	}
}
