// Package stm implements the Chapter 18 software transactional memory in
// the style the chapter converges on (and TL2, its chapter-notes
// reference): a global version clock, per-location versioned write-locks,
// invisible optimistic reads validated against the clock, and commit-time
// locking with write-back.
//
// The unit of transactional state is the TVar, the book's atomic object.
// Transactions run inside STM.Atomic, which re-executes the function until
// it commits:
//
//	x := stm.NewTVar(0)
//	s.Atomic(func(tx *stm.Tx) {
//		x.Set(tx, x.Get(tx)+1)
//	})
//
// Aborts propagate as a private panic that Atomic catches — user code
// simply stops at the failed Get/Set, so a transaction never observes an
// inconsistent snapshot (the "zombie" problem of §18.3 cannot arise).
package stm

import (
	"sort"
	"sync/atomic"
	"time"

	"amp/internal/spin"
)

// STM is an isolated transactional universe: a global version clock plus
// commit/abort statistics. TVars from different STM instances must not be
// mixed in one transaction.
type STM struct {
	clock   atomic.Uint64
	commits atomic.Int64
	aborts  atomic.Int64
}

// New returns a fresh STM universe.
func New() *STM {
	return &STM{}
}

// Commits reports the number of committed transactions.
func (s *STM) Commits() int64 { return s.commits.Load() }

// Aborts reports the number of aborted-and-retried transaction attempts.
func (s *STM) Aborts() int64 { return s.aborts.Load() }

// lockedBit marks a version word held by a committing transaction.
const lockedBit = 1 << 63

// tvarIDs hands every TVar a unique identity for deadlock-free commit-time
// lock ordering.
var tvarIDs atomic.Uint64

// tvar is the type-erased view of a TVar that Tx works with.
type tvar interface {
	metaWord() *atomic.Uint64
	commit(staged any, wv uint64)
	order() uint64
}

// TVar is a transactional variable holding a value of type T.
type TVar[T any] struct {
	id   uint64
	meta atomic.Uint64 // version | lockedBit
	val  atomic.Pointer[T]
}

// NewTVar returns a TVar initialized to init (version 0, unlocked).
func NewTVar[T any](init T) *TVar[T] {
	v := &TVar[T]{id: tvarIDs.Add(1)}
	v.val.Store(&init)
	return v
}

func (v *TVar[T]) metaWord() *atomic.Uint64 { return &v.meta }
func (v *TVar[T]) order() uint64            { return v.id }

// commit installs the staged value and releases the lock by publishing the
// new version (write-back, then unlock, in one store).
func (v *TVar[T]) commit(staged any, wv uint64) {
	value := staged.(T)
	v.val.Store(&value)
	v.meta.Store(wv) // release: wv has lockedBit clear
}

// Load reads the value non-transactionally. It is safe at any time but
// sees only committed values; use it for quiescent inspection.
func (v *TVar[T]) Load() T {
	return *v.val.Load()
}

// Get reads the TVar inside a transaction, aborting (and retrying the
// whole transaction) if a consistent value cannot be proven.
func (v *TVar[T]) Get(tx *Tx) T {
	if staged, ok := tx.writes[tvar(v)]; ok {
		return staged.(T)
	}
	pre := v.meta.Load()
	value := v.val.Load()
	post := v.meta.Load()
	if pre != post || post&lockedBit != 0 || post > tx.readVersion {
		tx.abort()
	}
	tx.reads = append(tx.reads, v)
	return *value
}

// Set stages a write to the TVar; it becomes visible on commit.
func (v *TVar[T]) Set(tx *Tx, value T) {
	tx.writes[tvar(v)] = value
}

// Tx is one transaction attempt. It must only be used within the Atomic
// call that created it.
type Tx struct {
	stm         *STM
	readVersion uint64
	reads       []tvar
	writes      map[tvar]any
}

// abortSignal is the private panic payload that unwinds an attempt.
type abortSignal struct{}

func (tx *Tx) abort() {
	panic(abortSignal{})
}

// Retry aborts the current attempt unconditionally; combined with an
// updated precondition inside the transaction function this gives a crude
// "retry when state changes" (the transaction re-runs from scratch).
func (tx *Tx) Retry() {
	tx.abort()
}

// Atomic runs fn transactionally, retrying with randomized backoff until
// an attempt commits. fn must confine its shared-state access to Get/Set
// on TVars and must be safe to re-execute.
func (s *STM) Atomic(fn func(tx *Tx)) {
	var backoff *spin.Backoff
	for {
		if s.attempt(fn) {
			s.commits.Add(1)
			return
		}
		s.aborts.Add(1)
		if backoff == nil {
			backoff = spin.NewBackoff(time.Microsecond, 128*time.Microsecond)
		}
		backoff.Pause()
	}
}

// attempt runs fn once, reporting whether it committed.
func (s *STM) attempt(fn func(tx *Tx)) (committed bool) {
	tx := &Tx{
		stm:         s,
		readVersion: s.clock.Load(),
		writes:      make(map[tvar]any),
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				return // aborted attempt; Atomic will retry
			}
			panic(r) // user panic: propagate
		}
	}()
	fn(tx)
	return tx.commit()
}

// commit implements the TL2 commit protocol: lock the write set in id
// order, take a write version, validate the read set, write back, release.
func (tx *Tx) commit() bool {
	if len(tx.writes) == 0 {
		// Read-only transactions validated every read against readVersion
		// already; nothing to publish.
		return true
	}
	locked := make([]tvar, 0, len(tx.writes))
	ordered := make([]tvar, 0, len(tx.writes))
	for v := range tx.writes {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].order() < ordered[j].order() })

	release := func() {
		for _, v := range locked {
			meta := v.metaWord()
			meta.Store(meta.Load() &^ lockedBit)
		}
	}
	for _, v := range ordered {
		meta := v.metaWord()
		cur := meta.Load()
		if cur&lockedBit != 0 || cur > tx.readVersion || !meta.CompareAndSwap(cur, cur|lockedBit) {
			release()
			return false
		}
		locked = append(locked, v)
	}
	writeVersion := tx.stm.clock.Add(1)
	// Validate reads: unlocked (unless we hold the lock) and not newer than
	// our snapshot.
	for _, r := range tx.reads {
		cur := r.metaWord().Load()
		if _, isWrite := tx.writes[r]; isWrite {
			cur &^= lockedBit // we hold this lock ourselves
		}
		if cur&lockedBit != 0 || cur > tx.readVersion {
			release()
			return false
		}
	}
	for _, v := range ordered {
		v.commit(tx.writes[v], writeVersion)
	}
	return true
}
