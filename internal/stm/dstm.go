package stm

import (
	"sync/atomic"
	"time"

	"amp/internal/spin"
)

// This file implements the chapter's *obstruction-free* atomic object
// (§18.3, the DSTM-style FreeObject), complementing the lock-based TL2
// engine in stm.go. Every transactional variable points at a Locator —
// (owner transaction, old version, new version) — and a writer installs a
// fresh locator with a single CAS. The object's current value is decided
// by the owner's status word, so committing a whole transaction is one CAS
// on that word. Conflicts go to a pluggable ContentionManager, which is
// what makes the design obstruction-free rather than lock-free: progress
// is guaranteed only for a transaction that runs alone long enough.

// ofStatus is a transaction's lifecycle state.
type ofStatus int32

const (
	ofActive ofStatus = iota
	ofCommitted
	ofAborted
)

// ContentionManager arbitrates between a transaction and the active owner
// of an object it wants (§18.3.1). Implementations may abort the other
// transaction, pause, or abort the caller (by returning false).
type ContentionManager interface {
	// Resolve is called when `me` finds `other` holding an object in
	// ACTIVE state. After it returns, the caller re-reads the state.
	Resolve(me, other *OFTx)
}

// AggressiveManager always aborts the other transaction immediately.
type AggressiveManager struct{}

// Resolve aborts the conflicting owner.
func (AggressiveManager) Resolve(_, other *OFTx) {
	other.abortRemote()
}

// BackoffManager (the book's "Karma-lite") pauses with exponential backoff
// a bounded number of times, then aborts the other transaction.
type BackoffManager struct {
	attempts map[*OFTx]int
}

// backoffPatience is how many pauses a BackoffManager gives a rival before
// killing it.
const backoffPatience = 4

// Resolve backs off up to backoffPatience times per rival, then aborts it.
func (m *BackoffManager) Resolve(_, other *OFTx) {
	if m.attempts == nil {
		m.attempts = make(map[*OFTx]int)
	}
	m.attempts[other]++
	if m.attempts[other] > backoffPatience {
		other.abortRemote()
		return
	}
	time.Sleep(time.Duration(m.attempts[other]) * 2 * time.Microsecond)
}

// OFSTM is an obstruction-free transactional universe.
type OFSTM struct {
	commits    atomic.Int64
	aborts     atomic.Int64
	newManager func() ContentionManager
}

// OFOption configures an OFSTM.
type OFOption interface {
	apply(*OFSTM)
}

type managerOption struct {
	f func() ContentionManager
}

func (o managerOption) apply(s *OFSTM) { s.newManager = o.f }

// WithContentionManager selects the conflict policy; the factory runs once
// per transaction attempt. The default is AggressiveManager.
func WithContentionManager(f func() ContentionManager) OFOption {
	return managerOption{f: f}
}

// NewOF returns an obstruction-free STM universe.
func NewOF(opts ...OFOption) *OFSTM {
	s := &OFSTM{newManager: func() ContentionManager { return AggressiveManager{} }}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Commits reports committed transactions.
func (s *OFSTM) Commits() int64 { return s.commits.Load() }

// Aborts reports aborted attempts (self- or enemy-inflicted).
func (s *OFSTM) Aborts() int64 { return s.aborts.Load() }

// OFTx is one obstruction-free transaction attempt. Its status word is the
// single point of atomicity: rivals abort the transaction by CASing it.
type OFTx struct {
	status  atomic.Int32
	stm     *OFSTM
	manager ContentionManager
	reads   map[ofVar]any // var -> version pointer observed
}

// committedTx is the sentinel owner of freshly created variables.
var committedTx = func() *OFTx {
	tx := &OFTx{}
	tx.status.Store(int32(ofCommitted))
	return tx
}()

func (tx *OFTx) statusOf() ofStatus { return ofStatus(tx.status.Load()) }

// abortRemote is called by rivals: a CAS so it cannot revive a committed
// transaction.
func (tx *OFTx) abortRemote() {
	tx.status.CompareAndSwap(int32(ofActive), int32(ofAborted))
}

// checkActive aborts the attempt (by panic) if a rival killed it.
func (tx *OFTx) checkActive() {
	if tx.statusOf() != ofActive {
		panic(abortSignal{})
	}
}

// validateReads confirms every recorded read still returns the same
// version, so the attempt has observed a consistent snapshot throughout.
func (tx *OFTx) validateReads() bool {
	for v, expected := range tx.reads {
		if !v.validateRead(tx, expected) {
			return false
		}
	}
	return true
}

// ofVar is the type-erased view of an OFTVar.
type ofVar interface {
	validateRead(tx *OFTx, expected any) bool
}

// ofLocator is the book's Locator: versions plus the transaction that
// created them. oldV is always a committed version; newV becomes committed
// if (and only if) owner commits.
type ofLocator[T any] struct {
	owner *OFTx
	oldV  *T
	newV  *T
}

// OFTVar is an obstruction-free transactional variable.
type OFTVar[T any] struct {
	start atomic.Pointer[ofLocator[T]]
}

var _ ofVar = (*OFTVar[int])(nil)

// NewOFTVar returns a variable initialized to init.
func NewOFTVar[T any](init T) *OFTVar[T] {
	v := &OFTVar[T]{}
	v.start.Store(&ofLocator[T]{owner: committedTx, oldV: &init, newV: &init})
	return v
}

// Load reads the committed value non-transactionally (spinning out any
// in-flight writer).
func (v *OFTVar[T]) Load() T {
	for {
		loc := v.start.Load()
		switch loc.owner.statusOf() {
		case ofCommitted:
			return *loc.newV
		case ofAborted:
			return *loc.oldV
		default:
			loc.owner.abortRemote() // non-transactional reads are impatient
		}
	}
}

// Get reads the variable inside a transaction, recording the version for
// commit-time validation and re-validating the whole read set so the
// attempt never acts on an inconsistent snapshot (no zombies, §18.3).
func (v *OFTVar[T]) Get(tx *OFTx) T {
	for {
		tx.checkActive()
		loc := v.start.Load()
		var version *T
		if loc.owner == tx {
			version = loc.newV
		} else {
			switch loc.owner.statusOf() {
			case ofCommitted:
				version = loc.newV
			case ofAborted:
				version = loc.oldV
			default:
				tx.manager.Resolve(tx, loc.owner)
				continue
			}
			tx.reads[v] = version
		}
		if !tx.validateReads() {
			panic(abortSignal{})
		}
		return *version
	}
}

// Set writes the variable inside a transaction by acquiring its locator.
func (v *OFTVar[T]) Set(tx *OFTx, value T) {
	for {
		tx.checkActive()
		loc := v.start.Load()
		if loc.owner == tx {
			loc.newV = &value // we already own it; just update the version
			return
		}
		fresh := &ofLocator[T]{owner: tx}
		switch loc.owner.statusOf() {
		case ofCommitted:
			fresh.oldV = loc.newV
		case ofAborted:
			fresh.oldV = loc.oldV
		default:
			tx.manager.Resolve(tx, loc.owner)
			continue
		}
		fresh.newV = &value
		if v.start.CompareAndSwap(loc, fresh) {
			if !tx.validateReads() {
				panic(abortSignal{})
			}
			return
		}
	}
}

// validateRead reports whether the recorded version is still the one this
// variable would return.
func (v *OFTVar[T]) validateRead(tx *OFTx, expected any) bool {
	loc := v.start.Load()
	if loc.owner == tx {
		// We acquired the variable after reading it; consistent iff the
		// committed version we built on is the one we read.
		return any(loc.oldV) == expected
	}
	switch loc.owner.statusOf() {
	case ofCommitted:
		return any(loc.newV) == expected
	case ofAborted:
		return any(loc.oldV) == expected
	default:
		return false // a rival is mid-write: conservatively inconsistent
	}
}

// Atomic runs fn transactionally, retrying with backoff until it commits.
func (s *OFSTM) Atomic(fn func(tx *OFTx)) {
	var backoff *spin.Backoff
	for {
		if s.attempt(fn) {
			s.commits.Add(1)
			return
		}
		s.aborts.Add(1)
		if backoff == nil {
			backoff = spin.NewBackoff(time.Microsecond, 128*time.Microsecond)
		}
		backoff.Pause()
	}
}

func (s *OFSTM) attempt(fn func(tx *OFTx)) (committed bool) {
	tx := &OFTx{
		stm:     s,
		manager: s.newManager(),
		reads:   make(map[ofVar]any),
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				tx.abortRemote() // make sure rivals see us dead
				return
			}
			panic(r)
		}
	}()
	fn(tx)
	// Commit: validate reads, then decide with one CAS on the status word.
	if !tx.validateReads() {
		tx.abortRemote()
		return false
	}
	return tx.status.CompareAndSwap(int32(ofActive), int32(ofCommitted))
}
