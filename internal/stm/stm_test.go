package stm

import (
	"sync"
	"testing"
)

func TestSequentialReadWrite(t *testing.T) {
	s := New()
	x := NewTVar(10)
	var got int
	s.Atomic(func(tx *Tx) {
		got = x.Get(tx)
		x.Set(tx, got+5)
	})
	if got != 10 {
		t.Fatalf("Get = %d, want 10", got)
	}
	if v := x.Load(); v != 15 {
		t.Fatalf("Load = %d, want 15", v)
	}
	if s.Commits() != 1 {
		t.Fatalf("Commits = %d, want 1", s.Commits())
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	s := New()
	x := NewTVar(0)
	s.Atomic(func(tx *Tx) {
		x.Set(tx, 7)
		if got := x.Get(tx); got != 7 {
			t.Errorf("Get after Set = %d, want 7", got)
		}
		x.Set(tx, x.Get(tx)+1)
	})
	if v := x.Load(); v != 8 {
		t.Fatalf("Load = %d, want 8", v)
	}
}

func TestWritesInvisibleUntilCommit(t *testing.T) {
	s := New()
	x := NewTVar(1)
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		first := true
		s.Atomic(func(tx *Tx) {
			x.Set(tx, 99)
			if first {
				first = false
				close(entered)
				<-release
			}
		})
	}()
	<-entered
	if v := x.Load(); v != 1 {
		t.Fatalf("uncommitted write visible: Load = %d", v)
	}
	close(release)
}

func TestConcurrentCounter(t *testing.T) {
	const (
		workers = 8
		perW    = 500
	)
	s := New()
	counter := NewTVar(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				s.Atomic(func(tx *Tx) {
					counter.Set(tx, counter.Get(tx)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := counter.Load(); got != workers*perW {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*perW)
	}
	if s.Commits() != workers*perW {
		t.Fatalf("Commits = %d, want %d", s.Commits(), workers*perW)
	}
}

// TestBankInvariant: concurrent transfers between accounts must conserve
// the total, and concurrent audits must always see the full total (snapshot
// isolation of the read set).
func TestBankInvariant(t *testing.T) {
	const (
		accounts = 8
		initial  = 1000
		transfer = 3
		workers  = 4
		perW     = 300
	)
	s := New()
	acct := make([]*TVar[int], accounts)
	for i := range acct {
		acct[i] = NewTVar(initial)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			from, to := seed%accounts, (seed+1)%accounts
			for i := 0; i < perW; i++ {
				s.Atomic(func(tx *Tx) {
					f := acct[from].Get(tx)
					acct[from].Set(tx, f-transfer)
					acct[to].Set(tx, acct[to].Get(tx)+transfer)
				})
				from, to = (from+3)%accounts, (to+5)%accounts
			}
		}(w)
	}
	// A concurrent auditor: every transactional snapshot must add up to the
	// invariant total.
	auditErr := make(chan int, 1)
	stop := make(chan struct{})
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			total := 0
			s.Atomic(func(tx *Tx) {
				total = 0
				for _, a := range acct {
					total += a.Get(tx)
				}
			})
			if total != accounts*initial {
				auditErr <- total
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-auditDone
	select {
	case total := <-auditErr:
		t.Fatalf("audit saw inconsistent total %d, want %d", total, accounts*initial)
	default:
	}
	total := 0
	for _, a := range acct {
		total += a.Load()
	}
	if total != accounts*initial {
		t.Fatalf("final total = %d, want %d", total, accounts*initial)
	}
}

// TestConsistentPairs: two TVars always updated together must never be
// observed unequal inside a transaction.
func TestConsistentPairs(t *testing.T) {
	s := New()
	a := NewTVar(0)
	b := NewTVar(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 2000; i++ {
			s.Atomic(func(tx *Tx) {
				a.Set(tx, i)
				b.Set(tx, i)
			})
		}
		close(stop)
	}()
	for {
		select {
		case <-stop:
			wg.Wait()
			return
		default:
		}
		var av, bv int
		s.Atomic(func(tx *Tx) {
			av = a.Get(tx)
			bv = b.Get(tx)
		})
		if av != bv {
			t.Fatalf("torn read: a=%d b=%d", av, bv)
		}
	}
}

func TestAbortsAreCounted(t *testing.T) {
	const workers = 8
	s := New()
	x := NewTVar(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				s.Atomic(func(tx *Tx) {
					x.Set(tx, x.Get(tx)+1)
				})
			}
		}()
	}
	wg.Wait()
	// With 8 threads hammering one TVar some attempts must have aborted.
	// (Not guaranteed in theory, overwhelmingly likely in practice; treat
	// zero aborts as suspicious only alongside a wrong count.)
	if x.Load() != workers*300 {
		t.Fatalf("counter = %d, want %d", x.Load(), workers*300)
	}
	t.Logf("commits=%d aborts=%d", s.Commits(), s.Aborts())
}

func TestUserPanicPropagates(t *testing.T) {
	s := New()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	s.Atomic(func(tx *Tx) {
		panic("boom")
	})
}

func TestGenericTVarTypes(t *testing.T) {
	s := New()
	str := NewTVar("hello")
	pair := NewTVar([2]int{1, 2})
	s.Atomic(func(tx *Tx) {
		str.Set(tx, str.Get(tx)+" world")
		p := pair.Get(tx)
		p[1] = 9
		pair.Set(tx, p)
	})
	if got := str.Load(); got != "hello world" {
		t.Fatalf("str = %q", got)
	}
	if got := pair.Load(); got != [2]int{1, 9} {
		t.Fatalf("pair = %v", got)
	}
}

func TestReadOnlyTransactionCommits(t *testing.T) {
	s := New()
	x := NewTVar(5)
	sum := 0
	for i := 0; i < 10; i++ {
		s.Atomic(func(tx *Tx) {
			sum += x.Get(tx)
		})
	}
	// Note sum accumulation relies on each read-only attempt committing
	// first try in the absence of writers.
	if sum != 50 {
		t.Fatalf("sum = %d, want 50", sum)
	}
	if s.Aborts() != 0 {
		t.Fatalf("read-only transactions aborted %d times with no writers", s.Aborts())
	}
}
