package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"

	"amp/internal/core"
	"amp/internal/counting"
)

// TestCounterExact checks that concurrent increments are counted exactly,
// for both the single-cell baseline and the combining tree.
func TestCounterExact(t *testing.T) {
	const threads, perThread = 8, 2000
	backends := map[string]counting.Counter{
		"cas":       &counting.CASCounter{},
		"combining": counting.NewCombiningTree(threads),
	}
	for name, backend := range backends {
		t.Run(name, func(t *testing.T) {
			c := NewCounter(backend)
			var wg sync.WaitGroup
			for id := 0; id < threads; id++ {
				wg.Add(1)
				go func(me core.ThreadID) {
					defer wg.Done()
					for i := 0; i < perThread; i++ {
						c.Inc(me)
					}
				}(core.ThreadID(id))
			}
			wg.Wait()
			if got, want := c.Value(), int64(threads*perThread); got != want {
				t.Fatalf("Value() = %d, want %d", got, want)
			}
		})
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		us   int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 40, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.us); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.us, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	// 99 fast samples and one slow one.
	for i := 0; i < 99; i++ {
		h.Observe(10*time.Microsecond, 0)
	}
	h.Observe(5*time.Millisecond, 0)

	if got := h.Count(); got != 100 {
		t.Fatalf("Count() = %d, want 100", got)
	}
	if p50 := h.Quantile(0.50); p50 > 16*time.Microsecond {
		t.Errorf("p50 = %v, want <= 16µs", p50)
	}
	if p99 := h.Quantile(0.99); p99 > 16*time.Microsecond {
		t.Errorf("p99 = %v, want <= 16µs (99 of 100 samples are 10µs)", p99)
	}
	if p100 := h.Quantile(1.0); p100 < 4*time.Millisecond {
		t.Errorf("p100 = %v, want >= 4ms", p100)
	}
	if mean := h.Mean(); mean < 10*time.Microsecond || mean > time.Millisecond {
		t.Errorf("Mean() = %v, want within (10µs, 1ms)", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Errorf("empty histogram should report zeros, got count=%d mean=%v p99=%v",
			h.Count(), h.Mean(), h.Quantile(0.99))
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry(nil, "set.add", "set.contains")
	r.Op("set.add").Observe(time.Millisecond, 0)
	r.Op("set.add").Observe(time.Millisecond, 0)
	r.Op("set.contains").Observe(time.Microsecond, 0)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot() has %d rows, want 2", len(snap))
	}
	if snap[0].Name != "set.add" || snap[0].Count != 2 {
		t.Errorf("row 0 = %+v, want set.add count 2", snap[0])
	}
	if snap[1].Name != "set.contains" || snap[1].Count != 1 {
		t.Errorf("row 1 = %+v, want set.contains count 1", snap[1])
	}

	out := r.Format()
	if !strings.Contains(out, "op set.add count=2") {
		t.Errorf("Format() missing set.add line:\n%s", out)
	}

	defer func() {
		if recover() == nil {
			t.Error("Op on unregistered name should panic")
		}
	}()
	r.Op("nope")
}

// TestRegistryCombiningBackend exercises a registry whose every counter is
// a combining tree, concurrently, as the server uses it.
func TestRegistryCombiningBackend(t *testing.T) {
	const threads = 4
	r := NewRegistry(func() counting.Counter { return counting.NewCombiningTree(threads) }, "q.enq")
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Op("q.enq").Observe(time.Microsecond, me)
			}
		}(core.ThreadID(id))
	}
	wg.Wait()
	if got := r.Op("q.enq").Count(); got != 2000 {
		t.Fatalf("Count() = %d, want 2000", got)
	}
}
