package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"

	"amp/internal/core"
	"amp/internal/counting"
)

// TestCounterExact checks that concurrent increments are counted exactly,
// for both the single-cell baseline and the combining tree.
func TestCounterExact(t *testing.T) {
	const threads, perThread = 8, 2000
	backends := map[string]counting.Counter{
		"cas":       &counting.CASCounter{},
		"combining": counting.NewCombiningTree(threads),
	}
	for name, backend := range backends {
		t.Run(name, func(t *testing.T) {
			c := NewCounter(backend)
			var wg sync.WaitGroup
			for id := 0; id < threads; id++ {
				wg.Add(1)
				go func(me core.ThreadID) {
					defer wg.Done()
					for i := 0; i < perThread; i++ {
						c.Inc(me)
					}
				}(core.ThreadID(id))
			}
			wg.Wait()
			if got, want := c.Value(), int64(threads*perThread); got != want {
				t.Fatalf("Value() = %d, want %d", got, want)
			}
		})
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		us   int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 40, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.us); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.us, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	// 99 fast samples and one slow one.
	for i := 0; i < 99; i++ {
		h.Observe(10*time.Microsecond, 0)
	}
	h.Observe(5*time.Millisecond, 0)

	if got := h.Count(); got != 100 {
		t.Fatalf("Count() = %d, want 100", got)
	}
	if p50 := h.Quantile(0.50); p50 > 16*time.Microsecond {
		t.Errorf("p50 = %v, want <= 16µs", p50)
	}
	if p99 := h.Quantile(0.99); p99 > 16*time.Microsecond {
		t.Errorf("p99 = %v, want <= 16µs (99 of 100 samples are 10µs)", p99)
	}
	if p100 := h.Quantile(1.0); p100 < 4*time.Millisecond {
		t.Errorf("p100 = %v, want >= 4ms", p100)
	}
	if mean := h.Mean(); mean < 10*time.Microsecond || mean > time.Millisecond {
		t.Errorf("Mean() = %v, want within (10µs, 1ms)", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Errorf("empty histogram should report zeros, got count=%d mean=%v p99=%v",
			h.Count(), h.Mean(), h.Quantile(0.99))
	}
}

// TestSizeHistogramBuckets pins the log₂ bucket boundaries used for
// batch sizes: bucket i (i ≥ 1) holds [2^(i-1), 2^i), the last bucket
// absorbs everything larger.
func TestSizeHistogramBuckets(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{-5, 0}, {0, 0},
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{127, 7}, {128, 8},
		{1 << 15, 16}, {1<<16 - 1, 16},
		{1 << 16, sizeBuckets - 1}, {1 << 40, sizeBuckets - 1},
	}
	for _, c := range cases {
		if got := logBucket(c.n, sizeBuckets); got != c.want {
			t.Errorf("logBucket(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSizeHistogramStats(t *testing.T) {
	h := NewSizeHistogram(nil)
	// 90 singleton batches and 10 large combined ones.
	for i := 0; i < 90; i++ {
		h.Observe(1, 0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100, 0)
	}

	if got := h.Count(); got != 100 {
		t.Fatalf("Count() = %d, want 100", got)
	}
	if got := h.Sum(); got != 90+10*100 {
		t.Fatalf("Sum() = %d, want %d", got, 90+10*100)
	}
	if mean := h.Mean(); mean != 10.9 {
		t.Errorf("Mean() = %v, want 10.9", mean)
	}
	// p50 lands in the size-1 bucket (upper bound 2^1−1 = 1); p99 in the
	// bucket of 100, [64, 128), upper bound 127.
	if p50 := h.Quantile(0.50); p50 != 1 {
		t.Errorf("p50 = %d, want 1", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 127 {
		t.Errorf("p99 = %d, want 127", p99)
	}
}

func TestSizeHistogramEmpty(t *testing.T) {
	h := NewSizeHistogram(nil)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Errorf("empty size histogram should report zeros, got count=%d sum=%d mean=%v p99=%d",
			h.Count(), h.Sum(), h.Mean(), h.Quantile(0.99))
	}
}

// TestSizeHistogramConcurrent observes sizes from many threads over a
// combining-tree backend, as the server's shards do; counts and sum must
// come out exact after quiescence.
func TestSizeHistogramConcurrent(t *testing.T) {
	const threads, perThread = 8, 1000
	h := NewSizeHistogram(func() counting.Counter { return counting.NewCombiningTree(threads) })
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				h.Observe(int64(i%8+1), me)
			}
		}(core.ThreadID(id))
	}
	wg.Wait()

	if got, want := h.Count(), int64(threads*perThread); got != want {
		t.Fatalf("Count() = %d, want %d", got, want)
	}
	// Each thread observes 1..8 cyclically: 125 full cycles of sum 36.
	if got, want := h.Sum(), int64(threads*(perThread/8)*36); got != want {
		t.Fatalf("Sum() = %d, want %d", got, want)
	}
}

// TestSizeHistogramFormat pins the STATS rendering of the batch-size
// line.
func TestSizeHistogramFormat(t *testing.T) {
	h := NewSizeHistogram(nil)
	for i := 0; i < 4; i++ {
		h.Observe(8, 0)
	}
	got := h.Format("shard.batch")
	want := "hist shard.batch count=4 sum=32 mean=8.0 p50=15 p99=15\n"
	if got != want {
		t.Errorf("Format() = %q, want %q", got, want)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry(nil, "set.add", "set.contains")
	r.Op("set.add").Observe(time.Millisecond, 0)
	r.Op("set.add").Observe(time.Millisecond, 0)
	r.Op("set.contains").Observe(time.Microsecond, 0)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot() has %d rows, want 2", len(snap))
	}
	if snap[0].Name != "set.add" || snap[0].Count != 2 {
		t.Errorf("row 0 = %+v, want set.add count 2", snap[0])
	}
	if snap[1].Name != "set.contains" || snap[1].Count != 1 {
		t.Errorf("row 1 = %+v, want set.contains count 1", snap[1])
	}

	out := r.Format()
	if !strings.Contains(out, "op set.add count=2") {
		t.Errorf("Format() missing set.add line:\n%s", out)
	}

	defer func() {
		if recover() == nil {
			t.Error("Op on unregistered name should panic")
		}
	}()
	r.Op("nope")
}

// TestRegistryCombiningBackend exercises a registry whose every counter is
// a combining tree, concurrently, as the server uses it.
func TestRegistryCombiningBackend(t *testing.T) {
	const threads = 4
	r := NewRegistry(func() counting.Counter { return counting.NewCombiningTree(threads) }, "q.enq")
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Op("q.enq").Observe(time.Microsecond, me)
			}
		}(core.ThreadID(id))
	}
	wg.Wait()
	if got := r.Op("q.enq").Count(); got != 2000 {
		t.Fatalf("Count() = %d, want 2000", got)
	}
}

// TestExternals checks the closure-backed counters format and snapshot
// like registry ops.
func TestExternals(t *testing.T) {
	var commits, aborts int64 = 7, 2
	e := Externals{
		{Name: "txn.commit", Read: func() int64 { return commits }},
		{Name: "txn.abort", Read: func() int64 { return aborts }},
	}
	snap := e.Snapshot()
	if len(snap) != 2 || snap[0].Name != "txn.commit" || snap[0].Count != 7 ||
		snap[1].Name != "txn.abort" || snap[1].Count != 2 {
		t.Fatalf("Snapshot() = %+v", snap)
	}
	out := e.Format()
	if !strings.Contains(out, "op txn.commit count=7\n") ||
		!strings.Contains(out, "op txn.abort count=2\n") {
		t.Fatalf("Format():\n%s", out)
	}
	commits = 8
	if e.Snapshot()[0].Count != 8 {
		t.Fatal("Snapshot not reading through the closure")
	}
}
