// Package metrics provides the observability layer of the ampserved data
// plane: monotone event counters and latency histograms built on the
// Chapter 12 shared counters from package counting, instead of a plain
// atomic per metric.
//
// A metrics.Counter wraps any counting.Counter ticket dispenser: every Inc
// takes one ticket, so after quiescence the highest ticket+1 is exactly the
// number of events. This lets the server dogfood the combining tree or a
// counting network as its own instrumentation, with the single-cell
// CASCounter as the default. Histograms are arrays of such counters over
// power-of-two buckets: Histogram buckets latencies, SizeHistogram
// buckets integer sizes (the server's combined-batch sizes).
//
// Like the combining tree itself, counters are driven by a bounded set of
// threads: Inc and Observe take the caller's core.ThreadID (the server
// passes the owning shard's ID).
package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"

	"amp/internal/core"
	"amp/internal/counting"
)

// Counter counts events on top of a counting.Counter ticket dispenser.
type Counter struct {
	c  counting.Counter
	hi atomic.Int64 // highest ticket observed + 1 == events counted
}

// NewCounter wraps the given ticket dispenser; nil means a fresh
// CASCounter.
func NewCounter(c counting.Counter) *Counter {
	if c == nil {
		c = &counting.CASCounter{}
	}
	return &Counter{c: c}
}

// Inc records one event on behalf of thread me. The thread ID must be
// below the underlying counter's Capacity (relevant to the combining
// tree; single-cell and network counters ignore it).
func (m *Counter) Inc(me core.ThreadID) {
	n := m.c.GetAndIncrement(me) + 1
	for {
		cur := m.hi.Load()
		if n <= cur || m.hi.CompareAndSwap(cur, n) {
			return
		}
	}
}

// bulkTickets is the optional fast path for IncN: single-cell counters
// (counting.CASCounter) can hand out n consecutive tickets with one
// fetch-and-add. Backends without it — the combining tree and the
// counting networks, whose gap-free guarantee is per-ticket — fall back
// to n single tickets, preserving their semantics exactly.
type bulkTickets interface {
	GetAndAdd(me core.ThreadID, n int64) int64
}

// IncN records n events on behalf of thread me in one call. Equivalent
// to n calls of Inc but, on bulk-capable backends, with one ticket
// fetch and one high-water fold instead of n of each — the server uses
// it to coalesce runs of identical commands inside a combined batch.
func (m *Counter) IncN(me core.ThreadID, n int64) {
	if n <= 0 {
		return
	}
	var hi int64
	if bc, ok := m.c.(bulkTickets); ok {
		hi = bc.GetAndAdd(me, n) + n
	} else {
		for i := int64(0); i < n; i++ {
			hi = m.c.GetAndIncrement(me) + 1
		}
	}
	for {
		cur := m.hi.Load()
		if hi <= cur || m.hi.CompareAndSwap(cur, hi) {
			return
		}
	}
}

// Value reports the number of events counted so far. While increments are
// in flight the value may lag by the tickets not yet folded in; after
// quiescence it is exact.
func (m *Counter) Value() int64 { return m.hi.Load() }

// histBuckets spans 1µs to ~2^24µs (≈ 16.8s); slower observations land in
// the last bucket.
const histBuckets = 25

// Histogram is a log₂-bucketed latency histogram. Bucket i counts
// observations in [2^(i-1), 2^i) microseconds (bucket 0: below 1µs).
type Histogram struct {
	buckets [histBuckets]*Counter
	sumNS   atomic.Int64
}

// NewHistogram builds a histogram whose buckets are produced by factory
// (nil means CASCounter buckets).
func NewHistogram(factory func() counting.Counter) *Histogram {
	h := &Histogram{}
	for i := range h.buckets {
		var c counting.Counter
		if factory != nil {
			c = factory()
		}
		h.buckets[i] = NewCounter(c)
	}
	return h
}

// bucketOf maps a microsecond latency to its bucket index.
func bucketOf(us int64) int { return logBucket(us, histBuckets) }

// logBucket maps a value to its log₂ bucket among n buckets: bucket 0
// holds values ≤ 0, bucket i (i ≥ 1) holds [2^(i-1), 2^i), and the last
// bucket absorbs everything larger.
func logBucket(v int64, n int) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // 1 → 1, 2..3 → 2, 4..7 → 3, ...
	if b >= n {
		return n - 1
	}
	return b
}

// Observe records one latency sample on behalf of thread me.
func (h *Histogram) Observe(d time.Duration, me core.ThreadID) {
	h.sumNS.Add(int64(d))
	h.buckets[bucketOf(d.Microseconds())].Inc(me)
}

// ObserveN records n samples of the same latency d in one call: one sum
// add and one bulk bucket increment. The server's shard loop reads the
// clock once per run of identical commands and charges the whole run
// with ObserveN, which is what makes the amortized clock free.
func (h *Histogram) ObserveN(d time.Duration, n int64, me core.ThreadID) {
	if n <= 0 {
		return
	}
	h.sumNS.Add(int64(d) * n)
	h.buckets[bucketOf(d.Microseconds())].IncN(me, n)
}

// Count reports the number of samples observed.
func (h *Histogram) Count() int64 {
	var n int64
	for _, b := range h.buckets {
		n += b.Value()
	}
	return n
}

// Mean reports the average observed latency (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Quantile reports an upper bound for the q-quantile (0 < q ≤ 1): the
// upper edge of the bucket holding the q·count-th sample. Resolution is a
// factor of two, which is all a capacity dashboard needs.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, b := range h.buckets {
		seen += b.Value()
		if seen >= rank {
			return time.Duration(int64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<uint(histBuckets)) * time.Microsecond
}

// sizeBuckets spans sizes 1 to 2^16; larger sizes land in the last
// bucket.
const sizeBuckets = 17

// SizeHistogram is a log₂-bucketed histogram of positive integer sizes.
// The server records one sample per shard wakeup: how many commands the
// flat-combining pass applied in that run, which makes the realized
// batching visible in STATS. Bucket 0 holds sizes ≤ 0 (unused in
// practice), bucket i holds sizes in [2^(i-1), 2^i).
//
// Like Histogram, the buckets are Counters over a pluggable
// counting.Counter backend and recording takes the caller's ThreadID.
type SizeHistogram struct {
	buckets [sizeBuckets]*Counter
	sum     atomic.Int64
}

// NewSizeHistogram builds a size histogram whose buckets are produced by
// factory (nil means CASCounter buckets).
func NewSizeHistogram(factory func() counting.Counter) *SizeHistogram {
	h := &SizeHistogram{}
	for i := range h.buckets {
		var c counting.Counter
		if factory != nil {
			c = factory()
		}
		h.buckets[i] = NewCounter(c)
	}
	return h
}

// Observe records one size sample on behalf of thread me.
func (h *SizeHistogram) Observe(n int64, me core.ThreadID) {
	h.sum.Add(n)
	h.buckets[logBucket(n, sizeBuckets)].Inc(me)
}

// Count reports the number of samples observed.
func (h *SizeHistogram) Count() int64 {
	var n int64
	for _, b := range h.buckets {
		n += b.Value()
	}
	return n
}

// Sum reports the total of all observed sizes.
func (h *SizeHistogram) Sum() int64 { return h.sum.Load() }

// Mean reports the average observed size (0 when empty).
func (h *SizeHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile reports an upper bound for the q-quantile (0 < q ≤ 1): the
// largest size in the bucket holding the q·count-th sample (2^i − 1 for
// bucket i). Resolution is a factor of two.
func (h *SizeHistogram) Quantile(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, b := range h.buckets {
		seen += b.Value()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return int64(1)<<uint(i) - 1
		}
	}
	return int64(1)<<uint(sizeBuckets) - 1
}

// Format renders the histogram as one "hist <name> count=… sum=… mean=…
// p50=… p99=…" line, in the style of Registry.Format's op lines.
func (h *SizeHistogram) Format(name string) string {
	return fmt.Sprintf("hist %s count=%d sum=%d mean=%.1f p50=%d p99=%d\n",
		name, h.Count(), h.Sum(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
}

// Op bundles the two per-operation instruments.
type Op struct {
	name    string
	count   *Counter
	latency *Histogram
}

// Observe records one completed operation with its latency.
func (o *Op) Observe(d time.Duration, me core.ThreadID) {
	o.count.Inc(me)
	o.latency.Observe(d, me)
}

// ObserveN records n completed operations sharing one latency sample.
func (o *Op) ObserveN(d time.Duration, n int64, me core.ThreadID) {
	if n <= 0 {
		return
	}
	o.count.IncN(me, n)
	o.latency.ObserveN(d, n, me)
}

// Count reports how many operations completed.
func (o *Op) Count() int64 { return o.count.Value() }

// OpStats is one row of a Registry snapshot.
type OpStats struct {
	Name  string
	Count int64
	P50   time.Duration
	P99   time.Duration
	Mean  time.Duration
}

// Registry is a fixed set of named operations. The op set is declared at
// construction so the hot path is a read-only map lookup with no locking.
type Registry struct {
	names []string
	ops   map[string]*Op
}

// NewRegistry builds a registry with one Op per name. factory produces the
// counting backend for every counter in the registry (nil = CASCounter).
func NewRegistry(factory func() counting.Counter, names ...string) *Registry {
	r := &Registry{ops: make(map[string]*Op, len(names))}
	for _, name := range names {
		if _, dup := r.ops[name]; dup {
			panic(fmt.Sprintf("metrics: duplicate op %q", name))
		}
		var c counting.Counter
		if factory != nil {
			c = factory()
		}
		r.ops[name] = &Op{name: name, count: NewCounter(c), latency: NewHistogram(factory)}
		r.names = append(r.names, name)
	}
	return r
}

// Op returns the instrument for a registered name, panicking on unknown
// names (registration is fixed at construction by design).
func (r *Registry) Op(name string) *Op {
	op, ok := r.ops[name]
	if !ok {
		panic(fmt.Sprintf("metrics: unregistered op %q", name))
	}
	return op
}

// Snapshot returns per-op statistics in registration order.
func (r *Registry) Snapshot() []OpStats {
	out := make([]OpStats, 0, len(r.names))
	for _, name := range r.names {
		op := r.ops[name]
		out = append(out, OpStats{
			Name:  name,
			Count: op.Count(),
			P50:   op.latency.Quantile(0.50),
			P99:   op.latency.Quantile(0.99),
			Mean:  op.latency.Mean(),
		})
	}
	return out
}

// Format renders the snapshot as one "op <name> count=… p50us=… p99us=…
// meanus=…" line per op — the body of the server's STATS reply.
func (r *Registry) Format() string {
	var sb strings.Builder
	for _, s := range r.Snapshot() {
		fmt.Fprintf(&sb, "op %s count=%d p50us=%d p99us=%d meanus=%d\n",
			s.Name, s.Count, s.P50.Microseconds(), s.P99.Microseconds(), s.Mean.Microseconds())
	}
	return sb.String()
}

// FlatCounter is a single shared atomic counter for code paths with no
// dense ThreadID — e.g. the server's connection goroutines, whose
// population is unbounded and whose concurrent same-ID increments the
// width-bounded Counter backends forbid. It trades the dispensers'
// contention spreading for unconditional safety from any goroutine.
type FlatCounter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *FlatCounter) Inc() { c.v.Add(1) }

// Value reads the current total.
func (c *FlatCounter) Value() int64 { return c.v.Load() }

// External adapts the counter to an Externals row under the given name.
func (c *FlatCounter) External(name string) External {
	return External{Name: name, Read: c.Value}
}

// External is a named monotone counter whose value lives in another
// subsystem and is read through a closure — for statistics the owner
// already counts (the STM engines' commit/abort totals) and for code
// paths, like the server's connection goroutines, that have no dense
// ThreadID and therefore cannot drive the width-bounded Counter backends.
type External struct {
	Name string
	Read func() int64
}

// Externals is an ordered set of external counters.
type Externals []External

// Snapshot returns count-only OpStats rows, in order.
func (e Externals) Snapshot() []OpStats {
	out := make([]OpStats, 0, len(e))
	for _, x := range e {
		out = append(out, OpStats{Name: x.Name, Count: x.Read()})
	}
	return out
}

// Format renders the counters as "op <name> count=…" lines, matching
// Registry.Format so STATS consumers parse both the same way.
func (e Externals) Format() string {
	var sb strings.Builder
	for _, x := range e {
		fmt.Fprintf(&sb, "op %s count=%d\n", x.Name, x.Read())
	}
	return sb.String()
}
