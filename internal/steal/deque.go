// Package steal implements the Chapter 16 work-distribution machinery: the
// bounded work-stealing deque of Arora, Blumofe and Plaxton (Fig.
// 16.10–16.12), the unbounded cyclic-array deque (Fig. 16.13–16.15, the
// Chase–Lev design), and executors that schedule fork/join task graphs by
// work stealing, work sharing, or a single shared queue (the baselines of
// experiment E10).
package steal

import (
	"fmt"
	"sync/atomic"
)

// DEQueue is a double-ended work queue: the owner pushes and pops at the
// bottom; thieves pop at the top. Only the owner may call PushBottom and
// PopBottom.
type DEQueue[T any] interface {
	PushBottom(x T)
	PopBottom() (T, bool)
	PopTop() (T, bool)
}

// BoundedDEQueue is the ABP deque: a fixed array, a bottom index touched
// only by the owner, and a (top, stamp) pair CASed by thieves. The stamp
// defeats the ABA problem when the owner resets top to zero.
type BoundedDEQueue[T any] struct {
	tasks  []atomic.Pointer[T]
	bottom atomic.Int64
	top    atomic.Uint64 // stamp<<32 | index
}

var _ DEQueue[int] = (*BoundedDEQueue[int])(nil)

// NewBoundedDEQueue returns a deque holding at most capacity tasks.
func NewBoundedDEQueue[T any](capacity int) *BoundedDEQueue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("steal: deque capacity must be positive, got %d", capacity))
	}
	return &BoundedDEQueue[T]{tasks: make([]atomic.Pointer[T], capacity)}
}

func packTop(index, stamp uint32) uint64 { return uint64(stamp)<<32 | uint64(index) }
func unpackTop(v uint64) (index, stamp uint32) {
	return uint32(v), uint32(v >> 32)
}

// PushBottom adds a task at the bottom (owner only). It panics when the
// deque is full.
func (q *BoundedDEQueue[T]) PushBottom(x T) {
	b := q.bottom.Load()
	if int(b) >= len(q.tasks) {
		panic("steal: bounded deque overflow")
	}
	q.tasks[b].Store(&x)
	q.bottom.Store(b + 1)
}

// PopTop steals the task at the top. A failed CAS means a concurrent thief
// or the owner won; the thief simply reports empty-handed.
func (q *BoundedDEQueue[T]) PopTop() (T, bool) {
	var zero T
	old := q.top.Load()
	oldTop, oldStamp := unpackTop(old)
	if q.bottom.Load() <= int64(oldTop) {
		return zero, false
	}
	r := q.tasks[oldTop].Load()
	if q.top.CompareAndSwap(old, packTop(oldTop+1, oldStamp+1)) {
		return *r, true
	}
	return zero, false
}

// PopBottom takes the newest task (owner only). When the deque holds one
// task, the owner races thieves with a CAS on top; either way it resets the
// indices so the array is reused from zero.
func (q *BoundedDEQueue[T]) PopBottom() (T, bool) {
	var zero T
	b := q.bottom.Load()
	if b == 0 {
		return zero, false
	}
	b--
	q.bottom.Store(b)
	r := q.tasks[b].Load()
	old := q.top.Load()
	oldTop, oldStamp := unpackTop(old)
	if b > int64(oldTop) {
		return *r, true
	}
	if b == int64(oldTop) {
		// One task left: duel the thieves.
		q.bottom.Store(0)
		if q.top.CompareAndSwap(old, packTop(0, oldStamp+1)) {
			return *r, true
		}
	}
	// A thief got the last task; reset. bottom must be published first:
	// resetting top to zero while bottom still holds the decremented
	// index would let a thief past the emptiness check and hand it the
	// already-taken task in tasks[0].
	q.bottom.Store(0)
	q.top.Store(packTop(0, oldStamp+1))
	return zero, false
}

// Size reports bottom-top; owner-accurate, approximate for others.
func (q *BoundedDEQueue[T]) Size() int {
	top, _ := unpackTop(q.top.Load())
	n := int(q.bottom.Load()) - int(top)
	if n < 0 {
		return 0
	}
	return n
}

// circularArray is the growable power-of-two ring of the unbounded deque.
type circularArray[T any] struct {
	logCap int
	tasks  []atomic.Pointer[T]
}

func newCircularArray[T any](logCap int) *circularArray[T] {
	return &circularArray[T]{logCap: logCap, tasks: make([]atomic.Pointer[T], 1<<logCap)}
}

func (a *circularArray[T]) capacity() int64   { return 1 << a.logCap }
func (a *circularArray[T]) get(i int64) *T    { return a.tasks[i&(a.capacity()-1)].Load() }
func (a *circularArray[T]) put(i int64, x *T) { a.tasks[i&(a.capacity()-1)].Store(x) }

// resize returns a ring of twice the capacity holding [top, bottom).
func (a *circularArray[T]) resize(bottom, top int64) *circularArray[T] {
	next := newCircularArray[T](a.logCap + 1)
	for i := top; i < bottom; i++ {
		next.put(i, a.get(i))
	}
	return next
}

// UnboundedDEQueue is the cyclic-array deque of Fig. 16.13: top only ever
// increases, so no stamp is needed, and the owner grows the ring when full.
type UnboundedDEQueue[T any] struct {
	tasks  atomic.Pointer[circularArray[T]]
	bottom atomic.Int64
	top    atomic.Int64
}

var _ DEQueue[int] = (*UnboundedDEQueue[int])(nil)

// initialLogCapacity is the starting ring size (2^4 slots).
const initialLogCapacity = 4

// NewUnboundedDEQueue returns an empty deque.
func NewUnboundedDEQueue[T any]() *UnboundedDEQueue[T] {
	q := &UnboundedDEQueue[T]{}
	q.tasks.Store(newCircularArray[T](initialLogCapacity))
	return q
}

// PushBottom adds a task at the bottom (owner only), growing the ring when
// fewer than two slots remain.
func (q *UnboundedDEQueue[T]) PushBottom(x T) {
	oldBottom := q.bottom.Load()
	oldTop := q.top.Load()
	current := q.tasks.Load()
	if oldBottom-oldTop >= current.capacity()-1 {
		current = current.resize(oldBottom, oldTop)
		q.tasks.Store(current)
	}
	current.put(oldBottom, &x)
	q.bottom.Store(oldBottom + 1)
}

// PopTop steals the oldest task.
func (q *UnboundedDEQueue[T]) PopTop() (T, bool) {
	var zero T
	oldTop := q.top.Load()
	oldBottom := q.bottom.Load()
	current := q.tasks.Load()
	if oldBottom-oldTop <= 0 {
		return zero, false
	}
	r := current.get(oldTop)
	if q.top.CompareAndSwap(oldTop, oldTop+1) {
		return *r, true
	}
	return zero, false
}

// PopBottom takes the newest task (owner only).
func (q *UnboundedDEQueue[T]) PopBottom() (T, bool) {
	var zero T
	b := q.bottom.Load() - 1
	q.bottom.Store(b)
	oldTop := q.top.Load()
	size := b - oldTop
	if size < 0 {
		q.bottom.Store(oldTop)
		return zero, false
	}
	r := q.tasks.Load().get(b)
	if size > 0 {
		return *r, true
	}
	// Last task: duel the thieves for it, then normalize indices.
	won := q.top.CompareAndSwap(oldTop, oldTop+1)
	q.bottom.Store(oldTop + 1)
	if won {
		return *r, true
	}
	return zero, false
}

// Size reports bottom-top; owner-accurate, approximate for others.
func (q *UnboundedDEQueue[T]) Size() int {
	n := q.bottom.Load() - q.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
