package steal

import (
	"sync"
	"sync/atomic"
	"testing"
)

func dequeues() map[string]func() DEQueue[int] {
	return map[string]func() DEQueue[int]{
		"bounded":   func() DEQueue[int] { return NewBoundedDEQueue[int](1 << 12) },
		"unbounded": func() DEQueue[int] { return NewUnboundedDEQueue[int]() },
	}
}

func TestDequeOwnerLIFO(t *testing.T) {
	for name, mk := range dequeues() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			if _, ok := q.PopBottom(); ok {
				t.Fatal("PopBottom on empty deque reported ok")
			}
			for i := 0; i < 100; i++ {
				q.PushBottom(i)
			}
			for i := 99; i >= 0; i-- {
				v, ok := q.PopBottom()
				if !ok || v != i {
					t.Fatalf("PopBottom = (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if _, ok := q.PopBottom(); ok {
				t.Fatal("PopBottom on drained deque reported ok")
			}
		})
	}
}

func TestDequeThiefFIFO(t *testing.T) {
	for name, mk := range dequeues() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			for i := 0; i < 50; i++ {
				q.PushBottom(i)
			}
			for i := 0; i < 50; i++ {
				v, ok := q.PopTop()
				if !ok || v != i {
					t.Fatalf("PopTop = (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if _, ok := q.PopTop(); ok {
				t.Fatal("PopTop on drained deque reported ok")
			}
		})
	}
}

func TestDequeReuseAfterReset(t *testing.T) {
	// The bounded deque resets indices to zero when emptied; it must be
	// fully reusable afterwards.
	q := NewBoundedDEQueue[int](8)
	for round := 0; round < 10; round++ {
		for i := 0; i < 6; i++ {
			q.PushBottom(i)
		}
		for i := 5; i >= 0; i-- {
			if v, ok := q.PopBottom(); !ok || v != i {
				t.Fatalf("round %d: PopBottom = (%d,%v), want (%d,true)", round, v, ok, i)
			}
		}
	}
}

func TestBoundedDequeOverflowPanics(t *testing.T) {
	q := NewBoundedDEQueue[int](2)
	q.PushBottom(1)
	q.PushBottom(2)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	q.PushBottom(3)
}

func TestUnboundedDequeGrows(t *testing.T) {
	q := NewUnboundedDEQueue[int]()
	const n = 10_000 // far beyond the initial ring
	for i := 0; i < n; i++ {
		q.PushBottom(i)
	}
	if got := q.Size(); got != n {
		t.Fatalf("Size = %d, want %d", got, n)
	}
	for i := n - 1; i >= 0; i-- {
		if v, ok := q.PopBottom(); !ok || v != i {
			t.Fatalf("PopBottom = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

// TestDequeOwnerVsThieves: one owner pushes/pops while thieves steal;
// every task is executed exactly once.
func TestDequeOwnerVsThieves(t *testing.T) {
	const (
		thieves = 3
		total   = 20_000
	)
	// The ABP deque's bottom index rewinds only when the deque empties, so
	// its array must cover the whole push stream.
	for name, mk := range map[string]func() DEQueue[int]{
		"bounded":   func() DEQueue[int] { return NewBoundedDEQueue[int](total) },
		"unbounded": func() DEQueue[int] { return NewUnboundedDEQueue[int]() },
	} {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var (
				taken [total]atomic.Int32
				done  atomic.Bool
				wg    sync.WaitGroup
			)
			for th := 0; th < thieves; th++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !done.Load() {
						if v, ok := q.PopTop(); ok {
							taken[v].Add(1)
						}
					}
					// Final sweep after the owner stops.
					for {
						v, ok := q.PopTop()
						if !ok {
							return
						}
						taken[v].Add(1)
					}
				}()
			}
			// Owner: push everything, popping occasionally.
			for i := 0; i < total; i++ {
				q.PushBottom(i)
				if i%3 == 0 {
					if v, ok := q.PopBottom(); ok {
						taken[v].Add(1)
					}
				}
			}
			for {
				v, ok := q.PopBottom()
				if !ok {
					break
				}
				taken[v].Add(1)
			}
			done.Store(true)
			wg.Wait()
			// One more owner sweep in case thieves raced the flag.
			for {
				v, ok := q.PopTop()
				if !ok {
					break
				}
				taken[v].Add(1)
			}
			for i := range taken {
				if got := taken[i].Load(); got != 1 {
					t.Fatalf("task %d executed %d times", i, got)
				}
			}
		})
	}
}

func executors(workers int) map[string]Executor {
	return map[string]Executor{
		"stealing": NewStealingExecutor(workers),
		"sharing":  NewSharingExecutor(workers),
		"single":   NewSingleQueueExecutor(workers),
	}
}

// countdownTask builds a binary task tree of the given depth; every leaf
// increments the counter. 2^depth leaves must be counted exactly.
func countdownTask(depth int, leaves *atomic.Int64) Task {
	return func(s Spawner) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		s.Spawn(countdownTask(depth-1, leaves))
		s.Spawn(countdownTask(depth-1, leaves))
	}
}

func TestExecutorsRunTaskTree(t *testing.T) {
	const depth = 10
	for name, ex := range executors(4) {
		t.Run(name, func(t *testing.T) {
			var leaves atomic.Int64
			ex.Run(countdownTask(depth, &leaves))
			if got, want := leaves.Load(), int64(1<<depth); got != want {
				t.Fatalf("executed %d leaves, want %d", got, want)
			}
		})
	}
}

func TestExecutorsSingleWorker(t *testing.T) {
	for name, ex := range executors(1) {
		t.Run(name, func(t *testing.T) {
			var leaves atomic.Int64
			ex.Run(countdownTask(6, &leaves))
			if got := leaves.Load(); got != 64 {
				t.Fatalf("executed %d leaves, want 64", got)
			}
		})
	}
}

func TestExecutorsIrregularTree(t *testing.T) {
	// A lopsided tree: left spines spawn heavy subtrees, stressing stealing.
	var build func(n int, total *atomic.Int64) Task
	build = func(n int, total *atomic.Int64) Task {
		return func(s Spawner) {
			total.Add(1)
			for i := 0; i < n; i++ {
				s.Spawn(build(i, total))
			}
		}
	}
	// T(n) = 1 + sum T(i) for i<n; T(0)=1 → T(n) = 2^n.
	for name, ex := range executors(3) {
		t.Run(name, func(t *testing.T) {
			var total atomic.Int64
			ex.Run(build(12, &total))
			if got, want := total.Load(), int64(1<<12); got != want {
				t.Fatalf("executed %d tasks, want %d", got, want)
			}
		})
	}
}

func TestExecutorWorkers(t *testing.T) {
	if got := NewStealingExecutor(5).Workers(); got != 5 {
		t.Fatalf("Workers = %d, want 5", got)
	}
}

func TestExecutorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewStealingExecutor(0) },
		func() { NewSharingExecutor(0) },
		func() { NewSingleQueueExecutor(0) },
		func() { NewBoundedDEQueue[int](0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPackUnpackTop(t *testing.T) {
	for _, tt := range []struct{ index, stamp uint32 }{
		{0, 0}, {1, 0}, {0, 1}, {12345, 67890}, {1<<32 - 1, 1<<32 - 1},
	} {
		i, s := unpackTop(packTop(tt.index, tt.stamp))
		if i != tt.index || s != tt.stamp {
			t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", tt.index, tt.stamp, i, s)
		}
	}
}
