package steal

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"amp/internal/queue"
)

// Spawner lets a running task fork further tasks into its executor.
type Spawner interface {
	Spawn(t Task)
}

// Task is a unit of work in a fork/join graph; it receives a Spawner bound
// to the worker executing it.
type Task func(s Spawner)

// Executor runs a task graph to quiescence.
type Executor interface {
	// Run executes root and everything it transitively spawns, returning
	// when no work remains.
	Run(root Task)
	// Workers reports the parallelism.
	Workers() int
}

// StealingExecutor distributes tasks over per-worker unbounded deques with
// random stealing (Fig. 16.1/16.5): owners work off their own bottom;
// idle workers steal from a random victim's top.
type StealingExecutor struct {
	workers int
}

var _ Executor = (*StealingExecutor)(nil)

// NewStealingExecutor returns an executor with the given worker count.
func NewStealingExecutor(workers int) *StealingExecutor {
	if workers <= 0 {
		panic(fmt.Sprintf("steal: worker count must be positive, got %d", workers))
	}
	return &StealingExecutor{workers: workers}
}

// Workers reports the parallelism.
func (e *StealingExecutor) Workers() int { return e.workers }

// stealWorker is one worker's view of a stealing run.
type stealWorker struct {
	id    int
	deque *UnboundedDEQueue[Task]
	run   *stealRun
	rng   *rand.Rand
}

type stealRun struct {
	deques  []*UnboundedDEQueue[Task]
	pending atomic.Int64
}

// Spawn forks a task onto this worker's own deque.
func (w *stealWorker) Spawn(t Task) {
	w.run.pending.Add(1)
	w.deque.PushBottom(t)
}

// Run executes the graph: each worker drains its own deque and steals from
// random victims when empty, exiting when the global pending count reaches
// zero.
func (e *StealingExecutor) Run(root Task) {
	run := &stealRun{deques: make([]*UnboundedDEQueue[Task], e.workers)}
	for i := range run.deques {
		run.deques[i] = NewUnboundedDEQueue[Task]()
	}
	run.pending.Store(1)
	run.deques[0].PushBottom(root)

	var wg sync.WaitGroup
	for i := 0; i < e.workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &stealWorker{
				id:    id,
				deque: run.deques[id],
				run:   run,
				rng:   rand.New(rand.NewSource(int64(id) + 1)),
			}
			for {
				task, ok := w.deque.PopBottom()
				if !ok {
					if run.pending.Load() == 0 {
						return
					}
					victim := w.rng.Intn(len(run.deques))
					task, ok = run.deques[victim].PopTop()
					if !ok {
						runtime.Gosched()
						continue
					}
				}
				task(w)
				run.pending.Add(-1)
			}
		}(i)
	}
	wg.Wait()
}

// SharingExecutor distributes tasks by rebalancing (Fig. 16.4): each worker
// has a locked queue and, after each task, balances its queue against a
// random partner's with probability inverse to its size.
type SharingExecutor struct {
	workers int
}

var _ Executor = (*SharingExecutor)(nil)

// NewSharingExecutor returns a work-sharing executor.
func NewSharingExecutor(workers int) *SharingExecutor {
	if workers <= 0 {
		panic(fmt.Sprintf("steal: worker count must be positive, got %d", workers))
	}
	return &SharingExecutor{workers: workers}
}

// Workers reports the parallelism.
func (e *SharingExecutor) Workers() int { return e.workers }

// sharedQueue is a locked slice used as a LIFO task queue.
type sharedQueue struct {
	mu    sync.Mutex
	tasks []Task
}

func (q *sharedQueue) push(t Task) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
}

func (q *sharedQueue) pop() (Task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return nil, false
	}
	t := q.tasks[len(q.tasks)-1]
	q.tasks = q.tasks[:len(q.tasks)-1]
	return t, true
}

func (q *sharedQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks)
}

type shareWorker struct {
	id    int
	queue *sharedQueue
	run   *shareRun
}

type shareRun struct {
	queues  []*sharedQueue
	pending atomic.Int64
}

// Spawn forks a task onto this worker's queue.
func (w *shareWorker) Spawn(t Task) {
	w.run.pending.Add(1)
	w.queue.push(t)
}

// balance evens out two queues (the book's WorkSharingThread balancing
// act). Callers must pass the queues in a canonical order (here: worker
// index order) so concurrent balancers cannot deadlock.
func balance(first, second *sharedQueue) {
	if first == second {
		return
	}
	first.mu.Lock()
	second.mu.Lock()
	defer first.mu.Unlock()
	defer second.mu.Unlock()
	total := len(first.tasks) + len(second.tasks)
	half := total / 2
	for len(first.tasks) > half {
		t := first.tasks[len(first.tasks)-1]
		first.tasks = first.tasks[:len(first.tasks)-1]
		second.tasks = append(second.tasks, t)
	}
	for len(second.tasks) > total-half {
		t := second.tasks[len(second.tasks)-1]
		second.tasks = second.tasks[:len(second.tasks)-1]
		first.tasks = append(first.tasks, t)
	}
}

// Run executes the graph with rebalancing.
func (e *SharingExecutor) Run(root Task) {
	run := &shareRun{queues: make([]*sharedQueue, e.workers)}
	for i := range run.queues {
		run.queues[i] = &sharedQueue{}
	}
	run.pending.Store(1)
	run.queues[0].push(root)

	var wg sync.WaitGroup
	for i := 0; i < e.workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 77))
			w := &shareWorker{id: id, queue: run.queues[id], run: run}
			for {
				task, ok := w.queue.pop()
				if ok {
					task(w)
					run.pending.Add(-1)
				} else if run.pending.Load() == 0 {
					return
				} else {
					runtime.Gosched()
				}
				size := w.queue.size()
				if rng.Intn(size+1) == 0 { // probability 1/(size+1)
					victim := rng.Intn(len(run.queues))
					lo, hi := w.id, victim
					if lo > hi {
						lo, hi = hi, lo
					}
					balance(run.queues[lo], run.queues[hi])
				}
			}
		}(i)
	}
	wg.Wait()
}

// SingleQueueExecutor is the baseline: every worker shares one lock-free
// queue, so the queue itself is the bottleneck.
type SingleQueueExecutor struct {
	workers int
}

var _ Executor = (*SingleQueueExecutor)(nil)

// NewSingleQueueExecutor returns the shared-queue baseline executor.
func NewSingleQueueExecutor(workers int) *SingleQueueExecutor {
	if workers <= 0 {
		panic(fmt.Sprintf("steal: worker count must be positive, got %d", workers))
	}
	return &SingleQueueExecutor{workers: workers}
}

// Workers reports the parallelism.
func (e *SingleQueueExecutor) Workers() int { return e.workers }

type singleWorker struct {
	run *singleRun
}

type singleRun struct {
	queue   *queue.LockFreeQueue[Task]
	pending atomic.Int64
}

// Spawn forks a task onto the shared queue.
func (w *singleWorker) Spawn(t Task) {
	w.run.pending.Add(1)
	w.run.queue.Enq(t)
}

// Run executes the graph off the one shared queue.
func (e *SingleQueueExecutor) Run(root Task) {
	run := &singleRun{queue: queue.NewLockFreeQueue[Task]()}
	run.pending.Store(1)
	run.queue.Enq(root)

	var wg sync.WaitGroup
	for i := 0; i < e.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &singleWorker{run: run}
			for {
				task, ok := run.queue.Deq()
				if !ok {
					if run.pending.Load() == 0 {
						return
					}
					runtime.Gosched()
					continue
				}
				task(w)
				run.pending.Add(-1)
			}
		}()
	}
	wg.Wait()
}
