package register

import (
	"fmt"
	"sync"
	"sync/atomic"

	"amp/internal/core"
)

// Snapshot is the atomic-snapshot object of §4.3: an array of single-writer
// locations that any thread can Scan atomically.
type Snapshot interface {
	// Update stores v into the caller's location.
	Update(me core.ThreadID, v int64)
	// Scan returns an instantaneous view of all locations.
	Scan(me core.ThreadID) []int64
}

// snapValue is one location's stamped value; for the wait-free construction
// it also carries the snapshot the updater took just before writing.
type snapValue struct {
	stamp int64
	value int64
	snap  []int64 // nil in the obstruction-free construction
}

// SimpleSnapshot is the obstruction-free "collect twice" construction
// (Fig. 4.15): a scan retries until two consecutive collects are identical,
// i.e. no update moved in between.
type SimpleSnapshot struct {
	cells []atomic.Pointer[snapValue]
}

var _ Snapshot = (*SimpleSnapshot)(nil)

// NewSimpleSnapshot returns a snapshot object over n locations, all zero.
func NewSimpleSnapshot(n int) *SimpleSnapshot {
	s := &SimpleSnapshot{cells: make([]atomic.Pointer[snapValue], n)}
	zero := &snapValue{}
	for i := range s.cells {
		s.cells[i].Store(zero)
	}
	return s
}

// Update stores v into the caller's location with a fresh local stamp.
func (s *SimpleSnapshot) Update(me core.ThreadID, v int64) {
	old := s.cells[me].Load()
	s.cells[me].Store(&snapValue{stamp: old.stamp + 1, value: v})
}

func (s *SimpleSnapshot) collect() []*snapValue {
	copyOf := make([]*snapValue, len(s.cells))
	for i := range s.cells {
		copyOf[i] = s.cells[i].Load()
	}
	return copyOf
}

// Scan collects until it sees two identical consecutive collects ("a clean
// double collect"), which must be a consistent cut.
func (s *SimpleSnapshot) Scan(core.ThreadID) []int64 {
	old := s.collect()
	for {
		cur := s.collect()
		if sameCollect(old, cur) {
			out := make([]int64, len(cur))
			for i, sv := range cur {
				out[i] = sv.value
			}
			return out
		}
		old = cur
	}
}

func sameCollect(a, b []*snapValue) bool {
	for i := range a {
		if a[i] != b[i] { // pointer identity: same stamped write
			return false
		}
	}
	return true
}

// WFSnapshot is the wait-free snapshot (Fig. 4.17–4.19): every Update first
// performs a Scan and embeds the result in the value it writes. A scanning
// thread that sees some location change *twice* knows that location's
// second write began after the scan did, so the embedded snapshot is a
// legal result it can borrow.
type WFSnapshot struct {
	cells []atomic.Pointer[snapValue]
}

var _ Snapshot = (*WFSnapshot)(nil)

// NewWFSnapshot returns a wait-free snapshot object over n locations.
func NewWFSnapshot(n int) *WFSnapshot {
	if n <= 0 {
		panic(fmt.Sprintf("register: snapshot size must be positive, got %d", n))
	}
	s := &WFSnapshot{cells: make([]atomic.Pointer[snapValue], n)}
	zero := &snapValue{snap: make([]int64, n)}
	for i := range s.cells {
		s.cells[i].Store(zero)
	}
	return s
}

// Update scans, then writes (stamp+1, v, scan) into the caller's location.
func (s *WFSnapshot) Update(me core.ThreadID, v int64) {
	snap := s.Scan(me)
	old := s.cells[me].Load()
	s.cells[me].Store(&snapValue{stamp: old.stamp + 1, value: v, snap: snap})
}

func (s *WFSnapshot) collect() []*snapValue {
	copyOf := make([]*snapValue, len(s.cells))
	for i := range s.cells {
		copyOf[i] = s.cells[i].Load()
	}
	return copyOf
}

// Scan returns a consistent view: either from a clean double collect, or
// borrowed from a location observed to move twice.
func (s *WFSnapshot) Scan(core.ThreadID) []int64 {
	moved := make([]bool, len(s.cells))
	old := s.collect()
	for {
		cur := s.collect()
		clean := true
		for j := range s.cells {
			if old[j] == cur[j] {
				continue
			}
			clean = false
			if moved[j] {
				// Second observed move: cur[j]'s embedded snapshot was
				// taken entirely within our scan's window.
				out := make([]int64, len(cur[j].snap))
				copy(out, cur[j].snap)
				return out
			}
			moved[j] = true
		}
		if clean {
			out := make([]int64, len(cur))
			for i, sv := range cur {
				out[i] = sv.value
			}
			return out
		}
		old = cur
	}
}

// MutexSnapshot is the lock-based baseline used by experiment E14: Update
// and Scan take a global mutex. It is trivially linearizable but blocking.
type MutexSnapshot struct {
	mu    sync.Mutex
	table []int64
}

var _ Snapshot = (*MutexSnapshot)(nil)

// NewMutexSnapshot returns a mutex-guarded snapshot over n locations.
func NewMutexSnapshot(n int) *MutexSnapshot {
	return &MutexSnapshot{table: make([]int64, n)}
}

// Update stores v into the caller's location under the lock.
func (s *MutexSnapshot) Update(me core.ThreadID, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.table[me] = v
}

// Scan copies the table under the lock.
func (s *MutexSnapshot) Scan(core.ThreadID) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.table))
	copy(out, s.table)
	return out
}
