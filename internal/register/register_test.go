package register

import (
	"sync"
	"testing"
	"testing/quick"

	"amp/internal/core"
)

func TestSRSWBool(t *testing.T) {
	var r SRSWBool
	if r.Read() {
		t.Fatal("zero value should read false")
	}
	r.Write(true)
	if !r.Read() {
		t.Fatal("Read after Write(true) = false")
	}
}

func TestSafeBoolMRSWSequential(t *testing.T) {
	r := NewSafeBoolMRSW(3)
	for reader := core.ThreadID(0); reader < 3; reader++ {
		if r.Read(reader) {
			t.Fatalf("initial Read(%d) = true", reader)
		}
	}
	r.Write(true)
	for reader := core.ThreadID(0); reader < 3; reader++ {
		if !r.Read(reader) {
			t.Fatalf("Read(%d) after Write(true) = false", reader)
		}
	}
}

func TestRegBoolMRSWSuppressesRedundantWrites(t *testing.T) {
	r := NewRegBoolMRSW(2)
	r.Write(true)
	r.Write(true) // must be a no-op physically; observable state unchanged
	if !r.Read(0) || !r.Read(1) {
		t.Fatal("redundant write changed observable value")
	}
	r.Write(false)
	if r.Read(0) || r.Read(1) {
		t.Fatal("Write(false) not visible")
	}
}

func TestRegularMRSWSequential(t *testing.T) {
	r := NewRegularMRSW(8, 2, 3)
	if got := r.Read(0); got != 3 {
		t.Fatalf("initial Read = %d, want 3", got)
	}
	for _, v := range []int{0, 7, 4, 4, 1} {
		r.Write(v)
		if got := r.Read(1); got != v {
			t.Fatalf("Read after Write(%d) = %d", v, got)
		}
	}
}

func TestRegularMRSWBadInitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range init did not panic")
		}
	}()
	NewRegularMRSW(4, 1, 9)
}

func TestAtomicSRSWSequential(t *testing.T) {
	r := NewAtomicSRSW(10, 1)
	if got := r.Read(0); got != 10 {
		t.Fatalf("initial Read = %d, want 10", got)
	}
	r.Write(20)
	r.Write(30)
	if got := r.Read(0); got != 30 {
		t.Fatalf("Read = %d, want 30", got)
	}
}

func TestAtomicSRSWReaderNeverTravelsBack(t *testing.T) {
	r := NewAtomicSRSW(0, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= 1000; i++ {
			r.Write(i)
		}
	}()
	last := 0
	for i := 0; i < 5000; i++ {
		v := r.Read(0)
		if v < last {
			t.Errorf("reader travelled backward: %d after %d", v, last)
			break
		}
		last = v
	}
	<-done
}

// concurrentRegisterHistory drives one writer and several readers against a
// Register and returns the recorded history.
func concurrentRegisterHistory(t *testing.T, r Register[int], readers, writesPerRound int) core.History {
	t.Helper()
	rec := core.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= writesPerRound; i++ {
			p := rec.Call(0, "write", i)
			r.Write(i)
			p.Done(nil)
		}
	}()
	for rd := 1; rd <= readers; rd++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < writesPerRound; i++ {
				p := rec.Call(me, "read", nil)
				v := r.Read(me)
				p.Done(v)
			}
		}(core.ThreadID(rd))
	}
	wg.Wait()
	return rec.History()
}

func TestAtomicMRSWLinearizable(t *testing.T) {
	// Readers 1..3 use MRSW slots 1..3; slot 0 is unused by readers but
	// belongs to the writer thread in the recorder.
	r := NewAtomicMRSW(0, 4)
	h := concurrentRegisterHistory(t, r, 3, 6)
	res := core.Check(core.RegisterModel(0), h)
	if res.Exhausted {
		t.Skip("checker budget exhausted; rerun with smaller history")
	}
	if !res.Linearizable {
		t.Fatalf("AtomicMRSW produced a non-linearizable history:\n%v", h)
	}
}

func TestAtomicMRMWLinearizable(t *testing.T) {
	const writers = 3
	r := NewAtomicMRMW(0, writers)
	rec := core.NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				v := int(me)*100 + i
				p := rec.Call(me, "write", v)
				r.WriteBy(me, v)
				p.Done(nil)

				p = rec.Call(me, "read", nil)
				got := r.Read(me)
				p.Done(got)
			}
		}(core.ThreadID(w))
	}
	wg.Wait()
	res := core.Check(core.RegisterModel(0), rec.History())
	if res.Exhausted {
		t.Skip("checker budget exhausted")
	}
	if !res.Linearizable {
		t.Fatalf("AtomicMRMW produced a non-linearizable history:\n%v", rec.History())
	}
}

func TestAtomicMRMWSequential(t *testing.T) {
	r := NewAtomicMRMW("init", 2)
	if got := r.Read(0); got != "init" {
		t.Fatalf("Read = %q, want init", got)
	}
	r.WriteBy(0, "a")
	r.WriteBy(1, "b")
	if got := r.Read(1); got != "b" {
		t.Fatalf("Read = %q, want b (later write wins)", got)
	}
}

func TestQuickRegularMRSWMatchesLastWrite(t *testing.T) {
	// Sequentially, every register construction must behave like a plain
	// variable: read returns the last written value.
	r := NewRegularMRSW(256, 1, 0)
	f := func(writes []byte) bool {
		last := r.Read(0)
		for _, w := range writes {
			r.Write(int(w))
			last = int(w)
		}
		return r.Read(0) == last
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
