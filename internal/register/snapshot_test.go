package register

import (
	"sync"
	"testing"

	"amp/internal/core"
)

func testSnapshotSequential(t *testing.T, s Snapshot, n int) {
	t.Helper()
	view := s.Scan(0)
	if len(view) != n {
		t.Fatalf("Scan returned %d locations, want %d", len(view), n)
	}
	for i, v := range view {
		if v != 0 {
			t.Fatalf("initial Scan[%d] = %d, want 0", i, v)
		}
	}
	for i := 0; i < n; i++ {
		s.Update(core.ThreadID(i), int64(i+1))
	}
	view = s.Scan(0)
	for i, v := range view {
		if v != int64(i+1) {
			t.Fatalf("Scan[%d] = %d, want %d", i, v, i+1)
		}
	}
}

func TestSimpleSnapshotSequential(t *testing.T) { testSnapshotSequential(t, NewSimpleSnapshot(4), 4) }
func TestWFSnapshotSequential(t *testing.T)     { testSnapshotSequential(t, NewWFSnapshot(4), 4) }
func TestMutexSnapshotSequential(t *testing.T)  { testSnapshotSequential(t, NewMutexSnapshot(4), 4) }

// scanStamp pairs a scan result with the real-time window it was taken in.
type scanStamp struct {
	call, ret int64
	view      []int64
}

// testSnapshotConsistency runs updaters writing strictly increasing values
// and scanners in parallel, then checks two linearizability consequences:
//
//  1. per-location monotonicity across real-time-ordered scans, and
//  2. every scanned value was actually written (v ≤ last value written).
func testSnapshotConsistency(t *testing.T, s Snapshot, updaters, scanners, rounds int) {
	t.Helper()
	rec := core.NewRecorder() // used only for its monotone clock
	var wg sync.WaitGroup
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 1; i <= rounds; i++ {
				s.Update(me, int64(i))
			}
		}(core.ThreadID(u))
	}
	results := make([][]scanStamp, scanners)
	for sc := 0; sc < scanners; sc++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			me := core.ThreadID(updaters) // scanners do not update
			for i := 0; i < rounds; i++ {
				p := rec.Call(me, "scan", nil)
				view := s.Scan(me)
				results[slot] = append(results[slot], scanStamp{view: view})
				p.Done(nil)
			}
		}(sc)
	}
	wg.Wait()
	// Recover call/return stamps in recording order per scanner: recorder
	// history is global, so instead re-derive windows from per-slot order
	// (scans within one goroutine are totally ordered).
	for slot, scans := range results {
		for i := 1; i < len(scans); i++ {
			prev, cur := scans[i-1].view, scans[i].view
			for loc := range cur {
				if cur[loc] < prev[loc] {
					t.Fatalf("scanner %d: location %d went backward: %d then %d",
						slot, loc, prev[loc], cur[loc])
				}
			}
		}
		for _, sc := range scans {
			for loc, v := range sc.view {
				if v < 0 || v > int64(rounds) {
					t.Fatalf("scanner %d: impossible value %d at location %d", slot, v, loc)
				}
				if loc >= updaters && v != 0 {
					t.Fatalf("scanner %d: unwritten location %d has value %d", slot, loc, v)
				}
			}
		}
	}
}

func TestSimpleSnapshotConsistency(t *testing.T) {
	testSnapshotConsistency(t, NewSimpleSnapshot(4), 3, 2, 200)
}

func TestWFSnapshotConsistency(t *testing.T) {
	testSnapshotConsistency(t, NewWFSnapshot(4), 3, 2, 200)
}

func TestMutexSnapshotConsistency(t *testing.T) {
	testSnapshotConsistency(t, NewMutexSnapshot(4), 3, 2, 200)
}

// TestWFSnapshotEmbeddedSnapBorrowed forces the "borrow a moved-twice
// snapshot" path by hammering one location while a scanner runs.
func TestWFSnapshotEmbeddedSnapBorrowed(t *testing.T) {
	s := NewWFSnapshot(3)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := int64(1)
		for {
			select {
			case <-stop:
				return
			default:
				s.Update(0, i)
				i++
			}
		}
	}()
	for i := 0; i < 500; i++ {
		view := s.Scan(2)
		if len(view) != 3 {
			t.Fatalf("scan returned %d locations, want 3", len(view))
		}
	}
	close(stop)
	wg.Wait()
}

func TestWFSnapshotZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWFSnapshot(0) did not panic")
		}
	}()
	NewWFSnapshot(0)
}
