// Package register implements the Chapter 4 shared-memory foundations: the
// ladder of register constructions (safe → regular → atomic, boolean →
// m-valued, SRSW → MRSW → MRMW) and wait-free atomic snapshots.
//
// The base cells are Go atomics, which are physically atomic; each
// construction *uses* only the semantics the book assumes at that rung
// (safe or regular), so the constructions are faithful even though the
// hardware under them is stronger. Reader and writer identities are dense
// core.ThreadID values, standing in for the book's ThreadID.get().
package register

import (
	"fmt"
	"sync/atomic"

	"amp/internal/core"
)

// Register is a single-writer, multi-reader register of values of type T.
// Read takes the calling reader's identity; Write may be called by the one
// designated writer only.
type Register[T any] interface {
	Read(reader core.ThreadID) T
	Write(v T)
}

// SRSWBool is the base cell: a single-reader single-writer boolean
// register. It is physically atomic; the constructions above it assume only
// safe or regular semantics.
type SRSWBool struct {
	v atomic.Bool
}

// Read returns the register's value.
func (r *SRSWBool) Read() bool { return r.v.Load() }

// Write stores v.
func (r *SRSWBool) Write(v bool) { r.v.Store(v) }

// SafeBoolMRSW builds a multi-reader safe boolean register from one SRSW
// register per reader (Fig. 4.6): the writer writes each reader's private
// copy in turn.
type SafeBoolMRSW struct {
	table []SRSWBool
}

// NewSafeBoolMRSW returns a register readable by `readers` distinct threads.
func NewSafeBoolMRSW(readers int) *SafeBoolMRSW {
	if readers <= 0 {
		panic(fmt.Sprintf("register: readers must be positive, got %d", readers))
	}
	return &SafeBoolMRSW{table: make([]SRSWBool, readers)}
}

// Read returns the value from the calling reader's private cell.
func (r *SafeBoolMRSW) Read(reader core.ThreadID) bool {
	return r.table[reader].Read()
}

// Write stores v into every reader's cell.
func (r *SafeBoolMRSW) Write(v bool) {
	for i := range r.table {
		r.table[i].Write(v)
	}
}

// RegBoolMRSW upgrades a safe boolean MRSW register to a *regular* one
// (Fig. 4.7): the writer suppresses redundant writes, so a read overlapping
// a write can only observe the old or the new value.
type RegBoolMRSW struct {
	old  bool // writer-local: last value written
	safe *SafeBoolMRSW
}

// NewRegBoolMRSW returns a regular boolean MRSW register.
func NewRegBoolMRSW(readers int) *RegBoolMRSW {
	return &RegBoolMRSW{safe: NewSafeBoolMRSW(readers)}
}

// Read returns the register's value.
func (r *RegBoolMRSW) Read(reader core.ThreadID) bool { return r.safe.Read(reader) }

// Write stores v, skipping the physical write when v equals the last value
// written — the step that turns safe into regular.
func (r *RegBoolMRSW) Write(v bool) {
	if r.old != v {
		r.old = v
		r.safe.Write(v)
	}
}

// RegularMRSW is an m-valued regular MRSW register built from regular
// boolean registers in unary representation (Fig. 4.8): bit[x] set means
// "value is x". Write sets the new bit then clears lower bits from high to
// low; Read scans upward and returns the first set bit.
type RegularMRSW struct {
	bits []*RegBoolMRSW
}

// NewRegularMRSW returns a regular register over values 0..capacity-1,
// initialized to init.
func NewRegularMRSW(capacity, readers, init int) *RegularMRSW {
	if capacity <= 0 {
		panic(fmt.Sprintf("register: capacity must be positive, got %d", capacity))
	}
	if init < 0 || init >= capacity {
		panic(fmt.Sprintf("register: init %d out of range [0,%d)", init, capacity))
	}
	bits := make([]*RegBoolMRSW, capacity)
	for i := range bits {
		bits[i] = NewRegBoolMRSW(readers)
	}
	bits[init].Write(true)
	r := &RegularMRSW{bits: bits}
	return r
}

// Read scans from 0 upward and returns the index of the first set bit.
func (r *RegularMRSW) Read(reader core.ThreadID) int {
	for i := range r.bits {
		if r.bits[i].Read(reader) {
			return i
		}
	}
	// Unreachable in a correct single-writer execution: the writer always
	// leaves at least one bit at or below the last written value set.
	panic("register: regular MRSW register has no set bit (concurrent writers?)")
}

// Write sets bit v, then clears all lower bits from v-1 down to 0.
func (r *RegularMRSW) Write(v int) {
	r.bits[v].Write(true)
	for i := v - 1; i >= 0; i-- {
		r.bits[i].Write(false)
	}
}

// stamped is a timestamped value; larger stamps are newer. Ties are broken
// by writer identity (relevant only for MRMW).
type stamped[T any] struct {
	stamp  int64
	writer core.ThreadID
	value  T
}

func maxStamped[T any](a, b *stamped[T]) *stamped[T] {
	if b.stamp > a.stamp || (b.stamp == a.stamp && b.writer > a.writer) {
		return b
	}
	return a
}

// srswStamped is an SRSW (also usable as regular) register holding a
// stamped value; it is the cell type the atomic constructions are built on.
type srswStamped[T any] struct {
	p atomic.Pointer[stamped[T]]
}

func (c *srswStamped[T]) load() *stamped[T]   { return c.p.Load() }
func (c *srswStamped[T]) store(v *stamped[T]) { c.p.Store(v) }

// AtomicSRSW upgrades a regular SRSW register to an atomic one (Fig. 4.10)
// by timestamping writes and having the (single) reader remember the newest
// stamped value it has returned, so it never travels backward in time.
type AtomicSRSW[T any] struct {
	lastStamp int64 // writer-local
	lastRead  []*stamped[T]
	cell      srswStamped[T]
}

// NewAtomicSRSW returns an atomic register with the given initial value.
// readers sizes the per-reader memory (the construction is single-reader in
// the book; we keep one lastRead slot per reader so tests can reuse it as
// the SRSW cells of larger constructions).
func NewAtomicSRSW[T any](init T, readers int) *AtomicSRSW[T] {
	r := &AtomicSRSW[T]{lastRead: make([]*stamped[T], readers)}
	first := &stamped[T]{value: init}
	r.cell.store(first)
	for i := range r.lastRead {
		r.lastRead[i] = first
	}
	return r
}

// Read returns the newer of the shared cell and the reader's memory.
func (r *AtomicSRSW[T]) Read(reader core.ThreadID) T {
	value := r.cell.load()
	last := r.lastRead[reader]
	result := maxStamped(last, value)
	r.lastRead[reader] = result
	return result.value
}

// Write timestamps v and stores it.
func (r *AtomicSRSW[T]) Write(v T) {
	r.lastStamp++
	r.cell.store(&stamped[T]{stamp: r.lastStamp, value: v})
}

// AtomicMRSW builds a multi-reader atomic register from an n×n table of
// SRSW atomic cells (Fig. 4.12). Readers help later readers by forwarding
// the value they are about to return into their row.
type AtomicMRSW[T any] struct {
	lastStamp int64 // writer-local
	table     [][]srswStamped[T]
}

// NewAtomicMRSW returns an atomic MRSW register for `readers` readers.
func NewAtomicMRSW[T any](init T, readers int) *AtomicMRSW[T] {
	if readers <= 0 {
		panic(fmt.Sprintf("register: readers must be positive, got %d", readers))
	}
	table := make([][]srswStamped[T], readers)
	first := &stamped[T]{value: init}
	for i := range table {
		table[i] = make([]srswStamped[T], readers)
		for j := range table[i] {
			table[i][j].store(first)
		}
	}
	return &AtomicMRSW[T]{table: table}
}

// Read returns the newest value visible in the reader's column, then
// forwards it across the reader's row so no later reader sees older state.
func (r *AtomicMRSW[T]) Read(reader core.ThreadID) T {
	me := int(reader)
	value := r.table[me][me].load()
	for i := range r.table {
		value = maxStamped(value, r.table[i][me].load())
	}
	for i := range r.table {
		if i == me {
			continue
		}
		r.table[me][i].store(value)
	}
	return value.value
}

// Write timestamps v and stores it on the diagonal.
func (r *AtomicMRSW[T]) Write(v T) {
	r.lastStamp++
	sv := &stamped[T]{stamp: r.lastStamp, value: v}
	for i := range r.table {
		r.table[i][i].store(sv)
	}
}

// AtomicMRMW builds a multi-writer atomic register from one atomic MRSW
// cell per writer (Fig. 4.13): a writer reads all cells, picks a stamp
// higher than any it saw, and publishes into its own cell; readers take the
// maximum, breaking stamp ties by writer identity.
type AtomicMRMW[T any] struct {
	table []srswStamped[T]
}

// NewAtomicMRMW returns an atomic MRMW register for `writers` writers (any
// number of readers).
func NewAtomicMRMW[T any](init T, writers int) *AtomicMRMW[T] {
	if writers <= 0 {
		panic(fmt.Sprintf("register: writers must be positive, got %d", writers))
	}
	t := make([]srswStamped[T], writers)
	first := &stamped[T]{writer: -1, value: init}
	for i := range t {
		t[i].store(first)
	}
	return &AtomicMRMW[T]{table: t}
}

// WriteBy publishes v on behalf of the given writer.
func (r *AtomicMRMW[T]) WriteBy(writer core.ThreadID, v T) {
	max := r.table[0].load()
	for i := 1; i < len(r.table); i++ {
		max = maxStamped(max, r.table[i].load())
	}
	r.table[writer].store(&stamped[T]{stamp: max.stamp + 1, writer: writer, value: v})
}

// Read returns the value with the highest (stamp, writer) pair.
func (r *AtomicMRMW[T]) Read(core.ThreadID) T {
	max := r.table[0].load()
	for i := 1; i < len(r.table); i++ {
		max = maxStamped(max, r.table[i].load())
	}
	return max.value
}
