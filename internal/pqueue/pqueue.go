// Package pqueue implements the Chapter 15 concurrent priority queues:
//
//   - SimpleLinear: an array of bins scanned in priority order (Fig. 15.1)
//   - SimpleTree: a counter tree over the bins (Fig. 15.2)
//   - FineGrainedHeap: a lock-per-node array heap (Fig. 15.3–15.4)
//   - SkipQueue: a lock-free skiplist-based unbounded queue (Fig. 15.5)
//   - LockedHeap: a coarse binary heap, the baseline for experiment E9
//
// As in the book, the bounded structures (SimpleLinear, SimpleTree) are
// pools with a fixed priority range and are quiescently consistent rather
// than linearizable; SkipQueue is quiescently consistent; FineGrainedHeap
// and LockedHeap are linearizable.
package pqueue

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
)

// PQueue is a multiset of integer priorities. RemoveMin reports false when
// the queue is observed empty.
type PQueue interface {
	Add(priority int)
	RemoveMin() (int, bool)
}

// intHeap adapts a slice to container/heap.
type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// LockedHeap is a mutex around a sequential binary heap.
type LockedHeap struct {
	mu sync.Mutex
	h  intHeap
}

var _ PQueue = (*LockedHeap)(nil)

// NewLockedHeap returns an empty queue.
func NewLockedHeap() *LockedHeap { return &LockedHeap{} }

// Add inserts a priority.
func (q *LockedHeap) Add(priority int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	heap.Push(&q.h, priority)
}

// RemoveMin removes and returns the smallest priority.
func (q *LockedHeap) RemoveMin() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		return 0, false
	}
	return heap.Pop(&q.h).(int), true
}

// bin is a counter-based bag of identical priorities with a bounded
// decrement that never goes below zero (the book's boundedGetAndDecrement).
type bin struct {
	count atomic.Int64
}

func (b *bin) put() { b.count.Add(1) }

func (b *bin) tryGet() bool {
	for {
		v := b.count.Load()
		if v == 0 {
			return false
		}
		if b.count.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// SimpleLinear (Fig. 15.1) keeps one bin per priority and scans upward on
// RemoveMin. Quiescently consistent: a RemoveMin overlapping an Add of a
// smaller priority may return the larger one.
type SimpleLinear struct {
	bins []bin
}

var _ PQueue = (*SimpleLinear)(nil)

// NewSimpleLinear returns a queue over priorities [0, rng).
func NewSimpleLinear(rng int) *SimpleLinear {
	if rng <= 0 {
		panic(fmt.Sprintf("pqueue: priority range must be positive, got %d", rng))
	}
	return &SimpleLinear{bins: make([]bin, rng)}
}

// Add inserts a priority in [0, range).
func (q *SimpleLinear) Add(priority int) {
	q.bins[q.check(priority)].put()
}

// RemoveMin scans bins from 0 upward.
func (q *SimpleLinear) RemoveMin() (int, bool) {
	for i := range q.bins {
		if q.bins[i].tryGet() {
			return i, true
		}
	}
	return 0, false
}

func (q *SimpleLinear) check(priority int) int {
	if priority < 0 || priority >= len(q.bins) {
		panic(fmt.Sprintf("pqueue: priority %d outside [0,%d)", priority, len(q.bins)))
	}
	return priority
}

// SimpleTree (Fig. 15.2) overlays a binary tree of counters on the bins:
// each inner node counts the items in its left subtree, so RemoveMin
// descends in O(log range) instead of scanning. Quiescently consistent.
type SimpleTree struct {
	rng      int
	counters []atomic.Int64 // heap-indexed inner nodes, 1-based; node i's left child is 2i
	bins     []bin
}

var _ PQueue = (*SimpleTree)(nil)

// NewSimpleTree returns a queue over priorities [0, rng); rng must be a
// power of two.
func NewSimpleTree(rng int) *SimpleTree {
	if rng < 2 || rng&(rng-1) != 0 {
		panic(fmt.Sprintf("pqueue: tree range must be a power of two >= 2, got %d", rng))
	}
	return &SimpleTree{
		rng:      rng,
		counters: make([]atomic.Int64, rng), // nodes 1..rng-1 used
		bins:     make([]bin, rng),
	}
}

// Add deposits the item in its bin, then increments the "left subtree"
// counters on the path to the root, bottom-up.
func (q *SimpleTree) Add(priority int) {
	if priority < 0 || priority >= q.rng {
		panic(fmt.Sprintf("pqueue: priority %d outside [0,%d)", priority, q.rng))
	}
	q.bins[priority].put()
	node := q.rng + priority // virtual leaf index
	for node > 1 {
		parent := node / 2
		if node == 2*parent { // we are the left child
			q.counters[parent].Add(1)
		}
		node = parent
	}
}

// boundedDec decrements the counter unless it is zero, returning the prior
// value.
func boundedDec(c *atomic.Int64) int64 {
	for {
		v := c.Load()
		if v == 0 {
			return 0
		}
		if c.CompareAndSwap(v, v-1) {
			return v
		}
	}
}

// RemoveMin descends from the root: positive left-count means the minimum
// is on the left.
func (q *SimpleTree) RemoveMin() (int, bool) {
	node := 1
	for node < q.rng { // while inner
		if boundedDec(&q.counters[node]) > 0 {
			node = 2 * node
		} else {
			node = 2*node + 1
		}
	}
	priority := node - q.rng
	if q.bins[priority].tryGet() {
		return priority, true
	}
	// Lost a race with a concurrent remover or an in-flight add; report
	// empty, as the book's pool get() would return null.
	return 0, false
}
