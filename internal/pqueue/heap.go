package pqueue

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// heapStatus tags a FineGrainedHeap node (Fig. 15.3).
type heapStatus int

const (
	statusEmpty heapStatus = iota
	statusAvailable
	statusBusy // owned by an add() still bubbling it up
)

// heapNode is one slot of the array heap, with its own lock.
type heapNode struct {
	mu       sync.Mutex
	tag      heapStatus
	owner    int64 // op identity when BUSY
	priority int
}

func (n *heapNode) init(priority int, owner int64) {
	n.priority = priority
	n.tag = statusBusy
	n.owner = owner
}

func (n *heapNode) amOwner(owner int64) bool {
	return n.tag == statusBusy && n.owner == owner
}

// FineGrainedHeap is the lock-per-node binary heap of Fig. 15.3–15.4: a
// short critical section on a global lock reserves the slot, then add()
// bubbles its BUSY node up with hand-over-hand locking while removeMin()
// percolates the root replacement down. The owner field (the book uses the
// thread ID; we use a per-operation ticket) lets an add detect that a
// concurrent swap moved its node.
type FineGrainedHeap struct {
	heapLock sync.Mutex
	next     int // index of the next free slot; ROOT is 1
	heap     []heapNode
	opID     atomic.Int64
}

var _ PQueue = (*FineGrainedHeap)(nil)

const heapRoot = 1

// NewFineGrainedHeap returns an empty heap holding at most capacity items.
func NewFineGrainedHeap(capacity int) *FineGrainedHeap {
	if capacity <= 0 {
		panic(fmt.Sprintf("pqueue: heap capacity must be positive, got %d", capacity))
	}
	return &FineGrainedHeap{
		next: heapRoot,
		heap: make([]heapNode, capacity+heapRoot),
	}
}

func (q *FineGrainedHeap) swap(a, b int) {
	na, nb := &q.heap[a], &q.heap[b]
	na.tag, nb.tag = nb.tag, na.tag
	na.owner, nb.owner = nb.owner, na.owner
	na.priority, nb.priority = nb.priority, na.priority
}

// Add inserts a priority, bubbling it toward the root.
func (q *FineGrainedHeap) Add(priority int) {
	me := q.opID.Add(1)

	q.heapLock.Lock()
	if q.next >= len(q.heap) {
		q.heapLock.Unlock()
		panic(fmt.Sprintf("pqueue: heap capacity %d exceeded", len(q.heap)-heapRoot))
	}
	child := q.next
	q.next++
	q.heap[child].mu.Lock()
	q.heap[child].init(priority, me)
	q.heapLock.Unlock()
	q.heap[child].mu.Unlock()

	for child > heapRoot {
		parent := child / 2
		q.heap[parent].mu.Lock()
		q.heap[child].mu.Lock()
		oldChild := child
		switch {
		case q.heap[parent].tag == statusAvailable && q.heap[child].amOwner(me):
			if q.heap[child].priority < q.heap[parent].priority {
				q.swap(child, parent)
				child = parent
			} else {
				// Settled: hand the node over.
				q.heap[child].tag = statusAvailable
				q.heap[child].owner = 0
				q.heap[oldChild].mu.Unlock()
				q.heap[parent].mu.Unlock()
				return
			}
		case !q.heap[child].amOwner(me):
			// A removeMin swapped our node away; chase it upward.
			child = parent
		default:
			// Parent is BUSY or EMPTY (being reorganized): release and retry.
		}
		q.heap[oldChild].mu.Unlock()
		q.heap[parent].mu.Unlock()
	}
	if child == heapRoot {
		q.heap[heapRoot].mu.Lock()
		if q.heap[heapRoot].amOwner(me) {
			q.heap[heapRoot].tag = statusAvailable
			q.heap[heapRoot].owner = 0
		}
		q.heap[heapRoot].mu.Unlock()
	}
}

// RemoveMin removes and returns the smallest priority, percolating the
// last slot's item down from the root.
func (q *FineGrainedHeap) RemoveMin() (int, bool) {
	q.heapLock.Lock()
	if q.next == heapRoot {
		q.heapLock.Unlock()
		return 0, false
	}
	q.next--
	bottom := q.next
	if bottom == heapRoot {
		// Single element: take the root directly.
		q.heap[heapRoot].mu.Lock()
		q.heapLock.Unlock()
		priority := q.heap[heapRoot].priority
		q.heap[heapRoot].tag = statusEmpty
		q.heap[heapRoot].owner = 0
		q.heap[heapRoot].mu.Unlock()
		return priority, true
	}
	q.heap[heapRoot].mu.Lock()
	q.heap[bottom].mu.Lock()
	q.heapLock.Unlock()

	priority := q.heap[heapRoot].priority
	q.heap[heapRoot].tag = statusEmpty
	q.heap[heapRoot].owner = 0
	q.swap(bottom, heapRoot)
	q.heap[bottom].mu.Unlock()

	if q.heap[heapRoot].tag == statusEmpty {
		// The bottom slot was itself empty-tagged (racing adds); nothing to
		// percolate.
		q.heap[heapRoot].mu.Unlock()
		return priority, true
	}
	if q.heap[heapRoot].tag == statusBusy {
		// The replacement is still owned by an in-flight Add. Adopt it:
		// percolation puts it in its proper place, so the owner's
		// bubble-up is unnecessary — and must not be waited for. Leaving
		// it BUSY would let percolation carry it down a subtree the
		// owner's upward chase never visits, orphaning the BUSY tag and
		// livelocking every Add that later bubbles past that slot.
		q.heap[heapRoot].tag = statusAvailable
		q.heap[heapRoot].owner = 0
	}

	// Percolate the root replacement down.
	parent := heapRoot
	for 2*parent+1 < len(q.heap) {
		left, right := 2*parent, 2*parent+1
		q.heap[left].mu.Lock()
		q.heap[right].mu.Lock()
		var child int
		switch {
		case q.heap[left].tag == statusEmpty:
			q.heap[right].mu.Unlock()
			q.heap[left].mu.Unlock()
			goto done
		case q.heap[right].tag == statusEmpty || q.heap[left].priority < q.heap[right].priority:
			q.heap[right].mu.Unlock()
			child = left
		default:
			q.heap[left].mu.Unlock()
			child = right
		}
		if q.heap[child].priority < q.heap[parent].priority {
			q.swap(parent, child)
			q.heap[parent].mu.Unlock()
			parent = child
		} else {
			q.heap[child].mu.Unlock()
			goto done
		}
	}
done:
	q.heap[parent].mu.Unlock()
	return priority, true
}

// Size reports the current number of items (racy outside quiescence).
func (q *FineGrainedHeap) Size() int {
	q.heapLock.Lock()
	defer q.heapLock.Unlock()
	return q.next - heapRoot
}
