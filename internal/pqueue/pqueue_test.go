package pqueue

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// implementations returns fresh queues. Bounded ones cover priorities
// [0, 64); tests stay inside that range.
func implementations() map[string]func() PQueue {
	return map[string]func() PQueue{
		"locked":    func() PQueue { return NewLockedHeap() },
		"linear":    func() PQueue { return NewSimpleLinear(64) },
		"tree":      func() PQueue { return NewSimpleTree(64) },
		"finegrain": func() PQueue { return NewFineGrainedHeap(1 << 14) },
		"skip":      func() PQueue { return NewSkipQueue() },
	}
}

func TestSequentialOrdering(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			if _, ok := q.RemoveMin(); ok {
				t.Fatal("RemoveMin on empty queue reported ok")
			}
			in := []int{5, 1, 9, 3, 3, 7, 0, 63, 2}
			for _, p := range in {
				q.Add(p)
			}
			want := append([]int(nil), in...)
			sort.Ints(want)
			for i, w := range want {
				got, ok := q.RemoveMin()
				if !ok || got != w {
					t.Fatalf("RemoveMin #%d = (%d,%v), want (%d,true)", i, got, ok, w)
				}
			}
			if _, ok := q.RemoveMin(); ok {
				t.Fatal("RemoveMin on drained queue reported ok")
			}
		})
	}
}

func TestDifferentialSequential(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var ref []int
			rng := rand.New(rand.NewSource(23))
			for i := 0; i < 4000; i++ {
				if rng.Intn(2) == 0 {
					p := rng.Intn(64)
					q.Add(p)
					ref = append(ref, p)
					sort.Ints(ref)
				} else {
					got, ok := q.RemoveMin()
					if len(ref) == 0 {
						if ok {
							t.Fatalf("op %d: RemoveMin ok on empty queue", i)
						}
						continue
					}
					if !ok || got != ref[0] {
						t.Fatalf("op %d: RemoveMin = (%d,%v), want (%d,true)", i, got, ok, ref[0])
					}
					ref = ref[1:]
				}
			}
		})
	}
}

// TestConcurrentConservation: every added priority is eventually removed
// exactly once; the final sequential drain must retrieve whatever the
// concurrent phase left behind (quiescent consistency).
func TestConcurrentConservation(t *testing.T) {
	const (
		workers = 4
		perW    = 400
	)
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var (
				mu      sync.Mutex
				added   = make(map[int]int)
				removed = make(map[int]int)
			)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < perW; i++ {
						p := rng.Intn(64)
						q.Add(p)
						mu.Lock()
						added[p]++
						mu.Unlock()
						if i%2 == 1 {
							if v, ok := q.RemoveMin(); ok {
								mu.Lock()
								removed[v]++
								mu.Unlock()
							}
						}
					}
				}(int64(w + 3))
			}
			wg.Wait()
			for {
				v, ok := q.RemoveMin()
				if !ok {
					break
				}
				removed[v]++
			}
			for p, n := range added {
				if removed[p] != n {
					t.Fatalf("priority %d: added %d, removed %d", p, n, removed[p])
				}
			}
			for p, n := range removed {
				if added[p] != n {
					t.Fatalf("priority %d: removed %d but added %d", p, n, added[p])
				}
			}
		})
	}
}

// TestConcurrentMinQuality: once the queue is quiescent and nonempty,
// RemoveMin must return the true minimum.
func TestQuiescentMinExact(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 300; i++ {
						q.Add(rng.Intn(60) + 2)
					}
				}(int64(w + 31))
			}
			wg.Wait()
			q.Add(1) // now the unique minimum
			got, ok := q.RemoveMin()
			if !ok || got != 1 {
				t.Fatalf("quiescent RemoveMin = (%d,%v), want (1,true)", got, ok)
			}
		})
	}
}

func TestSkipQueueFIFOWithinPriority(t *testing.T) {
	// Not part of the book's contract, but our unique-key construction
	// gives FIFO among equal priorities; pin it down.
	q := NewSkipQueue()
	for i := 0; i < 10; i++ {
		q.Add(5)
	}
	for i := 0; i < 10; i++ {
		if v, ok := q.RemoveMin(); !ok || v != 5 {
			t.Fatalf("RemoveMin = (%d,%v)", v, ok)
		}
	}
}

func TestSkipQueueNegativePriorities(t *testing.T) {
	q := NewSkipQueue()
	for _, p := range []int{3, -7, 0, -1, 12} {
		q.Add(p)
	}
	want := []int{-7, -1, 0, 3, 12}
	for _, w := range want {
		if got, ok := q.RemoveMin(); !ok || got != w {
			t.Fatalf("RemoveMin = (%d,%v), want (%d,true)", got, ok, w)
		}
	}
}

func TestFineGrainedHeapCapacityPanics(t *testing.T) {
	q := NewFineGrainedHeap(2)
	q.Add(1)
	q.Add(2)
	defer func() {
		if recover() == nil {
			t.Fatal("overfull heap did not panic")
		}
	}()
	q.Add(3)
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSimpleLinear(0) },
		func() { NewSimpleTree(3) },
		func() { NewSimpleTree(0) },
		func() { NewFineGrainedHeap(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestBoundedRangePanics(t *testing.T) {
	for name, q := range map[string]PQueue{
		"linear": NewSimpleLinear(8),
		"tree":   NewSimpleTree(8),
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range priority did not panic")
				}
			}()
			q.Add(8)
		})
	}
}

func TestFineGrainedHeapSize(t *testing.T) {
	q := NewFineGrainedHeap(16)
	if q.Size() != 0 {
		t.Fatalf("fresh Size = %d", q.Size())
	}
	q.Add(4)
	q.Add(2)
	if q.Size() != 2 {
		t.Fatalf("Size = %d, want 2", q.Size())
	}
	q.RemoveMin()
	if q.Size() != 1 {
		t.Fatalf("Size = %d, want 1", q.Size())
	}
}

func TestQuickHeapEquivalence(t *testing.T) {
	for name, mk := range map[string]func() PQueue{
		"locked":    func() PQueue { return NewLockedHeap() },
		"finegrain": func() PQueue { return NewFineGrainedHeap(4096) },
		"skip":      func() PQueue { return NewSkipQueue() },
	} {
		t.Run(name, func(t *testing.T) {
			f := func(ops []int16) bool {
				q := mk()
				var ref []int
				for _, code := range ops {
					if code >= 0 {
						p := int(code % 512)
						q.Add(p)
						ref = append(ref, p)
						sort.Ints(ref)
					} else {
						got, ok := q.RemoveMin()
						if len(ref) == 0 {
							if ok {
								return false
							}
							continue
						}
						if !ok || got != ref[0] {
							return false
						}
						ref = ref[1:]
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
