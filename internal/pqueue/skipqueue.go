package pqueue

import (
	"fmt"
	"sync/atomic"

	"amp/internal/skiplist"
)

// SkipQueue is the unbounded lock-free priority queue of Fig. 15.5: a
// lock-free skiplist ordered by priority, where RemoveMin marks the first
// undeleted bottom-level node as its linearization-ish point and then
// physically removes it. As the book notes, the queue is quiescently
// consistent: a RemoveMin racing with an Add of a smaller priority may
// return the larger one.
//
// The skiplist needs distinct keys, so each insertion gets a unique
// sequence number packed into the low bits: equal priorities dequeue in
// roughly FIFO order as a bonus.
type SkipQueue struct {
	list *skiplist.LockFreeSkipList
	seq  atomic.Uint64
}

var _ PQueue = (*SkipQueue)(nil)

// seqBits is the number of low bits holding the uniquifier; priorities must
// fit in the remaining bits.
const seqBits = 22

// MaxPriority is the largest usable priority magnitude for SkipQueue.
const MaxPriority = 1 << (62 - seqBits)

// NewSkipQueue returns an empty queue.
func NewSkipQueue() *SkipQueue {
	return &SkipQueue{list: skiplist.NewLockFreeSkipList()}
}

// Add inserts a priority; |priority| must be below MaxPriority.
func (q *SkipQueue) Add(priority int) {
	if priority <= -MaxPriority || priority >= MaxPriority {
		panic(fmt.Sprintf("pqueue: priority %d out of range (±%d)", priority, MaxPriority))
	}
	key := (priority << seqBits) | int(q.seq.Add(1)&(1<<seqBits-1))
	for !q.list.Add(key) {
		// Sequence collision after 2^22 wraps — retake a uniquifier.
		key = (priority << seqBits) | int(q.seq.Add(1)&(1<<seqBits-1))
	}
}

// RemoveMin marks and removes the first node of the bottom-level list.
func (q *SkipQueue) RemoveMin() (int, bool) {
	for {
		key, ok := q.list.Min()
		if !ok {
			return 0, false
		}
		if q.list.Remove(key) {
			return key >> seqBits, true
		}
		// Another remover claimed it; try the next minimum.
	}
}
