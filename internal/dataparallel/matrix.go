package dataparallel

import (
	"fmt"

	"amp/internal/steal"
)

// Matrix fork/join, the running example of Chapter 16 (Figs. 16.2–16.4):
// work is split recursively into quadrants and scheduled as executor
// tasks. The book joins subtasks with Futures; here each task owns a
// disjoint quadrant of the *output*, so the executor's quiescence is the
// only join needed.

// Matrix is a dense square matrix of float64 with power-of-two dimension.
type Matrix struct {
	n    int
	row  int // offset of this view into the backing matrix
	col  int
	dim  int // view dimension
	data []float64
}

// NewMatrix returns a zero matrix of power-of-two dimension n.
func NewMatrix(n int) *Matrix {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("dataparallel: matrix dimension must be a power of two, got %d", n))
	}
	return &Matrix{n: n, dim: n, data: make([]float64, n*n)}
}

// At returns the element at (i, j) of this view.
func (m *Matrix) At(i, j int) float64 {
	return m.data[(m.row+i)*m.n+(m.col+j)]
}

// Set assigns the element at (i, j) of this view.
func (m *Matrix) Set(i, j int, v float64) {
	m.data[(m.row+i)*m.n+(m.col+j)] = v
}

// Dim reports the view's dimension.
func (m *Matrix) Dim() int { return m.dim }

// split returns the four quadrant views (Fig. 16.3's Matrix.split).
func (m *Matrix) split() [2][2]*Matrix {
	half := m.dim / 2
	var q [2][2]*Matrix
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			q[i][j] = &Matrix{
				n: m.n, dim: half,
				row: m.row + i*half, col: m.col + j*half,
				data: m.data,
			}
		}
	}
	return q
}

// matrixGrain is the tile dimension at or below which work runs serially.
const matrixGrain = 32

// AddMatrix computes c = a + b in parallel on the executor. The three
// matrices must share dimensions; c may alias a or b.
func AddMatrix(ex steal.Executor, c, a, b *Matrix) {
	checkDims(c, a, b)
	var addTask func(c, a, b *Matrix) steal.Task
	addTask = func(c, a, b *Matrix) steal.Task {
		return func(s steal.Spawner) {
			if c.dim <= matrixGrain {
				for i := 0; i < c.dim; i++ {
					for j := 0; j < c.dim; j++ {
						c.Set(i, j, a.At(i, j)+b.At(i, j))
					}
				}
				return
			}
			cq, aq, bq := c.split(), a.split(), b.split()
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					s.Spawn(addTask(cq[i][j], aq[i][j], bq[i][j]))
				}
			}
		}
	}
	ex.Run(addTask(c, a, b))
}

// mmPair is one term of a quadrant's product sum: the views multiply as
// pair.a × pair.b.
type mmPair struct {
	a, b *Matrix
}

// MulMatrix computes c = a × b in parallel: the output is split into
// quadrant tasks recursively. Each level rewrites a quadrant's value as a
// sum of half-size products (c[i][j] = Σ a[i][k]×b[k][j]), so a task
// carries its output view plus the product terms to accumulate; leaves
// evaluate their terms serially. Outputs are disjoint, so the executor's
// quiescence is the only join. c must not alias a or b.
func MulMatrix(ex steal.Executor, c, a, b *Matrix) {
	checkDims(c, a, b)
	if sameBacking(c, a) || sameBacking(c, b) {
		panic("dataparallel: multiply destination must not alias an input")
	}
	var mulTask func(c *Matrix, terms []mmPair) steal.Task
	mulTask = func(c *Matrix, terms []mmPair) steal.Task {
		return func(s steal.Spawner) {
			if c.dim <= matrixGrain {
				n := c.dim
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						sum := 0.0
						for _, t := range terms {
							for k := 0; k < n; k++ {
								sum += t.a.At(i, k) * t.b.At(k, j)
							}
						}
						c.Set(i, j, sum)
					}
				}
				return
			}
			cq := c.split()
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					sub := make([]mmPair, 0, 2*len(terms))
					for _, t := range terms {
						aq, bq := t.a.split(), t.b.split()
						sub = append(sub,
							mmPair{a: aq[i][0], b: bq[0][j]},
							mmPair{a: aq[i][1], b: bq[1][j]},
						)
					}
					s.Spawn(mulTask(cq[i][j], sub))
				}
			}
		}
	}
	ex.Run(mulTask(c, []mmPair{{a: a, b: b}}))
}

// sameBacking reports whether two matrices share a backing array.
func sameBacking(a, b *Matrix) bool {
	return len(a.data) > 0 && len(b.data) > 0 && &a.data[0] == &b.data[0]
}

func checkDims(ms ...*Matrix) {
	d := ms[0].dim
	for _, m := range ms {
		if m.dim != d {
			panic("dataparallel: dimension mismatch")
		}
	}
}
