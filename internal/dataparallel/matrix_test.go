package dataparallel

import (
	"math/rand"
	"testing"

	"amp/internal/steal"
)

func randomMatrix(n int, seed int64) *Matrix {
	m := NewMatrix(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, float64(rng.Intn(10)))
		}
	}
	return m
}

// serialMulRef is the reference O(n³) multiply.
func serialMulRef(a, b *Matrix) *Matrix {
	n := a.Dim()
	c := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, sum)
		}
	}
	return c
}

func matricesEqual(t *testing.T, got, want *Matrix) {
	t.Helper()
	n := got.Dim()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(4)
	if m.Dim() != 4 {
		t.Fatalf("Dim = %d", m.Dim())
	}
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 {
		t.Fatalf("At = %v", m.At(2, 3))
	}
	q := m.split()
	if q[1][1].At(0, 1) != 7 {
		t.Fatalf("quadrant view broken: %v", q[1][1].At(0, 1))
	}
	q[0][0].Set(0, 0, 5)
	if m.At(0, 0) != 5 {
		t.Fatal("quadrant write not visible in parent")
	}
}

func TestAddMatrix(t *testing.T) {
	for _, n := range []int{4, 64, 128} {
		a := randomMatrix(n, 1)
		b := randomMatrix(n, 2)
		c := NewMatrix(n)
		ex := steal.NewStealingExecutor(4)
		AddMatrix(ex, c, a, b)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if c.At(i, j) != a.At(i, j)+b.At(i, j) {
					t.Fatalf("n=%d: (%d,%d) = %v", n, i, j, c.At(i, j))
				}
			}
		}
	}
}

func TestAddMatrixAliasing(t *testing.T) {
	// c may alias a: in-place accumulate.
	a := randomMatrix(64, 3)
	b := randomMatrix(64, 4)
	want := NewMatrix(64)
	ex := steal.NewStealingExecutor(2)
	AddMatrix(ex, want, a, b)
	AddMatrix(ex, a, a, b)
	matricesEqual(t, a, want)
}

func TestMulMatrixMatchesSerial(t *testing.T) {
	for _, n := range []int{2, 8, 32, 64, 128} {
		a := randomMatrix(n, int64(n))
		b := randomMatrix(n, int64(n)+1)
		want := serialMulRef(a, b)
		for name, ex := range executors() {
			c := NewMatrix(n)
			MulMatrix(ex, c, a, b)
			t.Run(name, func(t *testing.T) { matricesEqual(t, c, want) })
		}
	}
}

func TestMulMatrixIdentity(t *testing.T) {
	n := 64
	a := randomMatrix(n, 8)
	id := NewMatrix(n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	c := NewMatrix(n)
	ex := steal.NewStealingExecutor(4)
	MulMatrix(ex, c, a, id)
	matricesEqual(t, c, a)
}

func TestMulMatrixAliasPanics(t *testing.T) {
	a := NewMatrix(4)
	b := NewMatrix(4)
	defer func() {
		if recover() == nil {
			t.Fatal("aliased multiply did not panic")
		}
	}()
	ex := steal.NewStealingExecutor(1)
	MulMatrix(ex, a, a, b)
}

func TestMatrixConstructorPanics(t *testing.T) {
	for _, n := range []int{0, 3, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMatrix(%d) did not panic", n)
				}
			}()
			NewMatrix(n)
		}()
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	ex := steal.NewStealingExecutor(1)
	AddMatrix(ex, NewMatrix(4), NewMatrix(8), NewMatrix(8))
}
