package dataparallel

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"amp/internal/steal"
)

func executors() map[string]steal.Executor {
	return map[string]steal.Executor{
		"stealing": steal.NewStealingExecutor(4),
		"sharing":  steal.NewSharingExecutor(4),
		"single":   steal.NewSingleQueueExecutor(2),
	}
}

func ints(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(1000)
	}
	return out
}

func TestMapMatchesSequential(t *testing.T) {
	in := ints(5000, 1)
	f := func(x int) int { return x*x + 1 }
	for name, ex := range executors() {
		t.Run(name, func(t *testing.T) {
			got := Map(ex, in, f)
			if len(got) != len(in) {
				t.Fatalf("len = %d, want %d", len(got), len(in))
			}
			for i, x := range in {
				if got[i] != f(x) {
					t.Fatalf("out[%d] = %d, want %d", i, got[i], f(x))
				}
			}
		})
	}
}

func TestMapEmptyAndTiny(t *testing.T) {
	ex := steal.NewStealingExecutor(2)
	if got := Map(ex, nil, func(x int) int { return x }); got != nil {
		t.Fatalf("Map(nil) = %v, want nil", got)
	}
	got := Map(ex, []int{7}, func(x int) int { return x * 2 })
	if len(got) != 1 || got[0] != 14 {
		t.Fatalf("Map single = %v", got)
	}
}

func TestReduceMatchesSequential(t *testing.T) {
	in := ints(7000, 2)
	want := 0
	for _, x := range in {
		want += x
	}
	for name, ex := range executors() {
		t.Run(name, func(t *testing.T) {
			if got := Reduce(ex, in, 0, func(a, b int) int { return a + b }); got != want {
				t.Fatalf("Reduce = %d, want %d", got, want)
			}
		})
	}
}

func TestReduceNonCommutative(t *testing.T) {
	// String concatenation is associative but not commutative; order must
	// be preserved.
	words := []string{"the", "art", "of", "multiprocessor", "programming"}
	var in []string
	for i := 0; i < 800; i++ {
		in = append(in, words[i%len(words)])
	}
	want := strings.Join(in, "")
	ex := steal.NewStealingExecutor(4)
	got := Reduce(ex, in, "", func(a, b string) string { return a + b })
	if got != want {
		t.Fatalf("Reduce reordered a non-commutative fold")
	}
}

func TestReduceEmpty(t *testing.T) {
	ex := steal.NewStealingExecutor(2)
	if got := Reduce(ex, nil, 42, func(a, b int) int { return a + b }); got != 42 {
		t.Fatalf("Reduce(empty) = %d, want identity 42", got)
	}
}

func TestScanMatchesSequential(t *testing.T) {
	in := ints(6000, 3)
	want := make([]int, len(in))
	acc := 0
	for i, x := range in {
		acc += x
		want[i] = acc
	}
	for name, ex := range executors() {
		t.Run(name, func(t *testing.T) {
			got := Scan(ex, in, 0, func(a, b int) int { return a + b })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Scan[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestScanMax(t *testing.T) {
	in := []int{3, 1, 4, 1, 5, 9, 2, 6}
	want := []int{3, 3, 4, 4, 5, 9, 9, 9}
	ex := steal.NewStealingExecutor(2)
	got := Scan(ex, in, -1<<62, func(a, b int) int { return max(a, b) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestQuickScanEqualsSequential(t *testing.T) {
	ex := steal.NewStealingExecutor(3)
	f := func(in []int16) bool {
		xs := make([]int, len(in))
		for i, v := range in {
			xs[i] = int(v)
		}
		got := Scan(ex, xs, 0, func(a, b int) int { return a + b })
		acc := 0
		for i, x := range xs {
			acc += x
			if got[i] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMapReduceWordCount(t *testing.T) {
	docs := []string{
		"the art of multiprocessor programming",
		"the art of war",
		"programming the multiprocessor",
	}
	want := map[string]int{
		"the": 3, "art": 2, "of": 2, "multiprocessor": 2,
		"programming": 2, "war": 1,
	}
	for name, ex := range executors() {
		t.Run(name, func(t *testing.T) {
			got := MapReduce(ex, docs,
				func(doc string, emit func(string, int)) {
					for _, w := range strings.Fields(doc) {
						emit(w, 1)
					}
				},
				func(_ string, counts []int) int {
					total := 0
					for _, c := range counts {
						total += c
					}
					return total
				},
			)
			if len(got) != len(want) {
				t.Fatalf("got %d keys, want %d: %v", len(got), len(want), got)
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
				}
			}
		})
	}
}

func TestMapReduceLargeInput(t *testing.T) {
	// Histogram 50k ints mod 17 and compare against a sequential count.
	in := ints(50_000, 9)
	want := make(map[int]int)
	for _, x := range in {
		want[x%17]++
	}
	ex := steal.NewStealingExecutor(4)
	got := MapReduce(ex, in,
		func(x int, emit func(int, int)) { emit(x%17, 1) },
		func(_ int, vs []int) int {
			total := 0
			for _, v := range vs {
				total += v
			}
			return total
		},
	)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("bucket %d = %d, want %d", k, got[k], v)
		}
	}
}

func TestMapReduceEmpty(t *testing.T) {
	ex := steal.NewStealingExecutor(2)
	got := MapReduce(ex, nil,
		func(int, func(string, int)) {},
		func(string, []int) int { return 0 })
	if len(got) != 0 {
		t.Fatalf("MapReduce(empty) = %v", got)
	}
}
