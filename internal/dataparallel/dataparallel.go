// Package dataparallel implements the data-parallel patterns of the book's
// second edition (MapReduce-style bulk operations and parallel prefix),
// scheduled on the Chapter 16 work-distribution executors: Map, Reduce,
// Scan, and a small MapReduce.
//
// All operations split their input recursively down to a grain size and
// run the grains as fork/join tasks, so an irregular machine load is
// rebalanced by the executor (stealing or sharing) underneath.
package dataparallel

import (
	"sync"

	"amp/internal/steal"
)

// Grain is the sequential chunk size: ranges at or below it run inline.
const Grain = 1024

// Map applies f to every element concurrently, preserving order.
func Map[T, R any](ex steal.Executor, in []T, f func(T) R) []R {
	if len(in) == 0 {
		return nil
	}
	out := make([]R, len(in))
	var chunk func(lo, hi int) steal.Task
	chunk = func(lo, hi int) steal.Task {
		return func(s steal.Spawner) {
			for hi-lo > Grain {
				mid := lo + (hi-lo)/2
				s.Spawn(chunk(mid, hi))
				hi = mid
			}
			for i := lo; i < hi; i++ {
				out[i] = f(in[i])
			}
		}
	}
	ex.Run(chunk(0, len(in)))
	return out
}

// Reduce folds the input with an associative operation op and its identity
// element id. op must be associative; it need not be commutative — partial
// results are combined in index order.
func Reduce[T any](ex steal.Executor, in []T, id T, op func(a, b T) T) T {
	if len(in) == 0 {
		return id
	}
	partials, spans := chunkPartials(ex, in, id, op)
	acc := id
	for i := range spans {
		acc = op(acc, partials[i])
	}
	return acc
}

// chunkPartials reduces fixed chunks of the input in parallel, returning
// per-chunk partial results and chunk boundaries.
func chunkPartials[T any](ex steal.Executor, in []T, id T, op func(a, b T) T) ([]T, [][2]int) {
	var spans [][2]int
	for lo := 0; lo < len(in); lo += Grain {
		hi := min(lo+Grain, len(in))
		spans = append(spans, [2]int{lo, hi})
	}
	partials := make([]T, len(spans))
	root := func(s steal.Spawner) {
		for i := range spans {
			i := i
			s.Spawn(func(steal.Spawner) {
				acc := id
				for j := spans[i][0]; j < spans[i][1]; j++ {
					acc = op(acc, in[j])
				}
				partials[i] = acc
			})
		}
	}
	ex.Run(root)
	return partials, spans
}

// Scan computes the inclusive prefix of op over the input: out[i] =
// in[0] op in[1] op … op in[i]. The classic two-pass parallel prefix:
// chunk partials, a sequential scan over the (few) partials, then a
// parallel pass applying chunk offsets.
func Scan[T any](ex steal.Executor, in []T, id T, op func(a, b T) T) []T {
	if len(in) == 0 {
		return nil
	}
	partials, spans := chunkPartials(ex, in, id, op)
	// Exclusive prefix over chunk partials (cheap: len/Grain entries).
	offsets := make([]T, len(spans))
	acc := id
	for i := range spans {
		offsets[i] = acc
		acc = op(acc, partials[i])
	}
	out := make([]T, len(in))
	root := func(s steal.Spawner) {
		for i := range spans {
			i := i
			s.Spawn(func(steal.Spawner) {
				acc := offsets[i]
				for j := spans[i][0]; j < spans[i][1]; j++ {
					acc = op(acc, in[j])
					out[j] = acc
				}
			})
		}
	}
	ex.Run(root)
	return out
}

// MapReduce runs the two-phase bulk pattern: mapf emits (key, value) pairs
// for each input element; all values for a key are folded with reducef.
// Map tasks run in parallel with chunk-local accumulation; the per-key
// reductions run in parallel over the key space.
func MapReduce[T any, K comparable, V any](
	ex steal.Executor,
	in []T,
	mapf func(item T, emit func(K, V)),
	reducef func(key K, values []V) V,
) map[K]V {
	if len(in) == 0 {
		return map[K]V{}
	}
	var spans [][2]int
	for lo := 0; lo < len(in); lo += Grain {
		spans = append(spans, [2]int{lo, min(lo+Grain, len(in))})
	}
	locals := make([]map[K][]V, len(spans))
	mapPhase := func(s steal.Spawner) {
		for i := range spans {
			i := i
			s.Spawn(func(steal.Spawner) {
				local := make(map[K][]V)
				emit := func(k K, v V) { local[k] = append(local[k], v) }
				for j := spans[i][0]; j < spans[i][1]; j++ {
					mapf(in[j], emit)
				}
				locals[i] = local
			})
		}
	}
	ex.Run(mapPhase)

	// Shuffle: merge chunk-local maps (single-threaded; the data volume
	// here is keys, not items).
	merged := make(map[K][]V)
	for _, local := range locals {
		for k, vs := range local {
			merged[k] = append(merged[k], vs...)
		}
	}

	// Reduce phase: one task per key, over the executor.
	keys := make([]K, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	var mu sync.Mutex
	result := make(map[K]V, len(keys))
	reducePhase := func(s steal.Spawner) {
		for _, k := range keys {
			k := k
			s.Spawn(func(steal.Spawner) {
				v := reducef(k, merged[k])
				mu.Lock()
				result[k] = v
				mu.Unlock()
			})
		}
	}
	ex.Run(reducePhase)
	return result
}
