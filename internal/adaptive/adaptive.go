// Package adaptive implements contention-adaptive "adjusted" backends:
// meta-containers that wrap the per-family implementation ladders
// (internal/strmap, internal/hashset) behind the unchanged Map / Set
// interfaces and morph the live implementation to fit the observed
// workload — Kane's Adjusted Objects idea driven by the cheap signals
// Alistarh et al. argue actually predict behavior: real lock-wait /
// CAS-failure counts and the read/write mix, not worst-case assumptions.
//
// The containers are built for ampserved's shard discipline: all writes
// to one container are serialized by its owning shard (the combiner
// lock), while reads may additionally arrive from any goroutine through
// the wait-free bypass (TryGet / TryContains). The owner calls Tick at
// batch boundaries; every cfg.Every ticks the controller closes a
// sampling window and consults the policy:
//
//   - window read fraction ≥ ReadHi  → morph to the read-optimized
//     member (map: the RCU-style epoch table; set: the lock-free
//     split-ordered set), whose reads are safe from any goroutine, so
//     the server can turn the wait-free read bypass on.
//   - on an off-ladder read member with read fraction < ReadLo → morph
//     back to the saved write-ladder rung.
//   - otherwise, contended ops per hundred ≥ HiPct climbs the write
//     ladder one rung (coarse → striped → refinable → ...), and ≤ LoPct
//     descends one rung — under low contention the simplest structure
//     is the fastest, so an idle container drifts back to coarse.
//
// A morph runs entirely on the owner goroutine at a batch boundary: the
// old implementation is quiesced by construction (zero concurrent
// writers), Range migrates its entries into a fresh instance of the
// target, and one atomic pointer store flips future operations over.
// Concurrent bypass readers linearize at their pointer load: a reader
// that loaded the old implementation finishes against it — the old
// structure is never mutated again and stays reachable until the GC
// collects it — and every operation after the flip sees the migrated
// state. No stop-the-world, no interface change.
package adaptive

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Config tunes one controller. The zero value selects the defaults.
type Config struct {
	// Every is the number of owner ticks (batch drains) between policy
	// evaluations. Default 32.
	Every int
	// MinOps is the minimum operations a sampling window must hold
	// before the policy may act; smaller windows carry too much noise.
	// Default 256.
	MinOps int64
	// ReadHi is the window read fraction at which the container morphs
	// to its read-optimized member. Default 0.90.
	ReadHi float64
	// ReadLo is the read fraction below which an off-ladder read member
	// morphs back to the saved write-ladder rung. Default 0.50.
	ReadLo float64
	// HiPct / LoPct bound the contention band, in contended operations
	// per hundred: at or above HiPct the controller climbs the write
	// ladder, at or below LoPct it descends. Defaults 5 and 1.
	HiPct int64
	LoPct int64
}

func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = 32
	}
	if c.MinOps <= 0 {
		c.MinOps = 256
	}
	if c.ReadHi <= 0 {
		c.ReadHi = 0.90
	}
	if c.ReadLo <= 0 {
		c.ReadLo = 0.50
	}
	if c.HiPct <= 0 {
		c.HiPct = 5
	}
	if c.LoPct <= 0 {
		c.LoPct = 1
	}
	return c
}

// contender is the contention-signal capability every ladder member
// implements (lock-wait counts on the locked backends, CAS-failure
// counts on the lock-free ones).
type contender interface {
	Contention() int64
}

// Transition is one observed morph edge, for STATS.
type Transition struct {
	From, To string
	N        int64
}

// controller is the per-container policy state. All fields except flips
// and the transition log are owned by the container's single writer
// (ampserved: the shard's combining goroutine); flips and transitions
// are also read by STATS snapshots from other goroutines.
type controller struct {
	cfg       Config
	ladderLen int // write-ladder members are indexes [0, ladderLen)
	readIdx   int // read-optimized member; == ladderLen when off-ladder
	pos       int // current member index
	rung      int // ladder rung to return to when leaving an off-ladder read member

	drains int // owner ticks since the last evaluation

	flips atomic.Int64
	mu    sync.Mutex // guards trans
	trans map[[2]string]int64
}

// decide maps one closed window (reads, writes, contended ops) to a
// target member index, or ok=false to stay put. Pure: no state changes.
func (c *controller) decide(reads, writes, cont int64) (int, bool) {
	total := reads + writes
	if total < c.cfg.MinOps {
		return 0, false
	}
	frac := float64(reads) / float64(total)
	contPct := 100 * cont / total
	switch {
	case frac >= c.cfg.ReadHi:
		if c.pos != c.readIdx {
			return c.readIdx, true
		}
	case c.pos == c.readIdx && c.readIdx >= c.ladderLen:
		// Off-ladder read member and the mix is no longer read-dominated.
		if frac < c.cfg.ReadLo {
			return c.rung, true
		}
	default:
		if contPct >= c.cfg.HiPct && c.pos+1 < c.ladderLen {
			return c.pos + 1, true
		}
		if contPct <= c.cfg.LoPct && c.pos > 0 {
			return c.pos - 1, true
		}
	}
	return 0, false
}

// applyMorph commits a decision: remember the rung when stepping off the
// ladder, move, count the flip.
func (c *controller) applyMorph(target int) {
	if target == c.readIdx && c.readIdx >= c.ladderLen {
		c.rung = c.pos
	}
	c.pos = target
	c.flips.Add(1)
}

func (c *controller) record(from, to string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.trans == nil {
		c.trans = make(map[[2]string]int64)
	}
	c.trans[[2]string{from, to}]++
}

// Flips reports completed morphs. Safe from any goroutine.
func (c *controller) Flips() int64 { return c.flips.Load() }

// Transitions reports the morph edges taken so far, sorted by (from,
// to). Safe from any goroutine.
func (c *controller) Transitions() []Transition {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Transition, 0, len(c.trans))
	for k, n := range c.trans {
		out = append(out, Transition{From: k[0], To: k[1], N: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

func contentionOf(v any) int64 {
	if c, ok := v.(contender); ok {
		return c.Contention()
	}
	return 0
}

// normCap rounds a requested capacity up to a power of two ≥ 2 (the
// ladder constructors' requirement).
func normCap(n int) int {
	p := 2
	for p < n {
		p <<= 1
	}
	return p
}

func checkCapability(ok bool, name, capability string) {
	if !ok {
		panic(fmt.Sprintf("adaptive: backend %q does not implement %s", name, capability))
	}
}
