package adaptive

import (
	"fmt"
	"sync"
	"testing"
)

// cfg1 evaluates on every tick and accepts one-op windows: the unit
// tests drive windows explicitly.
var cfg1 = Config{Every: 1, MinOps: 1}

// TestDecidePolicy pins the pure policy on a map-shaped controller
// (off-ladder read member at index 4).
func TestDecidePolicy(t *testing.T) {
	mk := func(pos, rung int) *controller {
		return &controller{cfg: Config{}.withDefaults(), ladderLen: 4, readIdx: 4, pos: pos, rung: rung}
	}
	cases := []struct {
		name                string
		c                   *controller
		reads, writes, cont int64
		want                int
		ok                  bool
	}{
		{"window too small", mk(1, 1), 100, 10, 0, 0, false},
		{"read-heavy morphs to read member", mk(1, 1), 950, 50, 0, 4, true},
		{"read member stays in hysteresis band", mk(4, 1), 700, 300, 0, 0, false},
		{"read member returns on write-heavy", mk(4, 2), 100, 900, 0, 2, true},
		{"contention climbs", mk(1, 1), 100, 900, 100, 2, true},
		{"top rung cannot climb", mk(3, 1), 100, 900, 500, 0, false},
		{"quiet descends", mk(2, 2), 100, 900, 0, 1, true},
		{"bottom rung cannot descend", mk(0, 0), 100, 900, 0, 0, false},
		{"mid-band holds", mk(1, 1), 100, 900, 30, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := tc.c.decide(tc.reads, tc.writes, tc.cont)
			if ok != tc.ok || (ok && got != tc.want) {
				t.Fatalf("decide(%d,%d,%d) = %d,%v; want %d,%v",
					tc.reads, tc.writes, tc.cont, got, ok, tc.want, tc.ok)
			}
		})
	}

	// The on-ladder read member (set shape): a write-heavy window leaves
	// it by the ordinary contention descent, not the ReadLo exit.
	c := &controller{cfg: Config{}.withDefaults(), ladderLen: 4, readIdx: 3, pos: 3, rung: 1}
	if got, ok := c.decide(100, 900, 0); !ok || got != 2 {
		t.Fatalf("on-ladder read member: decide = %d,%v; want 2,true", got, ok)
	}
}

// window drives one sampled window of the given shape through m and
// closes it with a Tick.
func mapWindow(m *Map, reads, writes int) (string, string, bool) {
	for i := 0; i < writes; i++ {
		m.Set(fmt.Sprintf("w%05d", i), int64(i))
	}
	for i := 0; i < reads; i++ {
		m.Get(fmt.Sprintf("w%05d", i%(writes+1)))
	}
	return m.Tick()
}

// TestMapMorphLifecycle walks the map through read-heavy and write-heavy
// windows and checks the member sequence, entry survival, and the
// transition log.
func TestMapMorphLifecycle(t *testing.T) {
	m := NewMap(64, cfg1)
	if got := m.Current(); got != "striped" {
		t.Fatalf("boot member %q, want striped", got)
	}
	if m.BypassOK() {
		t.Fatal("striped member must not advertise bypass")
	}

	// Seed entries that must survive every morph below.
	for i := 0; i < 100; i++ {
		m.Set(fmt.Sprintf("seed%03d", i), int64(1000+i))
	}

	// Pure-write window: quiet striped descends to coarse.
	if from, to, ok := mapWindow(m, 0, 400); !ok || from != "striped" || to != "coarse" {
		t.Fatalf("write window: morph %q→%q ok=%v, want striped→coarse", from, to, ok)
	}

	// Read-heavy window: morphs to epoch and turns bypass on.
	if from, to, ok := mapWindow(m, 400, 10); !ok || from != "coarse" || to != "epoch" {
		t.Fatalf("read window: morph %q→%q ok=%v, want coarse→epoch", from, to, ok)
	}
	if !m.BypassOK() {
		t.Fatal("epoch member must advertise bypass")
	}
	if v, ok, served := m.TryGet("seed007"); !served || !ok || v != 1007 {
		t.Fatalf("TryGet(seed007) = %d,%v,%v; want 1007,true,true", v, ok, served)
	}

	// Write-heavy window: returns to the saved rung (coarse).
	if from, to, ok := mapWindow(m, 10, 400); !ok || from != "epoch" || to != "coarse" {
		t.Fatalf("return window: morph %q→%q ok=%v, want epoch→coarse", from, to, ok)
	}
	if _, _, served := m.TryGet("seed007"); served {
		t.Fatal("TryGet served on a non-bypass member")
	}

	// Every seed entry survived three migrations.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("seed%03d", i)
		if v, ok := m.Get(k); !ok || v != int64(1000+i) {
			t.Fatalf("Get(%s) = %d,%v after morphs; want %d,true", k, v, ok, 1000+i)
		}
	}

	if got := m.Flips(); got != 3 {
		t.Fatalf("Flips() = %d, want 3", got)
	}
	want := []Transition{
		{From: "coarse", To: "epoch", N: 1},
		{From: "epoch", To: "coarse", N: 1},
		{From: "striped", To: "coarse", N: 1},
	}
	got := m.Transitions()
	if len(got) != len(want) {
		t.Fatalf("Transitions() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Transitions()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSetMorphLifecycle mirrors the map lifecycle for the set: the read
// member is the on-ladder lock-free top rung, left by ordinary descent.
func TestSetMorphLifecycle(t *testing.T) {
	s := NewSet(64, cfg1)
	if got := s.Current(); got != "striped" {
		t.Fatalf("boot member %q, want striped", got)
	}
	for i := 0; i < 100; i++ {
		s.Add(i)
	}

	// Read-heavy window (the 100 Adds above are in it too): jump to
	// lockfree.
	for i := 0; i < 1000; i++ {
		s.Contains(i % 100)
	}
	if from, to, ok := s.Tick(); !ok || from != "striped" || to != "lockfree" {
		t.Fatalf("read window: morph %q→%q ok=%v, want striped→lockfree", from, to, ok)
	}
	if member, served := s.TryContains(42); !served || !member {
		t.Fatalf("TryContains(42) = %v,%v; want true,true", member, served)
	}

	// Write-heavy quiet window: descend one rung at a time back to coarse.
	wantDown := []string{"refinable", "striped", "coarse"}
	at := "lockfree"
	for _, next := range wantDown {
		for i := 0; i < 400; i++ {
			s.Add(1000 + i)
			s.Remove(1000 + i)
		}
		if from, to, ok := s.Tick(); !ok || from != at || to != next {
			t.Fatalf("descent: morph %q→%q ok=%v, want %s→%s", from, to, ok, at, next)
		}
		at = next
	}
	for i := 0; i < 100; i++ {
		if !s.Contains(i) {
			t.Fatalf("member %d lost across morphs", i)
		}
	}
	if got := s.Flips(); got != 4 {
		t.Fatalf("Flips() = %d, want 4", got)
	}
}

// TestTryGetDuringMorphs races wait-free readers against an owner that
// morphs continuously; the invariant is that a served read of an
// immutable key always returns its value. Run under -race this is the
// package's publication-safety proof.
func TestTryGetDuringMorphs(t *testing.T) {
	m := NewMap(64, cfg1)
	m.Set("stable", 42)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if v, ok, served := m.TryGet("stable"); served && (!ok || v != 42) {
					t.Errorf("TryGet(stable) = %d,%v mid-morph; want 42,true", v, ok)
					return
				}
			}
		}()
	}

	flips := m.Flips()
	for round := 0; round < 40; round++ {
		mapWindow(m, 400, 10) // pull toward epoch
		mapWindow(m, 10, 400) // push back to the ladder
	}
	close(done)
	wg.Wait()
	if got := m.Flips(); got <= flips {
		t.Fatalf("no morphs happened during the race (flips %d)", got)
	}
	if v, ok := m.Get("stable"); !ok || v != 42 {
		t.Fatalf("Get(stable) = %d,%v after the race; want 42,true", v, ok)
	}
}
