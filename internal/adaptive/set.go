package adaptive

import (
	"sync/atomic"

	"amp/internal/hashset"
	"amp/internal/list"
)

// setRanger is the migration capability (quiesced enumeration).
type setRanger interface {
	Range(f func(x int) bool)
}

var (
	_ setRanger = (*hashset.CoarseHashSet)(nil)
	_ setRanger = (*hashset.StripedHashSet)(nil)
	_ setRanger = (*hashset.RefinableHashSet)(nil)
	_ setRanger = (*hashset.LockFreeHashSet)(nil)
	_ contender = (*hashset.CoarseHashSet)(nil)
	_ contender = (*hashset.StripedHashSet)(nil)
	_ contender = (*hashset.RefinableHashSet)(nil)
	_ contender = (*hashset.LockFreeHashSet)(nil)
)

type setSpec struct {
	name   string
	bypass bool
	make   func(capacity int) list.Set
}

// setLadder is the write ladder in climbing order. Its top rung — the
// lock-free split-ordered set — doubles as the read-optimized member
// (its Contains is CAS-free and safe from any goroutine), so the set
// controller's readIdx is on-ladder: a read-heavy window jumps straight
// to the top, and the ordinary contention descent walks it back down
// when the mix turns write-heavy again.
var (
	setLadder = []setSpec{
		{name: "coarse", make: func(c int) list.Set { return hashset.NewCoarseHashSet(c) }},
		{name: "striped", make: func(c int) list.Set { return hashset.NewStripedHashSet(c) }},
		{name: "refinable", make: func(c int) list.Set { return hashset.NewRefinableHashSet(c) }},
		{name: "lockfree", bypass: true, make: func(c int) list.Set { return hashset.NewLockFreeHashSet() }},
	}
	setStart = 1 // striped, the server's fixed default
)

type setMember struct {
	name   string
	bypass bool
	impl   list.Set
}

// Set is the contention-adaptive integer set. It implements list.Set;
// writes (and non-bypass reads) must come from one owner goroutine at a
// time, which also calls Tick at its batch boundaries. TryContains is
// safe from any goroutine.
type Set struct {
	ctl      controller
	capacity int
	cur      atomic.Pointer[setMember]

	reads  atomic.Int64
	writes atomic.Int64

	lastReads  int64
	lastWrites int64
	lastCont   int64
}

var _ list.Set = (*Set)(nil)

// NewSet returns an adaptive set starting on the striped rung.
func NewSet(capacity int, cfg Config) *Set {
	s := &Set{ctl: controller{
		cfg:       cfg.withDefaults(),
		ladderLen: len(setLadder),
		readIdx:   len(setLadder) - 1, // lockfree, on-ladder
		pos:       setStart,
		rung:      setStart,
	}, capacity: normCap(capacity)}
	s.cur.Store(s.member(setStart))
	return s
}

func (s *Set) member(i int) *setMember {
	spec := setLadder[i]
	impl := spec.make(s.capacity)
	_, isRanger := impl.(setRanger)
	checkCapability(isRanger, spec.name, "Range")
	return &setMember{name: spec.name, bypass: spec.bypass, impl: impl}
}

// Add inserts x, reporting whether it was absent. Owner only.
func (s *Set) Add(x int) bool {
	s.writes.Add(1)
	return s.cur.Load().impl.Add(x)
}

// Remove deletes x, reporting whether it was present. Owner only.
func (s *Set) Remove(x int) bool {
	s.writes.Add(1)
	return s.cur.Load().impl.Remove(x)
}

// Contains reports membership. Owner only (bypass readers use
// TryContains).
func (s *Set) Contains(x int) bool {
	s.reads.Add(1)
	return s.cur.Load().impl.Contains(x)
}

// BypassOK reports whether the current member's reads are safe from any
// goroutine. Can go stale across a morph; TryContains revalidates.
func (s *Set) BypassOK() bool { return s.cur.Load().bypass }

// TryContains serves a membership read from any goroutine when the
// current member allows it; served=false means the caller must route the
// read through the owner.
func (s *Set) TryContains(x int) (member, served bool) {
	cur := s.cur.Load()
	if !cur.bypass {
		return false, false
	}
	s.reads.Add(1)
	return cur.impl.Contains(x), true
}

// Tick is the owner's batch-boundary hook; see Map.Tick.
func (s *Set) Tick() (from, to string, flipped bool) {
	c := &s.ctl
	if c.drains++; c.drains < c.cfg.Every {
		return "", "", false
	}
	c.drains = 0
	cur := s.cur.Load()
	reads, writes := s.reads.Load(), s.writes.Load()
	cont := contentionOf(cur.impl)
	dr, dw, dc := reads-s.lastReads, writes-s.lastWrites, cont-s.lastCont
	if dr+dw >= c.cfg.MinOps {
		s.lastReads, s.lastWrites, s.lastCont = reads, writes, cont
	}
	target, ok := c.decide(dr, dw, dc)
	if !ok {
		return "", "", false
	}
	next := s.member(target)
	cur.impl.(setRanger).Range(func(x int) bool {
		next.impl.Add(x)
		return true
	})
	s.cur.Store(next)
	s.lastCont = contentionOf(next.impl)
	c.applyMorph(target)
	c.record(cur.name, next.name)
	return cur.name, next.name, true
}

// Range enumerates the live member (every ladder rung has the
// capability — checked at construction). Owner only, like the writes:
// callers quiesce the shard first, exactly as Tick's migration does.
func (s *Set) Range(f func(x int) bool) {
	s.cur.Load().impl.(setRanger).Range(f)
}

// Current reports the live member's name. Safe from any goroutine.
func (s *Set) Current() string { return s.cur.Load().name }

// Flips reports completed morphs. Safe from any goroutine.
func (s *Set) Flips() int64 { return s.ctl.Flips() }

// Transitions reports the morph edges taken. Safe from any goroutine.
func (s *Set) Transitions() []Transition { return s.ctl.Transitions() }
