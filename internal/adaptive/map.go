package adaptive

import (
	"sync/atomic"

	"amp/internal/strmap"
)

// mapRanger is the migration capability (quiesced enumeration).
type mapRanger interface {
	Range(f func(key string, val int64) bool)
}

// Compile-time capability checks for every member the map controller can
// select: migration needs Range, the policy needs Contention.
var (
	_ mapRanger = (*strmap.CoarseMap)(nil)
	_ mapRanger = (*strmap.StripedMap)(nil)
	_ mapRanger = (*strmap.RefinableMap)(nil)
	_ mapRanger = (*strmap.CuckooChainMap)(nil)
	_ mapRanger = (*strmap.EpochMap)(nil)
	_ contender = (*strmap.CoarseMap)(nil)
	_ contender = (*strmap.StripedMap)(nil)
	_ contender = (*strmap.RefinableMap)(nil)
	_ contender = (*strmap.CuckooChainMap)(nil)
	_ contender = (*strmap.EpochMap)(nil)
)

// mapSpec is one selectable member: a name, a constructor, and whether
// its Get is safe from any goroutine (the wait-free bypass capability).
type mapSpec struct {
	name   string
	bypass bool
	make   func(capacity int) strmap.Map
}

// mapLadder is the write ladder in climbing order; mapRead is the
// off-ladder read-optimized member (index len(mapLadder) to the
// controller).
var (
	mapLadder = []mapSpec{
		{name: "coarse", make: func(c int) strmap.Map { return strmap.NewCoarseMap(c) }},
		{name: "striped", make: func(c int) strmap.Map { return strmap.NewStripedMap(c) }},
		{name: "refinable", make: func(c int) strmap.Map { return strmap.NewRefinableMap(c) }},
		{name: "cuckoo-chain", make: func(c int) strmap.Map { return strmap.NewCuckooChainMap(c) }},
	}
	mapRead = mapSpec{name: "epoch", bypass: true,
		make: func(c int) strmap.Map { return strmap.NewEpochMap(c) }}

	// mapStart is the boot rung: striped, the server's fixed default.
	mapStart = 1
)

// mapMember is one live implementation. Immutable once published.
type mapMember struct {
	name   string
	bypass bool
	impl   strmap.Map
}

// Map is the contention-adaptive string map. It implements strmap.Map;
// writes (and non-bypass reads) must come from one owner goroutine at a
// time, which also calls Tick at its batch boundaries. TryGet is safe
// from any goroutine.
type Map struct {
	ctl      controller
	capacity int
	cur      atomic.Pointer[mapMember]

	// Window op counters. Atomics because TryGet runs on arbitrary
	// goroutines; the owner-only writes don't need the atomicity but
	// share the representation.
	reads  atomic.Int64
	writes atomic.Int64

	// Window baselines, owner-only.
	lastReads  int64
	lastWrites int64
	lastCont   int64
}

var _ strmap.Map = (*Map)(nil)

// NewMap returns an adaptive map starting on the striped rung.
func NewMap(capacity int, cfg Config) *Map {
	m := &Map{ctl: controller{
		cfg:       cfg.withDefaults(),
		ladderLen: len(mapLadder),
		readIdx:   len(mapLadder),
		pos:       mapStart,
		rung:      mapStart,
	}, capacity: normCap(capacity)}
	m.cur.Store(m.member(mapStart))
	return m
}

// member builds a fresh instance of member index i.
func (m *Map) member(i int) *mapMember {
	spec := mapRead
	if i < len(mapLadder) {
		spec = mapLadder[i]
	}
	impl := spec.make(m.capacity)
	_, isRanger := impl.(mapRanger)
	checkCapability(isRanger, spec.name, "Range")
	return &mapMember{name: spec.name, bypass: spec.bypass, impl: impl}
}

// Set maps key to val, reporting whether the key was absent. Owner only.
func (m *Map) Set(key string, val int64) bool {
	m.writes.Add(1)
	return m.cur.Load().impl.Set(key, val)
}

// Get returns the value at key. Owner only (bypass readers use TryGet).
func (m *Map) Get(key string) (int64, bool) {
	m.reads.Add(1)
	return m.cur.Load().impl.Get(key)
}

// Del removes key, reporting whether it was present. Owner only.
func (m *Map) Del(key string) bool {
	m.writes.Add(1)
	return m.cur.Load().impl.Del(key)
}

// BypassOK reports whether the current member's reads are safe from any
// goroutine. A true result can go stale across a morph; TryGet revalidates.
func (m *Map) BypassOK() bool { return m.cur.Load().bypass }

// TryGet serves a read from any goroutine when the current member allows
// it; served=false means the caller must route the read through the
// owner. The read linearizes at the member load: a morph that flips cur
// concurrently leaves the loaded (old) member intact and unwritten.
func (m *Map) TryGet(key string) (val int64, ok, served bool) {
	cur := m.cur.Load()
	if !cur.bypass {
		return 0, false, false
	}
	m.reads.Add(1)
	val, ok = cur.impl.Get(key)
	return val, ok, true
}

// Tick is the owner's batch-boundary hook: every cfg.Every calls it
// closes the sampling window, consults the policy, and — when the policy
// says morph — migrates and flips right here on the owner goroutine.
// flipped reports a completed morph with its edge.
func (m *Map) Tick() (from, to string, flipped bool) {
	c := &m.ctl
	if c.drains++; c.drains < c.cfg.Every {
		return "", "", false
	}
	c.drains = 0
	cur := m.cur.Load()
	reads, writes := m.reads.Load(), m.writes.Load()
	cont := contentionOf(cur.impl)
	dr, dw, dc := reads-m.lastReads, writes-m.lastWrites, cont-m.lastCont
	if dr+dw >= c.cfg.MinOps {
		m.lastReads, m.lastWrites, m.lastCont = reads, writes, cont
	}
	target, ok := c.decide(dr, dw, dc)
	if !ok {
		return "", "", false
	}
	next := m.member(target)
	cur.impl.(mapRanger).Range(func(k string, v int64) bool {
		next.impl.Set(k, v)
		return true
	})
	m.cur.Store(next)
	m.lastCont = contentionOf(next.impl) // fresh instance: restart the baseline
	c.applyMorph(target)
	c.record(cur.name, next.name)
	return cur.name, next.name, true
}

// Range enumerates the live member (every selectable member has the
// capability — checked at construction). Owner only, like the writes:
// callers quiesce the shard first, exactly as Tick's migration does.
func (m *Map) Range(f func(key string, val int64) bool) {
	m.cur.Load().impl.(mapRanger).Range(f)
}

// Current reports the live member's name. Safe from any goroutine.
func (m *Map) Current() string { return m.cur.Load().name }

// Flips reports completed morphs. Safe from any goroutine.
func (m *Map) Flips() int64 { return m.ctl.Flips() }

// Transitions reports the morph edges taken. Safe from any goroutine.
func (m *Map) Transitions() []Transition { return m.ctl.Transitions() }
