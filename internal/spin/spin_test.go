package spin

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amp/internal/core"
)

// exercise runs `threads` goroutines through `iters` critical sections each
// and fails on any mutual-exclusion violation.
func exercise(t *testing.T, l Lock, threads, iters int) {
	t.Helper()
	var (
		inCS    atomic.Int32
		counter int64
		wg      sync.WaitGroup
	)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(me core.ThreadID) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock(me)
				if got := inCS.Add(1); got != 1 {
					t.Errorf("mutual exclusion violated: %d threads in CS", got)
				}
				counter++
				inCS.Add(-1)
				l.Unlock(me)
			}
		}(core.ThreadID(th))
	}
	wg.Wait()
	if counter != int64(threads*iters) {
		t.Fatalf("lost updates: counter = %d, want %d", counter, threads*iters)
	}
}

func TestTASLock(t *testing.T)     { exercise(t, &TASLock{}, 4, 500) }
func TestTTASLock(t *testing.T)    { exercise(t, &TTASLock{}, 4, 500) }
func TestBackoffLock(t *testing.T) { exercise(t, NewBackoffLock(4), 4, 200) }
func TestALock(t *testing.T)       { exercise(t, NewALock(8), 8, 300) }
func TestCLHLock(t *testing.T)     { exercise(t, NewCLHLock(8), 8, 300) }
func TestMCSLock(t *testing.T)     { exercise(t, NewMCSLock(8), 8, 300) }
func TestTOLock(t *testing.T)      { exercise(t, NewTOLock(8), 8, 300) }
func TestStdMutex(t *testing.T)    { exercise(t, &StdMutex{}, 4, 500) }

func TestSoloAcquire(t *testing.T) {
	locks := map[string]Lock{
		"tas":     &TASLock{},
		"ttas":    &TTASLock{},
		"backoff": NewBackoffLock(1),
		"alock":   NewALock(2),
		"clh":     NewCLHLock(2),
		"mcs":     NewMCSLock(2),
		"tolock":  NewTOLock(2),
		"std":     &StdMutex{},
	}
	for name, l := range locks {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 50; i++ {
				l.Lock(0)
				l.Unlock(0)
			}
		})
	}
}

func TestALockFIFO(t *testing.T) {
	// With the lock held, two waiters that enqueue in a known order must be
	// served in that order.
	l := NewALock(4)
	l.Lock(0) // holder

	order := make(chan int, 2)
	ready := make(chan struct{}, 2)
	go func() {
		ready <- struct{}{}
		l.Lock(1)
		order <- 1
		l.Unlock(1)
	}()
	<-ready
	waitForTicket(t, &l.tail, 2) // waiter 1 has taken its slot
	go func() {
		ready <- struct{}{}
		l.Lock(2)
		order <- 2
		l.Unlock(2)
	}()
	<-ready
	waitForTicket(t, &l.tail, 3)

	l.Unlock(0)
	if first := <-order; first != 1 {
		t.Fatalf("ALock served waiter %d first, want 1 (FIFO)", first)
	}
	if second := <-order; second != 2 {
		t.Fatalf("ALock served waiter %d second, want 2", second)
	}
}

func waitForTicket(t *testing.T, tail *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tail.Load() < want {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for waiter to enqueue")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTOLockTimeout(t *testing.T) {
	l := NewTOLock(4)
	l.Lock(0)
	start := time.Now()
	if l.TryLock(1, 20*time.Millisecond) {
		t.Fatal("TryLock succeeded while the lock was held")
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("TryLock returned after %v, before the patience window", elapsed)
	}
	l.Unlock(0)
	if !l.TryLock(1, time.Second) {
		t.Fatal("TryLock failed on a free lock")
	}
	l.Unlock(1)
}

func TestTOLockAbandonedNodeSkipped(t *testing.T) {
	// Thread 1 times out while waiting; thread 2, queued behind it, must
	// still acquire once the holder releases.
	l := NewTOLock(4)
	l.Lock(0)
	if l.TryLock(1, 10*time.Millisecond) {
		t.Fatal("unexpected acquisition")
	}
	acquired := make(chan struct{})
	go func() {
		l.Lock(2)
		close(acquired)
		l.Unlock(2)
	}()
	time.Sleep(10 * time.Millisecond) // let thread 2 enqueue
	l.Unlock(0)
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("successor never skipped the abandoned node")
	}
}

func TestBackoffPauseGrowsAndResets(t *testing.T) {
	b := NewBackoff(time.Microsecond, 8*time.Microsecond)
	if b.limit != time.Microsecond {
		t.Fatalf("initial limit = %v", b.limit)
	}
	for i := 0; i < 10; i++ {
		b.Pause()
	}
	if b.limit != 8*time.Microsecond {
		t.Fatalf("limit after pauses = %v, want cap %v", b.limit, 8*time.Microsecond)
	}
	b.Reset()
	if b.limit != time.Microsecond {
		t.Fatalf("limit after Reset = %v", b.limit)
	}
}

func TestBackoffInvalidWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid window did not panic")
		}
	}()
	NewBackoff(time.Millisecond, time.Microsecond)
}

func TestConstructorPanics(t *testing.T) {
	tests := []struct {
		name string
		f    func()
	}{
		{"alock", func() { NewALock(0) }},
		{"clh", func() { NewCLHLock(0) }},
		{"mcs", func() { NewMCSLock(0) }},
		{"tolock", func() { NewTOLock(0) }},
		{"backoff", func() { NewBackoffLock(0) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("constructor did not panic")
				}
			}()
			tt.f()
		})
	}
}

func TestCapacities(t *testing.T) {
	if got := NewALock(7).Capacity(); got != 7 {
		t.Errorf("ALock capacity = %d, want 7", got)
	}
	if got := NewCLHLock(5).Capacity(); got != 5 {
		t.Errorf("CLH capacity = %d, want 5", got)
	}
	if got := (&TASLock{}).Capacity(); got <= 0 {
		t.Errorf("TAS capacity = %d, want positive", got)
	}
}

func TestCompositeLock(t *testing.T) { exercise(t, NewCompositeLock(8), 8, 200) }
func TestHBOLock(t *testing.T)       { exercise(t, NewHBOLock(8, 2), 8, 300) }

func TestCompositeLockSolo(t *testing.T) {
	l := NewCompositeLock(2)
	for i := 0; i < 100; i++ {
		l.Lock(0)
		l.Unlock(0)
	}
}

func TestCompositeLockMoreThreadsThanWindow(t *testing.T) {
	// More threads than waiting slots: the overflow threads back off and
	// retry, but exclusion and progress must hold.
	exercise(t, NewCompositeLock(12), 12, 100)
}

func TestHBOLockClusters(t *testing.T) {
	l := NewHBOLock(4, 2)
	if l.clusterOf(0) == l.clusterOf(1) {
		t.Fatal("threads 0 and 1 should map to different clusters")
	}
	if l.clusterOf(0) != l.clusterOf(2) {
		t.Fatal("threads 0 and 2 should share a cluster")
	}
}

func TestCompositePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCompositeLock(0) },
		func() { NewHBOLock(0, 1) },
		func() { NewHBOLock(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad constructor did not panic")
				}
			}()
			f()
		}()
	}
}
