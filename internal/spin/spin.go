// Package spin implements the Chapter 7 spin locks: test-and-set (TAS),
// test-and-test-and-set (TTAS), TTAS with exponential backoff, the
// array-based ALock, the CLH and MCS queue locks, and the timeout-capable
// TOLock.
//
// The book parks per-thread queue nodes in ThreadLocal storage; Go has no
// goroutine-local storage by design, so each lock holds its per-thread
// state in arrays indexed by dense core.ThreadID handles, and spinning
// yields to the Go scheduler (runtime.Gosched) where the book's code would
// burn a hardware thread.
package spin

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"amp/internal/core"
)

// Lock is a spin lock whose operations identify the calling thread. IDs
// must be dense in [0, Capacity()) and at most one goroutine may use a
// given ID at a time. TAS-family locks ignore the ID; queue locks use it to
// find their per-thread node.
type Lock interface {
	Lock(me core.ThreadID)
	Unlock(me core.ThreadID)
	Capacity() int
}

// unbounded is the Capacity reported by locks with no per-thread state.
const unbounded = 1 << 30

// TASLock spins on getAndSet (Fig. 7.2). Every spin is a read-modify-write
// on the lock word, so under contention the interconnect saturates — the
// bad curve in experiment E1.
type TASLock struct {
	state atomic.Bool
}

var _ Lock = (*TASLock)(nil)

// Lock acquires the lock.
func (l *TASLock) Lock(core.ThreadID) {
	for l.state.Swap(true) {
		runtime.Gosched()
	}
}

// Unlock releases the lock.
func (l *TASLock) Unlock(core.ThreadID) {
	l.state.Store(false)
}

// Capacity reports that the lock supports any number of threads.
func (l *TASLock) Capacity() int { return unbounded }

// TTASLock spins on a plain read until the lock looks free, then pounces
// with getAndSet (Fig. 7.3). Spinning readers hit their local cache, so it
// degrades far more gracefully than TASLock.
type TTASLock struct {
	state atomic.Bool
}

var _ Lock = (*TTASLock)(nil)

// Lock acquires the lock.
func (l *TTASLock) Lock(core.ThreadID) {
	for {
		for l.state.Load() {
			runtime.Gosched()
		}
		if !l.state.Swap(true) {
			return
		}
	}
}

// Unlock releases the lock.
func (l *TTASLock) Unlock(core.ThreadID) {
	l.state.Store(false)
}

// Capacity reports that the lock supports any number of threads.
func (l *TTASLock) Capacity() int { return unbounded }

// Backoff is the truncated randomized exponential backoff helper of
// Fig. 7.5: each call sleeps a random duration up to the current limit,
// then doubles the limit up to the maximum. It is not safe for concurrent
// use; give each thread its own.
type Backoff struct {
	minDelay time.Duration
	maxDelay time.Duration
	limit    time.Duration
	rng      uint64 // xorshift state; cheap and allocation-free
}

// NewBackoff returns a backoff starting at minDelay and capped at maxDelay.
func NewBackoff(minDelay, maxDelay time.Duration) *Backoff {
	if minDelay <= 0 || maxDelay < minDelay {
		panic(fmt.Sprintf("spin: invalid backoff window [%v, %v]", minDelay, maxDelay))
	}
	return &Backoff{
		minDelay: minDelay,
		maxDelay: maxDelay,
		limit:    minDelay,
		rng:      uint64(time.Now().UnixNano()) | 1,
	}
}

// Pause sleeps for a random duration in [0, limit) and doubles the limit.
func (b *Backoff) Pause() {
	b.rng ^= b.rng << 13
	b.rng ^= b.rng >> 7
	b.rng ^= b.rng << 17
	d := time.Duration(b.rng % uint64(b.limit))
	if b.limit < b.maxDelay {
		b.limit *= 2
		if b.limit > b.maxDelay {
			b.limit = b.maxDelay
		}
	}
	if d == 0 {
		runtime.Gosched()
		return
	}
	time.Sleep(d)
}

// Reset restores the limit to the minimum delay, for reuse across
// acquisitions.
func (b *Backoff) Reset() { b.limit = b.minDelay }

// Default backoff window for BackoffLock; tuned for a scheduler-backed
// testbed rather than bare hardware.
const (
	defaultMinDelay = time.Microsecond
	defaultMaxDelay = 256 * time.Microsecond
)

// BackoffLock is TTAS plus randomized exponential backoff after a failed
// pounce (Fig. 7.6): losers get out of the winner's way. Per-thread backoff
// state is kept in an array indexed by thread ID.
type BackoffLock struct {
	state    atomic.Bool
	backoffs []*Backoff
}

var _ Lock = (*BackoffLock)(nil)

// NewBackoffLock returns a backoff lock for up to capacity threads with the
// default delay window.
func NewBackoffLock(capacity int) *BackoffLock {
	return NewBackoffLockWindow(capacity, defaultMinDelay, defaultMaxDelay)
}

// NewBackoffLockWindow returns a backoff lock with an explicit window.
func NewBackoffLockWindow(capacity int, minDelay, maxDelay time.Duration) *BackoffLock {
	if capacity <= 0 {
		panic(fmt.Sprintf("spin: backoff lock capacity must be positive, got %d", capacity))
	}
	l := &BackoffLock{backoffs: make([]*Backoff, capacity)}
	for i := range l.backoffs {
		l.backoffs[i] = NewBackoff(minDelay, maxDelay)
	}
	return l
}

// Lock acquires the lock, backing off after each failed attempt.
func (l *BackoffLock) Lock(me core.ThreadID) {
	backoff := l.backoffs[me]
	backoff.Reset()
	for {
		for l.state.Load() {
			runtime.Gosched()
		}
		if !l.state.Swap(true) {
			return
		}
		backoff.Pause()
	}
}

// Unlock releases the lock.
func (l *BackoffLock) Unlock(core.ThreadID) {
	l.state.Store(false)
}

// Capacity reports the thread bound.
func (l *BackoffLock) Capacity() int { return len(l.backoffs) }

// paddedBool spaces flags a cache line apart so waiters on adjacent ALock
// slots do not false-share (§7.5.1).
type paddedBool struct {
	v atomic.Bool
	_ [56]byte
}

// ALock is the array-based bounded queue lock (Fig. 7.7): threads take a
// ticket and spin on their own slot of a circular flag array; releasing
// sets the next slot.
type ALock struct {
	tail   atomic.Int64
	flag   []paddedBool
	mySlot []int64
	size   int
}

var _ Lock = (*ALock)(nil)

// NewALock returns an ALock serving up to capacity concurrent threads.
func NewALock(capacity int) *ALock {
	if capacity <= 0 {
		panic(fmt.Sprintf("spin: ALock capacity must be positive, got %d", capacity))
	}
	l := &ALock{
		flag:   make([]paddedBool, capacity),
		mySlot: make([]int64, capacity),
		size:   capacity,
	}
	l.flag[0].v.Store(true)
	return l
}

// Lock takes the next slot and spins until its flag goes up.
func (l *ALock) Lock(me core.ThreadID) {
	slot := l.tail.Add(1) - 1
	l.mySlot[me] = slot
	idx := int(slot) % l.size
	for !l.flag[idx].v.Load() {
		runtime.Gosched()
	}
}

// Unlock lowers this slot's flag and raises the successor's.
func (l *ALock) Unlock(me core.ThreadID) {
	slot := l.mySlot[me]
	l.flag[int(slot)%l.size].v.Store(false)
	l.flag[int(slot+1)%l.size].v.Store(true)
}

// Capacity reports the slot count.
func (l *ALock) Capacity() int { return l.size }

// clhNode is a CLH queue node; a thread spins on its predecessor's node.
type clhNode struct {
	locked atomic.Bool
}

// CLHLock is the Craig–Landin–Hagersten list-based queue lock (Fig. 7.9):
// implicit queue via a swapped tail pointer, spinning on the predecessor's
// node, recycling the predecessor's node for the next acquisition.
type CLHLock struct {
	tail   atomic.Pointer[clhNode]
	myNode []*clhNode
	myPred []*clhNode
}

var _ Lock = (*CLHLock)(nil)

// NewCLHLock returns a CLH lock for up to capacity threads.
func NewCLHLock(capacity int) *CLHLock {
	if capacity <= 0 {
		panic(fmt.Sprintf("spin: CLH capacity must be positive, got %d", capacity))
	}
	l := &CLHLock{
		myNode: make([]*clhNode, capacity),
		myPred: make([]*clhNode, capacity),
	}
	l.tail.Store(&clhNode{}) // an unlocked sentinel
	for i := range l.myNode {
		l.myNode[i] = &clhNode{}
	}
	return l
}

// Lock enqueues the caller's node and spins on the predecessor.
func (l *CLHLock) Lock(me core.ThreadID) {
	qnode := l.myNode[me]
	qnode.locked.Store(true)
	pred := l.tail.Swap(qnode)
	l.myPred[me] = pred
	for pred.locked.Load() {
		runtime.Gosched()
	}
}

// Unlock clears the caller's node and recycles the predecessor's.
func (l *CLHLock) Unlock(me core.ThreadID) {
	qnode := l.myNode[me]
	qnode.locked.Store(false)
	l.myNode[me] = l.myPred[me]
}

// Capacity reports the thread bound.
func (l *CLHLock) Capacity() int { return len(l.myNode) }

// mcsNode is an MCS queue node; a thread spins on its *own* node, which its
// predecessor will clear — the property that makes MCS suited to NUMA.
type mcsNode struct {
	locked atomic.Bool
	next   atomic.Pointer[mcsNode]
}

// MCSLock is the Mellor-Crummey–Scott queue lock (Fig. 7.10): explicit
// queue with local spinning.
type MCSLock struct {
	tail  atomic.Pointer[mcsNode]
	nodes []*mcsNode
}

var _ Lock = (*MCSLock)(nil)

// NewMCSLock returns an MCS lock for up to capacity threads.
func NewMCSLock(capacity int) *MCSLock {
	if capacity <= 0 {
		panic(fmt.Sprintf("spin: MCS capacity must be positive, got %d", capacity))
	}
	l := &MCSLock{nodes: make([]*mcsNode, capacity)}
	for i := range l.nodes {
		l.nodes[i] = &mcsNode{}
	}
	return l
}

// Lock appends the caller's node to the queue and spins on it if there is a
// predecessor.
func (l *MCSLock) Lock(me core.ThreadID) {
	qnode := l.nodes[me]
	pred := l.tail.Swap(qnode)
	if pred != nil {
		qnode.locked.Store(true)
		pred.next.Store(qnode)
		for qnode.locked.Load() {
			runtime.Gosched()
		}
	}
}

// Unlock hands the lock to the successor, waiting out the linking race if
// the successor has swapped the tail but not yet linked itself.
func (l *MCSLock) Unlock(me core.ThreadID) {
	qnode := l.nodes[me]
	if qnode.next.Load() == nil {
		if l.tail.CompareAndSwap(qnode, nil) {
			return
		}
		// A successor exists but has not linked in yet; wait for it.
		for qnode.next.Load() == nil {
			runtime.Gosched()
		}
	}
	succ := qnode.next.Load()
	succ.locked.Store(false)
	qnode.next.Store(nil)
}

// Capacity reports the thread bound.
func (l *MCSLock) Capacity() int { return len(l.nodes) }

// StdMutex adapts sync.Mutex to the Lock interface as the runtime baseline
// for experiment E1.
type StdMutex struct {
	mu sync.Mutex
}

var _ Lock = (*StdMutex)(nil)

// Lock acquires the mutex.
func (l *StdMutex) Lock(core.ThreadID) { l.mu.Lock() }

// Unlock releases the mutex.
func (l *StdMutex) Unlock(core.ThreadID) { l.mu.Unlock() }

// Capacity reports that the lock supports any number of threads.
func (l *StdMutex) Capacity() int { return unbounded }
