package spin

import (
	"runtime"
	"time"

	"sync/atomic"

	"amp/internal/core"
)

// toNode is a TOLock queue node. pred is nil while the owner waits or holds
// the lock, points to available when the owner released the lock, and
// points to the abandoning node's predecessor when the owner timed out.
type toNode struct {
	pred atomic.Pointer[toNode]
}

// available is the sentinel marking a released node.
var available = &toNode{}

// TOLock is the CLH variant with wait-free timeout (Fig. 7.12): a thread
// that gives up cannot unlink itself (its successor spins on it), so it
// marks its node "abandoned" by pointing pred at its own predecessor, and
// successors skip over abandoned nodes.
type TOLock struct {
	tail   atomic.Pointer[toNode]
	myNode []*toNode
}

// NewTOLock returns a TOLock for up to capacity threads.
func NewTOLock(capacity int) *TOLock {
	if capacity <= 0 {
		panic("spin: TOLock capacity must be positive")
	}
	return &TOLock{myNode: make([]*toNode, capacity)}
}

// TryLock attempts to acquire the lock within the patience window,
// returning whether it succeeded. On failure the caller holds nothing.
func (l *TOLock) TryLock(me core.ThreadID, patience time.Duration) bool {
	start := time.Now()
	qnode := &toNode{}
	l.myNode[me] = qnode
	pred := l.tail.Swap(qnode)
	if pred == nil || pred.pred.Load() == available {
		return true // lock was free
	}
	for time.Since(start) < patience {
		predPred := pred.pred.Load()
		if predPred == available {
			return true // predecessor released the lock to us
		}
		if predPred != nil {
			pred = predPred // predecessor abandoned; skip over it
		}
		runtime.Gosched()
	}
	// Timed out: try to unlink quietly if we are still the tail, else mark
	// the node abandoned so successors skip it.
	if !l.tail.CompareAndSwap(qnode, pred) {
		qnode.pred.Store(pred)
	}
	l.myNode[me] = nil
	return false
}

// Lock acquires with unbounded patience.
func (l *TOLock) Lock(me core.ThreadID) {
	for !l.TryLock(me, time.Hour) {
	}
}

// Unlock releases the lock: if no one is queued behind us, reset the tail;
// otherwise flag the node available for the successor.
func (l *TOLock) Unlock(me core.ThreadID) {
	qnode := l.myNode[me]
	if !l.tail.CompareAndSwap(qnode, nil) {
		qnode.pred.Store(available)
	}
	l.myNode[me] = nil
}

// Capacity reports the thread bound.
func (l *TOLock) Capacity() int { return len(l.myNode) }

var _ Lock = (*TOLock)(nil)
