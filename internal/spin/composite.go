package spin

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"amp/internal/core"
)

// Composite lock (Fig. 7.13–7.16): the best of backoff and queueing. Only a
// small, fixed window of threads queue (keeping handoff cheap); everyone
// else backs off trying to get into the window. Each waiting slot is a
// node in a short TOLock-style implicit queue.

// compositeState is a waiting node's lifecycle state.
type compositeState int32

const (
	nodeFree compositeState = iota
	nodeWaiting
	nodeReleased
	nodeAborted
)

// compositeNode is one slot of the waiting window.
type compositeNode struct {
	state atomic.Int32
	pred  atomic.Pointer[compositeNode]
}

// CompositeLock combines backoff (to get one of `size` waiting slots) with
// a queue of at most `size` waiting threads. The tail pointer packs the
// node index and a version stamp to avoid ABA on recycled nodes.
type CompositeLock struct {
	nodes    []compositeNode
	tail     atomic.Uint64 // stamp<<32 | (index+1); 0 = empty
	myNode   []*compositeNode
	minDelay time.Duration
	maxDelay time.Duration
}

var _ Lock = (*CompositeLock)(nil)

// compositeWindow is the waiting-window size; the book uses a small
// constant independent of thread count.
const compositeWindow = 4

// NewCompositeLock returns a composite lock for up to capacity threads.
func NewCompositeLock(capacity int) *CompositeLock {
	if capacity <= 0 {
		panic(fmt.Sprintf("spin: composite lock capacity must be positive, got %d", capacity))
	}
	return &CompositeLock{
		nodes:    make([]compositeNode, compositeWindow),
		myNode:   make([]*compositeNode, capacity),
		minDelay: defaultMinDelay,
		maxDelay: defaultMaxDelay,
	}
}

func (l *CompositeLock) packTail(node *compositeNode, stamp uint32) uint64 {
	if node == nil {
		return uint64(stamp) << 32
	}
	for i := range l.nodes {
		if &l.nodes[i] == node {
			return uint64(stamp)<<32 | uint64(i+1)
		}
	}
	panic("spin: composite node not in window")
}

func (l *CompositeLock) unpackTail(v uint64) (*compositeNode, uint32) {
	idx := uint32(v)
	stamp := uint32(v >> 32)
	if idx == 0 {
		return nil, stamp
	}
	return &l.nodes[idx-1], stamp
}

// Lock acquires the lock: back off into a free window slot, splice into the
// short queue, and spin on the predecessor.
func (l *CompositeLock) Lock(me core.ThreadID) {
	backoff := NewBackoff(l.minDelay, l.maxDelay)
	for {
		if node := l.tryAcquireSlot(backoff); node != nil {
			if l.spliceAndWait(me, node, backoff) {
				return
			}
		}
		backoff.Pause()
	}
}

// tryAcquireSlot claims a random-ish free node from the window via CAS,
// backing off on failure a bounded number of times before giving up so the
// caller can restart.
func (l *CompositeLock) tryAcquireSlot(backoff *Backoff) *compositeNode {
	start := int(time.Now().UnixNano()) % compositeWindow
	for attempt := 0; attempt < 8; attempt++ {
		node := &l.nodes[(start+attempt)%compositeWindow]
		if node.state.CompareAndSwap(int32(nodeFree), int32(nodeWaiting)) {
			return node
		}
		backoff.Pause()
	}
	return nil
}

// spliceAndWait enqueues the node behind the current tail and waits for the
// predecessor chain to release it. It reports false when the wait must be
// abandoned (never in this always-patient variant; the structure mirrors
// the book's timeout-capable original).
func (l *CompositeLock) spliceAndWait(me core.ThreadID, node *compositeNode, backoff *Backoff) bool {
	// Splice in: swap the tail to point at our node.
	var predNode *compositeNode
	for {
		old := l.tail.Load()
		pred, stamp := l.unpackTail(old)
		if l.tail.CompareAndSwap(old, l.packTail(node, stamp+1)) {
			predNode = pred
			break
		}
	}
	// Wait for the predecessor (if any) to release us.
	if predNode != nil {
		node.pred.Store(predNode)
		for compositeState(predNode.state.Load()) != nodeReleased {
			runtime.Gosched()
		}
		predNode.state.Store(int32(nodeFree)) // recycle predecessor's slot
		node.pred.Store(nil)
	}
	l.myNode[me] = node
	return true
}

// Unlock releases the lock: if we are still the tail, detach and free our
// node; otherwise mark it released for the successor to recycle.
func (l *CompositeLock) Unlock(me core.ThreadID) {
	node := l.myNode[me]
	l.myNode[me] = nil
	old := l.tail.Load()
	tailNode, stamp := l.unpackTail(old)
	if tailNode == node && l.tail.CompareAndSwap(old, l.packTail(nil, stamp+1)) {
		node.state.Store(int32(nodeFree))
		return
	}
	node.state.Store(int32(nodeReleased))
}

// Capacity reports the thread bound.
func (l *CompositeLock) Capacity() int { return len(l.myNode) }

// HBOLock is the hierarchical backoff lock (§7.8.2): a test-and-set lock
// whose backoff is cluster-sensitive — threads in the same cluster as the
// lock holder back off briefly (the lock is likely to stay local), remote
// threads back off longer. On this testbed clusters are simulated by
// thread ID parity, standing in for NUMA node identity.
type HBOLock struct {
	state    atomic.Int32 // 0 = free; otherwise holder's cluster + 1
	clusters int
	capacity int
}

var _ Lock = (*HBOLock)(nil)

// Cluster backoff windows: short when the holder is local, long when
// remote (the book's LOCAL_MIN/MAX vs REMOTE_MIN/MAX).
const (
	hboLocalMin  = time.Microsecond
	hboLocalMax  = 32 * time.Microsecond
	hboRemoteMin = 4 * time.Microsecond
	hboRemoteMax = 512 * time.Microsecond
)

// NewHBOLock returns a hierarchical backoff lock for up to capacity
// threads spread over the given cluster count.
func NewHBOLock(capacity, clusters int) *HBOLock {
	if capacity <= 0 || clusters <= 0 {
		panic(fmt.Sprintf("spin: invalid HBO lock (capacity=%d, clusters=%d)", capacity, clusters))
	}
	return &HBOLock{clusters: clusters, capacity: capacity}
}

// clusterOf maps a thread to its simulated cluster.
func (l *HBOLock) clusterOf(me core.ThreadID) int32 {
	return int32(int(me)%l.clusters) + 1
}

// Lock acquires the lock with cluster-sensitive backoff.
func (l *HBOLock) Lock(me core.ThreadID) {
	myCluster := l.clusterOf(me)
	localBackoff := NewBackoff(hboLocalMin, hboLocalMax)
	remoteBackoff := NewBackoff(hboRemoteMin, hboRemoteMax)
	for {
		if l.state.CompareAndSwap(0, myCluster) {
			return
		}
		holder := l.state.Load()
		if holder == myCluster {
			localBackoff.Pause()
		} else {
			remoteBackoff.Pause()
		}
	}
}

// Unlock releases the lock.
func (l *HBOLock) Unlock(core.ThreadID) {
	l.state.Store(0)
}

// Capacity reports the thread bound.
func (l *HBOLock) Capacity() int { return l.capacity }
