package list

import "sync"

// fineNode carries its own lock; next is only read or written while the
// node is locked, so it needs no atomics.
type fineNode struct {
	mu   sync.Mutex
	key  int
	next *fineNode
}

// FineList locks hand-over-hand (Fig. 9.6): traversal holds at most two
// node locks at a time, acquiring the next before releasing the earlier.
// Disjoint operations on distant keys proceed in parallel, but every
// operation still walks — and locks — the whole prefix.
type FineList struct {
	head *fineNode
}

var _ Set = (*FineList)(nil)

// NewFineList returns an empty set.
func NewFineList() *FineList {
	tail := &fineNode{key: KeyMax}
	return &FineList{head: &fineNode{key: KeyMin, next: tail}}
}

// locate returns (pred, curr) with curr.key >= x, holding both locks. The
// caller must unlock both.
func (l *FineList) locate(x int) (pred, curr *fineNode) {
	pred = l.head
	pred.mu.Lock()
	curr = pred.next
	curr.mu.Lock()
	for curr.key < x {
		pred.mu.Unlock()
		pred = curr
		curr = curr.next
		curr.mu.Lock()
	}
	return pred, curr
}

// Add inserts x, reporting whether it was absent.
func (l *FineList) Add(x int) bool {
	checkKey(x)
	pred, curr := l.locate(x)
	defer pred.mu.Unlock()
	defer curr.mu.Unlock()
	if curr.key == x {
		return false
	}
	pred.next = &fineNode{key: x, next: curr}
	return true
}

// Remove deletes x, reporting whether it was present.
func (l *FineList) Remove(x int) bool {
	checkKey(x)
	pred, curr := l.locate(x)
	defer pred.mu.Unlock()
	defer curr.mu.Unlock()
	if curr.key != x {
		return false
	}
	pred.next = curr.next
	return true
}

// Contains reports membership of x.
func (l *FineList) Contains(x int) bool {
	checkKey(x)
	pred, curr := l.locate(x)
	defer pred.mu.Unlock()
	defer curr.mu.Unlock()
	return curr.key == x
}
