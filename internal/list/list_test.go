package list

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"amp/internal/core"
)

// implementations returns a fresh instance of every set in this package.
func implementations() map[string]func() Set {
	return map[string]func() Set{
		"coarse":     func() Set { return NewCoarseList() },
		"fine":       func() Set { return NewFineList() },
		"optimistic": func() Set { return NewOptimisticList() },
		"lazy":       func() Set { return NewLazyList() },
		"lockfree":   func() Set { return NewLockFreeList() },
		"epoch":      func() Set { return NewEpochList() },
	}
}

func TestSequentialBasics(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if s.Contains(5) {
				t.Fatal("empty set contains 5")
			}
			if !s.Add(5) {
				t.Fatal("first Add(5) = false")
			}
			if s.Add(5) {
				t.Fatal("second Add(5) = true")
			}
			if !s.Contains(5) {
				t.Fatal("Contains(5) after Add = false")
			}
			if !s.Remove(5) {
				t.Fatal("Remove(5) = false")
			}
			if s.Remove(5) {
				t.Fatal("second Remove(5) = true")
			}
			if s.Contains(5) {
				t.Fatal("Contains(5) after Remove = true")
			}
		})
	}
}

func TestSequentialOrderedInsertions(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			keys := []int{5, 1, 9, -3, 7, 0, 1 << 40, -(1 << 40)}
			for _, k := range keys {
				if !s.Add(k) {
					t.Fatalf("Add(%d) = false", k)
				}
			}
			for _, k := range keys {
				if !s.Contains(k) {
					t.Fatalf("Contains(%d) = false", k)
				}
			}
			if s.Contains(2) {
				t.Fatal("Contains(2) = true for absent key")
			}
		})
	}
}

// TestDifferentialAgainstMap replays a pseudo-random op sequence on each
// implementation and a reference map, comparing every result.
func TestDifferentialAgainstMap(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			ref := make(map[int]bool)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 4000; i++ {
				k := rng.Intn(64)
				switch rng.Intn(3) {
				case 0:
					want := !ref[k]
					if got := s.Add(k); got != want {
						t.Fatalf("op %d: Add(%d) = %v, want %v", i, k, got, want)
					}
					ref[k] = true
				case 1:
					want := ref[k]
					if got := s.Remove(k); got != want {
						t.Fatalf("op %d: Remove(%d) = %v, want %v", i, k, got, want)
					}
					delete(ref, k)
				default:
					if got := s.Contains(k); got != ref[k] {
						t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, ref[k])
					}
				}
			}
		})
	}
}

// TestConcurrentSetSemantics hammers each set from several goroutines and
// then checks the accounting invariant: for every key,
// successful adds − successful removes ∈ {0, 1} and equals final membership.
func TestConcurrentSetSemantics(t *testing.T) {
	const (
		workers = 6
		iters   = 800
		keys    = 32
	)
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var adds, removes [keys]atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						k := rng.Intn(keys)
						switch rng.Intn(3) {
						case 0:
							if s.Add(k) {
								adds[k].Add(1)
							}
						case 1:
							if s.Remove(k) {
								removes[k].Add(1)
							}
						default:
							s.Contains(k)
						}
					}
				}(int64(w + 1))
			}
			wg.Wait()
			for k := 0; k < keys; k++ {
				diff := adds[k].Load() - removes[k].Load()
				if diff != 0 && diff != 1 {
					t.Fatalf("key %d: %d successful adds, %d successful removes",
						k, adds[k].Load(), removes[k].Load())
				}
				if got, want := s.Contains(k), diff == 1; got != want {
					t.Fatalf("key %d: Contains = %v, want %v", k, got, want)
				}
			}
		})
	}
}

// TestLinearizable records a small concurrent history against each set and
// feeds it to the Chapter 3 checker.
func TestLinearizable(t *testing.T) {
	const workers = 3
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			rec := core.NewRecorder()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(me core.ThreadID) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(me) + 100))
					for i := 0; i < 6; i++ {
						k := rng.Intn(3)
						switch rng.Intn(3) {
						case 0:
							p := rec.Call(me, "add", k)
							p.Done(s.Add(k))
						case 1:
							p := rec.Call(me, "remove", k)
							p.Done(s.Remove(k))
						default:
							p := rec.Call(me, "contains", k)
							p.Done(s.Contains(k))
						}
					}
				}(core.ThreadID(w))
			}
			wg.Wait()
			res := core.Check(core.SetModel(), rec.History())
			if res.Exhausted {
				t.Skip("checker budget exhausted")
			}
			if !res.Linearizable {
				t.Fatalf("%s produced a non-linearizable history:\n%v", name, rec.History())
			}
		})
	}
}

// TestLazyContainsLockFreedom: Contains must complete even while an updater
// holds node locks (wait-freedom of the lazy Contains).
func TestLazyContainsDuringLockedWindow(t *testing.T) {
	l := NewLazyList()
	l.Add(1)
	l.Add(3)
	// Manually lock the window around key 2 as an updater would.
	pred, curr := l.search(2)
	pred.mu.Lock()
	curr.mu.Lock()
	done := make(chan bool, 1)
	go func() { done <- l.Contains(1) }()
	if !<-done {
		t.Fatal("Contains(1) = false")
	}
	pred.mu.Unlock()
	curr.mu.Unlock()
}

// TestLockFreeTraversalSnipsMarkedNodes: a marked-but-not-unlinked node
// must be invisible and get physically removed by the next find.
func TestLockFreeTraversalSnipsMarkedNodes(t *testing.T) {
	l := NewLockFreeList()
	l.Add(1)
	l.Add(2)
	l.Add(3)
	// Mark node 2 by hand (logical deletion without physical unlink).
	_, curr := l.find(2)
	if curr.key != 2 {
		t.Fatalf("find(2) landed on %d", curr.key)
	}
	succ := curr.next.Load()
	if !curr.next.CompareAndSwap(succ, &lfRef{node: succ.node, marked: true}) {
		t.Fatal("mark CAS failed in quiescent state")
	}
	if l.Contains(2) {
		t.Fatal("marked node still visible to Contains")
	}
	// find(3) must traverse past 2 and snip it.
	pred, curr := l.find(3)
	if curr.key != 3 {
		t.Fatalf("find(3) landed on %d", curr.key)
	}
	if pred.key != 1 {
		t.Fatalf("marked node not snipped: pred of 3 is %d, want 1", pred.key)
	}
}

func TestSentinelKeyPanics(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer func() {
				if recover() == nil {
					t.Fatal("sentinel key did not panic")
				}
			}()
			s.Add(KeyMax)
		})
	}
}

// TestQuickSetEquivalence: property test — every implementation agrees with
// the reference map on arbitrary op strings.
func TestQuickSetEquivalence(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []uint16) bool {
				s := mk()
				ref := make(map[int]bool)
				for _, code := range ops {
					k := int(code % 16)
					switch (code / 16) % 3 {
					case 0:
						if s.Add(k) != !ref[k] {
							return false
						}
						ref[k] = true
					case 1:
						if s.Remove(k) != ref[k] {
							return false
						}
						delete(ref, k)
					default:
						if s.Contains(k) != ref[k] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
