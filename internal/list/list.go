// Package list implements the Chapter 9 list-based concurrent sets, the
// book's running example of progressively finer synchronization:
//
//   - CoarseList: one lock around a sorted linked list (Fig. 9.4)
//   - FineList: hand-over-hand (chained) locking (Fig. 9.6)
//   - OptimisticList: lock-free search, lock-and-validate update (Fig. 9.11)
//   - LazyList: logical deletion marks, wait-free Contains (Fig. 9.16)
//   - LockFreeList: the Harris–Michael nonblocking list (Fig. 9.24)
//
// All sets store int keys strictly between KeyMin and KeyMax, which serve
// as the −∞/+∞ sentinel keys of the book's head and tail nodes. The book's
// AtomicMarkableReference is rendered as an immutable (successor, marked)
// pair behind an atomic.Pointer: replacing the pair is exactly the book's
// compareAndSet on (reference, mark).
package list

import (
	"fmt"
	"math"
)

// Set is the concurrent integer-set abstraction shared by Chapters 9, 13
// and 14. Add and Remove report whether they changed the set.
type Set interface {
	Add(x int) bool
	Remove(x int) bool
	Contains(x int) bool
}

// Key bounds: usable keys lie strictly inside (KeyMin, KeyMax); the bounds
// themselves are the sentinel keys.
const (
	KeyMin = math.MinInt64
	KeyMax = math.MaxInt64
)

func checkKey(x int) {
	if x == KeyMin || x == KeyMax {
		panic(fmt.Sprintf("list: key %d collides with a sentinel; keys must lie strictly inside (KeyMin, KeyMax)", x))
	}
}
