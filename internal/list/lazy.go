package list

import (
	"sync"
	"sync/atomic"
)

// lazyNode adds a logical-deletion mark to the optimistic node.
type lazyNode struct {
	mu     sync.Mutex
	key    int
	marked atomic.Bool
	next   atomic.Pointer[lazyNode]
}

// LazyList (Fig. 9.16) splits removal into a logical step (set the mark)
// and a physical step (unlink). Validation no longer re-traverses: it just
// checks that neither window node is marked and that they are still
// adjacent. Contains is wait-free — a single unsynchronized traversal.
type LazyList struct {
	head *lazyNode
}

var _ Set = (*LazyList)(nil)

// NewLazyList returns an empty set.
func NewLazyList() *LazyList {
	tail := &lazyNode{key: KeyMax}
	head := &lazyNode{key: KeyMin}
	head.next.Store(tail)
	return &LazyList{head: head}
}

func (l *LazyList) search(x int) (pred, curr *lazyNode) {
	pred = l.head
	curr = pred.next.Load()
	for curr.key < x {
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

// validate checks the locked window is still intact: neither node marked,
// and pred still points at curr.
func validateLazy(pred, curr *lazyNode) bool {
	return !pred.marked.Load() && !curr.marked.Load() && pred.next.Load() == curr
}

// Add inserts x, reporting whether it was absent.
func (l *LazyList) Add(x int) bool {
	checkKey(x)
	for {
		pred, curr := l.search(x)
		pred.mu.Lock()
		curr.mu.Lock()
		if validateLazy(pred, curr) {
			defer pred.mu.Unlock()
			defer curr.mu.Unlock()
			if curr.key == x {
				return false
			}
			node := &lazyNode{key: x}
			node.next.Store(curr)
			pred.next.Store(node)
			return true
		}
		pred.mu.Unlock()
		curr.mu.Unlock()
	}
}

// Remove deletes x: mark first (the linearization point), then unlink.
func (l *LazyList) Remove(x int) bool {
	checkKey(x)
	for {
		pred, curr := l.search(x)
		pred.mu.Lock()
		curr.mu.Lock()
		if validateLazy(pred, curr) {
			defer pred.mu.Unlock()
			defer curr.mu.Unlock()
			if curr.key != x {
				return false
			}
			curr.marked.Store(true)           // logical removal
			pred.next.Store(curr.next.Load()) // physical removal
			return true
		}
		pred.mu.Unlock()
		curr.mu.Unlock()
	}
}

// Contains is wait-free: one traversal, no locks, no retries (Fig. 9.17).
func (l *LazyList) Contains(x int) bool {
	checkKey(x)
	curr := l.head
	for curr.key < x {
		curr = curr.next.Load()
	}
	return curr.key == x && !curr.marked.Load()
}
