package list

import (
	"testing"
)

// White-box tests for the Harris–Michael list: a remover that stalls after
// the logical mark must not block anyone; any traversal finishes its job.

// markOnly performs the logical half of a Remove and "stalls" before the
// physical unlink.
func markOnly(t *testing.T, l *LockFreeList, key int) {
	t.Helper()
	_, curr := l.find(key)
	if curr.key != key {
		t.Fatalf("key %d not present for markOnly", key)
	}
	succ := curr.next.Load()
	if succ.marked {
		t.Fatalf("key %d already marked", key)
	}
	if !curr.next.CompareAndSwap(succ, &lfRef{node: succ.node, marked: true}) {
		t.Fatalf("mark CAS failed in quiescent state")
	}
}

func TestStalledRemoverDoesNotBlockAdd(t *testing.T) {
	l := NewLockFreeList()
	for _, k := range []int{10, 20, 30} {
		l.Add(k)
	}
	markOnly(t, l, 20)
	// Adding a key that lands right at the marked node's window must snip
	// it and succeed.
	if !l.Add(15) {
		t.Fatal("Add(15) failed near a marked node")
	}
	if !l.Add(25) {
		t.Fatal("Add(25) failed where the marked node used to be")
	}
	if l.Contains(20) {
		t.Fatal("marked key still visible")
	}
	for _, k := range []int{10, 15, 25, 30} {
		if !l.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestStalledRemoverDoesNotBlockRemove(t *testing.T) {
	l := NewLockFreeList()
	for _, k := range []int{1, 2, 3} {
		l.Add(k)
	}
	markOnly(t, l, 2)
	if !l.Remove(3) {
		t.Fatal("Remove(3) failed past a marked node")
	}
	if l.Remove(2) {
		t.Fatal("Remove(2) returned true for an already-marked key")
	}
	if !l.Contains(1) || l.Contains(2) || l.Contains(3) {
		t.Fatal("final membership wrong")
	}
}

func TestRemoveOfMarkedKeyReturnsFalse(t *testing.T) {
	// The logical mark is the linearization point: once marked, the key is
	// gone, and a second remover must lose.
	l := NewLockFreeList()
	l.Add(5)
	markOnly(t, l, 5)
	if l.Remove(5) {
		t.Fatal("second Remove(5) won after the mark")
	}
	if !l.Add(5) {
		t.Fatal("re-Add(5) failed after marked removal")
	}
	if !l.Contains(5) {
		t.Fatal("re-added key missing")
	}
}
