package list

import (
	"sync"
	"sync/atomic"
)

// optNode's next pointer is atomic because unlocked traversals read it
// while locked updaters write it.
type optNode struct {
	mu   sync.Mutex
	key  int
	next atomic.Pointer[optNode]
}

// OptimisticList searches without locks, then locks the (pred, curr) window
// and validates that pred is still reachable and still points to curr
// (Fig. 9.11). Validation re-traverses from the head, which is cheaper than
// locking the whole prefix because it does not force other threads to wait.
// Nodes removed from the list are never recycled while referenced — the Go
// GC plays the role the book assigns to Java's collector.
type OptimisticList struct {
	head *optNode
}

var _ Set = (*OptimisticList)(nil)

// NewOptimisticList returns an empty set.
func NewOptimisticList() *OptimisticList {
	tail := &optNode{key: KeyMax}
	head := &optNode{key: KeyMin}
	head.next.Store(tail)
	return &OptimisticList{head: head}
}

// search returns (pred, curr) with curr.key >= x, without locking.
func (l *OptimisticList) search(x int) (pred, curr *optNode) {
	pred = l.head
	curr = pred.next.Load()
	for curr.key < x {
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

// validate re-traverses from the head and confirms pred is reachable and
// still precedes curr. Both nodes must be locked by the caller.
func (l *OptimisticList) validate(pred, curr *optNode) bool {
	node := l.head
	for node.key <= pred.key {
		if node == pred {
			return pred.next.Load() == curr
		}
		node = node.next.Load()
	}
	return false
}

// Add inserts x, reporting whether it was absent.
func (l *OptimisticList) Add(x int) bool {
	checkKey(x)
	for {
		pred, curr := l.search(x)
		pred.mu.Lock()
		curr.mu.Lock()
		if l.validate(pred, curr) {
			defer pred.mu.Unlock()
			defer curr.mu.Unlock()
			if curr.key == x {
				return false
			}
			node := &optNode{key: x}
			node.next.Store(curr)
			pred.next.Store(node)
			return true
		}
		pred.mu.Unlock()
		curr.mu.Unlock()
	}
}

// Remove deletes x, reporting whether it was present.
func (l *OptimisticList) Remove(x int) bool {
	checkKey(x)
	for {
		pred, curr := l.search(x)
		pred.mu.Lock()
		curr.mu.Lock()
		if l.validate(pred, curr) {
			defer pred.mu.Unlock()
			defer curr.mu.Unlock()
			if curr.key != x {
				return false
			}
			pred.next.Store(curr.next.Load())
			return true
		}
		pred.mu.Unlock()
		curr.mu.Unlock()
	}
}

// Contains reports membership of x. Like the book's version it locks the
// window to rule out acting on an unlinked node.
func (l *OptimisticList) Contains(x int) bool {
	checkKey(x)
	for {
		pred, curr := l.search(x)
		pred.mu.Lock()
		curr.mu.Lock()
		if l.validate(pred, curr) {
			found := curr.key == x
			pred.mu.Unlock()
			curr.mu.Unlock()
			return found
		}
		pred.mu.Unlock()
		curr.mu.Unlock()
	}
}
