package list

import "sync"

// coarseNode is a plain sorted-list node; all access is under the set lock.
type coarseNode struct {
	key  int
	next *coarseNode
}

// CoarseList guards a sorted singly linked list with one mutex (Fig. 9.4).
// Simple and correct; every operation serializes, so it is the baseline
// that every other implementation in this package is measured against.
type CoarseList struct {
	mu   sync.Mutex
	head *coarseNode
}

var _ Set = (*CoarseList)(nil)

// NewCoarseList returns an empty set.
func NewCoarseList() *CoarseList {
	tail := &coarseNode{key: KeyMax}
	return &CoarseList{head: &coarseNode{key: KeyMin, next: tail}}
}

// locate returns the first node pair (pred, curr) with curr.key >= x.
func (l *CoarseList) locate(x int) (pred, curr *coarseNode) {
	pred = l.head
	curr = pred.next
	for curr.key < x {
		pred = curr
		curr = curr.next
	}
	return pred, curr
}

// Add inserts x, reporting whether it was absent.
func (l *CoarseList) Add(x int) bool {
	checkKey(x)
	l.mu.Lock()
	defer l.mu.Unlock()
	pred, curr := l.locate(x)
	if curr.key == x {
		return false
	}
	pred.next = &coarseNode{key: x, next: curr}
	return true
}

// Remove deletes x, reporting whether it was present.
func (l *CoarseList) Remove(x int) bool {
	checkKey(x)
	l.mu.Lock()
	defer l.mu.Unlock()
	pred, curr := l.locate(x)
	if curr.key != x {
		return false
	}
	pred.next = curr.next
	return true
}

// Contains reports membership of x.
func (l *CoarseList) Contains(x int) bool {
	checkKey(x)
	l.mu.Lock()
	defer l.mu.Unlock()
	_, curr := l.locate(x)
	return curr.key == x
}
