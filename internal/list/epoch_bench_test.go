package list

import "testing"

// BenchmarkEpochListSteadyAddRemove is the allocation gate for the epoch
// list: once the node and ref pools are warm, an Add/Remove pair over a
// small key range must recycle instead of allocate.
func BenchmarkEpochListSteadyAddRemove(b *testing.B) {
	l := NewEpochList()
	for i := 0; i < 2048; i++ {
		l.Add(i % 64)
		l.Remove(i % 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Add(i % 64)
		l.Remove(i % 64)
	}
}

// BenchmarkLockFreeListAddRemove is the GC-backed baseline.
func BenchmarkLockFreeListAddRemove(b *testing.B) {
	l := NewLockFreeList()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Add(i % 64)
		l.Remove(i % 64)
	}
}
