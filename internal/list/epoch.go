package list

import (
	"sync/atomic"

	"amp/internal/epoch"
)

// Pool indices of EpochList's reclamation domain: nodes and the
// immutable (successor, marked) pairs are recycled separately.
const (
	elNodePool = 0
	elRefPool  = 1
)

// elRef is the (successor, marked) pair of §9.8, immutable while
// published. Replaced pairs are retired to the epoch domain and mutated
// only after their grace period, pre-publication.
type elRef struct {
	node   *elNode
	marked bool
}

type elNode struct {
	key  int
	next atomic.Pointer[elRef]
}

// EpochList is the Harris–Michael nonblocking list (Fig. 9.24) with
// epoch-based reclamation: where LockFreeList leans on the GC for both
// ABA safety and memory, EpochList pins every operation to an
// epoch.Domain slot and recycles unlinked nodes *and* the per-CAS
// (successor, marked) pairs, so steady-state Add/Remove churn allocates
// nothing. The retirement protocol: whoever wins the CAS that replaces
// a published pair retires the displaced pair, and whoever wins the
// snip CAS that unlinks a marked node additionally retires the node and
// its final marked pair — each object has exactly one such winner.
type EpochList struct {
	dom  *epoch.Domain
	head *elNode
}

var _ Set = (*EpochList)(nil)

// NewEpochList returns an empty set with its own reclamation domain.
func NewEpochList() *EpochList {
	tail := &elNode{key: KeyMax}
	tail.next.Store(&elRef{})
	head := &elNode{key: KeyMin}
	head.next.Store(&elRef{node: tail})
	return &EpochList{dom: epoch.NewDomain(2), head: head}
}

// Domain exposes the reclamation domain for diagnostics and the server's
// epoch-pin leak tests.
func (l *EpochList) Domain() *epoch.Domain { return l.dom }

// ref returns a recycled (or fresh) pair set to (n, marked). The pair
// is exclusively owned until published by a successful CAS.
func (l *EpochList) ref(s *epoch.Slot, n *elNode, marked bool) *elRef {
	if r := s.Alloc(elRefPool); r != nil {
		ref := r.(*elRef)
		ref.node, ref.marked = n, marked
		return ref
	}
	return &elRef{node: n, marked: marked}
}

// node returns a recycled (or fresh) node keyed x; its next field is
// overwritten by the caller before publication.
func (l *EpochList) node(s *epoch.Slot, x int) *elNode {
	if r := s.Alloc(elNodePool); r != nil {
		n := r.(*elNode)
		n.key = x
		return n
	}
	return &elNode{key: x}
}

// find returns a window (pred, curr) with curr.key >= x and no marked
// nodes between pred and curr, snipping out marked nodes it passes.
// A successful snip retires the displaced predecessor pair, the
// unlinked node, and the node's final marked pair.
func (l *EpochList) find(s *epoch.Slot, x int) (pred, curr *elNode) {
retry:
	for {
		pred = l.head
		curr = pred.next.Load().node
		for {
			succRef := curr.next.Load()
			for succRef.marked {
				expected := pred.next.Load()
				if expected.node != curr || expected.marked {
					continue retry
				}
				snip := l.ref(s, succRef.node, false)
				if !pred.next.CompareAndSwap(expected, snip) {
					s.Free(elRefPool, snip)
					continue retry
				}
				s.Retire(elRefPool, expected)
				s.Retire(elRefPool, succRef)
				s.Retire(elNodePool, curr)
				curr = succRef.node
				succRef = curr.next.Load()
			}
			if curr.key >= x {
				return pred, curr
			}
			pred = curr
			curr = succRef.node
		}
	}
}

// Add inserts x, reporting whether it was absent.
func (l *EpochList) Add(x int) bool {
	checkKey(x)
	s := l.dom.Pin()
	defer l.dom.Unpin(s)
	for {
		pred, curr := l.find(s, x)
		if curr.key == x {
			return false
		}
		expected := pred.next.Load()
		if expected.node != curr || expected.marked {
			continue
		}
		node := l.node(s, x)
		node.next.Store(l.ref(s, curr, false))
		install := l.ref(s, node, false)
		if pred.next.CompareAndSwap(expected, install) {
			s.Retire(elRefPool, expected)
			return true
		}
		// Nothing was published: everything goes straight back.
		s.Free(elRefPool, install)
		s.Free(elRefPool, node.next.Load())
		s.Free(elNodePool, node)
	}
}

// Remove deletes x. The successful mark CAS is the linearization point;
// unlinking is a best-effort courtesy (find will finish the job — and
// the retirement — otherwise).
func (l *EpochList) Remove(x int) bool {
	checkKey(x)
	s := l.dom.Pin()
	defer l.dom.Unpin(s)
	for {
		pred, curr := l.find(s, x)
		if curr.key != x {
			return false
		}
		succRef := curr.next.Load()
		if succRef.marked {
			continue // someone else is removing it; re-find
		}
		marked := l.ref(s, succRef.node, true)
		if !curr.next.CompareAndSwap(succRef, marked) {
			s.Free(elRefPool, marked)
			continue
		}
		s.Retire(elRefPool, succRef)
		if expected := pred.next.Load(); expected.node == curr && !expected.marked {
			snip := l.ref(s, succRef.node, false)
			if pred.next.CompareAndSwap(expected, snip) {
				s.Retire(elRefPool, expected)
				s.Retire(elRefPool, marked)
				s.Retire(elNodePool, curr)
			} else {
				s.Free(elRefPool, snip)
			}
		}
		return true
	}
}

// Range calls f for each member in ascending order until f returns
// false, skipping logically deleted nodes. Like Contains it only
// traverses, pinned for the duration; callers needing a consistent cut
// must quiesce writers (the server ranges under the shard combiner
// lock).
func (l *EpochList) Range(f func(x int) bool) {
	s := l.dom.Pin()
	defer l.dom.Unpin(s)
	curr := l.head.next.Load().node
	for curr.key < KeyMax {
		ref := curr.next.Load()
		if !ref.marked && !f(curr.key) {
			return
		}
		curr = ref.node
	}
}

// Contains traverses once and reports (found ∧ unmarked). It snips
// nothing but still pins: the traversal chases pointers that concurrent
// removers are retiring.
func (l *EpochList) Contains(x int) bool {
	checkKey(x)
	s := l.dom.Pin()
	defer l.dom.Unpin(s)
	curr := l.head
	for curr.key < x {
		curr = curr.next.Load().node
	}
	found := curr.key == x && !curr.next.Load().marked
	return found
}
