package list

import "sync/atomic"

// lfRef is an immutable (successor, marked) pair — the Go rendering of the
// book's AtomicMarkableReference. A node's next field holds a pointer to
// one of these; changing successor or mark means CASing in a fresh pair, so
// a single CAS atomically validates and updates both, exactly as the book
// requires (§9.8).
type lfRef struct {
	node   *lfNode
	marked bool
}

type lfNode struct {
	key  int
	next atomic.Pointer[lfRef]
}

func newLFNode(key int, succ *lfNode) *lfNode {
	n := &lfNode{key: key}
	n.next.Store(&lfRef{node: succ})
	return n
}

// LockFreeList is the Harris–Michael nonblocking list (Fig. 9.24): Remove
// marks the victim's next pointer, and every traversal (via find) physically
// snips out marked nodes it passes. Add and Remove are lock-free; Contains
// is wait-free. The Go GC provides the safe memory reclamation the book
// gets from the JVM, which also rules out ABA on the CASes.
type LockFreeList struct {
	head *lfNode
}

var _ Set = (*LockFreeList)(nil)

// NewLockFreeList returns an empty set.
func NewLockFreeList() *LockFreeList {
	tail := newLFNode(KeyMax, nil)
	return &LockFreeList{head: newLFNode(KeyMin, tail)}
}

// find returns a window (pred, curr) with curr.key >= x and no marked nodes
// between pred and curr, snipping out any marked nodes encountered.
func (l *LockFreeList) find(x int) (pred, curr *lfNode) {
retry:
	for {
		pred = l.head
		curr = pred.next.Load().node
		for {
			succRef := curr.next.Load()
			for succRef.marked {
				// curr is logically deleted; try to unlink it.
				expected := pred.next.Load()
				if expected.node != curr || expected.marked {
					continue retry
				}
				if !pred.next.CompareAndSwap(expected, &lfRef{node: succRef.node}) {
					continue retry
				}
				curr = succRef.node
				succRef = curr.next.Load()
			}
			if curr.key >= x {
				return pred, curr
			}
			pred = curr
			curr = succRef.node
		}
	}
}

// Add inserts x, reporting whether it was absent.
func (l *LockFreeList) Add(x int) bool {
	checkKey(x)
	for {
		pred, curr := l.find(x)
		if curr.key == x {
			return false
		}
		node := newLFNode(x, curr)
		expected := pred.next.Load()
		if expected.node != curr || expected.marked {
			continue
		}
		if pred.next.CompareAndSwap(expected, &lfRef{node: node}) {
			return true
		}
	}
}

// Remove deletes x. The successful mark CAS is the linearization point;
// unlinking is a best-effort courtesy (find will finish the job otherwise).
func (l *LockFreeList) Remove(x int) bool {
	checkKey(x)
	for {
		pred, curr := l.find(x)
		if curr.key != x {
			return false
		}
		succRef := curr.next.Load()
		if succRef.marked {
			continue // someone else is removing it; re-find
		}
		if !curr.next.CompareAndSwap(succRef, &lfRef{node: succRef.node, marked: true}) {
			continue
		}
		if expected := pred.next.Load(); expected.node == curr && !expected.marked {
			pred.next.CompareAndSwap(expected, &lfRef{node: succRef.node})
		}
		return true
	}
}

// Contains is wait-free: traverse once, report (found ∧ unmarked).
func (l *LockFreeList) Contains(x int) bool {
	checkKey(x)
	curr := l.head
	for curr.key < x {
		curr = curr.next.Load().node
	}
	return curr.key == x && !curr.next.Load().marked
}
