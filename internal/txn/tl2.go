package txn

import "amp/internal/stm"

// tl2Keyspace backs the keyspace with the lock-based TL2-style engine:
// commit-time versioned write locks taken in tvar-id order, so an EXEC
// touching keys on many server shards commits atomically without any
// coordination between the shards themselves.
type tl2Keyspace struct {
	stm *stm.STM
	dir dir[stm.TVar[cell]]
	ctr *stm.TVar[int64]
}

func newTL2() *tl2Keyspace {
	return &tl2Keyspace{stm: stm.New(), ctr: stm.NewTVar[int64](0)}
}

func (k *tl2Keyspace) cellOf(key string) *stm.TVar[cell] {
	return k.dir.getOrCreate(key, func() *stm.TVar[cell] {
		v := stm.NewTVar(cell{})
		return v
	})
}

// Get is the read-only fast path: a key with no tvar has never been
// written (linearizes at the directory lookup), and TVar.Load returns a
// whole committed cell atomically.
func (k *tl2Keyspace) Get(key string) (int64, bool) {
	c := k.dir.get(key)
	if c == nil {
		return 0, false
	}
	v := c.Load()
	return v.v, v.present
}

func (k *tl2Keyspace) Set(key string, v int64) bool {
	c := k.cellOf(key)
	var inserted bool
	k.stm.Atomic(func(tx *stm.Tx) {
		inserted = !c.Get(tx).present
		c.Set(tx, cell{v: v, present: true})
	})
	return inserted
}

func (k *tl2Keyspace) Del(key string) bool {
	c := k.dir.get(key)
	if c == nil {
		return false
	}
	var removed bool
	k.stm.Atomic(func(tx *stm.Tx) {
		removed = c.Get(tx).present
		if removed {
			c.Set(tx, cell{})
		}
	})
	return removed
}

func (k *tl2Keyspace) Incr(key string, delta int64) int64 {
	c := k.cellOf(key)
	var out int64
	k.stm.Atomic(func(tx *stm.Tx) {
		out = c.Get(tx).v + delta // absent reads as 0
		c.Set(tx, cell{v: out, present: true})
	})
	return out
}

func (k *tl2Keyspace) Inc() int64 {
	var old int64
	k.stm.Atomic(func(tx *stm.Tx) {
		old = k.ctr.Get(tx)
		k.ctr.Set(tx, old+1)
	})
	return old
}

func (k *tl2Keyspace) Counter() int64 { return k.ctr.Load() }

// Range enumerates present keys with their committed values; see
// Keyspace.Range for the consistency contract.
func (k *tl2Keyspace) Range(f func(key string, v int64) bool) {
	k.dir.each(func(key string, c *stm.TVar[cell]) bool {
		v := c.Load()
		if !v.present {
			return true
		}
		return f(key, v.v)
	})
}

// SetCounter overwrites the counter (snapshot restore).
func (k *tl2Keyspace) SetCounter(v int64) {
	k.stm.Atomic(func(tx *stm.Tx) { k.ctr.Set(tx, v) })
}

func (k *tl2Keyspace) Exec(ops []Op) []Result {
	// Resolve every key's tvar up front — including keys only read, and
	// keys that do not exist yet. A read of an absent key must join the
	// read set of a real tvar or commit-time validation cannot see a
	// concurrent creator. getOrCreate is idempotent, so resolving outside
	// the transaction is safe across retries.
	cells := make([]*stm.TVar[cell], len(ops))
	for i, op := range ops {
		if op.Kind == Get || op.Kind == Set || op.Kind == Del || op.Kind == Incr {
			cells[i] = k.cellOf(op.Key)
		}
	}
	out := make([]Result, len(ops))
	k.stm.Atomic(func(tx *stm.Tx) {
		for i, op := range ops {
			switch op.Kind {
			case Get:
				c := cells[i].Get(tx)
				out[i] = Result{Val: c.v, Flag: c.present}
			case Set:
				out[i] = Result{Val: op.Val, Flag: !cells[i].Get(tx).present}
				cells[i].Set(tx, cell{v: op.Val, present: true})
			case Del:
				c := cells[i].Get(tx)
				out[i] = Result{Flag: c.present}
				if c.present {
					cells[i].Set(tx, cell{})
				}
			case Incr:
				v := cells[i].Get(tx).v + op.Val
				out[i] = Result{Val: v, Flag: true}
				cells[i].Set(tx, cell{v: v, present: true})
			case CtrInc:
				old := k.ctr.Get(tx)
				out[i] = Result{Val: old}
				k.ctr.Set(tx, old+1)
			case CtrRead:
				out[i] = Result{Val: k.ctr.Get(tx)}
			}
		}
	})
	return out
}

func (k *tl2Keyspace) Commits() int64 { return k.stm.Commits() }
func (k *tl2Keyspace) Aborts() int64  { return k.stm.Aborts() }
