// Package txn layers cross-key atomic transactions over the Chapter 18
// STM engines. A Keyspace owns the string-map and counter families as
// per-key transactional variables; staged protocol commands become an Op
// list executed atomically by Exec, so a MULTI/EXEC buffer commits across
// keys — including keys that the server shards apart — through the STM's
// commit protocol (TL2 commit-time versioned locks, or DSTM status-word
// CAS) rather than any 2-phase dance over shard mailboxes.
//
// The single-key fast path (Get/Set/Del/Incr, Inc/Counter) goes through
// the same tvars, so non-transactional traffic and transactions are
// mutually linearizable: a plain HGET can never observe a torn EXEC.
package txn

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the operations a transaction can stage.
type Kind uint8

const (
	// Get reads a key: Result{Val: value, Flag: present}.
	Get Kind = iota
	// Set writes Val to a key: Result{Val: value, Flag: inserted}.
	Set
	// Del removes a key: Result{Flag: removed}.
	Del
	// Incr adds Val to a key (absent keys start at 0 and are created):
	// Result{Val: new value, Flag: true}.
	Incr
	// CtrInc takes a counter ticket: Result{Val: old value}.
	CtrInc
	// CtrRead reads the counter: Result{Val: value}.
	CtrRead
)

// Op is one staged operation. Key and Val are meaningful per Kind.
type Op struct {
	Kind Kind
	Key  string
	Val  int64
}

// Result is one operation's outcome; see the Kind constants for the
// meaning of its fields.
type Result struct {
	Val  int64
	Flag bool
}

// Keyspace is a transactional key/value universe plus a shared counter.
// The single-op methods are the non-transactional fast path; Exec commits
// a whole Op list atomically. All methods are safe for concurrent use
// from any goroutine.
type Keyspace interface {
	// Get reads one key without writing (a committed-snapshot read).
	Get(key string) (int64, bool)
	// Set writes v, reporting whether the key was absent before.
	Set(key string, v int64) (inserted bool)
	// Del removes the key, reporting whether it was present.
	Del(key string) (removed bool)
	// Incr adds delta (absent keys start at 0) and returns the new value.
	Incr(key string, delta int64) int64
	// Inc takes a counter ticket, returning the pre-increment value.
	Inc() int64
	// Counter reads the counter.
	Counter() int64
	// Exec applies ops as one atomic transaction, returning one Result
	// per op in order.
	Exec(ops []Op) []Result
	// Range calls f for each present key with its committed value until
	// f returns false (tombstoned keys are skipped). Each read is an
	// atomic committed-cell load, but the enumeration as a whole is a
	// consistent cut only when the caller has quiesced committers — the
	// server's snapshot path holds its EXEC gate and shard combiner
	// locks across it.
	Range(f func(key string, v int64) bool)
	// SetCounter overwrites the shared counter (snapshot restore).
	SetCounter(v int64)
	// Commits and Aborts expose the engine's transaction statistics
	// (fast-path single-op transactions included).
	Commits() int64
	Aborts() int64
}

// cell is the value of one key's tvar. Deleted keys keep a tombstone
// cell (present=false) so later transactions still validate against it;
// cells are created once per key and never replaced.
type cell struct {
	v       int64
	present bool
}

// engines maps -txn names to constructors. The cm argument is the
// contention-manager name; TL2 commits through versioned locks and
// ignores it.
var engines = map[string]func(cm string) Keyspace{
	"tl2":  func(string) Keyspace { return newTL2() },
	"dstm": func(cm string) Keyspace { return newDSTM(cm) },
}

// New builds the keyspace for the named engine and contention manager.
// The manager name is validated for every engine so a typo is caught even
// when the engine does not consult it.
func New(engine, cm string) (Keyspace, error) {
	if err := CheckManager(cm); err != nil {
		return nil, err
	}
	f, ok := engines[engine]
	if !ok {
		return nil, fmt.Errorf("txn: unknown engine %q (have %s)",
			engine, strings.Join(Engines(), ", "))
	}
	return f(cm), nil
}

// CheckManager validates a contention-manager name.
func CheckManager(cm string) error {
	if _, ok := managers[cm]; !ok {
		return fmt.Errorf("txn: unknown contention manager %q (have %s)",
			cm, strings.Join(Managers(), ", "))
	}
	return nil
}

// Engines lists the valid engine names, sorted.
func Engines() []string { return sortedNames(engines) }

// Managers lists the valid contention-manager names, sorted.
func Managers() []string { return sortedNames(managers) }

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
