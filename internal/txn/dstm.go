package txn

import "amp/internal/stm"

// managers maps -cm names to DSTM contention-manager factories (one
// manager instance per transaction attempt, matching WithContentionManager).
var managers = map[string]func() stm.ContentionManager{
	"aggressive": func() stm.ContentionManager { return stm.AggressiveManager{} },
	"backoff":    func() stm.ContentionManager { return &stm.BackoffManager{} },
}

// dstmKeyspace backs the keyspace with the obstruction-free DSTM engine:
// per-tvar locators acquired by CAS, a status-word CAS to commit, and the
// selected contention manager arbitrating conflicts.
type dstmKeyspace struct {
	stm *stm.OFSTM
	dir dir[stm.OFTVar[cell]]
	ctr *stm.OFTVar[int64]
}

func newDSTM(cm string) *dstmKeyspace {
	factory := managers[cm] // New validated the name already
	return &dstmKeyspace{
		stm: stm.NewOF(stm.WithContentionManager(factory)),
		ctr: stm.NewOFTVar[int64](0),
	}
}

func (k *dstmKeyspace) cellOf(key string) *stm.OFTVar[cell] {
	return k.dir.getOrCreate(key, func() *stm.OFTVar[cell] {
		return stm.NewOFTVar(cell{})
	})
}

// Get is the fast path; OFTVar.Load impatiently aborts in-flight writers,
// which is the book's policy for non-transactional reads.
func (k *dstmKeyspace) Get(key string) (int64, bool) {
	c := k.dir.get(key)
	if c == nil {
		return 0, false
	}
	v := c.Load()
	return v.v, v.present
}

func (k *dstmKeyspace) Set(key string, v int64) bool {
	c := k.cellOf(key)
	var inserted bool
	k.stm.Atomic(func(tx *stm.OFTx) {
		inserted = !c.Get(tx).present
		c.Set(tx, cell{v: v, present: true})
	})
	return inserted
}

func (k *dstmKeyspace) Del(key string) bool {
	c := k.dir.get(key)
	if c == nil {
		return false
	}
	var removed bool
	k.stm.Atomic(func(tx *stm.OFTx) {
		removed = c.Get(tx).present
		if removed {
			c.Set(tx, cell{})
		}
	})
	return removed
}

func (k *dstmKeyspace) Incr(key string, delta int64) int64 {
	c := k.cellOf(key)
	var out int64
	k.stm.Atomic(func(tx *stm.OFTx) {
		out = c.Get(tx).v + delta
		c.Set(tx, cell{v: out, present: true})
	})
	return out
}

func (k *dstmKeyspace) Inc() int64 {
	var old int64
	k.stm.Atomic(func(tx *stm.OFTx) {
		old = k.ctr.Get(tx)
		k.ctr.Set(tx, old+1)
	})
	return old
}

func (k *dstmKeyspace) Counter() int64 { return k.ctr.Load() }

// Range enumerates present keys with their committed values; see
// Keyspace.Range for the consistency contract.
func (k *dstmKeyspace) Range(f func(key string, v int64) bool) {
	k.dir.each(func(key string, c *stm.OFTVar[cell]) bool {
		v := c.Load()
		if !v.present {
			return true
		}
		return f(key, v.v)
	})
}

// SetCounter overwrites the counter (snapshot restore).
func (k *dstmKeyspace) SetCounter(v int64) {
	k.stm.Atomic(func(tx *stm.OFTx) { k.ctr.Set(tx, v) })
}

func (k *dstmKeyspace) Exec(ops []Op) []Result {
	// Same up-front resolution as TL2: reads of absent keys validate
	// against the key's (tombstone) tvar.
	cells := make([]*stm.OFTVar[cell], len(ops))
	for i, op := range ops {
		if op.Kind == Get || op.Kind == Set || op.Kind == Del || op.Kind == Incr {
			cells[i] = k.cellOf(op.Key)
		}
	}
	out := make([]Result, len(ops))
	k.stm.Atomic(func(tx *stm.OFTx) {
		for i, op := range ops {
			switch op.Kind {
			case Get:
				c := cells[i].Get(tx)
				out[i] = Result{Val: c.v, Flag: c.present}
			case Set:
				out[i] = Result{Val: op.Val, Flag: !cells[i].Get(tx).present}
				cells[i].Set(tx, cell{v: op.Val, present: true})
			case Del:
				c := cells[i].Get(tx)
				out[i] = Result{Flag: c.present}
				if c.present {
					cells[i].Set(tx, cell{})
				}
			case Incr:
				v := cells[i].Get(tx).v + op.Val
				out[i] = Result{Val: v, Flag: true}
				cells[i].Set(tx, cell{v: v, present: true})
			case CtrInc:
				old := k.ctr.Get(tx)
				out[i] = Result{Val: old}
				k.ctr.Set(tx, old+1)
			case CtrRead:
				out[i] = Result{Val: k.ctr.Get(tx)}
			}
		}
	})
	return out
}

func (k *dstmKeyspace) Commits() int64 { return k.stm.Commits() }
func (k *dstmKeyspace) Aborts() int64  { return k.stm.Aborts() }
