package txn

import (
	"fmt"
	"sync"
	"testing"
)

// newEach runs f once per engine/manager combination.
func newEach(t *testing.T, f func(t *testing.T, ks Keyspace)) {
	t.Helper()
	for _, engine := range Engines() {
		for _, cm := range Managers() {
			if engine == "tl2" && cm != "aggressive" {
				continue // tl2 ignores the manager; one run is enough
			}
			t.Run(engine+"/"+cm, func(t *testing.T) {
				ks, err := New(engine, cm)
				if err != nil {
					t.Fatal(err)
				}
				f(t, ks)
			})
		}
	}
}

func TestNewValidatesNames(t *testing.T) {
	if _, err := New("nope", "aggressive"); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := New("tl2", "nope"); err == nil {
		t.Fatal("unknown contention manager accepted")
	}
	if err := CheckManager("backoff"); err != nil {
		t.Fatal(err)
	}
}

func TestFastPathSemantics(t *testing.T) {
	newEach(t, func(t *testing.T, ks Keyspace) {
		if _, ok := ks.Get("a"); ok {
			t.Fatal("absent key reported present")
		}
		if !ks.Set("a", 7) {
			t.Fatal("first Set not an insert")
		}
		if ks.Set("a", 8) {
			t.Fatal("overwrite reported as insert")
		}
		if v, ok := ks.Get("a"); !ok || v != 8 {
			t.Fatalf("Get(a) = %d,%v want 8,true", v, ok)
		}
		if !ks.Del("a") {
			t.Fatal("Del of present key reported absent")
		}
		if ks.Del("a") || ks.Del("never") {
			t.Fatal("Del of absent key reported removed")
		}
		if _, ok := ks.Get("a"); ok {
			t.Fatal("deleted key still present")
		}
		// Incr resurrects through the tombstone, starting from 0.
		if v := ks.Incr("a", 5); v != 5 {
			t.Fatalf("Incr(a,5) = %d want 5", v)
		}
		if v := ks.Incr("a", -2); v != 3 {
			t.Fatalf("Incr(a,-2) = %d want 3", v)
		}
		if v := ks.Inc(); v != 0 {
			t.Fatalf("first Inc ticket = %d want 0", v)
		}
		if v := ks.Inc(); v != 1 {
			t.Fatalf("second Inc ticket = %d want 1", v)
		}
		if v := ks.Counter(); v != 2 {
			t.Fatalf("Counter = %d want 2", v)
		}
		if c := ks.Commits(); c == 0 {
			t.Fatal("no commits recorded")
		}
	})
}

func TestExecSemantics(t *testing.T) {
	newEach(t, func(t *testing.T, ks Keyspace) {
		ks.Set("x", 1)
		res := ks.Exec([]Op{
			{Kind: Get, Key: "x"},
			{Kind: Get, Key: "ghost"},
			{Kind: Set, Key: "y", Val: 10},
			{Kind: Get, Key: "y"}, // read-your-writes inside one txn
			{Kind: Incr, Key: "y", Val: 5},
			{Kind: Del, Key: "x"},
			{Kind: Del, Key: "x"}, // second delete sees our own tombstone
			{Kind: CtrInc},
			{Kind: CtrRead},
		})
		want := []Result{
			{Val: 1, Flag: true},
			{Val: 0, Flag: false},
			{Val: 10, Flag: true},
			{Val: 10, Flag: true},
			{Val: 15, Flag: true},
			{Flag: true},
			{Flag: false},
			{Val: 0},
			{Val: 1},
		}
		for i, w := range want {
			if res[i] != w {
				t.Fatalf("res[%d] = %+v want %+v", i, res[i], w)
			}
		}
		if v, ok := ks.Get("y"); !ok || v != 15 {
			t.Fatalf("post-exec Get(y) = %d,%v want 15,true", v, ok)
		}
		if _, ok := ks.Get("x"); ok {
			t.Fatal("post-exec x still present")
		}
		if n := len(ks.Exec(nil)); n != 0 {
			t.Fatalf("empty Exec returned %d results", n)
		}
	})
}

// TestExecAtomicTransfers is the core atomicity check: transfers between
// accounts via Exec must never let a concurrent transactional reader see
// a partial transfer, and the final sum must be unchanged.
func TestExecAtomicTransfers(t *testing.T) {
	newEach(t, func(t *testing.T, ks Keyspace) {
		const (
			accounts  = 8
			writers   = 4
			readers   = 2
			transfers = 300
		)
		key := func(i int) string { return fmt.Sprintf("acct%d", i) }
		for i := 0; i < accounts; i++ {
			ks.Set(key(i), 0)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		errs := make(chan error, readers)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ops := make([]Op, accounts)
				for i := range ops {
					ops[i] = Op{Kind: Get, Key: key(i)}
				}
				for {
					select {
					case <-stop:
						return
					default:
					}
					var sum int64
					for _, r := range ks.Exec(ops) {
						sum += r.Val
					}
					if sum != 0 {
						select {
						case errs <- fmt.Errorf("torn snapshot: sum %d", sum):
						default:
						}
						return
					}
				}
			}()
		}
		var writersWG sync.WaitGroup
		for w := 0; w < writers; w++ {
			writersWG.Add(1)
			go func(seed int) {
				defer writersWG.Done()
				for n := 0; n < transfers; n++ {
					from := (seed + n) % accounts
					to := (seed + n + 1 + n%3) % accounts
					if from == to {
						continue
					}
					ks.Exec([]Op{
						{Kind: Incr, Key: key(from), Val: -1},
						{Kind: Incr, Key: key(to), Val: 1},
					})
				}
			}(w)
		}
		writersWG.Wait()
		close(stop)
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
		var sum int64
		for i := 0; i < accounts; i++ {
			v, ok := ks.Get(key(i))
			if !ok {
				t.Fatalf("account %d vanished", i)
			}
			sum += v
		}
		if sum != 0 {
			t.Fatalf("final sum %d, want 0", sum)
		}
		if ks.Commits() == 0 {
			t.Fatal("no commits recorded")
		}
	})
}

// TestCounterTickets checks Inc hands out unique, gap-free tickets under
// concurrency, transactionally and on the fast path.
func TestCounterTickets(t *testing.T) {
	newEach(t, func(t *testing.T, ks Keyspace) {
		const goroutines, each = 4, 200
		seen := make([]bool, goroutines*each)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					var v int64
					if (g+i)%2 == 0 {
						v = ks.Inc()
					} else {
						v = ks.Exec([]Op{{Kind: CtrInc}})[0].Val
					}
					mu.Lock()
					if seen[v] {
						mu.Unlock()
						t.Errorf("duplicate ticket %d", v)
						return
					}
					seen[v] = true
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		if v := ks.Counter(); v != goroutines*each {
			t.Fatalf("Counter = %d want %d", v, goroutines*each)
		}
	})
}

// TestRepeatableReadVsFastWrites: a transaction reading the same key
// twice must see one value, even while fast-path writers hammer the key.
func TestRepeatableReadVsFastWrites(t *testing.T) {
	newEach(t, func(t *testing.T, ks Keyspace) {
		ks.Set("k", 0)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
					ks.Set("k", i)
				}
			}
		}()
		for n := 0; n < 200; n++ {
			res := ks.Exec([]Op{
				{Kind: Get, Key: "k"},
				{Kind: Get, Key: "k"},
			})
			if res[0] != res[1] {
				close(stop)
				wg.Wait()
				t.Fatalf("non-repeatable read: %+v vs %+v", res[0], res[1])
			}
		}
		close(stop)
		wg.Wait()
	})
}

// TestAbortAccounting: statistics stay consistent under contention —
// commits count completed operations exactly, aborts never go negative.
func TestAbortAccounting(t *testing.T) {
	newEach(t, func(t *testing.T, ks Keyspace) {
		const goroutines, each = 4, 100
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < each; i++ {
					ks.Incr("hot", 1)
				}
			}()
		}
		wg.Wait()
		if v, _ := ks.Get("hot"); v != goroutines*each {
			t.Fatalf("hot = %d want %d", v, goroutines*each)
		}
		if c := ks.Commits(); c != goroutines*each {
			t.Fatalf("Commits = %d want %d", c, goroutines*each)
		}
		if a := ks.Aborts(); a < 0 {
			t.Fatalf("Aborts = %d", a)
		}
	})
}
