package txn

import (
	"sync"

	"amp/internal/strmap"
)

// dirStripes is the lock striping of the key directory. The directory is
// only touched to resolve a key to its tvar (reads vastly outnumber
// creations), so a modest RWMutex striping suffices; the tvars themselves
// carry all transactional synchronization.
const dirStripes = 64

// dir maps keys to their per-key tvars. Cells are created on first touch
// and never removed: a transaction that read an absent key must still be
// able to validate that read at commit, which requires the key to have a
// stable tvar to validate against (deleting the tvar of a deleted key
// would re-admit the write-skew the STM exists to prevent).
type dir[T any] struct {
	stripes [dirStripes]struct {
		mu sync.RWMutex
		m  map[string]*T
	}
}

func (d *dir[T]) stripe(key string) *struct {
	mu sync.RWMutex
	m  map[string]*T
} {
	return &d.stripes[strmap.Hash(key)%dirStripes]
}

// get returns the key's tvar, or nil if the key has never been touched.
func (d *dir[T]) get(key string) *T {
	s := d.stripe(key)
	s.mu.RLock()
	v := s.m[key]
	s.mu.RUnlock()
	return v
}

// each calls f for every (key, tvar) pair until f returns false,
// stripe by stripe under the stripe read locks. f must not touch the
// directory (it may load the tvar freely — tvar synchronization is the
// STM's, not the directory's).
func (d *dir[T]) each(f func(key string, v *T) bool) {
	for i := range d.stripes {
		s := &d.stripes[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !f(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// getOrCreate returns the key's tvar, creating it with fresh if needed.
// Idempotent: every caller for a key observes the same tvar forever.
func (d *dir[T]) getOrCreate(key string, fresh func() *T) *T {
	if v := d.get(key); v != nil {
		return v
	}
	s := d.stripe(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if v := s.m[key]; v != nil {
		return v
	}
	if s.m == nil {
		s.m = make(map[string]*T)
	}
	v := fresh()
	s.m[key] = v
	return v
}
