# Entry points for the tier-1 verify, the benchmarks, and the server.

GO ?= go
ADDR ?= 127.0.0.1:7171

.PHONY: build test race vet bench serve load

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

serve:
	$(GO) run ./cmd/ampserved -addr $(ADDR)

load:
	$(GO) run ./cmd/ampbench -serve-addr $(ADDR) -clients 16 -ops 5000
