# Entry points for the tier-1 verify, the benchmarks, and the server.

GO ?= go
ADDR ?= 127.0.0.1:7171

.PHONY: build test race vet bench bench-ci serve load

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# The CI allocation gate, runnable locally: pinned subset, 5 repeats,
# fails if any epoch steady-state bench — including the wait-free read
# bypass path — allocates. Writes BENCH_ci.json.
bench-ci:
	$(GO) test -run='^$$' -bench='Epoch.*Steady|LockFree.*(EnqDeq|AddRemove)' -benchmem -count=5 \
		./internal/queue ./internal/list ./internal/skiplist | tee bench.txt
	$(GO) test -run='^$$' -bench='BenchmarkServerTCP(Pipelined|StringMap|Txn|ReadMostly)|BenchmarkReadBypassSteady' -benchmem -count=5 \
		./internal/server | tee -a bench.txt
	$(GO) run ./cmd/benchgate -in bench.txt -out BENCH_ci.json -gate 'Epoch.*Steady|ReadBypassSteady' \
		-require 'ServerTCPTxn:commits/op'

serve:
	$(GO) run ./cmd/ampserved -addr $(ADDR)

load:
	$(GO) run ./cmd/ampbench -serve-addr $(ADDR) -clients 16 -ops 5000
