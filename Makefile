# Entry points for the tier-1 verify, the benchmarks, and the server.

GO ?= go
ADDR ?= 127.0.0.1:7171

.PHONY: build test race vet bench bench-ci serve load

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# The CI gates, runnable locally: pinned subset, 5 repeats. Fails if any
# epoch steady-state bench — including the wait-free read bypass path —
# allocates, if the txn bench stops committing, or if the pipelined or
# adaptive server paths regress past their per-spec ratio over the
# checked-in BENCH_baseline.json. Writes BENCH_ci.json; in CI the ratio
# comparison also lands in the step summary as a markdown table.
bench-ci:
	$(GO) test -run='^$$' -bench='Epoch.*Steady|LockFree.*(EnqDeq|AddRemove)' -benchmem -count=5 \
		./internal/queue ./internal/list ./internal/skiplist | tee bench.txt
	$(GO) test -run='^$$' -bench='BenchmarkServerTCP(Pipelined|StringMap|Txn|ReadMostly|Adaptive|Snapshot)|BenchmarkReadBypassSteady' -benchmem -count=5 \
		./internal/server | tee -a bench.txt
	$(GO) test -run='^$$' -bench='BenchmarkMailboxRingVsChan' -benchmem -count=5 \
		./internal/mailbox | tee -a bench.txt
	$(GO) run ./cmd/benchgate -in bench.txt -out BENCH_ci.json -gate 'Epoch.*Steady|ReadBypassSteady' \
		-require 'ServerTCPTxn:commits/op' \
		-baseline BENCH_baseline.json \
		-ratio 'ServerTCPPipelined:1.15,ServerTCPAdaptive:1.25,ServerTCPSnapshot:1.40'

serve:
	$(GO) run ./cmd/ampserved -addr $(ADDR)

load:
	$(GO) run ./cmd/ampbench -serve-addr $(ADDR) -clients 16 -ops 5000
