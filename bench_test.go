package amp_test

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"amp/internal/barrier"
	"amp/internal/bench"
	"amp/internal/consensus"
	"amp/internal/core"
	"amp/internal/counting"
	"amp/internal/hashset"
	"amp/internal/list"
	"amp/internal/mutex"
	"amp/internal/pqueue"
	"amp/internal/queue"
	"amp/internal/register"
	"amp/internal/skiplist"
	"amp/internal/spin"
	"amp/internal/stack"
	"amp/internal/steal"
	"amp/internal/stm"
)

// benchThreads is the parallelism every experiment benchmark runs at; the
// full thread sweeps live in cmd/ampbench.
const benchThreads = 4

// lockLike matches the spin/mutex lock shape.
type lockLike interface {
	Lock(me core.ThreadID)
	Unlock(me core.ThreadID)
}

// splitOps distributes b.N over the worker threads.
func splitOps(b *testing.B) int {
	b.Helper()
	return b.N/benchThreads + 1
}

// BenchmarkE1SpinLocks — experiment E1: spin-lock critical sections.
func BenchmarkE1SpinLocks(b *testing.B) {
	locks := []struct {
		name string
		mk   func() lockLike
	}{
		{"tas", func() lockLike { return &spin.TASLock{} }},
		{"ttas", func() lockLike { return &spin.TTASLock{} }},
		{"backoff", func() lockLike { return spin.NewBackoffLock(benchThreads) }},
		{"alock", func() lockLike { return spin.NewALock(benchThreads) }},
		{"clh", func() lockLike { return spin.NewCLHLock(benchThreads) }},
		{"mcs", func() lockLike { return spin.NewMCSLock(benchThreads) }},
		{"stdmutex", func() lockLike { return &spin.StdMutex{} }},
	}
	for _, l := range locks {
		b.Run(l.name, func(b *testing.B) {
			r := bench.CriticalSections(l.mk(), benchThreads, splitOps(b), 8)
			b.ReportMetric(r.Throughput(), "ops/ms")
		})
	}
}

// BenchmarkE2ClassicalMutex — experiment E2: Chapter 2 locks.
func BenchmarkE2ClassicalMutex(b *testing.B) {
	locks := []struct {
		name string
		mk   func() lockLike
	}{
		{"filter", func() lockLike { return mutex.NewFilter(benchThreads) }},
		{"bakery", func() lockLike { return mutex.NewBakery(benchThreads) }},
		{"tournament", func() lockLike { return mutex.NewTournament(benchThreads) }},
	}
	for _, l := range locks {
		b.Run(l.name, func(b *testing.B) {
			r := bench.CriticalSections(l.mk(), benchThreads, splitOps(b), 8)
			b.ReportMetric(r.Throughput(), "ops/ms")
		})
	}
	b.Run("peterson2", func(b *testing.B) {
		r := bench.CriticalSections(&mutex.Peterson{}, 2, b.N/2+1, 8)
		b.ReportMetric(r.Throughput(), "ops/ms")
	})
}

func benchSet(b *testing.B, mk func() list.Set, keyRange int) {
	b.Helper()
	mix := bench.SetMix{ContainsPct: 90, AddPct: 9, KeyRange: keyRange}
	s := mk()
	mix.Prefill(s)
	r := mix.Run(s, benchThreads, splitOps(b))
	b.ReportMetric(r.Throughput(), "ops/ms")
}

// BenchmarkE3ListSets — experiment E3: list-based sets, 90/9/1 mix.
func BenchmarkE3ListSets(b *testing.B) {
	sets := []struct {
		name string
		mk   func() list.Set
	}{
		{"coarse", func() list.Set { return list.NewCoarseList() }},
		{"fine", func() list.Set { return list.NewFineList() }},
		{"optimistic", func() list.Set { return list.NewOptimisticList() }},
		{"lazy", func() list.Set { return list.NewLazyList() }},
		{"lockfree", func() list.Set { return list.NewLockFreeList() }},
	}
	for _, s := range sets {
		b.Run(s.name, func(b *testing.B) { benchSet(b, s.mk, 128) })
	}
}

// BenchmarkE4Queues — experiment E4: enq/deq pairs.
func BenchmarkE4Queues(b *testing.B) {
	queues := []struct {
		name string
		mk   func() queue.Queue[int]
	}{
		{"twolock", func() queue.Queue[int] { return queue.NewUnboundedQueue[int]() }},
		{"michaelscott", func() queue.Queue[int] { return queue.NewLockFreeQueue[int]() }},
		{"channel", func() queue.Queue[int] { return queue.NewChanQueue[int](1 << 16) }},
	}
	for _, q := range queues {
		b.Run(q.name, func(b *testing.B) {
			r := bench.QueuePairs(q.mk(), benchThreads, splitOps(b))
			b.ReportMetric(r.Throughput(), "ops/ms")
		})
	}
}

// BenchmarkE5Stacks — experiment E5: push/pop pairs.
func BenchmarkE5Stacks(b *testing.B) {
	stacks := []struct {
		name string
		mk   func() stack.Stack[int]
	}{
		{"locked", func() stack.Stack[int] { return stack.NewLockedStack[int]() }},
		{"treiber", func() stack.Stack[int] { return stack.NewLockFreeStack[int]() }},
		{"elimination", func() stack.Stack[int] { return stack.NewEliminationBackoffStack[int]() }},
	}
	for _, s := range stacks {
		b.Run(s.name, func(b *testing.B) {
			r := bench.StackPairs(s.mk(), benchThreads, splitOps(b))
			b.ReportMetric(r.Throughput(), "ops/ms")
		})
	}
}

// BenchmarkE6Counting — experiment E6: shared counters.
func BenchmarkE6Counting(b *testing.B) {
	counters := []struct {
		name string
		mk   func() counting.Counter
	}{
		{"cas", func() counting.Counter { return &counting.CASCounter{} }},
		{"lock", func() counting.Counter { return &counting.LockCounter{} }},
		{"combining", func() counting.Counter { return counting.NewCombiningTree(benchThreads) }},
		{"bitonic8", func() counting.Counter { return counting.NewNetworkCounter(counting.NewBitonic(8)) }},
		{"periodic8", func() counting.Counter { return counting.NewNetworkCounter(counting.NewPeriodic(8)) }},
	}
	for _, c := range counters {
		b.Run(c.name, func(b *testing.B) {
			r := bench.CounterIncrements(c.mk(), benchThreads, splitOps(b))
			b.ReportMetric(r.Throughput(), "ops/ms")
		})
	}
}

// BenchmarkE7HashSets — experiment E7: hash sets, 90/9/1 mix with resizing.
func BenchmarkE7HashSets(b *testing.B) {
	sets := []struct {
		name string
		mk   func() list.Set
	}{
		{"coarse", func() list.Set { return hashset.NewCoarseHashSet(16) }},
		{"striped", func() list.Set { return hashset.NewStripedHashSet(64) }},
		{"refinable", func() list.Set { return hashset.NewRefinableHashSet(16) }},
		{"lockfree", func() list.Set { return hashset.NewLockFreeHashSet() }},
		{"cuckoo", func() list.Set { return hashset.NewStripedCuckooHashSet(64) }},
	}
	for _, s := range sets {
		b.Run(s.name, func(b *testing.B) { benchSet(b, s.mk, 4096) })
	}
}

// BenchmarkE8SkipLists — experiment E8: skiplist sets.
func BenchmarkE8SkipLists(b *testing.B) {
	sets := []struct {
		name string
		mk   func() list.Set
	}{
		{"lazyskip", func() list.Set { return skiplist.NewLazySkipList() }},
		{"lockfreeskip", func() list.Set { return skiplist.NewLockFreeSkipList() }},
		{"lazylist", func() list.Set { return list.NewLazyList() }},
	}
	for _, s := range sets {
		b.Run(s.name, func(b *testing.B) { benchSet(b, s.mk, 1024) })
	}
}

// BenchmarkE9PriorityQueues — experiment E9: add/removeMin mix.
func BenchmarkE9PriorityQueues(b *testing.B) {
	const keyRange = 64
	qs := []struct {
		name string
		mk   func() pqueue.PQueue
	}{
		{"lockedheap", func() pqueue.PQueue { return pqueue.NewLockedHeap() }},
		{"fineheap", func() pqueue.PQueue { return pqueue.NewFineGrainedHeap(1 << 20) }},
		{"skipqueue", func() pqueue.PQueue { return pqueue.NewSkipQueue() }},
		{"linear", func() pqueue.PQueue { return pqueue.NewSimpleLinear(keyRange) }},
		{"tree", func() pqueue.PQueue { return pqueue.NewSimpleTree(keyRange) }},
	}
	for _, q := range qs {
		b.Run(q.name, func(b *testing.B) {
			r := bench.PQueueMix(q.mk(), benchThreads, splitOps(b), keyRange)
			b.ReportMetric(r.Throughput(), "ops/ms")
		})
	}
}

// BenchmarkE10WorkStealing — experiment E10: fork/join task tree.
func BenchmarkE10WorkStealing(b *testing.B) {
	executors := []struct {
		name string
		mk   func() steal.Executor
	}{
		{"stealing", func() steal.Executor { return steal.NewStealingExecutor(benchThreads) }},
		{"sharing", func() steal.Executor { return steal.NewSharingExecutor(benchThreads) }},
		{"singlequeue", func() steal.Executor { return steal.NewSingleQueueExecutor(benchThreads) }},
	}
	for _, ex := range executors {
		b.Run(ex.name, func(b *testing.B) {
			e := ex.mk()
			var leaves atomic.Int64
			var tree func(d int) steal.Task
			tree = func(d int) steal.Task {
				return func(s steal.Spawner) {
					if d == 0 {
						leaves.Add(1)
						return
					}
					s.Spawn(tree(d - 1))
					s.Spawn(tree(d - 1))
				}
			}
			for i := 0; i < b.N; i++ {
				e.Run(tree(8))
			}
			b.ReportMetric(float64(leaves.Load())/float64(b.N), "tasks/op")
		})
	}
}

// BenchmarkE11Barriers — experiment E11: barrier phase latency.
func BenchmarkE11Barriers(b *testing.B) {
	barriers := []struct {
		name string
		mk   func() barrier.Barrier
	}{
		{"sense", func() barrier.Barrier { return barrier.NewSenseBarrier(benchThreads) }},
		{"tree2", func() barrier.Barrier { return barrier.NewTreeBarrier(benchThreads, 2) }},
		{"static2", func() barrier.Barrier { return barrier.NewStaticTreeBarrier(benchThreads, 2) }},
		{"dissemination", func() barrier.Barrier { return barrier.NewDisseminationBarrier(benchThreads) }},
	}
	for _, bb := range barriers {
		b.Run(bb.name, func(b *testing.B) {
			bar := bb.mk()
			rounds := splitOps(b)
			r := bench.Measure(benchThreads, rounds, func(me core.ThreadID, _ *rand.Rand, _ int) {
				bar.Await(me)
			})
			b.ReportMetric(bench.PerMilli(int64(rounds), r.Elapsed), "phases/ms")
		})
	}
}

// BenchmarkE12STM — experiment E12: transactional bank transfers.
func BenchmarkE12STM(b *testing.B) {
	const accounts = 64
	b.Run("stm", func(b *testing.B) {
		s := stm.New()
		acct := make([]*stm.TVar[int], accounts)
		for i := range acct {
			acct[i] = stm.NewTVar(1000)
		}
		r := bench.Measure(benchThreads, splitOps(b), func(_ core.ThreadID, rng *rand.Rand, _ int) {
			from, to := rng.Intn(accounts), rng.Intn(accounts)
			if from == to {
				to = (to + 1) % accounts
			}
			s.Atomic(func(tx *stm.Tx) {
				f := acct[from].Get(tx)
				acct[from].Set(tx, f-1)
				acct[to].Set(tx, acct[to].Get(tx)+1)
			})
		})
		b.ReportMetric(r.Throughput(), "tx/ms")
	})
	b.Run("coarselock", func(b *testing.B) {
		var mu spin.StdMutex
		balances := make([]int, accounts)
		r := bench.Measure(benchThreads, splitOps(b), func(me core.ThreadID, rng *rand.Rand, _ int) {
			from, to := rng.Intn(accounts), rng.Intn(accounts)
			mu.Lock(me)
			balances[from]--
			balances[to]++
			mu.Unlock(me)
		})
		b.ReportMetric(r.Throughput(), "tx/ms")
	})
}

// BenchmarkE13Universal — experiment E13: universal construction overhead.
func BenchmarkE13Universal(b *testing.B) {
	b.Run("lfuniversal", func(b *testing.B) {
		u := consensus.NewLFUniversal(core.QueueModel(), benchThreads)
		ops := min(splitOps(b), 2000) // replay cost is quadratic in log length
		r := bench.Measure(benchThreads, ops, func(me core.ThreadID, _ *rand.Rand, op int) {
			if op%2 == 0 {
				u.Apply(me, "enq", op)
			} else {
				u.Apply(me, "deq", nil)
			}
		})
		b.ReportMetric(r.Throughput(), "ops/ms")
	})
	b.Run("wfuniversal", func(b *testing.B) {
		u := consensus.NewWFUniversal(core.QueueModel(), benchThreads)
		ops := min(splitOps(b), 2000)
		r := bench.Measure(benchThreads, ops, func(me core.ThreadID, _ *rand.Rand, op int) {
			if op%2 == 0 {
				u.Apply(me, "enq", op)
			} else {
				u.Apply(me, "deq", nil)
			}
		})
		b.ReportMetric(r.Throughput(), "ops/ms")
	})
	b.Run("directqueue", func(b *testing.B) {
		q := queue.NewLockFreeQueue[int]()
		r := bench.QueuePairs(q, benchThreads, splitOps(b))
		b.ReportMetric(r.Throughput(), "ops/ms")
	})
}

// BenchmarkE14Snapshot — experiment E14: atomic snapshot cost.
func BenchmarkE14Snapshot(b *testing.B) {
	snapshots := []struct {
		name string
		mk   func() register.Snapshot
	}{
		{"waitfree", func() register.Snapshot { return register.NewWFSnapshot(benchThreads) }},
		{"collecttwice", func() register.Snapshot { return register.NewSimpleSnapshot(benchThreads) }},
		{"mutex", func() register.Snapshot { return register.NewMutexSnapshot(benchThreads) }},
	}
	for _, ss := range snapshots {
		b.Run(ss.name, func(b *testing.B) {
			s := ss.mk()
			r := bench.Measure(benchThreads, splitOps(b), func(me core.ThreadID, _ *rand.Rand, op int) {
				if op%4 == 0 {
					s.Scan(me)
				} else {
					s.Update(me, int64(op))
				}
			})
			b.ReportMetric(r.Throughput(), "ops/ms")
		})
	}
}

// BenchmarkE16EpochRecycling — experiment E16: epoch-recycled lock-free
// structures vs their GC-backed twins, update-heavy mix. The exact
// 0 allocs/op claim is gated by the Epoch*Steady benches in
// internal/{queue,list,skiplist}; this entry point tracks throughput.
func BenchmarkE16EpochRecycling(b *testing.B) {
	queues := []struct {
		name string
		mk   func() queue.Queue[int]
	}{
		{"queue-gc", func() queue.Queue[int] { return queue.NewLockFreeQueue[int]() }},
		{"queue-epoch", func() queue.Queue[int] { return queue.NewEpochQueue[int]() }},
	}
	for _, q := range queues {
		b.Run(q.name, func(b *testing.B) {
			r := bench.QueuePairs(q.mk(), benchThreads, splitOps(b))
			b.ReportMetric(r.Throughput(), "ops/ms")
		})
	}
	sets := []struct {
		name string
		mk   func() list.Set
	}{
		{"list-gc", func() list.Set { return list.NewLockFreeList() }},
		{"list-epoch", func() list.Set { return list.NewEpochList() }},
		{"skip-gc", func() list.Set { return skiplist.NewLockFreeSkipList() }},
		{"skip-epoch", func() list.Set { return skiplist.NewEpochSkipList() }},
	}
	for _, s := range sets {
		b.Run(s.name, func(b *testing.B) {
			mix := bench.SetMix{ContainsPct: 0, AddPct: 50, KeyRange: 128}
			set := s.mk()
			mix.Prefill(set)
			r := mix.Run(set, benchThreads, splitOps(b))
			b.ReportMetric(r.Throughput(), "ops/ms")
		})
	}
}

// TestBenchmarkNamesMatchExperiments pins the DESIGN.md experiment index to
// the benchmark entry points above.
func TestBenchmarkNamesMatchExperiments(t *testing.T) {
	for _, e := range bench.All {
		if _, ok := bench.ByID(e.ID); !ok {
			t.Fatalf("experiment %s unregistered", e.ID)
		}
	}
	if got := len(bench.All); got != 15 {
		t.Fatalf("DESIGN.md lists 15 experiments; harness has %d", got)
	}
}
