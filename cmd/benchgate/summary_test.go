package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRatioSpecs(t *testing.T) {
	specs, err := parseRatioSpecs("ServerTCPPipelined:1.15,ServerTCPAdaptive:1.20")
	if err != nil {
		t.Fatalf("parseRatioSpecs: %v", err)
	}
	want := []RatioSpec{
		{Pattern: "ServerTCPPipelined", Max: 1.15},
		{Pattern: "ServerTCPAdaptive", Max: 1.20},
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, specs[i], want[i])
		}
	}

	for _, bad := range []string{"", "nope", "x:", "x:0", "x:-1", "a:1.1,:2", "a:1.1,b"} {
		if _, err := parseRatioSpecs(bad); err == nil {
			t.Errorf("parseRatioSpecs(%q) succeeded, want error", bad)
		}
	}
}

func summaryFixtures() (*Report, *Report) {
	current := &Report{Benchmarks: []*Benchmark{
		{Name: "BenchmarkServerTCPPipelined-8", NsPerOp: 1100},
		{Name: "BenchmarkServerTCPAdaptive-8", NsPerOp: 3000},
		{Name: "BenchmarkServerTCPNew-8", NsPerOp: 500},
		{Name: "BenchmarkUnrelated-8", NsPerOp: 42},
	}}
	base := &Report{Benchmarks: []*Benchmark{
		{Name: "BenchmarkServerTCPPipelined-8", NsPerOp: 1000},
		{Name: "BenchmarkServerTCPAdaptive-8", NsPerOp: 2000},
	}}
	return current, base
}

// TestSummaryTable pins the three verdict shapes: within the ratio, over
// it, and a matching benchmark with no baseline entry. The unrelated
// benchmark must not appear.
func TestSummaryTable(t *testing.T) {
	current, base := summaryFixtures()
	md, err := SummaryTable(current, base, []RatioSpec{
		{Pattern: "ServerTCP(Pipelined|Adaptive|New)", Max: 1.15},
	})
	if err != nil {
		t.Fatalf("SummaryTable: %v", err)
	}

	for _, want := range []string{
		"| benchmark | baseline ns/op | current ns/op | ratio | verdict |",
		"| BenchmarkServerTCPPipelined-8 | 1000.0 | 1100.0 | 1.10× | ✅ within 1.15× |",
		"| BenchmarkServerTCPAdaptive-8 | 2000.0 | 3000.0 | 1.50× | ❌ over 1.15× |",
		"| BenchmarkServerTCPNew-8 | — | 500.0 | — | ⚠️ no baseline |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("summary missing %q:\n%s", want, md)
		}
	}
	if strings.Contains(md, "Unrelated") {
		t.Errorf("summary includes a benchmark outside the ratio specs:\n%s", md)
	}
}

// TestSummaryTablePerSpecMax checks that each spec gates its own matches
// at its own max: the same ratio passes one spec and fails a tighter one.
func TestSummaryTablePerSpecMax(t *testing.T) {
	current, base := summaryFixtures()
	md, err := SummaryTable(current, base, []RatioSpec{
		{Pattern: "^BenchmarkServerTCPPipelined", Max: 1.05},
		{Pattern: "^BenchmarkServerTCPAdaptive", Max: 2.0},
	})
	if err != nil {
		t.Fatalf("SummaryTable: %v", err)
	}
	for _, want := range []string{
		"| BenchmarkServerTCPPipelined-8 | 1000.0 | 1100.0 | 1.10× | ❌ over 1.05× |",
		"| BenchmarkServerTCPAdaptive-8 | 2000.0 | 3000.0 | 1.50× | ✅ within 2.00× |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("summary missing %q:\n%s", want, md)
		}
	}
}

func TestSummaryTableNoMatches(t *testing.T) {
	current, base := summaryFixtures()
	md, err := SummaryTable(current, base, []RatioSpec{{Pattern: "Nothing", Max: 1.5}})
	if err != nil {
		t.Fatalf("SummaryTable: %v", err)
	}
	if !strings.Contains(md, "no benchmarks matched") {
		t.Errorf("empty summary missing placeholder row:\n%s", md)
	}

	if _, err := SummaryTable(current, base, []RatioSpec{{Pattern: "(", Max: 1.5}}); err == nil {
		t.Error("SummaryTable accepted an invalid pattern")
	}
}

// TestWriteSummary appends (GitHub's step-summary contract) and treats
// an empty path as off.
func TestWriteSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "summary.md")
	if err := writeSummary(path, "first"); err != nil {
		t.Fatalf("writeSummary: %v", err)
	}
	if err := writeSummary(path, "second"); err != nil {
		t.Fatalf("writeSummary: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got, want := string(data), "first\nsecond\n"; got != want {
		t.Errorf("summary file = %q, want %q", got, want)
	}

	if err := writeSummary("", "ignored"); err != nil {
		t.Errorf("writeSummary(\"\") = %v, want nil", err)
	}
}
