// Step-summary rendering: the ratio gate's evidence as a markdown
// comparison table, written to $GITHUB_STEP_SUMMARY so a CI run shows
// baseline vs current ns/op per gated benchmark without digging through
// logs.
package main

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// RatioSpec is one parsed -ratio entry: benchmarks matching Pattern must
// stay within Max × their baseline ns/op.
type RatioSpec struct {
	Pattern string
	Max     float64
}

// parseRatioSpecs splits a comma-separated -ratio value into specs:
// "ServerTCPPipelined:1.15,ServerTCPAdaptive:1.20". Patterns therefore
// cannot contain commas; anchor with ^$ instead of enumerating.
func parseRatioSpecs(s string) ([]RatioSpec, error) {
	var specs []RatioSpec
	for _, part := range strings.Split(s, ",") {
		pat, maxStr, ok := strings.Cut(part, ":")
		var max float64
		var err error
		if ok {
			max, err = strconv.ParseFloat(maxStr, 64)
		}
		if !ok || pat == "" || err != nil || max <= 0 {
			return nil, fmt.Errorf("-ratio wants comma-separated 'pattern:max' specs with max > 0, got %q", part)
		}
		specs = append(specs, RatioSpec{Pattern: pat, Max: max})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-ratio is empty")
	}
	return specs, nil
}

// SummaryTable renders the markdown comparison table for every benchmark
// matching any ratio spec: baseline ns/op, current ns/op, the ratio, and
// a verdict against the spec's max. A benchmark without a baseline entry
// gets a "no baseline" verdict (the gate itself fails that case; the
// table still shows what was measured).
func SummaryTable(r, base *Report, specs []RatioSpec) (string, error) {
	baseNs := make(map[string]float64)
	for _, b := range base.Benchmarks {
		baseNs[normalizeName(b.Name)] = b.NsPerOp
	}

	type row struct {
		name                string
		baseline, current   float64
		hasBaseline, within bool
		max                 float64
	}
	var rows []row
	for _, spec := range specs {
		re, err := regexp.Compile(spec.Pattern)
		if err != nil {
			return "", fmt.Errorf("bad -ratio pattern %q: %v", spec.Pattern, err)
		}
		for _, b := range r.Benchmarks {
			if !re.MatchString(b.Name) {
				continue
			}
			ref, ok := baseNs[normalizeName(b.Name)]
			rows = append(rows, row{
				name: b.Name, baseline: ref, current: b.NsPerOp,
				hasBaseline: ok && ref > 0,
				within:      ok && ref > 0 && b.NsPerOp/ref <= spec.Max,
				max:         spec.Max,
			})
		}
	}

	var sb strings.Builder
	sb.WriteString("### benchgate: ns/op vs baseline\n\n")
	sb.WriteString("| benchmark | baseline ns/op | current ns/op | ratio | verdict |\n")
	sb.WriteString("|---|---:|---:|---:|---|\n")
	for _, row := range rows {
		switch {
		case !row.hasBaseline:
			fmt.Fprintf(&sb, "| %s | — | %.1f | — | ⚠️ no baseline |\n", row.name, row.current)
		case row.within:
			fmt.Fprintf(&sb, "| %s | %.1f | %.1f | %.2f× | ✅ within %.2f× |\n",
				row.name, row.baseline, row.current, row.current/row.baseline, row.max)
		default:
			fmt.Fprintf(&sb, "| %s | %.1f | %.1f | %.2f× | ❌ over %.2f× |\n",
				row.name, row.baseline, row.current, row.current/row.baseline, row.max)
		}
	}
	if len(rows) == 0 {
		sb.WriteString("| _no benchmarks matched the ratio specs_ | — | — | — | — |\n")
	}
	return sb.String(), nil
}

// writeSummary appends markdown to the step-summary file. An empty path
// (not running under GitHub Actions, no -summary override) is a no-op.
func writeSummary(path, md string) error {
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(md + "\n")
	return err
}
