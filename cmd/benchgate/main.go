// Command benchgate turns `go test -bench -benchmem` output into a JSON
// artifact and enforces the allocation regression gate from ISSUE/CI:
// any benchmark matching -gate that reports allocs/op > 0 fails the run.
//
// Usage:
//
//	go test -bench=... -benchmem -count=5 ./... | benchgate -out BENCH_ci.json -gate 'Epoch.*Steady'
//
// The epoch-recycled structures promise steady-state allocation freedom;
// this is the check that keeps the promise from regressing silently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	var (
		in       = flag.String("in", "", "bench output file (default stdin)")
		out      = flag.String("out", "BENCH_ci.json", "JSON artifact path (empty to skip)")
		gate     = flag.String("gate", "", "regexp of benchmark names that must report 0 allocs/op")
		require  = flag.String("require", "", "'pattern:metric' — benchmarks matching pattern must report custom metric > 0")
		baseline = flag.String("baseline", "", "baseline JSON artifact (a previous -out) for the -ratio gate")
		ratio    = flag.String("ratio", "", "comma-separated 'pattern:max' specs — matching benchmarks must stay within max × baseline ns/op")
		summary  = flag.String("summary", os.Getenv("GITHUB_STEP_SUMMARY"),
			"markdown file to append the ratio comparison table to (default $GITHUB_STEP_SUMMARY; empty = off)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("benchgate: %v", err)
		}
		defer f.Close()
		r = f
	}

	report, err := Parse(r)
	if err != nil {
		fatalf("benchgate: %v", err)
	}
	if len(report.Benchmarks) == 0 {
		fatalf("benchgate: no benchmark lines found in input")
	}

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("benchgate: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatalf("benchgate: %v", err)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks, %d samples)\n",
			*out, len(report.Benchmarks), report.Samples)
	}

	if *gate != "" {
		violations, err := report.Gate(*gate)
		if err != nil {
			fatalf("benchgate: %v", err)
		}
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %.0f allocs/op (want 0)\n", v.Name, v.AllocsPerOp)
		}
		if len(violations) > 0 {
			os.Exit(1)
		}
		fmt.Printf("benchgate: gate %q passed (0 allocs/op)\n", *gate)
	}

	if *ratio != "" {
		specs, err := parseRatioSpecs(*ratio)
		if err != nil {
			fatalf("benchgate: %v", err)
		}
		if *baseline == "" {
			fatalf("benchgate: -ratio needs -baseline")
		}
		base, err := loadBaseline(*baseline)
		if err != nil {
			fatalf("benchgate: %v", err)
		}
		// Render the comparison table before gating so a failing run
		// still shows its evidence in the step summary.
		md, err := SummaryTable(report, base, specs)
		if err != nil {
			fatalf("benchgate: %v", err)
		}
		if err := writeSummary(*summary, md); err != nil {
			fatalf("benchgate: summary: %v", err)
		}
		failed := false
		for _, spec := range specs {
			violations, err := report.Ratio(base, spec.Pattern, spec.Max)
			if err != nil {
				fatalf("benchgate: %v", err)
			}
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %.1f ns/op is %.2f× baseline %.1f (max %.2f×)\n",
					v.Name, v.NsPerOp, v.Ratio, v.BaselineNsPerOp, spec.Max)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Printf("benchgate: ratio %q passed vs %s\n", *ratio, *baseline)
	}

	if *require != "" {
		pat, metric, ok := strings.Cut(*require, ":")
		if !ok || pat == "" || metric == "" {
			fatalf("benchgate: -require wants 'pattern:metric', got %q", *require)
		}
		if err := report.Require(pat, metric); err != nil {
			fatalf("benchgate: %v", err)
		}
		fmt.Printf("benchgate: require %q passed\n", *require)
	}
}

// loadBaseline reads a previously written -out artifact.
func loadBaseline(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("baseline %s: no benchmarks", path)
	}
	return &rep, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
