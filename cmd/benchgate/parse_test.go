package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: amp/internal/queue
cpu: Test CPU
BenchmarkEpochQueueSteadyEnqDeq-8      	15206725	       147.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkEpochQueueSteadyEnqDeq-8      	15100000	       149.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkLockFreeQueueEnqDeq-8         	38889381	        68.00 ns/op	      16 B/op	       1 allocs/op
BenchmarkServerTCPPipelined/depth=8-8  	  120000	      9500 ns/op
PASS
ok  	amp/internal/queue	12.3s
`

func TestParseAggregates(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 4 {
		t.Fatalf("Samples = %d, want 4", rep.Samples)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("Benchmarks = %d, want 3", len(rep.Benchmarks))
	}
	var epoch *Benchmark
	for _, b := range rep.Benchmarks {
		if b.Name == "BenchmarkEpochQueueSteadyEnqDeq-8" {
			epoch = b
		}
	}
	if epoch == nil {
		t.Fatal("epoch benchmark not found")
	}
	if epoch.Runs != 2 {
		t.Fatalf("Runs = %d, want 2", epoch.Runs)
	}
	if epoch.AllocsPerOp != 0 {
		t.Fatalf("AllocsPerOp = %f, want 0", epoch.AllocsPerOp)
	}
	if epoch.NsPerOp < 147 || epoch.NsPerOp > 150 {
		t.Fatalf("NsPerOp = %f, want mean of 147.6 and 149.0", epoch.NsPerOp)
	}
}

func TestGatePassesOnZeroAllocs(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := rep.Gate(`Epoch.*Steady`)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("gate flagged %d benchmarks, want 0", len(bad))
	}
}

func TestGateFlagsAllocatingBench(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := rep.Gate(`LockFreeQueue`)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0].Name != "BenchmarkLockFreeQueueEnqDeq-8" {
		t.Fatalf("gate = %+v, want the allocating lockfree bench", bad)
	}
}

func TestGateKeepsWorstSample(t *testing.T) {
	// A single allocating run out of five must still fail the gate.
	flaky := `BenchmarkEpochListSteadyAddRemove-8  1000  200 ns/op  0 B/op  0 allocs/op
BenchmarkEpochListSteadyAddRemove-8  1000  200 ns/op  16 B/op  1 allocs/op
`
	rep, err := Parse(strings.NewReader(flaky))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := rep.Gate(`Epoch.*Steady`)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 {
		t.Fatalf("gate flagged %d, want 1 (worst sample allocated)", len(bad))
	}
}

const txnSample = `BenchmarkServerTCPTxn-8  50000  21000 ns/op  1.000 commits/op  900 B/op  14 allocs/op
BenchmarkServerTCPTxn-8  52000  20500 ns/op  1.002 commits/op  890 B/op  14 allocs/op
BenchmarkServerTCPPipelined-8  900000  1200 ns/op  64 B/op  2 allocs/op
`

func TestParseExtraMetrics(t *testing.T) {
	rep, err := Parse(strings.NewReader(txnSample))
	if err != nil {
		t.Fatal(err)
	}
	var txn *Benchmark
	for _, b := range rep.Benchmarks {
		if b.Name == "BenchmarkServerTCPTxn-8" {
			txn = b
		}
	}
	if txn == nil {
		t.Fatal("txn benchmark not found")
	}
	if got := txn.Extra["commits/op"]; got != 1.000 {
		t.Fatalf("Extra[commits/op] = %v, want the minimum sample 1.000", got)
	}
	// The -benchmem columns after a custom metric must still parse.
	if txn.AllocsPerOp != 14 {
		t.Fatalf("AllocsPerOp = %v, want 14", txn.AllocsPerOp)
	}
	if txn.BytesPerOp != 900 {
		t.Fatalf("BytesPerOp = %v, want worst sample 900", txn.BytesPerOp)
	}
}

func TestRequirePassesOnLiveMetric(t *testing.T) {
	rep, err := Parse(strings.NewReader(txnSample))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Require(`ServerTCPTxn`, "commits/op"); err != nil {
		t.Fatalf("Require = %v, want nil", err)
	}
}

func TestRequireFailsOnMissingMetric(t *testing.T) {
	rep, err := Parse(strings.NewReader(txnSample))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Require(`ServerTCPPipelined`, "commits/op"); err == nil {
		t.Fatal("Require on a bench without the metric should fail")
	}
	if err := rep.Require(`NoSuchBench`, "commits/op"); err == nil {
		t.Fatal("Require with no matches should fail, not silently pass")
	}
}

func TestRequireFailsOnZeroMetric(t *testing.T) {
	dead := `BenchmarkServerTCPTxn-8  50000  21000 ns/op  0 commits/op  900 B/op  14 allocs/op
`
	rep, err := Parse(strings.NewReader(dead))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Require(`ServerTCPTxn`, "commits/op"); err == nil {
		t.Fatal("Require on a zero metric should fail")
	}
}

func TestGateRejectsEmptyMatch(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Gate(`NoSuchBench`); err == nil {
		t.Fatal("gate with no matches should error, not silently pass")
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkServerTCPPipelined-8":         "BenchmarkServerTCPPipelined",
		"BenchmarkServerTCPPipelined":           "BenchmarkServerTCPPipelined",
		"BenchmarkMailboxRingVsChan/ring-16":    "BenchmarkMailboxRingVsChan/ring",
		"BenchmarkServerTCPPipelined/depth=8-2": "BenchmarkServerTCPPipelined/depth=8",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func ratioReports(t *testing.T, curNs, baseNs string) (*Report, *Report) {
	t.Helper()
	cur, err := Parse(strings.NewReader(curNs))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Parse(strings.NewReader(baseNs))
	if err != nil {
		t.Fatal(err)
	}
	return cur, base
}

func TestRatioPassesWithinBudget(t *testing.T) {
	// 10% slower than baseline stays under a 15% ceiling; the baseline's
	// differing -N procs suffix must not break the match.
	cur, base := ratioReports(t,
		"BenchmarkServerTCPPipelined-8  900000  1100 ns/op\n",
		"BenchmarkServerTCPPipelined-2  900000  1000 ns/op\n")
	bad, err := cur.Ratio(base, `ServerTCPPipelined`, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("ratio flagged %+v, want none", bad)
	}
}

func TestRatioFlagsRegression(t *testing.T) {
	cur, base := ratioReports(t,
		"BenchmarkServerTCPPipelined-8  900000  1300 ns/op\n",
		"BenchmarkServerTCPPipelined-8  900000  1000 ns/op\n")
	bad, err := cur.Ratio(base, `ServerTCPPipelined`, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 {
		t.Fatalf("ratio flagged %d, want 1", len(bad))
	}
	if v := bad[0]; v.Ratio < 1.29 || v.Ratio > 1.31 {
		t.Fatalf("violation ratio = %v, want ~1.30", v.Ratio)
	}
}

func TestRatioAveragesRepeatedRuns(t *testing.T) {
	// One noisy sample out of three must not fail the gate: the ratio
	// compares mean ns/op, not the worst run.
	cur, base := ratioReports(t,
		"BenchmarkServerTCPPipelined-8  900000  1000 ns/op\n"+
			"BenchmarkServerTCPPipelined-8  900000  1300 ns/op\n"+
			"BenchmarkServerTCPPipelined-8  900000  1000 ns/op\n",
		"BenchmarkServerTCPPipelined-8  900000  1000 ns/op\n")
	bad, err := cur.Ratio(base, `ServerTCPPipelined`, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("ratio flagged %+v, want none (mean 1100 = 1.10x)", bad)
	}
}

func TestRatioErrorsOnMissingBaseline(t *testing.T) {
	cur, base := ratioReports(t,
		"BenchmarkServerTCPPipelined-8  900000  1000 ns/op\n",
		"BenchmarkSomethingElse-8  900000  1000 ns/op\n")
	if _, err := cur.Ratio(base, `ServerTCPPipelined`, 1.15); err == nil {
		t.Fatal("Ratio = nil error, want missing-baseline error")
	}
}

func TestRatioErrorsOnNoMatch(t *testing.T) {
	cur, base := ratioReports(t,
		"BenchmarkServerTCPPipelined-8  900000  1000 ns/op\n",
		"BenchmarkServerTCPPipelined-8  900000  1000 ns/op\n")
	if _, err := cur.Ratio(base, `Renamed`, 1.15); err == nil {
		t.Fatal("Ratio = nil error, want no-match error")
	}
}
