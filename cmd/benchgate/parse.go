package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark aggregates every sample of one benchmark name (repeated
// -count runs collapse into one entry). AllocsPerOp and BytesPerOp keep
// the worst (maximum) sample: the gate must hold for every run, not on
// average. NsPerOp keeps the mean.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"` // total across runs
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric units (e.g. "commits/op"),
	// keeping the minimum sample: a liveness requirement must hold for
	// the worst run, not on average.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the BENCH_ci.json artifact shape.
type Report struct {
	Samples    int          `json:"samples"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

// benchLine matches standard `go test -bench` result lines:
//
//	BenchmarkName-8   123456   147.6 ns/op   16 B/op   1 allocs/op
//
// Everything after ns/op — the -benchmem columns and any custom
// b.ReportMetric pairs, in whatever order go test emits them — is parsed
// as `value unit` fields; lines without them still parse (zero values)
// so throughput-only benches can ride along.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op`)

// Parse consumes `go test -bench` output and aggregates it per name.
// The goroutine-count suffix (-8) stays in the name: the same benchmark
// at different GOMAXPROCS is a different measurement.
func Parse(r io.Reader) (*Report, error) {
	byName := make(map[string]*Benchmark)
	var order []string
	var sums map[string]float64 = make(map[string]float64)
	samples := 0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %v", sc.Text(), err)
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name}
			byName[name] = b
			order = append(order, name)
		}
		b.Runs++
		b.Iterations += iters
		sums[name] += ns
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op", "MB/s":
			case "B/op":
				if v > b.BytesPerOp {
					b.BytesPerOp = v
				}
			case "allocs/op":
				if v > b.AllocsPerOp {
					b.AllocsPerOp = v
				}
			default:
				if b.Extra == nil {
					b.Extra = make(map[string]float64)
				}
				if cur, ok := b.Extra[unit]; !ok || v < cur {
					b.Extra[unit] = v
				}
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	rep := &Report{Samples: samples}
	for _, name := range order {
		b := byName[name]
		b.NsPerOp = sums[name] / float64(b.Runs)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, nil
}

// Gate returns the benchmarks matching pattern whose worst sample
// allocated, i.e. the allocation-regression violations.
func (r *Report) Gate(pattern string) ([]*Benchmark, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("bad -gate pattern: %v", err)
	}
	matched := false
	var bad []*Benchmark
	for _, b := range r.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		matched = true
		if b.AllocsPerOp > 0 {
			bad = append(bad, b)
		}
	}
	if !matched {
		return nil, fmt.Errorf("gate %q matched no benchmarks — pinned subset renamed?", pattern)
	}
	return bad, nil
}

// normalizeName strips the trailing -N GOMAXPROCS suffix go test
// appends, so a baseline recorded at one procs count still matches runs
// at another ("BenchmarkServerTCPPipelined-8" → "BenchmarkServerTCPPipelined").
var procsSuffix = regexp.MustCompile(`-\d+$`)

func normalizeName(name string) string {
	return procsSuffix.ReplaceAllString(name, "")
}

// RatioViolation is one benchmark whose ns/op regressed past the
// allowed ratio over its checked-in baseline.
type RatioViolation struct {
	Name            string
	NsPerOp         float64
	BaselineNsPerOp float64
	Ratio           float64
}

// Ratio compares every benchmark matching pattern against the same
// (procs-normalized) name in base and returns those whose mean ns/op
// exceeds baseline × max — the performance-regression gate. A matching
// benchmark with no baseline entry is an error: a silently unguarded
// bench is exactly the failure mode the gate exists to prevent.
func (r *Report) Ratio(base *Report, pattern string, max float64) ([]RatioViolation, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("bad -ratio pattern: %v", err)
	}
	baseNs := make(map[string]float64)
	for _, b := range base.Benchmarks {
		baseNs[normalizeName(b.Name)] = b.NsPerOp
	}
	matched := false
	var bad []RatioViolation
	for _, b := range r.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		matched = true
		ref, ok := baseNs[normalizeName(b.Name)]
		if !ok {
			return nil, fmt.Errorf("ratio: %s has no baseline entry — rerecord the baseline", b.Name)
		}
		if ref <= 0 {
			return nil, fmt.Errorf("ratio: baseline ns/op for %s is %g", b.Name, ref)
		}
		if ratio := b.NsPerOp / ref; ratio > max {
			bad = append(bad, RatioViolation{b.Name, b.NsPerOp, ref, ratio})
		}
	}
	if !matched {
		return nil, fmt.Errorf("ratio %q matched no benchmarks — pinned subset renamed?", pattern)
	}
	return bad, nil
}

// Require checks that every benchmark matching pattern reports the named
// custom metric with a positive worst-case (minimum) sample. This is the
// liveness gate for benches whose measured work could silently degrade
// to a no-op — a transactional bench that stops committing still posts
// plausible ns/op numbers.
func (r *Report) Require(pattern, metric string) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("bad -require pattern: %v", err)
	}
	matched := false
	for _, b := range r.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		matched = true
		v, ok := b.Extra[metric]
		if !ok {
			return fmt.Errorf("require: %s reports no %q metric", b.Name, metric)
		}
		if v <= 0 {
			return fmt.Errorf("require: %s %s = %g, want > 0", b.Name, metric, v)
		}
	}
	if !matched {
		return fmt.Errorf("require %q matched no benchmarks — pinned subset renamed?", pattern)
	}
	return nil
}
