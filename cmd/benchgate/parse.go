package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark aggregates every sample of one benchmark name (repeated
// -count runs collapse into one entry). AllocsPerOp and BytesPerOp keep
// the worst (maximum) sample: the gate must hold for every run, not on
// average. NsPerOp keeps the mean.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"` // total across runs
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the BENCH_ci.json artifact shape.
type Report struct {
	Samples    int          `json:"samples"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

// benchLine matches standard `go test -bench -benchmem` result lines:
//
//	BenchmarkName-8   123456   147.6 ns/op   16 B/op   1 allocs/op
//
// The B/op and allocs/op columns require -benchmem; lines without them
// still parse (zero values) so throughput-only benches can ride along.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

// Parse consumes `go test -bench` output and aggregates it per name.
// The goroutine-count suffix (-8) stays in the name: the same benchmark
// at different GOMAXPROCS is a different measurement.
func Parse(r io.Reader) (*Report, error) {
	byName := make(map[string]*Benchmark)
	var order []string
	var sums map[string]float64 = make(map[string]float64)
	samples := 0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %v", sc.Text(), err)
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytesOp, allocsOp float64
		if m[4] != "" {
			bytesOp, _ = strconv.ParseFloat(m[4], 64)
			allocsOp, _ = strconv.ParseFloat(m[5], 64)
		}
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name}
			byName[name] = b
			order = append(order, name)
		}
		b.Runs++
		b.Iterations += iters
		sums[name] += ns
		if bytesOp > b.BytesPerOp {
			b.BytesPerOp = bytesOp
		}
		if allocsOp > b.AllocsPerOp {
			b.AllocsPerOp = allocsOp
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	rep := &Report{Samples: samples}
	for _, name := range order {
		b := byName[name]
		b.NsPerOp = sums[name] / float64(b.Runs)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, nil
}

// Gate returns the benchmarks matching pattern whose worst sample
// allocated, i.e. the allocation-regression violations.
func (r *Report) Gate(pattern string) ([]*Benchmark, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("bad -gate pattern: %v", err)
	}
	matched := false
	var bad []*Benchmark
	for _, b := range r.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		matched = true
		if b.AllocsPerOp > 0 {
			bad = append(bad, b)
		}
	}
	if !matched {
		return nil, fmt.Errorf("gate %q matched no benchmarks — pinned subset renamed?", pattern)
	}
	return bad, nil
}
