package main

// Kill-and-restore end to end: a real ampserved process is loaded over
// TCP, cuts a snapshot with BGSAVE, dies hard under SIGKILL — no
// graceful shutdown, no parting save — and a fresh process booted with
// -restore must come back holding exactly the snapshot's state. A
// companion in-process test drives run() through the same lifecycle and
// checks that restore-boot plus shutdown leaks no goroutines.

import (
	"bufio"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"amp/internal/snapshot"
)

// sendExpect round-trips one command on a raw connection.
func sendExpect(t *testing.T, conn net.Conn, r *bufio.Reader, cmd, want string) {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		t.Fatalf("%s: write: %v", cmd, err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	got, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("%s: read: %v", cmd, err)
	}
	if got = strings.TrimSuffix(got, "\n"); got != want {
		t.Fatalf("%s → %q, want %q", cmd, got, want)
	}
}

// startProc launches the built binary and scans its stdout for the
// listening banner, returning the bound address.
func startProc(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	br := bufio.NewReader(stdout)
	var m []string
	for m == nil {
		line, err := br.ReadString('\n')
		if err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("read banner: %v", err)
		}
		m = addrRE.FindStringSubmatch(line)
	}
	go func() { // keep the pipe from filling up
		for {
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
		}
	}()
	return cmd, m[1]
}

// TestKillAndRestoreE2E builds the real binary, loads it over TCP, cuts
// a BGSAVE, SIGKILLs the process, and verifies a -restore boot serves
// exactly the snapshot's state: pre-cut data present, post-cut
// mutations gone, counter continuing from its saved value.
func TestKillAndRestoreE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real server binary")
	}
	bin := filepath.Join(t.TempDir(), "ampserved")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "ampserved.snap")

	cmd, addr := startProc(t, bin, "-snapshot-dir", dir, "-shards", "4")
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	for i := 0; i < 50; i++ {
		sendExpect(t, conn, r, fmt.Sprintf("SET %d", i), "1")
	}
	sendExpect(t, conn, r, "HSET tag 77", "1")
	sendExpect(t, conn, r, "ENQ 1", "OK")
	sendExpect(t, conn, r, "ENQ 2", "OK")
	sendExpect(t, conn, r, "PUSH 9", "OK")
	sendExpect(t, conn, r, "PQADD 4", "OK")
	sendExpect(t, conn, r, "INC", "0")
	sendExpect(t, conn, r, "INC", "1")
	// BGSAVE takes its cut synchronously and replies before the file is
	// written, so everything after the OK is deterministically outside
	// the snapshot.
	sendExpect(t, conn, r, "BGSAVE", "OK")
	sendExpect(t, conn, r, "SET 999", "1")
	sendExpect(t, conn, r, "DEL 0", "1")
	sendExpect(t, conn, r, "INC", "2")

	// Write is an atomic create-temp-and-rename, so a decodable file at
	// the final path is a complete one; poll for it.
	var st *snapshot.State
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err = snapshot.Read(snapPath)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background save never landed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(st.Set) != 50 || st.Counter != 2 {
		t.Fatalf("snapshot has %d set members, counter %d; want 50 and 2", len(st.Set), st.Counter)
	}

	// Die hard: no drain, no shutdown hook, nothing but the snapshot
	// survives.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	cmd.Wait()
	killed = true

	cmd2, addr2 := startProc(t, bin, "-snapshot-dir", dir, "-shards", "2", "-restore", snapPath)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	conn2, err := net.Dial("tcp", addr2)
	if err != nil {
		t.Fatalf("dial %s: %v", addr2, err)
	}
	defer conn2.Close()
	r2 := bufio.NewReader(conn2)

	sendExpect(t, conn2, r2, "GET 0", "1") // post-cut DEL 0 is gone
	sendExpect(t, conn2, r2, "GET 49", "1")
	sendExpect(t, conn2, r2, "GET 999", "0") // post-cut SET 999 is gone
	sendExpect(t, conn2, r2, "HGET tag", "77")
	sendExpect(t, conn2, r2, "DEQ", "1")
	sendExpect(t, conn2, r2, "DEQ", "2")
	sendExpect(t, conn2, r2, "POP", "9")
	sendExpect(t, conn2, r2, "PQMIN", "4")
	sendExpect(t, conn2, r2, "READ", "2")
	sendExpect(t, conn2, r2, "INC", "2")

	// And the revived process still dies politely.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd2.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("restored server exited with %v, want clean shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("restored server did not exit after SIGTERM")
	}
}

// TestRestoreRunNoGoroutineLeak runs the save → shutdown → restore-boot
// → shutdown lifecycle in-process and checks the goroutine count
// returns to its baseline: the restore path must not strand shard
// goroutines, snapshot writers, or connection handlers.
func TestRestoreRunNoGoroutineLeak(t *testing.T) {
	dir := t.TempDir()

	addr, done, sig := startMain(t, "-snapshot-dir", dir, "-shards", "4")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	r := bufio.NewReader(conn)
	sendExpect(t, conn, r, "SET 5", "1")
	sendExpect(t, conn, r, "ENQ 3", "OK")
	sendExpect(t, conn, r, "SAVE", "OK")
	conn.Close()
	sig <- syscall.SIGINT
	if err := <-done; err != nil {
		t.Fatalf("run returned error: %v", err)
	}

	base := stableGoroutines()

	addr2, done2, sig2 := startMain(t,
		"-snapshot-dir", dir, "-restore", filepath.Join(dir, "ampserved.snap"), "-shards", "4")
	conn2, err := net.Dial("tcp", addr2)
	if err != nil {
		t.Fatalf("dial %s: %v", addr2, err)
	}
	r2 := bufio.NewReader(conn2)
	sendExpect(t, conn2, r2, "GET 5", "1")
	sendExpect(t, conn2, r2, "DEQ", "3")
	conn2.Close()
	sig2 <- syscall.SIGINT
	if err := <-done2; err != nil {
		t.Fatalf("restored run returned error: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return // pipe-drain helpers may linger briefly; all server goroutines reaped
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d > baseline %d after restore lifecycle:\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// stableGoroutines samples the goroutine count until it stops falling.
func stableGoroutines() int {
	min := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		if n := runtime.NumGoroutine(); n < min {
			min = n
			i = 0
		}
	}
	return min
}
