// Command ampserved serves the book's concurrent objects over TCP: a
// sharded in-memory data-structure server whose backends — hash set,
// queue, stack, counter, priority queue — are selected per family at
// startup from the implementations in internal/ (see internal/server for
// the protocol).
//
// Usage:
//
//	ampserved                              # defaults on 127.0.0.1:7171
//	ampserved -addr :7171 -shards 8
//	ampserved -set lockfree -map refinable -queue recycling -counter network
//	ampserved -txn dstm -cm backoff        # MULTI/EXEC over the DSTM engine
//	ampserved -set skip-epoch -map epoch -txn off   # every read on the wait-free bypass
//	ampserved -set adaptive -map adaptive -txn off  # self-tuning backends that morph live
//	ampserved -morph off                   # freeze adaptive backends on their boot member
//	ampserved -read-bypass off             # force all reads through the shard mailboxes
//	ampserved -spin 256                    # longer mailbox spin before shard goroutines park
//	ampserved -http 127.0.0.1:7172         # expvar stats endpoint
//	ampserved -snapshot-dir /var/lib/amp   # where SAVE/BGSAVE write the snapshot
//	ampserved -restore /var/lib/amp/ampserved.snap  # boot from the last snapshot
//	ampserved -shards 4 -max-shards 16     # allow RESHARD up to 16 shards
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting,
// finishes in-flight commands, and drains connections for -drain before
// forcing them closed.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"amp/internal/server"
)

// statsSrv is read by the expvar callback; an atomic pointer because test
// runs construct several servers in one process.
var statsSrv atomic.Pointer[server.Server]

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sig); err != nil {
		fmt.Fprintln(os.Stderr, "ampserved:", err)
		os.Exit(1)
	}
}

// run builds and serves until an error or a signal; factored out so tests
// can drive it with a synthetic signal channel.
func run(args []string, out io.Writer, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("ampserved", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr      = fs.String("addr", "127.0.0.1:7171", "TCP listen address")
		httpAddr  = fs.String("http", "", "optional expvar HTTP address (empty = off)")
		shards    = fs.Int("shards", 0, "data-plane shards (0 = GOMAXPROCS)")
		maxShards = fs.Int("max-shards", 0, "RESHARD ceiling (0 = 2x shards)")
		drain     = fs.Duration("drain", 5*time.Second, "connection drain budget on shutdown")
		idle      = fs.Duration("idle-timeout", 2*time.Minute, "drop connections idle this long")
		snapDir   = fs.String("snapshot-dir", "", "directory for SAVE/BGSAVE snapshot files (default .)")
		restore   = fs.String("restore", "", "load this snapshot file before serving (empty = fresh state)")

		set            = fs.String("set", "", "set backend: "+strings.Join(server.SetBackends(), "|"))
		mapb           = fs.String("map", "", "string-map backend: "+strings.Join(server.MapBackends(), "|"))
		queue          = fs.String("queue", "", "queue backend: "+strings.Join(server.QueueBackends(), "|"))
		stack          = fs.String("stack", "", "stack backend: "+strings.Join(server.StackBackends(), "|"))
		pqueue         = fs.String("pqueue", "", "priority-queue backend: "+strings.Join(server.PQueueBackends(), "|"))
		counter        = fs.String("counter", "", "counter backend: "+strings.Join(server.CounterBackends(), "|"))
		metricsCounter = fs.String("metrics-counter", "",
			"counting backend for the metrics layer: "+strings.Join(server.CounterBackends(), "|"))
		txn = fs.String("txn", "", "transactional keyspace engine for MULTI/EXEC: "+strings.Join(server.TxnBackends(), "|"))
		cm  = fs.String("cm", "", "DSTM contention manager: "+strings.Join(server.CMBackends(), "|"))

		readBypass = fs.String("read-bypass", "",
			"wait-free read fast path on capable backends: on|off (default on)")
		morph = fs.String("morph", "",
			"live morphing on adaptive backends: on|off (default on)")
		morphEvery = fs.Int("morph-every", 0,
			"batch drains between adaptive controller evaluations per shard (default 32)")
		morphRead = fs.Int("morph-read", 0,
			"window read percentage that morphs an adaptive shard to its read-optimized member (default 90)")
		spin = fs.Int("spin", 0,
			"shard mailbox spin budget: empty polls before a shard goroutine parks (0 = default, negative = park immediately)")

		setCap   = fs.Int("set-cap", 0, "per-shard hash table size (power of two)")
		queueCap = fs.Int("queue-cap", 0, "bounded/recycling queue capacity")
		pqCap    = fs.Int("pq-cap", 0, "heap capacity / linear/tree priority range")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := server.New(server.Options{
		Shards:         *shards,
		MaxShards:      *maxShards,
		SnapshotDir:    *snapDir,
		Set:            *set,
		Map:            *mapb,
		Queue:          *queue,
		Stack:          *stack,
		PQueue:         *pqueue,
		Counter:        *counter,
		MetricsCounter: *metricsCounter,
		Txn:            *txn,
		CM:             *cm,
		ReadBypass:     *readBypass,
		Morph:          *morph,
		MorphEvery:     *morphEvery,
		MorphReadPct:   *morphRead,
		SpinBudget:     *spin,
		SetCapacity:    *setCap,
		QueueCapacity:  *queueCap,
		PQCapacity:     *pqCap,
		IdleTimeout:    *idle,
	})
	if err != nil {
		return err
	}
	if *restore != "" {
		if err := srv.Restore(*restore); err != nil {
			srv.Shutdown(context.Background())
			return fmt.Errorf("restore %s: %w", *restore, err)
		}
		fmt.Fprintf(out, "ampserved: restored state from %s\n", *restore)
	}
	if err := srv.Listen(*addr); err != nil {
		srv.Shutdown(context.Background())
		return err
	}
	opts := srv.Options()
	fmt.Fprintf(out, "ampserved: listening on %s (shards=%d set=%s map=%s queue=%s stack=%s pqueue=%s counter=%s txn=%s cm=%s read-bypass=%s morph=%s spin=%d)\n",
		srv.Addr(), opts.Shards, opts.Set, opts.Map, opts.Queue, opts.Stack, opts.PQueue, opts.Counter, opts.Txn, opts.CM, opts.ReadBypass, opts.Morph, opts.SpinBudget)

	var httpSrv *http.Server
	if *httpAddr != "" {
		statsSrv.Store(srv)
		if expvar.Get("ampserved") == nil {
			expvar.Publish("ampserved", expvar.Func(func() any {
				if s := statsSrv.Load(); s != nil {
					return s.Stats()
				}
				return nil
			}))
		}
		httpSrv = &http.Server{Addr: *httpAddr, Handler: http.DefaultServeMux}
		go httpSrv.ListenAndServe()
		fmt.Fprintf(out, "ampserved: expvar stats on http://%s/debug/vars\n", *httpAddr)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case err := <-serveErr:
		srv.Shutdown(context.Background())
		return err
	case s := <-sig:
		fmt.Fprintf(out, "ampserved: %v, shutting down\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if httpSrv != nil {
		httpSrv.Shutdown(ctx)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil {
		return err
	}
	fmt.Fprintln(out, "ampserved: bye")
	return nil
}
