package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

var addrRE = regexp.MustCompile(`listening on (\S+)`)

// startMain runs run() with an ephemeral port and returns the bound
// address, the output writer, and the signal channel that stops it.
func startMain(t *testing.T, extra ...string) (addr string, done chan error, sig chan os.Signal) {
	t.Helper()
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	sig = make(chan os.Signal, 1)
	done = make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() {
		done <- run(args, pw, sig)
		pw.Close()
	}()

	// The startup banner announces the address; with -restore a
	// restored-state line precedes it, so scan until it appears.
	br := bufio.NewReader(pr)
	var m []string
	for m == nil {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read banner: %v (run may have failed: %v)", err, drainErr(done))
		}
		m = addrRE.FindStringSubmatch(line)
	}
	go func() { // keep the pipe from filling up
		for {
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
		}
	}()
	return m[1], done, sig
}

func drainErr(done chan error) error {
	select {
	case err := <-done:
		return err
	case <-time.After(time.Second):
		return nil
	}
}

func TestRunServesAndShutsDown(t *testing.T) {
	addr, done, sig := startMain(t, "-set", "lockfree", "-map", "refinable",
		"-queue", "recycling", "-counter", "network")

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	for _, step := range []struct{ cmd, want string }{
		{"SET 9", "1"}, {"GET 9", "1"}, {"ENQ 5", "OK"}, {"DEQ", "5"}, {"INC", "0"},
		{"HSET greet 1", "1"}, {"HGET greet", "1"}, {"HDEL greet", "1"}, {"HGET greet", "EMPTY"},
	} {
		fmt.Fprintf(conn, "%s\n", step.cmd)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		got, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("%s: read: %v", step.cmd, err)
		}
		if got = strings.TrimSuffix(got, "\n"); got != step.want {
			t.Fatalf("%s → %q, want %q", step.cmd, got, step.want)
		}
	}

	sig <- syscall.SIGINT
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGINT")
	}
}

// TestRunServesTransactions boots with the DSTM engine under the backoff
// manager and round-trips a MULTI/EXEC transaction.
func TestRunServesTransactions(t *testing.T) {
	addr, done, sig := startMain(t, "-txn", "dstm", "-cm", "backoff")

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprintf(conn, "MULTI\nHINCR a 4\nHINCR b -4\nEXEC\nHGET a\nTXSTATS\n")
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i, want := range []string{"OK", "+QUEUED", "+QUEUED", "*2", "4", "-4", "4"} {
		got, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d: read: %v", i, err)
		}
		if got = strings.TrimSuffix(got, "\n"); got != want {
			t.Fatalf("reply %d = %q, want %q", i, got, want)
		}
	}
	txstats, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("TXSTATS: %v", err)
	}
	if !strings.Contains(txstats, "engine=dstm cm=backoff") {
		t.Fatalf("TXSTATS = %q, want dstm/backoff", txstats)
	}

	sig <- syscall.SIGINT
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGINT")
	}
}

func TestRunRejectsBadBackend(t *testing.T) {
	for _, flag := range []string{"-set", "-map", "-txn", "-cm"} {
		err := run([]string{flag, "nope"}, io.Discard, nil)
		if err == nil || !strings.Contains(err.Error(), `"nope"`) {
			t.Fatalf("run %s error = %v, want unknown-backend", flag, err)
		}
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard, nil); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}
